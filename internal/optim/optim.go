// Package optim implements the optimizers the AvgPipe paper exercises.
//
// The elastic-averaging framework (§3) is deliberately decoupled from the
// optimizer: every optimizer here implements the same Optimizer interface
// and can drive a parallel pipeline unchanged. EASGD is also provided as
// the "extended SGD" baseline whose coupling the paper criticizes (§3.1).
package optim

import (
	"math"

	"avgpipe/internal/nn"
	"avgpipe/internal/tensor"
)

// Optimizer applies one update step from the accumulated gradients on the
// given parameters. Implementations hold per-parameter state keyed by
// parameter identity, so a single optimizer instance must stay paired with
// one model replica.
type Optimizer interface {
	// Step consumes p.G for every parameter (already averaged over the
	// batch by the caller) and updates p.W in place.
	Step(params []*nn.Param)
	// Name identifies the optimizer in logs and experiment tables.
	Name() string
}

// SGD is stochastic gradient descent with optional momentum and weight
// decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*nn.Param]*tensor.Tensor
}

// NewSGD returns plain SGD with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(params []*nn.Param) {
	if s.Momentum != 0 && s.velocity == nil {
		s.velocity = make(map[*nn.Param]*tensor.Tensor)
	}
	for _, p := range params {
		g := p.G
		if s.WeightDecay != 0 {
			g = g.Clone().AxpyInPlace(float32(s.WeightDecay), p.W)
		}
		if s.Momentum != 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.W.Shape()...)
				s.velocity[p] = v
			}
			v.ScaleInPlace(float32(s.Momentum))
			v.AddInPlace(g)
			g = v
		}
		p.W.AxpyInPlace(float32(-s.LR), g)
	}
}

// Adam is the Adam optimizer (Kingma & Ba, 2015) — the optimizer the
// paper's GNMT and BERT workloads use, demonstrating that AvgPipe's
// framework composes with adaptive methods.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*nn.Param]*tensor.Tensor
	v map[*nn.Param]*tensor.Tensor
}

// NewAdam returns Adam with standard defaults (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*nn.Param]*tensor.Tensor), v: make(map[*nn.Param]*tensor.Tensor)}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (a *Adam) Step(params []*nn.Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.W.Shape()...)
			v := tensor.New(p.W.Shape()...)
			a.m[p], a.v[p] = m, v
		}
		v := a.v[p]
		mw, vw, gw, ww := m.Data(), v.Data(), p.G.Data(), p.W.Data()
		b1, b2 := float32(a.Beta1), float32(a.Beta2)
		lr, eps := a.LR, a.Eps
		tensor.ParallelFor(len(gw), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				mw[i] = b1*mw[i] + (1-b1)*gw[i]
				vw[i] = b2*vw[i] + (1-b2)*gw[i]*gw[i]
				mhat := float64(mw[i]) / bc1
				vhat := float64(vw[i]) / bc2
				ww[i] -= float32(lr * mhat / (math.Sqrt(vhat) + eps))
			}
		})
	}
}

// AdaGrad is the adaptive-subgradient optimizer (Duchi et al., 2011),
// included as one of the alternative optimizers the framework must
// support (§3.1).
type AdaGrad struct {
	LR, Eps float64

	g2 map[*nn.Param]*tensor.Tensor
}

// NewAdaGrad returns AdaGrad with ε=1e-8.
func NewAdaGrad(lr float64) *AdaGrad {
	return &AdaGrad{LR: lr, Eps: 1e-8, g2: make(map[*nn.Param]*tensor.Tensor)}
}

// Name implements Optimizer.
func (a *AdaGrad) Name() string { return "adagrad" }

// Step implements Optimizer.
func (a *AdaGrad) Step(params []*nn.Param) {
	for _, p := range params {
		acc, ok := a.g2[p]
		if !ok {
			acc = tensor.New(p.W.Shape()...)
			a.g2[p] = acc
		}
		aw, gw, ww := acc.Data(), p.G.Data(), p.W.Data()
		tensor.ParallelFor(len(gw), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				aw[i] += gw[i] * gw[i]
				ww[i] -= float32(a.LR * float64(gw[i]) / (math.Sqrt(float64(aw[i])) + a.Eps))
			}
		})
	}
}

// ASGD is SGD with Polyak-Ruppert iterate averaging (Polyak & Juditsky,
// 1992), the optimizer of the AWD-LSTM workload. After TriggerStep steps
// the running average of iterates becomes the model served by Average().
type ASGD struct {
	LR          float64
	TriggerStep int

	t   int
	avg map[*nn.Param]*tensor.Tensor
}

// NewASGD returns ASGD that starts averaging after trigger steps.
func NewASGD(lr float64, trigger int) *ASGD {
	return &ASGD{LR: lr, TriggerStep: trigger, avg: make(map[*nn.Param]*tensor.Tensor)}
}

// Name implements Optimizer.
func (a *ASGD) Name() string { return "asgd" }

// Step implements Optimizer.
func (a *ASGD) Step(params []*nn.Param) {
	a.t++
	for _, p := range params {
		p.W.AxpyInPlace(float32(-a.LR), p.G)
		if a.t >= a.TriggerStep {
			avg, ok := a.avg[p]
			if !ok {
				avg = p.W.Clone()
				a.avg[p] = avg
				continue
			}
			// Running mean over iterates since the trigger.
			n := float32(a.t - a.TriggerStep + 1)
			avg.ScaleInPlace((n - 1) / n)
			avg.AxpyInPlace(1/n, p.W)
		}
	}
}

// Average writes the averaged iterates into params (a no-op before the
// trigger fires). Call on a clone for evaluation.
func (a *ASGD) Average(params []*nn.Param) {
	for _, p := range params {
		if avg, ok := a.avg[p]; ok {
			p.W.CopyFrom(avg)
		}
	}
}

// EASGD is elastic-averaging SGD as a *coupled optimizer* (Zhang,
// Choromanska & LeCun, 2015). It is the baseline design §3.1 argues
// against: the elastic pull is welded into an SGD update rule, so it
// cannot be combined with Adam/AdaGrad/ASGD. AvgPipe's framework instead
// layers the elastic pull outside any Optimizer (see internal/core).
type EASGD struct {
	LR    float64
	Alpha float64 // elastic coefficient toward the center

	center map[*nn.Param]*tensor.Tensor
}

// NewEASGD returns EASGD with the given learning rate and elastic
// coefficient.
func NewEASGD(lr, alpha float64) *EASGD {
	return &EASGD{LR: lr, Alpha: alpha, center: make(map[*nn.Param]*tensor.Tensor)}
}

// Name implements Optimizer.
func (e *EASGD) Name() string { return "easgd" }

// Step implements Optimizer: an SGD step plus an elastic pull toward the
// center variable, which moves symmetrically toward the worker.
func (e *EASGD) Step(params []*nn.Param) {
	for _, p := range params {
		c, ok := e.center[p]
		if !ok {
			c = p.W.Clone()
			e.center[p] = c
		}
		diff := tensor.Sub(p.W, c)
		p.W.AxpyInPlace(float32(-e.LR), p.G)
		p.W.AxpyInPlace(float32(-e.Alpha), diff)
		c.AxpyInPlace(float32(e.Alpha), diff)
	}
}

// Center exposes the center variable for a parameter (nil before the
// first step), used by tests.
func (e *EASGD) Center(p *nn.Param) *tensor.Tensor { return e.center[p] }

// ScaleGrads divides accumulated gradients by n, converting a sum over n
// micro-batches into a batch mean. Training loops call this once per
// batch before Step.
func ScaleGrads(params []*nn.Param, n int) {
	if n <= 1 {
		return
	}
	inv := float32(1 / float64(n))
	for _, p := range params {
		p.G.ScaleInPlace(inv)
	}
}

// ClipGradNorm rescales gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm. Standard for RNN workloads.
func ClipGradNorm(params []*nn.Param, maxNorm float64) float64 {
	var total float64
	for _, p := range params {
		n := p.G.L2Norm()
		total += n * n
	}
	total = math.Sqrt(total)
	if total > maxNorm && total > 0 {
		scale := float32(maxNorm / total)
		for _, p := range params {
			p.G.ScaleInPlace(scale)
		}
	}
	return total
}
