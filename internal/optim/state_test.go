package optim

import (
	"bytes"
	"testing"

	"avgpipe/internal/nn"
	"avgpipe/internal/tensor"
)

func stateParams() []*nn.Param {
	return []*nn.Param{
		nn.NewParam("w1", tensor.Full(0.5, 3)),
		nn.NewParam("w2", tensor.Full(-0.25, 2, 2)),
	}
}

func setGrads(ps []*nn.Param, scale float32) {
	for j, p := range ps {
		d := p.G.Data()
		for i := range d {
			d[i] = scale * float32(i+j+1)
		}
	}
}

func cloneParams(ps []*nn.Param) []*nn.Param {
	out := make([]*nn.Param, len(ps))
	for i, p := range ps {
		out[i] = nn.NewParam(p.Name, p.W.Clone())
	}
	return out
}

// TestStateRoundTrip checks, for every Stateful optimizer, that saved
// state restores bit-exactly: an optimizer resumed from a state blob
// takes the same future steps as the one that never stopped.
func TestStateRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Stateful
	}{
		{"sgd", func() Stateful { return NewSGD(0.1) }},
		{"adam", func() Stateful { return NewAdam(1e-2) }},
		{"adagrad", func() Stateful { return NewAdaGrad(0.1) }},
		{"asgd", func() Stateful { return NewASGD(0.1, 2) }},
		{"easgd", func() Stateful { return NewEASGD(0.1, 0.3) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p1 := stateParams()
			o1 := c.mk()
			if o1.Name() != c.name {
				t.Fatalf("optimizer name %q, want %q", o1.Name(), c.name)
			}
			for i := 0; i < 3; i++ {
				setGrads(p1, 0.1*float32(i+1))
				o1.Step(p1)
			}
			var buf bytes.Buffer
			if err := o1.SaveState(&buf, p1); err != nil {
				t.Fatal(err)
			}
			p2 := cloneParams(p1)
			o2 := c.mk()
			if err := o2.LoadState(bytes.NewReader(buf.Bytes()), p2); err != nil {
				t.Fatal(err)
			}
			// Both must take identical future steps, bit for bit.
			for i := 0; i < 3; i++ {
				setGrads(p1, 0.05*float32(i+1))
				setGrads(p2, 0.05*float32(i+1))
				o1.Step(p1)
				o2.Step(p2)
			}
			for j := range p1 {
				a, b := p1[j].W.Data(), p2[j].W.Data()
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("param %d element %d diverged after restore: %v vs %v",
							j, i, a[i], b[i])
					}
				}
			}
		})
	}
}

// TestLoadStateRejectsMismatches pins the failure modes: a blob saved by
// one optimizer type cannot load into another, truncated blobs fail, and
// a parameter-shape mismatch is caught instead of silently corrupting
// state.
func TestLoadStateRejectsMismatches(t *testing.T) {
	ps := stateParams()
	sgd := NewSGD(0.1)
	setGrads(ps, 1)
	sgd.Step(ps)
	var buf bytes.Buffer
	if err := sgd.SaveState(&buf, ps); err != nil {
		t.Fatal(err)
	}
	if err := NewAdam(1e-2).LoadState(bytes.NewReader(buf.Bytes()), ps); err == nil {
		t.Fatal("adam loaded an sgd state blob")
	}
	if err := NewSGD(0.1).LoadState(bytes.NewReader(buf.Bytes()[:buf.Len()/2]), ps); err == nil {
		t.Fatal("truncated blob loaded without error")
	}
	// Plain SGD keeps no per-parameter tensors; use Adam's moments for
	// the shape check.
	adam := NewAdam(1e-2)
	adam.Step(ps)
	var abuf bytes.Buffer
	if err := adam.SaveState(&abuf, ps); err != nil {
		t.Fatal(err)
	}
	wrongShape := []*nn.Param{
		nn.NewParam("w1", tensor.Full(0, 4)), // saved as len 3
		nn.NewParam("w2", tensor.Full(0, 2, 2)),
	}
	if err := NewAdam(1e-2).LoadState(bytes.NewReader(abuf.Bytes()), wrongShape); err == nil {
		t.Fatal("shape mismatch loaded without error")
	}
	if err := NewSGD(0.1).LoadState(bytes.NewReader(nil), ps); err == nil {
		t.Fatal("empty blob loaded without error")
	}
}
