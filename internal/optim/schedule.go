package optim

import "math"

// LRScheduler maps a 0-based optimizer step to a learning rate. Training
// loops call Apply once per step, before Optimizer.Step.
type LRScheduler interface {
	LR(step int) float64
}

// LRSetter is implemented by optimizers whose learning rate can be
// adjusted between steps.
type LRSetter interface {
	SetLR(lr float64)
}

// SetLR implements LRSetter.
func (s *SGD) SetLR(lr float64) { s.LR = lr }

// SetLR implements LRSetter.
func (a *Adam) SetLR(lr float64) { a.LR = lr }

// SetLR implements LRSetter.
func (a *AdaGrad) SetLR(lr float64) { a.LR = lr }

// SetLR implements LRSetter.
func (a *ASGD) SetLR(lr float64) { a.LR = lr }

// SetLR implements LRSetter.
func (e *EASGD) SetLR(lr float64) { e.LR = lr }

// Apply sets the optimizer's learning rate from the scheduler for the
// given step. It is a no-op when either argument is nil.
func Apply(opt Optimizer, sched LRScheduler, step int) {
	if sched == nil {
		return
	}
	if setter, ok := opt.(LRSetter); ok {
		setter.SetLR(sched.LR(step))
	}
}

// ConstantLR returns Base forever.
type ConstantLR struct{ Base float64 }

// LR implements LRScheduler.
func (c ConstantLR) LR(int) float64 { return c.Base }

// Warmup ramps linearly from 0 to Base over Steps steps, then delegates
// to After (or holds Base when After is nil). Standard for transformer
// training.
type Warmup struct {
	Base  float64
	Steps int
	After LRScheduler
}

// LR implements LRScheduler.
func (w Warmup) LR(step int) float64 {
	if w.Steps > 0 && step < w.Steps {
		return w.Base * float64(step+1) / float64(w.Steps)
	}
	if w.After != nil {
		return w.After.LR(step - w.Steps)
	}
	return w.Base
}

// CosineDecay anneals from Base to Min over Steps with a half-cosine,
// then holds Min.
type CosineDecay struct {
	Base, Min float64
	Steps     int
}

// LR implements LRScheduler.
func (c CosineDecay) LR(step int) float64 {
	if c.Steps <= 0 || step >= c.Steps {
		return c.Min
	}
	frac := float64(step) / float64(c.Steps)
	return c.Min + (c.Base-c.Min)*0.5*(1+math.Cos(math.Pi*frac))
}

// StepDecay multiplies Base by Factor every Every steps.
type StepDecay struct {
	Base, Factor float64
	Every        int
}

// LR implements LRScheduler.
func (s StepDecay) LR(step int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Factor, float64(step/s.Every))
}
