package optim

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"avgpipe/internal/nn"
	"avgpipe/internal/tensor"
)

// Stateful is implemented by optimizers whose internal state (momentum,
// moments, iterate averages) must survive checkpoint/restore for a
// resumed run to be bit-exact. State is keyed positionally by the params
// slice, so Save and Load must be given the same parameter order — which
// nn.SaveParams/LoadParams already enforce for the weights themselves.
type Stateful interface {
	Optimizer
	SaveState(w io.Writer, params []*nn.Param) error
	LoadState(r io.Reader, params []*nn.Param) error
}

// stateMagic guards optimizer-state files, distinct from the nn
// checkpoint magic so the two cannot be confused.
const stateMagic = uint32(0x4156474f) // "AVGO"

func writeHeader(w io.Writer, name string) error {
	if err := binary.Write(w, binary.LittleEndian, stateMagic); err != nil {
		return err
	}
	return writeString(w, name)
}

func readHeader(r io.Reader, name string) error {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("optim: reading state header: %w", err)
	}
	if magic != stateMagic {
		return fmt.Errorf("optim: not an optimizer state file (magic %#x)", magic)
	}
	got, err := readString(r)
	if err != nil {
		return err
	}
	if got != name {
		return fmt.Errorf("optim: state file is for %q, optimizer is %q", got, name)
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeTensor(w io.Writer, t *tensor.Tensor) error {
	shape := t.Shape()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(shape))); err != nil {
		return err
	}
	for _, d := range shape {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	for _, v := range t.Data() {
		if err := binary.Write(w, binary.LittleEndian, math.Float32bits(v)); err != nil {
			return err
		}
	}
	return nil
}

func readTensor(r io.Reader, want []int) (*tensor.Tensor, error) {
	var dims uint32
	if err := binary.Read(r, binary.LittleEndian, &dims); err != nil {
		return nil, err
	}
	shape := make([]int, dims)
	for i := range shape {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return nil, err
		}
		shape[i] = int(d)
	}
	if len(shape) != len(want) {
		return nil, fmt.Errorf("optim: state tensor rank %d, param has %d", len(shape), len(want))
	}
	for i := range shape {
		if shape[i] != want[i] {
			return nil, fmt.Errorf("optim: state tensor shape %v, param has %v", shape, want)
		}
	}
	t := tensor.New(shape...)
	data := t.Data()
	for i := range data {
		var bits uint32
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("optim: state tensor truncated: %w", err)
		}
		data[i] = math.Float32frombits(bits)
	}
	return t, nil
}

// writeTensorMap writes one optional tensor per param in params order —
// a presence byte, then the tensor. Lazily populated maps (a velocity
// that only exists after the first momentum step) round-trip exactly.
func writeTensorMap(w io.Writer, params []*nn.Param, m map[*nn.Param]*tensor.Tensor) error {
	for _, p := range params {
		t, ok := m[p]
		present := byte(0)
		if ok {
			present = 1
		}
		if _, err := w.Write([]byte{present}); err != nil {
			return err
		}
		if ok {
			if err := writeTensor(w, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// readTensorMap reads what writeTensorMap wrote into a fresh map keyed
// by the given params.
func readTensorMap(r io.Reader, params []*nn.Param) (map[*nn.Param]*tensor.Tensor, error) {
	m := make(map[*nn.Param]*tensor.Tensor, len(params))
	buf := make([]byte, 1)
	for _, p := range params {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		if buf[0] == 0 {
			continue
		}
		t, err := readTensor(r, p.W.Shape())
		if err != nil {
			return nil, fmt.Errorf("optim: param %q: %w", p.Name, err)
		}
		m[p] = t
	}
	return m, nil
}

func writeU64(w io.Writer, v uint64) error {
	return binary.Write(w, binary.LittleEndian, v)
}

func readU64(r io.Reader) (uint64, error) {
	var v uint64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

// SaveState implements Stateful: per-param momentum velocities.
func (s *SGD) SaveState(w io.Writer, params []*nn.Param) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, s.Name()); err != nil {
		return err
	}
	vel := s.velocity
	if vel == nil {
		vel = map[*nn.Param]*tensor.Tensor{}
	}
	if err := writeTensorMap(bw, params, vel); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadState implements Stateful.
func (s *SGD) LoadState(r io.Reader, params []*nn.Param) error {
	br := bufio.NewReader(r)
	if err := readHeader(br, s.Name()); err != nil {
		return err
	}
	m, err := readTensorMap(br, params)
	if err != nil {
		return err
	}
	if len(m) > 0 {
		s.velocity = m
	}
	return nil
}

// SaveState implements Stateful: the step counter and both moment
// estimates, so bias correction resumes where it left off.
func (a *Adam) SaveState(w io.Writer, params []*nn.Param) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, a.Name()); err != nil {
		return err
	}
	if err := writeU64(bw, uint64(a.t)); err != nil {
		return err
	}
	if err := writeTensorMap(bw, params, a.m); err != nil {
		return err
	}
	if err := writeTensorMap(bw, params, a.v); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadState implements Stateful.
func (a *Adam) LoadState(r io.Reader, params []*nn.Param) error {
	br := bufio.NewReader(r)
	if err := readHeader(br, a.Name()); err != nil {
		return err
	}
	t, err := readU64(br)
	if err != nil {
		return err
	}
	m, err := readTensorMap(br, params)
	if err != nil {
		return err
	}
	v, err := readTensorMap(br, params)
	if err != nil {
		return err
	}
	a.t, a.m, a.v = int(t), m, v
	return nil
}

// SaveState implements Stateful: the accumulated squared gradients.
func (a *AdaGrad) SaveState(w io.Writer, params []*nn.Param) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, a.Name()); err != nil {
		return err
	}
	if err := writeTensorMap(bw, params, a.g2); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadState implements Stateful.
func (a *AdaGrad) LoadState(r io.Reader, params []*nn.Param) error {
	br := bufio.NewReader(r)
	if err := readHeader(br, a.Name()); err != nil {
		return err
	}
	m, err := readTensorMap(br, params)
	if err != nil {
		return err
	}
	a.g2 = m
	return nil
}

// SaveState implements Stateful: the step counter and iterate averages.
func (a *ASGD) SaveState(w io.Writer, params []*nn.Param) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, a.Name()); err != nil {
		return err
	}
	if err := writeU64(bw, uint64(a.t)); err != nil {
		return err
	}
	if err := writeTensorMap(bw, params, a.avg); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadState implements Stateful.
func (a *ASGD) LoadState(r io.Reader, params []*nn.Param) error {
	br := bufio.NewReader(r)
	if err := readHeader(br, a.Name()); err != nil {
		return err
	}
	t, err := readU64(br)
	if err != nil {
		return err
	}
	m, err := readTensorMap(br, params)
	if err != nil {
		return err
	}
	a.t, a.avg = int(t), m
	return nil
}

// SaveState implements Stateful: the per-param center variables.
func (e *EASGD) SaveState(w io.Writer, params []*nn.Param) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, e.Name()); err != nil {
		return err
	}
	if err := writeTensorMap(bw, params, e.center); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadState implements Stateful.
func (e *EASGD) LoadState(r io.Reader, params []*nn.Param) error {
	br := bufio.NewReader(r)
	if err := readHeader(br, e.Name()); err != nil {
		return err
	}
	m, err := readTensorMap(br, params)
	if err != nil {
		return err
	}
	e.center = m
	return nil
}
