package optim

import (
	"math"
	"testing"

	"avgpipe/internal/nn"
	"avgpipe/internal/tensor"
)

// quadratic sets up a single scalar-ish parameter minimizing f(w) = ½|w-target|²,
// whose gradient is (w - target).
func quadratic(init, target float32, n int) (*nn.Param, func() *tensor.Tensor) {
	p := nn.NewParam("w", tensor.Full(init, n))
	grad := func() *tensor.Tensor {
		return tensor.AddScalar(p.W, -target)
	}
	return p, grad
}

func converges(t *testing.T, opt Optimizer, steps int, tol float64) {
	t.Helper()
	p, grad := quadratic(5, 1, 4)
	for i := 0; i < steps; i++ {
		p.G.CopyFrom(grad())
		opt.Step([]*nn.Param{p})
	}
	for _, v := range p.W.Data() {
		if math.Abs(float64(v)-1) > tol {
			t.Fatalf("%s did not converge: w=%v", opt.Name(), v)
		}
	}
}

func TestSGDStepValue(t *testing.T) {
	p := nn.NewParam("w", tensor.Full(1, 2))
	p.G.Fill(0.5)
	NewSGD(0.1).Step([]*nn.Param{p})
	if got := p.W.At(0); math.Abs(float64(got)-0.95) > 1e-6 {
		t.Fatalf("w = %v, want 0.95", got)
	}
}

func TestSGDConverges(t *testing.T)     { converges(t, NewSGD(0.1), 200, 1e-3) }
func TestAdamConverges(t *testing.T)    { converges(t, NewAdam(0.1), 400, 1e-2) }
func TestAdaGradConverges(t *testing.T) { converges(t, NewAdaGrad(1.0), 400, 1e-2) }

func TestSGDMomentumAcceleratesOnQuadratic(t *testing.T) {
	run := func(momentum float64) float64 {
		p, grad := quadratic(5, 1, 1)
		opt := &SGD{LR: 0.05, Momentum: momentum}
		for i := 0; i < 30; i++ {
			p.G.CopyFrom(grad())
			opt.Step([]*nn.Param{p})
		}
		return math.Abs(float64(p.W.At(0)) - 1)
	}
	if run(0.9) >= run(0) {
		t.Fatal("momentum should make faster progress on a smooth quadratic")
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := nn.NewParam("w", tensor.Full(1, 1))
	opt := &SGD{LR: 0.1, WeightDecay: 0.5}
	p.G.Zero()
	opt.Step([]*nn.Param{p})
	if got := p.W.At(0); math.Abs(float64(got)-0.95) > 1e-6 {
		t.Fatalf("w = %v, want 0.95 from decay alone", got)
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	// With bias correction, the first Adam step is ≈ lr regardless of
	// gradient scale.
	for _, gscale := range []float32{0.001, 1, 1000} {
		p := nn.NewParam("w", tensor.Full(0, 1))
		p.G.Fill(gscale)
		NewAdam(0.1).Step([]*nn.Param{p})
		if got := float64(p.W.At(0)); math.Abs(got+0.1) > 1e-3 {
			t.Fatalf("first Adam step %v for grad %v, want ≈ -0.1", got, gscale)
		}
	}
}

func TestASGDAverageStabilizes(t *testing.T) {
	// Oscillating gradients make raw iterates bounce; the Polyak average
	// should sit near the center of the oscillation.
	p := nn.NewParam("w", tensor.Full(0, 1))
	opt := NewASGD(0.5, 1)
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			p.G.Fill(1)
		} else {
			p.G.Fill(-1)
		}
		opt.Step([]*nn.Param{p})
	}
	avg := nn.NewParam("w", p.W.Clone())
	// Average() writes into the same identity it saw during Step.
	opt.Average([]*nn.Param{p})
	if math.Abs(float64(p.W.At(0))) > 0.3 {
		t.Fatalf("ASGD average should damp oscillation, got %v", p.W.At(0))
	}
	_ = avg
}

func TestASGDBeforeTriggerNoAverage(t *testing.T) {
	p := nn.NewParam("w", tensor.Full(1, 1))
	opt := NewASGD(0.1, 100)
	p.G.Fill(1)
	opt.Step([]*nn.Param{p})
	w := p.W.At(0)
	opt.Average([]*nn.Param{p})
	if p.W.At(0) != w {
		t.Fatal("Average before trigger must be a no-op")
	}
}

func TestEASGDPullsTowardCenterSymmetrically(t *testing.T) {
	p := nn.NewParam("w", tensor.Full(4, 1))
	opt := NewEASGD(0, 0.25) // lr 0 isolates the elastic term
	opt.Step([]*nn.Param{p}) // initializes center at 4
	c := opt.Center(p)
	if c.At(0) != 4 {
		t.Fatalf("center init = %v", c.At(0))
	}
	// Move the worker away, then step: worker pulled back, center pulled
	// forward, by equal amounts.
	p.W.Fill(8)
	p.G.Zero()
	opt.Step([]*nn.Param{p})
	if got := p.W.At(0); math.Abs(float64(got)-7) > 1e-6 {
		t.Fatalf("worker = %v, want 7", got)
	}
	if got := opt.Center(p).At(0); math.Abs(float64(got)-5) > 1e-6 {
		t.Fatalf("center = %v, want 5", got)
	}
}

func TestEASGDConverges(t *testing.T) { converges(t, NewEASGD(0.1, 0.05), 400, 5e-2) }

func TestScaleGrads(t *testing.T) {
	p := nn.NewParam("w", tensor.New(3))
	p.G.Fill(8)
	ScaleGrads([]*nn.Param{p}, 4)
	if p.G.At(0) != 2 {
		t.Fatalf("scaled grad = %v, want 2", p.G.At(0))
	}
	ScaleGrads([]*nn.Param{p}, 1) // no-op
	if p.G.At(0) != 2 {
		t.Fatal("n=1 must be a no-op")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := nn.NewParam("w", tensor.New(4))
	p.G.Fill(3) // norm = 6
	pre := ClipGradNorm([]*nn.Param{p}, 3)
	if math.Abs(pre-6) > 1e-6 {
		t.Fatalf("pre-clip norm %v, want 6", pre)
	}
	if got := p.G.L2Norm(); math.Abs(got-3) > 1e-5 {
		t.Fatalf("post-clip norm %v, want 3", got)
	}
	// Below the threshold: untouched.
	pre2 := ClipGradNorm([]*nn.Param{p}, 10)
	if math.Abs(pre2-3) > 1e-5 || math.Abs(p.G.L2Norm()-3) > 1e-5 {
		t.Fatal("clip must not rescale below threshold")
	}
}

func TestOptimizerStatePerParamIdentity(t *testing.T) {
	// Two parameters of the same shape must keep separate Adam state.
	a := nn.NewParam("a", tensor.Full(0, 2))
	b := nn.NewParam("b", tensor.Full(0, 2))
	opt := NewAdam(0.1)
	a.G.Fill(1)
	b.G.Fill(-1)
	opt.Step([]*nn.Param{a, b})
	if a.W.At(0) >= 0 || b.W.At(0) <= 0 {
		t.Fatal("per-param state crossed between parameters")
	}
}
