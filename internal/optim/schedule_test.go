package optim

import (
	"math"
	"testing"

	"avgpipe/internal/nn"
	"avgpipe/internal/tensor"
)

func TestWarmupRampsLinearly(t *testing.T) {
	w := Warmup{Base: 1, Steps: 10}
	if got := w.LR(0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("step 0: %v", got)
	}
	if got := w.LR(9); math.Abs(got-1) > 1e-12 {
		t.Fatalf("step 9: %v", got)
	}
	if got := w.LR(100); got != 1 {
		t.Fatalf("after warmup: %v", got)
	}
}

func TestWarmupDelegates(t *testing.T) {
	w := Warmup{Base: 1, Steps: 5, After: StepDecay{Base: 1, Factor: 0.5, Every: 10}}
	// Step 5 is After's step 0.
	if got := w.LR(5); got != 1 {
		t.Fatalf("delegated step 0: %v", got)
	}
	if got := w.LR(15); got != 0.5 {
		t.Fatalf("delegated step 10: %v", got)
	}
}

func TestCosineDecay(t *testing.T) {
	c := CosineDecay{Base: 1, Min: 0.1, Steps: 100}
	if got := c.LR(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("start: %v", got)
	}
	mid := c.LR(50)
	if math.Abs(mid-0.55) > 1e-9 {
		t.Fatalf("midpoint: %v, want 0.55", mid)
	}
	if got := c.LR(100); got != 0.1 {
		t.Fatalf("end: %v", got)
	}
	if got := c.LR(1000); got != 0.1 {
		t.Fatalf("past end: %v", got)
	}
	// Monotone decreasing.
	prev := 2.0
	for s := 0; s <= 100; s += 10 {
		v := c.LR(s)
		if v > prev {
			t.Fatalf("not monotone at %d", s)
		}
		prev = v
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Base: 8, Factor: 0.5, Every: 3}
	for step, want := range map[int]float64{0: 8, 2: 8, 3: 4, 6: 2, 9: 1} {
		if got := s.LR(step); got != want {
			t.Fatalf("step %d: %v, want %v", step, got, want)
		}
	}
	if got := (StepDecay{Base: 8}).LR(100); got != 8 {
		t.Fatal("Every=0 must hold Base")
	}
}

func TestConstantLR(t *testing.T) {
	if got := (ConstantLR{Base: 3}).LR(999); got != 3 {
		t.Fatal("constant")
	}
}

func TestApplySetsOptimizerLR(t *testing.T) {
	p := nn.NewParam("w", tensor.Full(1, 1))
	p.G.Fill(1)
	opt := NewSGD(999) // wrong LR; the scheduler must overwrite it
	Apply(opt, ConstantLR{Base: 0.5}, 0)
	opt.Step([]*nn.Param{p})
	if got := p.W.At(0); math.Abs(float64(got)-0.5) > 1e-6 {
		t.Fatalf("w = %v; scheduler LR not applied", got)
	}
	// nil scheduler is a no-op.
	Apply(opt, nil, 1)
	if opt.LR != 0.5 {
		t.Fatal("nil scheduler must not modify LR")
	}
}

func TestAllOptimizersAreLRSetters(t *testing.T) {
	for _, opt := range []Optimizer{NewSGD(1), NewAdam(1), NewAdaGrad(1), NewASGD(1, 1), NewEASGD(1, 0.1)} {
		if _, ok := opt.(LRSetter); !ok {
			t.Fatalf("%s does not implement LRSetter", opt.Name())
		}
	}
}
