package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"avgpipe/internal/data"
	"avgpipe/internal/fault"
	netx "avgpipe/internal/net"
	"avgpipe/internal/nn"
	"avgpipe/internal/obs"
	"avgpipe/internal/optim"
	"avgpipe/internal/sched"
	"avgpipe/internal/workload"
)

// TrainerConfig configures an elastic-averaging training run on a real
// (scaled-down) workload task.
type TrainerConfig struct {
	Task *workload.Task
	// Pipelines is N; Micro is M; StageCount is K (the pipeline depth).
	Pipelines  int
	Micro      int
	StageCount int
	// Advance is the per-stage advance-forward allowance (nil = 1F1B),
	// consumed by the default AFP schedule plan.
	Advance []int
	// Plan selects the pipeline schedule family every replica executes
	// (sched.AFABPlan, sched.OneFOneBPlan, sched.AFPPlan, ...). The zero
	// value means AFP with Advance — i.e. 1F1B when Advance is nil.
	Plan sched.Plan
	// Partition selects the layer→stage assignment policy: equal layer
	// counts (default) or the cost-aware PipeDream DP.
	Partition PartitionMode
	// Trace records per-op timestamps in every pipeline's StageMetrics.
	Trace bool
	// Compiled runs every pipeline through the compiled op-graph path
	// (static per-stage op lists with the 2BP backward split) instead of
	// the reference interpreter. Loss-bitwise-equivalent for the same
	// seed; logged per round in StepRecord.Compiled.
	Compiled bool
	// Seed derives all replica initializations and data streams.
	Seed int64
	// ClipNorm, when > 0, applies global gradient-norm clipping.
	ClipNorm float64
	// Alpha overrides the elastic coefficient (0 = the 1/N default).
	Alpha float64
	// AsyncDilute dilutes each replica immediately after its local step
	// against whatever reference is current, instead of waiting for the
	// round's updates to apply (§3.2's fully asynchronous mode; the
	// synchronous round is the default because it removes the one-round
	// reference lag). Exposed for the ablation study.
	AsyncDilute bool
	// Obs selects the metrics registry the trainer, its pipelines, and
	// the averager record into (nil = obs.Default()).
	Obs *obs.Registry
	// Faults declares the deterministic fault schedule injected into the
	// run (zero value = no faults): delayed/dropped averaging updates,
	// straggler stages, and a scripted replica crash/rejoin.
	Faults fault.Config
	// RoundDeadline bounds how long an averaging round waits for
	// stragglers before closing over the updates that arrived (0 = wait
	// forever). Required for training to make progress past dropped
	// updates.
	RoundDeadline time.Duration
	// Watchdog arms every pipeline's liveness monitor: a batch during
	// which no op retires for this window fails with a *StallError
	// instead of hanging (0 = no watchdog).
	Watchdog time.Duration
	// Dist, when set, runs this process as ONE replica of a multi-process
	// elastic-averaging job: only Dist.ReplicaID's pipeline is built
	// locally, updates fan out to the peers over Dist.Mesh, and each
	// round ends with the distributed round barrier instead of a local
	// drain. Pipelines is still the job's TOTAL replica count N.
	Dist *DistConfig
	// Compress selects the update wire codec (net.CodecNone = exact f32
	// deltas, the default; q8/q16/topk compress each update with error
	// feedback — see Averager.SetCompression). In dist mode every
	// connected peer must advertise support for the codec.
	Compress netx.Codec
	// TopK is the kept-coefficient fraction for net.CodecTopK in (0, 1]
	// (0 = net.DefaultTopKFraction); other codecs ignore it.
	TopK float64
}

// DistConfig identifies this process within a multi-process job.
type DistConfig struct {
	// ReplicaID is this process's pipeline index in [0, Pipelines).
	ReplicaID int
	// Mesh is the formed averaging fabric connecting the job's replicas
	// (net.FormMesh, or net.FormTopology for ring/hierarchical). Its
	// Self must equal ReplicaID and its N must equal Pipelines. The
	// trainer attaches it to its averager and closes it with the
	// trainer.
	Mesh *netx.Mesh
}

// Trainer runs N parallel pipelines, each training a replica on its own
// batch stream, coupled through the elastic-averaging reference model.
// It is the end-to-end AvgPipe runtime on real tensors.
type Trainer struct {
	cfg       TrainerConfig
	pipelines []*Pipeline
	gens      []data.Generator
	opts      []optim.Optimizer
	avg       *Averager
	evalModel *nn.Sequential
	evalGen   data.Generator
	round     int

	// faults scripts the run's injected failures (nil = none); detached
	// marks replicas currently crashed out of the averaging set.
	faults   *fault.Injector
	detached []bool

	stepLog *obs.JSONL

	stepSec       *obs.Histogram
	samplesTotal  *obs.Counter
	tokensTotal   *obs.Counter
	samplesPerSec *obs.Gauge
	tokensPerSec  *obs.Gauge
	lossGauge     *obs.Gauge
	roundGauge    *obs.Gauge
}

// StepRecord is one structured JSONL line per training round — the
// step/epoch log the internal/exp figure harness and offline plotting
// consume.
type StepRecord struct {
	Round       int     `json:"round"`
	Loss        float64 `json:"loss"`
	StepSeconds float64 `json:"step_seconds"`
	Samples     int     `json:"samples"`
	Tokens      int     `json:"tokens"`
	SamplesPerS float64 `json:"samples_per_sec"`
	TokensPerS  float64 `json:"tokens_per_sec"`
	OpenRounds  int     `json:"open_rounds"`
	Live        int     `json:"live_replicas"`
	// Losses lists every pipeline's local loss for the round, indexed by
	// pipeline (zero for detached replicas). A dist-mode process only
	// runs one pipeline, so its records carry Replica and the local Loss
	// instead: comparing that Loss against a single-process run's
	// Losses[Replica] is the bitwise-determinism check.
	Losses  []float64 `json:"losses,omitempty"`
	Replica int       `json:"replica"`
	// ReplicaID attributes the record in merged multi-process streams:
	// the owning replica's id in dist mode, -1 for a single-process run
	// (where every replica is local and Losses carries the breakdown).
	ReplicaID int `json:"replica_id"`
	// Compiled records which execution path produced the round, so runs
	// comparing the two paths are distinguishable from their logs alone.
	Compiled bool `json:"compiled"`
}

// NewTrainer builds the replicas, data streams, optimizers, and the
// reference model. All replicas start from the same initialization (the
// usual elastic-averaging warm start). A malformed config — missing
// task, non-positive dimensions, invalid fault schedule, bad pipeline
// geometry — is an error, not a panic, so callers can degrade
// gracefully.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) {
	if cfg.Task == nil {
		return nil, errors.New("core: trainer config needs a Task")
	}
	if cfg.Pipelines <= 0 || cfg.Micro <= 0 || cfg.StageCount <= 0 {
		return nil, fmt.Errorf("core: trainer needs positive Pipelines/Micro/StageCount, got %d/%d/%d",
			cfg.Pipelines, cfg.Micro, cfg.StageCount)
	}
	if d := cfg.Dist; d != nil {
		if d.Mesh == nil {
			return nil, errors.New("core: DistConfig needs a formed Mesh")
		}
		if d.ReplicaID < 0 || d.ReplicaID >= cfg.Pipelines {
			return nil, fmt.Errorf("core: dist replica id %d outside [0, %d)", d.ReplicaID, cfg.Pipelines)
		}
		if d.Mesh.Self != d.ReplicaID || d.Mesh.N != cfg.Pipelines {
			return nil, fmt.Errorf("core: mesh is replica %d of %d, config says replica %d of %d",
				d.Mesh.Self, d.Mesh.N, d.ReplicaID, cfg.Pipelines)
		}
	}
	t := &Trainer{cfg: cfg, detached: make([]bool, cfg.Pipelines)}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default()
	}
	if cfg.Faults != (fault.Config{}) {
		in, err := fault.New(cfg.Faults, cfg.Obs)
		if err != nil {
			return nil, err
		}
		t.faults = in
	}
	// In dist mode every trainer metric carries this process's replica
	// label, so the telemetry collector can merge N processes' streams
	// without relabeling collisions.
	var lbl []string
	if cfg.Dist != nil {
		lbl = []string{"replica", fmt.Sprint(cfg.Dist.ReplicaID)}
	}
	t.stepSec = reg.Histogram("avgpipe_train_step_seconds",
		"Wall time of one training round across all pipelines.", nil, lbl...)
	t.samplesTotal = reg.Counter("avgpipe_train_samples_total", "Training examples consumed.", lbl...)
	t.tokensTotal = reg.Counter("avgpipe_train_tokens_total", "Training targets (tokens) consumed.", lbl...)
	t.samplesPerSec = reg.Gauge("avgpipe_train_samples_per_second", "Throughput of the last round.", lbl...)
	t.tokensPerSec = reg.Gauge("avgpipe_train_tokens_per_second", "Token throughput of the last round.", lbl...)
	t.lossGauge = reg.Gauge("avgpipe_train_loss", "Mean training loss of the last round.", lbl...)
	t.roundGauge = reg.Gauge("avgpipe_train_round", "Completed training rounds.", lbl...)
	base := cfg.Task.NewModel(cfg.Seed)
	t.pipelines = make([]*Pipeline, cfg.Pipelines)
	t.gens = make([]data.Generator, cfg.Pipelines)
	t.opts = make([]optim.Optimizer, cfg.Pipelines)
	for p := 0; p < cfg.Pipelines; p++ {
		if !t.local(p) {
			continue // a peer process owns this replica
		}
		m := cfg.Task.NewModel(cfg.Seed) // same seed: identical start
		pl, err := NewPipelineWith(m, PipelineConfig{
			Stages: cfg.StageCount, Plan: cfg.Plan, Advance: cfg.Advance,
			Partition: cfg.Partition, Trace: cfg.Trace, Obs: cfg.Obs,
			Compiled: cfg.Compiled,
		})
		if err != nil {
			return nil, err
		}
		pl.SetFaults(t.faults, p)
		pl.SetWatchdog(cfg.Watchdog)
		t.pipelines[p] = pl
		t.gens[p] = cfg.Task.NewGen(cfg.Seed + 100 + int64(p))
		t.opts[p] = newOptimizer(cfg.Task)
	}
	t.avg = NewAveragerObs(cfg.Pipelines, base.Params(), cfg.Obs)
	if cfg.Alpha > 0 {
		t.avg.Alpha = cfg.Alpha
	}
	t.avg.SetFaults(t.faults)
	if cfg.Dist != nil {
		t.avg.AttachMesh(cfg.Dist.Mesh)
	}
	if cfg.Compress != netx.CodecNone {
		if d := cfg.Dist; d != nil && !d.Mesh.SupportsCodec(cfg.Compress) {
			return nil, fmt.Errorf("core: a mesh peer does not support update codec %v", cfg.Compress)
		}
		if err := t.avg.SetCompression(cfg.Compress, cfg.TopK); err != nil {
			return nil, err
		}
	}
	if cfg.RoundDeadline > 0 {
		t.avg.SetRoundDeadline(cfg.RoundDeadline)
	}
	t.evalModel = base
	t.evalGen = cfg.Task.NewGen(cfg.Seed + 999)
	return t, nil
}

// local reports whether pipeline p runs in this process (always true
// outside dist mode).
func (t *Trainer) local(p int) bool {
	return t.cfg.Dist == nil || t.cfg.Dist.ReplicaID == p
}

func newOptimizer(task *workload.Task) optim.Optimizer {
	if task.UseSGD {
		return optim.NewSGD(task.LR)
	}
	return optim.NewAdam(task.LR)
}

// Step runs one training round: every pipeline processes one batch (M
// micro-batches through K stages), applies its local optimizer update,
// and performs the elastic-averaging exchange. It returns the mean
// training loss across live pipelines. It panics if the round fails
// (only possible with a watchdog armed or a cancelled context);
// StepContext is the error-returning variant.
func (t *Trainer) Step() float64 {
	loss, err := t.StepContext(context.Background())
	if err != nil {
		panic(fmt.Sprintf("core: Step: %v", err))
	}
	return loss
}

// StepContext runs one training round under supervision: the round
// fails — with a *StallError per wedged pipeline — when a watchdog
// window elapses with no op retired, and aborts cleanly when ctx is
// cancelled. Scripted faults fire here: a replica whose crash round has
// arrived detaches from the averaging set (its rounds renormalize over
// the survivors), and a replica whose rejoin round has arrived restarts
// from the reference model with fresh optimizer state.
func (t *Trainer) StepContext(ctx context.Context) (float64, error) {
	if t.cfg.Dist != nil {
		return t.stepDist(ctx)
	}
	n := t.cfg.Pipelines
	round := t.round
	for p := 0; p < n; p++ {
		if !t.detached[p] && t.faults.CrashAt(p, round) {
			t.avg.Detach(p)
			t.detached[p] = true
		}
		if t.detached[p] && t.faults.RejoinAt(p, round) {
			// A rebooted process, not a resumed one: weights reseed from
			// the reference (the elastic pull) and optimizer state starts
			// over.
			t.avg.Rejoin(p, t.pipelines[p].Params())
			t.opts[p] = newOptimizer(t.cfg.Task)
			t.detached[p] = false
		}
	}
	losses := make([]float64, n)
	errs := make([]error, n)
	live := 0
	var samples, tokens int64
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		batch := t.gens[p].NextBatch(t.cfg.Task.BatchSize)
		if t.detached[p] {
			// The batch is drawn and discarded so every generator's state
			// stays a pure function of the round counter — which is what
			// lets checkpoint restore fast-forward the streams.
			continue
		}
		live++
		samples += int64(batch.Size)
		tokens += int64(len(batch.Targets))
		wg.Add(1)
		go func(p int, batch *data.Batch) {
			defer wg.Done()
			pl := t.pipelines[p]
			loss, err := pl.RunBatchContext(ctx, batch, t.cfg.Micro)
			if err != nil {
				nn.ZeroGrads(pl.Params()) // partial gradients are meaningless
				errs[p] = fmt.Errorf("pipeline %d: %w", p, err)
				return
			}
			losses[p] = loss
			if t.cfg.ClipNorm > 0 {
				optim.ClipGradNorm(pl.Params(), t.cfg.ClipNorm)
			}
			t.opts[p].Step(pl.Params())
			nn.ZeroGrads(pl.Params())
			if t.cfg.AsyncDilute {
				t.avg.AfterStep(p, round, pl.Params())
			} else {
				t.avg.Submit(p, round, pl.Params())
			}
		}(p, batch)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return 0, err
	}
	if !t.cfg.AsyncDilute {
		// Synchronous elastic round: dilute against the reference that
		// already includes this round's updates, so the pull is pure
		// variance reduction rather than a drag on the common trajectory.
		if err := t.avg.DrainContext(ctx); err != nil {
			return 0, err
		}
		for p := 0; p < n; p++ {
			if t.detached[p] {
				continue
			}
			t.avg.Dilute(p, t.pipelines[p].Params())
		}
	}
	t.round++
	var total float64
	for _, l := range losses {
		total += l
	}
	var loss float64
	if live > 0 {
		loss = total / float64(live)
	}

	dur := time.Since(start).Seconds()
	t.stepSec.Observe(dur)
	t.samplesTotal.Add(float64(samples))
	t.tokensTotal.Add(float64(tokens))
	var sps, tps float64
	if dur > 0 {
		sps, tps = float64(samples)/dur, float64(tokens)/dur
	}
	t.samplesPerSec.Set(sps)
	t.tokensPerSec.Set(tps)
	t.lossGauge.Set(loss)
	t.roundGauge.Set(float64(t.round))
	if err := t.stepLog.Log(StepRecord{
		Round: t.round - 1, Loss: loss, StepSeconds: dur,
		Samples: int(samples), Tokens: int(tokens),
		SamplesPerS: sps, TokensPerS: tps,
		OpenRounds: t.avg.PendingRounds(),
		Live:       live,
		Losses:     losses,
		ReplicaID:  -1,
		Compiled:   t.cfg.Compiled,
	}); err != nil {
		return loss, fmt.Errorf("core: step log: %w", err)
	}
	return loss, nil
}

// stepDist runs one training round of a multi-process job: the local
// replica processes its batch, applies its local optimizer update,
// submits the delta (which fans out to every peer's reference copy),
// waits for the round to close on the local reference copy — the
// distributed barrier that replaces Drain, whose watermarks only see
// local submits — and dilutes. Because every process applies the same
// deterministic reduction, the local loss sequence is bit-identical to
// the same replica's losses in a single-process run of the same job.
func (t *Trainer) stepDist(ctx context.Context) (float64, error) {
	p := t.cfg.Dist.ReplicaID
	round := t.round
	if !t.detached[p] && t.faults.CrashAt(p, round) {
		t.avg.Detach(p)
		t.detached[p] = true
	}
	if t.detached[p] && t.faults.RejoinAt(p, round) {
		t.avg.Rejoin(p, t.pipelines[p].Params())
		t.opts[p] = newOptimizer(t.cfg.Task)
		t.detached[p] = false
	}
	start := time.Now()
	batch := t.gens[p].NextBatch(t.cfg.Task.BatchSize)
	var loss float64
	var samples, tokens int64
	if !t.detached[p] {
		samples, tokens = int64(batch.Size), int64(len(batch.Targets))
		pl := t.pipelines[p]
		l, err := pl.RunBatchContext(ctx, batch, t.cfg.Micro)
		if err != nil {
			nn.ZeroGrads(pl.Params())
			return 0, fmt.Errorf("pipeline %d: %w", p, err)
		}
		loss = l
		if t.cfg.ClipNorm > 0 {
			optim.ClipGradNorm(pl.Params(), t.cfg.ClipNorm)
		}
		t.opts[p].Step(pl.Params())
		nn.ZeroGrads(pl.Params())
		if err := t.avg.SubmitContext(ctx, p, round, pl.Params()); err != nil {
			return 0, err
		}
		if t.cfg.AsyncDilute {
			t.avg.Dilute(p, pl.Params())
		}
	}
	if !t.cfg.AsyncDilute {
		// Synchronous elastic round across processes: wait until this
		// round has been applied to the local reference copy (all live
		// replicas' updates arrived, or the round deadline expired it).
		if err := t.avg.WaitRound(ctx, round); err != nil {
			return 0, err
		}
		if !t.detached[p] {
			t.avg.Dilute(p, t.pipelines[p].Params())
		}
	}
	t.round++

	dur := time.Since(start).Seconds()
	t.stepSec.Observe(dur)
	t.samplesTotal.Add(float64(samples))
	t.tokensTotal.Add(float64(tokens))
	var sps, tps float64
	if dur > 0 {
		sps, tps = float64(samples)/dur, float64(tokens)/dur
	}
	t.samplesPerSec.Set(sps)
	t.tokensPerSec.Set(tps)
	t.lossGauge.Set(loss)
	t.roundGauge.Set(float64(t.round))
	if err := t.stepLog.Log(StepRecord{
		Round: round, Loss: loss, StepSeconds: dur,
		Samples: int(samples), Tokens: int(tokens),
		SamplesPerS: sps, TokensPerS: tps,
		OpenRounds: t.avg.PendingRounds(),
		Live:       t.avg.LiveReplicas(),
		Replica:    p,
		ReplicaID:  p,
		Compiled:   t.cfg.Compiled,
	}); err != nil {
		return loss, fmt.Errorf("core: step log: %w", err)
	}
	return loss, nil
}

// RejoinMesh re-enters a restarted dist-mode process into a running
// job without operator input: the averager pulls the current reference
// state from a peer, the local pipeline reseeds from it with fresh
// optimizer state (a rebooted replica, not a resumed one), the data
// stream fast-forwards to the join round, and the rejoin is announced
// so peers re-admit this replica. It returns the round training should
// resume at. Call after NewTrainer and before the first StepContext.
func (t *Trainer) RejoinMesh(ctx context.Context) (int, error) {
	if t.cfg.Dist == nil {
		return 0, errors.New("core: RejoinMesh requires dist mode")
	}
	join, err := t.avg.ResumeReplica(ctx)
	if err != nil {
		return 0, err
	}
	p := t.cfg.Dist.ReplicaID
	pl := t.pipelines[p]
	t.avg.WriteReference(pl.Params())
	t.avg.SeedReplica(p, pl.Params())
	t.opts[p] = newOptimizer(t.cfg.Task)
	t.gens[p] = t.cfg.Task.NewGen(t.cfg.Seed + 100 + int64(p))
	for r := 0; r < join; r++ {
		t.gens[p].NextBatch(t.cfg.Task.BatchSize)
	}
	t.round = join
	// Re-measure peer clock offsets now that our inbound loops answer
	// pings: a rejoiner skips the quiescent formation-time sync (its
	// peers are mid-training). Best effort — offsets only align traces.
	if m := t.cfg.Dist.Mesh; m != nil {
		for _, id := range m.Peers() {
			_, _ = m.ResyncClock(ctx, id)
		}
	}
	return join, nil
}

// SetStepLog streams one StepRecord JSON line per Step to w (nil stops
// logging). Call before training, not concurrently with Step.
func (t *Trainer) SetStepLog(w io.Writer) {
	if w == nil {
		t.stepLog = nil
		return
	}
	t.stepLog = obs.NewJSONL(w)
}

// Round returns the number of completed rounds.
func (t *Trainer) Round() int { return t.round }

// Eval evaluates the reference model on the held-out batch and returns
// loss and accuracy.
func (t *Trainer) Eval() (loss, acc float64) {
	t.avg.Drain()
	t.avg.WriteReference(t.evalModel.Params())
	return workload.Evaluate(t.evalModel, t.evalGen.EvalBatch(), t.cfg.Task.PerPosition)
}

// ReferenceSnapshot drains the averager and returns the up-to-date
// reference parameters — the averaged model a serving tier publishes.
// The returned slice aliases the trainer's eval model; callers that
// ship it elsewhere (e.g. a snapshot frame) should copy the data before
// the next round mutates it.
func (t *Trainer) ReferenceSnapshot() []*nn.Param {
	t.avg.Drain()
	t.avg.WriteReference(t.evalModel.Params())
	return t.evalModel.Params()
}

// Close releases the reference-model goroutine.
func (t *Trainer) Close() { t.avg.Close() }

// Averager exposes the underlying elastic averager (for tests and
// ablations).
func (t *Trainer) Averager() *Averager { return t.avg }

// Pipelines exposes the replica pipelines.
func (t *Trainer) Pipelines() []*Pipeline { return t.pipelines }
