package core

import (
	"context"
	"errors"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"avgpipe/internal/fault"
	"avgpipe/internal/nn"
	"avgpipe/internal/obs"
	"avgpipe/internal/sched"
	"avgpipe/internal/workload"
)

// --- averager elastic recovery ---

// addAll adds v to every element of every parameter, so the replica's
// next delta is exactly v per element.
func addAll(ps []*nn.Param, v float32) {
	for _, p := range ps {
		d := p.W.Data()
		for i := range d {
			d[i] += v
		}
	}
}

func TestAveragerDetachRenormalizes(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAveragerObs(3, paramsOf(0), reg)
	defer a.Close()
	// Round 0 at full strength: deltas 3, 6, 9 → reference mean 6.
	r0, r1, r2 := paramsOf(3), paramsOf(6), paramsOf(9)
	a.Submit(0, 0, r0)
	a.Submit(1, 0, r1)
	a.Submit(2, 0, r2)
	a.Drain()
	if got := a.Reference()[0].At(0); got != 6 {
		t.Fatalf("reference after full round = %v, want 6", got)
	}
	// Reset delta baselines to current replica weights.
	a.Dilute(0, r0)
	a.Dilute(1, r1)
	a.Dilute(2, r2)

	a.Detach(2)
	if a.LiveReplicas() != 2 || a.Live(2) {
		t.Fatalf("after detach: live=%d, Live(2)=%v", a.LiveReplicas(), a.Live(2))
	}
	if got := reg.Gauge("avgpipe_avg_degraded_replicas", "").Value(); got != 1 {
		t.Fatalf("degraded gauge %v, want 1", got)
	}
	// Round 1 must complete with only the two live replicas, and the
	// moving rate renormalizes over the 2 arrivals, not N=3.
	ref1 := a.Reference()[0].At(0)
	addAll(r0, 2) // delta 2
	addAll(r1, 4) // delta 4
	a.Submit(0, 1, r0)
	a.Submit(1, 1, r1)
	a.Drain()
	if a.PendingRounds() != 0 {
		t.Fatalf("round 1 still pending with %d open rounds after detach", a.PendingRounds())
	}
	if got, want := a.Reference()[0].At(0), ref1+3; got != want {
		t.Fatalf("degraded round reference = %v, want %v (mean of 2 live deltas)", got, want)
	}
}

func TestAveragerDetachClosesWaitingRound(t *testing.T) {
	a := NewAverager(2, paramsOf(0))
	defer a.Close()
	r0 := paramsOf(1)
	a.Submit(0, 0, r0)
	a.Drain() // ingested but the round still waits on replica 1
	if a.PendingRounds() != 1 {
		t.Fatalf("open rounds = %d, want 1", a.PendingRounds())
	}
	a.Detach(1)
	if a.PendingRounds() != 0 {
		t.Fatal("detach did not close the round waiting only on the departed replica")
	}
	if got := a.Reference()[0].At(0); got != 1 {
		t.Fatalf("reference = %v, want 1 (renormalized over the single arrival)", got)
	}
}

func TestAveragerRejoinReseedsFromReference(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAveragerObs(2, paramsOf(5), reg)
	defer a.Close()
	a.Detach(1)
	r0 := paramsOf(7) // delta +2 from the shared init of 5
	a.Submit(0, 0, r0)
	a.Drain()
	if got := a.Reference()[0].At(0); got != 7 {
		t.Fatalf("solo round reference = %v, want 7", got)
	}
	// The rejoining replica restarts from the reference, whatever its
	// weights were when it died.
	r1 := paramsOf(123)
	a.Rejoin(1, r1)
	if got := r1[0].W.At(0); got != 7 {
		t.Fatalf("rejoined replica weight = %v, want the reference 7", got)
	}
	if !a.Live(1) || a.LiveReplicas() != 2 {
		t.Fatalf("after rejoin: live=%d, Live(1)=%v", a.LiveReplicas(), a.Live(1))
	}
	if got := reg.Counter("avgpipe_avg_detaches_total", "").Value(); got != 1 {
		t.Fatalf("detaches counter %v, want 1", got)
	}
	if got := reg.Counter("avgpipe_avg_rejoins_total", "").Value(); got != 1 {
		t.Fatalf("rejoins counter %v, want 1", got)
	}
	if got := reg.Histogram("avgpipe_avg_recovery_seconds", "", nil).Count(); got != 1 {
		t.Fatalf("recovery histogram count %v, want 1", got)
	}
	if got := reg.Gauge("avgpipe_avg_degraded_replicas", "").Value(); got != 0 {
		t.Fatalf("degraded gauge %v, want 0 after rejoin", got)
	}
	// Its first post-recovery delta is measured from the reseeded
	// baseline: both replicas move +2, so the reference moves +2.
	a.Dilute(0, r0)
	addAll(r0, 2)
	addAll(r1, 2)
	a.Submit(0, 1, r0)
	a.Submit(1, 1, r1)
	a.Drain()
	if got := a.Reference()[0].At(0); got != 9 {
		t.Fatalf("post-rejoin reference = %v, want 9", got)
	}
	// Detach/Rejoin of out-of-range or already-live replicas are no-ops.
	a.Detach(99)
	a.Rejoin(0, r0)
	if a.LiveReplicas() != 2 {
		t.Fatal("no-op detach/rejoin changed the live set")
	}
}

// A replica rejoining while a round is open must not count toward that
// round's quorum: it will never submit to it, so admitting it would
// leave the round one update short forever (regression test for the
// inflated-quorum wedge).
func TestAveragerRejoinDoesNotInflateOpenRoundQuorum(t *testing.T) {
	a := NewAverager(3, paramsOf(0))
	defer a.Close()
	a.Detach(2)
	// Round 0 opens with quorum {0, 1}.
	r0, r1 := paramsOf(4), paramsOf(8)
	a.Submit(0, 0, r0)
	a.Drain() // ensure the round is open before the rejoin
	if a.PendingRounds() != 1 {
		t.Fatalf("round 0 not open: %d pending", a.PendingRounds())
	}
	r2 := paramsOf(0)
	a.Rejoin(2, r2)
	// Replica 1's update is the second of two — the round must close
	// even though three replicas are now live.
	a.Submit(1, 0, r1)
	a.Drain()
	if a.PendingRounds() != 0 {
		t.Fatal("round 0 wedged: rejoined replica counted toward an open round's quorum")
	}
	if got := a.Reference()[0].At(0); got != 6 {
		t.Fatalf("round 0 reference = %v, want 6 (mean of the two admitted deltas)", got)
	}
	// From the next round on, the rejoined replica is a full member:
	// round 1 must wait for all three.
	a.Dilute(0, r0)
	a.Dilute(1, r1)
	addAll(r0, 3)
	addAll(r1, 3)
	addAll(r2, 3)
	a.Submit(0, 1, r0)
	a.Submit(1, 1, r1)
	a.Drain()
	if a.PendingRounds() != 1 {
		t.Fatalf("round 1 closed without the rejoined replica: %d pending", a.PendingRounds())
	}
	a.Submit(2, 1, r2)
	a.Drain()
	if a.PendingRounds() != 0 {
		t.Fatal("round 1 did not close after every live replica reported")
	}
	if got := a.Reference()[0].At(0); got != 9 {
		t.Fatalf("round 1 reference = %v, want 9", got)
	}
}

func TestAveragerRoundDeadlineExpiresPartialRound(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAveragerObs(2, paramsOf(0), reg)
	defer a.Close()
	a.SetRoundDeadline(20 * time.Millisecond)
	r0 := paramsOf(4)
	a.Submit(0, 0, r0)
	a.Drain() // the update is ingested; the round waits on replica 1
	deadline := time.Now().Add(5 * time.Second)
	for a.PendingRounds() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if a.PendingRounds() != 0 {
		t.Fatal("deadline never expired the partial round")
	}
	if got := reg.Counter("avgpipe_avg_rounds_expired_total", "").Value(); got != 1 {
		t.Fatalf("expired counter %v, want 1", got)
	}
	if got := a.Reference()[0].At(0); got != 4 {
		t.Fatalf("expired round reference = %v, want 4 (normalized over the one arrival)", got)
	}
	// The straggler's update for the expired round arrives late: it is
	// discarded — never re-opens the round, never moves the reference —
	// and Drain still returns.
	r1 := paramsOf(100)
	a.Submit(1, 0, r1)
	a.Drain()
	if got := reg.Counter("avgpipe_avg_late_updates_total", "").Value(); got != 1 {
		t.Fatalf("late-updates counter %v, want 1", got)
	}
	if got := a.Reference()[0].At(0); got != 4 {
		t.Fatalf("late update moved the reference to %v", got)
	}
	if a.PendingRounds() != 0 {
		t.Fatal("late update re-opened a closed round")
	}
}

func TestAveragerSubmitErrorPaths(t *testing.T) {
	a := NewAverager(2, paramsOf(0))
	if err := a.SubmitContext(context.Background(), 5, 0, paramsOf(1)); err == nil {
		t.Fatal("out-of-range pipeline must be an error")
	}
	a.Close()
	if err := a.SubmitContext(context.Background(), 0, 0, paramsOf(1)); err == nil {
		t.Fatal("submit after Close must be an error, not a wedge")
	}
}

// TestAveragerDrainCloseSubmitRace hammers Submit from all replicas while
// Drain and Close run concurrently — the -race tier's target. The
// invariants: no data race, no deadlock, and Close always returns.
func TestAveragerDrainCloseSubmitRace(t *testing.T) {
	a := NewAveragerObs(4, paramsOf(0), obs.NewRegistry())
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := paramsOf(1)
			// Bounded rounds: an unbounded spray lets a fast submitter run
			// millions of rounds ahead, which is a memory test, not a race
			// test.
			for round := 0; round < 3000; round++ {
				if err := a.SubmitContext(context.Background(), p, round, r); err != nil {
					return // queue closed: the expected exit
				}
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for i := 0; i < 20; i++ {
			if err := a.DrainContext(ctx); err != nil {
				return
			}
		}
	}()
	time.Sleep(2 * time.Millisecond)
	done := make(chan struct{})
	go func() { a.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close wedged against concurrent Submit/Drain")
	}
	wg.Wait()
}

// --- trainer chaos recovery (the acceptance scenario) ---

// TestTrainerChaosRecovery crashes 1 of 4 pipelines mid-training, delays
// 10% of averaging messages, and requires the run to complete, the
// replica to rejoin, and the final eval loss to stay within 5% of the
// fault-free run with the same seed.
func TestTrainerChaosRecovery(t *testing.T) {
	task := workload.ClassificationTask()
	const n, rounds, crashRound, rejoinAfter = 4, 40, 10, 5
	// The Makefile faults tier sweeps this seed over a fixed matrix; every
	// seed must recover.
	faultSeed := int64(99)
	if s := os.Getenv("AVGPIPE_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("AVGPIPE_CHAOS_SEED %q: %v", s, err)
		}
		faultSeed = v
	}
	build := func(f fault.Config, deadline time.Duration, reg *obs.Registry) *Trainer {
		t.Helper()
		tr, err := NewTrainer(TrainerConfig{
			Task: task, Pipelines: n, Micro: 2, StageCount: 2, Seed: 21,
			ClipNorm: 5, Obs: reg, Faults: f, RoundDeadline: deadline,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	reg := obs.NewRegistry()
	chaos := build(fault.Config{
		Seed:          faultSeed,
		MsgDelayProb:  0.10,
		MsgDelay:      2 * time.Millisecond,
		CrashPipeline: 2,
		CrashRound:    crashRound,
		RejoinAfter:   rejoinAfter,
	}, 250*time.Millisecond, reg)
	defer chaos.Close()
	clean := build(fault.Config{}, 0, obs.NewRegistry())
	defer clean.Close()

	for r := 0; r < rounds; r++ {
		if _, err := chaos.StepContext(context.Background()); err != nil {
			t.Fatalf("chaos round %d: %v", r, err)
		}
		clean.Step()
		switch r {
		case crashRound:
			if live := chaos.Averager().LiveReplicas(); live != n-1 {
				t.Fatalf("round %d: %d live replicas, want %d (crash)", r, live, n-1)
			}
		case crashRound + rejoinAfter:
			if live := chaos.Averager().LiveReplicas(); live != n {
				t.Fatalf("round %d: %d live replicas, want %d (rejoin)", r, live, n)
			}
		}
	}
	if got := reg.Counter("avgpipe_fault_crashes_total", "").Value(); got != 1 {
		t.Errorf("crashes counter %v, want 1", got)
	}
	if got := reg.Counter("avgpipe_fault_rejoins_total", "").Value(); got != 1 {
		t.Errorf("rejoins counter %v, want 1", got)
	}
	if got := reg.Counter("avgpipe_fault_msgs_delayed_total", "").Value(); got == 0 {
		t.Error("no messages were delayed at MsgDelayProb = 0.10 over 160 updates")
	}
	lossChaos, _ := chaos.Eval()
	lossClean, _ := clean.Eval()
	if ratio := lossChaos / lossClean; ratio > 1.05 || ratio < 0.95 {
		t.Fatalf("chaos loss %v vs fault-free %v (ratio %.3f): outside ±5%%",
			lossChaos, lossClean, ratio)
	}
}

// TestTrainerRejectsBadConfig pins the error-not-panic constructor
// contract on the public surface.
func TestTrainerRejectsBadConfig(t *testing.T) {
	task := workload.TranslationTask()
	cases := []TrainerConfig{
		{},
		{Task: task, Pipelines: 0, Micro: 2, StageCount: 2},
		{Task: task, Pipelines: 2, Micro: 2, StageCount: 2,
			Faults: fault.Config{MsgDropProb: 2}},
		{Task: task, Pipelines: 2, Micro: 2, StageCount: 2,
			Advance: []int{1, 2, 3}}, // wrong length for K=2
	}
	for i, cfg := range cases {
		if _, err := NewTrainer(cfg); err == nil {
			t.Errorf("case %d: NewTrainer accepted a malformed config", i)
		}
	}
	if _, err := NewPipelineWith(task.NewModel(1), PipelineConfig{Stages: 0}); err == nil {
		t.Error("NewPipelineWith accepted zero stages")
	}
}

// --- checkpoint/restore ---

func equalFloat32s(x, y []float32) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// TestCheckpointBitExact is the acceptance check for restore fidelity:
// save at round r, restore into a fresh trainer, and the next round's
// parameters must be bit-identical to the uninterrupted run's round r+1.
// Translation has no dropout, so training is deterministic.
func TestCheckpointBitExact(t *testing.T) {
	task := workload.TranslationTask()
	cfg := TrainerConfig{Task: task, Pipelines: 2, Micro: 2, StageCount: 2,
		Seed: 5, ClipNorm: 5}
	dir := t.TempDir()

	a, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for r := 0; r < 5; r++ {
		a.Step()
	}
	if err := a.SaveCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	if !IsCheckpoint(dir) {
		t.Fatal("saved directory not recognized as a checkpoint")
	}
	a.Step() // the uninterrupted run's round r+1

	b, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Restore(dir); err != nil {
		t.Fatal(err)
	}
	if b.Round() != 5 {
		t.Fatalf("restored round %d, want 5", b.Round())
	}
	b.Step() // the restored run's round r+1
	a.Averager().Drain()
	b.Averager().Drain()

	for p := range a.Pipelines() {
		ap, bp := a.Pipelines()[p].Params(), b.Pipelines()[p].Params()
		for i := range ap {
			if !equalFloat32s(ap[i].W.Data(), bp[i].W.Data()) {
				t.Fatalf("replica %d param %d (%s) diverged after restore", p, i, ap[i].Name)
			}
		}
	}
	ar, br := a.Averager().Reference(), b.Averager().Reference()
	for i := range ar {
		if !equalFloat32s(ar[i].Data(), br[i].Data()) {
			t.Fatalf("reference tensor %d diverged after restore", i)
		}
	}
	al, aa := a.Eval()
	bl, ba := b.Eval()
	if al != bl || aa != ba {
		t.Fatalf("restored eval (%v, %v) != uninterrupted eval (%v, %v)", bl, ba, al, aa)
	}
}

// TestRestoreRejectsMismatchedTrainer pins the config-validation guard:
// restoring into a trainer whose seed or geometry differs is an error.
func TestRestoreRejectsMismatchedTrainer(t *testing.T) {
	task := workload.TranslationTask()
	cfg := TrainerConfig{Task: task, Pipelines: 2, Micro: 2, StageCount: 2, Seed: 5}
	dir := t.TempDir()
	a, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Step()
	if err := a.SaveCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	otherSeed := cfg
	otherSeed.Seed = 6
	b, err := NewTrainer(otherSeed)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Restore(dir); err == nil {
		t.Fatal("restore accepted a trainer with a different seed")
	}
	otherN := cfg
	otherN.Pipelines = 3
	c, err := NewTrainer(otherN)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Restore(dir); err == nil {
		t.Fatal("restore accepted a trainer with a different pipeline count")
	}
	if err := b.Restore(t.TempDir()); err == nil {
		t.Fatal("restore accepted an empty directory")
	}
}

// --- watchdog ---

// wedgedSchedule deadlocks stage 0: stage 1's op list never produces the
// micro-1 gradient stage 0 waits for. sched.Analyze rejects it, so the
// test injects it directly into the pipeline's schedule cache.
func wedgedSchedule() *sched.Schedule {
	return &sched.Schedule{Name: "wedged", PerGPU: [][]sched.Op{
		{{Kind: sched.Fwd, Micro: 0}, {Kind: sched.Fwd, Micro: 1},
			{Kind: sched.Bwd, Micro: 0}, {Kind: sched.Bwd, Micro: 1}},
		{{Kind: sched.Fwd, Micro: 0}, {Kind: sched.Bwd, Micro: 0}},
	}}
}

// TestWatchdogKillsWedgedSchedule is the acceptance check for the
// runtime watchdog: a live-locked batch is killed within the window,
// the error dumps every stage's in-flight position, and nothing hangs.
func TestWatchdogKillsWedgedSchedule(t *testing.T) {
	task := workload.TranslationTask()
	reg := obs.NewRegistry()
	pl, err := NewPipelineWith(task.NewModel(1), PipelineConfig{Stages: 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	pl.SetWatchdog(50 * time.Millisecond)
	s := wedgedSchedule()
	pl.fixed, pl.cur, pl.curM = s, s, 2

	batch := task.NewGen(3).NextBatch(8)
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = pl.RunBatchContext(context.Background(), batch, 2)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog failed to kill the wedged batch")
	}
	var stall *StallError
	if !errors.As(runErr, &stall) {
		t.Fatalf("wedged batch returned %v, want *StallError", runErr)
	}
	if stall.Schedule != "wedged" || stall.Idle < stall.Window {
		t.Fatalf("stall error %+v: wrong schedule or idle < window", stall)
	}
	if len(stall.Stages) != 2 {
		t.Fatalf("stall dump covers %d stages, want 2", len(stall.Stages))
	}
	st0, st1 := stall.Stages[0], stall.Stages[1]
	if st0.Done || st0.NextOp != 3 || st0.Ops != 4 ||
		st0.Waiting.Kind != sched.Bwd || st0.Waiting.Micro != 1 {
		t.Fatalf("stage 0 dump %+v: want parked on op 3/4 (Bwd micro 1)", st0)
	}
	if !st1.Done {
		t.Fatalf("stage 1 dump %+v: want done", st1)
	}
	if msg := runErr.Error(); !strings.Contains(msg, "in-flight") || !strings.Contains(msg, "stage 0") {
		t.Fatalf("stall message lacks the state dump: %q", msg)
	}
	if got := reg.Counter("avgpipe_watchdog_stalls_total", "").Value(); got != 1 {
		t.Fatalf("stalls counter %v, want 1", got)
	}
	// The pipeline is reusable after the kill: a healthy schedule runs.
	pl.fixed, pl.cur, pl.curAn, pl.curM = nil, nil, nil, 0
	pl.SetWatchdog(0)
	if _, err := pl.RunBatchContext(context.Background(), batch, 2); err != nil {
		t.Fatalf("pipeline unusable after watchdog kill: %v", err)
	}
}

// TestRunBatchContextCancel checks the other abort path: cancelling the
// context unwinds a blocked batch instead of leaking its stage workers.
func TestRunBatchContextCancel(t *testing.T) {
	task := workload.TranslationTask()
	pl, err := NewPipelineWith(task.NewModel(1), PipelineConfig{Stages: 2, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	s := wedgedSchedule()
	pl.fixed, pl.cur, pl.curM = s, s, 2
	ctx, cancel := context.WithCancel(context.Background())
	batch := task.NewGen(3).NextBatch(8)
	done := make(chan error, 1)
	go func() {
		_, err := pl.RunBatchContext(ctx, batch, 2)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancel did not unwind the blocked batch")
	}
}

// TestTrainerStragglerInjection checks the straggler hook end to end:
// with a high straggler probability the same training round takes
// measurably longer, and the straggler counter records the slow ops.
func TestTrainerStragglerInjection(t *testing.T) {
	task := workload.TranslationTask()
	reg := obs.NewRegistry()
	tr, err := NewTrainer(TrainerConfig{
		Task: task, Pipelines: 1, Micro: 2, StageCount: 2, Seed: 9, Obs: reg,
		Faults: fault.Config{Seed: 3, StragglerProb: 1, StragglerDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	start := time.Now()
	tr.Step()
	elapsed := time.Since(start)
	// Every op straggles 5ms. Of the 8 ops (2 stages × 2 micros ×
	// fwd+bwd), 6 serialize on the 1F1B dependency chain, so the round
	// cannot finish in under 30ms — an order of magnitude above the
	// ~3-8ms an uninjected round takes.
	if elapsed < 30*time.Millisecond {
		t.Fatalf("straggler-injected round took %v, expected ≥ 30ms", elapsed)
	}
	if got := reg.Counter("avgpipe_fault_straggler_ops_total", "").Value(); got < 8 {
		t.Fatalf("straggler counter %v, want ≥ 8", got)
	}
}
