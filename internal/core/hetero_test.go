package core

import (
	"testing"

	"avgpipe/internal/cluster"
	"avgpipe/internal/comm"
	"avgpipe/internal/device"
	"avgpipe/internal/pipesim"
	"avgpipe/internal/sched"
	"avgpipe/internal/workload"
)

// heteroFixture builds a uniform 8-layer workload and a 4-GPU cluster
// whose first GPU is half as fast as the rest.
func heteroFixture() (*workload.Workload, *cluster.Cluster) {
	ls := make([]workload.LayerCost, 8)
	for i := range ls {
		ls[i] = workload.LayerCost{Name: "l", FwdFLOPs: 1e9, BwdFLOPs: 2e9,
			ParamBytes: 4 << 20, OutActBytes: 64 << 10, StashBytes: 128 << 10}
	}
	w := &workload.Workload{Name: "het", Layers: ls, BatchSize: 8,
		SatSamples: 0, OptimStateFactor: 1, MaxPipelines: 2}
	gpu := device.GPU{Name: "g", PeakFLOPs: 1e12, MemBytes: 32 << 30}
	link := comm.Link{Name: "fast", BytesPerSec: 1e15}
	c := cluster.New(1, 4, gpu, link, link)
	c.GPUs[0].PeakFLOPs = 0.5e12 // the straggler
	return w, c
}

func TestPartitionHeteroGivesStragglerLessWork(t *testing.T) {
	w, c := heteroFixture()
	stages := PartitionHetero(w, c, 0)
	if len(stages) != 4 {
		t.Fatalf("stages %d", len(stages))
	}
	// The half-speed GPU 0 must get strictly fewer FLOPs than the fastest
	// stage.
	var maxOther float64
	for s := 1; s < 4; s++ {
		if f := stages[s].FwdFLOPs; f > maxOther {
			maxOther = f
		}
	}
	if stages[0].FwdFLOPs >= maxOther {
		t.Fatalf("straggler got %v FLOPs, others up to %v", stages[0].FwdFLOPs, maxOther)
	}
	// Per-time balance: no stage's time should exceed 2x the ideal.
	total := 0.0
	worst := 0.0
	for s, st := range stages {
		tm := (st.FwdFLOPs + st.BwdFLOPs) / c.GPUs[s].PeakFLOPs
		total += tm
		if tm > worst {
			worst = tm
		}
	}
	if worst > 2*total/4 {
		t.Fatalf("hetero partition unbalanced: worst %v vs ideal %v", worst, total/4)
	}
}

func TestPartitionHeteroMatchesHomogeneous(t *testing.T) {
	w, c := heteroFixture()
	for i := range c.GPUs {
		c.GPUs[i].PeakFLOPs = 1e12 // make it homogeneous again
	}
	het := PartitionHetero(w, c, 0)
	hom := Partition(w, 4, 0)
	for s := range het {
		if het[s].First != hom[s].First || het[s].Last != hom[s].Last {
			t.Fatalf("stage %d: hetero %v-%v vs homogeneous %v-%v",
				s, het[s].First, het[s].Last, hom[s].First, hom[s].Last)
		}
	}
}

func TestHeteroPartitionImprovesSimulatedTime(t *testing.T) {
	w, c := heteroFixture()
	run := func(stages []workload.Stage) float64 {
		r, err := pipesim.Run(pipesim.Config{
			Workload: w, Cluster: c, Stages: stages,
			Micro: 8, Pipelines: 1, Schedule: sched.AFAB(4, 8, 2), Batches: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.BatchTime
	}
	naive := run(Partition(w, 4, 0))
	aware := run(PartitionHetero(w, c, 0))
	if aware >= naive {
		t.Fatalf("speed-aware partition should beat FLOP-balanced on a heterogeneous cluster: %v vs %v", aware, naive)
	}
}
