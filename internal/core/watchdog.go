package core

import (
	"fmt"
	"strings"
	"time"

	"avgpipe/internal/fault"
	"avgpipe/internal/sched"
)

// SetFaults installs the fault injector the stage workers consult for
// straggler delays, identifying this pipeline as id in the injector's
// coordinates (nil injector = no faults). Call before RunBatch, not
// concurrently with it.
func (p *Pipeline) SetFaults(in *fault.Injector, id int) {
	p.faults = in
	p.pipeID = id
}

// SetWatchdog arms the per-batch liveness monitor: a RunBatchContext
// call during which no op retires for the given window is aborted with
// a *StallError dumping every stage's in-flight schedule position,
// instead of hanging forever on a live-locked schedule. 0 disables the
// watchdog. Size the window well above the slowest single op (including
// injected straggler delays) — it bounds inactivity, not batch length.
func (p *Pipeline) SetWatchdog(window time.Duration) {
	p.watchdog = window
}

// StallError reports a batch killed by the runtime watchdog: no op
// retired within the window, so the schedule was live-locked (typically
// a cross-stage dependency cycle or a peer that stopped producing). The
// per-stage positions say exactly which op each worker was parked on.
type StallError struct {
	// Schedule names the schedule that wedged.
	Schedule string
	// Window is the configured liveness window; Idle is how long the
	// pipeline had actually been inactive when the watchdog fired.
	Window, Idle time.Duration
	// Stages dumps each stage worker's position at kill time.
	Stages []StallStage
}

// StallStage is one stage worker's in-flight state at watchdog kill.
type StallStage struct {
	Stage int
	// NextOp indexes the op the worker was executing or waiting to
	// execute; Ops is the stage's total op count.
	NextOp, Ops int
	// Waiting is that op (meaningful only when !Done).
	Waiting sched.Op
	// Done marks a worker that had already retired its whole op list.
	Done bool
}

func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: watchdog: schedule %q retired no op in %v (window %v); in-flight:",
		e.Schedule, e.Idle.Round(time.Millisecond), e.Window)
	for _, s := range e.Stages {
		if s.Done {
			fmt.Fprintf(&b, " [stage %d: done]", s.Stage)
		} else {
			fmt.Fprintf(&b, " [stage %d: op %d/%d %s]", s.Stage, s.NextOp, s.Ops, s.Waiting)
		}
	}
	return b.String()
}

// stallError snapshots the run's per-stage positions into a StallError.
func (p *Pipeline) stallError(schedule *sched.Schedule, run *batchRun, idle time.Duration) *StallError {
	e := &StallError{Schedule: schedule.Name, Window: p.watchdog, Idle: idle}
	for s := range schedule.PerGPU {
		ops := schedule.PerGPU[s]
		i := int(run.pos[s].Load())
		st := StallStage{Stage: s, NextOp: i, Ops: len(ops)}
		if i >= len(ops) {
			st.Done = true
		} else {
			st.Waiting = ops[i]
		}
		e.Stages = append(e.Stages, st)
	}
	return e
}
