package core

import (
	"errors"

	"avgpipe/internal/cluster"
	"avgpipe/internal/pipesim"
	"avgpipe/internal/sched"
	"avgpipe/internal/workload"
)

// AFPConfig describes one pipeline-execution configuration whose advance
// forward propagation is to be decided.
type AFPConfig struct {
	Workload *workload.Workload
	Cluster  *cluster.Cluster
	Stages   []workload.Stage
	Micro    int
	Pipes    int
	// MemLimit caps every GPU's footprint in bytes; 0 means the GPU's
	// own capacity ("the user-defined limit", §4.2).
	MemLimit int64
	// Batches to simulate per trial (more batches smooth ramp effects).
	Batches int
	// RefModel includes the elastic-averaging reference model in memory.
	RefModel bool
}

func (c *AFPConfig) batches() int {
	if c.Batches > 0 {
		return c.Batches
	}
	return 2
}

func (c *AFPConfig) fits(r *pipesim.Result) bool {
	if c.MemLimit <= 0 {
		return r.OOM == nil
	}
	for _, g := range r.PerGPU {
		if g.Memory.Total() > c.MemLimit {
			return false
		}
	}
	return true
}

func (c *AFPConfig) simulate(advance []int) (*pipesim.Result, error) {
	k := len(c.Stages)
	return pipesim.Run(pipesim.Config{
		Workload: c.Workload, Cluster: c.Cluster, Stages: c.Stages,
		Micro: c.Micro, Pipelines: c.Pipes,
		Schedule: sched.AFP(k, c.Micro, c.batches(), advance),
		Batches:  c.batches(), RefModel: c.RefModel,
	})
}

// DecideAdvance implements Algorithm 1 ("Decisions on Advance Forward
// Propagation"): start from the 1F1B schedule (advance = 0) and increase
// advance counts while training keeps getting faster and the memory
// footprint stays under the limit. Because a single stage running ahead
// cannot outpace an unchanged upstream, the search first sweeps uniform
// advances across all stages (the coordinated move a per-GPU increment
// loop converges to on real hardware), then refines per stage in both
// directions. It returns the chosen advance vector and the simulation at
// that choice.
func DecideAdvance(cfg AFPConfig) ([]int, *pipesim.Result, error) {
	k := len(cfg.Stages)
	const improvement = 1e-9
	advance := make([]int, k)
	best, err := cfg.simulate(advance)
	if err != nil {
		return nil, nil, err
	}

	trial := func(v []int) (*pipesim.Result, bool, error) {
		if !sched.LegalAdvance(k, cfg.Micro, v) {
			return nil, false, nil
		}
		r, err := cfg.simulate(v)
		if err != nil {
			if errors.Is(err, pipesim.ErrDeadlock) {
				return nil, false, nil
			}
			return nil, false, err
		}
		return r, r.Makespan < best.Makespan-improvement && cfg.fits(r), nil
	}

	// Phase 1: coordinated wavefronts. A stage's recurring stall is the
	// cumulative deficit of everything downstream, so the natural shape
	// is a *taper* — upstream stages run further ahead than downstream
	// ones. Sweep linear tapers advance[s] = t·(K−1−s) and uniform levels
	// at geometric step sizes, keeping the best feasible one.
	tryVec := func(v []int) error {
		r, ok, err := trial(v)
		if err != nil {
			return err
		}
		if ok {
			best = r
			copy(advance, v)
		}
		return nil
	}
	for t := 1; t*(k-1) <= cfg.Micro*2; t *= 2 {
		taper := make([]int, k)
		uniform := make([]int, k)
		for s := 0; s < k; s++ {
			taper[s] = t * (k - 1 - s)
			uniform[s] = t
		}
		if err := tryVec(taper); err != nil {
			return nil, nil, err
		}
		if err := tryVec(uniform); err != nil {
			return nil, nil, err
		}
	}

	// Phase 2: per-stage refinement in both directions (upstream stages
	// often warrant more run-ahead than downstream ones, and shrinking a
	// stage's advance can reclaim memory at no cost).
	for {
		improved := false
		for s := 0; s < k; s++ {
			for _, delta := range []int{1, -1} {
				next := advance[s] + delta
				if next < 0 || k-s+next > cfg.Micro+1 {
					continue
				}
				advance[s] = next
				r, ok, err := trial(advance)
				if err != nil {
					return nil, nil, err
				}
				if ok {
					best = r
					improved = true
					break
				}
				advance[s] -= delta
			}
		}
		if !improved {
			return advance, best, nil
		}
	}
}
