package core

import (
	"math"
	"testing"

	"avgpipe/internal/sched"
	"avgpipe/internal/workload"
)

// TestCompiledEquivalenceAllWorkloads is the permanent bit-exactness
// gate for the compiled execution path: for every workload task, a
// trainer running compiled stages must produce round losses bitwise
// identical (float64 bit patterns) to the reference interpreter from
// the same seed. Any divergence — a reordered accumulation, a fused
// kernel with different rounding, a stash corrupted across in-flight
// micro-batches — trips this before it can masquerade as a tuning
// artifact.
func TestCompiledEquivalenceAllWorkloads(t *testing.T) {
	for _, task := range workload.Tasks() {
		task := task
		t.Run(task.Name, func(t *testing.T) {
			const rounds = 3
			run := func(compiled bool) []float64 {
				tr, err := NewTrainer(TrainerConfig{
					Task: task, Pipelines: 2, Micro: 2, StageCount: 2,
					Seed: 42, Compiled: compiled,
				})
				if err != nil {
					t.Fatalf("NewTrainer(compiled=%v): %v", compiled, err)
				}
				defer tr.Close()
				losses := make([]float64, rounds)
				for r := range losses {
					losses[r] = tr.Step()
				}
				return losses
			}
			ref := run(false)
			cmp := run(true)
			for r := range ref {
				if math.Float64bits(ref[r]) != math.Float64bits(cmp[r]) {
					t.Fatalf("round %d: interpreter loss %.17g, compiled loss %.17g — paths diverged",
						r, ref[r], cmp[r])
				}
			}
		})
	}
}

// TestCompiledPipelineOccupancy cross-validates the compiled runtime
// against the schedule analysis: with the backward split, the measured
// per-stage op counts and stash high-water marks must equal the split
// schedule's analytic values exactly.
func TestCompiledPipelineOccupancy(t *testing.T) {
	task := workload.ClassificationTask()
	model := task.NewModel(7)
	pl, err := NewPipelineWith(model, PipelineConfig{Stages: 2, Compiled: true})
	if err != nil {
		t.Fatal(err)
	}
	const m = 4
	batch := task.NewGen(11).NextBatch(8)
	pl.RunBatch(batch, m)

	s, an := pl.ScheduleFor(m)
	for _, ops := range s.PerGPU {
		var bi, bw int
		for _, op := range ops {
			switch op.Kind {
			case sched.BwdIn:
				bi++
			case sched.BwdW:
				bw++
			case sched.Bwd:
				t.Fatalf("compiled pipeline schedule still has combined op %v", op)
			}
		}
		if bi != m || bw != m {
			t.Fatalf("split schedule has %d BwdIn / %d BwdW ops per stage, want %d each", bi, bw, m)
		}
	}
	for st, met := range pl.Metrics() {
		if met.Fwd != an.Fwd[st] || met.Bwd != an.Bwd[st] || met.BwdW != an.BwdW[st] {
			t.Errorf("stage %d ran F=%d Bi=%d Bw=%d, analysis says F=%d Bi=%d Bw=%d",
				st, met.Fwd, met.Bwd, met.BwdW, an.Fwd[st], an.Bwd[st], an.BwdW[st])
		}
		if met.PeakInFlight != an.MaxInFlight[st] {
			t.Errorf("stage %d peak in-flight %d, analysis %d", st, met.PeakInFlight, an.MaxInFlight[st])
		}
	}

	// The plans behind each stage must satisfy the planner invariants
	// for the shapes this batch actually bound.
	for st, prog := range pl.StagePrograms() {
		if err := prog.CheckPlan(batch.Slice(m)[0].X.Shape()); err != nil && st == 0 {
			t.Errorf("stage %d plan: %v", st, err)
		}
	}
}
