package core

import (
	"avgpipe/internal/cluster"
	"avgpipe/internal/pipesim"
	"avgpipe/internal/sched"
	"avgpipe/internal/workload"
)

// ProfileBatches is the number of batches the profiling phase runs
// ("we let AvgPipe train the model with twenty batches", §5.2.1).
const ProfileBatches = 20

// GPUProfile is the per-GPU measurement collected during profiling.
type GPUProfile struct {
	// TGpu is the compute time per batch (the T_gpu^k of Eq. 1).
	TGpu float64
	// Comm is the total transfer time arriving at this GPU per batch
	// (the 𝕋^k the predictor scales).
	Comm float64
	// Util is the GPU utilization while computing — the height of the
	// piecewise-constant φ^k(t) curve.
	Util float64
	// FMod and FDat split the memory footprint into model-proportional
	// and data-proportional bytes (§5.2.3).
	FMod, FDat int64
}

// Profile is the output of the profiling phase: measurements at one
// setting of parallelism degrees (M, N), from which the predictor
// extrapolates every other setting.
type Profile struct {
	M, N      int
	PerGPU    []GPUProfile
	BatchTime float64
	// Cost is the simulated wall-clock time the profiling run consumed
	// (ProfileBatches × BatchTime); the paper's Fig. 18 compares this
	// against traversal tuning.
	Cost float64
}

// ProfileSetting runs the profiling phase at parallelism degrees (m, n).
// Per §5.2.2 the profile (and all predictions) use the AFAB schedule,
// since advance forward propagation brings 1F1B's performance close to
// AFAB's. Per §5.2.1 callers should pick a large m and small n so that
// φ stays below 100%.
func ProfileSetting(w *workload.Workload, c *cluster.Cluster, stages []workload.Stage, m, n int) (*Profile, error) {
	k := len(stages)
	res, err := pipesim.Run(pipesim.Config{
		Workload: w, Cluster: c, Stages: stages,
		Micro: m, Pipelines: n,
		Schedule: sched.AFAB(k, m, ProfileBatches),
		Batches:  ProfileBatches,
		RefModel: true,
	})
	if err != nil {
		return nil, err
	}
	// Memory is measured under the runtime's actual schedule (1F1B with
	// advance forward propagation keeps the 1F1B stash bound), so the
	// F_dat ∝ micro-batch-size scaling of Eq. 8 holds. A single batch
	// suffices: footprints are schedule properties, not steady-state ones.
	memRes, err := pipesim.Run(pipesim.Config{
		Workload: w, Cluster: c, Stages: stages,
		Micro: m, Pipelines: n,
		Schedule: sched.OneFOneB(k, m, 1),
		Batches:  1,
		RefModel: true,
	})
	if err != nil {
		return nil, err
	}
	p := &Profile{M: m, N: n, BatchTime: res.BatchTime, PerGPU: make([]GPUProfile, k)}
	for s := 0; s < k; s++ {
		g := res.PerGPU[s]
		p.PerGPU[s] = GPUProfile{
			TGpu: g.Busy / ProfileBatches,
			Comm: g.CommTotal / ProfileBatches,
			Util: g.PeakUtil,
			FMod: memRes.PerGPU[s].Memory.ModelBytes(),
			FDat: memRes.PerGPU[s].Memory.DataBytes(),
		}
	}
	p.Cost = res.Makespan
	return p, nil
}

// DefaultProfileSetting returns the (m, n) the profiler uses: a rather
// large micro-batch count (micro-batch size around one eighth of the
// batch) with a single pipeline, so GPUs stay well below saturation and
// the utilization curve can be scaled upward safely (§5.2.1), without
// paying the pathological kernel efficiency of single-sample micros.
func DefaultProfileSetting(w *workload.Workload) (m, n int) {
	best := w.BatchSize
	for _, d := range Divisors(w.BatchSize) {
		if abs(d-8) < abs(best-8) || (abs(d-8) == abs(best-8) && d > best) {
			best = d
		}
	}
	return best, 1
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
