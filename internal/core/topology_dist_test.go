package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"

	netx "avgpipe/internal/net"
	"avgpipe/internal/obs"
	"avgpipe/internal/workload"
)

// formTopoMeshes assembles an n-replica in-process fabric under an
// explicit topology: every "replica" gets its own listener and mesh,
// formed concurrently exactly as n OS processes would.
func formTopoMeshes(t *testing.T, topo netx.Topology, n int) []*netx.Mesh {
	t.Helper()
	tr := netx.NewInProc(0)
	lns := make([]netx.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := tr.Listen(fmt.Sprintf("replica-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr()
	}
	meshes := make([]*netx.Mesh, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		peers := make(map[int]string)
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = addrs[j]
			}
		}
		wg.Add(1)
		go func(i int, peers map[int]string) {
			defer wg.Done()
			meshes[i], errs[i] = netx.FormTopologyOn(context.Background(), tr, lns[i], topo, i, peers)
		}(i, peers)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("replica %d mesh: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, m := range meshes {
			m.Close()
		}
	})
	return meshes
}

// TestTopologyBitwiseDeterminism is the determinism gate for the
// averaging fabrics: the same seed trained single-process (the
// pre-topology seed path — no mesh at all) and as a 4-replica job over
// the explicit full mesh, the ring, and the hierarchical fabric must
// produce bit-identical per-round local losses. The overlays move the
// identical per-origin delta frames the mesh does — store-and-forward,
// never summed en route — so the deterministic pipeline-order reduction
// sees the same inputs everywhere.
func TestTopologyBitwiseDeterminism(t *testing.T) {
	const (
		n      = 4
		rounds = 6
		seed   = 11
	)
	task := workload.TranslationTask()

	// Single-process reference run: per-pipeline losses from the step log.
	var log bytes.Buffer
	single, err := NewTrainer(TrainerConfig{
		Task: task, Pipelines: n, Micro: 2, StageCount: 2,
		Seed: seed, ClipNorm: 5, Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	single.SetStepLog(&log)
	for r := 0; r < rounds; r++ {
		single.Step()
	}
	single.Close()
	want := make([][]float64, 0, rounds) // [round][pipeline]
	dec := json.NewDecoder(&log)
	for dec.More() {
		var rec StepRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec.Losses)
	}
	if len(want) != rounds {
		t.Fatalf("want %d logged rounds, got %d", rounds, len(want))
	}

	for _, topo := range []netx.Topology{netx.FullMesh{}, netx.Ring{}, netx.Hierarchical{}} {
		t.Run(topo.Name(), func(t *testing.T) {
			meshes := formTopoMeshes(t, topo, n)
			got := make([][]float64, n) // [replica][round]
			errs := make([]error, n)
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					tr, err := NewTrainer(TrainerConfig{
						Task: task, Pipelines: n, Micro: 2, StageCount: 2,
						Seed: seed, ClipNorm: 5, Obs: obs.NewRegistry(),
						Dist: &DistConfig{ReplicaID: p, Mesh: meshes[p]},
					})
					if err != nil {
						errs[p] = err
						return
					}
					defer tr.Close()
					for r := 0; r < rounds; r++ {
						loss, err := tr.StepContext(context.Background())
						if err != nil {
							errs[p] = fmt.Errorf("round %d: %w", r, err)
							return
						}
						got[p] = append(got[p], loss)
					}
				}(p)
			}
			wg.Wait()
			for p, err := range errs {
				if err != nil {
					t.Fatalf("replica %d: %v", p, err)
				}
			}
			for p := 0; p < n; p++ {
				for r := 0; r < rounds; r++ {
					w, g := want[r][p], got[p][r]
					if math.Float64bits(w) != math.Float64bits(g) {
						t.Errorf("replica %d round %d: single-process loss %.17g, %s-fabric loss %.17g",
							p, r, w, topo.Name(), g)
					}
				}
			}
		})
	}
}
