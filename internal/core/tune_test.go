package core

import (
	"math"
	"testing"

	"avgpipe/internal/workload"
)

func gnmtFixture() (*workload.Workload, []workload.Stage) {
	w := workload.GNMT()
	c := w.Cluster()
	stages := Partition(w, c.Size(), 0)
	return w, stages
}

func TestProfileSettingShape(t *testing.T) {
	w, stages := gnmtFixture()
	c := w.Cluster()
	m, n := DefaultProfileSetting(w)
	if w.BatchSize%m != 0 || n != 1 {
		t.Fatalf("default profile setting (%d,%d) not a divisor of %d", m, n, w.BatchSize)
	}
	if b := w.BatchSize / m; b < 2 || b > 64 {
		t.Fatalf("profile micro-batch size %d should be moderate (unsaturated but not degenerate)", b)
	}
	p, err := ProfileSetting(w, c, stages, m, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.PerGPU) != c.Size() || p.BatchTime <= 0 || p.Cost <= 0 {
		t.Fatalf("malformed profile %+v", p)
	}
	for s, g := range p.PerGPU {
		if g.TGpu <= 0 || g.Util <= 0 || g.Util >= 1 {
			t.Fatalf("stage %d: profile must be unsaturated, util=%v", s, g.Util)
		}
		if g.FMod <= 0 || g.FDat <= 0 {
			t.Fatalf("stage %d: memory split missing", s)
		}
	}
	// Interior stages must see communication on both sides.
	if p.PerGPU[2].Comm <= 0 {
		t.Fatal("interior stage must record communication")
	}
}

func TestPredictIdentityAtProfilePoint(t *testing.T) {
	w, stages := gnmtFixture()
	c := w.Cluster()
	p, err := ProfileSetting(w, c, stages, w.BatchSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(p, p.M, p.N)
	if err != nil {
		t.Fatal(err)
	}
	for s, g := range pred.PerGPU {
		// At the profiled point, Eq. 2 must return the measured T_gpu
		// and Eq. 8 the measured memory, exactly.
		if math.Abs(g.TGpu-p.PerGPU[s].TGpu) > 1e-12 {
			t.Fatalf("stage %d: TGpu %v != profiled %v", s, g.TGpu, p.PerGPU[s].TGpu)
		}
		if g.Mem != p.PerGPU[s].FMod+p.PerGPU[s].FDat {
			t.Fatalf("stage %d: memory identity broken", s)
		}
	}
	// The prediction includes bubbles, so it can exceed the busy time
	// but must stay the same order as the measured batch time.
	if pred.BatchTime < p.BatchTime/3 || pred.BatchTime > p.BatchTime*3 {
		t.Fatalf("prediction %v far from measurement %v", pred.BatchTime, p.BatchTime)
	}
}

func TestPredictScalingDirections(t *testing.T) {
	w, stages := gnmtFixture()
	c := w.Cluster()
	p, err := ProfileSetting(w, c, stages, w.BatchSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := Predict(p, 64, 1)
	// More pipelines: memory grows, per-data-batch time shrinks (GPUs
	// were unsaturated).
	multi, _ := Predict(p, 64, 2)
	if multi.PeakMem() <= base.PeakMem() {
		t.Fatal("more pipelines must predict more memory")
	}
	if multi.TimePerDataBatch() >= base.TimePerDataBatch() {
		t.Fatalf("unsaturated GPUs: 2 pipelines should amortize better (%v vs %v)",
			multi.TimePerDataBatch(), base.TimePerDataBatch())
	}
	// Fewer micro-batches: bubbles grow (Eq. 6–7 terms scale as 1/m*).
	few, _ := Predict(p, 2, 1)
	many, _ := Predict(p, 64, 1)
	if few.PerGPU[0].TBub <= many.PerGPU[0].TBub {
		t.Fatal("fewer micro-batches must predict larger bubbles")
	}
	// Fewer micro-batches also means larger data memory per micro.
	if few.PeakMem() <= many.PeakMem() {
		t.Fatal("bigger micro-batches must predict more activation memory")
	}
}

func TestPredictRejectsBadInput(t *testing.T) {
	w, stages := gnmtFixture()
	p, err := ProfileSetting(w, w.Cluster(), stages, w.BatchSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Predict(p, 0, 1); err == nil {
		t.Fatal("expected error for M=0")
	}
	if _, err := Predict(p, 4, -1); err == nil {
		t.Fatal("expected error for N<0")
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(12)
	want := []int{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("divisors %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("divisors %v", got)
		}
	}
}

func TestProfilingTuneFindsNearOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("traversal is slow")
	}
	w := workload.AWD()
	c := w.Cluster()
	stages := Partition(w, c.Size(), 0)
	prof, _, err := ProfilingTune(w, c, stages, 0)
	if err != nil {
		t.Fatal(err)
	}
	trav, err := TraversalTune(w, c, stages, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// §7.3: the profiling method achieves "the nearly shortest training
	// time" — allow 1.5x of the traversal optimum.
	if prof.TimePerDataBatch > 1.5*trav.TimePerDataBatch {
		t.Fatalf("profiling pick (M=%d,N=%d) %.4fs vs traversal (M=%d,N=%d) %.4fs",
			prof.M, prof.N, prof.TimePerDataBatch, trav.M, trav.N, trav.TimePerDataBatch)
	}
	// And its tuning cost must be far below traversal's.
	if prof.TuningCost > trav.TuningCost/5 {
		t.Fatalf("profiling cost %v not ≪ traversal cost %v", prof.TuningCost, trav.TuningCost)
	}
}

func TestGuidelineTuners(t *testing.T) {
	w := workload.AWD()
	c := w.Cluster()
	stages := Partition(w, c.Size(), 0)
	maxNum, err := GuidelineTune(w, c, stages, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if maxNum.M != w.BatchSize {
		t.Fatalf("max-num must set micro-batch size 1 (M=%d)", maxNum.M)
	}
	maxSize, err := GuidelineTune(w, c, stages, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if maxSize.M != 1 {
		t.Fatalf("max-size must set M=1, got %d", maxSize.M)
	}
	if maxNum.N < 1 || maxSize.N < 1 {
		t.Fatal("guidelines must pick a feasible pipeline count")
	}
}

func TestProfilingTuneRespectsMemoryLimit(t *testing.T) {
	w := workload.BERT()
	c := w.Cluster()
	stages := Partition(w, c.Size(), 0)
	// A tight limit must still produce a feasible (smaller) setting.
	tight, _, err := ProfilingTune(w, c, stages, 6<<30)
	if err != nil {
		t.Fatal(err)
	}
	loose, _, err := ProfilingTune(w, c, stages, 30<<30)
	if err != nil {
		t.Fatal(err)
	}
	if tight.N > loose.N {
		t.Fatalf("tight memory picked more pipelines (%d) than loose (%d)", tight.N, loose.N)
	}
}
