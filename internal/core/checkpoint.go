package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"avgpipe/internal/nn"
	"avgpipe/internal/optim"
)

// Checkpoint layout inside a directory:
//
//	reference.bin   reference model weights (nn.SaveParams format)
//	replica-P.bin   pipeline P's post-dilution weights
//	optim-P.bin     pipeline P's optimizer state (only for Stateful optimizers)
//	meta.json       round counter, geometry, detached set — written last,
//	                so its presence marks the checkpoint complete
//
// Restore reverses it bit-exactly: weights and optimizer moments are
// stored as raw float32 bits, the averager's delta baselines are re-seeded
// to the saved replica weights, and the data streams are fast-forwarded by
// replaying the round counter — so the round after a restore produces
// parameters identical to the round the uninterrupted run would have
// produced.

// checkpointMetaName is the commit marker; a directory without it is not
// a complete checkpoint.
const checkpointMetaName = "meta.json"

type checkpointMeta struct {
	Round     int    `json:"round"`
	Pipelines int    `json:"pipelines"`
	Seed      int64  `json:"seed"`
	Optimizer string `json:"optimizer"`
	Detached  []bool `json:"detached,omitempty"`
}

// IsCheckpoint reports whether dir holds a complete checkpoint (its
// commit marker exists).
func IsCheckpoint(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, checkpointMetaName))
	return err == nil
}

// SaveCheckpoint serializes the full training state — reference model,
// every replica's weights and optimizer state, and the round counter —
// into dir (created if needed). The averager is drained first so the
// saved reference includes every submitted update. meta.json is written
// last as the commit marker: a crash mid-save leaves a directory that
// IsCheckpoint rejects rather than a corrupt resume point.
func (t *Trainer) SaveCheckpoint(dir string) error {
	if t.cfg.Dist != nil {
		return fmt.Errorf("core: checkpointing a multi-process job is not supported (replica %d holds only its own state)", t.cfg.Dist.ReplicaID)
	}
	t.avg.Drain()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: checkpoint dir: %w", err)
	}
	t.avg.WriteReference(t.evalModel.Params())
	if err := saveParamsFile(filepath.Join(dir, "reference.bin"), t.evalModel.Params()); err != nil {
		return err
	}
	for p, pl := range t.pipelines {
		if err := saveParamsFile(filepath.Join(dir, fmt.Sprintf("replica-%d.bin", p)), pl.Params()); err != nil {
			return err
		}
		if st, ok := t.opts[p].(optim.Stateful); ok {
			if err := saveStateFile(filepath.Join(dir, fmt.Sprintf("optim-%d.bin", p)), st, pl.Params()); err != nil {
				return err
			}
		}
	}
	meta := checkpointMeta{
		Round:     t.round,
		Pipelines: t.cfg.Pipelines,
		Seed:      t.cfg.Seed,
		Optimizer: t.opts[0].Name(),
		Detached:  append([]bool(nil), t.detached...),
	}
	buf, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("core: checkpoint meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointMetaName), append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("core: checkpoint meta: %w", err)
	}
	return nil
}

// Restore loads a checkpoint written by SaveCheckpoint into this
// trainer, which must have been built with the same config (geometry,
// task, seed, optimizer). On success the trainer resumes at the saved
// round with bit-exact state: replica weights, optimizer moments, the
// reference model, the averager's delta baselines, and the data streams
// fast-forwarded to where the saved run left them. Call before training
// starts, not mid-round.
func (t *Trainer) Restore(dir string) error {
	if t.cfg.Dist != nil {
		return fmt.Errorf("core: restoring a multi-process job is not supported (replica %d holds only its own state)", t.cfg.Dist.ReplicaID)
	}
	buf, err := os.ReadFile(filepath.Join(dir, checkpointMetaName))
	if err != nil {
		return fmt.Errorf("core: not a complete checkpoint (missing %s): %w", checkpointMetaName, err)
	}
	var meta checkpointMeta
	if err := json.Unmarshal(buf, &meta); err != nil {
		return fmt.Errorf("core: checkpoint meta: %w", err)
	}
	if meta.Pipelines != t.cfg.Pipelines {
		return fmt.Errorf("core: checkpoint has %d pipelines, trainer has %d", meta.Pipelines, t.cfg.Pipelines)
	}
	if meta.Seed != t.cfg.Seed {
		return fmt.Errorf("core: checkpoint seed %d, trainer seed %d — data streams would diverge", meta.Seed, t.cfg.Seed)
	}
	if meta.Optimizer != t.opts[0].Name() {
		return fmt.Errorf("core: checkpoint optimizer %q, trainer uses %q", meta.Optimizer, t.opts[0].Name())
	}
	if err := loadParamsFile(filepath.Join(dir, "reference.bin"), t.evalModel.Params()); err != nil {
		return err
	}
	// SetReference re-seeds every delta baseline to the reference; the
	// per-replica SeedReplica below then restores each baseline to the
	// replica's true post-dilution weights.
	t.avg.SetReference(t.evalModel.Params())
	for p, pl := range t.pipelines {
		if err := loadParamsFile(filepath.Join(dir, fmt.Sprintf("replica-%d.bin", p)), pl.Params()); err != nil {
			return err
		}
		t.avg.SeedReplica(p, pl.Params())
		if st, ok := t.opts[p].(optim.Stateful); ok {
			if err := loadStateFile(filepath.Join(dir, fmt.Sprintf("optim-%d.bin", p)), st, pl.Params()); err != nil {
				return err
			}
		}
	}
	for p, det := range meta.Detached {
		if det {
			t.avg.Detach(p)
			t.detached[p] = true
		}
	}
	t.round = meta.Round
	// Fast-forward the data streams: each generator's state is a pure
	// function of how many batches it has drawn, which is one per round
	// (drawn-and-discarded for detached replicas).
	for p := range t.gens {
		t.gens[p] = t.cfg.Task.NewGen(t.cfg.Seed + 100 + int64(p))
		for r := 0; r < meta.Round; r++ {
			t.gens[p].NextBatch(t.cfg.Task.BatchSize)
		}
	}
	t.evalGen = t.cfg.Task.NewGen(t.cfg.Seed + 999)
	return nil
}

func saveParamsFile(path string, ps []*nn.Param) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	if err := nn.SaveParams(f, ps); err != nil {
		f.Close()
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

func loadParamsFile(path string, ps []*nn.Param) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	defer f.Close()
	if err := nn.LoadParams(f, ps); err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	return nil
}

func saveStateFile(path string, st optim.Stateful, ps []*nn.Param) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	if err := st.SaveState(f, ps); err != nil {
		f.Close()
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

func loadStateFile(path string, st optim.Stateful, ps []*nn.Param) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	defer f.Close()
	if err := st.LoadState(f, ps); err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	return nil
}
