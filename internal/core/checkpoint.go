package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"avgpipe/internal/nn"
	"avgpipe/internal/optim"
)

// Checkpoint layout inside a directory:
//
//	reference.bin   reference model weights (nn.SaveParams format)
//	replica-P.bin   pipeline P's post-dilution weights
//	optim-P.bin     pipeline P's optimizer state (only for Stateful optimizers)
//	meta.json       round counter, geometry, detached set — written last,
//	                so its presence marks the checkpoint complete
//
// Restore reverses it bit-exactly: weights and optimizer moments are
// stored as raw float32 bits, the averager's delta baselines are re-seeded
// to the saved replica weights, and the data streams are fast-forwarded by
// replaying the round counter — so the round after a restore produces
// parameters identical to the round the uninterrupted run would have
// produced.

// checkpointMetaName is the commit marker; a directory without it is not
// a complete checkpoint.
const checkpointMetaName = "meta.json"

type checkpointMeta struct {
	Round     int    `json:"round"`
	Pipelines int    `json:"pipelines"`
	Seed      int64  `json:"seed"`
	Optimizer string `json:"optimizer"`
	Detached  []bool `json:"detached,omitempty"`
	// Dist marks a per-replica checkpoint of a multi-process job: it
	// holds the reference copy plus ReplicaID's pipeline and optimizer
	// state only, and must be restored by the same replica.
	Dist      bool `json:"dist,omitempty"`
	ReplicaID int  `json:"replica_id,omitempty"`
}

// IsCheckpoint reports whether dir holds a complete checkpoint (its
// commit marker exists).
func IsCheckpoint(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, checkpointMetaName))
	return err == nil
}

// CheckpointInfo is the commit-marker metadata of a completed
// checkpoint — what a reader (resume, serving tier) needs to decide
// whether and how to load it.
type CheckpointInfo struct {
	Round     int
	Pipelines int
	Seed      int64
	Optimizer string
	Dist      bool
	ReplicaID int
}

// ReadCheckpointInfo reads dir's commit marker. A directory without one
// is not a complete checkpoint and returns an error, which is what
// makes polling a directory a live training job writes into safe: a
// crash mid-save never yields a readable marker.
func ReadCheckpointInfo(dir string) (*CheckpointInfo, error) {
	meta, err := readCheckpointMeta(dir)
	if err != nil {
		return nil, err
	}
	return &CheckpointInfo{
		Round: meta.Round, Pipelines: meta.Pipelines, Seed: meta.Seed,
		Optimizer: meta.Optimizer, Dist: meta.Dist, ReplicaID: meta.ReplicaID,
	}, nil
}

// LoadReference loads the shared reference model — the elastic
// averager's statistically meaningful copy, the one an inference tier
// serves — from a completed checkpoint into ps, returning the commit
// marker. The parameter layout (count, names, shapes) must match the
// checkpointed model exactly; mismatches error without partially
// applying.
func LoadReference(dir string, ps []*nn.Param) (*CheckpointInfo, error) {
	info, err := ReadCheckpointInfo(dir)
	if err != nil {
		return nil, err
	}
	if err := loadParamsFile(filepath.Join(dir, "reference.bin"), ps); err != nil {
		return nil, err
	}
	return info, nil
}

func readCheckpointMeta(dir string) (*checkpointMeta, error) {
	buf, err := os.ReadFile(filepath.Join(dir, checkpointMetaName))
	if err != nil {
		return nil, fmt.Errorf("core: not a complete checkpoint (missing %s): %w", checkpointMetaName, err)
	}
	var meta checkpointMeta
	if err := json.Unmarshal(buf, &meta); err != nil {
		return nil, fmt.Errorf("core: checkpoint meta: %w", err)
	}
	return &meta, nil
}

// SaveCheckpoint serializes the full training state — reference model,
// every replica's weights and optimizer state, and the round counter —
// into dir (created if needed). The averager is drained first so the
// saved reference includes every submitted update. meta.json is written
// last as the commit marker: a crash mid-save leaves a directory that
// IsCheckpoint rejects rather than a corrupt resume point.
//
// In dist mode each process writes a per-replica checkpoint: its
// reference copy plus the local pipeline's weights and optimizer state.
// A whole-job resume restores every replica from its own directory at
// the same round; checkpoint at a round boundary (after WaitRound has
// closed the round on every process) so the N reference copies agree.
func (t *Trainer) SaveCheckpoint(dir string) error {
	t.avg.Drain()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: checkpoint dir: %w", err)
	}
	t.avg.WriteReference(t.evalModel.Params())
	if err := saveParamsFile(filepath.Join(dir, "reference.bin"), t.evalModel.Params()); err != nil {
		return err
	}
	for p, pl := range t.pipelines {
		if !t.local(p) {
			continue // a peer process checkpoints this replica
		}
		if err := saveParamsFile(filepath.Join(dir, fmt.Sprintf("replica-%d.bin", p)), pl.Params()); err != nil {
			return err
		}
		if st, ok := t.opts[p].(optim.Stateful); ok {
			if err := saveStateFile(filepath.Join(dir, fmt.Sprintf("optim-%d.bin", p)), st, pl.Params()); err != nil {
				return err
			}
		}
	}
	self := 0
	if t.cfg.Dist != nil {
		self = t.cfg.Dist.ReplicaID
	}
	meta := checkpointMeta{
		Round:     t.round,
		Pipelines: t.cfg.Pipelines,
		Seed:      t.cfg.Seed,
		Optimizer: t.opts[self].Name(),
		Detached:  append([]bool(nil), t.detached...),
		Dist:      t.cfg.Dist != nil,
		ReplicaID: self,
	}
	buf, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("core: checkpoint meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointMetaName), append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("core: checkpoint meta: %w", err)
	}
	return nil
}

// Restore loads a checkpoint written by SaveCheckpoint into this
// trainer, which must have been built with the same config (geometry,
// task, seed, optimizer). On success the trainer resumes at the saved
// round with bit-exact state: replica weights, optimizer moments, the
// reference model, the averager's delta baselines, and the data streams
// fast-forwarded to where the saved run left them. Call before training
// starts, not mid-round.
// In dist mode each process restores its own per-replica checkpoint
// (written by the same replica id); the whole job resumes at the saved
// round with every process restored to the same boundary, so rounds
// after the resume reproduce an uninterrupted run.
func (t *Trainer) Restore(dir string) error {
	meta, err := readCheckpointMeta(dir)
	if err != nil {
		return err
	}
	if meta.Pipelines != t.cfg.Pipelines {
		return fmt.Errorf("core: checkpoint has %d pipelines, trainer has %d", meta.Pipelines, t.cfg.Pipelines)
	}
	if meta.Seed != t.cfg.Seed {
		return fmt.Errorf("core: checkpoint seed %d, trainer seed %d — data streams would diverge", meta.Seed, t.cfg.Seed)
	}
	self := 0
	if t.cfg.Dist != nil {
		self = t.cfg.Dist.ReplicaID
	}
	if meta.Dist != (t.cfg.Dist != nil) {
		return fmt.Errorf("core: checkpoint dist=%v, trainer dist=%v", meta.Dist, t.cfg.Dist != nil)
	}
	if meta.Dist && meta.ReplicaID != self {
		return fmt.Errorf("core: checkpoint belongs to replica %d, this process is replica %d", meta.ReplicaID, self)
	}
	if meta.Optimizer != t.opts[self].Name() {
		return fmt.Errorf("core: checkpoint optimizer %q, trainer uses %q", meta.Optimizer, t.opts[self].Name())
	}
	if err := loadParamsFile(filepath.Join(dir, "reference.bin"), t.evalModel.Params()); err != nil {
		return err
	}
	// SetReference re-seeds every delta baseline to the reference; the
	// per-replica SeedReplica below then restores each baseline to the
	// replica's true post-dilution weights.
	t.avg.SetReference(t.evalModel.Params())
	for p, pl := range t.pipelines {
		if !t.local(p) {
			continue
		}
		if err := loadParamsFile(filepath.Join(dir, fmt.Sprintf("replica-%d.bin", p)), pl.Params()); err != nil {
			return err
		}
		t.avg.SeedReplica(p, pl.Params())
		if st, ok := t.opts[p].(optim.Stateful); ok {
			if err := loadStateFile(filepath.Join(dir, fmt.Sprintf("optim-%d.bin", p)), st, pl.Params()); err != nil {
				return err
			}
		}
	}
	// Replaying the detached set only makes sense when this process owns
	// every replica; in dist mode peer liveness is discovered live (the
	// heal supervisor detaches peers that stay silent).
	if t.cfg.Dist == nil {
		for p, det := range meta.Detached {
			if det {
				t.avg.Detach(p)
				t.detached[p] = true
			}
		}
	}
	t.round = meta.Round
	// Fast-forward the data streams: each generator's state is a pure
	// function of how many batches it has drawn, which is one per round
	// (drawn-and-discarded for detached replicas).
	for p := range t.gens {
		if !t.local(p) {
			continue
		}
		t.gens[p] = t.cfg.Task.NewGen(t.cfg.Seed + 100 + int64(p))
		for r := 0; r < meta.Round; r++ {
			t.gens[p].NextBatch(t.cfg.Task.BatchSize)
		}
	}
	t.evalGen = t.cfg.Task.NewGen(t.cfg.Seed + 999)
	return nil
}

func saveParamsFile(path string, ps []*nn.Param) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	if err := nn.SaveParams(f, ps); err != nil {
		f.Close()
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

func loadParamsFile(path string, ps []*nn.Param) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	defer f.Close()
	if err := nn.LoadParams(f, ps); err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	return nil
}

func saveStateFile(path string, st optim.Stateful, ps []*nn.Param) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	if err := st.SaveState(f, ps); err != nil {
		f.Close()
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

func loadStateFile(path string, st optim.Stateful, ps []*nn.Param) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	defer f.Close()
	if err := st.LoadState(f, ps); err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", filepath.Base(path), err)
	}
	return nil
}
