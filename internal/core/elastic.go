package core

import (
	"fmt"
	"sync"
	"time"

	"avgpipe/internal/comm"
	"avgpipe/internal/nn"
	"avgpipe/internal/obs"
	"avgpipe/internal/tensor"
)

// Update is one pipeline's local update for one training round: the
// per-parameter weight deltas produced by its optimizer step (§3.2
// step ❸). Updates travel to the reference model through asynchronous
// message queues so they never block the pipeline.
type Update struct {
	Pipeline int
	Round    int
	Deltas   []*tensor.Tensor
}

// Averager implements the elastic-averaging-based framework of §3.2. It
// maintains the reference model (the centre of the parallel models) and
// coordinates N parallel pipelines:
//
//	step ❶  each pipeline trains locally with any Optimizer,
//	step ❷  the pipeline's weights are diluted with the reference weights
//	        in ratio (1−α):α,
//	step ❸  the local update is sent to the reference model via an async
//	        queue,
//	step ❹  the reference process accumulates one update per pipeline,
//	step ❺  once all N arrive it normalizes and applies them.
//
// Because the elastic pull lives here — outside any optimizer — AvgPipe
// composes with Adam, AdaGrad, ASGD, or plain SGD unchanged (§3.1).
type Averager struct {
	// Alpha is the dilution coefficient; 1/N empirically (§3.2).
	Alpha float64
	// N is the number of parallel pipelines.
	N int

	mu    sync.RWMutex
	ref   []*tensor.Tensor
	queue *comm.Queue[Update]

	// pending[round] accumulates deltas until all N pipelines report.
	pending map[int]*roundAcc
	// snapshots[p] is pipeline p's weights after its previous round,
	// used to derive local update deltas.
	snapshots [][]*tensor.Tensor

	// drainMu guards the sent/applied counters; drainCond wakes Drain
	// waiters whenever the reference loop applies an update.
	drainMu   sync.Mutex
	drainCond *sync.Cond
	sent      int64
	applied   int64

	done   chan struct{}
	closed sync.Once

	// Observability: elastic-round latency (first update arriving →
	// round applied), update staleness (older incomplete rounds at
	// arrival), applied-update count, and open-round gauge.
	roundSec    *obs.Histogram
	staleRounds *obs.Histogram
	updates     *obs.Counter
	openRounds  *obs.Gauge
}

type roundAcc struct {
	sum   []*tensor.Tensor
	count int
	first time.Time
}

// NewAverager builds the framework around an initial model: the reference
// model starts as a copy of init, and all N pipelines are assumed to start
// from weights equal to init (use SeedReplica otherwise). Metrics go to
// obs.Default(); use NewAveragerObs to choose a registry.
func NewAverager(n int, init []*nn.Param) *Averager {
	return NewAveragerObs(n, init, nil)
}

// NewAveragerObs is NewAverager recording metrics into reg (nil =
// obs.Default()).
func NewAveragerObs(n int, init []*nn.Param, reg *obs.Registry) *Averager {
	if n <= 0 {
		panic("core: need at least one pipeline")
	}
	if reg == nil {
		reg = obs.Default()
	}
	a := &Averager{
		Alpha:     1 / float64(n),
		N:         n,
		queue:     comm.NewInstrumentedQueue[Update](reg, "averager"),
		pending:   make(map[int]*roundAcc),
		snapshots: make([][]*tensor.Tensor, n),
		done:      make(chan struct{}),
		roundSec: reg.Histogram("avgpipe_avg_round_seconds",
			"Elastic-averaging round latency: first update arriving to round applied.", nil),
		staleRounds: reg.Histogram("avgpipe_avg_staleness_rounds",
			"Older incomplete rounds pending when an update arrives.",
			obs.LinearBuckets(0, 1, 16)),
		updates: reg.Counter("avgpipe_avg_updates_total",
			"Local updates applied to the reference model."),
		openRounds: reg.Gauge("avgpipe_avg_open_rounds",
			"Rounds currently awaiting straggler pipelines."),
	}
	a.drainCond = sync.NewCond(&a.drainMu)
	a.ref = make([]*tensor.Tensor, len(init))
	for i, p := range init {
		a.ref[i] = p.W.Clone()
	}
	for p := 0; p < n; p++ {
		a.snapshots[p] = cloneTensors(a.ref)
	}
	go a.referenceLoop()
	return a
}

func cloneTensors(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

// SeedReplica records pipeline p's actual starting weights so its first
// local update is measured from the right point.
func (a *Averager) SeedReplica(p int, params []*nn.Param) {
	for i, pr := range params {
		a.snapshots[p][i].CopyFrom(pr.W)
	}
}

// referenceLoop is the separate reference-model process of §3.2: it
// drains the update queue, accumulates per round, and applies the
// normalized update when a round completes (steps ❹ and ❺).
func (a *Averager) referenceLoop() {
	defer close(a.done)
	for {
		u, ok := a.queue.Recv()
		if !ok {
			return
		}
		a.mu.Lock()
		stale := 0
		for r := range a.pending {
			if r < u.Round {
				stale++
			}
		}
		acc := a.pending[u.Round]
		if acc == nil {
			acc = &roundAcc{sum: make([]*tensor.Tensor, len(a.ref)), first: time.Now()}
			for i, r := range a.ref {
				acc.sum[i] = tensor.New(r.Shape()...)
			}
			a.pending[u.Round] = acc
		}
		for i, d := range u.Deltas {
			acc.sum[i].AddInPlace(d)
		}
		acc.count++
		roundDone := acc.count == a.N
		if roundDone {
			inv := float32(1 / float64(a.N))
			for i := range a.ref {
				a.ref[i].AxpyInPlace(inv, acc.sum[i])
			}
			delete(a.pending, u.Round)
		}
		open := len(a.pending)
		a.mu.Unlock()
		a.staleRounds.Observe(float64(stale))
		a.updates.Inc()
		a.openRounds.Set(float64(open))
		if roundDone {
			a.roundSec.Observe(time.Since(acc.first).Seconds())
		}
		a.drainMu.Lock()
		a.applied++
		a.drainMu.Unlock()
		a.drainCond.Broadcast()
	}
}

// Submit performs step ❸ for pipeline p after its optimizer has applied a
// local update for the given round: it derives the local update delta
// from the previous snapshot and sends it to the reference model without
// blocking.
func (a *Averager) Submit(p, round int, params []*nn.Param) {
	if p < 0 || p >= a.N {
		panic(fmt.Sprintf("core: pipeline %d out of range", p))
	}
	deltas := make([]*tensor.Tensor, len(params))
	for i, pr := range params {
		deltas[i] = tensor.Sub(pr.W, a.snapshots[p][i])
	}
	a.drainMu.Lock()
	a.sent++
	a.drainMu.Unlock()
	if err := a.queue.Send(Update{Pipeline: p, Round: round, Deltas: deltas}); err != nil {
		// The queue only rejects after Close; submitting then is API
		// misuse (Close drains first), so fail loudly rather than let the
		// update vanish and a later Drain hang on the phantom send.
		a.drainMu.Lock()
		a.sent--
		a.drainMu.Unlock()
		panic(fmt.Sprintf("core: Submit(pipeline %d, round %d) after Close: %v", p, round, err))
	}
}

// Dilute performs step ❷ for pipeline p: its weights are mixed with the
// current reference model in ratio (1−α):α, and the post-dilution weights
// become the baseline for the next round's delta. Callers that want exact
// synchronous elastic-averaging semantics Drain() between Submit and
// Dilute so the reference already includes the round's updates; callers
// that must never block may Dilute immediately against a slightly stale
// reference.
func (a *Averager) Dilute(p int, params []*nn.Param) {
	alpha := float32(a.Alpha)
	a.mu.RLock()
	for i, pr := range params {
		pr.W.ScaleInPlace(1 - alpha)
		pr.W.AxpyInPlace(alpha, a.ref[i])
	}
	a.mu.RUnlock()
	for i, pr := range params {
		a.snapshots[p][i].CopyFrom(pr.W)
	}
}

// AfterStep performs steps ❷ and ❸ together in the fully asynchronous
// mode: submit the local update, then dilute against whatever reference
// is current (never blocking the pipeline).
func (a *Averager) AfterStep(p, round int, params []*nn.Param) {
	a.Submit(p, round, params)
	a.Dilute(p, params)
}

// Reference returns a snapshot (deep copy) of the current reference
// model weights.
func (a *Averager) Reference() []*tensor.Tensor {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return cloneTensors(a.ref)
}

// SetReference overwrites the reference model with src's weights (e.g.
// when resuming from a checkpoint) and re-seeds every pipeline's delta
// baseline to match, so the next local updates are measured from the
// restored point. Call before training resumes, not mid-round.
func (a *Averager) SetReference(src []*nn.Param) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(src) != len(a.ref) {
		panic("core: SetReference length mismatch")
	}
	for i, p := range src {
		a.ref[i].CopyFrom(p.W)
	}
	for p := range a.snapshots {
		for i := range a.snapshots[p] {
			a.snapshots[p][i].CopyFrom(a.ref[i])
		}
	}
}

// WriteReference copies the current reference weights into dst (e.g. a
// model used for evaluation).
func (a *Averager) WriteReference(dst []*nn.Param) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if len(dst) != len(a.ref) {
		panic("core: WriteReference length mismatch")
	}
	for i, p := range dst {
		p.W.CopyFrom(a.ref[i])
	}
}

// Drain blocks until every update sent so far has been applied, so tests
// and evaluation points observe a consistent reference model. The wait
// parks on a condition variable signalled by the reference loop — no
// core is burned while updates are in flight.
func (a *Averager) Drain() {
	a.drainMu.Lock()
	defer a.drainMu.Unlock()
	target := a.sent
	for a.applied < target {
		a.drainCond.Wait()
	}
}

// Close shuts the reference process down after draining pending updates.
func (a *Averager) Close() {
	a.closed.Do(func() {
		a.Drain()
		a.queue.Close()
		<-a.done
	})
}

// PendingRounds reports how many rounds are awaiting stragglers, for
// observability and tests.
func (a *Averager) PendingRounds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}
