package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"avgpipe/internal/fault"
	netx "avgpipe/internal/net"
	"avgpipe/internal/nn"
	"avgpipe/internal/obs"
	"avgpipe/internal/tensor"
)

// Update is one pipeline's local update for one training round: the
// per-parameter weight deltas produced by its optimizer step (§3.2
// step ❸). Updates travel to the reference model over a net.Transport
// connection — an in-process loopback for single-process runs, fanned
// out over a TCP mesh for multi-process jobs — so they never block the
// pipeline.
type Update struct {
	Pipeline int
	Round    int
	Deltas   []*tensor.Tensor
}

// Averager implements the elastic-averaging-based framework of §3.2. It
// maintains the reference model (the centre of the parallel models) and
// coordinates N parallel pipelines:
//
//	step ❶  each pipeline trains locally with any Optimizer,
//	step ❷  the pipeline's weights are diluted with the reference weights
//	        in ratio (1−α):α,
//	step ❸  the local update is sent to the reference model via an async
//	        queue,
//	step ❹  the reference process accumulates one update per pipeline,
//	step ❺  once all live pipelines arrive it normalizes and applies them.
//
// Because the elastic pull lives here — outside any optimizer — AvgPipe
// composes with Adam, AdaGrad, ASGD, or plain SGD unchanged (§3.1).
//
// The reference model decouples the pipelines, which makes failure
// survivable by design: a replica may Detach (crash) and later Rejoin by
// reseeding from the reference; rounds renormalize over the replicas
// that are actually live; and with SetRoundDeadline a round whose
// stragglers never report is closed over the updates that did arrive
// instead of wedging the reference loop forever.
type Averager struct {
	// Alpha is the dilution coefficient; 1/N empirically (§3.2).
	Alpha float64
	// N is the number of parallel pipelines.
	N int

	mu  sync.RWMutex
	ref []*tensor.Tensor

	// The update stream is a transport connection: pipelines Submit on
	// tx, the reference loop receives on loopRx. tx is the composed
	// path — the local loopback, fanned out to the mesh peers when a
	// multi-process mesh is attached, wrapped by the fault layer when
	// an injector is installed.
	loopTx netx.Conn
	loopRx netx.Conn
	tx     netx.Conn
	mesh   *netx.Mesh

	// pending[round] accumulates per-pipeline deltas until every live
	// pipeline reports (or the round deadline closes the round early).
	pending map[int]*roundAcc
	// snapshots[p] is pipeline p's weights after its previous round,
	// used to derive local update deltas.
	snapshots [][]*tensor.Tensor
	// live[p] marks replicas currently participating in rounds; liveN
	// counts them. Detach/Rejoin flip these. liveFrom[p] is the first
	// round replica p counts toward: a rejoining replica is admitted
	// from the round after every round already open or closed, so its
	// return never inflates the quorum of a round it will not submit to.
	live       []bool
	liveN      int
	liveFrom   []int
	detachedAt []time.Time
	// lastRound[p] is the newest round replica p has submitted an update
	// for (-1 before its first); latestRound is the max across replicas.
	// The heal supervisor reads these to spot replicas falling behind.
	lastRound   []int
	latestRound int
	// doneRounds/doneFloor record closed rounds so a straggler update
	// arriving after its round was applied (or expired) is discarded
	// instead of re-opening the round: every round below doneFloor is
	// closed, plus the out-of-order closures listed in doneRounds.
	doneRounds map[int]bool
	doneFloor  int
	// deadline bounds how long an incomplete round may wait before it is
	// closed over the arrived updates (0 = wait forever); expiryOn marks
	// the expiry goroutine as started.
	deadline time.Duration
	expiryOn bool

	// faults, when set, decides the fate of each submitted update.
	faults *fault.Injector

	// codec selects the update wire encoding (CodecNone = exact f32);
	// comps holds one error-feedback compressor per submitting pipeline
	// — residuals are sender state, so they are never shared.
	codec netx.Codec
	topk  float64
	comps []*netx.Compressor

	// drainMu guards the sent/applied counters; drainCond wakes Drain
	// waiters whenever the reference loop processes an update.
	drainMu   sync.Mutex
	drainCond *sync.Cond
	sent      int64
	applied   int64

	// refState hands a peer's FrameRefState reply from the inbound loop
	// to a waiting ResumeReplica.
	refState chan *netx.Frame

	done   chan struct{}
	closed sync.Once

	// Observability: elastic-round latency, update staleness, applied
	// updates, open rounds, plus the fault surface — detach/rejoin
	// counts, recovery latency, degraded-mode gauge, expired rounds, and
	// discarded late updates.
	roundSec    *obs.Histogram
	staleRounds *obs.Histogram
	updates     *obs.Counter
	openRounds  *obs.Gauge
	detaches    *obs.Counter
	rejoins     *obs.Counter
	recoverySec *obs.Histogram
	degraded    *obs.Gauge
	expired     *obs.Counter
	lateUpdates *obs.Counter
	updateBytes *obs.Counter
	decodeErrs  *obs.Counter
	// events receives membership and round-health events (the registry's
	// event log); tracer, when set, records submit/apply spans on wall-
	// clock timestamps for cross-replica trace merging.
	events *obs.EventLog
	tracer *obs.Tracer
}

// roundAcc holds one round's per-pipeline deltas. Keeping them separate
// (rather than summing on arrival) makes the reference update a
// deterministic reduction — deltas fold in pipeline order regardless of
// arrival order — which is what lets a restored checkpoint reproduce an
// uninterrupted run bit-exactly.
type roundAcc struct {
	deltas [][]*tensor.Tensor // indexed by pipeline; nil = not arrived
	got    int
	first  time.Time
}

// NewAverager builds the framework around an initial model: the reference
// model starts as a copy of init, and all N pipelines are assumed to start
// from weights equal to init (use SeedReplica otherwise). Metrics go to
// obs.Default(); use NewAveragerObs to choose a registry.
func NewAverager(n int, init []*nn.Param) *Averager {
	return NewAveragerObs(n, init, nil)
}

// NewAveragerObs is NewAverager recording metrics into reg (nil =
// obs.Default()).
func NewAveragerObs(n int, init []*nn.Param, reg *obs.Registry) *Averager {
	if n <= 0 {
		panic("core: need at least one pipeline")
	}
	if reg == nil {
		reg = obs.Default()
	}
	a := &Averager{
		Alpha:      1 / float64(n),
		N:          n,
		pending:    make(map[int]*roundAcc),
		snapshots:  make([][]*tensor.Tensor, n),
		live:       make([]bool, n),
		liveN:      n,
		liveFrom:   make([]int, n),
		detachedAt: make([]time.Time, n),
		lastRound:  make([]int, n),
		doneRounds: make(map[int]bool),
		refState:   make(chan *netx.Frame, 1),
		done:       make(chan struct{}),
		roundSec: reg.Histogram("avgpipe_avg_round_seconds",
			"Elastic-averaging round latency: first update arriving to round applied.", nil),
		staleRounds: reg.Histogram("avgpipe_avg_staleness_rounds",
			"Older incomplete rounds pending when an update arrives.",
			obs.LinearBuckets(0, 1, 16)),
		updates: reg.Counter("avgpipe_avg_updates_total",
			"Local updates applied to the reference model."),
		openRounds: reg.Gauge("avgpipe_avg_open_rounds",
			"Rounds currently awaiting straggler pipelines."),
		detaches: reg.Counter("avgpipe_avg_detaches_total",
			"Replicas detached from elastic averaging (crashes)."),
		rejoins: reg.Counter("avgpipe_avg_rejoins_total",
			"Replicas rejoined after reseeding from the reference model."),
		recoverySec: reg.Histogram("avgpipe_avg_recovery_seconds",
			"Detach-to-rejoin latency of recovered replicas.", nil),
		degraded: reg.Gauge("avgpipe_avg_degraded_replicas",
			"Replicas currently detached (0 = full strength)."),
		expired: reg.Counter("avgpipe_avg_rounds_expired_total",
			"Rounds closed at the deadline over a partial update set."),
		lateUpdates: reg.Counter("avgpipe_avg_late_updates_total",
			"Updates discarded because their round had already closed."),
		updateBytes: reg.Counter("avgpipe_avg_update_bytes_total",
			"Wire bytes of update payloads this process submitted (one delivery each); divide by rounds for bytes-on-wire per round."),
		decodeErrs: reg.Counter("avgpipe_avg_decode_errors_total",
			"Compressed update frames dropped because their payload failed to decode."),
		events: reg.Events(),
	}
	for p := 0; p < n; p++ {
		a.live[p] = true
		a.lastRound[p] = -1
	}
	a.latestRound = -1
	// The loopback pipe is the refactored §3.2 update queue: unbounded
	// (capacity 0), so Submit never blocks a pipeline, and instrumented
	// under the historical queue name.
	a.loopTx, a.loopRx = netx.InstrumentedPipe(0, reg, "averager")
	a.tx = a.loopTx
	a.drainCond = sync.NewCond(&a.drainMu)
	a.ref = make([]*tensor.Tensor, len(init))
	for i, p := range init {
		a.ref[i] = p.W.Clone()
	}
	for p := 0; p < n; p++ {
		a.snapshots[p] = cloneTensors(a.ref)
	}
	go a.referenceLoop()
	return a
}

func cloneTensors(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

// SeedReplica records pipeline p's actual starting weights so its first
// local update is measured from the right point.
func (a *Averager) SeedReplica(p int, params []*nn.Param) {
	for i, pr := range params {
		a.snapshots[p][i].CopyFrom(pr.W)
	}
}

// SetTracer installs a tracer on which the averager records "submit"
// and "apply" spans (Cat "avg", wall-clock microsecond timestamps) —
// the raw material obs.MergeTraces turns into cross-replica delta
// arrows. Call before training starts; nil disables tracing.
func (a *Averager) SetTracer(tr *obs.Tracer) {
	a.tracer = tr
	if tr != nil {
		tr.Process(avgTracePID, "averaging")
		tr.Thread(avgTracePID, avgTraceSubmitTID, "submit")
		tr.Thread(avgTracePID, avgTraceApplyTID, "apply")
	}
}

// Averaging-span trace coordinates: the averager claims its own process
// row (the pipeline runtime uses PID 1) with one track per direction.
const (
	avgTracePID       = 2
	avgTraceSubmitTID = 1
	avgTraceApplyTID  = 2
)

// wallUS is the wall-clock timestamp in trace microseconds. Averaging
// spans use wall time (not a run-relative clock) so different
// processes' spans can be aligned by their measured clock offsets.
func wallUS(t time.Time) float64 { return float64(t.UnixNano()) / 1e3 }

// self is the local replica id for event attribution: the mesh identity
// in a multi-process job, -1 (all pipelines local) otherwise.
func (a *Averager) self() int {
	if a.mesh != nil {
		return a.mesh.Self
	}
	return -1
}

// SetFaults installs the fault injector consulted on every Submit (nil
// = no faults). Injection happens at the transport seam — the submit
// connection is wrapped so updates are delivered, delayed, or dropped
// in flight (net.Faulty) — rather than inside the queue. Call before
// training starts, not concurrently with Submit.
func (a *Averager) SetFaults(in *fault.Injector) {
	a.faults = in
	a.recomposeTx()
}

// recomposeTx rebuilds the submit path from its layers: the local
// loopback, fanned out to mesh peers when attached, with the fault
// layer outermost so one fate verdict governs the local and every
// remote delivery of an update.
func (a *Averager) recomposeTx() {
	base := netx.FanOut(a.loopTx, a.mesh)
	a.tx = netx.Faulty(base, a.faults, func() {
		// A delayed update finally lost to a closed connection: undo its
		// drain accounting so Close's Drain cannot park on it.
		a.lateUpdates.Inc()
		a.addSent(-1)
	})
}

// AttachMesh joins this averager to a multi-process elastic-averaging
// job: Submits fan out along the mesh's topology, and peer updates plus
// detach/rejoin control frames are ingested from the mesh's inbound
// connections — relayed onward first on sparse topologies, so every
// frame still reaches all N replicas. Every process applies the same
// deterministic reduction to its own reference copy, so the N copies
// stay bit-identical without a coordinator. Call before training
// starts.
func (a *Averager) AttachMesh(m *netx.Mesh) {
	if m.N != a.N {
		panic(fmt.Sprintf("core: mesh has %d replicas, averager has %d", m.N, a.N))
	}
	a.mesh = m
	a.recomposeTx()
	for _, id := range m.Inbound() {
		go a.inboundLoop(id, m.Recv(id))
	}
	// Under mesh self-healing, a peer that re-dials gets a fresh inbound
	// connection; spawn a receive loop for it (the old loop exits when
	// the mesh closes the replaced connection).
	m.SetInboundHandler(func(id int, c netx.Conn) {
		go a.inboundLoop(id, c)
	})
}

// inboundLoop ingests the frames one peer sends us until the connection
// closes. from is the peer the connection belongs to — on a sparse
// topology, frames that every replica must see (updates, membership
// announcements, reference requests) are relayed to the topology's next
// hops before local processing, and a reference-state reply addressed
// to someone else is routed onward instead of being consumed.
func (a *Averager) inboundLoop(from int, c netx.Conn) {
	for {
		f, err := c.Recv(context.Background())
		if err != nil {
			return
		}
		switch f.Type {
		case netx.FrameUpdate, netx.FrameUpdateQ8, netx.FrameUpdateQ16, netx.FrameUpdateTopK:
			a.relay(from, f)
			if a.loopTx.Send(context.Background(), f) != nil {
				return // shutting down; the round deadline absorbs the loss
			}
		case netx.FrameDetach:
			a.relay(from, f)
			a.Detach(int(f.Replica))
		case netx.FrameRejoin:
			// The rejoining process reseeds its own weights from its
			// reference copy; peers only mark it live again, admitted no
			// earlier than the join round the announcement carries.
			a.relay(from, f)
			a.rejoin(int(f.Replica), nil, int(f.Round))
		case netx.FrameRefRequest:
			// A restarted peer asking to reseed: reply with our current
			// reference state and the round it should join from.
			a.relay(from, f)
			a.sendRefState(int(f.Replica))
		case netx.FrameRefState:
			if to := int(f.Meta); a.mesh != nil && to != a.mesh.Self {
				// Addressed to another replica: a routed hop, not ours.
				_ = a.mesh.Route(context.Background(), to, f)
				continue
			}
			select {
			case a.refState <- f:
			default: // no ResumeReplica waiting (duplicate reply): drop
			}
		case netx.FrameClockPing:
			// A peer re-measuring its clock offset mid-run (see
			// Mesh.ResyncClock); answer on the same connection.
			if netx.AnswerClockPing(context.Background(), c, a.self(), f) != nil {
				return
			}
		}
	}
}

// relay forwards a peer-originated frame along the mesh topology (a
// no-op on the full mesh). Best effort: a relay lost to a dead link is
// absorbed by the round deadline, like any lost update.
func (a *Averager) relay(from int, f *netx.Frame) {
	if a.mesh != nil {
		_ = a.mesh.Forward(context.Background(), from, f)
	}
}

// SetCompression selects the wire encoding for submitted updates:
// CodecNone restores exact f32 deltas (the default), any other codec
// packs each pipeline's deltas through its own error-feedback
// compressor (net.Compressor), so what compression drops in one round
// is re-submitted in the next and the update stream still sums to the
// exact deltas. Every reference copy — including the local one —
// applies the same dequantized values, so dist-mode copies stay
// bit-identical to each other. topkFrac is the kept fraction for
// CodecTopK (0 = net.DefaultTopKFraction). Call before training
// starts, not concurrently with Submit.
func (a *Averager) SetCompression(c netx.Codec, topkFrac float64) error {
	if c == netx.CodecNone {
		a.codec, a.comps = c, nil
		return nil
	}
	comps := make([]*netx.Compressor, a.N)
	for p := range comps {
		comp, err := netx.NewCompressor(c, topkFrac)
		if err != nil {
			return err
		}
		comps[p] = comp
	}
	a.codec, a.topk, a.comps = c, topkFrac, comps
	return nil
}

// SetRoundDeadline bounds how long an incomplete averaging round may
// wait for stragglers: a round older than d is closed over the updates
// that did arrive (normalized by their count) and recorded as expired,
// so a dropped or crashed replica can never wedge the reference loop.
// d = 0 restores the default (rounds wait forever). Call before
// training starts; the expiry check runs on a background ticker.
func (a *Averager) SetRoundDeadline(d time.Duration) {
	a.mu.Lock()
	a.deadline = d
	start := d > 0 && !a.expiryOn
	if start {
		a.expiryOn = true
	}
	a.mu.Unlock()
	if start {
		go a.expiryLoop()
	}
}

// expiryLoop closes over-deadline rounds until the averager shuts down.
func (a *Averager) expiryLoop() {
	for {
		a.mu.RLock()
		d := a.deadline
		a.mu.RUnlock()
		if d <= 0 {
			d = time.Second // deadline disabled mid-run: idle until re-enabled
		}
		tick := d / 4
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		select {
		case <-a.done:
			return
		case <-time.After(tick):
			a.expireStale()
		}
	}
}

// expireStale applies every pending round older than the deadline over
// its partial update set and marks it closed.
func (a *Averager) expireStale() {
	now := time.Now()
	a.mu.Lock()
	d := a.deadline
	if d <= 0 {
		a.mu.Unlock()
		return
	}
	type expiredRound struct{ round, got int }
	var expired []expiredRound
	for r, acc := range a.pending {
		if now.Sub(acc.first) >= d {
			expired = append(expired, expiredRound{r, acc.got})
			a.applyRoundLocked(r, acc)
		}
	}
	open := len(a.pending)
	a.mu.Unlock()
	if len(expired) > 0 {
		a.expired.Add(float64(len(expired)))
		a.openRounds.Set(float64(open))
		for _, e := range expired {
			a.events.Emit(obs.Event{Type: obs.EventRoundDeadlineMissed,
				Replica: a.self(), Round: e.round, Value: float64(e.got),
				Detail: "round closed over a partial update set"})
		}
		a.notifyRounds()
	}
}

// applyRoundLocked folds the round's arrived deltas into the reference
// model — in pipeline order, so the reduction is deterministic — with
// the moving rate renormalized over the updates that actually arrived,
// then marks the round closed. Caller holds a.mu.
func (a *Averager) applyRoundLocked(round int, acc *roundAcc) {
	if acc.got > 0 {
		start := time.Now()
		inv := float32(1 / float64(acc.got))
		for p := 0; p < a.N; p++ {
			ds := acc.deltas[p]
			if ds == nil {
				continue
			}
			for i := range a.ref {
				a.ref[i].AxpyInPlace(inv, ds[i])
			}
		}
		if a.tracer != nil {
			// One apply span per contributing delta, so each remote
			// submit has a span to land its flow arrow on.
			ts := wallUS(start)
			dur := float64(time.Since(start).Nanoseconds()) / 1e3
			for p := 0; p < a.N; p++ {
				if acc.deltas[p] == nil {
					continue
				}
				a.tracer.Span(avgTracePID, avgTraceApplyTID, "apply", "avg",
					ts, dur, map[string]any{"round": round, "from": p})
			}
		}
	}
	delete(a.pending, round)
	a.doneRounds[round] = true
	for a.doneRounds[a.doneFloor] {
		delete(a.doneRounds, a.doneFloor)
		a.doneFloor++
	}
}

// roundClosedLocked reports whether the round has already been applied
// or expired. Caller holds a.mu.
func (a *Averager) roundClosedLocked(round int) bool {
	return round < a.doneFloor || a.doneRounds[round]
}

// neededLocked is the round's quorum: the live replicas admitted to it.
// A replica that rejoined mid-round is admitted only from its liveFrom
// round onward, so an already-open round still closes over the set that
// was live when it opened. Caller holds a.mu.
func (a *Averager) neededLocked(round int) int {
	n := 0
	for p := 0; p < a.N; p++ {
		if a.live[p] && a.liveFrom[p] <= round {
			n++
		}
	}
	return n
}

// referenceLoop is the separate reference-model process of §3.2: it
// drains the update stream — local submits and, in a multi-process job,
// peer updates forwarded from the mesh — accumulates per round, and
// applies the normalized update when a round completes (steps ❹ and ❺).
func (a *Averager) referenceLoop() {
	defer close(a.done)
	for {
		f, err := a.loopRx.Recv(context.Background())
		if err != nil {
			return // closed and drained
		}
		deltas := f.Tensors
		if c, ok := netx.UpdateCodec(f.Type); ok && c != netx.CodecNone {
			// A compressed update: every reference copy dequantizes the
			// same packed payload, so the applied deltas stay identical
			// across processes even though they are lossy.
			ds, derr := netx.UnpackUpdateFrame(f)
			if derr != nil {
				a.decodeErrs.Inc()
				a.bumpApplied() // the frame is accounted for, not applied
				continue
			}
			deltas = ds
		}
		a.ingest(Update{Pipeline: int(f.Replica), Round: int(f.Round), Deltas: deltas})
	}
}

// ingest accumulates one update, closing its round if every live
// replica has now reported.
func (a *Averager) ingest(u Update) {
	a.mu.Lock()
	if a.roundClosedLocked(u.Round) {
		a.mu.Unlock()
		a.lateUpdates.Inc()
		a.bumpApplied()
		return
	}
	stale := 0
	for r := range a.pending {
		if r < u.Round {
			stale++
		}
	}
	acc := a.pending[u.Round]
	if acc == nil {
		acc = &roundAcc{deltas: make([][]*tensor.Tensor, a.N), first: time.Now()}
		a.pending[u.Round] = acc
	}
	if acc.deltas[u.Pipeline] == nil {
		acc.deltas[u.Pipeline] = u.Deltas
		acc.got++
	}
	if u.Pipeline >= 0 && u.Pipeline < a.N && u.Round > a.lastRound[u.Pipeline] {
		a.lastRound[u.Pipeline] = u.Round
	}
	if u.Round > a.latestRound {
		a.latestRound = u.Round
	}
	needed := a.neededLocked(u.Round)
	roundDone := needed > 0 && acc.got >= needed
	first := acc.first
	if roundDone {
		a.applyRoundLocked(u.Round, acc)
	}
	open := len(a.pending)
	a.mu.Unlock()
	a.staleRounds.Observe(float64(stale))
	a.updates.Inc()
	a.openRounds.Set(float64(open))
	if roundDone {
		a.roundSec.Observe(time.Since(first).Seconds())
	}
	a.bumpApplied()
}

// bumpApplied advances the drain watermark and wakes Drain and
// WaitRound waiters.
func (a *Averager) bumpApplied() {
	a.drainMu.Lock()
	a.applied++
	a.drainMu.Unlock()
	a.drainCond.Broadcast()
}

// notifyRounds wakes WaitRound waiters after a round closed outside the
// ingest path (deadline expiry, detach renormalization). The lock
// acquire-release pairs with the waiter holding drainMu between its
// closed-check and Wait, so the wakeup cannot be missed.
func (a *Averager) notifyRounds() {
	a.drainMu.Lock()
	a.drainCond.Broadcast()
	a.drainMu.Unlock()
}

// addSent adjusts the drain send watermark; negative deltas (a delayed
// update lost to a closed queue) wake waiters so Drain cannot park on a
// send that will never apply.
func (a *Averager) addSent(d int64) {
	a.drainMu.Lock()
	a.sent += d
	a.drainMu.Unlock()
	if d < 0 {
		a.drainCond.Broadcast()
	}
}

// roundDeadline reads the configured deadline.
func (a *Averager) roundDeadline() time.Duration {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.deadline
}

// expireEmptyRound closes round with zero updates if it is still
// unopened — the liveness backstop for a WaitRound whose round lost
// every update in flight. A round with an accumulator is left to the
// expiry loop, which measures the deadline from the first arrival.
func (a *Averager) expireEmptyRound(round int) {
	a.mu.Lock()
	if a.roundClosedLocked(round) || a.pending[round] != nil {
		a.mu.Unlock()
		return
	}
	a.doneRounds[round] = true
	for a.doneRounds[a.doneFloor] {
		delete(a.doneRounds, a.doneFloor)
		a.doneFloor++
	}
	a.mu.Unlock()
	a.expired.Inc()
	a.events.Emit(obs.Event{Type: obs.EventRoundDeadlineMissed,
		Replica: a.self(), Round: round,
		Detail: "round closed empty: every update lost in flight"})
	a.notifyRounds()
}

// Detach removes pipeline p from elastic averaging — the crash path.
// Rounds in flight renormalize over the remaining live replicas, so a
// round waiting only on the detached replica completes immediately and
// later rounds complete at the reduced strength. Safe to call from the
// training loop; a second Detach of the same replica is a no-op.
func (a *Averager) Detach(p int) {
	a.mu.Lock()
	if p < 0 || p >= a.N || !a.live[p] {
		a.mu.Unlock()
		return
	}
	a.live[p] = false
	a.liveN--
	a.detachedAt[p] = time.Now()
	// Close any round that was waiting only on the departed replica.
	completed := 0
	for r, acc := range a.pending {
		if n := a.neededLocked(r); n > 0 && acc.got >= n {
			a.applyRoundLocked(r, acc)
			completed++
		}
	}
	degraded := a.N - a.liveN
	open := len(a.pending)
	a.mu.Unlock()
	a.detaches.Inc()
	a.degraded.Set(float64(degraded))
	a.events.Emit(obs.Event{Type: obs.EventReplicaDetach, Replica: p, Round: -1,
		Value: float64(degraded)})
	if completed > 0 {
		a.openRounds.Set(float64(open))
		a.notifyRounds()
	}
	a.announce(netx.FrameDetach, p, 0)
}

// Rejoin returns a detached pipeline p to elastic averaging: its weights
// are reseeded from the current reference model (the elastic pull that
// re-centres a returning replica) and its delta baseline reset to match,
// so its first update after recovery is measured from the right point.
func (a *Averager) Rejoin(p int, params []*nn.Param) { a.rejoin(p, params, 0) }

// rejoin is Rejoin with a floor on the admission round, used when a
// peer's rejoin announcement carries the round it joins from.
func (a *Averager) rejoin(p int, params []*nn.Param, minJoin int) {
	a.mu.Lock()
	if p < 0 || p >= a.N || a.live[p] {
		a.mu.Unlock()
		return
	}
	for i, pr := range params {
		pr.W.CopyFrom(a.ref[i])
		a.snapshots[p][i].CopyFrom(a.ref[i])
	}
	a.live[p] = true
	a.liveN++
	// Admit the returning replica from the round after everything
	// already open or closed: it will not submit to an in-flight round,
	// so counting it toward one would leave that round one update short
	// of its (inflated) quorum forever.
	join := a.joinRoundLocked()
	if minJoin > join {
		join = minJoin
	}
	a.liveFrom[p] = join
	det := a.detachedAt[p]
	degraded := a.N - a.liveN
	a.mu.Unlock()
	a.rejoins.Inc()
	a.degraded.Set(float64(degraded))
	a.events.Emit(obs.Event{Type: obs.EventReplicaRejoin, Replica: p, Round: join,
		Value: float64(degraded)})
	if !det.IsZero() {
		a.recoverySec.Observe(time.Since(det).Seconds())
	}
	a.announce(netx.FrameRejoin, p, join)
}

// joinRoundLocked is the first round a replica (re)joining now may
// count toward: one past every round already open or closed. Caller
// holds a.mu.
func (a *Averager) joinRoundLocked() int {
	join := a.doneFloor
	for r := range a.doneRounds {
		if r+1 > join {
			join = r + 1
		}
	}
	for r := range a.pending {
		if r+1 > join {
			join = r + 1
		}
	}
	if a.latestRound+1 > join {
		join = a.latestRound + 1
	}
	return join
}

// announce broadcasts a membership change for the LOCAL replica to the
// mesh. Remote membership changes (applied via inboundLoop) are never
// re-announced — they are only relayed along the topology, whose relay
// rule is loop-free by construction — so the coordinator-free protocol
// cannot echo.
func (a *Averager) announce(t netx.FrameType, p, round int) {
	if a.mesh == nil || p != a.mesh.Self {
		return
	}
	// Best effort: a peer that is itself gone cannot be told.
	_ = a.mesh.Broadcast(context.Background(), &netx.Frame{Type: t, Replica: uint32(p), Round: uint32(round)})
}

// sendRefState answers a restarted peer's FrameRefRequest with a copy
// of the current reference weights and the round the requester should
// join from. Meta carries the destination so intermediate replicas on a
// sparse topology can route the reply hop-by-hop (see inboundLoop).
func (a *Averager) sendRefState(to int) {
	if a.mesh == nil || to == a.mesh.Self {
		return
	}
	a.mu.RLock()
	tensors := cloneTensors(a.ref)
	join := a.joinRoundLocked()
	a.mu.RUnlock()
	_ = a.mesh.Route(context.Background(), to, &netx.Frame{
		Type: netx.FrameRefState, Replica: uint32(a.mesh.Self),
		Round: uint32(join), Meta: uint32(to), Tensors: tensors,
	})
}

// ResumeReplica re-enters a fully restarted process into a running
// elastic-averaging job: it asks the mesh peers for the current
// reference state, installs the first reply as this process's
// reference copy (reseeding every delta baseline), and announces the
// rejoin so peers re-admit this replica from the returned join round.
// It returns that round — the round the caller should resume training
// at. Call after AttachMesh and before training starts.
func (a *Averager) ResumeReplica(ctx context.Context) (int, error) {
	if a.mesh == nil {
		return 0, errors.New("core: ResumeReplica needs an attached mesh")
	}
	self := a.mesh.Self
	req := &netx.Frame{Type: netx.FrameRefRequest, Replica: uint32(self)}
	if err := a.mesh.Broadcast(ctx, req); err != nil {
		return 0, fmt.Errorf("core: requesting reference state: %w", err)
	}
	// Re-ask periodically: the request or the reply may be lost while a
	// peer's self-healing connection back to us is still re-dialing.
	var f *netx.Frame
	for f == nil {
		select {
		case f = <-a.refState:
		case <-time.After(refRequestRetry):
			_ = a.mesh.Broadcast(ctx, req)
		case <-ctx.Done():
			return 0, fmt.Errorf("core: waiting for reference state: %w", ctx.Err())
		case <-a.done:
			return 0, errors.New("core: averager closed while waiting for reference state")
		}
	}
	a.mu.Lock()
	if len(f.Tensors) != len(a.ref) {
		a.mu.Unlock()
		return 0, fmt.Errorf("core: peer reference has %d tensors, model has %d", len(f.Tensors), len(a.ref))
	}
	for i := range a.ref {
		a.ref[i].CopyFrom(f.Tensors[i])
	}
	for p := range a.snapshots {
		for i := range a.snapshots[p] {
			a.snapshots[p][i].CopyFrom(a.ref[i])
		}
	}
	join := int(f.Round)
	if local := a.joinRoundLocked(); local > join {
		join = local
	}
	// Updates from rounds older than join were in flight when this
	// process died; they belong to quorums this replica is not part of.
	a.liveFrom[self] = join
	a.mu.Unlock()
	a.events.Emit(obs.Event{Type: obs.EventReplicaRejoin, Replica: self, Round: join,
		Detail: fmt.Sprintf("reseeded from replica %d's reference", int(f.Replica))})
	a.announce(netx.FrameRejoin, self, join)
	return join, nil
}

// LiveReplicas reports how many pipelines currently participate in
// rounds.
func (a *Averager) LiveReplicas() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.liveN
}

// Live reports whether pipeline p currently participates in rounds.
func (a *Averager) Live(p int) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return p >= 0 && p < a.N && a.live[p]
}

// RoundProgress reports the newest round any replica has submitted an
// update for, and per replica the newest round it submitted (-1 before
// its first). The heal supervisor compares the two to spot a replica
// falling a streak of rounds behind the pack.
func (a *Averager) RoundProgress() (latest int, last []int) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	last = make([]int, a.N)
	copy(last, a.lastRound)
	return a.latestRound, last
}

// RoundLatencyQuantile reports the q-quantile (0..1) of observed
// elastic-round latency in seconds, or 0 before any round closed — the
// signal the heal supervisor derives adaptive round deadlines from.
func (a *Averager) RoundLatencyQuantile(q float64) float64 {
	return a.roundSec.Quantile(q)
}

// submitRetries bounds SubmitContext's retry loop; the delays between
// attempts follow the shared transport backoff (exponential with
// jitter) starting from submitBackoff.
const (
	submitRetries = 3
	submitBackoff = time.Millisecond
)

// refRequestRetry paces ResumeReplica's re-asks for reference state.
const refRequestRetry = 250 * time.Millisecond

// Submit performs step ❸ for pipeline p after its optimizer has applied
// a local update for the given round. It panics on misuse (pipeline out
// of range, submit after Close); SubmitContext is the error-returning
// variant for callers that degrade gracefully.
func (a *Averager) Submit(p, round int, params []*nn.Param) {
	if err := a.SubmitContext(context.Background(), p, round, params); err != nil {
		panic(fmt.Sprintf("core: Submit(pipeline %d, round %d): %v", p, round, err))
	}
}

// SubmitContext derives pipeline p's local update delta from the
// previous snapshot and sends it to the reference model without
// blocking. A transient send failure is retried with exponential
// backoff (bounded by submitRetries) until ctx is done; submitting
// after Close returns an error instead of wedging a later Drain. When a
// fault injector is installed the update may be delayed or dropped in
// flight — a dropped update is absorbed by the round deadline, never an
// error.
func (a *Averager) SubmitContext(ctx context.Context, p, round int, params []*nn.Param) error {
	if p < 0 || p >= a.N {
		return fmt.Errorf("pipeline %d out of range [0, %d)", p, a.N)
	}
	if round < 0 {
		return fmt.Errorf("round %d negative", round)
	}
	deltas := make([]*tensor.Tensor, len(params))
	for i, pr := range params {
		deltas[i] = tensor.Sub(pr.W, a.snapshots[p][i])
	}
	f := &netx.Frame{Type: netx.FrameUpdate, Replica: uint32(p), Round: uint32(round), Tensors: deltas}
	if a.codec != netx.CodecNone {
		blob, err := a.comps[p].Pack(deltas)
		if err != nil {
			return fmt.Errorf("compressing update: %w", err)
		}
		f = &netx.Frame{Type: a.codec.UpdateFrameType(), Replica: uint32(p), Round: uint32(round), Blob: blob}
	}
	if size, err := netx.FrameWireSize(f); err == nil {
		a.updateBytes.Add(float64(size))
	}
	a.addSent(1)
	start := time.Now()
	retry := netx.Backoff{Base: submitBackoff}
	for attempt := 0; ; attempt++ {
		err := a.tx.Send(ctx, f)
		if err == nil {
			if a.tracer != nil {
				a.tracer.Span(avgTracePID, avgTraceSubmitTID, "submit", "avg",
					wallUS(start), float64(time.Since(start).Nanoseconds())/1e3,
					map[string]any{"round": round, "replica": p})
			}
			return nil
		}
		if errors.Is(err, netx.ErrDropped) {
			// Lost in flight by the fault layer: not counted as sent, so
			// Drain does not wait for it; the round deadline closes the
			// round without it.
			a.addSent(-1)
			return nil
		}
		if attempt >= submitRetries {
			a.addSent(-1)
			return fmt.Errorf("after %d attempts: %w", attempt+1, err)
		}
		if err := retry.Sleep(ctx); err != nil {
			a.addSent(-1)
			return err
		}
	}
}

// RoundClosed reports whether the round has been applied to the
// reference model (complete, expired, or closed by a detach).
func (a *Averager) RoundClosed(round int) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.roundClosedLocked(round)
}

// WaitRound blocks until the given round closes on THIS process's
// reference copy — the distributed round barrier. Unlike Drain, whose
// sent/applied watermarks only see local submits, WaitRound observes
// the round itself, so it also waits for peer updates a multi-process
// job delivers over the mesh. It returns ctx.Err() if ctx ends first.
//
// With a round deadline armed, WaitRound also bounds a round that never
// opens: if every replica's update for the round was lost in flight, no
// accumulator exists for the expiry loop to expire, so the waiter
// closes the round as empty once the deadline passes. Without a
// deadline such a round blocks until ctx ends — the same "wait forever"
// contract the single-process round has.
func (a *Averager) WaitRound(ctx context.Context, round int) error {
	stop := context.AfterFunc(ctx, a.notifyRounds)
	defer stop()
	if d := a.roundDeadline(); d > 0 {
		timer := time.AfterFunc(d, func() { a.expireEmptyRound(round) })
		defer timer.Stop()
	}
	a.drainMu.Lock()
	defer a.drainMu.Unlock()
	for !a.RoundClosed(round) && ctx.Err() == nil {
		a.drainCond.Wait()
	}
	return ctx.Err()
}

// Dilute performs step ❷ for pipeline p: its weights are mixed with the
// current reference model in ratio (1−α):α, and the post-dilution weights
// become the baseline for the next round's delta. Callers that want exact
// synchronous elastic-averaging semantics Drain() between Submit and
// Dilute so the reference already includes the round's updates; callers
// that must never block may Dilute immediately against a slightly stale
// reference.
func (a *Averager) Dilute(p int, params []*nn.Param) {
	alpha := float32(a.Alpha)
	a.mu.RLock()
	for i, pr := range params {
		pr.W.ScaleInPlace(1 - alpha)
		pr.W.AxpyInPlace(alpha, a.ref[i])
	}
	a.mu.RUnlock()
	for i, pr := range params {
		a.snapshots[p][i].CopyFrom(pr.W)
	}
}

// AfterStep performs steps ❷ and ❸ together in the fully asynchronous
// mode: submit the local update, then dilute against whatever reference
// is current (never blocking the pipeline).
func (a *Averager) AfterStep(p, round int, params []*nn.Param) {
	a.Submit(p, round, params)
	a.Dilute(p, params)
}

// Reference returns a snapshot (deep copy) of the current reference
// model weights.
func (a *Averager) Reference() []*tensor.Tensor {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return cloneTensors(a.ref)
}

// SetReference overwrites the reference model with src's weights (e.g.
// when resuming from a checkpoint) and re-seeds every pipeline's delta
// baseline to match, so the next local updates are measured from the
// restored point. Call before training resumes, not mid-round.
func (a *Averager) SetReference(src []*nn.Param) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(src) != len(a.ref) {
		panic("core: SetReference length mismatch")
	}
	for i, p := range src {
		a.ref[i].CopyFrom(p.W)
	}
	for p := range a.snapshots {
		for i := range a.snapshots[p] {
			a.snapshots[p][i].CopyFrom(a.ref[i])
		}
	}
}

// WriteReference copies the current reference weights into dst (e.g. a
// model used for evaluation).
func (a *Averager) WriteReference(dst []*nn.Param) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if len(dst) != len(a.ref) {
		panic("core: WriteReference length mismatch")
	}
	for i, p := range dst {
		p.W.CopyFrom(a.ref[i])
	}
}

// Drain blocks until every update sent so far has been applied, so tests
// and evaluation points observe a consistent reference model. The wait
// parks on a condition variable signalled by the reference loop — no
// core is burned while updates are in flight.
func (a *Averager) Drain() { _ = a.DrainContext(context.Background()) }

// DrainContext is Drain with a way out: it returns ctx.Err() when the
// context is cancelled or its deadline passes before the outstanding
// updates apply, leaving the averager in a consistent (if not fully
// drained) state.
func (a *Averager) DrainContext(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		a.drainMu.Lock()
		defer a.drainMu.Unlock()
		a.drainCond.Broadcast()
	})
	defer stop()
	a.drainMu.Lock()
	defer a.drainMu.Unlock()
	target := a.sent
	for a.applied < target && ctx.Err() == nil {
		a.drainCond.Wait()
	}
	return ctx.Err()
}

// Close shuts the reference process down after draining pending
// updates. In a multi-process job the mesh connections close first, so
// peer inbound loops stop before the local loopback drains.
func (a *Averager) Close() {
	a.closed.Do(func() {
		a.Drain()
		if a.mesh != nil {
			a.mesh.Close()
		}
		a.loopTx.Close()
		<-a.done
	})
}

// PendingRounds reports how many rounds are awaiting stragglers, for
// observability and tests.
func (a *Averager) PendingRounds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}
