package core

import (
	"fmt"
	"sort"

	"avgpipe/internal/cluster"
	"avgpipe/internal/pipesim"
	"avgpipe/internal/workload"
)

// TuneResult is the outcome of a parallelism-degree tuning method.
type TuneResult struct {
	Method string
	// M and N are the chosen micro-batch and pipeline counts.
	M, N int
	// TimePerDataBatch is the (measured or predicted) training time per
	// batch of data at the chosen setting.
	TimePerDataBatch float64
	// TuningCost is the simulated wall-clock time the method itself
	// consumed (Fig. 18).
	TuningCost float64
	// Relaxed is true when no setting satisfied the memory constraint
	// (e.g. the reference model alone exceeds a very tight budget) and
	// the minimum-footprint setting was chosen instead.
	Relaxed bool
}

// Divisors returns the divisors of n in increasing order — the legal
// micro-batch counts for a batch of n samples.
func Divisors(n int) []int {
	var out []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// settingEval measures one (M, N) setting by running Algorithm 1 and the
// simulator, returning per-data-batch time, whether it fits memory, and
// the simulated cost of the measurement.
func settingEval(w *workload.Workload, c *cluster.Cluster, stages []workload.Stage, m, n int, memLimit int64, batches int) (timePerBatch float64, fits bool, cost float64, res *pipesim.Result, err error) {
	cfg := AFPConfig{Workload: w, Cluster: c, Stages: stages, Micro: m, Pipes: n,
		MemLimit: memLimit, Batches: batches, RefModel: n > 1}
	_, r, err := DecideAdvance(cfg)
	if err != nil {
		return 0, false, 0, nil, err
	}
	return r.BatchTime / float64(n), cfg.fits(r), r.Makespan, r, nil
}

// ProfilingTune implements the paper's profiling-based tuning method
// (§5.2): profile one setting for twenty batches, predict every other
// setting with Eqs. 2–8, and pick the fastest prediction that satisfies
// the memory constraint. memLimit = 0 uses the GPUs' capacity.
func ProfilingTune(w *workload.Workload, c *cluster.Cluster, stages []workload.Stage, memLimit int64) (*TuneResult, *Profile, error) {
	if memLimit <= 0 {
		memLimit = c.GPUs[0].MemBytes
	}
	m0, n0 := DefaultProfileSetting(w)
	prof, err := ProfileSetting(w, c, stages, m0, n0)
	if err != nil {
		return nil, nil, err
	}
	best := &TuneResult{Method: "profiling", TuningCost: prof.Cost}
	type cand struct {
		m, n int
		t    float64
	}
	var feasible []cand
	var minMem int64 = -1
	var minMemM, minMemN int
	for _, m := range Divisors(w.BatchSize) {
		for n := 1; n <= w.MaxPipelines; n++ {
			pred, err := Predict(prof, m, n)
			if err != nil {
				return nil, nil, err
			}
			pm := pred.PeakMem()
			if minMem < 0 || pm < minMem {
				minMem, minMemM, minMemN = pm, m, n
			}
			if pm > memLimit {
				continue
			}
			feasible = append(feasible, cand{m, n, pred.TimePerDataBatch()})
		}
	}
	if len(feasible) == 0 {
		// The budget is below even the leanest configuration (typically
		// the reference model's irreducible floor); fall back to the
		// minimum-footprint setting and say so.
		best.Relaxed = true
		memLimit = 0 // do not constrain the measurement run
		feasible = append(feasible, cand{minMemM, minMemN, 0})
	}
	// The prediction ranks settings; a short measured validation of the
	// top few candidates absorbs the model's error at extreme settings.
	// Cost stays a handful of short runs versus traversal's full sweep.
	sort.Slice(feasible, func(i, j int) bool { return feasible[i].t < feasible[j].t })
	const shortlist = 5
	chosen := false
	for i, cd := range feasible {
		if i >= shortlist {
			break
		}
		t, fits, cost, _, err := settingEval(w, c, stages, cd.m, cd.n, memLimit, 2)
		if err != nil {
			return nil, prof, err
		}
		best.TuningCost += cost
		if !fits {
			continue
		}
		if !chosen || t < best.TimePerDataBatch {
			chosen = true
			best.M, best.N = cd.m, cd.n
			best.TimePerDataBatch = t
		}
	}
	if !chosen {
		return nil, prof, fmt.Errorf("core: no shortlisted setting was feasible")
	}
	return best, prof, nil
}

// TraversalTune tries every setting of the parallelism degrees with a
// short measured run each — the exhaustive baseline of §7.3 whose cost
// the profiling method avoids. trialBatches batches are simulated per
// setting (the paper uses "a small number of batches (e.g., ten)").
func TraversalTune(w *workload.Workload, c *cluster.Cluster, stages []workload.Stage, memLimit int64, trialBatches int) (*TuneResult, error) {
	if memLimit <= 0 {
		memLimit = c.GPUs[0].MemBytes
	}
	if trialBatches <= 0 {
		trialBatches = 10
	}
	best := &TuneResult{Method: "traversal"}
	found := false
	for _, m := range Divisors(w.BatchSize) {
		for n := 1; n <= w.MaxPipelines; n++ {
			t, fits, cost, _, err := settingEval(w, c, stages, m, n, memLimit, trialBatches)
			if err != nil {
				return nil, err
			}
			best.TuningCost += cost
			if !fits {
				continue
			}
			if !found || t < best.TimePerDataBatch {
				found = true
				best.M, best.N = m, n
				best.TimePerDataBatch = t
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("core: traversal found no feasible setting")
	}
	return best, nil
}

// GuidelineTune implements the two naive guidelines of §7.3:
// "max-num" maximizes the micro-batch count (micro-batch size 1) and then
// the pipeline count under memory; "max-size" maximizes the micro-batch
// size (M = 1) and then the pipeline count.
func GuidelineTune(w *workload.Workload, c *cluster.Cluster, stages []workload.Stage, memLimit int64, maxSize bool) (*TuneResult, error) {
	if memLimit <= 0 {
		memLimit = c.GPUs[0].MemBytes
	}
	m := w.BatchSize
	name := "max-num"
	if maxSize {
		m = 1
		name = "max-size"
	}
	best := &TuneResult{Method: name, M: m, N: 1}
	found := false
	for n := w.MaxPipelines; n >= 1; n-- {
		t, fits, cost, _, err := settingEval(w, c, stages, m, n, memLimit, 2)
		if err != nil {
			return nil, err
		}
		best.TuningCost += cost
		if fits {
			best.N = n
			best.TimePerDataBatch = t
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: guideline %s found no feasible pipeline count", name)
	}
	return best, nil
}
