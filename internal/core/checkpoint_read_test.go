package core

import (
	"testing"

	"avgpipe/internal/workload"
)

// TestReadCheckpointSeam pins the reader-side API a serving tier uses:
// ReadCheckpointInfo surfaces the commit marker without touching
// weights, and LoadReference reproduces the trainer's reference model
// bit-exactly in a model the reader built itself.
func TestReadCheckpointSeam(t *testing.T) {
	task := workload.TranslationTask()
	cfg := TrainerConfig{Task: task, Pipelines: 2, Micro: 2, StageCount: 2,
		Seed: 5, ClipNorm: 5}
	dir := t.TempDir()

	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for r := 0; r < 3; r++ {
		tr.Step()
	}
	if err := tr.SaveCheckpoint(dir); err != nil {
		t.Fatal(err)
	}

	info, err := ReadCheckpointInfo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Round != 3 || info.Pipelines != 2 || info.Seed != 5 {
		t.Fatalf("info = %+v, want round 3, pipelines 2, seed 5", info)
	}

	// A reader builds its own model (any init seed — weights are about
	// to be overwritten) and loads the reference into it.
	m := task.NewModel(99)
	got, err := LoadReference(dir, m.Params())
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != info.Round {
		t.Fatalf("LoadReference round %d, want %d", got.Round, info.Round)
	}
	want := tr.ReferenceSnapshot()
	if len(want) != len(m.Params()) {
		t.Fatalf("param count %d vs %d", len(want), len(m.Params()))
	}
	for i, p := range m.Params() {
		if !equalFloat32s(p.W.Data(), want[i].W.Data()) {
			t.Fatalf("reference param %d (%s) not bit-exact after load", i, p.Name)
		}
	}

	// An incomplete directory (no commit marker) must be rejected.
	if _, err := ReadCheckpointInfo(t.TempDir()); err == nil {
		t.Fatal("ReadCheckpointInfo accepted a directory with no commit marker")
	}
	if _, err := LoadReference(t.TempDir(), m.Params()); err == nil {
		t.Fatal("LoadReference accepted a directory with no commit marker")
	}
}
