package core

import (
	"avgpipe/internal/data"
	"avgpipe/internal/nn"
	"avgpipe/internal/optim"
	"avgpipe/internal/tensor"
	"avgpipe/internal/workload"
)

// StaleTrainer emulates the training semantics of multi-version pipelines
// for the statistical-efficiency comparison (Fig. 14): PipeDream computes
// gradients against weights that are up to K−1 updates old (one stashed
// version per in-flight micro-batch), and PipeDream-2BW bounds the
// staleness to one update with its two buffered versions. The gradient is
// evaluated on a Delay-steps-old snapshot but applied to the current
// weights — exactly the asynchronous-update semantics whose statistical
// cost the paper measures.
type StaleTrainer struct {
	// Delay is the version lag in optimizer steps (PipeDream: K−1;
	// PipeDream-2BW: 1; 0 degenerates to synchronous training).
	Delay int

	model   *nn.Sequential
	shadow  *nn.Sequential // evaluates gradients on old weights
	opt     optim.Optimizer
	history [][]*tensor.Tensor // ring of past weight snapshots
	task    *workload.Task
	gen     data.Generator
}

// NewStaleTrainer builds the trainer around a fresh model.
func NewStaleTrainer(task *workload.Task, seed int64, delay int) *StaleTrainer {
	if delay < 0 {
		panic("core: negative staleness delay")
	}
	return &StaleTrainer{
		Delay:  delay,
		model:  task.NewModel(seed),
		shadow: task.NewModel(seed),
		opt:    newOptimizer(task),
		task:   task,
		gen:    task.NewGen(seed + 100),
	}
}

// snapshot deep-copies the current model weights.
func (st *StaleTrainer) snapshot() []*tensor.Tensor {
	ps := st.model.Params()
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.W.Clone()
	}
	return out
}

// Step trains one batch with delayed-gradient semantics and returns the
// training loss (measured on the stale weights, as the real system would).
func (st *StaleTrainer) Step() float64 {
	// Record the current version, keep only Delay+1 of them.
	st.history = append(st.history, st.snapshot())
	if len(st.history) > st.Delay+1 {
		st.history = st.history[1:]
	}
	// Gradients come from the oldest resident version.
	old := st.history[0]
	shadowParams := st.shadow.Params()
	for i, p := range shadowParams {
		p.W.CopyFrom(old[i])
	}
	nn.ZeroGrads(shadowParams)
	batch := st.gen.NextBatch(st.task.BatchSize)
	loss := workload.TrainStep(st.shadow, batch)
	optim.ClipGradNorm(shadowParams, 5)
	// Apply the stale gradient to the *current* weights.
	modelParams := st.model.Params()
	for i, p := range modelParams {
		p.G.CopyFrom(shadowParams[i].G)
	}
	st.opt.Step(modelParams)
	nn.ZeroGrads(modelParams)
	return loss
}

// Eval evaluates the current weights on the held-out batch.
func (st *StaleTrainer) Eval() (loss, acc float64) {
	return workload.Evaluate(st.model, st.gen.EvalBatch(), st.task.PerPosition)
}
