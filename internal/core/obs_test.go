package core

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"avgpipe/internal/obs"
	"avgpipe/internal/pipesim"
	"avgpipe/internal/sched"
	"avgpipe/internal/workload"
)

// TestObsCrossValidatesScheduleAnalysis is the obs acceptance check:
// the per-stage op counters the runtime records while executing a batch
// must equal sched.Analyze's analytic occupancy for the same schedule,
// and the simulator's RecordDrift against those measured values must be
// zero — one more triangle leg on top of crossval_test.go, this time
// through the metrics registry instead of StageMetrics.
func TestObsCrossValidatesScheduleAnalysis(t *testing.T) {
	task := workload.TranslationTask()
	const k, m = 2, 8
	batch := task.NewGen(17).NextBatch(16)
	w, c, simStages := simFixture(k, m)

	for _, s := range crossValSchedules(k, m) {
		an, err := sched.Analyze(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		reg := obs.NewRegistry()
		pl, err := NewPipelineFromSchedule(task.NewModel(9), s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		pl.SetObs(reg)
		pl.RunBatch(batch, m)

		var fwd, bwd, peak []int
		var totalOps int
		for st := 0; st < k; st++ {
			label := strconv.Itoa(st)
			f := int(reg.Counter("avgpipe_stage_fwd_ops_total", "", "stage", label).Value())
			b := int(reg.Counter("avgpipe_stage_bwd_ops_total", "", "stage", label).Value())
			p := int(reg.Gauge("avgpipe_stage_peak_inflight", "", "stage", label).Value())
			if f != an.Fwd[st] || b != an.Bwd[st] {
				t.Errorf("%s stage %d: obs %dF %dB, analysis %dF %dB",
					s.Name, st, f, b, an.Fwd[st], an.Bwd[st])
			}
			if p != an.MaxInFlight[st] {
				t.Errorf("%s stage %d: obs peak in-flight %d, analysis %d",
					s.Name, st, p, an.MaxInFlight[st])
			}
			bubble := reg.Gauge("avgpipe_stage_bubble_fraction", "", "stage", label).Value()
			if bubble < 0 || bubble > 1 {
				t.Errorf("%s stage %d: bubble fraction %v outside [0,1]", s.Name, st, bubble)
			}
			fwd, bwd, peak = append(fwd, f), append(bwd, b), append(peak, p)
			totalOps += f + b
		}
		if totalOps != an.TotalOps() {
			t.Errorf("%s: obs total ops %d, analysis %d", s.Name, totalOps, an.TotalOps())
		}
		if got := reg.Counter("avgpipe_batches_total", "").Value(); got != 1 {
			t.Errorf("%s: batches counter %v, want 1", s.Name, got)
		}
		if got := reg.Histogram("avgpipe_batch_seconds", "", nil).Count(); got != 1 {
			t.Errorf("%s: batch histogram count %v, want 1", s.Name, got)
		}

		// Simulate the same schedule and cross-check it against the
		// obs-measured occupancy: zero drift.
		r, err := pipesim.Run(pipesim.Config{
			Workload: w, Cluster: c, Stages: simStages,
			Micro: m, Pipelines: 1, Schedule: s, Batches: 1, Obs: reg,
		})
		if err != nil {
			t.Fatalf("%s sim: %v", s.Name, err)
		}
		if drift := r.RecordDrift(reg, fwd, bwd, peak); drift != 0 {
			t.Errorf("%s: sim-vs-runtime drift %d, want 0", s.Name, drift)
		}
		for _, dim := range []string{"fwd", "bwd", "peak_inflight"} {
			if got := reg.Counter("avgpipe_sim_runtime_drift_total", "", "dim", dim).Value(); got != 0 {
				t.Errorf("%s: drift counter %s = %v, want 0", s.Name, dim, got)
			}
		}
		if got := reg.Counter("avgpipe_sim_runs_total", "").Value(); got != 1 {
			t.Errorf("%s: sim runs counter %v, want 1", s.Name, got)
		}
		// And RecordDrift must notice a genuinely wrong measurement.
		wrong := append([]int(nil), fwd...)
		wrong[0]++
		if drift := r.RecordDrift(obs.NewRegistry(), wrong, bwd, peak); drift != 1 {
			t.Errorf("%s: perturbed drift %d, want 1", s.Name, drift)
		}
	}
}

// TestWriteTraceWithoutTrace pins the error-path satellite: exporting a
// trace from a pipeline that never recorded one must fail loudly, not
// write a misleading empty file.
func TestWriteTraceWithoutTrace(t *testing.T) {
	task := workload.TranslationTask()
	pl, err := NewPipelineWith(task.NewModel(2), PipelineConfig{Stages: 2, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	pl.RunBatch(task.NewGen(5).NextBatch(8), 4)
	var buf bytes.Buffer
	if err := pl.WriteTrace(&buf); err != ErrNoTrace {
		t.Fatalf("WriteTrace without Trace = %v, want ErrNoTrace", err)
	}
	if buf.Len() != 0 {
		t.Fatal("failed WriteTrace still wrote output")
	}
	if _, err := pl.Tracer(); err != ErrNoTrace {
		t.Fatal("Tracer without Trace must return ErrNoTrace")
	}
}

// TestTrainerObsAndStepLog drives a short real training run and checks
// the trainer-level telemetry: throughput counters, the averaging-round
// metrics, the instrumented averager queue, and the JSONL step log.
func TestTrainerObsAndStepLog(t *testing.T) {
	reg := obs.NewRegistry()
	task := workload.TranslationTask()
	const n, rounds = 2, 3
	tr, err := NewTrainer(TrainerConfig{
		Task: task, Pipelines: n, Micro: 2, StageCount: 2, Seed: 1, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var log bytes.Buffer
	tr.SetStepLog(&log)
	for i := 0; i < rounds; i++ {
		tr.Step()
	}
	tr.Averager().Drain()

	wantSamples := float64(rounds * n * task.BatchSize)
	if got := reg.Counter("avgpipe_train_samples_total", "").Value(); got != wantSamples {
		t.Errorf("samples counter %v, want %v", got, wantSamples)
	}
	if got := reg.Histogram("avgpipe_train_step_seconds", "", nil).Count(); got != rounds {
		t.Errorf("step histogram count %v, want %d", got, rounds)
	}
	if got := reg.Counter("avgpipe_avg_updates_total", "").Value(); got != rounds*n {
		t.Errorf("averager updates %v, want %d", got, rounds*n)
	}
	if got := reg.Histogram("avgpipe_avg_round_seconds", "", nil).Count(); got != rounds {
		t.Errorf("averaging rounds observed %v, want %d", got, rounds)
	}
	if got := reg.Counter("avgpipe_queue_sends_total", "", "queue", "averager").Value(); got != rounds*n {
		t.Errorf("averager queue sends %v, want %d", got, rounds*n)
	}
	if got := reg.Gauge("avgpipe_avg_open_rounds", "").Value(); got != 0 {
		t.Errorf("open rounds after drain %v, want 0", got)
	}

	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != rounds {
		t.Fatalf("step log has %d lines, want %d", len(lines), rounds)
	}
	for i, ln := range lines {
		var rec StepRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("step log line %d: %v", i, err)
		}
		if rec.Round != i {
			t.Errorf("line %d: round %d", i, rec.Round)
		}
		if rec.Samples != n*task.BatchSize {
			t.Errorf("line %d: samples %d, want %d", i, rec.Samples, n*task.BatchSize)
		}
		if rec.StepSeconds <= 0 || rec.SamplesPerS <= 0 {
			t.Errorf("line %d: non-positive timing %+v", i, rec)
		}
		if rec.Loss == 0 {
			t.Errorf("line %d: zero loss", i)
		}
	}
}

// benchRunBatch measures the pipelined runtime with a given registry —
// the live-vs-discard pair quantifies instrumentation overhead, recorded
// in BENCH_obs.json (must stay under 3%).
func benchRunBatch(b *testing.B, reg *obs.Registry) {
	task := workload.TranslationTask()
	pl, err := NewPipelineWith(task.NewModel(2), PipelineConfig{Stages: 2, Obs: reg})
	if err != nil {
		b.Fatal(err)
	}
	batch := task.NewGen(3).NextBatch(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.RunBatch(batch, 4)
	}
}

func BenchmarkRunBatchObsLive(b *testing.B)    { benchRunBatch(b, obs.NewRegistry()) }
func BenchmarkRunBatchObsDiscard(b *testing.B) { benchRunBatch(b, obs.Discard()) }

// TestSimulatorTracerSharedEnvelope checks that pipesim's trace export
// rides the same obs.Tracer as the runtime: same envelope keys, same
// event shape, source recorded in otherData.
func TestSimulatorTracerSharedEnvelope(t *testing.T) {
	const k, m = 2, 4
	w, c, stages := simFixture(k, m)
	r, err := pipesim.Run(pipesim.Config{
		Workload: w, Cluster: c, Stages: stages,
		Micro: m, Pipelines: 1, Schedule: sched.OneFOneB(k, m, 1), Batches: 1,
		Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("sim trace not valid JSON: %v", err)
	}
	if doc.OtherData["source"] != "pipesim.Result" {
		t.Fatalf("otherData %v", doc.OtherData)
	}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("sim trace has no spans")
	}
}
