package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"avgpipe/internal/nn"
	"avgpipe/internal/tensor"
	"avgpipe/internal/workload"
)

// randomProfile draws a plausible profile for predictor property tests.
func randomProfile(r *rand.Rand) *Profile {
	k := 2 + r.Intn(5)
	p := &Profile{
		M:      []int{4, 8, 16}[r.Intn(3)],
		N:      1,
		PerGPU: make([]GPUProfile, k),
	}
	for s := range p.PerGPU {
		p.PerGPU[s] = GPUProfile{
			TGpu: 0.01 + r.Float64(),
			Comm: r.Float64() * 0.5,
			Util: 0.05 + 0.9*r.Float64(),
			FMod: int64(1+r.Intn(1000)) << 20,
			FDat: int64(1+r.Intn(1000)) << 20,
		}
	}
	return p
}

// Property: predictions are positive and finite for every legal setting.
func TestPropPredictWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomProfile(r)
		for _, m := range []int{1, 2, p.M, 4 * p.M} {
			for n := 1; n <= 4; n++ {
				pred, err := Predict(p, m, n)
				if err != nil {
					return false
				}
				if !(pred.BatchTime > 0) || math.IsInf(pred.BatchTime, 0) || math.IsNaN(pred.BatchTime) {
					return false
				}
				if pred.PeakMem() <= 0 {
					return false
				}
				for _, g := range pred.PerGPU {
					if g.TGpu < 0 || g.TCom < 0 || g.TBub < 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: predicted compute time conserves work — at unsaturated
// settings, T*gpu × throughput is invariant: (m*/m)·TGpu when r·Util ≤ 1.
func TestPropPredictComputeConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomProfile(r)
		// Choose m* ≥ m and n* = 1 so the utilization scaling
		// r = m/m* ≤ 1 keeps φ* under 100%.
		mStar := p.M * (1 + r.Intn(4))
		pred, err := Predict(p, mStar, 1)
		if err != nil {
			return false
		}
		for s, g := range pred.PerGPU {
			want := float64(mStar) / float64(p.M) * p.PerGPU[s].TGpu
			if math.Abs(g.TGpu-want) > 1e-9*math.Max(1, want) {
				t.Logf("stage %d: TGpu %v, want %v", s, g.TGpu, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: predicted memory (Eq. 8) is exactly linear in n* and the
// data part inversely linear in m*.
func TestPropPredictMemoryScaling(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomProfile(r)
		base, err := Predict(p, p.M, 1)
		if err != nil {
			return false
		}
		doubleN, err := Predict(p, p.M, 2)
		if err != nil {
			return false
		}
		for s := range p.PerGPU {
			if math.Abs(float64(doubleN.PerGPU[s].Mem)-2*float64(base.PerGPU[s].Mem)) > 2 {
				return false
			}
		}
		doubleM, err := Predict(p, 2*p.M, 1)
		if err != nil {
			return false
		}
		for s, g := range p.PerGPU {
			want := float64(g.FMod) + float64(g.FDat)/2
			if math.Abs(float64(doubleM.PerGPU[s].Mem)-want) > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: with identical updates from all pipelines, the reference is
// exactly init + rounds·delta regardless of N or α.
func TestPropAveragerReferenceTracksMean(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		rounds := 1 + r.Intn(6)
		delta := float32(r.NormFloat64())
		init := []*nn.Param{nn.NewParam("w", tensor.Full(1, 3))}
		a := NewAverager(n, init)
		defer a.Close()
		if v := 0.05 + r.Float64()*0.9; true {
			a.Alpha = v
		}
		reps := make([][]*nn.Param, n)
		for p := range reps {
			reps[p] = []*nn.Param{nn.NewParam("w", tensor.Full(1, 3))}
		}
		for round := 0; round < rounds; round++ {
			for p, rep := range reps {
				rep[0].W.AddInPlace(tensor.Full(delta, 3))
				a.Submit(p, round, rep)
			}
			a.Drain()
			for p, rep := range reps {
				a.Dilute(p, rep)
			}
		}
		ref := a.Reference()
		want := 1 + float64(rounds)*float64(delta)
		return math.Abs(float64(ref[0].At(0))-want) < 1e-3*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the partitioner's bottleneck cost is monotone non-increasing
// in the stage count.
func TestPropPartitionMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		layers := 4 + r.Intn(8)
		ls := make([]workload.LayerCost, layers)
		for i := range ls {
			c := 1 + r.Float64()*9
			ls[i] = workload.LayerCost{Name: "l", FwdFLOPs: c, BwdFLOPs: 2 * c,
				ParamBytes: 1, OutActBytes: 1, StashBytes: 1}
		}
		w := &workload.Workload{Name: "p", Layers: ls, BatchSize: 4}
		bottleneck := func(k int) float64 {
			var worst float64
			for _, s := range Partition(w, k, 0) {
				if c := s.FwdFLOPs + s.BwdFLOPs; c > worst {
					worst = c
				}
			}
			return worst
		}
		prev := math.Inf(1)
		for k := 1; k <= layers; k++ {
			b := bottleneck(k)
			if b > prev+1e-9 {
				t.Logf("bottleneck rose from %v to %v at k=%d", prev, b, k)
				return false
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
