package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"avgpipe/internal/compiled"
	"avgpipe/internal/data"
	"avgpipe/internal/fault"
	"avgpipe/internal/nn"
	"avgpipe/internal/obs"
	"avgpipe/internal/optim"
	"avgpipe/internal/sched"
	"avgpipe/internal/tensor"
)

// Pipeline executes one model partitioned into stages, with a goroutine
// per stage connected by buffered channels — the process-per-GPU runtime
// of §6 mapped onto goroutines. It is a schedule interpreter: each stage
// worker walks its ordered sched.Op list, receiving, computing, and
// sending exactly as the op sequence dictates, so a sched.Schedule is
// the single source of truth for what every stage does. AFAB/GPipe,
// 1F1B/Dapple, AFP, and any future schedule run on real tensors with
// zero runtime changes, and the runtime's measured occupancy equals the
// schedule's analytic occupancy (sched.Analyze) exactly.
type Pipeline struct {
	Stages []*nn.Sequential
	// Advance is the AFP run-ahead vector of the NewPipeline wrapper
	// (nil when the pipeline was built from an explicit plan/schedule).
	Advance []int
	// Trace records per-op timestamps into StageMetrics.Ops during
	// RunBatch; see WriteTrace.
	Trace bool

	plan  sched.Plan
	fixed *sched.Schedule // non-nil when built from one explicit schedule
	cur   *sched.Schedule // schedule in effect for curM micro-batches
	curAn *sched.Analysis
	curM  int

	// compiled selects the compiled execution path: each stage lowered
	// once at build time into a static op graph (progs[s]) that the
	// stage workers replay per micro-batch, with the backward pass split
	// 2BP-style into grad-input and grad-weight ops. envPools[s] recycles
	// per-micro execution environments across batches, keyed by input
	// shape; each pool is touched only by stage s's worker goroutine.
	compiled bool
	progs    []*compiled.Program
	envPools []map[string][]*compiled.Env

	params  []*nn.Param
	metrics []StageMetrics

	obs        *obs.Registry
	stageInstr []stageInstr
	batchSec   *obs.Histogram
	batches    *obs.Counter
	stalls     *obs.Counter

	// faults injects straggler delays into stage compute (nil = none);
	// pipeID identifies this pipeline in the injector's coordinates.
	faults *fault.Injector
	pipeID int
	// watchdog is the liveness window: a batch with no op retired for
	// this long is aborted with a *StallError (0 = no watchdog).
	watchdog time.Duration
}

// stageInstr caches one stage's obs metric handles so the stage worker's
// hot path is pure atomic updates — no registry lookups per op.
type stageInstr struct {
	fwdSec, bwdSec *obs.Histogram
	waitSec        *obs.Counter
	fwdOps, bwdOps *obs.Counter
	bubbleFrac     *obs.Gauge
	peakInFlight   *obs.Gauge
}

// StageMetrics instruments one stage worker's most recent batch: wall
// time spent computing vs waiting on channels, the peak number of live
// activation contexts, op counts, and (with Pipeline.Trace) the per-op
// timeline — the runtime counterpart of the simulator's busy/idle/stash
// accounting, cross-validated against sched.Analyze.
type StageMetrics struct {
	// Busy is time inside Forward/Backward; Wait is time blocked on
	// channel receives.
	Busy, Wait time.Duration
	// FwdTime and BwdTime split Busy by pass direction — the per-stage
	// compute costs the paper's tuner profiles (§5).
	FwdTime, BwdTime time.Duration
	// PeakInFlight is the stash high-water mark (live contexts).
	PeakInFlight int
	// Fwd and Bwd count micro-batch passes executed. Under a split
	// schedule Bwd counts grad-input passes (BwdIn) and BwdW counts
	// grad-weight passes; combined backwards leave BwdW at zero.
	Fwd, Bwd, BwdW int
	// Ops is the per-op trace (only recorded when Pipeline.Trace is
	// set), mirroring the simulator's timeline events so real and
	// simulated traces are diff-able.
	Ops []OpEvent
}

// BubbleFraction is the share of the stage's wall clock spent waiting on
// channel receives rather than computing — the runtime analogue of the
// simulator's (bubble + comm-blocked) / makespan.
func (m StageMetrics) BubbleFraction() float64 {
	wall := m.Busy + m.Wait
	if wall <= 0 {
		return 0
	}
	return float64(m.Wait) / float64(wall)
}

// OpEvent records one executed op for tracing: its position in the
// stage's schedule, what it was, and when its compute ran relative to
// the start of RunBatch. WriteTrace renders these in the same
// Chrome-trace shape as pipesim.Result.WriteTrace.
type OpEvent struct {
	Index int
	Kind  sched.Kind
	Micro int
	Start time.Duration
	Dur   time.Duration
}

// PartitionMode selects how model layers are assigned to stages.
type PartitionMode int

const (
	// PartitionEqualLayers splits the model into stages of near-equal
	// layer count (PartitionModelLayers).
	PartitionEqualLayers PartitionMode = iota
	// PartitionCostAware runs the PipeDream-style DP (Partition) over
	// per-layer costs estimated from parameter counts, balancing stage
	// compute rather than stage depth.
	PartitionCostAware
)

// PipelineConfig configures NewPipelineWith.
type PipelineConfig struct {
	// Stages is the pipeline depth K.
	Stages int
	// Plan generates the per-stage op order; the zero value means AFP
	// with Advance (which is pure 1F1B when Advance is nil).
	Plan sched.Plan
	// Advance is the per-stage run-ahead consumed by the default AFP
	// plan; ignored when Plan is set.
	Advance []int
	// Partition picks the layer→stage assignment policy.
	Partition PartitionMode
	// Trace records per-op timestamps (StageMetrics.Ops).
	Trace bool
	// Obs selects the metrics registry the pipeline records per-stage
	// compute, wait, and occupancy metrics into (nil = obs.Default()).
	Obs *obs.Registry
	// Compiled lowers each stage into a static op graph at build time
	// (kernel dispatch resolved, buffer lifetimes planned, arena slots
	// pre-assigned) and replays it per micro-batch, splitting the
	// backward pass into grad-input and grad-weight ops. Bitwise
	// equivalent to the interpreter on the same seed.
	Compiled bool
}

// NewPipeline partitions model layers into k stages of near-equal layer
// count and drives them with the AFP schedule for the given advance
// vector (nil = pure 1F1B). It is a thin wrapper over NewPipelineWith:
// the hand-rolled channel discipline it used to implement is now just
// one point in the schedule family the interpreter executes. It panics
// on a malformed config; NewPipelineWith returns the error instead.
func NewPipeline(model *nn.Sequential, k int, advance []int) *Pipeline {
	p, err := NewPipelineWith(model, PipelineConfig{Stages: k, Advance: advance})
	if err != nil {
		panic(err.Error())
	}
	return p
}

// NewPipelineWith builds a schedule-interpreting pipeline with explicit
// partitioning and schedule choices. A malformed config (non-positive
// stage count, advance vector of the wrong length) is an error, not a
// panic, so callers can degrade gracefully.
func NewPipelineWith(model *nn.Sequential, cfg PipelineConfig) (*Pipeline, error) {
	k := cfg.Stages
	if k <= 0 {
		return nil, fmt.Errorf("core: need at least one stage, got %d", k)
	}
	advance := cfg.Advance
	if advance == nil {
		advance = make([]int, k)
	}
	if len(advance) != k {
		return nil, fmt.Errorf("core: advance length %d for %d stages", len(advance), k)
	}
	plan := cfg.Plan
	if plan.Make == nil {
		plan = sched.AFPPlan(advance)
	}
	var bounds [][2]int
	switch cfg.Partition {
	case PartitionCostAware:
		bounds = PartitionModelCost(model, k)
	default:
		bounds = PartitionModelLayers(len(model.Layers), k)
	}
	stages := make([]*nn.Sequential, k)
	for s, b := range bounds {
		stages[s] = model.Slice(b[0], b[1])
	}
	p := &Pipeline{Stages: stages, Advance: advance, Trace: cfg.Trace,
		plan: plan, params: model.Params(), metrics: make([]StageMetrics, k)}
	if cfg.Compiled {
		p.compiled = true
		p.progs = make([]*compiled.Program, k)
		p.envPools = make([]map[string][]*compiled.Env, k)
		for s := range stages {
			prog, err := nn.CompileStage(stages[s], compiled.Options{EmitOut: s < k-1, EmitDX: s > 0})
			if err != nil {
				return nil, fmt.Errorf("core: compile stage %d: %w", s, err)
			}
			p.progs[s] = prog
			p.envPools[s] = make(map[string][]*compiled.Env)
		}
	}
	p.SetObs(cfg.Obs)
	return p, nil
}

// Compiled reports whether the pipeline executes stages through the
// compiled op-graph path rather than the reference interpreter.
func (p *Pipeline) Compiled() bool { return p.compiled }

// StagePrograms returns the per-stage compiled programs (nil when the
// pipeline interprets); tests use them to validate plans directly.
func (p *Pipeline) StagePrograms() []*compiled.Program { return p.progs }

// SetObs rebinds the pipeline's metrics to reg (nil = obs.Default()) and
// caches per-stage metric handles so RunBatch's hot path never touches
// the registry. Call before RunBatch, not concurrently with it.
func (p *Pipeline) SetObs(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	p.obs = reg
	// The kernel layer's arena and worker-pool gauges land in the same
	// registry, so /metrics shows whether buffer reuse is happening.
	tensor.BindObs(reg)
	p.batchSec = reg.Histogram("avgpipe_batch_seconds",
		"Wall time of one pipelined batch (RunBatch).", nil)
	p.batches = reg.Counter("avgpipe_batches_total", "Pipelined batches executed.")
	p.stalls = reg.Counter("avgpipe_watchdog_stalls_total",
		"Batches aborted by the runtime watchdog after a live-locked schedule.")
	p.stageInstr = make([]stageInstr, len(p.Stages))
	for s := range p.Stages {
		st := strconv.Itoa(s)
		p.stageInstr[s] = stageInstr{
			fwdSec: reg.Histogram("avgpipe_stage_fwd_seconds",
				"Per-micro-batch forward compute time by stage.", nil, "stage", st),
			bwdSec: reg.Histogram("avgpipe_stage_bwd_seconds",
				"Per-micro-batch backward compute time by stage.", nil, "stage", st),
			waitSec: reg.Counter("avgpipe_stage_wait_seconds_total",
				"Cumulative time a stage worker blocked on channel receives.", "stage", st),
			fwdOps: reg.Counter("avgpipe_stage_fwd_ops_total",
				"Forward micro-batch passes executed by stage.", "stage", st),
			bwdOps: reg.Counter("avgpipe_stage_bwd_ops_total",
				"Backward micro-batch passes executed by stage.", "stage", st),
			bubbleFrac: reg.Gauge("avgpipe_stage_bubble_fraction",
				"Wait share of the stage's wall clock in the last batch.", "stage", st),
			peakInFlight: reg.Gauge("avgpipe_stage_peak_inflight",
				"High-water mark of live activation stashes by stage.", "stage", st),
		}
	}
}

// NewPipelineFromSchedule builds a schedule interpreter over an explicit
// execution plan: stage s runs schedule.PerGPU[s] verbatim. The schedule
// must pass sched.Analyze (per-GPU structure plus cross-stage dependency
// legality) and cover exactly one flush: RunBatch(batch, m) requires its
// micro set to be 0..m−1.
func NewPipelineFromSchedule(model *nn.Sequential, schedule *sched.Schedule) (*Pipeline, error) {
	an, err := sched.Analyze(schedule)
	if err != nil {
		return nil, err
	}
	if an.MaxMicro != an.Micros-1 {
		return nil, fmt.Errorf("core: schedule %s micro indices not contiguous from 0 (max %d over %d micros)",
			schedule.Name, an.MaxMicro, an.Micros)
	}
	k := an.Stages
	bounds := PartitionModelLayers(len(model.Layers), k)
	stages := make([]*nn.Sequential, k)
	for s, b := range bounds {
		stages[s] = model.Slice(b[0], b[1])
	}
	p := &Pipeline{Stages: stages,
		plan:  sched.Plan{Name: schedule.Name},
		fixed: schedule, cur: schedule, curAn: an, curM: an.Micros,
		params: model.Params(), metrics: make([]StageMetrics, k)}
	p.SetObs(nil)
	return p, nil
}

// Params returns all parameters across stages in layer order.
func (p *Pipeline) Params() []*nn.Param { return p.params }

// Metrics returns each stage's instrumentation from the most recent
// RunBatch call.
func (p *Pipeline) Metrics() []StageMetrics {
	return append([]StageMetrics(nil), p.metrics...)
}

// ScheduleFor returns the concrete schedule the pipeline executes for a
// batch of m micro-batches, together with its analysis — what tests and
// callers compare measured StageMetrics against.
func (p *Pipeline) ScheduleFor(m int) (*sched.Schedule, *sched.Analysis) {
	return p.scheduleFor(m)
}

func (p *Pipeline) scheduleFor(m int) (*sched.Schedule, *sched.Analysis) {
	if p.cur != nil && p.curM == m {
		return p.cur, p.curAn
	}
	if p.fixed != nil {
		panic(fmt.Sprintf("core: pipeline built from schedule %q covering %d micro-batches, RunBatch got %d",
			p.fixed.Name, p.curAn.Micros, m))
	}
	s := p.plan.Make(len(p.Stages), m)
	if p.compiled {
		// The compiled runtime executes the finer-grained 2BP split: each
		// combined backward becomes an adjacent BwdIn/BwdW pair, so the
		// analysis (and the simulator) see the same op stream the stage
		// workers retire.
		s = sched.SplitBackward(s)
	}
	an, err := sched.Analyze(s)
	if err != nil {
		panic(fmt.Sprintf("core: plan %s produced an illegal schedule: %v", p.plan.Name, err))
	}
	if an.Micros != m || an.MaxMicro != m-1 {
		panic(fmt.Sprintf("core: plan %s covers %d micros, want %d", p.plan.Name, an.Micros, m))
	}
	p.cur, p.curAn, p.curM = s, an, m
	return s, an
}

// microMsg carries one micro-batch's activations (forward) or gradient
// (backward) between stage workers.
type microMsg struct {
	micro int
	t     *tensor.Tensor
}

// batchRun is the shared state of one RunBatch execution: the channels
// wiring the stage workers, the abort machinery the watchdog uses to
// unwind a live-locked batch, and the liveness clock it reads.
type batchRun struct {
	micros       []*data.Batch
	fwdCh, bwdCh []chan microMsg
	losses       []float64
	epoch        time.Time

	// abort, once closed, unwinds every stage worker at its next receive
	// or op boundary. kill records the first failure and closes it.
	abort    chan struct{}
	killOnce sync.Once
	errMu    sync.Mutex
	err      error

	// last is the unix-nano timestamp of the most recent retired op —
	// the liveness signal the watchdog monitors. pos[s] is the index of
	// the op stage s is currently executing (len(ops) once done), read
	// by the watchdog to dump in-flight state.
	last atomic.Int64
	pos  []atomic.Int32
}

// kill records the first failure and aborts the run; later calls lose.
func (r *batchRun) kill(err error) {
	r.killOnce.Do(func() {
		r.errMu.Lock()
		r.err = err
		r.errMu.Unlock()
		close(r.abort)
	})
}

// failure returns the recorded abort cause, nil if the run completed.
func (r *batchRun) failure() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.err
}

// RunBatch pipelines the batch through the stages as M micro-batches,
// each stage executing its schedule's op order, and returns the mean
// training loss across micro-batches. Parameter gradients are
// accumulated (summed over micro-batches) and then scaled to a batch
// mean; the caller owns the optimizer step. It panics if the batch is
// aborted (only possible with a watchdog armed); RunBatchContext is the
// error-returning variant.
func (p *Pipeline) RunBatch(batch *data.Batch, micro int) float64 {
	loss, err := p.RunBatchContext(context.Background(), batch, micro)
	if err != nil {
		panic(fmt.Sprintf("core: RunBatch: %v", err))
	}
	return loss
}

// RunBatchContext is RunBatch under supervision: the batch is aborted —
// every stage worker unwound, per-stage metrics still recorded, no
// goroutine leaked — when ctx is cancelled, or when the watchdog window
// (SetWatchdog) elapses with no op retired. A watchdog kill returns a
// *StallError dumping each stage's in-flight schedule position. On
// error the partially accumulated gradients are meaningless; discard
// them before the next step.
func (p *Pipeline) RunBatchContext(ctx context.Context, batch *data.Batch, micro int) (float64, error) {
	k := len(p.Stages)
	micros := batch.Slice(micro)
	m := len(micros)
	schedule, _ := p.scheduleFor(m)

	run := &batchRun{
		micros: micros,
		fwdCh:  make([]chan microMsg, k),
		bwdCh:  make([]chan microMsg, k),
		losses: make([]float64, m),
		epoch:  time.Now(),
		abort:  make(chan struct{}),
		pos:    make([]atomic.Int32, k),
	}
	// fwdCh[s] feeds stage s its inputs (s ≥ 1; stage 0 reads the batch
	// slice directly); bwdCh[s] feeds stage s its output gradients.
	// Capacity m means senders never block — all sequencing comes from
	// the receivers following their op order, and an aborted receiver
	// can never strand a sender.
	for s := 0; s < k; s++ {
		run.fwdCh[s] = make(chan microMsg, m)
		run.bwdCh[s] = make(chan microMsg, m)
	}
	run.last.Store(run.epoch.UnixNano())

	stopMon := make(chan struct{})
	if p.watchdog > 0 || ctx.Done() != nil {
		go p.monitor(ctx, schedule, run, stopMon)
	}

	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if p.compiled {
				p.stageWorkerCompiled(s, k, schedule.PerGPU[s], run)
			} else {
				p.stageWorker(s, k, schedule.PerGPU[s], run)
			}
		}(s)
	}
	wg.Wait()
	close(stopMon)
	p.batchSec.Observe(time.Since(run.epoch).Seconds())
	p.batches.Inc()
	if err := run.failure(); err != nil {
		return 0, err
	}

	optim.ScaleGrads(p.params, m)
	var total float64
	for _, l := range run.losses {
		total += l
	}
	return total / float64(m), nil
}

// monitor is the per-batch watchdog goroutine: it aborts the run when
// ctx fires or when no op has retired within the watchdog window.
func (p *Pipeline) monitor(ctx context.Context, schedule *sched.Schedule, run *batchRun, stop chan struct{}) {
	tick := p.watchdog / 4
	if tick <= 0 || tick > 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			run.kill(ctx.Err())
			return
		case <-time.After(tick):
			if p.watchdog <= 0 {
				continue
			}
			idle := time.Since(time.Unix(0, run.last.Load()))
			if idle >= p.watchdog {
				p.stalls.Inc()
				err := p.stallError(schedule, run, idle)
				p.obs.Events().Emit(obs.Event{Type: obs.EventWatchdogStall,
					Replica: p.pipeID, Round: -1, Value: idle.Seconds(),
					Detail: err.Error()})
				run.kill(err)
				return
			}
		}
	}
}

// stageWorker interprets stage s's op list. A Fwd op receives the
// micro-batch's activations from upstream, runs the stage forward, and
// ships the output downstream; a Bwd op receives the output gradient
// from downstream (the last stage derives it locally from the loss),
// runs the stage backward, and ships the input gradient upstream.
// Because the worker follows the schedule verbatim, its measured
// PeakInFlight equals the schedule's analytic MaxInFlight exactly.
func (p *Pipeline) stageWorker(s, k int, ops []sched.Op, run *batchRun) {
	stage := p.Stages[s]
	ctxs := make(map[int]*nn.Context, len(run.micros))
	outs := make(map[int]*tensor.Tensor) // last stage: fwd outputs awaiting their bwd
	pendF := make(map[int]*tensor.Tensor)
	pendB := make(map[int]*tensor.Tensor)
	inflight := 0
	met := StageMetrics{}
	instr := p.stageInstr[s]
	defer func() {
		p.metrics[s] = met
		instr.waitSec.Add(met.Wait.Seconds())
		instr.bubbleFrac.Set(met.BubbleFraction())
		instr.peakInFlight.SetMax(float64(met.PeakInFlight))
	}()

	// recv returns the payload for the requested micro, stashing any
	// earlier arrivals the op order has not demanded yet (upstream may
	// produce in a different order than this stage consumes). ok is
	// false when the run was aborted while waiting.
	recv := func(ch chan microMsg, pending map[int]*tensor.Tensor, micro int) (*tensor.Tensor, bool) {
		if t, ok := pending[micro]; ok {
			delete(pending, micro)
			return t, true
		}
		start := time.Now()
		for {
			select {
			case msg := <-ch:
				if msg.micro == micro {
					met.Wait += time.Since(start)
					return msg.t, true
				}
				pending[msg.micro] = msg.t
			case <-run.abort:
				met.Wait += time.Since(start)
				return nil, false
			}
		}
	}

	for i, op := range ops {
		run.pos[s].Store(int32(i))
		select {
		case <-run.abort:
			return
		default:
		}
		var x *tensor.Tensor
		ok := true
		switch op.Kind {
		case sched.Fwd:
			if s == 0 {
				x = run.micros[op.Micro].X
			} else {
				x, ok = recv(run.fwdCh[s], pendF, op.Micro)
			}
		case sched.Bwd, sched.BwdIn:
			if s < k-1 {
				x, ok = recv(run.bwdCh[s], pendB, op.Micro)
			}
		}
		if !ok {
			return
		}
		busyStart := time.Now()
		if d := p.faults.StageDelay(p.pipeID, s, i); d > 0 {
			// Injected straggler: the op still computes, just slowly, so
			// the slowdown shows up in Busy and the per-op trace.
			time.Sleep(d)
		}
		switch op.Kind {
		case sched.Fwd:
			ctx := nn.NewContext()
			y := stage.Forward(ctx, x, true)
			ctxs[op.Micro] = ctx
			inflight++
			met.Fwd++
			if inflight > met.PeakInFlight {
				met.PeakInFlight = inflight
			}
			if s < k-1 {
				run.fwdCh[s+1] <- microMsg{micro: op.Micro, t: y}
			} else {
				outs[op.Micro] = y
			}
		case sched.Bwd, sched.BwdIn:
			if s == k-1 {
				// The loss gradient is local: derive it from the stashed
				// forward output. The logits' last use is the loss, so
				// their buffer goes back to the arena for the next micro.
				y := outs[op.Micro]
				loss, dlogits := nn.CrossEntropy(y, run.micros[op.Micro].Targets)
				y.Release()
				run.losses[op.Micro] = loss
				delete(outs, op.Micro)
				x = dlogits
			}
			// The interpreter cannot split the passes (grad-input and
			// grad-weight are interleaved inside Module.Backward), so a
			// BwdIn op runs the full backward and the matching BwdW op
			// becomes pure bookkeeping — the upstream send still happens
			// at the earlier BwdIn position, which is the legality the
			// split schedule encodes.
			dx := stage.Backward(ctxs[op.Micro], x)
			delete(ctxs, op.Micro)
			if op.Kind == sched.Bwd {
				inflight--
			}
			met.Bwd++
			if s > 0 {
				run.bwdCh[s-1] <- microMsg{micro: op.Micro, t: dx}
			} else if dx != nil && dx != x {
				// Stage 0's input gradient has no consumer.
				dx.Release()
			}
			// The received gradient (or the local loss gradient) retires
			// with this op; guard against identity passthroughs returning
			// x itself.
			if x != nil && dx != x {
				x.Release()
			}
		case sched.BwdW:
			// Grad weights already accumulated by the BwdIn above; the
			// micro-batch's stash retires here, as the schedule accounts.
			inflight--
			met.BwdW++
		}
		dur := time.Since(busyStart)
		met.Busy += dur
		run.last.Store(time.Now().UnixNano())
		if op.Kind == sched.Fwd {
			met.FwdTime += dur
			instr.fwdSec.Observe(dur.Seconds())
			instr.fwdOps.Inc()
		} else {
			met.BwdTime += dur
			instr.bwdSec.Observe(dur.Seconds())
			instr.bwdOps.Inc()
		}
		if p.Trace {
			met.Ops = append(met.Ops, OpEvent{Index: i, Kind: op.Kind, Micro: op.Micro,
				Start: busyStart.Sub(run.epoch), Dur: dur})
		}
	}
	run.pos[s].Store(int32(len(ops)))
}

// shapeKey renders a tensor shape as an Env-pool map key.
func shapeKey(shape []int) string { return fmt.Sprint(shape) }

// stageWorkerCompiled interprets stage s's op list by replaying the
// stage's compiled program: no kernel dispatch, no lifetime decisions,
// no arena traffic in steady state — those were all resolved when the
// pipeline was built. Backward is split 2BP-style: BwdIn replays the
// grad-input ops and ships dx upstream immediately, BwdW replays the
// grad-weight ops afterwards, which is when the micro-batch's Env (its
// activation stash) retires. Combined Bwd ops (explicit unsplit
// schedules) run both halves inline.
func (p *Pipeline) stageWorkerCompiled(s, k int, ops []sched.Op, run *batchRun) {
	prog := p.progs[s]
	pool := p.envPools[s]
	envs := make(map[int]*compiled.Env, len(run.micros))
	pendF := make(map[int]*tensor.Tensor)
	pendB := make(map[int]*tensor.Tensor)
	inflight := 0
	met := StageMetrics{}
	instr := p.stageInstr[s]
	defer func() {
		// Recycle every Env, including those stranded by an abort: the
		// ownership of their in-flight tensors is indeterminate, so
		// ResetMicro drops the references without releasing.
		for _, env := range envs {
			env.ResetMicro()
			key := shapeKey(env.InShape())
			pool[key] = append(pool[key], env)
		}
		p.metrics[s] = met
		instr.waitSec.Add(met.Wait.Seconds())
		instr.bubbleFrac.Set(met.BubbleFraction())
		instr.peakInFlight.SetMax(float64(met.PeakInFlight))
	}()

	getEnv := func(shape []int) *compiled.Env {
		key := shapeKey(shape)
		if es := pool[key]; len(es) > 0 {
			env := es[len(es)-1]
			pool[key] = es[:len(es)-1]
			return env
		}
		return prog.NewEnv(shape)
	}
	putEnv := func(env *compiled.Env) {
		key := shapeKey(env.InShape())
		pool[key] = append(pool[key], env)
	}
	// retire runs the grad-weight half and returns the micro's Env to
	// the pool; this is where the schedule's in-flight count drops.
	retire := func(micro int) {
		env := envs[micro]
		env.BackwardWeights()
		env.EndMicro()
		delete(envs, micro)
		putEnv(env)
		inflight--
	}

	recv := func(ch chan microMsg, pending map[int]*tensor.Tensor, micro int) (*tensor.Tensor, bool) {
		if t, ok := pending[micro]; ok {
			delete(pending, micro)
			return t, true
		}
		start := time.Now()
		for {
			select {
			case msg := <-ch:
				if msg.micro == micro {
					met.Wait += time.Since(start)
					return msg.t, true
				}
				pending[msg.micro] = msg.t
			case <-run.abort:
				met.Wait += time.Since(start)
				return nil, false
			}
		}
	}

	for i, op := range ops {
		run.pos[s].Store(int32(i))
		select {
		case <-run.abort:
			return
		default:
		}
		var x *tensor.Tensor
		ok := true
		switch op.Kind {
		case sched.Fwd:
			if s == 0 {
				x = run.micros[op.Micro].X
			} else {
				x, ok = recv(run.fwdCh[s], pendF, op.Micro)
			}
		case sched.Bwd, sched.BwdIn:
			if s < k-1 {
				x, ok = recv(run.bwdCh[s], pendB, op.Micro)
			}
		}
		if !ok {
			return
		}
		busyStart := time.Now()
		if d := p.faults.StageDelay(p.pipeID, s, i); d > 0 {
			time.Sleep(d)
		}
		switch op.Kind {
		case sched.Fwd:
			env := getEnv(x.Shape())
			env.BindInput(x)
			env.Forward()
			envs[op.Micro] = env
			inflight++
			met.Fwd++
			if inflight > met.PeakInFlight {
				met.PeakInFlight = inflight
			}
			if s < k-1 {
				run.fwdCh[s+1] <- microMsg{micro: op.Micro, t: env.Output()}
			}
		case sched.Bwd, sched.BwdIn:
			env := envs[op.Micro]
			if s == k-1 {
				// The loss gradient is local. The logits live in the Env
				// (slot storage, or a dynamic tensor ReleaseOutput frees).
				loss, dlogits := nn.CrossEntropy(env.Output(), run.micros[op.Micro].Targets)
				env.ReleaseOutput()
				run.losses[op.Micro] = loss
				x = dlogits
			}
			env.BindGradIn(x)
			env.BackwardInput()
			// Ship dx the moment the grad-input half finishes — the 2BP
			// payoff: upstream unblocks before our grad-weight work runs.
			if s > 0 {
				run.bwdCh[s-1] <- microMsg{micro: op.Micro, t: env.GradOut()}
			}
			met.Bwd++
			if op.Kind == sched.Bwd {
				retire(op.Micro)
			}
		case sched.BwdW:
			retire(op.Micro)
			met.BwdW++
		}
		dur := time.Since(busyStart)
		met.Busy += dur
		run.last.Store(time.Now().UnixNano())
		if op.Kind == sched.Fwd {
			met.FwdTime += dur
			instr.fwdSec.Observe(dur.Seconds())
			instr.fwdOps.Inc()
		} else {
			met.BwdTime += dur
			instr.bwdSec.Observe(dur.Seconds())
			instr.bwdOps.Inc()
		}
		if p.Trace {
			met.Ops = append(met.Ops, OpEvent{Index: i, Kind: op.Kind, Micro: op.Micro,
				Start: busyStart.Sub(run.epoch), Dur: dur})
		}
	}
	run.pos[s].Store(int32(len(ops)))
}

// ErrNoTrace reports a WriteTrace call with nothing to write: Trace was
// never enabled (or RunBatch never ran), so emitting a silently empty
// trace file would mislead whoever opens it in Perfetto.
var ErrNoTrace = errors.New("core: no per-op trace recorded; set Pipeline.Trace before RunBatch")

// Tracer renders the most recent traced RunBatch into the shared
// obs.Tracer: one track per stage, one complete event per op named like
// "F3"/"B3" (matching pipesim.Result.Tracer so a real run and its
// simulation diff directly), plus one flow-arrow chain per micro-batch
// linking its journey forward down the stages and backward up again.
func (p *Pipeline) Tracer() (*obs.Tracer, error) {
	traced := false
	for _, met := range p.metrics {
		if len(met.Ops) > 0 {
			traced = true
			break
		}
	}
	if !traced {
		return nil, ErrNoTrace
	}
	t := obs.NewTracer("core.Pipeline")
	t.Process(1, "pipeline runtime")
	k := len(p.metrics)
	for s, met := range p.metrics {
		t.Thread(1, s+1, fmt.Sprintf("GPU %d", s+1))
		for _, op := range met.Ops {
			name := sched.Op{Kind: op.Kind, Micro: op.Micro}.String()
			start := op.Start.Seconds() * 1e6
			dur := op.Dur.Seconds() * 1e6
			t.Span(1, s+1, name, "compute", start, dur,
				map[string]any{"op": op.Index, "micro": op.Micro})
			// Flow arrows: micro m starts its chain at stage 0's forward,
			// steps through every intermediate op, and ends where its
			// gradient returns to stage 0. Mid-span timestamps keep each
			// flow point inside its slice, as chrome://tracing requires.
			id := fmt.Sprintf("micro-%d", op.Micro)
			mid := start + dur/2
			switch {
			case op.Kind == sched.Fwd && s == 0:
				t.Flow(1, s+1, id, id, mid, obs.FlowStart)
			case (op.Kind == sched.Bwd || op.Kind == sched.BwdW) && (s == 0 || k == 1):
				// Under a split schedule the micro's chain ends at its
				// grad-weight op on stage 0; its BwdIn there is a step.
				t.Flow(1, s+1, id, id, mid, obs.FlowEnd)
			default:
				t.Flow(1, s+1, id, id, mid, obs.FlowStep)
			}
		}
	}
	return t, nil
}

// WriteTrace writes the most recent traced RunBatch as a Chrome trace.
// It returns ErrNoTrace instead of silently writing an empty trace when
// Trace was never enabled.
func (p *Pipeline) WriteTrace(w io.Writer) error {
	t, err := p.Tracer()
	if err != nil {
		return err
	}
	if err := t.Write(w); err != nil {
		return fmt.Errorf("core: write pipeline trace: %w", err)
	}
	return nil
}
