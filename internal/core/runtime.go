package core

import (
	"fmt"
	"io"
	"sync"
	"time"

	"avgpipe/internal/data"
	"avgpipe/internal/nn"
	"avgpipe/internal/optim"
	"avgpipe/internal/pipesim"
	"avgpipe/internal/sched"
	"avgpipe/internal/tensor"
)

// Pipeline executes one model partitioned into stages, with a goroutine
// per stage connected by buffered channels — the process-per-GPU runtime
// of §6 mapped onto goroutines. It is a schedule interpreter: each stage
// worker walks its ordered sched.Op list, receiving, computing, and
// sending exactly as the op sequence dictates, so a sched.Schedule is
// the single source of truth for what every stage does. AFAB/GPipe,
// 1F1B/Dapple, AFP, and any future schedule run on real tensors with
// zero runtime changes, and the runtime's measured occupancy equals the
// schedule's analytic occupancy (sched.Analyze) exactly.
type Pipeline struct {
	Stages []*nn.Sequential
	// Advance is the AFP run-ahead vector of the NewPipeline wrapper
	// (nil when the pipeline was built from an explicit plan/schedule).
	Advance []int
	// Trace records per-op timestamps into StageMetrics.Ops during
	// RunBatch; see WriteTrace.
	Trace bool

	plan  sched.Plan
	fixed *sched.Schedule // non-nil when built from one explicit schedule
	cur   *sched.Schedule // schedule in effect for curM micro-batches
	curAn *sched.Analysis
	curM  int

	params  []*nn.Param
	metrics []StageMetrics
}

// StageMetrics instruments one stage worker's most recent batch: wall
// time spent computing vs waiting on channels, the peak number of live
// activation contexts, op counts, and (with Pipeline.Trace) the per-op
// timeline — the runtime counterpart of the simulator's busy/idle/stash
// accounting, cross-validated against sched.Analyze.
type StageMetrics struct {
	// Busy is time inside Forward/Backward; Wait is time blocked on
	// channel receives.
	Busy, Wait time.Duration
	// PeakInFlight is the stash high-water mark (live contexts).
	PeakInFlight int
	// Fwd and Bwd count micro-batch passes executed.
	Fwd, Bwd int
	// Ops is the per-op trace (only recorded when Pipeline.Trace is
	// set), mirroring the simulator's timeline events so real and
	// simulated traces are diff-able.
	Ops []OpEvent
}

// OpEvent records one executed op for tracing: its position in the
// stage's schedule, what it was, and when its compute ran relative to
// the start of RunBatch. WriteTrace renders these in the same
// Chrome-trace shape as pipesim.Result.WriteTrace.
type OpEvent struct {
	Index int
	Kind  sched.Kind
	Micro int
	Start time.Duration
	Dur   time.Duration
}

// PartitionMode selects how model layers are assigned to stages.
type PartitionMode int

const (
	// PartitionEqualLayers splits the model into stages of near-equal
	// layer count (PartitionModelLayers).
	PartitionEqualLayers PartitionMode = iota
	// PartitionCostAware runs the PipeDream-style DP (Partition) over
	// per-layer costs estimated from parameter counts, balancing stage
	// compute rather than stage depth.
	PartitionCostAware
)

// PipelineConfig configures NewPipelineWith.
type PipelineConfig struct {
	// Stages is the pipeline depth K.
	Stages int
	// Plan generates the per-stage op order; the zero value means AFP
	// with Advance (which is pure 1F1B when Advance is nil).
	Plan sched.Plan
	// Advance is the per-stage run-ahead consumed by the default AFP
	// plan; ignored when Plan is set.
	Advance []int
	// Partition picks the layer→stage assignment policy.
	Partition PartitionMode
	// Trace records per-op timestamps (StageMetrics.Ops).
	Trace bool
}

// NewPipeline partitions model layers into k stages of near-equal layer
// count and drives them with the AFP schedule for the given advance
// vector (nil = pure 1F1B). It is a thin wrapper over NewPipelineWith:
// the hand-rolled channel discipline it used to implement is now just
// one point in the schedule family the interpreter executes.
func NewPipeline(model *nn.Sequential, k int, advance []int) *Pipeline {
	return NewPipelineWith(model, PipelineConfig{Stages: k, Advance: advance})
}

// NewPipelineWith builds a schedule-interpreting pipeline with explicit
// partitioning and schedule choices.
func NewPipelineWith(model *nn.Sequential, cfg PipelineConfig) *Pipeline {
	k := cfg.Stages
	if k <= 0 {
		panic(fmt.Sprintf("core: need at least one stage, got %d", k))
	}
	advance := cfg.Advance
	if advance == nil {
		advance = make([]int, k)
	}
	if len(advance) != k {
		panic(fmt.Sprintf("core: advance length %d for %d stages", len(advance), k))
	}
	plan := cfg.Plan
	if plan.Make == nil {
		plan = sched.AFPPlan(advance)
	}
	var bounds [][2]int
	switch cfg.Partition {
	case PartitionCostAware:
		bounds = PartitionModelCost(model, k)
	default:
		bounds = PartitionModelLayers(len(model.Layers), k)
	}
	stages := make([]*nn.Sequential, k)
	for s, b := range bounds {
		stages[s] = model.Slice(b[0], b[1])
	}
	return &Pipeline{Stages: stages, Advance: advance, Trace: cfg.Trace,
		plan: plan, params: model.Params(), metrics: make([]StageMetrics, k)}
}

// NewPipelineFromSchedule builds a schedule interpreter over an explicit
// execution plan: stage s runs schedule.PerGPU[s] verbatim. The schedule
// must pass sched.Analyze (per-GPU structure plus cross-stage dependency
// legality) and cover exactly one flush: RunBatch(batch, m) requires its
// micro set to be 0..m−1.
func NewPipelineFromSchedule(model *nn.Sequential, schedule *sched.Schedule) (*Pipeline, error) {
	an, err := sched.Analyze(schedule)
	if err != nil {
		return nil, err
	}
	if an.MaxMicro != an.Micros-1 {
		return nil, fmt.Errorf("core: schedule %s micro indices not contiguous from 0 (max %d over %d micros)",
			schedule.Name, an.MaxMicro, an.Micros)
	}
	k := an.Stages
	bounds := PartitionModelLayers(len(model.Layers), k)
	stages := make([]*nn.Sequential, k)
	for s, b := range bounds {
		stages[s] = model.Slice(b[0], b[1])
	}
	return &Pipeline{Stages: stages,
		plan:  sched.Plan{Name: schedule.Name},
		fixed: schedule, cur: schedule, curAn: an, curM: an.Micros,
		params: model.Params(), metrics: make([]StageMetrics, k)}, nil
}

// Params returns all parameters across stages in layer order.
func (p *Pipeline) Params() []*nn.Param { return p.params }

// Metrics returns each stage's instrumentation from the most recent
// RunBatch call.
func (p *Pipeline) Metrics() []StageMetrics {
	return append([]StageMetrics(nil), p.metrics...)
}

// ScheduleFor returns the concrete schedule the pipeline executes for a
// batch of m micro-batches, together with its analysis — what tests and
// callers compare measured StageMetrics against.
func (p *Pipeline) ScheduleFor(m int) (*sched.Schedule, *sched.Analysis) {
	return p.scheduleFor(m)
}

func (p *Pipeline) scheduleFor(m int) (*sched.Schedule, *sched.Analysis) {
	if p.cur != nil && p.curM == m {
		return p.cur, p.curAn
	}
	if p.fixed != nil {
		panic(fmt.Sprintf("core: pipeline built from schedule %q covering %d micro-batches, RunBatch got %d",
			p.fixed.Name, p.curAn.Micros, m))
	}
	s := p.plan.Make(len(p.Stages), m)
	an, err := sched.Analyze(s)
	if err != nil {
		panic(fmt.Sprintf("core: plan %s produced an illegal schedule: %v", p.plan.Name, err))
	}
	if an.Micros != m || an.MaxMicro != m-1 {
		panic(fmt.Sprintf("core: plan %s covers %d micros, want %d", p.plan.Name, an.Micros, m))
	}
	p.cur, p.curAn, p.curM = s, an, m
	return s, an
}

// microMsg carries one micro-batch's activations (forward) or gradient
// (backward) between stage workers.
type microMsg struct {
	micro int
	t     *tensor.Tensor
}

// RunBatch pipelines the batch through the stages as M micro-batches,
// each stage executing its schedule's op order, and returns the mean
// training loss across micro-batches. Parameter gradients are
// accumulated (summed over micro-batches) and then scaled to a batch
// mean; the caller owns the optimizer step.
func (p *Pipeline) RunBatch(batch *data.Batch, micro int) float64 {
	k := len(p.Stages)
	micros := batch.Slice(micro)
	m := len(micros)
	schedule, _ := p.scheduleFor(m)

	// fwdCh[s] feeds stage s its inputs (s ≥ 1; stage 0 reads the batch
	// slice directly); bwdCh[s] feeds stage s its output gradients.
	// Capacity m means senders never block — all sequencing comes from
	// the receivers following their op order.
	fwdCh := make([]chan microMsg, k)
	bwdCh := make([]chan microMsg, k)
	for s := 0; s < k; s++ {
		fwdCh[s] = make(chan microMsg, m)
		bwdCh[s] = make(chan microMsg, m)
	}
	losses := make([]float64, m)
	epoch := time.Now()

	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			p.stageWorker(s, k, schedule.PerGPU[s], micros, fwdCh, bwdCh, losses, epoch)
		}(s)
	}
	wg.Wait()

	optim.ScaleGrads(p.params, m)
	var total float64
	for _, l := range losses {
		total += l
	}
	return total / float64(m)
}

// stageWorker interprets stage s's op list. A Fwd op receives the
// micro-batch's activations from upstream, runs the stage forward, and
// ships the output downstream; a Bwd op receives the output gradient
// from downstream (the last stage derives it locally from the loss),
// runs the stage backward, and ships the input gradient upstream.
// Because the worker follows the schedule verbatim, its measured
// PeakInFlight equals the schedule's analytic MaxInFlight exactly.
func (p *Pipeline) stageWorker(s, k int, ops []sched.Op, micros []*data.Batch, fwdCh, bwdCh []chan microMsg, losses []float64, epoch time.Time) {
	stage := p.Stages[s]
	ctxs := make(map[int]*nn.Context, len(micros))
	outs := make(map[int]*tensor.Tensor) // last stage: fwd outputs awaiting their bwd
	pendF := make(map[int]*tensor.Tensor)
	pendB := make(map[int]*tensor.Tensor)
	inflight := 0
	met := StageMetrics{}
	defer func() { p.metrics[s] = met }()

	// recv returns the payload for the requested micro, stashing any
	// earlier arrivals the op order has not demanded yet (upstream may
	// produce in a different order than this stage consumes).
	recv := func(ch chan microMsg, pending map[int]*tensor.Tensor, micro int) *tensor.Tensor {
		if t, ok := pending[micro]; ok {
			delete(pending, micro)
			return t
		}
		start := time.Now()
		for {
			msg := <-ch
			if msg.micro == micro {
				met.Wait += time.Since(start)
				return msg.t
			}
			pending[msg.micro] = msg.t
		}
	}

	for i, op := range ops {
		var x *tensor.Tensor
		switch op.Kind {
		case sched.Fwd:
			if s == 0 {
				x = micros[op.Micro].X
			} else {
				x = recv(fwdCh[s], pendF, op.Micro)
			}
		case sched.Bwd:
			if s < k-1 {
				x = recv(bwdCh[s], pendB, op.Micro)
			}
		}
		busyStart := time.Now()
		switch op.Kind {
		case sched.Fwd:
			ctx := nn.NewContext()
			y := stage.Forward(ctx, x, true)
			ctxs[op.Micro] = ctx
			inflight++
			met.Fwd++
			if inflight > met.PeakInFlight {
				met.PeakInFlight = inflight
			}
			if s < k-1 {
				fwdCh[s+1] <- microMsg{micro: op.Micro, t: y}
			} else {
				outs[op.Micro] = y
			}
		case sched.Bwd:
			if s == k-1 {
				// The loss gradient is local: derive it from the stashed
				// forward output.
				loss, dlogits := nn.CrossEntropy(outs[op.Micro], micros[op.Micro].Targets)
				losses[op.Micro] = loss
				delete(outs, op.Micro)
				x = dlogits
			}
			dx := stage.Backward(ctxs[op.Micro], x)
			delete(ctxs, op.Micro)
			inflight--
			met.Bwd++
			if s > 0 {
				bwdCh[s-1] <- microMsg{micro: op.Micro, t: dx}
			}
		}
		dur := time.Since(busyStart)
		met.Busy += dur
		if p.Trace {
			met.Ops = append(met.Ops, OpEvent{Index: i, Kind: op.Kind, Micro: op.Micro,
				Start: busyStart.Sub(epoch), Dur: dur})
		}
	}
}

// WriteTrace renders the most recent traced RunBatch as a Chrome trace
// in the same event shape as pipesim.Result.WriteTrace (one track per
// stage, one complete event per op named like "F3"/"B3"), so a real run
// and its simulation can be diffed directly. Requires Trace to have
// been set before RunBatch.
func (p *Pipeline) WriteTrace(w io.Writer) error {
	var events []pipesim.TraceEvent
	for s, met := range p.metrics {
		events = append(events, pipesim.MetadataEvent(fmt.Sprintf("GPU %d", s+1), s+1))
		for _, op := range met.Ops {
			events = append(events, pipesim.TraceEvent{
				Name:  sched.Op{Kind: op.Kind, Micro: op.Micro}.String(),
				Cat:   "compute",
				Phase: "X",
				TS:    op.Start.Seconds() * 1e6,
				Dur:   op.Dur.Seconds() * 1e6,
				PID:   1,
				TID:   s + 1,
				Args:  map[string]any{"op": op.Index, "micro": op.Micro},
			})
		}
	}
	return pipesim.WriteTraceEvents(w, events, map[string]any{"source": "core.Pipeline"})
}
