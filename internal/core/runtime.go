package core

import (
	"fmt"
	"sync"
	"time"

	"avgpipe/internal/data"
	"avgpipe/internal/nn"
	"avgpipe/internal/optim"
	"avgpipe/internal/tensor"
)

// Pipeline executes one model partitioned into stages, with a goroutine
// per stage connected by buffered channels — the process-per-GPU runtime
// of §6 mapped onto goroutines. Micro-batches flow forward through the
// stage workers; gradients flow back. Each worker applies the
// early-backward (1F1B) discipline with a configurable advance-forward
// allowance: stage s holds at most K−s+Advance[s] live activation
// contexts, so the memory behaviour matches the AFP schedule.
type Pipeline struct {
	Stages []*nn.Sequential
	// Advance[s] is the extra forward run-ahead beyond the 1F1B warmup on
	// stage s (0 everywhere = 1F1B; ≥ M = AFAB).
	Advance []int

	params  []*nn.Param
	metrics []StageMetrics
}

// StageMetrics instruments one stage worker's most recent batch: wall
// time spent computing vs waiting on channels, and the peak number of
// live activation contexts — the runtime counterpart of the simulator's
// busy/idle/stash accounting.
type StageMetrics struct {
	// Busy is time inside Forward/Backward; Wait is time blocked on
	// channel receives.
	Busy, Wait time.Duration
	// PeakInFlight is the stash high-water mark (live contexts).
	PeakInFlight int
	// Fwd and Bwd count micro-batch passes executed.
	Fwd, Bwd int
}

// NewPipeline partitions model layers into k stages of near-equal layer
// count. advance may be nil for pure 1F1B.
func NewPipeline(model *nn.Sequential, k int, advance []int) *Pipeline {
	if advance == nil {
		advance = make([]int, k)
	}
	if len(advance) != k {
		panic(fmt.Sprintf("core: advance length %d for %d stages", len(advance), k))
	}
	bounds := PartitionModelLayers(len(model.Layers), k)
	stages := make([]*nn.Sequential, k)
	for s, b := range bounds {
		stages[s] = model.Slice(b[0], b[1])
	}
	return &Pipeline{Stages: stages, Advance: advance, params: model.Params(),
		metrics: make([]StageMetrics, k)}
}

// Params returns all parameters across stages in layer order.
func (p *Pipeline) Params() []*nn.Param { return p.params }

// Metrics returns each stage's instrumentation from the most recent
// RunBatch call.
func (p *Pipeline) Metrics() []StageMetrics {
	return append([]StageMetrics(nil), p.metrics...)
}

// microMsg carries one micro-batch's activations (forward) or gradient
// (backward) between stage workers.
type microMsg struct {
	micro int
	t     *tensor.Tensor
}

// RunBatch pipelines the batch through the stages as M micro-batches and
// returns the mean training loss across micro-batches. Parameter
// gradients are accumulated (summed over micro-batches) and then scaled
// to a batch mean; the caller owns the optimizer step.
func (p *Pipeline) RunBatch(batch *data.Batch, micro int) float64 {
	k := len(p.Stages)
	micros := batch.Slice(micro)
	m := len(micros)

	fwdCh := make([]chan microMsg, k)
	bwdCh := make([]chan microMsg, k)
	for s := 0; s < k; s++ {
		fwdCh[s] = make(chan microMsg, m)
		bwdCh[s] = make(chan microMsg, m)
	}
	losses := make([]float64, m)

	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			p.stageWorker(s, k, m, micros, fwdCh, bwdCh, losses)
		}(s)
	}
	for mi := 0; mi < m; mi++ {
		fwdCh[0] <- microMsg{micro: mi, t: micros[mi].X}
	}
	wg.Wait()

	optim.ScaleGrads(p.params, m)
	var total float64
	for _, l := range losses {
		total += l
	}
	return total / float64(m)
}

// stageWorker runs stage s for one batch: m forwards and m backwards,
// preferring backwards (early-backward) while respecting the stage's
// in-flight allowance. It records wall-clock busy/wait time and the stash
// high-water mark into p.metrics[s].
func (p *Pipeline) stageWorker(s, k, m int, micros []*data.Batch, fwdCh, bwdCh []chan microMsg, losses []float64) {
	stage := p.Stages[s]
	limit := k - s + p.Advance[s]
	if limit > m {
		limit = m
	}
	ctxs := make([]*nn.Context, m)
	fwdDone, bwdDone, inflight := 0, 0, 0
	met := StageMetrics{}
	defer func() { p.metrics[s] = met }()

	busy := func(f func()) {
		start := time.Now()
		f()
		met.Busy += time.Since(start)
	}

	doFwd := func(msg microMsg) {
		busy(func() {
			ctx := nn.NewContext()
			y := stage.Forward(ctx, msg.t, true)
			ctxs[msg.micro] = ctx
			fwdDone++
			inflight++
			met.Fwd++
			if inflight > met.PeakInFlight {
				met.PeakInFlight = inflight
			}
			if s < k-1 {
				fwdCh[s+1] <- microMsg{micro: msg.micro, t: y}
			} else {
				// Last stage: compute the loss and immediately start the
				// backward pass for this micro-batch.
				loss, dlogits := nn.CrossEntropy(y, micros[msg.micro].Targets)
				losses[msg.micro] = loss
				dx := stage.Backward(ctx, dlogits)
				bwdDone++
				inflight--
				met.Bwd++
				if s > 0 {
					bwdCh[s-1] <- microMsg{micro: msg.micro, t: dx}
				}
			}
		})
	}
	doBwd := func(msg microMsg) {
		busy(func() {
			dx := stage.Backward(ctxs[msg.micro], msg.t)
			bwdDone++
			inflight--
			met.Bwd++
			if s > 0 {
				bwdCh[s-1] <- microMsg{micro: msg.micro, t: dx}
			}
		})
	}
	recvBwd := func() microMsg {
		start := time.Now()
		msg := <-bwdCh[s]
		met.Wait += time.Since(start)
		return msg
	}

	for bwdDone < m {
		if s == k-1 {
			// The last stage fuses forward and backward.
			start := time.Now()
			msg := <-fwdCh[s]
			met.Wait += time.Since(start)
			doFwd(msg)
			continue
		}
		// Prefer a ready backward (early-backward schedule).
		select {
		case msg := <-bwdCh[s]:
			doBwd(msg)
			continue
		default:
		}
		if fwdDone < m && inflight < limit {
			// Free to run ahead: take whichever arrives first.
			start := time.Now()
			select {
			case msg := <-bwdCh[s]:
				met.Wait += time.Since(start)
				doBwd(msg)
			case msg := <-fwdCh[s]:
				met.Wait += time.Since(start)
				doFwd(msg)
			}
		} else {
			// Stash full or forwards exhausted: must wait for a backward.
			doBwd(recvBwd())
		}
	}
}
