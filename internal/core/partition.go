// Package core implements AvgPipe: the elastic-averaging-based framework
// for pipeline-parallel DNN training (§3), advance forward propagation
// (§4.2, Algorithm 1), and the profiling-based tuning of parallelism
// degrees (§5). It composes the substrate packages — nn/optim for real
// training, sched/pipesim for performance simulation — into the system
// the paper describes (Fig. 10: partitioner, profiler, predictor,
// scheduler, runtime).
package core

import (
	"fmt"

	"avgpipe/internal/cluster"
	"avgpipe/internal/nn"
	"avgpipe/internal/workload"
)

// Partition splits the workload's layers into k contiguous stages,
// minimizing the maximum per-stage cost — the PipeDream-style dynamic
// program the paper reuses for its partitioner component ("we employ the
// existing method used in PipeDream", §6). The per-layer cost is forward
// plus backward FLOPs; a stage boundary additionally pays the boundary
// activation transfer, weighted by commWeight seconds-per-byte-FLOPs
// equivalence (pass 0 to balance compute only).
func Partition(w *workload.Workload, k int, commWeight float64) []workload.Stage {
	n := len(w.Layers)
	if k <= 0 || k > n {
		panic(fmt.Sprintf("core: cannot partition %d layers into %d stages", n, k))
	}
	// prefix[i] = total compute cost of layers [0, i).
	prefix := make([]float64, n+1)
	for i, l := range w.Layers {
		prefix[i+1] = prefix[i] + l.FwdFLOPs + l.BwdFLOPs
	}
	cost := func(i, j int) float64 { // layers [i, j)
		c := prefix[j] - prefix[i]
		if j < n && commWeight > 0 {
			c += commWeight * float64(w.Layers[j-1].OutActBytes)
		}
		return c
	}
	const inf = 1e300
	// dp[s][i]: minimal max-stage cost splitting layers [0, i) into s+1
	// stages; cut[s][i]: position of the last cut achieving it.
	dp := make([][]float64, k)
	cut := make([][]int, k)
	for s := range dp {
		dp[s] = make([]float64, n+1)
		cut[s] = make([]int, n+1)
		for i := range dp[s] {
			dp[s][i] = inf
		}
	}
	for i := 1; i <= n; i++ {
		dp[0][i] = cost(0, i)
	}
	for s := 1; s < k; s++ {
		for i := s + 1; i <= n; i++ {
			for j := s; j < i; j++ {
				c := dp[s-1][j]
				if lc := cost(j, i); lc > c {
					c = lc
				}
				if c < dp[s][i] {
					dp[s][i] = c
					cut[s][i] = j
				}
			}
		}
	}
	if dp[k-1][n] >= inf {
		panic("core: partition DP failed")
	}
	bounds := make([]int, k+1)
	bounds[k] = n
	for s := k - 1; s > 0; s-- {
		bounds[s] = cut[s][bounds[s+1]]
	}
	stages := make([]workload.Stage, k)
	for s := 0; s < k; s++ {
		stages[s] = w.MakeStage(bounds[s], bounds[s+1]-1)
	}
	return stages
}

// PartitionHetero splits the workload's layers across a heterogeneous
// cluster: stage s always runs on GPU s, so the dynamic program minimizes
// the maximum *time* per stage — compute cost divided by that GPU's
// throughput — rather than raw FLOPs. On a homogeneous cluster it reduces
// to Partition. This extends the paper toward HetPipe-style deployments.
func PartitionHetero(w *workload.Workload, c *cluster.Cluster, commWeight float64) []workload.Stage {
	n := len(w.Layers)
	k := c.Size()
	if k <= 0 || k > n {
		panic(fmt.Sprintf("core: cannot partition %d layers into %d stages", n, k))
	}
	prefix := make([]float64, n+1)
	for i, l := range w.Layers {
		prefix[i+1] = prefix[i] + l.FwdFLOPs + l.BwdFLOPs
	}
	cost := func(i, j, s int) float64 { // layers [i, j) on GPU s
		t := (prefix[j] - prefix[i]) / c.GPUs[s].PeakFLOPs
		if j < n && commWeight > 0 {
			t += commWeight * float64(w.Layers[j-1].OutActBytes)
		}
		return t
	}
	const inf = 1e300
	dp := make([][]float64, k)
	cut := make([][]int, k)
	for s := range dp {
		dp[s] = make([]float64, n+1)
		cut[s] = make([]int, n+1)
		for i := range dp[s] {
			dp[s][i] = inf
		}
	}
	for i := 1; i <= n; i++ {
		dp[0][i] = cost(0, i, 0)
	}
	for s := 1; s < k; s++ {
		for i := s + 1; i <= n; i++ {
			for j := s; j < i; j++ {
				v := dp[s-1][j]
				if lc := cost(j, i, s); lc > v {
					v = lc
				}
				if v < dp[s][i] {
					dp[s][i] = v
					cut[s][i] = j
				}
			}
		}
	}
	if dp[k-1][n] >= inf {
		panic("core: heterogeneous partition DP failed")
	}
	bounds := make([]int, k+1)
	bounds[k] = n
	for s := k - 1; s > 0; s-- {
		bounds[s] = cut[s][bounds[s+1]]
	}
	stages := make([]workload.Stage, k)
	for s := 0; s < k; s++ {
		stages[s] = w.MakeStage(bounds[s], bounds[s+1]-1)
	}
	return stages
}

// PartitionModelCost splits a real model's layers into k contiguous
// stages with the cost-aware PipeDream DP (Partition), returning the
// same [lo, hi) bounds shape as PartitionModelLayers. Per-layer cost is
// estimated from parameter counts — the dominant FLOPs proxy for the
// dense layers the bundled tasks use (Linear/LSTM/attention run ≈
// 2·params FLOPs per sample) — with a small floor so parameter-free
// layers (activations, dropout, pooling) attach to the cheapest
// neighbouring stage instead of inflating the DP.
func PartitionModelCost(model *nn.Sequential, k int) [][2]int {
	layers := make([]workload.LayerCost, len(model.Layers))
	for i, l := range model.Layers {
		c := float64(nn.NumParams(l.Params()))
		if c < 1 {
			c = 1
		}
		layers[i] = workload.LayerCost{Name: fmt.Sprintf("layer%d", i), FwdFLOPs: c, BwdFLOPs: 2 * c}
	}
	w := &workload.Workload{Name: "model", Layers: layers, BatchSize: 1}
	stages := Partition(w, k, 0)
	out := make([][2]int, k)
	for s, st := range stages {
		out[s] = [2]int{st.First, st.Last + 1}
	}
	return out
}

// PartitionModelLayers splits `layers` layer indices [0,n) into k
// contiguous ranges with near-equal counts, used to partition the small
// real models whose per-layer costs are unknown. Returns the k boundary
// pairs [lo, hi).
func PartitionModelLayers(n, k int) [][2]int {
	if k <= 0 || k > n {
		panic(fmt.Sprintf("core: cannot partition %d layers into %d stages", n, k))
	}
	out := make([][2]int, k)
	lo := 0
	for s := 0; s < k; s++ {
		cnt := (n - lo) / (k - s)
		out[s] = [2]int{lo, lo + cnt}
		lo += cnt
	}
	return out
}
