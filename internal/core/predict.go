package core

import (
	"fmt"
	"math"
)

// GPUPrediction is the predicted per-GPU decomposition at a new setting.
type GPUPrediction struct {
	// TGpu, TCom, and TBub are the computation, GPU-blocking
	// communication, and bubble times of Eq. 1.
	TGpu, TCom, TBub float64
	// Comm is the predicted total communication time (𝕋^k)*.
	Comm float64
	// Mem is the predicted memory footprint F^k (Eq. 8).
	Mem int64
}

// Total returns T^k = T_gpu + T_com + T_bub (Eq. 1).
func (g GPUPrediction) Total() float64 { return g.TGpu + g.TCom + g.TBub }

// Prediction is the predicted performance and memory at parallelism
// degrees (M, N) = (mStar, nStar).
type Prediction struct {
	M, N int
	// BatchTime is the predicted per-batch training time,
	// max over GPUs of T^k.
	BatchTime float64
	PerGPU    []GPUPrediction
}

// PeakMem returns the largest predicted per-GPU footprint.
func (p *Prediction) PeakMem() int64 {
	var m int64
	for _, g := range p.PerGPU {
		if g.Mem > m {
			m = g.Mem
		}
	}
	return m
}

// TimePerDataBatch returns BatchTime divided by the pipeline count: with
// N parallel pipelines AvgPipe consumes N batches per iteration, so this
// is the throughput-relevant quantity compared across settings.
func (p *Prediction) TimePerDataBatch() float64 { return p.BatchTime / float64(p.N) }

// Predict extrapolates the profile to parallelism degrees (mStar, nStar),
// implementing §5.2.2 (Eqs. 2–7) and §5.2.3 (Eq. 8).
func Predict(p *Profile, mStar, nStar int) (*Prediction, error) {
	if mStar <= 0 || nStar <= 0 {
		return nil, fmt.Errorf("core: invalid degrees M=%d N=%d", mStar, nStar)
	}
	k := len(p.PerGPU)
	m, n := float64(p.M), float64(p.N)
	ms, ns := float64(mStar), float64(nStar)
	// r is the utilization scaling factor (m·n*)/(m*·n): micro-batches
	// get bigger by m/m*, and n* pipelines share the device.
	r := (m * ns) / (ms * n)

	out := &Prediction{M: mStar, N: nStar, PerGPU: make([]GPUPrediction, k)}
	tgpu := make([]float64, k)
	comm := make([]float64, k)
	for s, g := range p.PerGPU {
		// Eq. 2 with a piecewise-constant profile φ ≡ Util over TGpu:
		// ∫ max(r·φ − 1, 0) = TGpu · max(r·Util − 1, 0).
		excess := g.TGpu * math.Max(r*g.Util-1, 0)
		tgpu[s] = (1 / r) * (g.TGpu + excess)
		// (𝕋^k)* = (n*/n)·𝕋^k.
		comm[s] = ns / n * g.Comm
		// Eq. 4: the first micro-batch's transfer is exposed; each of the
		// remaining m*−1 overlaps with compute.
		tcom := comm[s]/ms + (ms-1)/ms*math.Max(comm[s]-tgpu[s], 0)
		// Eq. 8.
		mem := int64(ns/n*float64(g.FMod) + (m*ns)/(ms*n)*float64(g.FDat))
		out.PerGPU[s] = GPUPrediction{TGpu: tgpu[s], TCom: tcom, Comm: comm[s], Mem: mem}
	}
	// Eqs. 5–7: bubbles from waiting on upstream and downstream GPUs.
	up := make([]float64, k)
	for s := 1; s < k; s++ {
		up[s] = up[s-1] + (comm[s-1]+tgpu[s-1])/ms
	}
	down := make([]float64, k)
	for s := k - 2; s >= 0; s-- {
		down[s] = down[s+1] + (comm[s+1]+tgpu[s+1])/ms
	}
	for s := 0; s < k; s++ {
		out.PerGPU[s].TBub = up[s] + down[s]
		if t := out.PerGPU[s].Total(); t > out.BatchTime {
			out.BatchTime = t
		}
	}
	return out, nil
}
