package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"avgpipe/internal/fault"
	netx "avgpipe/internal/net"
	"avgpipe/internal/nn"
	"avgpipe/internal/obs"
	"avgpipe/internal/tensor"
	"avgpipe/internal/workload"
)

// formTestMeshes assembles an n-replica TCP full mesh over loopback
// inside one test process: every "replica" gets its own transport,
// listener, and mesh, exactly as n OS processes would.
func formTestMeshes(t *testing.T, n int) []*netx.Mesh {
	t.Helper()
	// Bind every listener first on a kernel-chosen port, then hand each
	// replica its peers' real addresses — no port guessing.
	trs := make([]*netx.TCP, n)
	lns := make([]netx.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		trs[i] = netx.NewTCP(obs.NewRegistry())
		ln, err := trs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	meshes := make([]*netx.Mesh, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		peers := make(map[int]string)
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = addrs[j]
			}
		}
		wg.Add(1)
		go func(i int, peers map[int]string) {
			defer wg.Done()
			meshes[i], errs[i] = netx.FormMeshOn(ctx, trs[i], lns[i], i, peers)
		}(i, peers)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("replica %d mesh: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, m := range meshes {
			m.Close()
		}
	})
	return meshes
}

// TestDistBitwiseDeterminism is the end-to-end determinism gate for the
// wire transport: the same seed trained single-process and as a 2-
// replica TCP-loopback job must produce bit-identical per-round local
// losses, because every process applies the same deterministic
// reduction to its own reference copy and the codec moves float32 bits
// exactly.
func TestDistBitwiseDeterminism(t *testing.T) {
	const (
		n      = 2
		rounds = 4
		seed   = 11
	)
	task := workload.TranslationTask()

	// Single-process reference run: per-pipeline losses from the step log.
	var log bytes.Buffer
	single, err := NewTrainer(TrainerConfig{
		Task: task, Pipelines: n, Micro: 2, StageCount: 2,
		Seed: seed, ClipNorm: 5, Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	single.SetStepLog(&log)
	for r := 0; r < rounds; r++ {
		single.Step()
	}
	single.Close()
	want := make([][]float64, 0, rounds) // [round][pipeline]
	dec := json.NewDecoder(&log)
	for dec.More() {
		var rec StepRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		if len(rec.Losses) != n {
			t.Fatalf("round %d: want %d per-pipeline losses, got %v", rec.Round, n, rec.Losses)
		}
		want = append(want, rec.Losses)
	}
	if len(want) != rounds {
		t.Fatalf("want %d logged rounds, got %d", rounds, len(want))
	}

	// The same job as two replicas over a TCP loopback mesh.
	meshes := formTestMeshes(t, n)
	got := make([][]float64, n) // [replica][round]
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tr, err := NewTrainer(TrainerConfig{
				Task: task, Pipelines: n, Micro: 2, StageCount: 2,
				Seed: seed, ClipNorm: 5, Obs: obs.NewRegistry(),
				Dist: &DistConfig{ReplicaID: p, Mesh: meshes[p]},
			})
			if err != nil {
				errs[p] = err
				return
			}
			defer tr.Close()
			for r := 0; r < rounds; r++ {
				loss, err := tr.StepContext(context.Background())
				if err != nil {
					errs[p] = fmt.Errorf("round %d: %w", r, err)
					return
				}
				got[p] = append(got[p], loss)
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("replica %d: %v", p, err)
		}
	}
	for p := 0; p < n; p++ {
		for r := 0; r < rounds; r++ {
			w, g := want[r][p], got[p][r]
			if math.Float64bits(w) != math.Float64bits(g) {
				t.Errorf("replica %d round %d: single-process loss %.17g (bits %016x), "+
					"2-process loss %.17g (bits %016x)",
					p, r, w, math.Float64bits(w), g, math.Float64bits(g))
			}
		}
	}
}

// TestDistConcurrentMembership exercises concurrent Submit, Detach, and
// Rejoin over a live TCP mesh under the race detector: three replicas
// submit rounds while one keeps crashing out and rejoining, with a
// round deadline absorbing the updates that go missing. The test's
// assertion is clean convergence — every averager closes every round
// and shuts down without a deadlock or a race.
func TestDistConcurrentMembership(t *testing.T) {
	const (
		n      = 3
		rounds = 12
	)
	task := workload.TranslationTask()
	meshes := formTestMeshes(t, n)

	avgs := make([]*Averager, n)
	params := make([][]*nn.Param, n)
	for p := 0; p < n; p++ {
		m := task.NewModel(3)
		params[p] = m.Params()
		avgs[p] = NewAveragerObs(n, m.Params(), obs.NewRegistry())
		avgs[p].SetFaults(mustInjector(t, fault.Config{Seed: 7, MsgDropProb: 0.2}))
		avgs[p].AttachMesh(meshes[p])
		avgs[p].SetRoundDeadline(30 * time.Millisecond)
	}

	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			a := avgs[p]
			for r := 0; r < rounds; r++ {
				// Replica 2 flaps its membership while the others submit.
				if p == 2 && r%4 == 1 {
					a.Detach(p)
				}
				if p == 2 && r%4 == 3 {
					a.Rejoin(p, params[p])
				}
				if a.Live(p) {
					// Nudge the weights so every round carries a real delta.
					params[p][0].W.AxpyInPlace(0.001, tensor.Ones(params[p][0].W.Shape()...))
					if err := a.SubmitContext(context.Background(), p, r, params[p]); err != nil {
						t.Errorf("replica %d round %d: %v", p, r, err)
						return
					}
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				err := a.WaitRound(ctx, r)
				cancel()
				if err != nil {
					t.Errorf("replica %d: round %d never closed: %v", p, r, err)
					return
				}
				a.Dilute(p, params[p])
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < n; p++ {
		avgs[p].Close()
	}
}

func mustInjector(t *testing.T, cfg fault.Config) *fault.Injector {
	t.Helper()
	in, err := fault.New(cfg, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return in
}
