package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"avgpipe/internal/autograd"
	"avgpipe/internal/cluster"
	"avgpipe/internal/comm"
	"avgpipe/internal/device"
	"avgpipe/internal/pipesim"
	"avgpipe/internal/sched"
	"avgpipe/internal/workload"
)

// crossValSchedules are the paper's three schedule families at one
// geometry, used to cross-validate runtime vs simulator vs analysis.
func crossValSchedules(k, m int) []*sched.Schedule {
	advance := make([]int, k)
	for s := range advance {
		advance[s] = k - 1 - s // legal taper
	}
	return []*sched.Schedule{
		sched.AFAB(k, m, 1),
		sched.OneFOneB(k, m, 1),
		sched.AFP(k, m, 1, advance),
	}
}

// simFixture builds a k-layer synthetic workload on a k-GPU cluster so
// the same sched.Schedule can run through pipesim.
func simFixture(k, batch int) (*workload.Workload, *cluster.Cluster, []workload.Stage) {
	layers := make([]workload.LayerCost, k)
	for i := range layers {
		layers[i] = workload.LayerCost{Name: "l", FwdFLOPs: 1e9, BwdFLOPs: 2e9,
			ParamBytes: 4 << 20, OutActBytes: 64 << 10, StashBytes: 128 << 10}
	}
	w := &workload.Workload{Name: "xval", Layers: layers, BatchSize: batch, OptimStateFactor: 1}
	gpu := device.GPU{Name: "t", PeakFLOPs: 1e12, MemBytes: 32 << 30}
	link := comm.Link{Name: "l", BytesPerSec: 1e9}
	c := cluster.New(1, k, gpu, link, link)
	stages := make([]workload.Stage, k)
	for s := range stages {
		stages[s] = w.MakeStage(s, s)
	}
	return w, c, stages
}

// TestCrossValidationRuntimeSimAnalysis runs the same schedule through
// the real runtime (core.Pipeline on real tensors) and the simulator
// (pipesim on the cost model), asserting that both report exactly the
// schedule's analytic per-stage op counts and stash high-water marks —
// the sim-vs-real contract the shared sched.Analysis defines.
func TestCrossValidationRuntimeSimAnalysis(t *testing.T) {
	task := workload.TranslationTask()
	const k, m = 2, 8
	gen := task.NewGen(31)
	batch := gen.NextBatch(16)
	w, c, stages := simFixture(k, m)

	for _, s := range crossValSchedules(k, m) {
		an, err := sched.Analyze(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		// Real runtime.
		pl, err := NewPipelineFromSchedule(task.NewModel(9), s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		pl.RunBatch(batch, m)
		for st, met := range pl.Metrics() {
			if met.Fwd != an.Fwd[st] || met.Bwd != an.Bwd[st] {
				t.Errorf("%s runtime stage %d: %dF %dB, analysis %dF %dB",
					s.Name, st, met.Fwd, met.Bwd, an.Fwd[st], an.Bwd[st])
			}
			if met.PeakInFlight != an.MaxInFlight[st] {
				t.Errorf("%s runtime stage %d: peak in-flight %d, analysis %d",
					s.Name, st, met.PeakInFlight, an.MaxInFlight[st])
			}
		}
		// Simulator (one pipeline, one batch: same plan verbatim).
		r, err := pipesim.Run(pipesim.Config{
			Workload: w, Cluster: c, Stages: stages,
			Micro: m, Pipelines: 1, Schedule: s, Batches: 1,
		})
		if err != nil {
			t.Fatalf("%s sim: %v", s.Name, err)
		}
		for st, g := range r.PerGPU {
			if g.Fwd != an.Fwd[st] || g.Bwd != an.Bwd[st] {
				t.Errorf("%s sim stage %d: %dF %dB, analysis %dF %dB",
					s.Name, st, g.Fwd, g.Bwd, an.Fwd[st], an.Bwd[st])
			}
			if g.PeakInFlight != an.MaxInFlight[st] {
				t.Errorf("%s sim stage %d: peak in-flight %d, analysis %d",
					s.Name, st, g.PeakInFlight, an.MaxInFlight[st])
			}
		}
	}
}

// TestCrossValidationSplitBackward extends the three-way contract to
// split schedules: for each schedule family, the 2BP-split variant must
// agree across sched.Analyze, pipesim, and the compiled runtime on
// forward, grad-input, and grad-weight op counts and on the stash
// high-water mark (which a split backward holds until BwdW).
func TestCrossValidationSplitBackward(t *testing.T) {
	task := workload.TranslationTask()
	const k, m = 2, 8
	batch := task.NewGen(31).NextBatch(16)
	w, c, stages := simFixture(k, m)

	advance := make([]int, k)
	for s := range advance {
		advance[s] = k - 1 - s
	}
	plans := []sched.Plan{sched.AFABPlan(), sched.OneFOneBPlan(), sched.AFPPlan(advance)}
	for _, plan := range plans {
		split := sched.SplitBackward(plan.Make(k, m))
		an, err := sched.Analyze(split)
		if err != nil {
			t.Fatalf("%s split: %v", split.Name, err)
		}
		for st := 0; st < k; st++ {
			if an.Bwd[st] != m || an.BwdW[st] != m {
				t.Fatalf("%s split analysis stage %d: %dBi %dBw, want %d each",
					split.Name, st, an.Bwd[st], an.BwdW[st], m)
			}
		}

		// Compiled runtime: the pipeline splits the plan itself, so its
		// effective schedule must match the explicit split.
		pl, err := NewPipelineWith(task.NewModel(9), PipelineConfig{
			Stages: k, Plan: plan, Compiled: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", plan.Name, err)
		}
		pl.RunBatch(batch, m)
		for st, met := range pl.Metrics() {
			if met.Fwd != an.Fwd[st] || met.Bwd != an.Bwd[st] || met.BwdW != an.BwdW[st] {
				t.Errorf("%s runtime stage %d: %dF %dBi %dBw, analysis %dF %dBi %dBw",
					split.Name, st, met.Fwd, met.Bwd, met.BwdW, an.Fwd[st], an.Bwd[st], an.BwdW[st])
			}
			if met.PeakInFlight != an.MaxInFlight[st] {
				t.Errorf("%s runtime stage %d: peak in-flight %d, analysis %d",
					split.Name, st, met.PeakInFlight, an.MaxInFlight[st])
			}
		}

		// Simulator on the explicit split schedule.
		r, err := pipesim.Run(pipesim.Config{
			Workload: w, Cluster: c, Stages: stages,
			Micro: m, Pipelines: 1, Schedule: split, Batches: 1,
		})
		if err != nil {
			t.Fatalf("%s sim: %v", split.Name, err)
		}
		for st, g := range r.PerGPU {
			if g.Fwd != an.Fwd[st] || g.Bwd != an.Bwd[st] || g.BwdW != an.BwdW[st] {
				t.Errorf("%s sim stage %d: %dF %dBi %dBw, analysis %dF %dBi %dBw",
					split.Name, st, g.Fwd, g.Bwd, g.BwdW, an.Fwd[st], an.Bwd[st], an.BwdW[st])
			}
			if g.PeakInFlight != an.MaxInFlight[st] {
				t.Errorf("%s sim stage %d: peak in-flight %d, analysis %d",
					split.Name, st, g.PeakInFlight, an.MaxInFlight[st])
			}
		}
	}
}

// TestScheduleInterpreterMatchesSequential proves AFAB, 1F1B, and AFP
// all train the real task end-to-end through NewPipelineFromSchedule:
// each schedule's loss and gradients equal plain sequential training.
func TestScheduleInterpreterMatchesSequential(t *testing.T) {
	task := workload.TranslationTask()
	gen := task.NewGen(11)
	batch := gen.NextBatch(8)
	seq := task.NewModel(7)
	seqLoss := workload.TrainStep(seq, batch)
	sp := seq.Params()

	const k, m = 2, 4
	for _, s := range crossValSchedules(k, m) {
		pip := task.NewModel(7)
		pl, err := NewPipelineFromSchedule(pip, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		pipLoss := pl.RunBatch(batch, m)
		if math.Abs(seqLoss-pipLoss) > 1e-4 {
			t.Fatalf("%s: loss %v vs sequential %v", s.Name, pipLoss, seqLoss)
		}
		pp := pip.Params()
		for i := range sp {
			if e := autograd.MaxRelError(pp[i].G, sp[i].G); e > 1e-2 {
				t.Fatalf("%s: param %s grad rel error %v", s.Name, sp[i].Name, e)
			}
		}
	}
}

func TestNewPipelineFromScheduleRejectsIllegal(t *testing.T) {
	task := workload.TranslationTask()
	// Cross-stage warmup inversion: locally valid per GPU, deadlocks
	// across stages.
	dead := &sched.Schedule{Name: "inverted", PerGPU: [][]sched.Op{
		{{Kind: sched.Fwd, Micro: 0}, {Kind: sched.Bwd, Micro: 0}, {Kind: sched.Fwd, Micro: 1}, {Kind: sched.Bwd, Micro: 1}},
		{{Kind: sched.Fwd, Micro: 0}, {Kind: sched.Fwd, Micro: 1}, {Kind: sched.Bwd, Micro: 0}, {Kind: sched.Bwd, Micro: 1}},
	}}
	if _, err := NewPipelineFromSchedule(task.NewModel(1), dead); err == nil {
		t.Fatal("interpreter accepted a deadlocking schedule")
	}
	// Micro indices not starting at 0 cannot address a batch slice.
	offset := &sched.Schedule{Name: "offset", PerGPU: [][]sched.Op{
		{{Kind: sched.Fwd, Micro: 1}, {Kind: sched.Bwd, Micro: 1}},
	}}
	if _, err := NewPipelineFromSchedule(task.NewModel(1), offset); err == nil {
		t.Fatal("interpreter accepted non-contiguous micro indices")
	}
}

// TestPipelineTraceMatchesSchedule checks the Trace satellite: with
// Trace set, every executed op is recorded in schedule order and the
// Chrome-trace export shares pipesim's event shape.
func TestPipelineTraceMatchesSchedule(t *testing.T) {
	task := workload.TranslationTask()
	gen := task.NewGen(5)
	batch := gen.NextBatch(8)
	const k, m = 2, 4
	pl, err := NewPipelineWith(task.NewModel(2), PipelineConfig{Stages: k, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	pl.RunBatch(batch, m)
	schedule, _ := pl.ScheduleFor(m)
	for s, met := range pl.Metrics() {
		if len(met.Ops) != len(schedule.PerGPU[s]) {
			t.Fatalf("stage %d traced %d ops, schedule has %d", s, len(met.Ops), len(schedule.PerGPU[s]))
		}
		for i, ev := range met.Ops {
			op := schedule.PerGPU[s][i]
			if ev.Index != i || ev.Kind != op.Kind || ev.Micro != op.Micro {
				t.Fatalf("stage %d op %d: traced %v%d, schedule %s", s, i, ev.Kind, ev.Micro+1, op)
			}
			if ev.Dur <= 0 {
				t.Fatalf("stage %d op %d: no duration recorded", s, i)
			}
		}
	}
	var buf bytes.Buffer
	if err := pl.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []pipesim.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	// One process row, k thread rows, and per stage 2m op spans plus 2m
	// flow points (the arrow chain linking each micro across stages).
	if want := 1 + k + 2*(k*2*m); len(doc.TraceEvents) != want {
		t.Fatalf("trace has %d events, want %d", len(doc.TraceEvents), want)
	}
	// Untraced runs record no per-op events.
	pl2 := NewPipeline(task.NewModel(2), k, nil)
	pl2.RunBatch(batch, m)
	if n := len(pl2.Metrics()[0].Ops); n != 0 {
		t.Fatalf("untraced run recorded %d op events", n)
	}
}

// TestCostAwarePartitionThroughTrainer checks the partition satellite:
// the cost-aware mode produces a valid, cost-balanced split and trains
// through the Trainer config surface.
func TestCostAwarePartitionThroughTrainer(t *testing.T) {
	task := workload.TranslationTask()
	model := task.NewModel(3)
	k := 2
	bounds := PartitionModelCost(model, k)
	if bounds[0][0] != 0 || bounds[k-1][1] != len(model.Layers) {
		t.Fatalf("cost bounds %v do not span the model", bounds)
	}
	for s := 1; s < k; s++ {
		if bounds[s][0] != bounds[s-1][1] {
			t.Fatalf("cost bounds %v not contiguous", bounds)
		}
	}
	// The DP must balance parameter mass at least as well as the
	// equal-layer split does.
	mass := func(b [2]int) (n int) {
		for _, l := range model.Layers[b[0]:b[1]] {
			for _, p := range l.Params() {
				n += p.NumElements()
			}
		}
		return
	}
	worst := func(bs [][2]int) (w int) {
		for _, b := range bs {
			if m := mass(b); m > w {
				w = m
			}
		}
		return
	}
	if c, e := worst(bounds), worst(PartitionModelLayers(len(model.Layers), k)); c > e {
		t.Fatalf("cost-aware bottleneck %d params > equal-layer %d", c, e)
	}

	tr, err := NewTrainer(TrainerConfig{
		Task: task, Pipelines: 2, Micro: 2, StageCount: 2, Seed: 3,
		Partition: PartitionCostAware, Plan: sched.AFABPlan(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	loss0 := tr.Step()
	var loss1 float64
	for i := 0; i < 15; i++ {
		loss1 = tr.Step()
	}
	if !(loss1 < loss0) {
		t.Fatalf("cost-partitioned AFAB trainer not learning: %v -> %v", loss0, loss1)
	}
}

// TestTrainerPlanThreading checks that TrainerConfig.Plan reaches the
// replica pipelines: an AFAB-planned trainer's stages show AFAB
// occupancy (every stage stashes all M micro-batches).
func TestTrainerPlanThreading(t *testing.T) {
	task := workload.ClassificationTask()
	const m = 4
	tr, err := NewTrainer(TrainerConfig{
		Task: task, Pipelines: 1, Micro: m, StageCount: 2, Seed: 4,
		Plan: sched.AFABPlan(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Step()
	for s, met := range tr.Pipelines()[0].Metrics() {
		if met.PeakInFlight != m {
			t.Fatalf("AFAB stage %d: peak in-flight %d, want %d", s, met.PeakInFlight, m)
		}
	}
}
