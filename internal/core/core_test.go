package core

import (
	"math"
	"testing"

	"avgpipe/internal/autograd"
	"avgpipe/internal/cluster"
	"avgpipe/internal/comm"
	"avgpipe/internal/device"
	"avgpipe/internal/nn"
	"avgpipe/internal/optim"
	"avgpipe/internal/tensor"
	"avgpipe/internal/workload"
)

// --- partitioner ---

func TestPartitionCoversAllLayersContiguously(t *testing.T) {
	w := workload.GNMT()
	for _, k := range []int{2, 3, 6} {
		stages := Partition(w, k, 0)
		if len(stages) != k {
			t.Fatalf("K=%d: got %d stages", k, len(stages))
		}
		if stages[0].First != 0 || stages[k-1].Last != len(w.Layers)-1 {
			t.Fatalf("K=%d: stages do not span all layers", k)
		}
		for s := 1; s < k; s++ {
			if stages[s].First != stages[s-1].Last+1 {
				t.Fatalf("K=%d: gap between stage %d and %d", k, s-1, s)
			}
		}
	}
}

func TestPartitionBalances(t *testing.T) {
	w := workload.BERT()
	k := 6
	stages := Partition(w, k, 0)
	var maxC, total float64
	for _, s := range stages {
		c := s.FwdFLOPs + s.BwdFLOPs
		total += c
		if c > maxC {
			maxC = c
		}
	}
	// The bottleneck stage must be within 60% of the ideal equal split
	// (layer granularity limits perfection).
	if ideal := total / float64(k); maxC > 1.6*ideal {
		t.Fatalf("bottleneck %v vs ideal %v: unbalanced", maxC, ideal)
	}
}

func TestPartitionIsOptimalOnSmallCase(t *testing.T) {
	// Layers with costs 1,9,1,1 into 2 stages: optimal max is 10 ([1,9|1,1]).
	w := &workload.Workload{Name: "tiny", BatchSize: 4, Layers: []workload.LayerCost{
		{Name: "a", FwdFLOPs: 0.5, BwdFLOPs: 0.5, ParamBytes: 1, OutActBytes: 1, StashBytes: 1},
		{Name: "b", FwdFLOPs: 4.5, BwdFLOPs: 4.5, ParamBytes: 1, OutActBytes: 1, StashBytes: 1},
		{Name: "c", FwdFLOPs: 0.5, BwdFLOPs: 0.5, ParamBytes: 1, OutActBytes: 1, StashBytes: 1},
		{Name: "d", FwdFLOPs: 0.5, BwdFLOPs: 0.5, ParamBytes: 1, OutActBytes: 1, StashBytes: 1},
	}}
	stages := Partition(w, 2, 0)
	if stages[0].Last != 1 {
		t.Fatalf("cut after layer %d, want 1", stages[0].Last)
	}
}

func TestPartitionModelLayers(t *testing.T) {
	b := PartitionModelLayers(5, 2)
	if b[0] != [2]int{0, 2} || b[1] != [2]int{2, 5} {
		t.Fatalf("bounds %v", b)
	}
	b = PartitionModelLayers(4, 4)
	for s, r := range b {
		if r[1]-r[0] != 1 || r[0] != s {
			t.Fatalf("bounds %v", b)
		}
	}
}

// --- elastic averager ---

func paramsOf(vals ...float32) []*nn.Param {
	ps := make([]*nn.Param, len(vals))
	for i, v := range vals {
		ps[i] = nn.NewParam("p", tensor.Full(v, 2))
	}
	return ps
}

func TestAveragerSingleRound(t *testing.T) {
	init := paramsOf(1)
	a := NewAverager(2, init)
	defer a.Close()
	// Two replicas start at 1, take local updates +1 and +3.
	r0, r1 := paramsOf(2), paramsOf(4)
	a.AfterStep(0, 0, r0)
	a.AfterStep(1, 0, r1)
	a.Drain()
	// Reference: 1 + mean(1, 3) = 3.
	ref := a.Reference()
	if got := ref[0].At(0); got != 3 {
		t.Fatalf("reference = %v, want 3", got)
	}
	// Replica 0 was diluted with the reference value *at send time*
	// (async: before or after the round applied); with α=0.5 it lies
	// between (1-α)·2+α·1 = 1.5 and (1-α)·2+α·3 = 2.5.
	if got := r0[0].W.At(0); got < 1.5-1e-6 || got > 2.5+1e-6 {
		t.Fatalf("replica 0 dilution out of range: %v", got)
	}
}

func TestAveragerAlphaDefault(t *testing.T) {
	a := NewAverager(4, paramsOf(0))
	defer a.Close()
	if a.Alpha != 0.25 {
		t.Fatalf("alpha = %v, want 1/N", a.Alpha)
	}
}

func TestAveragerPullPreventsDivergence(t *testing.T) {
	// Two replicas repeatedly pushed apart by opposite updates must stay
	// bounded thanks to the elastic pull (§3.1, Fig. 5).
	init := paramsOf(0)
	a := NewAverager(2, init)
	defer a.Close()
	r0, r1 := paramsOf(0), paramsOf(0)
	for round := 0; round < 200; round++ {
		r0[0].W.AddInPlace(tensor.Full(1, 2))  // diverging update +1
		r1[0].W.AddInPlace(tensor.Full(-1, 2)) // diverging update −1
		a.AfterStep(0, round, r0)
		a.AfterStep(1, round, r1)
		a.Drain()
	}
	gap := float64(r0[0].W.At(0) - r1[0].W.At(0))
	// Without the pull the gap would be 400; with α=1/2 it stays O(1/α).
	if gap > 10 {
		t.Fatalf("replicas diverged: gap %v", gap)
	}
}

func TestAveragerConservation(t *testing.T) {
	// When all replicas receive identical updates, the reference must
	// track them exactly and dilution must be a no-op in the limit.
	init := paramsOf(5)
	a := NewAverager(3, init)
	defer a.Close()
	reps := [][]*nn.Param{paramsOf(5), paramsOf(5), paramsOf(5)}
	for round := 0; round < 10; round++ {
		for p, r := range reps {
			r[0].W.AddInPlace(tensor.Full(1, 2))
			a.AfterStep(p, round, r)
		}
		a.Drain()
	}
	ref := a.Reference()
	if got := float64(ref[0].At(0)); math.Abs(got-15) > 1e-3 {
		t.Fatalf("reference %v, want 15", got)
	}
	// Replicas track the reference with a bounded steady-state lag (the
	// dilution sees the reference as of the previous round), but all
	// replicas must agree since their updates are identical.
	for p, r := range reps {
		got := float64(r[0].W.At(0))
		if math.Abs(got-15) > 2 {
			t.Fatalf("replica %d at %v, want within 2 of 15", p, got)
		}
		if other := float64(reps[0][0].W.At(0)); math.Abs(got-other) > 1e-4 {
			t.Fatalf("replicas diverged: %v vs %v", got, other)
		}
	}
}

func TestAveragerSendsNeverBlock(t *testing.T) {
	// One pipeline can run many rounds ahead without any other pipeline
	// reporting — the queues are asynchronous (§3.2 step ❸).
	a := NewAverager(2, paramsOf(0))
	defer a.Close()
	r0 := paramsOf(0)
	for round := 0; round < 50; round++ {
		r0[0].W.AddInPlace(tensor.Full(1, 2))
		a.AfterStep(0, round, r0) // must not block
	}
	a.Drain()
	if a.PendingRounds() != 50 {
		t.Fatalf("expected 50 straggler rounds, got %d", a.PendingRounds())
	}
}

func TestAveragerSetReference(t *testing.T) {
	a := NewAverager(2, paramsOf(0))
	defer a.Close()
	restored := paramsOf(7)
	a.SetReference(restored)
	ref := a.Reference()
	if ref[0].At(0) != 7 {
		t.Fatalf("reference = %v, want 7", ref[0].At(0))
	}
	// The next round's deltas must be measured from the restored point:
	// a replica stepping from 7 to 8 contributes delta 1, not 8.
	reps := [][]*nn.Param{paramsOf(8), paramsOf(8)}
	for p, r := range reps {
		a.Submit(p, 0, r)
	}
	a.Drain()
	if got := a.Reference()[0].At(0); got != 8 {
		t.Fatalf("reference after round = %v, want 8", got)
	}
}

// --- pipelined runtime ---

func TestPipelineMatchesSequentialExecution(t *testing.T) {
	// The pipelined runtime (K stage workers, M micro-batches, channel
	// messaging) must compute exactly the gradients of plain sequential
	// training on the same batch.
	task := workload.TranslationTask()
	seq := task.NewModel(7)
	pip := task.NewModel(7)
	gen := task.NewGen(11)
	batch := gen.NextBatch(8)

	seqLoss := workload.TrainStep(seq, batch)

	pl := NewPipeline(pip, 2, nil)
	pipLoss := pl.RunBatch(batch, 4)

	if math.Abs(seqLoss-pipLoss) > 1e-4 {
		t.Fatalf("loss mismatch: sequential %v vs pipelined %v", seqLoss, pipLoss)
	}
	sp, pp := seq.Params(), pip.Params()
	for i := range sp {
		if e := autograd.MaxRelError(pp[i].G, sp[i].G); e > 1e-2 {
			t.Fatalf("param %s grad rel error %v", sp[i].Name, e)
		}
	}
}

func TestPipelineAdvanceDoesNotChangeResults(t *testing.T) {
	// Advance forward propagation is a scheduling change only: gradients
	// must be identical regardless of the advance allowance.
	task := workload.TranslationTask()
	gen := task.NewGen(13)
	batch := gen.NextBatch(8)
	grads := func(advance []int) []*tensor.Tensor {
		m := task.NewModel(3)
		pl := NewPipeline(m, 2, advance)
		pl.RunBatch(batch, 4)
		out := make([]*tensor.Tensor, len(pl.Params()))
		for i, p := range pl.Params() {
			out[i] = p.G.Clone()
		}
		return out
	}
	a := grads(nil)
	b := grads([]int{2, 0})
	for i := range a {
		if e := autograd.MaxRelError(a[i], b[i]); e > 1e-3 {
			t.Fatalf("param %d: advance changed gradients (rel err %v)", i, e)
		}
	}
}

func TestPipelineMetricsAndStashBound(t *testing.T) {
	// The runtime must respect the schedule's activation-stash bound:
	// stage s may hold at most K−s+Advance[s] live contexts.
	task := workload.TranslationTask()
	gen := task.NewGen(21)
	batch := gen.NextBatch(16)
	const k, m = 2, 8
	for _, advance := range [][]int{nil, {3, 0}} {
		pl := NewPipeline(task.NewModel(4), k, advance)
		pl.RunBatch(batch, m)
		mets := pl.Metrics()
		if len(mets) != k {
			t.Fatalf("metrics for %d stages", len(mets))
		}
		for s, met := range mets {
			limit := k - s
			if advance != nil {
				limit += advance[s]
			}
			if limit > m {
				limit = m
			}
			if met.PeakInFlight > limit {
				t.Fatalf("advance %v stage %d: %d contexts in flight, limit %d",
					advance, s, met.PeakInFlight, limit)
			}
			if met.Fwd != m || met.Bwd != m {
				t.Fatalf("stage %d: %d fwd %d bwd, want %d each", s, met.Fwd, met.Bwd, m)
			}
			if met.Busy <= 0 {
				t.Fatalf("stage %d: no busy time recorded", s)
			}
		}
	}
	// With a larger allowance the first stage must actually run ahead
	// further than plain 1F1B's bound.
	pl := NewPipeline(task.NewModel(4), k, []int{6, 0})
	pl.RunBatch(batch, m)
	if got := pl.Metrics()[0].PeakInFlight; got <= k {
		t.Logf("note: advance allowance unused this run (peak %d); timing-dependent", got)
	}
}

func TestPipelineStageCount(t *testing.T) {
	task := workload.ClassificationTask()
	m := task.NewModel(1)
	pl := NewPipeline(m, 3, nil)
	if len(pl.Stages) != 3 {
		t.Fatalf("stages %d", len(pl.Stages))
	}
	n := 0
	for _, s := range pl.Stages {
		n += len(s.Layers)
	}
	if n != len(m.Layers) {
		t.Fatal("stages must cover all layers")
	}
}

// --- trainer (end-to-end elastic averaging) ---

func TestTrainerConvergesOnTranslation(t *testing.T) {
	task := workload.TranslationTask()
	tr, err := NewTrainer(TrainerConfig{
		Task: task, Pipelines: 2, Micro: 4, StageCount: 2, Seed: 1, ClipNorm: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	loss0, _ := tr.Eval()
	for i := 0; i < 60; i++ {
		tr.Step()
	}
	loss1, acc1 := tr.Eval()
	if loss1 >= loss0*0.9 {
		t.Fatalf("elastic trainer not learning: %v -> %v", loss0, loss1)
	}
	if acc1 <= 0.15 {
		t.Fatalf("accuracy stuck at %v", acc1)
	}
}

func TestTrainerReplicasStayCoupled(t *testing.T) {
	task := workload.ClassificationTask()
	tr, err := NewTrainer(TrainerConfig{
		Task: task, Pipelines: 3, Micro: 2, StageCount: 2, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 10; i++ {
		tr.Step()
	}
	tr.Averager().Drain()
	ref := tr.Averager().Reference()
	// Each replica's distance to the reference stays far below the
	// reference norm (the elastic pull keeps them in a neighbourhood).
	var refNorm float64
	for _, r := range ref {
		refNorm += r.L2Norm() * r.L2Norm()
	}
	refNorm = math.Sqrt(refNorm)
	for p, pl := range tr.Pipelines() {
		var d float64
		for i, pr := range pl.Params() {
			diff := tensor.Sub(pr.W, ref[i])
			d += diff.L2Norm() * diff.L2Norm()
		}
		d = math.Sqrt(d)
		if d > 0.5*refNorm {
			t.Fatalf("replica %d drifted: %v vs ref norm %v", p, d, refNorm)
		}
	}
}

// --- stale trainer ---

func TestStaleTrainerZeroDelayMatchesSync(t *testing.T) {
	task := workload.ClassificationTask()
	st := NewStaleTrainer(task, 5, 0)
	// A reference synchronous run with the same seeds.
	m := task.NewModel(5)
	gen := task.NewGen(105)
	opt := optim.NewAdam(task.LR)
	for i := 0; i < 5; i++ {
		staleLoss := st.Step()
		b := gen.NextBatch(task.BatchSize)
		syncLoss := workload.TrainStep(m, b)
		optim.ClipGradNorm(m.Params(), 5)
		opt.Step(m.Params())
		nn.ZeroGrads(m.Params())
		if math.Abs(staleLoss-syncLoss) > 1e-5 {
			t.Fatalf("step %d: delay-0 stale %v != sync %v", i, staleLoss, syncLoss)
		}
	}
}

func TestStaleTrainerDelayHurtsEarlyProgress(t *testing.T) {
	task := workload.LangModelTask()
	steps := 120
	run := func(delay int) float64 {
		st := NewStaleTrainer(task, 3, delay)
		for i := 0; i < steps; i++ {
			st.Step()
		}
		loss, _ := st.Eval()
		return loss
	}
	fresh := run(0)
	stale := run(6) // PipeDream-like staleness on a deep pipeline
	if stale <= fresh {
		t.Fatalf("staleness should slow SGD convergence: fresh %v vs stale %v", fresh, stale)
	}
}

// --- Algorithm 1 (advance decision) ---

func afpFixture(actKB int64, bw float64) AFPConfig {
	ls := make([]workload.LayerCost, 4)
	for i := range ls {
		ls[i] = workload.LayerCost{Name: "l", FwdFLOPs: 1e9, BwdFLOPs: 2e9,
			ParamBytes: 4 << 20, OutActBytes: actKB << 10, StashBytes: 2 * actKB << 10}
	}
	w := &workload.Workload{Name: "syn", Layers: ls, BatchSize: 8, SatSamples: 0,
		OptimStateFactor: 1, MaxPipelines: 4}
	gpu := device.GPU{Name: "t", PeakFLOPs: 1e12, MemBytes: 32 << 30}
	link := comm.Link{Name: "l", BytesPerSec: bw}
	c := cluster.New(1, 4, gpu, link, link)
	stages := make([]workload.Stage, 4)
	for s := range stages {
		stages[s] = w.MakeStage(s, s)
	}
	return AFPConfig{Workload: w, Cluster: c, Stages: stages, Micro: 8, Pipes: 1}
}

func TestDecideAdvanceStaysAtZeroWithFastLinks(t *testing.T) {
	// §4.2: minimal communication overhead → advance_num stays 0 (1F1B).
	cfg := afpFixture(64, 1e15)
	adv, _, err := DecideAdvance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s, a := range adv {
		if a != 0 {
			t.Fatalf("stage %d advance %d, want 0 with fast links", s, a)
		}
	}
}

func TestDecideAdvanceImprovesOnSlowLinks(t *testing.T) {
	cfg := afpFixture(192, 125e6)
	adv, best, err := DecideAdvance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, a := range adv {
		sum += a
	}
	if sum == 0 {
		t.Fatal("expected nonzero advance with slow links")
	}
	base, err := cfg.simulate(make([]int, 4))
	if err != nil {
		t.Fatal(err)
	}
	if best.Makespan >= base.Makespan {
		t.Fatalf("advance did not improve: %v vs 1F1B %v", best.Makespan, base.Makespan)
	}
}

func TestDecideAdvanceRespectsMemoryLimit(t *testing.T) {
	cfg := afpFixture(192, 125e6)
	// First find the unconstrained choice and its peak memory.
	_, free, err := DecideAdvance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := cfg.simulate(make([]int, 4))
	if err != nil {
		t.Fatal(err)
	}
	if free.PeakMemory() <= base.PeakMemory() {
		t.Skip("advance added no memory; nothing to constrain")
	}
	// Constrain to just above 1F1B's peak: the decision must not exceed it.
	cfg.MemLimit = base.PeakMemory()
	_, constrained, err := DecideAdvance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s, g := range constrained.PerGPU {
		if g.Memory.Total() > cfg.MemLimit {
			t.Fatalf("stage %d exceeds memory limit", s)
		}
	}
}
