package cluster

import (
	"fmt"
	"testing"
)

func TestDefaultGroupSize(t *testing.T) {
	for n, want := range map[int]int{0: 1, 1: 1, 2: 2, 4: 2, 5: 3, 8: 3, 9: 3, 10: 4, 16: 4, 17: 5} {
		if got := DefaultGroupSize(n); got != want {
			t.Errorf("DefaultGroupSize(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestGroupAddressing(t *testing.T) {
	// The worked example: n=8, g=3 → groups [0,1,2] [3,4,5] [6,7].
	for r, wantGroup := range []int{0, 0, 0, 1, 1, 1, 2, 2} {
		if got := GroupOf(r, 3); got != wantGroup {
			t.Errorf("GroupOf(%d, 3) = %d, want %d", r, got, wantGroup)
		}
	}
	for r, wantLeader := range []int{0, 0, 0, 3, 3, 3, 6, 6} {
		if got := LeaderOf(r, 3); got != wantLeader {
			t.Errorf("LeaderOf(%d, 3) = %d, want %d", r, got, wantLeader)
		}
		if got := IsLeader(r, 3); got != (r == wantLeader) {
			t.Errorf("IsLeader(%d, 3) = %v, want %v", r, got, r == wantLeader)
		}
	}
	if got := fmt.Sprint(Leaders(8, 3)); got != "[0 3 6]" {
		t.Errorf("Leaders(8, 3) = %v", got)
	}
	if got := fmt.Sprint(Members(3, 8, 3)); got != "[4 5]" {
		t.Errorf("Members(3, 8, 3) = %v", got)
	}
	if got := fmt.Sprint(Members(6, 8, 3)); got != "[7]" { // partial last group
		t.Errorf("Members(6, 8, 3) = %v", got)
	}
}

// TestGroupPartition checks the structural invariants for every (n, g):
// leaders plus their members partition [0, n) with no overlap, every
// replica's derived leader is a leader, and roles are consistent across
// the whole job — the property that lets each process derive the same
// hierarchy without a coordinator.
func TestGroupPartition(t *testing.T) {
	for n := 1; n <= 20; n++ {
		for g := 1; g <= n; g++ {
			seen := make([]int, n)
			for _, l := range Leaders(n, g) {
				if !IsLeader(l, g) || LeaderOf(l, g) != l {
					t.Fatalf("n=%d g=%d: leader %d is not its own leader", n, g, l)
				}
				seen[l]++
				for _, m := range Members(l, n, g) {
					if IsLeader(m, g) || LeaderOf(m, g) != l || GroupOf(m, g) != GroupOf(l, g) {
						t.Fatalf("n=%d g=%d: member %d of leader %d misaddressed", n, g, m, l)
					}
					seen[m]++
				}
			}
			for r, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d g=%d: replica %d covered %d times, want exactly once", n, g, r, c)
				}
			}
		}
	}
}
