// Package cluster describes multi-node GPU topologies: which GPUs exist,
// how they are grouped into nodes, and which link connects each adjacent
// pair in a pipeline. The default profile reproduces the paper's testbed:
// three nodes, two V100s each, 1 Gbps Ethernet between nodes.
package cluster

import (
	"fmt"

	"avgpipe/internal/comm"
	"avgpipe/internal/device"
)

// Cluster is an ordered set of GPUs with the links between pipeline
// neighbours. GPU i and GPU i+1 are connected by Links[i].
type Cluster struct {
	GPUs  []device.GPU
	Links []comm.Link
	// GPUsPerNode records the grouping used to build Links; retained for
	// reporting.
	GPUsPerNode int
	// AllReduceLink is the bottleneck link for data-parallel gradient
	// synchronization (the slowest link in the ring).
	AllReduceLink comm.Link
}

// New builds a homogeneous cluster of nodes*gpusPerNode GPUs. Adjacent
// GPUs within a node are joined by intra; pairs that straddle a node
// boundary are joined by inter. It panics on a bad topology or link;
// NewChecked returns the error instead.
func New(nodes, gpusPerNode int, gpu device.GPU, intra, inter comm.Link) *Cluster {
	c, err := NewChecked(nodes, gpusPerNode, gpu, intra, inter)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// NewChecked is New with the topology and link validation surfaced as an
// error, so callers assembling clusters from external configuration can
// degrade gracefully instead of crashing.
func NewChecked(nodes, gpusPerNode int, gpu device.GPU, intra, inter comm.Link) (*Cluster, error) {
	if nodes <= 0 || gpusPerNode <= 0 {
		return nil, fmt.Errorf("cluster: invalid topology %dx%d", nodes, gpusPerNode)
	}
	if err := intra.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: intra-node link: %w", err)
	}
	if err := inter.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: inter-node link: %w", err)
	}
	n := nodes * gpusPerNode
	c := &Cluster{
		GPUs:          make([]device.GPU, n),
		Links:         make([]comm.Link, n-1),
		GPUsPerNode:   gpusPerNode,
		AllReduceLink: inter,
	}
	for i := range c.GPUs {
		g := gpu
		g.Name = fmt.Sprintf("%s#%d", gpu.Name, i)
		c.GPUs[i] = g
	}
	for i := range c.Links {
		if (i+1)%gpusPerNode == 0 {
			c.Links[i] = inter
		} else {
			c.Links[i] = intra
		}
	}
	if nodes == 1 {
		c.AllReduceLink = intra
	}
	return c, nil
}

// PaperTestbed returns the paper's 3-node × 2-V100 cluster with 1 Gbps
// Ethernet between nodes and PCIe within them.
func PaperTestbed() *Cluster {
	return New(3, 2, device.V100(), comm.PCIe3(), comm.Ethernet1G())
}

// TwoNodeTestbed returns the 2-node × 2-GPU subset used for the AWD
// workload ("Since AWD is rather small, we use four GPUs of two node").
func TwoNodeTestbed() *Cluster {
	return New(2, 2, device.V100(), comm.PCIe3(), comm.Ethernet1G())
}

// Size returns the number of GPUs.
func (c *Cluster) Size() int { return len(c.GPUs) }

// Link returns the link between GPU i and GPU i+1.
func (c *Cluster) Link(i int) comm.Link {
	return c.Links[i]
}

// SetSatSamples overrides the kernel-efficiency half-saturation point on
// every GPU; each workload calibrates this to its own per-sample cost.
func (c *Cluster) SetSatSamples(s float64) *Cluster {
	for i := range c.GPUs {
		c.GPUs[i].SatSamples = s
	}
	return c
}

// SetMemBytes overrides the per-GPU memory capacity (used by memory-
// constraint experiments).
func (c *Cluster) SetMemBytes(b int64) *Cluster {
	for i := range c.GPUs {
		c.GPUs[i].MemBytes = b
	}
	return c
}

// AllReduceTime returns the time for a ring all-reduce of `bytes` of
// gradients across all K GPUs: 2(K-1)/K · bytes over the bottleneck link,
// the cost data parallelism pays every batch.
func (c *Cluster) AllReduceTime(bytes int64) float64 {
	k := float64(c.Size())
	if k <= 1 {
		return 0
	}
	vol := 2 * (k - 1) / k * float64(bytes)
	return c.AllReduceLink.TransferTime(int64(vol)).Seconds()
}
