package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Replica names one process of a multi-process elastic-averaging job:
// its pipeline index and the TCP address its transport listens on.
// Replica ids are the same pipeline indices the averager folds in, so
// the deterministic reduction order is fixed by the job spec, not by
// connection order.
type Replica struct {
	ID   int
	Addr string
}

// ParsePeers parses a peer list of the form "1=host:port,2=host:port"
// (the -peers flag): comma-separated id=address pairs, one per remote
// replica. Whitespace around pairs is ignored. Duplicate ids and
// malformed pairs are errors.
func ParsePeers(s string) (map[int]string, error) {
	peers := make(map[int]string)
	if strings.TrimSpace(s) == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: peer %q: want id=host:port", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: bad replica id: %v", part, err)
		}
		if n < 0 {
			return nil, fmt.Errorf("cluster: peer %q: negative replica id", part)
		}
		addr = strings.TrimSpace(addr)
		if addr == "" {
			return nil, fmt.Errorf("cluster: peer %q: empty address", part)
		}
		if _, dup := peers[n]; dup {
			return nil, fmt.Errorf("cluster: duplicate replica id %d", n)
		}
		peers[n] = addr
	}
	return peers, nil
}

// FormatPeers renders a peer map back to the -peers flag syntax in
// ascending id order — the inverse of ParsePeers, for logs and tests.
func FormatPeers(peers map[int]string) string {
	ids := make([]int, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d=%s", id, peers[id])
	}
	return strings.Join(parts, ",")
}
