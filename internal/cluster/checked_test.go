package cluster

import (
	"testing"

	"avgpipe/internal/comm"
	"avgpipe/internal/device"
)

// TestNewCheckedValidatesTopologyAndLinks pins the error-returning
// constructor: malformed geometry and unphysical links are errors, and
// the panicking New wrapper stays available for static topologies.
func TestNewCheckedValidatesTopologyAndLinks(t *testing.T) {
	good, err := NewChecked(1, 2, device.V100(), comm.PCIe3(), comm.Ethernet1G())
	if err != nil || good == nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	cases := []struct {
		name        string
		nodes, gpus int
		intra       comm.Link
	}{
		{"zero nodes", 0, 2, comm.PCIe3()},
		{"zero gpus", 1, 0, comm.PCIe3()},
		{"zero-bandwidth intra link", 1, 2, comm.Link{Name: "bad"}},
	}
	for _, c := range cases {
		if _, err := NewChecked(c.nodes, c.gpus, device.V100(), c.intra, comm.Ethernet1G()); err == nil {
			t.Errorf("%s: NewChecked accepted it", c.name)
		}
	}
	if _, err := NewChecked(1, 2, device.V100(), comm.PCIe3(), comm.Link{Name: "bad-inter"}); err == nil {
		t.Error("zero-bandwidth inter link: NewChecked accepted it")
	}
}
