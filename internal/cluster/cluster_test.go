package cluster

import (
	"testing"

	"avgpipe/internal/comm"
	"avgpipe/internal/device"
)

func TestTopologyLinks(t *testing.T) {
	c := New(3, 2, device.V100(), comm.PCIe3(), comm.Ethernet1G())
	if c.Size() != 6 || len(c.Links) != 5 {
		t.Fatalf("size %d links %d", c.Size(), len(c.Links))
	}
	// GPUs 0-1 share a node (PCIe); 1-2 straddle nodes (Ethernet).
	wantInter := map[int]bool{1: true, 3: true}
	for i, l := range c.Links {
		if wantInter[i] && l.Name != "ethernet-1gbps" {
			t.Fatalf("link %d should be inter-node, got %s", i, l.Name)
		}
		if !wantInter[i] && l.Name != "pcie3" {
			t.Fatalf("link %d should be intra-node, got %s", i, l.Name)
		}
	}
}

func TestPaperTestbeds(t *testing.T) {
	if PaperTestbed().Size() != 6 {
		t.Fatal("paper testbed is 3x2")
	}
	if TwoNodeTestbed().Size() != 4 {
		t.Fatal("AWD testbed is 2x2")
	}
}

func TestSetters(t *testing.T) {
	c := PaperTestbed().SetSatSamples(42).SetMemBytes(1 << 30)
	for _, g := range c.GPUs {
		if g.SatSamples != 42 || g.MemBytes != 1<<30 {
			t.Fatal("setters must apply to every GPU")
		}
	}
}

func TestAllReduceTime(t *testing.T) {
	c := PaperTestbed()
	// 2(K-1)/K × bytes over the 1 Gbps bottleneck.
	bytes := int64(600e6)
	want := comm.Ethernet1G().TransferTime(int64(2.0 * 5.0 / 6.0 * 600e6)).Seconds()
	if got := c.AllReduceTime(bytes); got != want {
		t.Fatalf("allreduce %v, want %v", got, want)
	}
	single := New(1, 1, device.V100(), comm.PCIe3(), comm.Ethernet1G())
	if single.AllReduceTime(bytes) != 0 {
		t.Fatal("single GPU needs no all-reduce")
	}
	// Single-node clusters all-reduce over the intra-node link.
	oneNode := New(1, 4, device.V100(), comm.PCIe3(), comm.Ethernet1G())
	if oneNode.AllReduceTime(bytes) >= c.AllReduceTime(bytes) {
		t.Fatal("intra-node all-reduce must be faster")
	}
}

func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 2, device.V100(), comm.PCIe3(), comm.Ethernet1G())
}
