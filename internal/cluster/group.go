package cluster

import "math"

// Group/leader addressing for hierarchical two-level averaging: replicas
// are split into contiguous groups of at most GroupSize members, the
// lowest id of each group is its leader, and only leaders talk across
// groups. The assignment is a pure function of (replica id, group size,
// job size), so every process derives the same roles without a
// coordinator — the same property that makes the full mesh leaderless.

// DefaultGroupSize is the group size used when the operator passes 0:
// ceil(sqrt(n)) balances the leader's two fan-outs (members below,
// leaders across), which is what minimizes the per-leader connection
// count for a two-level hierarchy.
func DefaultGroupSize(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

// GroupOf returns the group index replica r belongs to under group size
// g (groups are contiguous id ranges: [0,g), [g,2g), ...).
func GroupOf(r, g int) int { return r / g }

// LeaderOf returns the leader of replica r's group: the lowest id in
// the group.
func LeaderOf(r, g int) int { return r - r%g }

// IsLeader reports whether replica r leads its group.
func IsLeader(r, g int) bool { return r%g == 0 }

// Leaders returns the leader ids of an n-replica job in ascending
// order, one per (possibly partial) group.
func Leaders(n, g int) []int {
	var ids []int
	for r := 0; r < n; r += g {
		ids = append(ids, r)
	}
	return ids
}

// Members returns the non-leader ids of leader's group in ascending
// order. The last group may be partial, so the range is clipped to n.
func Members(leader, n, g int) []int {
	var ids []int
	for r := leader + 1; r < leader+g && r < n; r++ {
		ids = append(ids, r)
	}
	return ids
}
