package obs

import (
	"fmt"
	"sort"
)

// Cross-replica trace merging. Each replica of a multi-process job
// records its own Chrome trace on its own clock; MergeTraces lays N of
// them on one timeline. Per-replica clock offsets (round-trip-midpoint
// estimates, see net.MeasureClockOffset) align the clocks, PID
// remapping gives every replica its own process rows, and matched
// averaging spans get cross-replica flow arrows so a delta's
// submit→apply journey is visible in Perfetto.

// ReplicaTrace is one replica's contribution to a merged trace.
// OffsetUS is added to every timestamp to convert the replica's clock
// to the reference clock (0 for pre-corrected or same-host events).
type ReplicaTrace struct {
	Replica  int
	OffsetUS float64
	Events   []TraceEvent
}

// mergePIDStride spaces the per-replica PID ranges: replica r's process
// p becomes mergePIDStride*(r+1) + p, keeping rows distinct for any
// realistic per-replica process count.
const mergePIDStride = 1000

// MergePID returns the merged-trace PID for a replica's local pid.
func MergePID(replica, pid int) int { return mergePIDStride*(replica+1) + pid }

// argInt pulls an integer out of a span's args, tolerating the
// int/float64 ambiguity of JSON round-trips.
func argInt(ev TraceEvent, key string) (int, bool) {
	switch n := ev.Args[key].(type) {
	case int:
		return n, true
	case int64:
		return int(n), true
	case float64:
		return int(n), true
	}
	return 0, false
}

// MergeTraces merges per-replica traces into one clock-aligned tracer.
// Timestamps are offset-corrected and then rebased so the merged
// timeline starts at 0; every event keeps its replica's own process
// rows via PID remapping, with one named "replica N" process group per
// part. Averaging spans (Cat "avg") named "submit" and "apply" are
// linked with flow arrows: replica p's submit of round r starts one
// arrow per remote apply of (r, p).
func MergeTraces(parts []ReplicaTrace) *Tracer {
	type avgSpan struct {
		ev   TraceEvent
		part int
	}
	var events []TraceEvent
	submits := map[[2]int]avgSpan{} // (replica, round) -> submit span
	var applies []avgSpan

	// Correct clocks, remap PIDs, and find the global origin. Process
	// rows are renamed "replica N: <name>"; merged PIDs that had no
	// process_name metadata get a bare "replica N" row so every row is
	// attributable.
	origin, haveOrigin := 0.0, false
	named := map[int]bool{}
	seen := map[int]int{} // merged pid -> replica
	for pi := range parts {
		part := &parts[pi]
		for _, ev := range part.Events {
			ev.PID = MergePID(part.Replica, ev.PID)
			seen[ev.PID] = part.Replica
			if ev.Phase == "M" {
				if ev.Name == "process_name" {
					named[ev.PID] = true
					if name, ok := ev.Args["name"].(string); ok {
						ev.Args = map[string]any{"name": fmt.Sprintf("replica %d: %s", part.Replica, name)}
					}
				}
			} else {
				ev.TS += part.OffsetUS
				if !haveOrigin || ev.TS < origin {
					origin, haveOrigin = ev.TS, true
				}
			}
			events = append(events, ev)
		}
	}
	for i := range events {
		ev := &events[i]
		if ev.Phase == "M" {
			continue
		}
		ev.TS -= origin
	}

	// Index the averaging spans for flow matching.
	partOf := func(pid int) int { return pid/mergePIDStride - 1 }
	for _, ev := range events {
		if ev.Phase != "X" || ev.Cat != "avg" {
			continue
		}
		round, okR := argInt(ev, "round")
		if !okR {
			continue
		}
		switch ev.Name {
		case "submit":
			if from, ok := argInt(ev, "replica"); ok {
				submits[[2]int{from, round}] = avgSpan{ev: ev, part: partOf(ev.PID)}
			}
		case "apply":
			applies = append(applies, avgSpan{ev: ev, part: partOf(ev.PID)})
		}
	}

	out := NewTracer("merged")
	out.SetMeta("clock_alignment", "round-trip midpoint offsets, rebased to earliest event")
	for _, part := range parts {
		out.SetMeta(fmt.Sprintf("replica_%d_offset_us", part.Replica), part.OffsetUS)
	}
	unnamed := make([]int, 0, len(seen))
	for pid := range seen {
		if !named[pid] {
			unnamed = append(unnamed, pid)
		}
	}
	sort.Ints(unnamed)
	for _, pid := range unnamed {
		out.Process(pid, fmt.Sprintf("replica %d", seen[pid]))
	}

	// Deterministic, time-sorted body (stable: emission order on ties).
	sort.SliceStable(events, func(i, j int) bool {
		mi, mj := events[i].Phase == "M", events[j].Phase == "M"
		if mi != mj {
			return mi
		}
		return events[i].TS < events[j].TS
	})
	out.Add(events...)

	// One arrow per cross-replica submit→apply pair.
	for _, ap := range applies {
		round, _ := argInt(ap.ev, "round")
		from, ok := argInt(ap.ev, "from")
		if !ok {
			continue
		}
		sub, found := submits[[2]int{from, round}]
		if !found || sub.part == ap.part {
			continue
		}
		id := fmt.Sprintf("delta-r%d-p%d-to-%d", round, from, partOf(ap.ev.PID))
		out.Flow(sub.ev.PID, sub.ev.TID, "delta", id, sub.ev.TS+sub.ev.Dur/2, FlowStart)
		out.Flow(ap.ev.PID, ap.ev.TID, "delta", id, ap.ev.TS+ap.ev.Dur/2, FlowEnd)
	}
	return out
}
