package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// replicaPart fabricates one replica's averaging trace: a process_name
// row plus submit/apply spans at the given (uncorrected) timestamps.
func replicaPart(replica int, offsetUS float64, spans ...TraceEvent) ReplicaTrace {
	events := []TraceEvent{{
		Phase: "M", Name: "process_name", PID: 2,
		Args: map[string]any{"name": "averaging"},
	}}
	events = append(events, spans...)
	return ReplicaTrace{Replica: replica, OffsetUS: offsetUS, Events: events}
}

func span(name string, ts, dur float64, args map[string]any) TraceEvent {
	return TraceEvent{Phase: "X", Cat: "avg", Name: name, PID: 2, TID: 1, TS: ts, Dur: dur, Args: args}
}

func TestMergeTracesAlignsAndLinks(t *testing.T) {
	// Replica 0's clock is the reference; replica 1's clock is 500µs
	// behind (offset +500 corrects it). Replica 0 submits round 3 at
	// t=1000; replica 1 applies it at local t=700 = corrected t=1200.
	parts := []ReplicaTrace{
		replicaPart(0, 0,
			span("submit", 1000, 50, map[string]any{"round": 3, "replica": 0})),
		replicaPart(1, 500,
			span("apply", 700, 40, map[string]any{"round": 3, "from": 0})),
	}
	merged := MergeTraces(parts)
	events := merged.Events()

	var submit, apply *TraceEvent
	flows := 0
	for i := range events {
		ev := &events[i]
		switch {
		case ev.Name == "submit":
			submit = ev
		case ev.Name == "apply":
			apply = ev
		case ev.Phase == string(FlowStart) || ev.Phase == string(FlowEnd):
			flows++
		}
	}
	if submit == nil || apply == nil {
		t.Fatal("merged trace lost the averaging spans")
	}

	// Rebase: earliest event at 0; clock alignment: the corrected gap
	// (1200-1000 = 200µs) survives, the raw gap (700-1000) does not.
	if submit.TS != 0 {
		t.Fatalf("submit at %v, want rebased 0", submit.TS)
	}
	if apply.TS != 200 {
		t.Fatalf("apply at %v, want clock-corrected 200", apply.TS)
	}

	// PID remapping keeps the replicas' rows apart.
	if submit.PID != MergePID(0, 2) || apply.PID != MergePID(1, 2) {
		t.Fatalf("pids (%d, %d), want (%d, %d)", submit.PID, apply.PID, MergePID(0, 2), MergePID(1, 2))
	}

	// The cross-replica delta journey gets a start+end flow pair.
	if flows != 2 {
		t.Fatalf("%d flow events, want 2", flows)
	}

	// The merged document is loadable Chrome-trace JSON with renamed
	// per-replica process rows.
	var buf bytes.Buffer
	if err := merged.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" && ev.Name == "process_name" {
			if n, ok := ev.Args["name"].(string); ok {
				names[n] = true
			}
		}
	}
	if !names["replica 0: averaging"] || !names["replica 1: averaging"] {
		t.Fatalf("process rows not renamed per replica: %v", names)
	}
}

// TestMergeTracesMonotonicRows: after offset correction the merged
// body is globally time-sorted, so each replica's row is monotonic.
func TestMergeTracesMonotonicRows(t *testing.T) {
	parts := []ReplicaTrace{
		replicaPart(0, 0,
			span("submit", 100, 10, map[string]any{"round": 1, "replica": 0}),
			span("submit", 300, 10, map[string]any{"round": 2, "replica": 0})),
		replicaPart(1, -50,
			span("submit", 260, 10, map[string]any{"round": 1, "replica": 1}),
			span("submit", 460, 10, map[string]any{"round": 2, "replica": 1})),
	}
	events := MergeTraces(parts).Events()
	last := -1.0
	sawBody := false
	for _, ev := range events {
		if ev.Phase != "X" {
			continue
		}
		sawBody = true
		if ev.TS < last {
			t.Fatalf("merged body not time-sorted: %v after %v", ev.TS, last)
		}
		if ev.TS < 0 {
			t.Fatalf("negative timestamp %v after rebase", ev.TS)
		}
		last = ev.TS
	}
	if !sawBody {
		t.Fatal("no body events merged")
	}
}

// TestMergeTracesNoArrowWithinReplica: a replica applying its own delta
// (same process) draws no arrow — flows mark cross-replica journeys.
func TestMergeTracesNoArrowWithinReplica(t *testing.T) {
	parts := []ReplicaTrace{
		replicaPart(0, 0,
			span("submit", 100, 10, map[string]any{"round": 1, "replica": 0}),
			span("apply", 150, 10, map[string]any{"round": 1, "from": 0})),
	}
	for _, ev := range MergeTraces(parts).Events() {
		if ev.Phase == string(FlowStart) || ev.Phase == string(FlowEnd) {
			t.Fatalf("intra-replica flow arrow emitted: %+v", ev)
		}
	}
}
