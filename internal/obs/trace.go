package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceEvent is one Chrome-trace event (the chrome://tracing and
// Perfetto JSON format). Complete spans use Phase "X"; track metadata
// uses "M"; flow arrows linking a micro-batch across stages use
// "s"/"t"/"f" with a shared ID.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"` // flow-event binding id
	BP    string         `json:"bp,omitempty"` // "e": bind flow end to enclosing slice
	Args  map[string]any `json:"args,omitempty"`
}

// FlowPhase selects a flow event's role in its arrow chain.
type FlowPhase string

const (
	FlowStart FlowPhase = "s"
	FlowStep  FlowPhase = "t"
	FlowEnd   FlowPhase = "f"
)

// Tracer accumulates Chrome-trace events and writes the single JSON
// envelope both execution engines share: core.Pipeline.WriteTrace and
// pipesim.Result.WriteTrace are thin adapters over one Tracer each, so
// a real run and its simulation are directly diff-able in Perfetto.
// Methods are safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent
	meta   map[string]any
}

// NewTracer returns a tracer whose envelope records the producing
// subsystem under otherData.source.
func NewTracer(source string) *Tracer {
	t := &Tracer{meta: map[string]any{}}
	if source != "" {
		t.meta["source"] = source
	}
	return t
}

// SetMeta records run-level metadata in the envelope's otherData.
func (t *Tracer) SetMeta(key string, value any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.meta[key] = value
}

// Process names a trace process (pid).
func (t *Tracer) Process(pid int, name string) {
	t.Add(TraceEvent{Name: "process_name", Cat: "__metadata", Phase: "M",
		PID: pid, Args: map[string]any{"name": name}})
}

// Thread names a trace track (pid, tid) — one per GPU/stage.
func (t *Tracer) Thread(pid, tid int, name string) {
	t.Add(TraceEvent{Name: "thread_name", Cat: "__metadata", Phase: "M",
		PID: pid, TID: tid, Args: map[string]any{"name": name}})
}

// Span records one complete event ("X"): ts and dur in microseconds.
func (t *Tracer) Span(pid, tid int, name, cat string, tsUS, durUS float64, args map[string]any) {
	t.Add(TraceEvent{Name: name, Cat: cat, Phase: "X",
		TS: tsUS, Dur: durUS, PID: pid, TID: tid, Args: args})
}

// Flow records one flow event; events sharing id draw one arrow chain
// across tracks (e.g. micro-batch 3's journey down the pipeline stages).
// A flow event must lie inside a span on its track; FlowEnd binds to the
// enclosing slice ("bp":"e") as chrome://tracing requires.
func (t *Tracer) Flow(pid, tid int, name, id string, tsUS float64, phase FlowPhase) {
	ev := TraceEvent{Name: name, Cat: "flow", Phase: string(phase),
		TS: tsUS, PID: pid, TID: tid, ID: id}
	if phase == FlowEnd {
		ev.BP = "e"
	}
	t.Add(ev)
}

// Add appends pre-built events (the compatibility path for callers that
// assemble events themselves).
func (t *Tracer) Add(events ...TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, events...)
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events.
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// Write encodes the Chrome-trace JSON envelope. Encoder errors are
// propagated with context rather than swallowed.
func (t *Tracer) Write(w io.Writer) error {
	t.mu.Lock()
	doc := map[string]any{
		"traceEvents":     t.events,
		"displayTimeUnit": "ms",
		"otherData":       t.meta,
	}
	t.mu.Unlock()
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("obs: encode chrome trace: %w", err)
	}
	return nil
}
