package obs

import (
	"sync"
	"testing"
)

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		l.Emit(Event{Type: "e", Round: i})
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", l.Dropped())
	}
	peeked := l.Peek()
	got := l.Drain()
	if len(got) != 3 || got[0].Round != 2 || got[2].Round != 4 {
		t.Fatalf("drain = %+v, want rounds 2..4", got)
	}
	if len(peeked) != 3 || peeked[0].Round != got[0].Round {
		t.Fatalf("peek = %+v, want same events as drain", peeked)
	}
	if l.Drain() != nil || l.Len() != 0 {
		t.Fatal("drain did not empty the ring")
	}
	// Timestamps are stamped on emit when the caller leaves them zero.
	l.Emit(Event{Type: "stamped"})
	if ev := l.Drain(); ev[0].TimeUnixNano == 0 {
		t.Fatal("zero timestamp not stamped")
	}
}

func TestEventLogSinkAndNil(t *testing.T) {
	var nilLog *EventLog
	nilLog.Emit(Event{Type: "x"}) // must not panic
	if nilLog.Drain() != nil || nilLog.Peek() != nil || nilLog.Len() != 0 {
		t.Fatal("nil log not inert")
	}

	l := NewEventLog(0)
	var sunk []Event
	l.SetSink(func(e Event) { sunk = append(sunk, e) })
	l.Emit(Event{Type: "a"})
	l.Emit(Event{Type: "b"})
	if len(sunk) != 2 || sunk[0].Type != "a" || sunk[1].Type != "b" {
		t.Fatalf("sink saw %+v", sunk)
	}
}

// TestRegistryEvents: the registry lazily owns one event log, and the
// discard registry's log swallows everything (the zero-overhead path).
func TestRegistryEvents(t *testing.T) {
	reg := NewRegistry()
	if reg.Events() != reg.Events() {
		t.Fatal("Events() is not stable")
	}
	reg.Events().Emit(Event{Type: "x"})
	if reg.Events().Len() != 1 {
		t.Fatal("event lost")
	}
	Discard().Events().Emit(Event{Type: "x"})
	if Discard().Events().Len() != 0 {
		t.Fatal("discard registry buffered an event")
	}
}

func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Emit(Event{Type: "c", Round: i})
				l.Peek()
			}
		}()
	}
	wg.Wait()
	if l.Len()+int(l.Dropped()) != 800 {
		t.Fatalf("buffered %d + dropped %d != 800", l.Len(), l.Dropped())
	}
}

func TestEventLogAddSinkFansOut(t *testing.T) {
	l := NewEventLog(4)
	var a, b []string
	l.AddSink(func(e Event) { a = append(a, e.Type) })
	l.Emit(Event{Type: "first"})
	l.AddSink(func(e Event) { b = append(b, e.Type) })
	l.Emit(Event{Type: "second"})
	if len(a) != 2 || a[0] != "first" || a[1] != "second" {
		t.Fatalf("first sink saw %v", a)
	}
	if len(b) != 1 || b[0] != "second" {
		t.Fatalf("second sink saw %v", b)
	}
	// SetSink replaces every sink; SetSink(nil) uninstalls all.
	l.SetSink(func(e Event) { a = append(a, "only-"+e.Type) })
	l.Emit(Event{Type: "third"})
	l.SetSink(nil)
	l.Emit(Event{Type: "fourth"})
	if a[len(a)-1] != "only-third" || len(b) != 1 {
		t.Fatalf("SetSink did not replace: a=%v b=%v", a, b)
	}
}
