package obs

import (
	"sync"
	"time"
)

// Health-event taxonomy. Events are the machine-readable counterpart of
// the metric families: discrete state changes a cluster controller (or
// the telemetry collector's straggler logic) reacts to, rather than
// continuously sampled values. The strings are the wire/JSONL `type`
// field and must stay stable.
const (
	// EventStragglerInjected: the fault injector slowed a stage op
	// (Replica = pipeline, Stage = stage, Value = delay seconds).
	EventStragglerInjected = "straggler_injected"
	// EventStragglerDetected: the collector's cross-replica comparison
	// flagged a replica as slow (Value = straggler score).
	EventStragglerDetected = "straggler_detected"
	// EventRoundDeadlineMissed: an averaging round expired before every
	// live replica's update arrived (Value = updates applied).
	EventRoundDeadlineMissed = "round_deadline_missed"
	// EventReplicaDetach / EventReplicaRejoin: averaging-set membership
	// changes (crash, clean shutdown, recovery).
	EventReplicaDetach = "replica_detach"
	EventReplicaRejoin = "replica_rejoin"
	// EventWatchdogStall: the pipeline watchdog killed a wedged batch.
	EventWatchdogStall = "watchdog_stall"
	// EventUpdateDropped / EventUpdateDelayed: the fault injector hit an
	// averaging update in flight.
	EventUpdateDropped = "update_dropped"
	EventUpdateDelayed = "update_delayed"
	// EventReplicaConnect / EventReplicaDisconnect: a replica's
	// telemetry session with the collector opened or closed.
	EventReplicaConnect    = "replica_connect"
	EventReplicaDisconnect = "replica_disconnect"
	// EventConnBroken: a mesh connection to Replica broke (poisoned TCP
	// stream, peer reset); the self-healing layer will try to re-dial.
	EventConnBroken = "conn_broken"
	// EventReconnectAttempt / EventReconnectSuccess: the self-healing
	// mesh layer re-dialing a broken peer connection (Replica = peer,
	// Value = attempt count; success carries the new session epoch).
	EventReconnectAttempt = "reconnect_attempt"
	EventReconnectSuccess = "reconnect_success"
	// EventDeadlineRetuned: the heal supervisor moved the averaging
	// round deadline (Value = new deadline seconds).
	EventDeadlineRetuned = "deadline_retuned"
	// EventHealAction: the heal supervisor took a recovery action
	// (Detail names it: auto_detach, deadline_retune, ...), the
	// machine-readable healing timeline avgpipe-obs renders.
	EventHealAction = "heal_action"
)

// Event is one structured health event. Replica is the pipeline /
// replica the event concerns (-1 when not replica-scoped), Round the
// averaging round (-1 when not round-scoped). Stage, Value, and Detail
// are type-specific.
type Event struct {
	TimeUnixNano int64   `json:"ts_unix_nano"`
	Type         string  `json:"type"`
	Replica      int     `json:"replica"`
	Round        int     `json:"round"`
	Stage        int     `json:"stage,omitempty"`
	Value        float64 `json:"value,omitempty"`
	Detail       string  `json:"detail,omitempty"`
}

// DefaultEventCapacity is the ring size of a Registry's event log.
const DefaultEventCapacity = 1024

// EventLog is a bounded ring of health events. Emit never blocks: when
// the ring is full the oldest event is dropped and counted. A publisher
// drains the ring periodically with Drain; an optional sink observes
// every event synchronously (the collector uses one to stream JSONL).
// All methods are nil-safe no-ops, like the metric types.
type EventLog struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of oldest event
	n       int // events currently buffered
	dropped uint64
	sinks   []func(Event)
	off     bool
}

// NewEventLog returns an event log buffering at most capacity events
// (<=0 means DefaultEventCapacity).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// Emit records e, stamping TimeUnixNano with the current time when the
// caller left it zero.
func (l *EventLog) Emit(e Event) {
	if l == nil || l.off {
		return
	}
	if e.TimeUnixNano == 0 {
		e.TimeUnixNano = time.Now().UnixNano()
	}
	l.mu.Lock()
	if l.n == len(l.buf) {
		l.start = (l.start + 1) % len(l.buf)
		l.n--
		l.dropped++
	}
	l.buf[(l.start+l.n)%len(l.buf)] = e
	l.n++
	sinks := l.sinks
	l.mu.Unlock()
	for _, sink := range sinks {
		sink(e)
	}
}

// Drain removes and returns every buffered event in emission order.
func (l *EventLog) Drain() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		return nil
	}
	out := make([]Event, l.n)
	for i := range out {
		out[i] = l.buf[(l.start+i)%len(l.buf)]
	}
	l.start, l.n = 0, 0
	return out
}

// Peek returns a copy of every buffered event in emission order
// without removing them (the collector's retained stream is read this
// way by /events while ingestion continues).
func (l *EventLog) Peek() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		return nil
	}
	out := make([]Event, l.n)
	for i := range out {
		out[i] = l.buf[(l.start+i)%len(l.buf)]
	}
	return out
}

// Len reports the number of buffered (undrained) events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Dropped reports how many events were lost to ring overflow.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// SetSink installs fn to be called synchronously on every Emit,
// replacing every previously installed sink (nil uninstalls all). The
// sink must be fast and must not call back into the log.
func (l *EventLog) SetSink(fn func(Event)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if fn == nil {
		l.sinks = nil
	} else {
		l.sinks = []func(Event){fn}
	}
	l.mu.Unlock()
}

// AddSink installs fn alongside the existing sinks, so independent
// observers — the telemetry publisher and the heal supervisor — can
// each watch the same event stream without stealing it from the other.
// Sinks run synchronously on Emit in installation order.
func (l *EventLog) AddSink(fn func(Event)) {
	if l == nil || fn == nil {
		return
	}
	l.mu.Lock()
	// Copy-on-write: Emit reads l.sinks outside the lock after
	// snapshotting, so the slice it holds must never be appended to in
	// place.
	sinks := make([]func(Event), len(l.sinks)+1)
	copy(sinks, l.sinks)
	sinks[len(sinks)-1] = fn
	l.sinks = sinks
	l.mu.Unlock()
}
