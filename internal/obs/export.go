package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Structured registry export. Export captures the registry as plain
// data — JSON-marshalable, mergeable — which is what one replica ships
// to the telemetry collector inside a FrameTelemetry blob. The
// collector edits the label sets (injecting `replica="id"`), merges
// families across replicas, and renders the result back to Prometheus
// text with WritePrometheusFamilies.

// SeriesExport is one series of a FamilyExport. Counters and gauges use
// Value; histograms use Bounds (finite upper bounds), Counts (per-
// bucket counts, one longer than Bounds for the +Inf overflow bucket),
// Sum, and Count.
type SeriesExport struct {
	Labels string    `json:"labels,omitempty"`
	Value  float64   `json:"value,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	Count  uint64    `json:"count,omitempty"`
}

// FamilyExport is one metric family with all of its series.
type FamilyExport struct {
	Name   string         `json:"name"`
	Help   string         `json:"help,omitempty"`
	Type   string         `json:"type"`
	Series []SeriesExport `json:"series"`
}

// Export snapshots the registry as plain data, families sorted by name
// and series by label string. All float values are finite (NaN/Inf
// sanitized to 0) so the result always survives json.Marshal.
func (r *Registry) Export() []FamilyExport {
	views := r.view()
	out := make([]FamilyExport, 0, len(views))
	for _, f := range views {
		fe := FamilyExport{Name: f.name, Help: f.help, Type: f.typ}
		for i, ls := range f.labels {
			se := SeriesExport{Labels: ls}
			switch m := f.metrics[i].(type) {
			case *Counter:
				se.Value = finite(m.Value())
			case *Gauge:
				se.Value = finite(m.Value())
			case *Histogram:
				se.Bounds = append([]float64(nil), m.bounds...)
				se.Counts = make([]uint64, len(m.counts))
				for b := range m.counts {
					se.Counts[b] = m.counts[b].Load()
				}
				se.Sum = finite(m.Sum())
				se.Count = m.Count()
			}
			fe.Series = append(fe.Series, se)
		}
		out = append(out, fe)
	}
	return out
}

// WritePrometheusFamilies renders exported (possibly merged and
// relabeled) families as Prometheus text, in the same deterministic
// format as Registry.WritePrometheus: families sorted by name, series
// by label string, histograms expanded into cumulative buckets.
func WritePrometheusFamilies(w io.Writer, fams []FamilyExport) error {
	sorted := append([]FamilyExport(nil), fams...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	bw := bufio.NewWriter(w)
	for _, f := range sorted {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		series := append([]SeriesExport(nil), f.Series...)
		sort.Slice(series, func(i, j int) bool { return series[i].Labels < series[j].Labels })
		for _, s := range series {
			if f.Type != typeHistogram {
				fmt.Fprintf(bw, "%s %s\n", seriesRef(f.Name, s.Labels), fmtFloat(finite(s.Value)))
				continue
			}
			var cum uint64
			for b, n := range s.Counts {
				cum += n
				leStr := "+Inf"
				if b < len(s.Bounds) {
					leStr = fmtFloat(s.Bounds[b])
				}
				withLE := s.Labels
				if withLE != "" {
					withLE += ","
				}
				withLE += fmt.Sprintf("le=%q", leStr)
				fmt.Fprintf(bw, "%s %d\n", seriesRef(f.Name+"_bucket", withLE), cum)
			}
			fmt.Fprintf(bw, "%s %s\n", seriesRef(f.Name+"_sum", s.Labels), fmtFloat(finite(s.Sum)))
			fmt.Fprintf(bw, "%s %d\n", seriesRef(f.Name+"_count", s.Labels), s.Count)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: write prometheus families: %w", err)
	}
	return nil
}

// WithLabel returns the label string ls with key=value prepended, or ls
// unchanged if it already carries the key (a series exported with an
// explicit replica label must not get a second one from the collector).
func WithLabel(ls, key, value string) string {
	if strings.Contains(ls, key+"=") {
		return ls
	}
	pair := fmt.Sprintf("%s=%q", key, value)
	if ls == "" {
		return pair
	}
	return pair + "," + ls
}

// SeriesValue finds the value of the series with the given labels in
// the exported families (counters and gauges); ok is false when the
// family or series is absent.
func SeriesValue(fams []FamilyExport, name, labels string) (v float64, ok bool) {
	for _, f := range fams {
		if f.Name != name {
			continue
		}
		for _, s := range f.Series {
			if s.Labels == labels {
				return s.Value, true
			}
		}
	}
	return 0, false
}
