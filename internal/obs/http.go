package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar bridge: expvar panics on duplicate
// Publish, and several binaries may build handlers for the same
// registry.
var publishOnce sync.Once

// Health is the liveness/readiness state behind /healthz and /readyz.
// A process is live as soon as it serves HTTP; it is ready only once
// its long-lived machinery is up (mesh formed, schedule running for a
// trainer; expected replicas reporting for a collector). SetNotReady's
// reason is served with the 503 so a stuck rollout is debuggable from
// the probe alone.
type Health struct {
	mu     sync.Mutex
	ready  bool
	reason string
}

// NewHealth returns a Health that starts not-ready ("starting").
func NewHealth() *Health {
	return &Health{reason: "starting"}
}

// SetReady marks the process ready.
func (h *Health) SetReady() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ready, h.reason = true, ""
	h.mu.Unlock()
}

// SetNotReady marks the process not ready with a human-readable reason.
func (h *Health) SetNotReady(reason string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ready, h.reason = false, reason
	h.mu.Unlock()
}

// Ready reports the current state and, when not ready, the reason.
func (h *Health) Ready() (bool, string) {
	if h == nil {
		return true, ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ready, h.reason
}

// handlerOpts collects Handler/Serve options.
type handlerOpts struct {
	health *Health
}

// HandlerOption customizes Handler and Serve.
type HandlerOption func(*handlerOpts)

// WithHealth wires h behind /healthz and /readyz. Without it /healthz
// still answers 200 (the process is demonstrably alive) and /readyz
// answers 200 unconditionally.
func WithHealth(h *Health) HandlerOption {
	return func(o *handlerOpts) { o.health = h }
}

// Handler serves the observability surface for a registry:
//
//	/metrics      Prometheus text exposition
//	/healthz      liveness: 200 while the process serves HTTP
//	/readyz       readiness: 200 once ready, 503 + reason before (see WithHealth)
//	/debug        plain-text index of the endpoints below
//	/debug/vars   expvar JSON (Go runtime stats + the avgpipe registry)
//	/debug/pprof  the standard profiling endpoints
//
// Attach it to any server, or use Serve for the common one-liner.
func Handler(reg *Registry, opts ...HandlerOption) http.Handler {
	var o handlerOpts
	for _, opt := range opts {
		opt(&o)
	}
	publishOnce.Do(func() {
		expvar.Publish("avgpipe", expvar.Func(func() any { return reg.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	RegisterHealth(mux, o.health)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "avgpipe observability endpoints:")
		fmt.Fprintln(w, "  /metrics       Prometheus text")
		fmt.Fprintln(w, "  /healthz       liveness probe")
		fmt.Fprintln(w, "  /readyz        readiness probe")
		fmt.Fprintln(w, "  /debug/vars    expvar JSON")
		fmt.Fprintln(w, "  /debug/pprof/  profiling (profile, heap, trace, ...)")
	})
	return mux
}

// RegisterHealth mounts /healthz and /readyz on mux, reading state from
// h (nil h: both always 200). Shared by the trainer's obs handler and
// the collector's.
func RegisterHealth(mux *http.ServeMux, h *Health) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, reason := h.Ready()
		if !ready {
			http.Error(w, "not ready: "+reason, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
}

// Serve starts an HTTP server for Handler(reg) on addr (e.g. ":9090")
// in a background goroutine, returning the bound address — useful with
// ":0" in tests. The returned server's Close tears it down.
func Serve(addr string, reg *Registry, opts ...HandlerOption) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, opts...)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
