package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar bridge: expvar panics on duplicate
// Publish, and several binaries may build handlers for the same
// registry.
var publishOnce sync.Once

// Handler serves the observability surface for a registry:
//
//	/metrics      Prometheus text exposition
//	/debug        plain-text index of the endpoints below
//	/debug/vars   expvar JSON (Go runtime stats + the avgpipe registry)
//	/debug/pprof  the standard profiling endpoints
//
// Attach it to any server, or use Serve for the common one-liner.
func Handler(reg *Registry) http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("avgpipe", expvar.Func(func() any { return reg.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "avgpipe observability endpoints:")
		fmt.Fprintln(w, "  /metrics       Prometheus text")
		fmt.Fprintln(w, "  /debug/vars    expvar JSON")
		fmt.Fprintln(w, "  /debug/pprof/  profiling (profile, heap, trace, ...)")
	})
	return mux
}

// Serve starts an HTTP server for Handler(reg) on addr (e.g. ":9090")
// in a background goroutine, returning the bound address — useful with
// ":0" in tests. The returned server's Close tears it down.
func Serve(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
