package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONL writes structured records as JSON Lines — the step/epoch log
// format the trainer and the internal/exp figure harness emit for
// offline plotting. Safe for concurrent use; each Log call writes one
// complete line.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL wraps a writer. The caller owns closing the underlying file.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Log encodes one record as a single JSON line. Nil loggers drop the
// record, so callers need no guards on optional logging.
func (l *JSONL) Log(record any) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.enc.Encode(record); err != nil {
		return fmt.Errorf("obs: encode jsonl record: %w", err)
	}
	return nil
}
