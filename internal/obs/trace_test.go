package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTracerRoundTrip(t *testing.T) {
	tr := NewTracer("test")
	tr.SetMeta("batchTime_s", 1.5)
	tr.Process(1, "pipeline 0")
	tr.Thread(1, 0, "GPU 1")
	tr.Span(1, 0, "F3", "fwd", 100, 50, map[string]any{"micro": 3})
	tr.Flow(1, 0, "micro", "micro-3", 125, FlowStart)
	tr.Flow(1, 1, "micro", "micro-3", 300, FlowEnd)
	if tr.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tr.Len())
	}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []TraceEvent   `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	if doc.OtherData["source"] != "test" || doc.OtherData["batchTime_s"] != 1.5 {
		t.Fatalf("otherData %v", doc.OtherData)
	}
	evs := doc.TraceEvents
	if len(evs) != 5 {
		t.Fatalf("%d events after round trip", len(evs))
	}
	if evs[0].Phase != "M" || evs[0].Name != "process_name" {
		t.Fatalf("metadata event %+v", evs[0])
	}
	span := evs[2]
	if span.Phase != "X" || span.TS != 100 || span.Dur != 50 || span.Cat != "fwd" {
		t.Fatalf("span %+v", span)
	}
	start, end := evs[3], evs[4]
	if start.Phase != "s" || end.Phase != "f" {
		t.Fatalf("flow phases %q %q", start.Phase, end.Phase)
	}
	if start.ID != end.ID || start.ID != "micro-3" {
		t.Fatal("flow chain must share its binding id")
	}
	if end.BP != "e" || start.BP != "" {
		t.Fatalf("FlowEnd must bind to enclosing slice: bp start=%q end=%q", start.BP, end.BP)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestTracerWriteError(t *testing.T) {
	tr := NewTracer("test")
	tr.Span(0, 0, "op", "", 0, 1, nil)
	err := tr.Write(failWriter{})
	if err == nil {
		t.Fatal("Write must propagate encoder errors")
	}
	if !strings.Contains(err.Error(), "obs: encode chrome trace") {
		t.Fatalf("error lacks context: %v", err)
	}
}

func TestJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONL(&buf)
	if err := l.Log(map[string]int{"round": 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Log(map[string]int{"round": 2}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	for i, ln := range lines {
		var rec map[string]int
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec["round"] != i+1 {
			t.Fatalf("line %d: %v", i, rec)
		}
	}
	if err := NewJSONL(failWriter{}).Log("x"); err == nil {
		t.Fatal("Log must propagate writer errors")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("avgpipe_test_total", "A test counter.").Add(3)
	h := Handler(r)

	get := func(path string) (*http.Response, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		res := rec.Result()
		body, _ := io.ReadAll(res.Body)
		return res, string(body)
	}

	res, body := get("/metrics")
	if res.StatusCode != 200 {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	if !strings.HasPrefix(res.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("/metrics content type %q", res.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "avgpipe_test_total 3") {
		t.Fatalf("/metrics body:\n%s", body)
	}
	if n, err := ParsePrometheus(strings.NewReader(body)); err != nil || n == 0 {
		t.Fatalf("/metrics not parseable: n=%d err=%v", n, err)
	}

	if res, body := get("/debug/vars"); res.StatusCode != 200 || !strings.Contains(body, "avgpipe") {
		t.Fatalf("/debug/vars status %d body %.80s", res.StatusCode, body)
	}
	if res, _ := get("/debug/pprof/cmdline"); res.StatusCode != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", res.StatusCode)
	}
	if res, body := get("/debug"); res.StatusCode != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("/debug index status %d", res.StatusCode)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Gauge("avgpipe_live", "").Set(1)
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, _ := io.ReadAll(res.Body)
	if !strings.Contains(string(body), "avgpipe_live 1") {
		t.Fatalf("live /metrics body:\n%s", body)
	}
}
