//go:build obs

package obs

// Building with `-tags obs` (the Makefile ci tier runs `go vet -tags obs
// ./...`) turns on strict metric-name validation: registering a family
// whose name is not a legal Prometheus identifier panics at the
// registration site instead of producing exposition output that scrapers
// reject at runtime.
func init() { strictNames = true }
