package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefSecondsBuckets is the default histogram bucket layout for durations
// in seconds: a 1-2.5-5 decade ladder from 1µs to 10s. It spans a single
// tensor op on one micro-batch up to a whole training round.
func DefSecondsBuckets() []float64 {
	var b []float64
	for d := 1e-6; d < 20; d *= 10 {
		b = append(b, d, 2.5*d, 5*d)
	}
	return b
}

// LinearBuckets returns n buckets starting at start with the given width.
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// Histogram is a fixed-bucket histogram: per-bucket atomic counts plus a
// total sum, supporting Prometheus exposition and linear-interpolation
// quantile estimates. Observe is lock-free (one binary search plus two
// atomic adds).
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf last
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
	off    bool
}

func newHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefSecondsBuckets()
	}
	if !sort.Float64sAreSorted(buckets) {
		panic("obs: histogram buckets not ascending")
	}
	return &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.off {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket. The estimate is exact to within the
// bucket's width; samples landing in the overflow bucket report the
// largest finite bound. An empty (or nil) histogram reports 0 — never
// NaN, which would poison JSON marshaling and Prometheus scrapes of
// registered-but-unobserved series.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i == len(h.bounds) { // overflow bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// forBuckets iterates cumulative bucket counts in exposition order,
// calling fn with each upper bound (math.Inf(1) last) and the cumulative
// count up to it.
func (h *Histogram) forBuckets(fn func(le float64, cumulative uint64)) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		fn(le, cum)
	}
}
