// Package obs is the repository's dependency-free telemetry subsystem:
// a concurrent metrics registry (counters, gauges, fixed-bucket
// histograms with quantile estimates), a Chrome-trace span tracer shared
// by the real runtime and the simulator, structured JSONL step logging,
// and an HTTP endpoint serving Prometheus text, expvar, and pprof.
//
// The paper's tuner (§4–5) chooses parallelism degrees from *measured*
// per-stage compute, communication, and averaging costs; obs is where
// those measurements live. Design constraints:
//
//   - Hot-path cheap: metric updates are one atomic op (plus a bucket
//     search for histograms). Callers cache metric pointers outside
//     loops; the registry map is only touched at registration time.
//   - Dependency-free: obs imports only the standard library, so every
//     layer (comm, sched, pipesim, core, exp, cmd) may use it without
//     cycles.
//   - Nil-safe: all metric methods are no-ops on nil receivers, so
//     optional instrumentation needs no call-site guards.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// strictNames is enabled by the `obs` build tag (see strict_tag.go): it
// validates metric family names at registration time, which `go vet
// -tags obs ./...` in the Makefile ci tier compiles in.
var strictNames = false

// Counter is a monotonically increasing float64 metric.
type Counter struct {
	bits atomic.Uint64
	off  bool
}

// Add increments the counter. Negative deltas are ignored (counters are
// monotone); nil and discarded counters drop the update.
func (c *Counter) Add(v float64) {
	if c == nil || c.off || v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
	off  bool
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil || g.off {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments (or, with negative v, decrements) the gauge.
func (g *Gauge) Add(v float64) {
	if g == nil || g.off {
		return
	}
	addFloat(&g.bits, v)
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark.
func (g *Gauge) SetMax(v float64) {
	if g == nil || g.off {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		niu := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, niu) {
			return
		}
	}
}

// metric type tags for exposition.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one metric name with its help text and series (one per label
// combination).
type family struct {
	name, help, typ string
	series          map[string]any // label-string -> *Counter | *Gauge | *Histogram
}

// Registry holds metric families. All methods are safe for concurrent
// use; Get-or-create registration takes the registry lock, metric
// updates never do.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	events   *EventLog
	off      bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Discard returns a registry whose metrics silently drop every update —
// the zero-overhead baseline instrumented code is benchmarked against.
func Discard() *Registry {
	r := NewRegistry()
	r.off = true
	return r
}

// Events returns the registry's health-event log, creating it on first
// use (capacity DefaultEventCapacity). On a Discard registry the log
// drops every event, matching the metric behavior.
func (r *Registry) Events() *EventLog {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.events == nil {
		r.events = NewEventLog(DefaultEventCapacity)
		r.events.off = r.off
	}
	return r.events
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level
// instrumentation (pipesim, core defaults) records into.
func Default() *Registry { return defaultRegistry }

// labelString renders "k1=\"v1\",k2=\"v2\"" from a flat key/value list.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	var b strings.Builder
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	return b.String()
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register returns the family, creating it on first use and panicking on
// a type conflict (a programmer error, like registering the same expvar
// twice).
func (r *Registry) register(name, help, typ string) *family {
	if strictNames && !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// Counter returns the counter for the family name and label pairs
// (flat "key", "value" list), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.register(name, help, typeCounter)
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := f.series[ls]; ok {
		return m.(*Counter)
	}
	c := &Counter{off: r.off}
	f.series[ls] = c
	return c
}

// Gauge returns the gauge for the family name and label pairs, creating
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.register(name, help, typeGauge)
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := f.series[ls]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{off: r.off}
	f.series[ls] = g
	return g
}

// Histogram returns the histogram for the family name and label pairs,
// creating it with the given bucket upper bounds on first use (nil =
// DefSecondsBuckets). Buckets are fixed at creation; later calls reuse
// the first set.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	f := r.register(name, help, typeHistogram)
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := f.series[ls]; ok {
		return m.(*Histogram)
	}
	h := newHistogram(buckets)
	h.off = r.off
	f.series[ls] = h
	return h
}

// Snapshot returns every series as renderedName -> value, where
// histograms contribute their _count, _sum, and per-quantile pseudo
// series. Used by the expvar bridge and tests; the Prometheus text
// exposition is WritePrometheus. Values are finite: NaN/Inf (e.g. a
// gauge set to a division by zero) are reported as 0 so the map always
// survives json.Marshal, which rejects NaN.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.families {
		for ls, m := range f.series {
			full := name
			if ls != "" {
				full = name + "{" + ls + "}"
			}
			switch v := m.(type) {
			case *Counter:
				out[full] = finite(v.Value())
			case *Gauge:
				out[full] = finite(v.Value())
			case *Histogram:
				out[full+"_count"] = float64(v.Count())
				out[full+"_sum"] = finite(v.Sum())
				out[full+"_p50"] = finite(v.Quantile(0.5))
				out[full+"_p99"] = finite(v.Quantile(0.99))
			}
		}
	}
	return out
}

// finite maps NaN and ±Inf to 0, the defined value for series that have
// no meaningful sample yet.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// familyView is a stable copy of one family's structure for exposition:
// the series maps are only mutated under the registry lock, so the view
// snapshots keys and metric pointers (whose values are atomics and safe
// to read lock-free).
type familyView struct {
	name, help, typ string
	labels          []string // sorted label strings
	metrics         []any    // parallel to labels
}

// view returns the families in name order, each with its series sorted —
// the deterministic iteration the text exposition and golden tests rely
// on.
func (r *Registry) view() []familyView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]familyView, 0, len(r.families))
	for _, f := range r.families {
		fv := familyView{name: f.name, help: f.help, typ: f.typ}
		for k := range f.series {
			fv.labels = append(fv.labels, k)
		}
		sort.Strings(fv.labels)
		for _, k := range fv.labels {
			fv.metrics = append(fv.metrics, f.series[k])
		}
		out = append(out, fv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
