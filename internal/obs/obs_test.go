package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-7) // counters are monotone: negative deltas dropped
	if got := c.Value(); got != 3.5 {
		t.Fatalf("Value = %v, want 3.5", got)
	}
	// Same name + labels returns the same counter.
	if r.Counter("c_total", "help") != c {
		t.Fatal("registry did not dedup the counter")
	}
	// Different labels are a different series.
	if r.Counter("c_total", "help", "k", "v") == c {
		t.Fatal("labelled series must be distinct")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("Value = %v, want 3", got)
	}
	g.SetMax(1) // below current: no change
	if got := g.Value(); got != 3 {
		t.Fatalf("SetMax lowered the gauge to %v", got)
	}
	g.SetMax(10)
	if got := g.Value(); got != 10 {
		t.Fatalf("SetMax = %v, want 10", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var l *JSONL
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	if err := l.Log(struct{}{}); err != nil {
		t.Fatalf("nil JSONL Log: %v", err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be 0")
	}
}

func TestDiscardRegistryDropsUpdates(t *testing.T) {
	r := Discard()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	c.Add(5)
	g.Set(5)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("discard registry must drop all updates")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter must panic")
		}
	}()
	r.Gauge("m", "")
}

// TestConcurrentHammering drives every metric kind from many goroutines;
// run under -race this is the registry's thread-safety regression test,
// and the final values check that no update was lost.
func TestConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const iters = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Mix registration (map access) with updates (atomics).
			c := r.Counter("hammer_total", "")
			g := r.Gauge("hammer_gauge", "")
			hwm := r.Gauge("hammer_hwm", "")
			h := r.Histogram("hammer_seconds", "", nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				hwm.SetMax(float64(w*iters + i))
				h.Observe(float64(i%10) * 1e-3)
				if i%100 == 0 {
					r.Snapshot()
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hammer_total", "").Value(); got != workers*iters {
		t.Fatalf("counter %v, want %d", got, workers*iters)
	}
	if got := r.Gauge("hammer_gauge", "").Value(); got != workers*iters {
		t.Fatalf("gauge %v, want %d", got, workers*iters)
	}
	if got := r.Gauge("hammer_hwm", "").Value(); got != workers*iters-1 {
		t.Fatalf("high-water mark %v, want %d", got, workers*iters-1)
	}
	if got := r.Histogram("hammer_seconds", "", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count %v, want %d", got, workers*iters)
	}
}

// TestHistogramQuantileAccuracy checks the linear-interpolation estimate
// against the exact quantiles of a known sample set: the estimate must be
// within one bucket width.
func TestHistogramQuantileAccuracy(t *testing.T) {
	h := newHistogram(LinearBuckets(0.01, 0.01, 100)) // [0.01, 1.00] in 0.01 steps
	rng := rand.New(rand.NewSource(7))
	n := 10000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = rng.Float64() // uniform on [0,1)
		h.Observe(samples[i])
	}
	const width = 0.01
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := h.Quantile(q)
		want := q // uniform distribution: quantile ~= q
		if math.Abs(got-want) > 2*width {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", q, got, want, 2*width)
		}
	}
	if newHistogram(nil).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0, never NaN")
	}
	// Overflow samples report the largest finite bound.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want 2", got)
	}
}

// TestPrometheusGolden locks the text exposition byte-for-byte: families
// sorted by name, series sorted by labels, histograms expanded into
// cumulative buckets plus _sum and _count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("avgpipe_ops_total", "Ops executed.", "stage", "1").Add(3)
	r.Counter("avgpipe_ops_total", "Ops executed.", "stage", "0").Add(2)
	r.Gauge("avgpipe_depth", "Queue depth.").Set(4)
	h := r.Histogram("avgpipe_lat_seconds", "Latency.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP avgpipe_depth Queue depth.`,
		`# TYPE avgpipe_depth gauge`,
		`avgpipe_depth 4`,
		`# HELP avgpipe_lat_seconds Latency.`,
		`# TYPE avgpipe_lat_seconds histogram`,
		`avgpipe_lat_seconds_bucket{le="0.5"} 1`,
		`avgpipe_lat_seconds_bucket{le="1"} 2`,
		`avgpipe_lat_seconds_bucket{le="+Inf"} 3`,
		`avgpipe_lat_seconds_sum 6`,
		`avgpipe_lat_seconds_count 3`,
		`# HELP avgpipe_ops_total Ops executed.`,
		`# TYPE avgpipe_ops_total counter`,
		`avgpipe_ops_total{stage="0"} 2`,
		`avgpipe_ops_total{stage="1"} 3`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// And the validator accepts its own renderer's output.
	samples, err := ParsePrometheus(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ParsePrometheus rejected own output: %v", err)
	}
	if samples != 8 {
		t.Fatalf("samples = %d, want 8", samples)
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"name not-a-float\n",
		`bad{unclosed="x` + "\n",
		`bad{k=unquoted} 1` + "\n",
		`bad{k="v" j="w"} 1` + "\n", // missing comma
		`0leading_digit 1` + "\n",
		"# BOGUS comment\n",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePrometheus accepted %q", bad)
		}
	}
	// Valid corner cases.
	ok := "# HELP a b\n# TYPE a counter\na 1\na{x=\"y\",z=\"w, with comma\"} 2.5e-3\n"
	samples, err := ParsePrometheus(strings.NewReader(ok))
	if err != nil || samples != 2 {
		t.Fatalf("valid input: samples=%d err=%v", samples, err)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	r.Gauge("g", "", "k", "v").Set(7)
	h := r.Histogram("h", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	s := r.Snapshot()
	if s["c_total"] != 2 {
		t.Fatalf("counter snapshot %v", s["c_total"])
	}
	if s[`g{k="v"}`] != 7 {
		t.Fatalf("gauge snapshot %v", s[`g{k="v"}`])
	}
	if s["h_count"] != 2 || s["h_sum"] != 5.5 {
		t.Fatalf("histogram snapshot count=%v sum=%v", s["h_count"], s["h_sum"])
	}
}

// TestEmptyHistogramStaysFinite is the regression gate for the NaN
// leak: an empty (or single-sample) histogram must never put NaN/Inf
// into quantiles, the expvar snapshot (which json.Marshal rejects), or
// the Prometheus exposition.
func TestEmptyHistogramStaysFinite(t *testing.T) {
	r := NewRegistry()
	empty := r.Histogram("empty_seconds", "Never observed.", []float64{1, 10})
	single := r.Histogram("single_seconds", "Observed once.", []float64{1, 10})
	single.Observe(0.5)

	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := empty.Quantile(q); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("empty histogram q%v = %v", q, v)
		}
		if v := single.Quantile(q); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("single-sample histogram q%v = %v", q, v)
		}
	}

	// The expvar bridge feeds json.Marshal, which errors on NaN/Inf.
	if _, err := json.Marshal(r.Snapshot()); err != nil {
		t.Fatalf("snapshot with empty histogram does not marshal: %v", err)
	}
	for k, v := range r.Snapshot() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("snapshot key %s = %v", k, v)
		}
	}

	// The exposition and the structured export stay parseable too.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePrometheus(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if v, err := strconv.ParseFloat(val, 64); err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("exposition value %q in line %q (err %v)", val, line, err)
		}
	}
	if _, err := json.Marshal(r.Export()); err != nil {
		t.Fatalf("export with empty histogram does not marshal: %v", err)
	}
}
