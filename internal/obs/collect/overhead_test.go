package collect_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"avgpipe/internal/core"
	netx "avgpipe/internal/net"
	"avgpipe/internal/obs"
	"avgpipe/internal/obs/collect"
	"avgpipe/internal/workload"
)

// flushEvery is the gate's publish duty cycle: one full
// snapshot+events+trace flush per 5 training steps. At the bench
// workload's ~10ms steps that is one flush every ~50ms — 20x the
// frequency the default 1s publish interval would produce, so the gate
// is a conservative bound on what a deployed publisher costs.
const flushEvery = 5

// TestCollectorOverheadGate is the bench-smoke gate for the telemetry
// plane: publishing snapshots to a live collector at flushEvery duty
// cycle must cost less than the collector_overhead_limit fraction of
// step time recorded in BENCH_obs.json.
//
// The two sides are measured separately — per-flush cost from a tight
// flush loop, per-step cost from a bare training run, both min-of-reps
// — and the gate compares their ratio. Subtracting two full
// training-run wall clocks instead does not work: CI-box noise is
// ±10-15% per run while the true telemetry delta is ~1%, so a
// difference gate flakes in both directions (the live-vs-discard notes
// in BENCH_obs.json record the same floor for the registry overhead).
//
// Run via `make bench-smoke` / `make ci` with AVGPIPE_BENCH_COLLECT=1;
// skipped otherwise because wall-clock measurement under
// `go test ./...` parallelism is meaningless.
func TestCollectorOverheadGate(t *testing.T) {
	if os.Getenv("AVGPIPE_BENCH_COLLECT") == "" {
		t.Skip("set AVGPIPE_BENCH_COLLECT=1 to run the collector-overhead gate")
	}

	raw, err := os.ReadFile("../../../BENCH_obs.json")
	if err != nil {
		t.Fatalf("reading BENCH_obs.json: %v", err)
	}
	var baseline struct {
		Results struct {
			CollectorOverheadLimit float64 `json:"collector_overhead_limit"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parsing BENCH_obs.json: %v", err)
	}
	limit := baseline.Results.CollectorOverheadLimit
	if limit <= 0 {
		t.Fatal("BENCH_obs.json carries no collector_overhead_limit")
	}

	const reps = 5
	step, flush := 0.0, 0.0
	for rep := 0; rep < reps; rep++ {
		if s := meanStep(t, rep, 30); step == 0 || s < step {
			step = s
		}
		if f := meanFlush(t, rep, 50); flush == 0 || f < flush {
			flush = f
		}
	}

	overhead := flush / (flushEvery * step)
	t.Logf("step %.3fms, flush %.3fms, overhead at 1-in-%d duty cycle %.2f%% (limit %.0f%%)",
		step*1e3, flush*1e3, flushEvery, overhead*100, limit*100)
	if overhead > limit {
		t.Fatalf("collector overhead %.2f%% exceeds the %.0f%% budget in BENCH_obs.json",
			overhead*100, limit*100)
	}
}

// benchTrainer builds the gate's fixed training workload.
func benchTrainer(t testing.TB, reg *obs.Registry) *core.Trainer {
	t.Helper()
	trainer, err := core.NewTrainer(core.TrainerConfig{
		Task: workload.TranslationTask(), Pipelines: 2, Micro: 4, StageCount: 2, Seed: 21, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return trainer
}

// meanStep trains `steps` rounds without telemetry and returns the mean
// step wall time.
func meanStep(t *testing.T, rep, steps int) float64 {
	t.Helper()
	trainer := benchTrainer(t, obs.NewRegistry())
	defer trainer.Close()
	trainer.Step() // warm caches and lazily-built state before timing
	start := time.Now()
	for s := 0; s < steps; s++ {
		trainer.Step()
	}
	return time.Since(start).Seconds() / float64(steps)
}

// meanFlush runs `flushes` back-to-back Publisher.Flush calls against a
// live in-process collector and returns the mean wall time per flush —
// the full telemetry cost: snapshot export, JSON marshal, wire send,
// and (since the loop saturates the channel) the collector's ingest.
func meanFlush(t *testing.T, rep, flushes int) float64 {
	t.Helper()
	reg := obs.NewRegistry()
	trainer := benchTrainer(t, reg)
	defer trainer.Close()
	tracer := obs.NewTracer("overhead")
	trainer.Averager().SetTracer(tracer)
	for s := 0; s < 3; s++ {
		trainer.Step() // populate every trainer family and some spans
	}
	tr := netx.NewInProc(16)
	col, err := collect.NewCollector(collect.CollectorConfig{
		Transport: tr, Listen: fmt.Sprintf("overhead-%d", rep),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	pub, err := collect.NewPublisher(ctx, collect.PublisherConfig{
		Transport: tr, Addr: col.Addr(), Registry: reg, Tracer: tracer,
	})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Flush(); err != nil { // warm the path before timing
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < flushes; i++ {
		if err := pub.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start).Seconds() / float64(flushes)
}

// BenchmarkPublisherFlush isolates the per-flush cost (snapshot export,
// JSON marshal, wire send, collector ingest) for profiling; the gate
// above is what CI enforces.
func BenchmarkPublisherFlush(b *testing.B) {
	reg := obs.NewRegistry()
	trainer := benchTrainer(b, reg)
	defer trainer.Close()
	for s := 0; s < 3; s++ {
		trainer.Step()
	}
	tr := netx.NewInProc(16)
	col, err := collect.NewCollector(collect.CollectorConfig{Transport: tr, Listen: "flush-bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer col.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	pub, err := collect.NewPublisher(ctx, collect.PublisherConfig{
		Transport: tr, Addr: col.Addr(), Registry: reg,
	})
	cancel()
	if err != nil {
		b.Fatal(err)
	}
	defer pub.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}
