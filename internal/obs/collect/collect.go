package collect

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	netx "avgpipe/internal/net"
	"avgpipe/internal/obs"
)

// DefaultStragglerThreshold is the relative slowdown (mean step time vs
// the cluster median) above which a replica is flagged as a straggler.
const DefaultStragglerThreshold = 0.5

// CollectorConfig configures the cluster telemetry collector.
type CollectorConfig struct {
	// Transport accepts publisher sessions; Listen is the ingest address
	// (":0" for an ephemeral TCP port).
	Transport netx.Transport
	Listen    string
	// Expect is the replica count that must report a snapshot before
	// /readyz flips to ready; 0 means ready immediately.
	Expect int
	// Registry, when set, receives the collector's own operational
	// metrics and is included (unlabeled) in the merged exposition.
	Registry *obs.Registry
	// JSONL, when set, receives one JSON line per ingested snapshot and
	// per health event.
	JSONL io.Writer
	// StragglerThreshold overrides DefaultStragglerThreshold; negative
	// disables straggler detection.
	StragglerThreshold float64
	// EventCapacity bounds the retained merged event stream; 0 means
	// obs.DefaultEventCapacity.
	EventCapacity int
}

// replicaState is everything the collector retains about one replica.
type replicaState struct {
	snap      Snapshot
	hasSnap   bool
	trace     []obs.TraceEvent
	connected int  // live connections (reconnects overlap briefly)
	straggler bool // currently flagged by straggler detection
}

// Collector ingests per-replica telemetry streams and serves the merged
// cluster view. Construct with NewCollector; Close stops the accept
// loop and drains connection handlers.
type Collector struct {
	cfg      CollectorConfig
	ln       netx.Listener
	health   *obs.Health
	events   *obs.EventLog
	maxTrace int

	framesIn  *obs.Counter
	snapsIn   *obs.Counter
	eventsIn  *obs.Counter
	replicasG *obs.Gauge

	mu       sync.Mutex
	replicas map[int]*replicaState
	jsonlErr bool // stop writing JSONL after the first failure

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewCollector binds the ingest listener and starts accepting publisher
// sessions.
func NewCollector(cfg CollectorConfig) (*Collector, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("collect: collector needs a Transport")
	}
	if cfg.StragglerThreshold == 0 {
		cfg.StragglerThreshold = DefaultStragglerThreshold
	}
	if cfg.EventCapacity <= 0 {
		cfg.EventCapacity = obs.DefaultEventCapacity
	}
	ln, err := cfg.Transport.Listen(cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("collect: listen %s: %w", cfg.Listen, err)
	}
	c := &Collector{
		cfg:      cfg,
		ln:       ln,
		health:   obs.NewHealth(),
		events:   obs.NewEventLog(cfg.EventCapacity),
		maxTrace: 1 << 18, // per-replica trace-event retention cap
		replicas: make(map[int]*replicaState),
	}
	if reg := cfg.Registry; reg != nil {
		c.framesIn = reg.Counter("avgpipe_collector_frames_total",
			"Telemetry frames ingested by the collector.")
		c.snapsIn = reg.Counter("avgpipe_collector_snapshots_total",
			"Metric snapshots ingested by the collector.")
		c.eventsIn = reg.Counter("avgpipe_collector_events_total",
			"Health events ingested by the collector.")
		c.replicasG = reg.Gauge("avgpipe_collector_connected_replicas",
			"Replicas with a live telemetry session.")
	}
	if cfg.Expect > 0 {
		c.health.SetNotReady(fmt.Sprintf("0/%d replicas reporting", cfg.Expect))
	} else {
		c.health.SetReady()
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	c.wg.Add(1)
	go c.acceptLoop(ctx)
	return c, nil
}

// Addr returns the bound ingest address (the actual port for ":0").
func (c *Collector) Addr() string { return c.ln.Addr() }

// Health exposes the readiness state for embedding in a larger handler.
func (c *Collector) Health() *obs.Health { return c.health }

func (c *Collector) acceptLoop(ctx context.Context) {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept(ctx)
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleConn(ctx, conn)
		}()
	}
}

// handleConn runs one publisher session: hello, then a stream of clock
// pings, snapshots, events, and trace batches until the peer hangs up.
func (c *Collector) handleConn(ctx context.Context, conn netx.Conn) {
	defer conn.Close()
	hello, err := conn.Recv(ctx)
	if err != nil || hello.Type != netx.FrameHello {
		return
	}
	replica := int(hello.Replica)
	c.connect(replica)
	defer c.disconnect(replica)
	for {
		f, err := conn.Recv(ctx)
		if err != nil {
			return
		}
		c.framesIn.Inc()
		switch f.Type {
		case netx.FrameClockPing:
			if err := netx.AnswerClockPing(ctx, conn, replica, f); err != nil {
				return
			}
		case netx.FrameTelemetry:
			c.ingestSnapshot(f.Blob)
		case netx.FrameEvent:
			c.ingestEvents(f.Blob)
		case netx.FrameTrace:
			c.ingestTrace(replica, f.Blob)
		default:
			// Tolerate unknown-but-valid frames from newer publishers.
		}
	}
}

// state returns the replica's retained state, creating it on first use.
// Callers must hold c.mu.
func (c *Collector) state(replica int) *replicaState {
	st := c.replicas[replica]
	if st == nil {
		st = &replicaState{}
		c.replicas[replica] = st
	}
	return st
}

func (c *Collector) connect(replica int) {
	c.mu.Lock()
	st := c.state(replica)
	st.connected++
	first := st.connected == 1
	c.mu.Unlock()
	if first {
		c.replicasG.Add(1)
		c.emit(obs.Event{Type: obs.EventReplicaConnect, Replica: replica, Round: -1})
	}
}

func (c *Collector) disconnect(replica int) {
	c.mu.Lock()
	st := c.state(replica)
	st.connected--
	last := st.connected == 0
	c.mu.Unlock()
	if last {
		c.replicasG.Add(-1)
		c.emit(obs.Event{Type: obs.EventReplicaDisconnect, Replica: replica, Round: -1})
	}
}

// emit records a collector-side event and streams it to JSONL.
func (c *Collector) emit(ev obs.Event) {
	if ev.TimeUnixNano == 0 {
		ev.TimeUnixNano = time.Now().UnixNano()
	}
	c.events.Emit(ev)
	c.eventsIn.Inc()
	c.writeJSONL(struct {
		Kind  string    `json:"kind"`
		Event obs.Event `json:"event"`
	}{Kind: "event", Event: ev})
}

func (c *Collector) ingestSnapshot(blob []byte) {
	var snap Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		return
	}
	c.snapsIn.Inc()
	c.mu.Lock()
	st := c.state(snap.Replica)
	st.snap, st.hasSnap = snap, true
	reporting := 0
	for _, s := range c.replicas {
		if s.hasSnap {
			reporting++
		}
	}
	stragglers := c.detectStragglersLocked()
	c.mu.Unlock()
	for _, ev := range stragglers {
		c.emit(ev)
	}
	if c.cfg.Expect > 0 {
		if reporting >= c.cfg.Expect {
			c.health.SetReady()
		} else {
			c.health.SetNotReady(fmt.Sprintf("%d/%d replicas reporting", reporting, c.cfg.Expect))
		}
	}
	c.writeJSONL(struct {
		Kind     string             `json:"kind"`
		Replica  int                `json:"replica"`
		TS       int64              `json:"ts_unix_nano"`
		Families []obs.FamilyExport `json:"families"`
	}{Kind: "snapshot", Replica: snap.Replica, TS: snap.TimeUnixNano, Families: snap.Families})
}

func (c *Collector) ingestEvents(blob []byte) {
	var events []obs.Event
	if err := json.Unmarshal(blob, &events); err != nil {
		return
	}
	for _, ev := range events {
		c.emit(ev)
	}
}

func (c *Collector) ingestTrace(replica int, blob []byte) {
	var events []obs.TraceEvent
	if err := json.Unmarshal(blob, &events); err != nil {
		return
	}
	c.mu.Lock()
	st := c.state(replica)
	st.trace = append(st.trace, events...)
	if len(st.trace) > c.maxTrace {
		st.trace = st.trace[len(st.trace)-c.maxTrace:]
	}
	c.mu.Unlock()
}

// writeJSONL appends one line to the configured JSONL stream.
func (c *Collector) writeJSONL(v any) {
	if c.cfg.JSONL == nil {
		return
	}
	line, err := json.Marshal(v)
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jsonlErr {
		return
	}
	if _, err := c.cfg.JSONL.Write(append(line, '\n')); err != nil {
		c.jsonlErr = true
	}
}

// stepSecondsMean returns a replica's mean compute latency. It prefers
// the avgpipe_batch_seconds histogram (pipelined batch execution, which
// excludes the averaging barrier) because synchronous rounds spread a
// straggler's slowness to every replica's whole-step time; it falls
// back to avgpipe_train_step_seconds when the batch histogram is absent
// (e.g. a replica publishing a trimmed snapshot).
func stepSecondsMean(snap Snapshot) (float64, bool) {
	for _, name := range []string{"avgpipe_batch_seconds", "avgpipe_train_step_seconds"} {
		for _, f := range snap.Families {
			if f.Name != name {
				continue
			}
			for _, s := range f.Series {
				if s.Count > 0 {
					return s.Sum / float64(s.Count), true
				}
			}
		}
	}
	return 0, false
}

// firstValue returns the first series value of the named counter/gauge
// family in a replica's snapshot (per-replica registries carry at most
// one series per trainer family).
func firstValue(snap Snapshot, name string) (float64, bool) {
	for _, f := range snap.Families {
		if f.Name != name {
			continue
		}
		for _, s := range f.Series {
			return s.Value, true
		}
	}
	return 0, false
}

// stragglerScores returns, per replica, the relative slowdown of its
// mean step time against the cluster median (0 = at or below median).
// Callers must hold c.mu.
func (c *Collector) stragglerScoresLocked() map[int]float64 {
	means := make(map[int]float64)
	for id, st := range c.replicas {
		if !st.hasSnap {
			continue
		}
		if m, ok := stepSecondsMean(st.snap); ok && m > 0 {
			means[id] = m
		}
	}
	if len(means) < 2 {
		return nil
	}
	sorted := make([]float64, 0, len(means))
	for _, m := range means {
		sorted = append(sorted, m)
	}
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	if median <= 0 {
		return nil
	}
	scores := make(map[int]float64, len(means))
	for id, m := range means {
		score := m/median - 1
		if score < 0 {
			score = 0
		}
		scores[id] = score
	}
	return scores
}

// detectStragglersLocked updates straggler flags with hysteresis (flag
// above threshold, clear below half of it) and returns the
// straggler_detected events to emit. Callers must hold c.mu.
func (c *Collector) detectStragglersLocked() []obs.Event {
	if c.cfg.StragglerThreshold < 0 {
		return nil
	}
	var out []obs.Event
	for id, score := range c.stragglerScoresLocked() {
		st := c.replicas[id]
		switch {
		case !st.straggler && score > c.cfg.StragglerThreshold:
			st.straggler = true
			out = append(out, obs.Event{
				Type: obs.EventStragglerDetected, Replica: id, Round: -1, Value: score,
				Detail: fmt.Sprintf("mean batch time %.0f%% above cluster median", score*100),
			})
		case st.straggler && score < c.cfg.StragglerThreshold/2:
			st.straggler = false
		}
	}
	return out
}

// MergedFamilies returns the cluster-level metric families: every
// replica's snapshot with `replica="id"` injected into each series,
// plus the collector's own registry and the derived cross-replica
// series.
func (c *Collector) MergedFamilies() []obs.FamilyExport {
	c.mu.Lock()
	defer c.mu.Unlock()

	byName := make(map[string]*obs.FamilyExport)
	var order []string
	add := func(f obs.FamilyExport, series []obs.SeriesExport) {
		fam := byName[f.Name]
		if fam == nil {
			fam = &obs.FamilyExport{Name: f.Name, Help: f.Help, Type: f.Type}
			byName[f.Name] = fam
			order = append(order, f.Name)
		}
		fam.Series = append(fam.Series, series...)
	}

	ids := make([]int, 0, len(c.replicas))
	for id := range c.replicas {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	connected := 0
	for _, id := range ids {
		st := c.replicas[id]
		if st.connected > 0 {
			connected++
		}
		if !st.hasSnap {
			continue
		}
		for _, f := range st.snap.Families {
			series := make([]obs.SeriesExport, len(f.Series))
			for i, s := range f.Series {
				s.Labels = obs.WithLabel(s.Labels, "replica", fmt.Sprint(id))
				series[i] = s
			}
			add(f, series)
		}
	}
	if c.cfg.Registry != nil {
		for _, f := range c.cfg.Registry.Export() {
			add(f, f.Series)
		}
	}
	for _, f := range c.derivedFamiliesLocked(connected) {
		add(f, f.Series)
	}

	out := make([]obs.FamilyExport, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}

// derivedFamiliesLocked computes the cross-replica series that exist
// only at the collector: replica count, round staleness skew, loss
// divergence, per-stage bubble-fraction spread, and straggler scores.
// Callers must hold c.mu.
func (c *Collector) derivedFamiliesLocked(connected int) []obs.FamilyExport {
	fams := []obs.FamilyExport{{
		Name:   "avgpipe_cluster_replicas",
		Help:   "Replicas with a live telemetry session.",
		Type:   "gauge",
		Series: []obs.SeriesExport{{Value: float64(connected)}},
	}}

	spread := func(name string) (float64, bool) {
		lo, hi, n := 0.0, 0.0, 0
		for _, st := range c.replicas {
			if !st.hasSnap {
				continue
			}
			v, ok := firstValue(st.snap, name)
			if !ok {
				continue
			}
			if n == 0 || v < lo {
				lo = v
			}
			if n == 0 || v > hi {
				hi = v
			}
			n++
		}
		return hi - lo, n >= 2
	}
	if skew, ok := spread("avgpipe_train_round"); ok {
		fams = append(fams, obs.FamilyExport{
			Name:   "avgpipe_cluster_round_skew_rounds",
			Help:   "Spread (max-min) of completed averaging rounds across replicas.",
			Type:   "gauge",
			Series: []obs.SeriesExport{{Value: skew}},
		})
	}
	if div, ok := spread("avgpipe_train_loss"); ok {
		fams = append(fams, obs.FamilyExport{
			Name:   "avgpipe_cluster_loss_divergence",
			Help:   "Spread (max-min) of training loss across replicas.",
			Type:   "gauge",
			Series: []obs.SeriesExport{{Value: div}},
		})
	}

	// Per-stage bubble-fraction spread: group stage series by their
	// label set (stage="s"), take max-min across replicas per group.
	type bounds struct {
		lo, hi float64
		n      int
	}
	byStage := make(map[string]*bounds)
	for _, st := range c.replicas {
		if !st.hasSnap {
			continue
		}
		for _, f := range st.snap.Families {
			if f.Name != "avgpipe_stage_bubble_fraction" {
				continue
			}
			for _, s := range f.Series {
				b := byStage[s.Labels]
				if b == nil {
					b = &bounds{lo: s.Value, hi: s.Value}
					byStage[s.Labels] = b
				}
				if s.Value < b.lo {
					b.lo = s.Value
				}
				if s.Value > b.hi {
					b.hi = s.Value
				}
				b.n++
			}
		}
	}
	var stageSeries []obs.SeriesExport
	for ls, b := range byStage {
		if b.n >= 2 {
			stageSeries = append(stageSeries, obs.SeriesExport{Labels: ls, Value: b.hi - b.lo})
		}
	}
	if len(stageSeries) > 0 {
		fams = append(fams, obs.FamilyExport{
			Name:   "avgpipe_cluster_stage_bubble_spread",
			Help:   "Spread (max-min) of per-stage bubble fraction across replicas.",
			Type:   "gauge",
			Series: stageSeries,
		})
	}

	if scores := c.stragglerScoresLocked(); len(scores) > 0 {
		var series []obs.SeriesExport
		for id, score := range scores {
			series = append(series, obs.SeriesExport{
				Labels: obs.WithLabel("", "replica", fmt.Sprint(id)),
				Value:  score,
			})
		}
		fams = append(fams, obs.FamilyExport{
			Name:   "avgpipe_cluster_straggler_score",
			Help:   "Relative slowdown of each replica's mean step time vs the cluster median.",
			Type:   "gauge",
			Series: series,
		})
	}
	return fams
}

// WriteMergedMetrics renders the merged cluster families as Prometheus
// text.
func (c *Collector) WriteMergedMetrics(w io.Writer) error {
	return obs.WritePrometheusFamilies(w, c.MergedFamilies())
}

// Events returns a copy of the retained merged health-event stream in
// arrival order.
func (c *Collector) Events() []obs.Event {
	return c.events.Peek()
}

// Snapshots returns the latest snapshot per replica.
func (c *Collector) Snapshots() map[int]Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]Snapshot, len(c.replicas))
	for id, st := range c.replicas {
		if st.hasSnap {
			out[id] = st.snap
		}
	}
	return out
}

// MergedTrace merges the per-replica trace streams into one
// clock-aligned timeline. Publishers already shifted their spans into
// collector time, so no further offset correction is applied here.
func (c *Collector) MergedTrace() *obs.Tracer {
	c.mu.Lock()
	parts := make([]obs.ReplicaTrace, 0, len(c.replicas))
	ids := make([]int, 0, len(c.replicas))
	for id := range c.replicas {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := c.replicas[id]
		if len(st.trace) == 0 {
			continue
		}
		parts = append(parts, obs.ReplicaTrace{
			Replica: id,
			Events:  append([]obs.TraceEvent(nil), st.trace...),
		})
	}
	c.mu.Unlock()
	return obs.MergeTraces(parts)
}

// WriteMergedTrace writes the merged timeline as a Chrome trace JSON
// document.
func (c *Collector) WriteMergedTrace(w io.Writer) error {
	return c.MergedTrace().Write(w)
}

// Handler serves the collector's HTTP surface:
//
//	/metrics   merged cluster Prometheus exposition
//	/events    merged health-event stream as a JSON array
//	/trace     merged clock-aligned Chrome trace
//	/healthz   liveness
//	/readyz    readiness: 200 once Expect replicas report snapshots
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := c.WriteMergedMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events := c.Events()
		if events == nil {
			events = []obs.Event{}
		}
		json.NewEncoder(w).Encode(events)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := c.WriteMergedTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	obs.RegisterHealth(mux, c.health)
	return mux
}

// Close stops the accept loop and waits for connection handlers to
// drain.
func (c *Collector) Close() error {
	c.cancel()
	err := c.ln.Close()
	c.wg.Wait()
	return err
}
