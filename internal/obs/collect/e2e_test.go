package collect_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"avgpipe/internal/core"
	"avgpipe/internal/fault"
	netx "avgpipe/internal/net"
	"avgpipe/internal/nn"
	"avgpipe/internal/obs"
	"avgpipe/internal/obs/collect"
	"avgpipe/internal/tensor"
	"avgpipe/internal/workload"
)

// formMeshes assembles an n-replica TCP full mesh over loopback inside
// one test process, with clocks synced — exactly what n avgpipe-train
// processes would form.
func formMeshes(t *testing.T, n int) []*netx.Mesh {
	t.Helper()
	trs := make([]*netx.TCP, n)
	lns := make([]netx.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		trs[i] = netx.NewTCP(obs.NewRegistry())
		ln, err := trs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	meshes := make([]*netx.Mesh, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		peers := make(map[int]string)
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = addrs[j]
			}
		}
		wg.Add(1)
		go func(i int, peers map[int]string) {
			defer wg.Done()
			meshes[i], errs[i] = netx.FormMeshOn(ctx, trs[i], lns[i], i, peers)
			if errs[i] == nil {
				errs[i] = meshes[i].SyncClocks(ctx)
			}
		}(i, peers)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("replica %d mesh: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, m := range meshes {
			m.Close()
		}
	})
	return meshes
}

// TestE2EDistTelemetry is the acceptance test for the telemetry plane:
// a 2-replica TCP training job (one straggler by fault injection) pushes
// snapshots, events, and traces to one collector over TCP, and the
// merged view must be the union of the per-replica state, clock-aligned,
// with the straggler surfaced as health events.
func TestE2EDistTelemetry(t *testing.T) {
	const (
		n      = 2
		rounds = 3
	)
	task := workload.TranslationTask()
	meshes := formMeshes(t, n)

	col, err := collect.NewCollector(collect.CollectorConfig{
		Transport: netx.NewTCP(obs.NewRegistry()), Listen: "127.0.0.1:0",
		Expect: n, Registry: obs.NewRegistry(), StragglerThreshold: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	regs := make([]*obs.Registry, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		regs[p] = obs.NewRegistry()
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = func() error {
				var faults fault.Config
				if p == 1 {
					// Replica 1 is the straggler: every stage op slowed.
					// The delay is sized so the batch-time gap dwarfs the
					// baseline compute even when -race inflates it ~10x.
					faults = fault.Config{Seed: 9, StragglerProb: 1, StragglerDelay: 20 * time.Millisecond}
				}
				trainer, err := core.NewTrainer(core.TrainerConfig{
					Task: task, Pipelines: n, Micro: 2, StageCount: 2,
					Seed: 11, ClipNorm: 5, Obs: regs[p], Faults: faults,
					Dist: &core.DistConfig{ReplicaID: p, Mesh: meshes[p]},
				})
				if err != nil {
					return err
				}
				defer trainer.Close()
				tracer := obs.NewTracer("e2e")
				trainer.Averager().SetTracer(tracer)
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				pub, err := collect.NewPublisher(ctx, collect.PublisherConfig{
					Transport: netx.NewTCP(obs.NewRegistry()), Addr: col.Addr(),
					Replica: p, Registry: regs[p], Tracer: tracer,
				})
				cancel()
				if err != nil {
					return err
				}
				defer pub.Close()
				for r := 0; r < rounds; r++ {
					if _, err := trainer.StepContext(context.Background()); err != nil {
						return fmt.Errorf("round %d: %w", r, err)
					}
					if err := pub.Flush(); err != nil {
						return fmt.Errorf("flush after round %d: %w", r, err)
					}
				}
				return nil
			}()
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("replica %d: %v", p, err)
		}
	}
	waitFor(t, "both final snapshots", func() bool {
		snaps := col.Snapshots()
		for p := 0; p < n; p++ {
			if v, ok := trainRound(snaps, p); !ok || v < rounds {
				return false
			}
		}
		return true
	})

	// 1. The merged exposition is the union of the per-replica
	// snapshots: every series the replicas reported appears under its
	// replica label with the reported value.
	merged := col.MergedFamilies()
	for p, snap := range col.Snapshots() {
		for _, f := range snap.Families {
			for _, s := range f.Series {
				labels := obs.WithLabel(s.Labels, "replica", fmt.Sprint(p))
				if f.Type == "histogram" {
					if !hasSeries(merged, f.Name, labels) {
						t.Errorf("merged missing histogram %s{%s}", f.Name, labels)
					}
					continue
				}
				if v, ok := obs.SeriesValue(merged, f.Name, labels); !ok || v != s.Value {
					t.Errorf("merged %s{%s} = (%v, %v), want %v", f.Name, labels, v, ok, s.Value)
				}
			}
		}
	}
	// Dist-mode trainer metrics carry their own replica label, which the
	// collector must not duplicate.
	for p := 0; p < n; p++ {
		if v, ok := obs.SeriesValue(merged, "avgpipe_train_round", fmt.Sprintf(`replica="%d"`, p)); !ok || v != rounds {
			t.Errorf("avgpipe_train_round replica %d = (%v, %v), want %d", p, v, ok, rounds)
		}
	}
	if ready, reason := col.Health().Ready(); !ready {
		t.Errorf("collector not ready after full job: %s", reason)
	}

	// 2. The merged Chrome trace loads, and after clock-offset
	// correction every replica's row is monotonic with non-negative
	// rebased timestamps.
	var buf bytes.Buffer
	if err := col.WriteMergedTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not loadable JSON: %v", err)
	}
	lastTS := map[int]float64{}
	spansByReplica := map[int]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		if ev.TS < 0 {
			t.Fatalf("negative merged timestamp %v", ev.TS)
		}
		if ev.TS < lastTS[ev.PID] {
			t.Fatalf("replica row pid %d not monotonic: %v after %v", ev.PID, ev.TS, lastTS[ev.PID])
		}
		lastTS[ev.PID] = ev.TS
		spansByReplica[ev.PID/1000-1]++
	}
	for p := 0; p < n; p++ {
		if spansByReplica[p] == 0 {
			t.Errorf("no averaging spans from replica %d in the merged trace", p)
		}
	}

	// 3. The injected straggler surfaces as health events: the
	// injector's straggler_injected (shipped within the round it fired)
	// and the collector's own cross-replica straggler_detected.
	events := col.Events()
	if countEvents(events, obs.EventStragglerInjected, 1) == 0 {
		t.Error("no straggler_injected event from replica 1 reached the collector")
	}
	if countEvents(events, obs.EventStragglerDetected, 1) == 0 {
		t.Error("collector never flagged replica 1 as a straggler")
	}
	if countEvents(events, obs.EventStragglerInjected, 0) != 0 {
		t.Error("straggler events attributed to the healthy replica")
	}
}

func trainRound(snaps map[int]collect.Snapshot, p int) (float64, bool) {
	snap, ok := snaps[p]
	if !ok {
		return 0, false
	}
	for _, f := range snap.Families {
		if f.Name != "avgpipe_train_round" {
			continue
		}
		for _, s := range f.Series {
			return s.Value, true
		}
	}
	return 0, false
}

// TestRacePublishVsMembership hammers the snapshot/event publish path
// concurrently with Detach/Rejoin membership changes and live update
// traffic — the race-tier gate for the telemetry plane. The assertions
// are clean shutdown and that membership changes surface as events at
// the collector.
func TestRacePublishVsMembership(t *testing.T) {
	const (
		n      = 3
		rounds = 10
	)
	task := workload.TranslationTask()
	meshes := formMeshes(t, n)

	col, err := collect.NewCollector(collect.CollectorConfig{
		Transport: netx.NewTCP(obs.NewRegistry()), Listen: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	regs := make([]*obs.Registry, n)
	avgs := make([]*core.Averager, n)
	params := make([][]*nn.Param, n)
	for p := 0; p < n; p++ {
		regs[p] = obs.NewRegistry()
		m := task.NewModel(3)
		params[p] = m.Params()
		avgs[p] = core.NewAveragerObs(n, m.Params(), regs[p])
		avgs[p].AttachMesh(meshes[p])
		avgs[p].SetRoundDeadline(30 * time.Millisecond)
	}

	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			pub, err := collect.NewPublisher(ctx, collect.PublisherConfig{
				Transport: netx.NewTCP(obs.NewRegistry()), Addr: col.Addr(),
				Replica: p, Registry: regs[p], Interval: time.Millisecond,
			})
			cancel()
			if err != nil {
				t.Errorf("publisher %d: %v", p, err)
				return
			}
			pub.Start() // publish loop races the membership churn below
			defer pub.Close()
			a := avgs[p]
			for r := 0; r < rounds; r++ {
				if p == 2 && r%4 == 1 {
					a.Detach(p)
				}
				if p == 2 && r%4 == 3 {
					a.Rejoin(p, params[p])
				}
				if a.Live(p) {
					params[p][0].W.AxpyInPlace(0.001, tensor.Ones(params[p][0].W.Shape()...))
					if err := a.SubmitContext(context.Background(), p, r, params[p]); err != nil {
						t.Errorf("replica %d round %d: %v", p, r, err)
						return
					}
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				err := a.WaitRound(ctx, r)
				cancel()
				if err != nil {
					t.Errorf("replica %d: round %d never closed: %v", p, r, err)
					return
				}
				if err := pub.Flush(); err != nil {
					t.Errorf("replica %d flush: %v", p, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < n; p++ {
		avgs[p].Close()
	}
	waitFor(t, "detach and rejoin events", func() bool {
		events := col.Events()
		return countEvents(events, obs.EventReplicaDetach, 2) > 0 &&
			countEvents(events, obs.EventReplicaRejoin, 2) > 0
	})
}
