// Package collect is the cluster telemetry plane: each replica of a
// multi-process elastic-averaging job runs a Publisher that ships
// periodic metric snapshots, health events, and averaging-trace spans
// over the wire transport (FrameTelemetry / FrameEvent / FrameTrace
// blobs), and one Collector ingests N such streams, merges them into
// cluster-level metric families with a `replica` label, derives
// cross-replica series (round skew, loss divergence, bubble-fraction
// spread, straggler score), and serves one merged /metrics, an /events
// JSON stream, a merged clock-aligned Chrome trace, and a JSONL feed.
//
// Clock alignment: the publisher measures its offset to the collector's
// clock at connect time (round-trip midpoint, net.MeasureClockOffset)
// and corrects event and trace timestamps into collector time before
// shipping, so the collector merges already-aligned streams.
package collect

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	netx "avgpipe/internal/net"
	"avgpipe/internal/obs"
)

// Snapshot is the FrameTelemetry payload: one replica's full registry
// export plus its clock-offset estimate.
type Snapshot struct {
	Replica       int                `json:"replica"`
	TimeUnixNano  int64              `json:"ts_unix_nano"`
	ClockOffsetNS int64              `json:"clock_offset_ns"` // collector clock − replica clock
	Families      []obs.FamilyExport `json:"families"`
}

// PublisherConfig configures one replica's telemetry publisher.
type PublisherConfig struct {
	// Transport carries the telemetry session; Addr is the collector's
	// ingest address.
	Transport netx.Transport
	Addr      string
	// Replica is this process's replica id.
	Replica int
	// Registry is the metrics registry to snapshot; its event log is
	// drained into FrameEvent batches.
	Registry *obs.Registry
	// Interval paces the periodic publish loop (Start); 0 means
	// DefaultPublishInterval. Flush publishes on demand regardless.
	Interval time.Duration
	// Tracer, when set, ships newly recorded trace events each publish.
	// Spans must carry wall-clock microsecond timestamps (the averager's
	// submit/apply spans do); the publisher shifts them into collector
	// time before sending.
	Tracer *obs.Tracer
}

// DefaultPublishInterval paces Start's publish loop when the config
// leaves Interval zero.
const DefaultPublishInterval = time.Second

// Publisher ships one replica's telemetry to the collector. Flush is
// safe for concurrent use with the Start loop and with ongoing metric
// updates.
type Publisher struct {
	cfg    PublisherConfig
	conn   netx.Conn
	offset time.Duration // collector clock − local clock

	mu        sync.Mutex // serializes frame sends and trace cursor
	traceSent int

	stop      chan struct{}
	loopDone  chan struct{}
	startOnce sync.Once
	closeOnce sync.Once
}

// NewPublisher dials the collector, announces the replica with a hello
// frame, and measures the clock offset with one ping/pong round trip.
func NewPublisher(ctx context.Context, cfg PublisherConfig) (*Publisher, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("collect: publisher needs a Transport")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("collect: publisher needs a Registry")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultPublishInterval
	}
	conn, err := cfg.Transport.Dial(ctx, cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("collect: dial collector %s: %w", cfg.Addr, err)
	}
	hello := &netx.Frame{Type: netx.FrameHello, Replica: uint32(cfg.Replica)}
	if err := conn.Send(ctx, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("collect: hello: %w", err)
	}
	offset, _, err := netx.MeasureClockOffset(ctx, conn, cfg.Replica)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("collect: clock sync: %w", err)
	}
	return &Publisher{
		cfg: cfg, conn: conn, offset: offset,
		stop: make(chan struct{}), loopDone: make(chan struct{}),
	}, nil
}

// ClockOffset returns the measured collector-minus-local clock offset.
func (p *Publisher) ClockOffset() time.Duration { return p.offset }

// Start launches the periodic publish loop (idempotent). Close stops it
// after one final flush.
func (p *Publisher) Start() {
	p.startOnce.Do(func() {
		go func() {
			defer close(p.loopDone)
			tick := time.NewTicker(p.cfg.Interval)
			defer tick.Stop()
			for {
				select {
				case <-p.stop:
					return
				case <-tick.C:
					if p.Flush() != nil {
						return // collector gone; Close still flushes best-effort
					}
				}
			}
		}()
	})
}

// Flush publishes one snapshot frame, the drained event batch, and any
// newly recorded trace events.
func (p *Publisher) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	ctx := context.Background()

	snap := Snapshot{
		Replica:       p.cfg.Replica,
		TimeUnixNano:  time.Now().Add(p.offset).UnixNano(),
		ClockOffsetNS: p.offset.Nanoseconds(),
		Families:      p.cfg.Registry.Export(),
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("collect: marshal snapshot: %w", err)
	}
	err = p.conn.Send(ctx, &netx.Frame{
		Type: netx.FrameTelemetry, Replica: uint32(p.cfg.Replica), Blob: blob,
	})
	if err != nil {
		return fmt.Errorf("collect: send snapshot: %w", err)
	}

	if events := p.cfg.Registry.Events().Drain(); len(events) > 0 {
		// Shift into collector time so the collector's merged stream is
		// ordered on one clock.
		for i := range events {
			events[i].TimeUnixNano += p.offset.Nanoseconds()
		}
		blob, err := json.Marshal(events)
		if err != nil {
			return fmt.Errorf("collect: marshal events: %w", err)
		}
		err = p.conn.Send(ctx, &netx.Frame{
			Type: netx.FrameEvent, Replica: uint32(p.cfg.Replica), Blob: blob,
		})
		if err != nil {
			return fmt.Errorf("collect: send events: %w", err)
		}
	}

	if tr := p.cfg.Tracer; tr != nil {
		all := tr.Events()
		if len(all) > p.traceSent {
			fresh := make([]obs.TraceEvent, len(all)-p.traceSent)
			copy(fresh, all[p.traceSent:])
			offsetUS := float64(p.offset.Nanoseconds()) / 1e3
			for i := range fresh {
				if fresh[i].Phase != "M" {
					fresh[i].TS += offsetUS
				}
			}
			blob, err := json.Marshal(fresh)
			if err != nil {
				return fmt.Errorf("collect: marshal trace: %w", err)
			}
			err = p.conn.Send(ctx, &netx.Frame{
				Type: netx.FrameTrace, Replica: uint32(p.cfg.Replica), Blob: blob,
			})
			if err != nil {
				return fmt.Errorf("collect: send trace: %w", err)
			}
			p.traceSent = len(all)
		}
	}
	return nil
}

// Close stops the publish loop, ships one final snapshot so the
// collector sees the end-of-run state, and closes the connection.
func (p *Publisher) Close() error {
	var err error
	p.closeOnce.Do(func() {
		p.Start() // ensure loopDone closes even if Start was never called
		close(p.stop)
		<-p.loopDone
		err = p.Flush()
		p.conn.Close()
	})
	return err
}
