package collect_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	netx "avgpipe/internal/net"
	"avgpipe/internal/obs"
	"avgpipe/internal/obs/collect"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// lockedBuffer makes a bytes.Buffer safe against the collector's
// concurrent JSONL writes.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// replicaRegistry fabricates one replica's metrics: a round gauge, a
// loss gauge, a per-stage bubble fraction, and a step-latency histogram
// with the given mean.
func replicaRegistry(round, loss, bubble, stepMean float64) *obs.Registry {
	reg := obs.NewRegistry()
	reg.Gauge("avgpipe_train_round", "Rounds.").Set(round)
	reg.Gauge("avgpipe_train_loss", "Loss.").Set(loss)
	reg.Gauge("avgpipe_stage_bubble_fraction", "Bubble.", "stage", "0").Set(bubble)
	h := reg.Histogram("avgpipe_train_step_seconds", "Step latency.", []float64{0.01, 0.1, 1})
	for i := 0; i < 4; i++ {
		h.Observe(stepMean)
	}
	return reg
}

func newPublisher(t *testing.T, tr netx.Transport, addr string, replica int, reg *obs.Registry, tracer *obs.Tracer) *collect.Publisher {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	pub, err := collect.NewPublisher(ctx, collect.PublisherConfig{
		Transport: tr, Addr: addr, Replica: replica, Registry: reg, Tracer: tracer,
	})
	if err != nil {
		t.Fatalf("publisher %d: %v", replica, err)
	}
	t.Cleanup(func() { pub.Close() })
	return pub
}

// TestPublishCollectMerge is the collector's core contract: two
// replicas publish snapshots and the merged exposition is the union of
// their series under replica labels, plus the derived cluster series.
func TestPublishCollectMerge(t *testing.T) {
	tr := netx.NewInProc(64)
	jsonl := &lockedBuffer{}
	col, err := collect.NewCollector(collect.CollectorConfig{
		Transport: tr, Listen: "col", Expect: 2,
		Registry: obs.NewRegistry(), JSONL: jsonl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	if ready, _ := col.Health().Ready(); ready {
		t.Fatal("collector ready before any replica reported")
	}

	regs := []*obs.Registry{
		replicaRegistry(5, 1.0, 0.10, 0.02),
		replicaRegistry(7, 2.5, 0.30, 0.02),
	}
	regs[0].Events().Emit(obs.Event{Type: obs.EventStragglerInjected, Replica: 0, Round: -1, Stage: 1, Value: 0.005})
	for r, reg := range regs {
		if err := newPublisher(t, tr, "col", r, reg, nil).Flush(); err != nil {
			t.Fatalf("flush %d: %v", r, err)
		}
	}
	waitFor(t, "both snapshots", func() bool { return len(col.Snapshots()) == 2 })
	waitFor(t, "the injected event", func() bool {
		for _, ev := range col.Events() {
			if ev.Type == obs.EventStragglerInjected && ev.Replica == 0 {
				return true
			}
		}
		return false
	})

	if ready, reason := col.Health().Ready(); !ready {
		t.Fatalf("collector not ready after both replicas reported: %s", reason)
	}

	// Union: every per-replica counter/gauge series appears in the
	// merged families under its replica label; histogram families merge
	// with per-replica series too.
	merged := col.MergedFamilies()
	for r, reg := range regs {
		for _, f := range reg.Export() {
			for _, s := range f.Series {
				wantLabels := obs.WithLabel(s.Labels, "replica", fmt.Sprint(r))
				if f.Type == "histogram" {
					if !hasSeries(merged, f.Name, wantLabels) {
						t.Errorf("merged families missing %s{%s}", f.Name, wantLabels)
					}
					continue
				}
				if v, ok := obs.SeriesValue(merged, f.Name, wantLabels); !ok || v != s.Value {
					t.Errorf("merged %s{%s} = (%v, %v), want %v", f.Name, wantLabels, v, ok, s.Value)
				}
			}
		}
	}

	// Derived cluster series.
	for name, want := range map[string]float64{
		"avgpipe_cluster_replicas":          2,
		"avgpipe_cluster_round_skew_rounds": 2,   // rounds 7 - 5
		"avgpipe_cluster_loss_divergence":   1.5, // losses 2.5 - 1.0
	} {
		if v, ok := obs.SeriesValue(merged, name, ""); !ok || v != want {
			t.Errorf("%s = (%v, %v), want %v", name, v, ok, want)
		}
	}
	if v, ok := obs.SeriesValue(merged, "avgpipe_cluster_stage_bubble_spread", `stage="0"`); !ok || !near(v, 0.2) {
		t.Errorf("bubble spread = (%v, %v), want 0.2", v, ok)
	}

	// The merged exposition is valid Prometheus text.
	var buf bytes.Buffer
	if err := col.WriteMergedMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParsePrometheus(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("merged exposition does not parse: %v\n%s", err, buf.String())
	}

	// The JSONL stream carries both snapshot lines and the event.
	kinds := map[string]int{}
	dec := json.NewDecoder(strings.NewReader(jsonl.String()))
	for dec.More() {
		var line struct {
			Kind string `json:"kind"`
		}
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("jsonl: %v", err)
		}
		kinds[line.Kind]++
	}
	if kinds["snapshot"] != 2 || kinds["event"] == 0 {
		t.Fatalf("jsonl kinds = %v, want 2 snapshots and >=1 event", kinds)
	}
}

func hasSeries(fams []obs.FamilyExport, name, labels string) bool {
	for _, f := range fams {
		if f.Name != name {
			continue
		}
		for _, s := range f.Series {
			if s.Labels == labels {
				return true
			}
		}
	}
	return false
}

func near(v, want float64) bool { return v > want-1e-9 && v < want+1e-9 }

// TestStragglerDetection: a replica whose mean step time is far above
// the cluster median is flagged with one straggler_detected event
// (hysteresis: no re-flagging on subsequent snapshots).
func TestStragglerDetection(t *testing.T) {
	tr := netx.NewInProc(64)
	col, err := collect.NewCollector(collect.CollectorConfig{Transport: tr, Listen: "col"})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	fast := replicaRegistry(3, 1, 0, 0.01)
	slow := replicaRegistry(3, 1, 0, 0.10)
	pubFast := newPublisher(t, tr, "col", 0, fast, nil)
	pubSlow := newPublisher(t, tr, "col", 1, slow, nil)
	for i := 0; i < 3; i++ {
		if err := pubFast.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := pubSlow.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "straggler_detected", func() bool {
		return countEvents(col.Events(), obs.EventStragglerDetected, 1) >= 1
	})
	if n := countEvents(col.Events(), obs.EventStragglerDetected, 1); n != 1 {
		t.Fatalf("straggler flagged %d times, want exactly 1 (hysteresis)", n)
	}
	if countEvents(col.Events(), obs.EventStragglerDetected, 0) != 0 {
		t.Fatal("fast replica flagged as straggler")
	}
	if v, ok := obs.SeriesValue(col.MergedFamilies(), "avgpipe_cluster_straggler_score", `replica="1"`); !ok || v <= 0.5 {
		t.Fatalf("straggler score = (%v, %v), want > 0.5", v, ok)
	}
}

func countEvents(events []obs.Event, typ string, replica int) int {
	n := 0
	for _, ev := range events {
		if ev.Type == typ && ev.Replica == replica {
			n++
		}
	}
	return n
}

// TestMergedTraceFromPublishers ships averaging spans from two
// publishers and checks the merged timeline keeps per-replica rows and
// links the cross-replica delta.
func TestMergedTraceFromPublishers(t *testing.T) {
	tr := netx.NewInProc(64)
	col, err := collect.NewCollector(collect.CollectorConfig{Transport: tr, Listen: "col"})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	mkTracer := func(name string, ts float64, args map[string]any) *obs.Tracer {
		tc := obs.NewTracer("test")
		tc.Process(2, "averaging")
		tc.Span(2, 1, name, "avg", ts, 25, args)
		return tc
	}
	base := float64(time.Now().UnixNano()) / 1e3
	pub0 := newPublisher(t, tr, "col", 0, obs.NewRegistry(),
		mkTracer("submit", base, map[string]any{"round": 1, "replica": 0}))
	pub1 := newPublisher(t, tr, "col", 1, obs.NewRegistry(),
		mkTracer("apply", base+100, map[string]any{"round": 1, "from": 0}))
	if err := pub0.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pub1.Flush(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "both trace batches", func() bool {
		events := col.MergedTrace().Events()
		spans := 0
		for _, ev := range events {
			if ev.Phase == "X" {
				spans++
			}
		}
		return spans == 2
	})
	events := col.MergedTrace().Events()
	flows := 0
	for _, ev := range events {
		if ev.Phase == string(obs.FlowStart) || ev.Phase == string(obs.FlowEnd) {
			flows++
		}
		if ev.Phase == "X" {
			wantReplica := 0
			if ev.Name == "apply" {
				wantReplica = 1
			}
			if ev.PID != obs.MergePID(wantReplica, 2) {
				t.Errorf("%s span on pid %d, want %d", ev.Name, ev.PID, obs.MergePID(wantReplica, 2))
			}
		}
	}
	if flows != 2 {
		t.Fatalf("%d flow events, want 2 (submit→apply arrow)", flows)
	}
	var buf bytes.Buffer
	if err := col.WriteMergedTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("merged trace is not valid JSON")
	}
}

// TestCollectorHandler drives the HTTP surface end to end: merged
// /metrics, /events, /trace, and the probes.
func TestCollectorHandler(t *testing.T) {
	tr := netx.NewInProc(64)
	col, err := collect.NewCollector(collect.CollectorConfig{
		Transport: tr, Listen: "col", Expect: 1, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "0/1 replicas") {
		t.Fatalf("/readyz before ingest = (%d, %q)", code, body)
	}

	reg := replicaRegistry(2, 0.5, 0, 0.01)
	reg.Events().Emit(obs.Event{Type: obs.EventWatchdogStall, Replica: 0, Round: -1})
	if err := newPublisher(t, tr, "col", 0, reg, nil).Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "snapshot ingest", func() bool { return len(col.Snapshots()) == 1 })
	waitFor(t, "event ingest", func() bool { return len(col.Events()) > 0 })

	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz after ingest = %d", code)
	}
	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, `avgpipe_train_round{replica="0"} 2`) {
		t.Fatalf("/metrics = (%d):\n%s", code, body)
	}
	if _, err := obs.ParsePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	code, body = get("/events")
	var events []obs.Event
	if code != 200 || json.Unmarshal([]byte(body), &events) != nil {
		t.Fatalf("/events = (%d, %q)", code, body)
	}
	found := false
	for _, ev := range events {
		if ev.Type == obs.EventWatchdogStall {
			found = true
		}
	}
	if !found {
		t.Fatalf("/events missing the watchdog event: %+v", events)
	}
	code, body = get("/trace")
	if code != 200 || !json.Valid([]byte(body)) {
		t.Fatalf("/trace = (%d, valid=%v)", code, json.Valid([]byte(body)))
	}
}

// TestPublisherClockOffset: publisher and collector share one process
// clock, so the measured offset must be tiny.
func TestPublisherClockOffset(t *testing.T) {
	tr := netx.NewInProc(64)
	col, err := collect.NewCollector(collect.CollectorConfig{Transport: tr, Listen: "col"})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	pub := newPublisher(t, tr, "col", 0, obs.NewRegistry(), nil)
	if off := pub.ClockOffset(); off < -time.Second || off > time.Second {
		t.Fatalf("same-host clock offset %v is not plausible", off)
	}
}
