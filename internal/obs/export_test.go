package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestExportAndRenderFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("seen_total", "Things seen.").Add(3)
	reg.Gauge("depth", "Queue depth.", "q", "a").Set(2)
	reg.Gauge("depth", "Queue depth.", "q", "b").Set(5)
	reg.Histogram("lat_seconds", "Latency.", []float64{0.1, 1}).Observe(0.5)

	fams := reg.Export()
	if len(fams) != 3 {
		t.Fatalf("exported %d families, want 3", len(fams))
	}
	if v, ok := SeriesValue(fams, "seen_total", ""); !ok || v != 3 {
		t.Fatalf("seen_total = (%v, %v)", v, ok)
	}
	if v, ok := SeriesValue(fams, "depth", `q="b"`); !ok || v != 5 {
		t.Fatalf(`depth{q="b"} = (%v, %v)`, v, ok)
	}
	if _, ok := SeriesValue(fams, "absent", ""); ok {
		t.Fatal("absent family found")
	}

	// The export is wire-safe plain data.
	blob, err := json.Marshal(fams)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []FamilyExport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	// Rendering the round-tripped export matches the registry's own
	// Prometheus exposition byte for byte.
	var direct, viaExport bytes.Buffer
	if err := reg.WritePrometheus(&direct); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheusFamilies(&viaExport, back); err != nil {
		t.Fatal(err)
	}
	if direct.String() != viaExport.String() {
		t.Fatalf("export render diverges:\n--- direct ---\n%s--- via export ---\n%s",
			direct.String(), viaExport.String())
	}
	// And it survives the strict parser used across the obs tests.
	if _, err := ParsePrometheus(strings.NewReader(viaExport.String())); err != nil {
		t.Fatalf("rendered export does not parse: %v", err)
	}
}

func TestWithLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", `replica="2"`},
		{`stage="1"`, `replica="2",stage="1"`},
		{`replica="0"`, `replica="0"`}, // existing replica label wins
	}
	for _, tc := range cases {
		if got := WithLabel(tc.in, "replica", "2"); got != tc.want {
			t.Errorf("WithLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestMergedFamiliesRelabel is the collector's core merge invariant at
// the obs layer: relabeled series from two registries render into one
// exposition with disjoint replica labels.
func TestMergedFamiliesRelabel(t *testing.T) {
	var merged []FamilyExport
	for r := 0; r < 2; r++ {
		reg := NewRegistry()
		reg.Gauge("loss", "Training loss.").Set(float64(r + 1))
		for _, f := range reg.Export() {
			for i := range f.Series {
				f.Series[i].Labels = WithLabel(f.Series[i].Labels, "replica", string(rune('0'+r)))
			}
			merged = append(merged, f)
		}
	}
	var buf bytes.Buffer
	if err := WritePrometheusFamilies(&buf, merged); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`loss{replica="0"} 1`, `loss{replica="1"} 2`} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged exposition missing %q:\n%s", want, out)
		}
	}
}
