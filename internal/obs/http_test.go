package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

// TestHealthEndpoints: /healthz answers 200 while the process serves
// HTTP at all; /readyz follows the Health state machine and serves the
// not-ready reason with the 503.
func TestHealthEndpoints(t *testing.T) {
	reg := NewRegistry()
	h := NewHealth()
	handler := Handler(reg, WithHealth(h))

	if code, body := get(t, handler, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = (%d, %q), want (200, ok)", code, body)
	}
	if code, body := get(t, handler, "/readyz"); code != http.StatusServiceUnavailable ||
		body != "not ready: starting\n" {
		t.Fatalf("/readyz before ready = (%d, %q)", code, body)
	}

	h.SetNotReady("waiting for 2 peers")
	if code, body := get(t, handler, "/readyz"); code != http.StatusServiceUnavailable ||
		body != "not ready: waiting for 2 peers\n" {
		t.Fatalf("/readyz reason = (%d, %q)", code, body)
	}

	h.SetReady()
	if code, body := get(t, handler, "/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("/readyz after ready = (%d, %q)", code, body)
	}

	h.SetNotReady("mesh lost")
	if code, _ := get(t, handler, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after regression = %d, want 503", code)
	}
}

// TestHealthDefaults: without WithHealth both probes answer 200, and a
// nil *Health is always ready (the zero-config path must not panic).
func TestHealthDefaults(t *testing.T) {
	handler := Handler(NewRegistry())
	if code, _ := get(t, handler, "/healthz"); code != 200 {
		t.Fatalf("/healthz without health = %d", code)
	}
	if code, _ := get(t, handler, "/readyz"); code != 200 {
		t.Fatalf("/readyz without health = %d", code)
	}
	var h *Health
	if ready, reason := h.Ready(); !ready || reason != "" {
		t.Fatalf("nil health = (%v, %q), want ready", ready, reason)
	}
	h.SetReady()            // must not panic
	h.SetNotReady("reason") // must not panic
}
