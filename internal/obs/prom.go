package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE lines per family, one sample
// line per series, histograms expanded into _bucket/_sum/_count. Output
// is deterministic (families and series sorted) so golden tests can
// compare it byte-for-byte.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.view() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for i, ls := range f.labels {
			switch m := f.metrics[i].(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s %s\n", seriesRef(f.name, ls), fmtFloat(m.Value()))
			case *Gauge:
				fmt.Fprintf(bw, "%s %s\n", seriesRef(f.name, ls), fmtFloat(m.Value()))
			case *Histogram:
				m.forBuckets(func(le float64, cum uint64) {
					leStr := "+Inf"
					if !math.IsInf(le, 1) {
						leStr = fmtFloat(le)
					}
					withLE := ls
					if withLE != "" {
						withLE += ","
					}
					withLE += fmt.Sprintf("le=%q", leStr)
					fmt.Fprintf(bw, "%s %d\n", seriesRef(f.name+"_bucket", withLE), cum)
				})
				fmt.Fprintf(bw, "%s %s\n", seriesRef(f.name+"_sum", ls), fmtFloat(m.Sum()))
				fmt.Fprintf(bw, "%s %d\n", seriesRef(f.name+"_count", ls), m.Count())
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: write prometheus text: %w", err)
	}
	return nil
}

func seriesRef(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParsePrometheus validates Prometheus text exposition output, returning
// the number of sample lines. It checks that every non-comment line is
// `name[{labels}] value` with a well-formed metric name, balanced and
// quoted labels, and a parseable float value — the malformed-output
// check `make bench-smoke` and the golden tests run against live
// /metrics output.
func ParsePrometheus(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if !strings.HasPrefix(text, "# HELP ") && !strings.HasPrefix(text, "# TYPE ") {
				return samples, fmt.Errorf("obs: line %d: unknown comment %q", line, text)
			}
			continue
		}
		name, value, err := splitSample(text)
		if err != nil {
			return samples, fmt.Errorf("obs: line %d: %v", line, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return samples, fmt.Errorf("obs: line %d: bad value %q", line, value)
		}
		base, labels, ok := splitLabels(name)
		if !ok || !validName(base) {
			return samples, fmt.Errorf("obs: line %d: bad series %q", line, name)
		}
		if err := checkLabels(labels); err != nil {
			return samples, fmt.Errorf("obs: line %d: %v in %q", line, err, name)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, fmt.Errorf("obs: scan: %w", err)
	}
	return samples, nil
}

// splitSample separates the series reference from the value. The series
// may contain spaces only inside quoted label values.
func splitSample(text string) (series, value string, err error) {
	if i := strings.LastIndexByte(text, '}'); i >= 0 {
		rest := strings.TrimSpace(text[i+1:])
		if rest == "" {
			return "", "", fmt.Errorf("missing value after %q", text)
		}
		return text[:i+1], rest, nil
	}
	fields := strings.Fields(text)
	if len(fields) != 2 {
		return "", "", fmt.Errorf("want `name value`, got %q", text)
	}
	return fields[0], fields[1], nil
}

func splitLabels(series string) (base, labels string, ok bool) {
	open := strings.IndexByte(series, '{')
	if open < 0 {
		if strings.ContainsAny(series, "}\"=") {
			return "", "", false
		}
		return series, "", true
	}
	if !strings.HasSuffix(series, "}") {
		return "", "", false
	}
	return series[:open], series[open+1 : len(series)-1], true
}

func checkLabels(labels string) error {
	if labels == "" {
		return nil
	}
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return fmt.Errorf("bad label pair %q", rest)
		}
		key := rest[:eq]
		if !validName(key) {
			return fmt.Errorf("bad label name %q", key)
		}
		rest = rest[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value after %q", key)
		}
		// Find the closing quote, honouring escapes.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value after %q", key)
		}
		rest = rest[i+1:]
		if rest != "" {
			if rest[0] != ',' {
				return fmt.Errorf("missing comma after label %q", key)
			}
			rest = rest[1:]
		}
	}
	return nil
}
