package workload

import (
	"testing"

	"avgpipe/internal/nn"
	"avgpipe/internal/optim"
	"avgpipe/internal/tensor"
)

func TestCostModelsWellFormed(t *testing.T) {
	for _, w := range All() {
		if len(w.Layers) < 3 {
			t.Fatalf("%s: too few layers", w.Name)
		}
		for _, l := range w.Layers {
			if l.FwdFLOPs <= 0 || l.BwdFLOPs < l.FwdFLOPs {
				t.Fatalf("%s/%s: bad FLOPs fwd=%v bwd=%v", w.Name, l.Name, l.FwdFLOPs, l.BwdFLOPs)
			}
			if l.ParamBytes <= 0 || l.OutActBytes <= 0 || l.StashBytes < l.OutActBytes {
				t.Fatalf("%s/%s: bad bytes", w.Name, l.Name)
			}
		}
		if w.BatchSize <= 0 || w.SatSamples <= 0 || w.MaxPipelines < 2 {
			t.Fatalf("%s: bad config", w.Name)
		}
		if w.Cluster().Size() < 2 {
			t.Fatalf("%s: degenerate cluster", w.Name)
		}
	}
}

func TestGNMTScale(t *testing.T) {
	w := GNMT()
	// GNMT-class models are hundreds of MB of parameters and ~10 GFLOPs
	// of forward compute per sample.
	pb := w.TotalParamBytes()
	if pb < 200<<20 || pb > 2<<30 {
		t.Fatalf("GNMT params %d bytes implausible", pb)
	}
	if f := w.TotalFwdFLOPs(); f < 5e9 || f > 1e11 {
		t.Fatalf("GNMT fwd FLOPs %v implausible", f)
	}
}

func TestBERTScale(t *testing.T) {
	w := BERT()
	pb := w.TotalParamBytes()
	// BERT-large is ~330M params ≈ 1.3 GB.
	if pb < 800<<20 || pb > 3<<30 {
		t.Fatalf("BERT params %d bytes implausible", pb)
	}
}

func TestAWDSmallerThanOthers(t *testing.T) {
	awd, gnmt, bert := AWD(), GNMT(), BERT()
	if awd.TotalParamBytes() >= gnmt.TotalParamBytes() || awd.TotalParamBytes() >= bert.TotalParamBytes() {
		t.Fatal("AWD must be the small workload")
	}
	if awd.Cluster().Size() != 4 {
		t.Fatal("AWD runs on 4 GPUs of two nodes")
	}
}

func TestMakeStageAggregates(t *testing.T) {
	w := GNMT()
	full := w.MakeStage(0, len(w.Layers)-1)
	if full.FwdFLOPs != w.TotalFwdFLOPs() {
		t.Fatal("full stage must sum all FLOPs")
	}
	if full.ParamBytes != w.TotalParamBytes() {
		t.Fatal("full stage must sum all params")
	}
	a := w.MakeStage(0, 3)
	b := w.MakeStage(4, len(w.Layers)-1)
	if a.FwdFLOPs+b.FwdFLOPs != full.FwdFLOPs {
		t.Fatal("stage split must conserve FLOPs")
	}
	if a.OutActBytes != w.Layers[3].OutActBytes {
		t.Fatal("stage boundary activation must be the last layer's output")
	}
}

func TestMakeStageBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GNMT().MakeStage(5, 3)
}

func TestTasksTrainable(t *testing.T) {
	// Each statistical-efficiency task must make real progress within a
	// few batches of single-model training (the integration smoke test
	// for model+data pairing; full convergence is exercised in the
	// Fig. 14 experiment).
	for _, task := range Tasks() {
		task := task
		t.Run(task.Name, func(t *testing.T) {
			m := task.NewModel(1)
			gen := task.NewGen(2)
			var opt optim.Optimizer
			if task.UseSGD {
				opt = optim.NewSGD(task.LR)
			} else {
				opt = optim.NewAdam(task.LR)
			}
			eval := gen.EvalBatch()
			loss0, _ := Evaluate(m, eval, task.PerPosition)
			for i := 0; i < 100; i++ {
				b := gen.NextBatch(task.BatchSize)
				TrainStep(m, b)
				optim.ClipGradNorm(m.Params(), 5)
				opt.Step(m.Params())
				nn.ZeroGrads(m.Params())
			}
			loss1, _ := Evaluate(m, eval, task.PerPosition)
			if loss1 >= loss0*0.98 {
				t.Fatalf("no learning: loss %v -> %v", loss0, loss1)
			}
		})
	}
}

func TestTaskReached(t *testing.T) {
	acc := &Task{TargetAccuracy: 0.8}
	if acc.Reached(10, 0.79) || !acc.Reached(10, 0.81) {
		t.Fatal("accuracy target")
	}
	ls := &Task{TargetLoss: 1.5}
	if ls.Reached(1.6, 0) || !ls.Reached(1.4, 0) {
		t.Fatal("loss target")
	}
}

func TestModelSeedsIndependent(t *testing.T) {
	task := TranslationTask()
	a := task.NewModel(1)
	b := task.NewModel(2)
	d := tensor.Sub(a.Params()[0].W, b.Params()[0].W)
	if d.L2Norm() == 0 {
		t.Fatal("different seeds must give different replicas")
	}
	c := task.NewModel(1)
	if tensor.Sub(a.Params()[0].W, c.Params()[0].W).L2Norm() != 0 {
		t.Fatal("same seed must reproduce the model")
	}
}
