// Package workload defines the three evaluation workloads of the paper —
// GNMT (translation), BERT (sentence-pair classification), and AWD-LSTM
// (language modeling) — in two forms:
//
//   - analytic cost models (per-layer FLOPs, parameter bytes, activation
//     bytes) that drive the discrete-event pipeline simulator and
//     reproduce the paper's timing/memory/utilization figures; and
//   - scaled-down real models over synthetic corpora (models.go) that
//     train on CPU and reproduce the statistical-efficiency results.
//
// The cost models are calibrated to the paper's testbed mechanisms, not
// its absolute numbers: per-sample FLOPs and activation sizes follow the
// standard architecture formulas, and the kernel-saturation point is set
// so that baseline pipeline execution shows the ~60% peak utilization the
// paper reports for BERT (Fig. 2).
package workload

import (
	"fmt"

	"avgpipe/internal/cluster"
)

// LayerCost is the analytic cost of one model layer, all per training
// sample unless stated otherwise.
type LayerCost struct {
	Name string
	// FwdFLOPs and BwdFLOPs are the forward and backward compute cost.
	FwdFLOPs float64
	BwdFLOPs float64
	// ParamBytes is the layer's parameter storage (not per sample).
	ParamBytes int64
	// OutActBytes is the output activation shipped to the next layer —
	// the inter-stage communication payload when a partition boundary
	// falls after this layer.
	OutActBytes int64
	// StashBytes is the total activation state the layer must hold from
	// forward until its backward (includes the output).
	StashBytes int64
}

// Workload bundles a model's cost layers with its training configuration.
type Workload struct {
	Name      string
	Layers    []LayerCost
	BatchSize int
	// SatSamples calibrates the device kernel-efficiency half-saturation
	// point for this workload's per-sample cost.
	SatSamples float64
	// OptimStateFactor is bytes of optimizer state per parameter byte
	// (Adam: 2, SGD+momentum: 1, plain SGD/ASGD: 1 for the average).
	OptimStateFactor float64
	// Cluster is the testbed this workload runs on in the paper.
	Cluster func() *cluster.Cluster
	// MaxPipelines is the largest parallel-pipeline count the tuning
	// experiments consider (8 for GNMT, 4 for BERT/AWD per §7.3).
	MaxPipelines int
}

// TotalParamBytes sums parameter storage over all layers.
func (w *Workload) TotalParamBytes() int64 {
	var b int64
	for _, l := range w.Layers {
		b += l.ParamBytes
	}
	return b
}

// TotalFwdFLOPs sums per-sample forward FLOPs.
func (w *Workload) TotalFwdFLOPs() float64 {
	var f float64
	for _, l := range w.Layers {
		f += l.FwdFLOPs
	}
	return f
}

// Stage is a contiguous run of layers assigned to one GPU.
type Stage struct {
	// Name labels the stage, and First/Last give its layer range
	// [First, Last] inclusive.
	Name        string
	First, Last int
	// Aggregated per-sample costs.
	FwdFLOPs float64
	BwdFLOPs float64
	// StashBytes is per-sample activation state held between a
	// micro-batch's forward and backward on this stage.
	StashBytes int64
	// OutActBytes is the per-sample boundary activation sent downstream
	// (and whose gradient returns upstream).
	OutActBytes int64
	// ParamBytes is parameter storage.
	ParamBytes int64
}

// MakeStage aggregates layers [first, last] of w into a Stage.
func (w *Workload) MakeStage(first, last int) Stage {
	if first < 0 || last >= len(w.Layers) || first > last {
		panic(fmt.Sprintf("workload: stage [%d,%d] out of range for %d layers", first, last, len(w.Layers)))
	}
	s := Stage{Name: fmt.Sprintf("%s[%d:%d]", w.Name, first, last), First: first, Last: last}
	for i := first; i <= last; i++ {
		l := w.Layers[i]
		s.FwdFLOPs += l.FwdFLOPs
		s.BwdFLOPs += l.BwdFLOPs
		s.StashBytes += l.StashBytes
		s.ParamBytes += l.ParamBytes
	}
	s.OutActBytes = w.Layers[last].OutActBytes
	return s
}

const f32 = 4 // bytes per float32

// stashMult scales the analytic minimum of stashed activations up to what
// the PyTorch runtime actually holds between forward and backward: every
// intermediate op output, dropout masks, cuDNN/cuBLAS workspaces, and
// allocator slack. Calibrated so the baseline footprints match the
// paper's regime (PyTorch data parallelism near the top of device memory
// on BERT, PipeDream's full-batch multi-version stash overflowing it).
const stashMult = 8

// lstmLayer builds the cost entry for one LSTM layer.
func lstmLayer(name string, in, hidden, seqLen int) LayerCost {
	params := int64(4*hidden*(in+hidden)+4*hidden) * f32
	// 2 FLOPs per MAC; 4 gates of (in+hidden)→hidden per timestep.
	fwd := 2 * 4 * float64(hidden) * float64(in+hidden) * float64(seqLen)
	out := int64(seqLen*hidden) * f32
	// Stash: per timestep, four gate activations + cell + tanh(cell) +
	// input copy ≈ 6·hidden + in, times the runtime overhead factor.
	stash := int64(seqLen*(6*hidden+in)) * f32 * stashMult
	return LayerCost{Name: name, FwdFLOPs: fwd, BwdFLOPs: 2 * fwd,
		ParamBytes: params, OutActBytes: out, StashBytes: stash}
}

// transformerLayer builds the cost entry for one encoder block.
func transformerLayer(name string, hidden, ffDim, seqLen, heads int) LayerCost {
	params := int64(4*hidden*hidden+2*hidden*ffDim+4*hidden) * f32
	// QKVO projections (8·T·H²), FF (4·T·H·F), attention scores (4·T²·H).
	fwd := float64(seqLen) * (8*float64(hidden)*float64(hidden) +
		4*float64(hidden)*float64(ffDim)) * 2 / 2
	fwd += 4 * float64(seqLen) * float64(seqLen) * float64(hidden)
	out := int64(seqLen*hidden) * f32
	stash := (int64(seqLen*(8*hidden+ffDim))*f32 + int64(heads*seqLen*seqLen)*f32) * stashMult
	return LayerCost{Name: name, FwdFLOPs: fwd, BwdFLOPs: 2 * fwd,
		ParamBytes: params, OutActBytes: out, StashBytes: stash}
}

// embeddingLayer builds the cost entry for a token embedding.
func embeddingLayer(name string, vocab, dim, seqLen int) LayerCost {
	out := int64(seqLen*dim) * f32
	return LayerCost{Name: name, FwdFLOPs: 1e6, BwdFLOPs: 2e6,
		ParamBytes: int64(vocab*dim) * f32, OutActBytes: out, StashBytes: out * stashMult}
}

// projectionLayer builds the cost entry for an output vocabulary
// projection applied at every position.
func projectionLayer(name string, dim, vocab, seqLen int) LayerCost {
	fwd := 2 * float64(seqLen) * float64(dim) * float64(vocab)
	out := int64(seqLen*vocab) * f32
	return LayerCost{Name: name, FwdFLOPs: fwd, BwdFLOPs: 2 * fwd,
		ParamBytes: int64(dim*vocab) * f32, OutActBytes: out, StashBytes: out * stashMult}
}

// GNMT returns the cost model of Google's Neural Machine Translation:
// embedding, 8 stacked LSTM layers (4 encoder + 4 decoder), and a vocab
// projection. Batch size 128, Adam, 6 GPUs (§7 setup).
func GNMT() *Workload {
	const (
		vocab  = 32000
		hidden = 1024
		seqLen = 50
	)
	layers := []LayerCost{embeddingLayer("embedding", vocab, hidden, seqLen)}
	for i := 0; i < 8; i++ {
		side := "enc"
		if i >= 4 {
			side = "dec"
		}
		layers = append(layers, lstmLayer(fmt.Sprintf("%s-lstm%d", side, i%4), hidden, hidden, seqLen))
	}
	// GNMT trains with a sampled softmax: the projection's compute cost
	// covers the sampled candidate set per step, not the full 32k vocab
	// (the parameter matrix is still full-size). This keeps the output
	// stage comparable to an LSTM stage, as in PipeDream's GNMT partition.
	const sampledVocab = 12000
	proj := projectionLayer("projection", hidden, sampledVocab, seqLen)
	proj.ParamBytes = int64(hidden*vocab) * f32
	layers = append(layers, proj)
	return &Workload{
		Name: "GNMT", Layers: layers, BatchSize: 128,
		SatSamples: 16, OptimStateFactor: 2,
		Cluster: cluster.PaperTestbed, MaxPipelines: 8,
	}
}

// BERT returns the cost model of BERT-large fine-tuning on sentence
// pairs: embedding plus 24 transformer encoder layers and a small
// classifier. Batch size 32, Adam, 6 GPUs. The large variant is what
// makes pipeline partitioning across six GPUs worthwhile and what pushes
// PyTorch data parallelism and PipeDream's multi-version stash against
// the 32 GB device limit (§7.1.1).
func BERT() *Workload {
	const (
		vocab  = 30000
		hidden = 1024
		ffDim  = 4096
		seqLen = 256
		heads  = 16
	)
	layers := []LayerCost{embeddingLayer("embedding", vocab, hidden, seqLen)}
	for i := 0; i < 24; i++ {
		layers = append(layers, transformerLayer(fmt.Sprintf("encoder%d", i), hidden, ffDim, seqLen, heads))
	}
	layers = append(layers, LayerCost{
		Name: "classifier", FwdFLOPs: 2 * float64(hidden) * float64(hidden),
		BwdFLOPs:   4 * float64(hidden) * float64(hidden),
		ParamBytes: int64(hidden*hidden) * f32, OutActBytes: int64(hidden) * f32,
		StashBytes: int64(hidden) * f32,
	})
	return &Workload{
		Name: "BERT", Layers: layers, BatchSize: 32,
		SatSamples: 6, OptimStateFactor: 2,
		Cluster: cluster.PaperTestbed, MaxPipelines: 4,
	}
}

// AWD returns the cost model of the ASGD weight-dropped LSTM language
// model: embedding, 3 LSTM layers, and a (tied) decoder. Batch size 40,
// SGD/ASGD, 4 GPUs of two nodes.
func AWD() *Workload {
	const (
		vocab  = 10000
		embDim = 400
		hidden = 1150
		seqLen = 70
	)
	layers := []LayerCost{
		embeddingLayer("embedding", vocab, embDim, seqLen),
		lstmLayer("lstm0", embDim, hidden, seqLen),
		lstmLayer("lstm1", hidden, hidden, seqLen),
		lstmLayer("lstm2-down", hidden, embDim, seqLen),
		projectionLayer("decoder", embDim, vocab, seqLen),
	}
	return &Workload{
		Name: "AWD", Layers: layers, BatchSize: 40,
		SatSamples: 48, OptimStateFactor: 1,
		Cluster: cluster.TwoNodeTestbed, MaxPipelines: 4,
	}
}

// All returns the three paper workloads in presentation order.
func All() []*Workload { return []*Workload{GNMT(), BERT(), AWD()} }
