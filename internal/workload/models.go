package workload

import (
	"avgpipe/internal/data"
	"avgpipe/internal/nn"
	"avgpipe/internal/tensor"
)

// Task pairs a scaled-down real model with its synthetic dataset and a
// convergence target, for the statistical-efficiency experiments
// (Fig. 14) where actual training — not a cost model — is required.
type Task struct {
	Name string
	// NewModel builds a freshly initialized model; distinct seeds give
	// distinct replicas for parallel pipelines.
	NewModel func(seed int64) *nn.Sequential
	// NewGen builds the data stream.
	NewGen func(seed int64) data.Generator
	// PerPosition is true when targets are per sequence position
	// (translation, language modeling) rather than per sequence.
	PerPosition bool
	// TargetAccuracy, if > 0, is the eval accuracy that counts as
	// converged; otherwise TargetLoss is the eval loss to reach.
	TargetAccuracy float64
	TargetLoss     float64
	// LR is the base learning rate used with Adam (translation,
	// classification) or SGD (language modeling).
	LR float64
	// UseSGD selects plain SGD (the AWD workload trains with SGD/ASGD).
	UseSGD bool
	// BatchSize is the per-pipeline batch size.
	BatchSize int
}

// Reached reports whether the given eval metrics meet the task target.
func (t *Task) Reached(loss, acc float64) bool {
	if t.TargetAccuracy > 0 {
		return acc >= t.TargetAccuracy
	}
	return loss <= t.TargetLoss
}

// TranslationTask is the scaled-down GNMT analog: LSTM transduction that
// must reverse its input sequence. Token accuracy stands in for BLEU.
func TranslationTask() *Task {
	const (
		vocab  = 10
		seqLen = 5
		dim    = 48
	)
	return &Task{
		Name: "translation",
		NewModel: func(seed int64) *nn.Sequential {
			g := tensor.NewRNG(seed)
			return nn.NewSequential(
				nn.NewEmbedding(g, vocab, dim),
				nn.NewLSTM(g, dim, dim, seqLen),
				nn.NewLSTM(g, dim, dim, seqLen),
				nn.NewLinear(g, dim, vocab),
			)
		},
		NewGen: func(seed int64) data.Generator {
			return data.NewTranslationTask(seed, vocab, seqLen, 128)
		},
		PerPosition:    true,
		TargetAccuracy: 0.55,
		LR:             5e-3,
		BatchSize:      32,
	}
}

// ClassificationTask is the scaled-down BERT/QQP analog: a transformer
// pair classifier targeting binary accuracy.
func ClassificationTask() *Task {
	const (
		vocab   = 16
		halfLen = 4
		seqLen  = 2 * halfLen
		dim     = 32
		heads   = 4
		ffDim   = 64
	)
	return &Task{
		Name: "classification",
		NewModel: func(seed int64) *nn.Sequential {
			g := tensor.NewRNG(seed)
			return nn.NewSequential(
				nn.NewEmbedding(g, vocab, dim),
				nn.NewTransformerEncoderLayer(g, dim, heads, ffDim, seqLen),
				nn.NewTransformerEncoderLayer(g, dim, heads, ffDim, seqLen),
				&nn.MeanPoolTime{SeqLen: seqLen},
				nn.NewLinear(g, dim, 2),
			)
		},
		NewGen: func(seed int64) data.Generator {
			return data.NewPairClassificationTask(seed, vocab, halfLen, 128)
		},
		PerPosition:    false,
		TargetAccuracy: 0.85,
		LR:             1e-3,
		BatchSize:      32,
	}
}

// LangModelTask is the scaled-down AWD analog: a weight-dropped LSTM
// language model over a Markov chain, targeting a validation loss.
func LangModelTask() *Task {
	const (
		vocab  = 16
		seqLen = 10
		dim    = 32
	)
	return &Task{
		Name: "langmodel",
		NewModel: func(seed int64) *nn.Sequential {
			g := tensor.NewRNG(seed)
			l1 := nn.NewLSTM(g, dim, dim, seqLen)
			l1.RecurrentDropP = 0.1
			l2 := nn.NewLSTM(g, dim, dim, seqLen)
			return nn.NewSequential(
				nn.NewEmbedding(g, vocab, dim),
				l1,
				l2,
				nn.NewLinear(g, dim, vocab),
			)
		},
		NewGen: func(seed int64) data.Generator {
			return data.NewLanguageModelTask(seed, vocab, seqLen, 128)
		},
		PerPosition: true,
		// The synthetic Markov chain has ≈1.83 nats of transition entropy,
		// so 2.0 is a demanding but reachable validation-loss target.
		TargetLoss: 2.0,
		LR:         8,
		UseSGD:     true,
		BatchSize:  32,
	}
}

// Tasks returns the three statistical-efficiency tasks in paper order.
func Tasks() []*Task {
	return []*Task{TranslationTask(), ClassificationTask(), LangModelTask()}
}

// Evaluate runs the model on the batch in eval mode and returns mean
// cross-entropy loss and accuracy.
func Evaluate(m *nn.Sequential, b *data.Batch, perPosition bool) (loss, acc float64) {
	ctx := nn.NewContext()
	logits := m.Forward(ctx, b.X, false)
	loss, _ = nn.CrossEntropy(logits, b.Targets)
	acc = nn.Accuracy(logits, b.Targets)
	return loss, acc
}

// TrainStep runs one forward/backward over the batch and returns the loss.
// Gradients accumulate into the model's params; the caller owns the
// optimizer step and gradient clearing.
func TrainStep(m *nn.Sequential, b *data.Batch) float64 {
	ctx := nn.NewContext()
	logits := m.Forward(ctx, b.X, true)
	loss, dlogits := nn.CrossEntropy(logits, b.Targets)
	m.Backward(ctx, dlogits)
	return loss
}
