// Package device models a GPU for the discrete-event pipeline simulator.
//
// The paper's performance results rest on three device-level mechanisms:
// (1) kernel efficiency rises with arithmetic intensity, so small
// micro-batches under-utilize the GPU (§2 "Low Peak Utilization");
// (2) GPU memory is a hard capacity that weights, optimizer state,
// weight versions, and stashed activations compete for; and
// (3) compute throughput is otherwise flat. The GPU type captures exactly
// those three properties.
package device

import (
	"fmt"
	"time"
)

// GPU describes one accelerator.
type GPU struct {
	// Name labels the device in reports.
	Name string
	// PeakFLOPs is the sustained peak throughput in FLOP/s at full
	// efficiency.
	PeakFLOPs float64
	// SatSamples is the half-saturation point of the kernel-efficiency
	// curve, in concurrent samples: running s samples at once achieves
	// Efficiency(s) = s/(s+SatSamples) of peak. It is workload-relative
	// (a "sample" of BERT is far more work than one of AWD), so each
	// workload carries its own value.
	SatSamples float64
	// MemBytes is the memory capacity.
	MemBytes int64
}

// V100 returns the paper testbed's Tesla V100-SXM2 32 GB profile.
// PeakFLOPs is the *sustained* fp32 throughput on the paper's RNN and
// attention kernels (far below the 15.7 TFLOP/s theoretical peak, which
// GEMM-bound kernels only approach at large tile sizes). SatSamples is
// calibrated per workload; the value here is a default.
func V100() GPU {
	return GPU{
		Name:       "V100-SXM2-32GB",
		PeakFLOPs:  8e12,
		SatSamples: 8,
		MemBytes:   32 << 30,
	}
}

// Efficiency returns the fraction of peak achieved when s samples are
// processed concurrently. It is strictly increasing and saturates at 1,
// which is what makes "more parallel pipelines" and "bigger micro-batches"
// raise peak utilization with diminishing returns (§5.1).
func (g GPU) Efficiency(s float64) float64 {
	if s <= 0 {
		return 0
	}
	return s / (s + g.SatSamples)
}

// ComputeTime returns the wall-clock duration of a kernel doing the given
// FLOPs for one pipeline, when `concurrent` symmetric pipelines each run
// `samples` samples at once. The pipelines time-share the device: the
// combined workload runs at Efficiency(concurrent*samples) of peak, and
// each pipeline gets a 1/concurrent share.
func (g GPU) ComputeTime(flops float64, samples int, concurrent int) time.Duration {
	if flops <= 0 {
		return 0
	}
	eff := g.Efficiency(float64(concurrent) * float64(samples))
	sec := float64(concurrent) * flops / (g.PeakFLOPs * eff)
	return time.Duration(sec * float64(time.Second))
}

// MemoryBreakdown itemizes one GPU's footprint during training. All
// quantities are bytes.
type MemoryBreakdown struct {
	// Weights is parameter storage for all resident model replicas and
	// weight versions.
	Weights int64
	// OptimizerState is per-parameter optimizer state (e.g. Adam moments).
	OptimizerState int64
	// Gradients is gradient accumulation buffers.
	Gradients int64
	// Activations is the peak stash of forward activations held for
	// pending backward passes.
	Activations int64
	// Buffers is communication and workspace overhead.
	Buffers int64
}

// Total returns the summed footprint.
func (m MemoryBreakdown) Total() int64 {
	return m.Weights + m.OptimizerState + m.Gradients + m.Activations + m.Buffers
}

// ModelBytes returns the model-proportional portion (the F_mod of §5.2.3):
// weights + optimizer state + gradients.
func (m MemoryBreakdown) ModelBytes() int64 {
	return m.Weights + m.OptimizerState + m.Gradients
}

// DataBytes returns the data-proportional portion (the F_dat of §5.2.3):
// activations + buffers.
func (m MemoryBreakdown) DataBytes() int64 {
	return m.Activations + m.Buffers
}

// Fits reports whether the breakdown fits in the GPU's memory.
func (g GPU) Fits(m MemoryBreakdown) bool { return m.Total() <= g.MemBytes }

// OOMError reports a memory-capacity violation, the failure PipeDream
// hits on the BERT workload in the paper (§7.1.1).
type OOMError struct {
	Device   string
	Need     int64
	Capacity int64
}

// Error implements error.
func (e *OOMError) Error() string {
	return fmt.Sprintf("device %s: out of memory: need %.1f GB, capacity %.1f GB",
		e.Device, float64(e.Need)/float64(1<<30), float64(e.Capacity)/float64(1<<30))
}

// CheckFit returns an OOMError if the breakdown exceeds capacity.
func (g GPU) CheckFit(m MemoryBreakdown) error {
	if g.Fits(m) {
		return nil
	}
	return &OOMError{Device: g.Name, Need: m.Total(), Capacity: g.MemBytes}
}
