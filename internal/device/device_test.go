package device

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestEfficiencyCurve(t *testing.T) {
	g := GPU{SatSamples: 8}
	if g.Efficiency(0) != 0 || g.Efficiency(-1) != 0 {
		t.Fatal("non-positive samples must give zero efficiency")
	}
	if got := g.Efficiency(8); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("half-saturation point: %v", got)
	}
	// Strictly increasing, saturating below 1.
	prev := 0.0
	for s := 1.0; s < 1e4; s *= 2 {
		e := g.Efficiency(s)
		if e <= prev || e >= 1 {
			t.Fatalf("efficiency not increasing/saturating at %v: %v", s, e)
		}
		prev = e
	}
}

func TestComputeTime(t *testing.T) {
	g := GPU{PeakFLOPs: 1e12, SatSamples: 0} // eff ≡ 1
	if got := g.ComputeTime(1e9, 4, 1); got != time.Millisecond {
		t.Fatalf("1 GFLOP at 1 TFLOP/s = %v, want 1ms", got)
	}
	if g.ComputeTime(0, 4, 1) != 0 {
		t.Fatal("zero FLOPs must take zero time")
	}
	// With saturating kernels, co-running pipelines cost less than a
	// proportional slowdown: eff(2b) > eff(b).
	g.SatSamples = 8
	one := g.ComputeTime(1e9, 4, 1)
	two := g.ComputeTime(1e9, 4, 2)
	if two >= 2*one {
		t.Fatalf("2 pipelines must be sublinear: %v vs 2x %v", two, one)
	}
	if two <= one {
		t.Fatal("sharing is not free")
	}
}

func TestMemoryBreakdown(t *testing.T) {
	m := MemoryBreakdown{Weights: 10, OptimizerState: 20, Gradients: 5, Activations: 7, Buffers: 3}
	if m.Total() != 45 {
		t.Fatalf("Total %d", m.Total())
	}
	if m.ModelBytes() != 35 || m.DataBytes() != 10 {
		t.Fatal("model/data split")
	}
}

func TestFitsAndOOM(t *testing.T) {
	g := GPU{Name: "x", MemBytes: 100}
	ok := MemoryBreakdown{Weights: 100}
	if !g.Fits(ok) || g.CheckFit(ok) != nil {
		t.Fatal("exact fit must pass")
	}
	bad := MemoryBreakdown{Weights: 101}
	err := g.CheckFit(bad)
	if err == nil {
		t.Fatal("expected OOM")
	}
	var oom *OOMError
	if !errors.As(err, &oom) || oom.Device != "x" || oom.Need != 101 {
		t.Fatalf("OOM error malformed: %v", err)
	}
}

func TestV100Profile(t *testing.T) {
	g := V100()
	if g.MemBytes != 32<<30 {
		t.Fatal("V100 is the 32 GB part")
	}
	// Sustained fp32 throughput on RNN/attention kernels, well below the
	// 15.7 TFLOP/s GEMM peak.
	if g.PeakFLOPs < 5e11 || g.PeakFLOPs > 1.6e13 {
		t.Fatal("V100 sustained throughput implausible")
	}
}
