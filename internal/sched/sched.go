// Package sched generates pipeline-parallel execution schedules as
// explicit per-GPU operation sequences, and is the single source of
// truth for what every stage does. A schedule fixes, for every GPU, the
// total order in which it runs forward and backward passes of
// micro-batches; the simulator (internal/pipesim) and the real runtime
// (core.Pipeline, a schedule interpreter) both execute these sequences
// verbatim, so any schedule added here runs end-to-end on real tensors
// and in simulation with zero runtime changes.
//
// Analyze provides the shared legality and occupancy layer: per-GPU
// structural validation, a cross-stage dependency (deadlock) check, and
// the analytic per-stage op counts, stash high-water marks, and weight
// version demands that both consumers are cross-validated against.
// Plan wraps a schedule family as a (k, m) → Schedule generator so
// callers can pick a schedule before the pipeline geometry is fixed.
//
// Implemented schedules, following §4 of the paper:
//
//   - AFAB (all-forward-all-backward): the vanilla/GPipe schedule. Fully
//     overlaps communication with computation but stashes every
//     micro-batch's activations.
//   - 1F1B (one-forward-one-backward): the PipeDream-2BW/Dapple
//     early-backward schedule. Stage s stashes only K−s micro-batches but
//     interleaves the pipeline in both directions, exposing communication.
//   - AFP (1F1B + advance forward propagation): the paper's contribution.
//     Stage s runs `advance[s]` extra forwards ahead of the 1F1B pattern,
//     trading bounded extra stash for AFAB-like overlap (Algorithm 1).
//   - PipeDream / PipeDream-2BW: continuous (no per-batch flush) 1F1B
//     pipelines with multi-version weights.
package sched

import "fmt"

// Kind distinguishes forward from backward passes. A backward pass
// exists in two granularities: the combined Bwd op, and the 2BP-style
// split into BwdIn (grad-input: compute dx and unblock the upstream
// stage) and BwdW (grad-weight: accumulate parameter gradients locally).
// SplitBackward rewrites a schedule from the former into the latter.
type Kind uint8

// Operation kinds.
const (
	Fwd Kind = iota
	Bwd
	// BwdIn is the grad-input half of a split backward: it consumes the
	// downstream gradient and produces the input gradient, so it is the
	// op the upstream stage's backward depends on.
	BwdIn
	// BwdW is the grad-weight half of a split backward: it accumulates
	// parameter gradients from the stashed activations and has no
	// cross-stage consumers, so the scheduler may overlap it freely.
	BwdW
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Fwd:
		return "F"
	case BwdIn:
		return "Bi"
	case BwdW:
		return "Bw"
	default:
		return "B"
	}
}

// Backward reports whether the kind is any flavor of backward pass.
func (k Kind) Backward() bool { return k != Fwd }

// Op is one unit of work on a GPU: the forward or backward pass of one
// micro-batch. Micro indices are global across the simulated batches, so
// micro m belongs to batch m/M.
type Op struct {
	Kind  Kind
	Micro int
}

// String implements fmt.Stringer.
func (o Op) String() string { return fmt.Sprintf("%s%d", o.Kind, o.Micro+1) }

// Schedule is a complete per-GPU execution plan.
type Schedule struct {
	// Name identifies the schedule in experiment tables.
	Name string
	// PerGPU[k] is the ordered operation list of GPU k. With B batches of
	// M micro-batches, each list holds 2·M·B ops.
	PerGPU [][]Op
	// Continuous marks pipelines that never flush between batches
	// (PipeDream, PipeDream-2BW); their micro streams cross batch
	// boundaries without a barrier.
	Continuous bool
	// WeightVersions returns how many weight versions stage s must keep
	// resident (1 for synchronous schedules, K−s for PipeDream, 2 for
	// PipeDream-2BW).
	WeightVersions func(s, k int) int
}

func oneVersion(s, k int) int { return 1 }

// afabOrder emits the per-GPU list for all-forward-all-backward over
// micros [lo, hi).
func afabOrder(lo, hi int) []Op {
	ops := make([]Op, 0, 2*(hi-lo))
	for m := lo; m < hi; m++ {
		ops = append(ops, Op{Fwd, m})
	}
	for m := lo; m < hi; m++ {
		ops = append(ops, Op{Bwd, m})
	}
	return ops
}

// AFAB returns the all-forward-all-backward schedule for K stages, M
// micro-batches per batch, and `batches` sequential batches.
func AFAB(k, m, batches int) *Schedule {
	validate(k, m, batches)
	per := make([][]Op, k)
	for s := 0; s < k; s++ {
		for b := 0; b < batches; b++ {
			per[s] = append(per[s], afabOrder(b*m, (b+1)*m)...)
		}
	}
	return &Schedule{Name: "AFAB", PerGPU: per, WeightVersions: oneVersion}
}

// interleaveOrder emits the 1F1B pattern with warmup w over micros
// [lo, hi): w forwards, then (B,F) pairs, then the draining backwards.
func interleaveOrder(lo, hi, w int) []Op {
	m := hi - lo
	if w > m {
		w = m
	}
	ops := make([]Op, 0, 2*m)
	for i := 0; i < w; i++ {
		ops = append(ops, Op{Fwd, lo + i})
	}
	for i := w; i < m; i++ {
		ops = append(ops, Op{Bwd, lo + i - w}, Op{Fwd, lo + i})
	}
	for i := m - w; i < m; i++ {
		ops = append(ops, Op{Bwd, lo + i})
	}
	return ops
}

// OneFOneB returns the synchronous 1F1B (early-backward) schedule: stage
// s warms up with K−s forwards, then strictly alternates.
func OneFOneB(k, m, batches int) *Schedule {
	s := AFP(k, m, batches, make([]int, k))
	s.Name = "1F1B"
	return s
}

// AFP returns 1F1B with advance forward propagation: stage s warms up
// with K−s+advance[s] forwards. advance of all zeros degenerates to 1F1B;
// advance[s] ≥ M−(K−s) degenerates to AFAB (§4.2 "Pros and Cons").
func AFP(k, m, batches int, advance []int) *Schedule {
	validate(k, m, batches)
	if len(advance) != k {
		panic(fmt.Sprintf("sched: advance length %d, want %d", len(advance), k))
	}
	per := make([][]Op, k)
	for s := 0; s < k; s++ {
		if advance[s] < 0 {
			panic("sched: negative advance")
		}
		w := k - s + advance[s]
		for b := 0; b < batches; b++ {
			per[s] = append(per[s], interleaveOrder(b*m, (b+1)*m, w)...)
		}
	}
	name := "AFP"
	return &Schedule{Name: name, PerGPU: per, WeightVersions: oneVersion}
}

// PipeDream returns the continuous multi-version pipeline: the 1F1B
// pattern runs across batch boundaries with no flush, and stage s keeps
// K−s weight versions resident.
func PipeDream(k, m, batches int) *Schedule {
	validate(k, m, batches)
	per := make([][]Op, k)
	for s := 0; s < k; s++ {
		per[s] = interleaveOrder(0, m*batches, k-s)
	}
	return &Schedule{
		Name: "PipeDream", PerGPU: per, Continuous: true,
		WeightVersions: func(s, kk int) int { return kk - s },
	}
}

// PipeDream2BW returns the continuous double-buffered pipeline: same
// execution pattern as PipeDream but only 2 weight versions per stage.
func PipeDream2BW(k, m, batches int) *Schedule {
	s := PipeDream(k, m, batches)
	s.Name = "PipeDream-2BW"
	s.WeightVersions = func(_, _ int) int { return 2 }
	return s
}

// Dapple returns the Dapple schedule, which on a linear partition is the
// synchronous 1F1B early-backward schedule.
func Dapple(k, m, batches int) *Schedule {
	s := OneFOneB(k, m, batches)
	s.Name = "Dapple"
	return s
}

// GPipe returns the GPipe schedule; with activation recomputation
// disabled (as in the paper's experiments) it is AFAB.
func GPipe(k, m, batches int) *Schedule {
	s := AFAB(k, m, batches)
	s.Name = "GPipe"
	return s
}

// LegalAdvance reports whether an advance vector yields a deadlock-free
// AFP schedule: stage s's warmup (its run-ahead demand on stage s−1) must
// not exceed stage s−1's warmup, or the two stages end up waiting on each
// other across the forward/backward interleave.
func LegalAdvance(k, m int, advance []int) bool {
	if len(advance) != k {
		return false
	}
	clamp := func(w int) int {
		if w > m {
			return m
		}
		return w
	}
	for s := 1; s < k; s++ {
		if advance[s] < 0 || advance[s-1] < 0 {
			return false
		}
		if clamp(k-s+advance[s]) > clamp(k-s+1+advance[s-1]) {
			return false
		}
	}
	return k < 1 || advance[0] >= 0
}

func validate(k, m, batches int) {
	if k <= 0 || m <= 0 || batches <= 0 {
		panic(fmt.Sprintf("sched: invalid dimensions K=%d M=%d batches=%d", k, m, batches))
	}
}

// SplitBackward rewrites every combined Bwd op into the adjacent pair
// BwdIn, BwdW — the 2BP-style backward split the compiled runtime
// executes. Adjacency keeps each micro-batch's grad-weight accumulation
// in the same position of the per-parameter accumulation order as the
// combined op, so a split schedule trains bitwise-identically to its
// unsplit original; the gain is that the input gradient ships upstream
// after BwdIn, before the grad-weight work runs. Fwd ops and schedules
// already split pass through unchanged.
func SplitBackward(s *Schedule) *Schedule {
	out := &Schedule{
		Name:           s.Name,
		Continuous:     s.Continuous,
		WeightVersions: s.WeightVersions,
		PerGPU:         make([][]Op, len(s.PerGPU)),
	}
	for g, ops := range s.PerGPU {
		split := make([]Op, 0, 2*len(ops))
		for _, op := range ops {
			if op.Kind == Bwd {
				split = append(split, Op{BwdIn, op.Micro}, Op{BwdW, op.Micro})
			} else {
				split = append(split, op)
			}
		}
		out.PerGPU[g] = split
	}
	return out
}

// MaxInFlight returns, for each GPU, the peak number of micro-batches
// whose forward has run but whose backward has not — the activation-stash
// high-water mark the schedule implies. With a split backward the stash
// lives until BwdW: the grad-weight op still reads the stashed
// activations, so BwdIn does not retire the micro-batch.
func (s *Schedule) MaxInFlight() []int {
	out := make([]int, len(s.PerGPU))
	for k, ops := range s.PerGPU {
		cur, peak := 0, 0
		for _, op := range ops {
			switch op.Kind {
			case Fwd:
				cur++
				if cur > peak {
					peak = cur
				}
			case Bwd, BwdW:
				cur--
			}
		}
		out[k] = peak
	}
	return out
}

// Validate checks the structural invariants every legal schedule must
// satisfy: each micro's forward appears exactly once per GPU, and its
// backward appears exactly once after it — either as one combined Bwd op
// or as the split pair BwdIn then BwdW (never both forms for the same
// micro).
func (s *Schedule) Validate() error {
	for k, ops := range s.PerGPU {
		fwdSeen := map[int]int{}
		bwdSeen := map[int]int{}
		biSeen := map[int]int{}
		bwSeen := map[int]int{}
		for i, op := range ops {
			switch op.Kind {
			case Fwd:
				if _, dup := fwdSeen[op.Micro]; dup {
					return fmt.Errorf("sched %s: GPU %d repeats F%d", s.Name, k, op.Micro)
				}
				fwdSeen[op.Micro] = i
			case Bwd:
				if _, dup := bwdSeen[op.Micro]; dup {
					return fmt.Errorf("sched %s: GPU %d repeats B%d", s.Name, k, op.Micro)
				}
				if _, split := biSeen[op.Micro]; split {
					return fmt.Errorf("sched %s: GPU %d mixes B%d with split Bi%d", s.Name, k, op.Micro, op.Micro)
				}
				fi, ok := fwdSeen[op.Micro]
				if !ok || fi > i {
					return fmt.Errorf("sched %s: GPU %d runs B%d before F%d", s.Name, k, op.Micro, op.Micro)
				}
				bwdSeen[op.Micro] = i
			case BwdIn:
				if _, dup := biSeen[op.Micro]; dup {
					return fmt.Errorf("sched %s: GPU %d repeats Bi%d", s.Name, k, op.Micro)
				}
				if _, combined := bwdSeen[op.Micro]; combined {
					return fmt.Errorf("sched %s: GPU %d mixes Bi%d with combined B%d", s.Name, k, op.Micro, op.Micro)
				}
				fi, ok := fwdSeen[op.Micro]
				if !ok || fi > i {
					return fmt.Errorf("sched %s: GPU %d runs Bi%d before F%d", s.Name, k, op.Micro, op.Micro)
				}
				biSeen[op.Micro] = i
			case BwdW:
				if _, dup := bwSeen[op.Micro]; dup {
					return fmt.Errorf("sched %s: GPU %d repeats Bw%d", s.Name, k, op.Micro)
				}
				bi, ok := biSeen[op.Micro]
				if !ok || bi > i {
					return fmt.Errorf("sched %s: GPU %d runs Bw%d before Bi%d", s.Name, k, op.Micro, op.Micro)
				}
				bwSeen[op.Micro] = i
			}
		}
		for m := range biSeen {
			if _, ok := bwSeen[m]; !ok {
				return fmt.Errorf("sched %s: GPU %d missing Bw%d after Bi%d", s.Name, k, m, m)
			}
		}
		if backs := len(bwdSeen) + len(biSeen); len(fwdSeen) != backs {
			return fmt.Errorf("sched %s: GPU %d has %d forwards but %d backwards", s.Name, k, len(fwdSeen), backs)
		}
		for m := range fwdSeen {
			if _, combined := bwdSeen[m]; combined {
				continue
			}
			if _, split := biSeen[m]; !split {
				return fmt.Errorf("sched %s: GPU %d missing B%d", s.Name, k, m)
			}
		}
	}
	return nil
}
