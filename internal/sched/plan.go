package sched

import (
	"fmt"
	"strings"
)

// Plan names a schedule family and generates its concrete single-flush
// Schedule for any pipeline geometry. The real runtime stores a Plan and
// materializes the Schedule once the micro-batch count is known, so one
// Plan value covers a whole training run; changing the schedule a
// pipeline executes is purely a matter of handing it a different Plan.
type Plan struct {
	// Name identifies the family ("AFAB", "1F1B", "AFP", ...).
	Name string
	// Make builds the schedule for k stages and m micro-batches per
	// batch (one flush: Batches == 1).
	Make func(k, m int) *Schedule
}

// AFABPlan generates all-forward-all-backward schedules.
func AFABPlan() Plan {
	return Plan{Name: "AFAB", Make: func(k, m int) *Schedule { return AFAB(k, m, 1) }}
}

// GPipePlan generates GPipe schedules (AFAB without recomputation).
func GPipePlan() Plan {
	return Plan{Name: "GPipe", Make: func(k, m int) *Schedule { return GPipe(k, m, 1) }}
}

// OneFOneBPlan generates synchronous 1F1B (early-backward) schedules.
func OneFOneBPlan() Plan {
	return Plan{Name: "1F1B", Make: func(k, m int) *Schedule { return OneFOneB(k, m, 1) }}
}

// DapplePlan generates Dapple schedules (1F1B on a linear partition).
func DapplePlan() Plan {
	return Plan{Name: "Dapple", Make: func(k, m int) *Schedule { return Dapple(k, m, 1) }}
}

// AFPPlan generates 1F1B + advance-forward-propagation schedules. A nil
// advance means zeros everywhere, i.e. pure 1F1B; otherwise the vector
// length must equal the stage count at Make time.
func AFPPlan(advance []int) Plan {
	return Plan{Name: "AFP", Make: func(k, m int) *Schedule {
		adv := advance
		if adv == nil {
			adv = make([]int, k)
		}
		return AFP(k, m, 1, adv)
	}}
}

// PlanByName resolves a schedule family from its common names, for CLI
// flags and config files. advance is consumed only by the AFP family.
func PlanByName(name string, advance []int) (Plan, error) {
	switch strings.ToLower(name) {
	case "afab":
		return AFABPlan(), nil
	case "gpipe":
		return GPipePlan(), nil
	case "1f1b", "onefoneb":
		return OneFOneBPlan(), nil
	case "dapple":
		return DapplePlan(), nil
	case "", "afp":
		return AFPPlan(advance), nil
	}
	return Plan{}, fmt.Errorf("sched: unknown schedule %q (want afab, gpipe, 1f1b, dapple, or afp)", name)
}
