package sched

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// legalAdvanceVec draws a random advance vector that LegalAdvance
// accepts: advance[s] ≤ advance[s−1]+1 keeps every stage's warmup within
// its upstream's.
func legalAdvanceVec(r *rand.Rand, k, m int) []int {
	adv := make([]int, k)
	for s := range adv {
		adv[s] = r.Intn(m + 2)
		if s > 0 && adv[s] > adv[s-1]+1 {
			adv[s] = adv[s-1] + 1
		}
	}
	return adv
}

// Property: every generated schedule family passes Analyze, with the
// analytic op counts each stage must see (m·batches of each kind).
func TestPropGeneratedSchedulesLegal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(5)
		m := 1 + r.Intn(8)
		batches := 1 + r.Intn(2)
		schedules := []*Schedule{
			AFAB(k, m, batches), GPipe(k, m, batches),
			OneFOneB(k, m, batches), Dapple(k, m, batches),
			PipeDream(k, m, batches), PipeDream2BW(k, m, batches),
			AFP(k, m, batches, legalAdvanceVec(r, k, m)),
		}
		for _, s := range schedules {
			an, err := Analyze(s)
			if err != nil {
				t.Logf("K=%d M=%d B=%d %s: %v", k, m, batches, s.Name, err)
				return false
			}
			for g := 0; g < k; g++ {
				if an.Fwd[g] != m*batches || an.Bwd[g] != m*batches {
					t.Logf("%s GPU %d: %dF %dB, want %d each", s.Name, g, an.Fwd[g], an.Bwd[g], m*batches)
					return false
				}
				// Flushed schedules bound the stash per batch; continuous
				// ones (PipeDream) only per the whole run.
				bound := m
				if s.Continuous {
					bound = m * batches
				}
				if an.MaxInFlight[g] < 1 || an.MaxInFlight[g] > bound {
					t.Logf("%s GPU %d: stash peak %d outside [1, %d]", s.Name, g, an.MaxInFlight[g], bound)
					return false
				}
			}
		}
		// The 1F1B stash rule: stage s keeps exactly min(K−s, m) live.
		an, err := Analyze(OneFOneB(k, m, 1))
		if err != nil {
			return false
		}
		for s := 0; s < k; s++ {
			want := k - s
			if want > m {
				want = m
			}
			if an.MaxInFlight[s] != want {
				t.Logf("1F1B K=%d M=%d stage %d: stash %d, want %d", k, m, s, an.MaxInFlight[s], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Analyze accepts an AFP advance vector exactly when
// LegalAdvance does — the analytic legality rule and the dependency
// event simulation agree on every random vector.
func TestPropAnalyzeMatchesLegalAdvance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		m := 2 + r.Intn(8)
		adv := make([]int, k)
		for s := range adv {
			adv[s] = r.Intn(m + 3)
		}
		_, err := Analyze(AFP(k, m, 1+r.Intn(2), adv))
		legal := LegalAdvance(k, m, adv)
		if (err == nil) != legal {
			t.Logf("K=%d M=%d advance %v: Analyze err=%v, LegalAdvance=%v", k, m, adv, err, legal)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeRejectsPermutedSchedules(t *testing.T) {
	// (a) A backward hoisted before its forward on one GPU.
	s := OneFOneB(2, 4, 1)
	s.PerGPU[1][0], s.PerGPU[1][1] = s.PerGPU[1][1], s.PerGPU[1][0]
	if _, err := Analyze(s); err == nil {
		t.Fatal("Analyze accepted a B-before-F permutation")
	}
	// (b) Cross-stage warmup inversion: stage 1 warms up with more
	// forwards than stage 0 can feed before stage 0 needs a backward —
	// each GPU's order is locally valid but the stages deadlock.
	dead := &Schedule{Name: "inverted", PerGPU: [][]Op{
		{{Fwd, 0}, {Bwd, 0}, {Fwd, 1}, {Bwd, 1}},
		{{Fwd, 0}, {Fwd, 1}, {Bwd, 0}, {Bwd, 1}},
	}}
	if dead.Validate() != nil {
		t.Fatal("per-GPU structure should be valid")
	}
	_, err := Analyze(dead)
	if err == nil {
		t.Fatal("Analyze accepted a cross-stage deadlock")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
	// (c) GPUs disagreeing on the micro set.
	mismatch := &Schedule{Name: "mismatch", PerGPU: [][]Op{
		{{Fwd, 0}, {Bwd, 0}},
		{{Fwd, 1}, {Bwd, 1}},
	}}
	if _, err := Analyze(mismatch); err == nil {
		t.Fatal("Analyze accepted GPUs covering different micros")
	}
}

func TestPlanByName(t *testing.T) {
	for name, want := range map[string]string{
		"afab": "AFAB", "gpipe": "GPipe", "1f1b": "1F1B",
		"dapple": "Dapple", "afp": "AFP", "": "AFP",
	} {
		p, err := PlanByName(name, nil)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if p.Name != want {
			t.Fatalf("%q resolved to %q, want %q", name, p.Name, want)
		}
		s := p.Make(3, 4)
		if _, err := Analyze(s); err != nil {
			t.Fatalf("%q generated illegal schedule: %v", name, err)
		}
	}
	if _, err := PlanByName("chimera", nil); err == nil {
		t.Fatal("unknown plan name accepted")
	}
	// The AFP plan threads its advance vector through.
	p, _ := PlanByName("afp", []int{2, 0})
	an, err := Analyze(p.Make(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if an.MaxInFlight[0] != 4 { // warmup K−0+2 = 4
		t.Fatalf("AFP advance ignored: stash peak %d, want 4", an.MaxInFlight[0])
	}
}
