package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAFABOrder(t *testing.T) {
	s := AFAB(2, 3, 1)
	want := "F1 F2 F3 B1 B2 B3"
	if got := opsString(s.PerGPU[0]); got != want {
		t.Fatalf("AFAB GPU0: %q, want %q", got, want)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func opsString(ops []Op) string {
	out := ""
	for i, o := range ops {
		if i > 0 {
			out += " "
		}
		out += o.String()
	}
	return out
}

func TestOneFOneBMatchesPaperFigure7b(t *testing.T) {
	// K=2, M=4 (Fig. 7b): GPU1 warms up 2, GPU2 warms up 1.
	s := OneFOneB(2, 4, 1)
	if got, want := opsString(s.PerGPU[0]), "F1 F2 B1 F3 B2 F4 B3 B4"; got != want {
		t.Fatalf("GPU1: %q, want %q", got, want)
	}
	if got, want := opsString(s.PerGPU[1]), "F1 B1 F2 B2 F3 B3 F4 B4"; got != want {
		t.Fatalf("GPU2: %q, want %q", got, want)
	}
}

func TestAFPMatchesPaperFigure7c(t *testing.T) {
	// K=2, M=4, one advance forward on GPU1 (Fig. 7c).
	s := AFP(2, 4, 1, []int{1, 0})
	if got, want := opsString(s.PerGPU[0]), "F1 F2 F3 B1 F4 B2 B3 B4"; got != want {
		t.Fatalf("GPU1: %q, want %q", got, want)
	}
	if got, want := opsString(s.PerGPU[1]), "F1 B1 F2 B2 F3 B3 F4 B4"; got != want {
		t.Fatalf("GPU2: %q, want %q", got, want)
	}
}

func TestAFPDegeneratesTo1F1BAndAFAB(t *testing.T) {
	// §4.2: advance 0 == 1F1B; advance ≥ M-(K-s) == AFAB.
	k, m := 4, 8
	zero := AFP(k, m, 1, make([]int, k))
	ofob := OneFOneB(k, m, 1)
	for s := 0; s < k; s++ {
		if opsString(zero.PerGPU[s]) != opsString(ofob.PerGPU[s]) {
			t.Fatalf("AFP(0) != 1F1B on stage %d", s)
		}
	}
	full := make([]int, k)
	for s := 0; s < k; s++ {
		full[s] = m // more than enough
	}
	afp := AFP(k, m, 1, full)
	afab := AFAB(k, m, 1)
	for s := 0; s < k; s++ {
		if opsString(afp.PerGPU[s]) != opsString(afab.PerGPU[s]) {
			t.Fatalf("AFP(max) != AFAB on stage %d", s)
		}
	}
}

func TestMaxInFlightMatchesPaperStash(t *testing.T) {
	// 1F1B: stage s stashes K−s micro-batches (K−k+1 in the paper's
	// 1-indexed notation).
	k, m := 4, 8
	s := OneFOneB(k, m, 1)
	for st, got := range s.MaxInFlight() {
		if want := k - st; got != want {
			t.Fatalf("1F1B stage %d stash %d, want %d", st, got, want)
		}
	}
	// AFAB stashes all M everywhere.
	for st, got := range AFAB(k, m, 1).MaxInFlight() {
		if got != m {
			t.Fatalf("AFAB stage %d stash %d, want %d", st, got, m)
		}
	}
	// Fig. 7c: AFP with advance 1 on GPU 1 stashes 3 of 4.
	afp := AFP(2, 4, 1, []int{1, 0})
	fl := afp.MaxInFlight()
	if fl[0] != 3 || fl[1] != 1 {
		t.Fatalf("AFP stash %v, want [3 1]", fl)
	}
}

func TestPipeDreamContinuous(t *testing.T) {
	s := PipeDream(3, 4, 2)
	if !s.Continuous {
		t.Fatal("PipeDream must be continuous")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// 8 micros total per GPU, warmup only once.
	if got := len(s.PerGPU[0]); got != 16 {
		t.Fatalf("GPU0 ops %d, want 16", got)
	}
	// Versions: stage 0 of K=3 keeps 3; last keeps 1.
	if s.WeightVersions(0, 3) != 3 || s.WeightVersions(2, 3) != 1 {
		t.Fatal("PipeDream version counts")
	}
	// In-flight on stage 0 stays bounded at K despite 2 batches (no
	// flush, steady state).
	if fl := s.MaxInFlight()[0]; fl != 3 {
		t.Fatalf("PipeDream stage 0 in-flight %d, want 3", fl)
	}
}

func TestPipeDream2BWVersions(t *testing.T) {
	s := PipeDream2BW(4, 4, 1)
	for st := 0; st < 4; st++ {
		if s.WeightVersions(st, 4) != 2 {
			t.Fatal("2BW must keep exactly 2 versions")
		}
	}
}

func TestNamedVariants(t *testing.T) {
	if GPipe(2, 2, 1).Name != "GPipe" || Dapple(2, 2, 1).Name != "Dapple" {
		t.Fatal("names")
	}
	// Dapple ≡ 1F1B op-wise.
	d, o := Dapple(3, 5, 1), OneFOneB(3, 5, 1)
	for s := range d.PerGPU {
		if opsString(d.PerGPU[s]) != opsString(o.PerGPU[s]) {
			t.Fatal("Dapple must emit 1F1B ops")
		}
	}
}

func TestMultiBatchFlushKeepsBatchOrder(t *testing.T) {
	s := OneFOneB(2, 3, 2)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// All batch-0 micros (0..2) must precede batch-1 micros (3..5) on
	// every GPU for a flushed schedule.
	for k, ops := range s.PerGPU {
		seenBatch1 := false
		for _, op := range ops {
			if op.Micro >= 3 {
				seenBatch1 = true
			} else if seenBatch1 {
				t.Fatalf("GPU %d interleaves batches in a flushed schedule", k)
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := AFAB(2, 2, 1)
	s.PerGPU[0][0], s.PerGPU[0][2] = s.PerGPU[0][2], s.PerGPU[0][0] // B1 before F1
	if err := s.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
	s2 := AFAB(2, 2, 1)
	s2.PerGPU[1] = s2.PerGPU[1][:3] // missing a backward
	if err := s2.Validate(); err == nil {
		t.Fatal("expected validation error for missing op")
	}
}

// Property: every generator yields a valid schedule with the documented
// stash bound for arbitrary small (K, M, advance).
func TestPropSchedulesValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(6)
		m := 1 + r.Intn(12)
		batches := 1 + r.Intn(3)
		adv := make([]int, k)
		for i := range adv {
			adv[i] = r.Intn(m + 2)
		}
		for _, s := range []*Schedule{
			AFAB(k, m, batches), OneFOneB(k, m, batches), AFP(k, m, batches, adv),
			PipeDream(k, m, batches), PipeDream2BW(k, m, batches),
		} {
			if err := s.Validate(); err != nil {
				t.Log(err)
				return false
			}
			for st, fl := range s.MaxInFlight() {
				if fl > m*batches {
					t.Logf("%s stage %d in-flight %d exceeds total micros", s.Name, st, fl)
					return false
				}
			}
		}
		// AFP stash bound: min(M, K-s+advance[s]) per batch.
		afp := AFP(k, m, batches, adv)
		for st, fl := range afp.MaxInFlight() {
			want := k - st + adv[st]
			if want > m {
				want = m
			}
			if fl != want {
				t.Logf("AFP stage %d in-flight %d, want %d", st, fl, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
