package sched

import (
	"fmt"
	"strings"
)

// Analysis summarizes a schedule's legality and resource demands. It is
// the single occupancy model shared by the real runtime (core.Pipeline
// asserts its measured StageMetrics against it) and the simulator
// (pipesim derives activation-stash memory from it), which is what makes
// sim-vs-real cross-validation possible: both consumers answer "what
// should stage s do, and what does that cost" from the same object.
type Analysis struct {
	// Stages is the pipeline depth K.
	Stages int
	// Micros is the number of distinct micro-batches every GPU processes.
	Micros int
	// MaxMicro is the largest micro index that appears (single-flush
	// schedules over m micros have Micros == m and MaxMicro == m−1).
	MaxMicro int
	// Fwd[k] and Bwd[k] count the forward and backward passes of GPU k;
	// a split backward's BwdIn op counts in Bwd (it is the pass that
	// unblocks the upstream stage) and its BwdW op counts in BwdW.
	Fwd, Bwd []int
	// BwdW[k] counts GPU k's grad-weight ops; zero for schedules whose
	// backwards are combined Bwd ops.
	BwdW []int
	// MaxInFlight[k] is GPU k's activation-stash high-water mark: the
	// peak number of micro-batches whose forward has run but whose
	// backward has not.
	MaxInFlight []int
	// WeightVersions[k] is how many weight versions stage k keeps
	// resident under this schedule.
	WeightVersions []int
}

// TotalOps returns the schedule-wide op count (forwards plus backwards,
// counting both halves of split backwards, across all GPUs) — the
// denominator observability cross-checks use when comparing obs-measured
// op counters against the analysis.
func (a *Analysis) TotalOps() int {
	n := 0
	for k := range a.Fwd {
		n += a.Fwd[k] + a.Bwd[k] + a.BwdW[k]
	}
	return n
}

// Analyze checks a schedule's full legality and returns its occupancy
// analysis. Legality has two layers:
//
//  1. per-GPU structure (Schedule.Validate): each micro's forward and
//     backward appear exactly once, in that order;
//  2. cross-stage dependencies: stage s's forward of micro m consumes
//     stage s−1's forward output, and stage s's backward of micro m
//     consumes stage s+1's backward output (the last stage's loss
//     gradient is local). Analyze executes the schedule as a zero-cost
//     event simulation over that dependency graph and reports a
//     deadlock — e.g. an AFP advance vector where a downstream stage
//     out-runs its upstream — as an error naming the stuck ops.
//
// A schedule that passes Analyze runs to completion on both the real
// runtime and the simulator.
func Analyze(s *Schedule) (*Analysis, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	k := len(s.PerGPU)
	if k == 0 {
		return nil, fmt.Errorf("sched %s: no GPUs", s.Name)
	}
	a := &Analysis{
		Stages:         k,
		MaxMicro:       -1,
		Fwd:            make([]int, k),
		Bwd:            make([]int, k),
		BwdW:           make([]int, k),
		MaxInFlight:    s.MaxInFlight(),
		WeightVersions: make([]int, k),
	}
	for g, ops := range s.PerGPU {
		if s.WeightVersions != nil {
			a.WeightVersions[g] = s.WeightVersions(g, k)
		} else {
			a.WeightVersions[g] = 1
		}
		for _, op := range ops {
			if op.Micro < 0 {
				return nil, fmt.Errorf("sched %s: GPU %d has negative micro index %d", s.Name, g, op.Micro)
			}
			if op.Micro > a.MaxMicro {
				a.MaxMicro = op.Micro
			}
			switch op.Kind {
			case Fwd:
				a.Fwd[g]++
			case BwdW:
				a.BwdW[g]++
			default:
				a.Bwd[g]++
			}
		}
	}

	// Every micro-batch crosses every stage, so all GPUs must process the
	// same micro set.
	micros := make(map[int]bool)
	for _, op := range s.PerGPU[0] {
		if op.Kind == Fwd {
			micros[op.Micro] = true
		}
	}
	a.Micros = len(micros)
	for g := 1; g < k; g++ {
		if a.Fwd[g] != a.Micros {
			return nil, fmt.Errorf("sched %s: GPU %d covers %d micros, GPU 0 covers %d", s.Name, g, a.Fwd[g], a.Micros)
		}
		for _, op := range s.PerGPU[g] {
			if op.Kind == Fwd && !micros[op.Micro] {
				return nil, fmt.Errorf("sched %s: GPU %d runs %s unknown to GPU 0", s.Name, g, op)
			}
		}
	}

	// Zero-cost event execution over the cross-stage dependency graph.
	idx := make([]int, k)
	fwdDone := make([]map[int]bool, k)
	bwdDone := make([]map[int]bool, k)
	for g := range fwdDone {
		fwdDone[g] = make(map[int]bool, a.Micros)
		bwdDone[g] = make(map[int]bool, a.Micros)
	}
	remaining := 0
	for _, ops := range s.PerGPU {
		remaining += len(ops)
	}
	for remaining > 0 {
		progressed := false
		for g := 0; g < k; g++ {
			for idx[g] < len(s.PerGPU[g]) {
				op := s.PerGPU[g][idx[g]]
				var ready bool
				switch op.Kind {
				case Fwd:
					ready = g == 0 || fwdDone[g-1][op.Micro]
				case Bwd, BwdIn:
					if g == k-1 {
						// Loss gradient is local; Validate plus program
						// order guarantee the forward already ran.
						ready = fwdDone[g][op.Micro]
					} else {
						ready = bwdDone[g+1][op.Micro]
					}
				case BwdW:
					// Grad-weight needs only the local gradient received at
					// this GPU's BwdIn; Validate guarantees the Bi precedes
					// the Bw in program order, so by execution here it ran.
					ready = bwdDone[g][op.Micro]
				}
				if !ready {
					break
				}
				switch op.Kind {
				case Fwd:
					fwdDone[g][op.Micro] = true
				case Bwd, BwdIn:
					// The upstream stage's backward consumes the gradient
					// emitted here: a split backward emits it at BwdIn.
					bwdDone[g][op.Micro] = true
				}
				idx[g]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			var stuck []string
			for g := 0; g < k; g++ {
				if idx[g] < len(s.PerGPU[g]) {
					stuck = append(stuck, fmt.Sprintf("GPU %d waits on %s", g, s.PerGPU[g][idx[g]]))
				}
			}
			return nil, fmt.Errorf("sched %s: dependency deadlock: %s", s.Name, strings.Join(stuck, "; "))
		}
	}
	return a, nil
}
