package pipesim

import (
	"math"
	"strings"
	"testing"

	"avgpipe/internal/cluster"
	"avgpipe/internal/comm"
	"avgpipe/internal/device"
	"avgpipe/internal/sched"
	"avgpipe/internal/workload"
)

// testWorkload builds a uniform synthetic workload: `layers` identical
// layers of 1 GFLOP forward (2 backward) per sample, 4 MB params, actKB
// of boundary activation per sample.
func testWorkload(layers, batch int, actKB int64) *workload.Workload {
	ls := make([]workload.LayerCost, layers)
	for i := range ls {
		ls[i] = workload.LayerCost{
			Name: "l", FwdFLOPs: 1e9, BwdFLOPs: 2e9,
			ParamBytes: 4 << 20, OutActBytes: actKB << 10, StashBytes: 2 * actKB << 10,
		}
	}
	return &workload.Workload{
		Name: "synthetic", Layers: ls, BatchSize: batch,
		SatSamples: 0, OptimStateFactor: 1, MaxPipelines: 4,
	}
}

// evenStages splits the workload's layers into k equal stages.
func evenStages(w *workload.Workload, k int) []workload.Stage {
	per := len(w.Layers) / k
	stages := make([]workload.Stage, k)
	for s := 0; s < k; s++ {
		last := (s+1)*per - 1
		if s == k-1 {
			last = len(w.Layers) - 1
		}
		stages[s] = w.MakeStage(s*per, last)
	}
	return stages
}

func testCluster(k int, link comm.Link) *cluster.Cluster {
	gpu := device.GPU{Name: "test", PeakFLOPs: 1e12, SatSamples: 0, MemBytes: 32 << 30}
	return cluster.New(1, k, gpu, link, link)
}

func fastLink() comm.Link { return comm.Link{Name: "fast", Latency: 0, BytesPerSec: 1e15} }
func slowLink() comm.Link {
	return comm.Link{Name: "slow", Latency: 0, BytesPerSec: 125e6}
}

func run(t *testing.T, w *workload.Workload, c *cluster.Cluster, s *sched.Schedule, micro, pipes, batches int) *Result {
	t.Helper()
	r, err := Run(Config{
		Workload: w, Cluster: c, Stages: evenStages(w, c.Size()),
		Micro: micro, Pipelines: pipes, Schedule: s, Batches: batches,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSingleStageClosedForm(t *testing.T) {
	w := testWorkload(1, 8, 64)
	c := testCluster(1, fastLink())
	m := 4
	r := run(t, w, c, sched.AFAB(1, m, 1), m, 1, 1)
	// Each micro: 2 samples × 1 GFLOP / 1 TFLOP = 2 ms fwd, 4 ms bwd.
	want := float64(m) * (0.002 + 0.004)
	if math.Abs(r.Makespan-want) > 1e-9 {
		t.Fatalf("makespan %v, want %v", r.Makespan, want)
	}
	g := r.PerGPU[0]
	if math.Abs(g.Busy-want) > 1e-9 || g.Bubble > 1e-9 || g.CommBlocked != 0 {
		t.Fatalf("single stage must be 100%% busy: %+v", g)
	}
}

func TestTimeConservation(t *testing.T) {
	w := testWorkload(4, 8, 512)
	c := testCluster(4, slowLink())
	for _, s := range []*sched.Schedule{
		sched.AFAB(4, 4, 2), sched.OneFOneB(4, 4, 2),
		sched.AFP(4, 4, 2, []int{2, 1, 1, 0}), sched.PipeDream(4, 4, 2),
	} {
		r := run(t, w, c, s, 4, 1, 2)
		for k, g := range r.PerGPU {
			total := g.Busy + g.Bubble + g.CommBlocked
			if math.Abs(total-r.Makespan) > 1e-9 {
				t.Fatalf("%s GPU %d: busy+idle=%v != makespan %v", s.Name, k, total, r.Makespan)
			}
		}
	}
}

func TestFastLinksMake1F1BMatchAFAB(t *testing.T) {
	// §4.2: with negligible communication, advance_num can stay 0 — 1F1B
	// loses nothing against AFAB.
	w := testWorkload(4, 8, 64)
	c := testCluster(4, fastLink())
	m := 8
	afab := run(t, w, c, sched.AFAB(4, m, 1), m, 1, 1)
	ofob := run(t, w, c, sched.OneFOneB(4, m, 1), m, 1, 1)
	if rel := (ofob.Makespan - afab.Makespan) / afab.Makespan; rel > 0.01 {
		t.Fatalf("with fast links 1F1B should match AFAB: %v vs %v", ofob.Makespan, afab.Makespan)
	}
}

func TestSlowLinksExposeOneFOneB(t *testing.T) {
	// §4.1: with non-trivial transfer times (≈ half the per-micro
	// compute), AFAB overlaps communication while 1F1B's strict
	// alternation exposes a round trip per micro-batch. (When links are
	// so slow the pipeline becomes bandwidth-bound, full-duplex overlap
	// lets 1F1B catch back up; the paper's testbed sits in the moderate
	// regime.)
	w := testWorkload(4, 8, 192)
	c := testCluster(4, slowLink())
	m := 8
	afab := run(t, w, c, sched.AFAB(4, m, 1), m, 1, 1)
	ofob := run(t, w, c, sched.OneFOneB(4, m, 1), m, 1, 1)
	if ofob.Makespan <= afab.Makespan*1.05 {
		t.Fatalf("slow links should hurt 1F1B: AFAB %v, 1F1B %v", afab.Makespan, ofob.Makespan)
	}
	// The damage must show up as communication-blocked time.
	last := ofob.PerGPU[3]
	if last.CommBlocked <= afab.PerGPU[3].CommBlocked {
		t.Fatalf("1F1B should be comm-blocked more: %v vs %v", last.CommBlocked, afab.PerGPU[3].CommBlocked)
	}
}

func TestAFPRecoversAFABTime(t *testing.T) {
	// §4.2: advance forward propagation approaches AFAB's time with less
	// than AFAB's memory.
	w := testWorkload(4, 8, 192)
	c := testCluster(4, slowLink())
	m := 8
	afab := run(t, w, c, sched.AFAB(4, m, 1), m, 1, 1)
	ofob := run(t, w, c, sched.OneFOneB(4, m, 1), m, 1, 1)
	afp := run(t, w, c, sched.AFP(4, m, 1, []int{3, 2, 1, 0}), m, 1, 1)
	if afp.Makespan >= ofob.Makespan {
		t.Fatalf("AFP should beat 1F1B: %v vs %v", afp.Makespan, ofob.Makespan)
	}
	if afp.Makespan > afab.Makespan*1.15 {
		t.Fatalf("AFP should approach AFAB: %v vs %v", afp.Makespan, afab.Makespan)
	}
	if afp.PeakMemory() >= afab.PeakMemory() {
		t.Fatalf("AFP must use less memory than AFAB: %d vs %d", afp.PeakMemory(), afab.PeakMemory())
	}
	if afp.PeakMemory() <= ofob.PeakMemory() {
		t.Fatalf("AFP uses more memory than 1F1B: %d vs %d", afp.PeakMemory(), ofob.PeakMemory())
	}
}

func TestMemoryAccounting(t *testing.T) {
	w := testWorkload(4, 8, 1024)
	c := testCluster(4, fastLink())
	m := 4
	afab := run(t, w, c, sched.AFAB(4, m, 1), m, 1, 1)
	ofob := run(t, w, c, sched.OneFOneB(4, m, 1), m, 1, 1)
	// AFAB stashes M micros on every stage; 1F1B stashes K−s.
	b := int64(2) // samples per micro
	stash := int64(2*1024) << 10
	for s := 0; s < 4; s++ {
		wantA := stash * b * int64(m)
		if got := afab.PerGPU[s].Memory.Activations; got != wantA {
			t.Fatalf("AFAB stage %d activations %d, want %d", s, got, wantA)
		}
		wantO := stash * b * int64(4-s)
		if got := ofob.PerGPU[s].Memory.Activations; got != wantO {
			t.Fatalf("1F1B stage %d activations %d, want %d", s, got, wantO)
		}
	}
	// Downstream stages save the most under 1F1B (Fig. 17c shape).
	saved0 := afab.PerGPU[0].Memory.Total() - ofob.PerGPU[0].Memory.Total()
	saved3 := afab.PerGPU[3].Memory.Total() - ofob.PerGPU[3].Memory.Total()
	if saved3 <= saved0 {
		t.Fatalf("1F1B should save most on the last stage: %d vs %d", saved3, saved0)
	}
}

func TestPipeDreamVersionMemoryAndOOM(t *testing.T) {
	w := testWorkload(4, 8, 64)
	c := testCluster(4, fastLink())
	m := 4
	pd := run(t, w, c, sched.PipeDream(4, m, 2), m, 1, 2)
	ofob := run(t, w, c, sched.OneFOneB(4, m, 1), m, 1, 1)
	// Stage 0 keeps K=4 weight versions.
	if pd.PerGPU[0].Memory.Weights != 4*ofob.PerGPU[0].Memory.Weights {
		t.Fatalf("PipeDream stage 0 weights %d, want 4x %d",
			pd.PerGPU[0].Memory.Weights, ofob.PerGPU[0].Memory.Weights)
	}
	if pd.OOM != nil {
		t.Fatalf("unexpected OOM: %v", pd.OOM)
	}
	// Shrink capacity below the multi-version footprint: OOM must fire.
	tiny := testCluster(4, fastLink()).SetMemBytes(pd.PerGPU[0].Memory.Total() - 1)
	r, err := Run(Config{Workload: w, Cluster: tiny, Stages: evenStages(w, 4),
		Micro: m, Pipelines: 1, Schedule: sched.PipeDream(4, m, 2), Batches: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM == nil {
		t.Fatal("expected OOM")
	}
	if !strings.Contains(r.OOM.Error(), "out of memory") {
		t.Fatalf("OOM error text: %v", r.OOM)
	}
}

func TestParallelPipelinesRaiseUtilization(t *testing.T) {
	w := testWorkload(4, 8, 64)
	w.SatSamples = 8 // unsaturated kernels
	c := testCluster(4, fastLink())
	m := 4
	r1 := run(t, w, c, sched.AFAB(4, m, 1), m, 1, 1)
	r3 := run(t, w, c, sched.AFAB(4, m, 1), m, 3, 1)
	if r3.PerGPU[0].PeakUtil <= r1.PerGPU[0].PeakUtil {
		t.Fatalf("more pipelines must raise peak utilization: %v vs %v",
			r3.PerGPU[0].PeakUtil, r1.PerGPU[0].PeakUtil)
	}
	// And pipelines share the device: per-pipeline batch time grows less
	// than proportionally (that is the whole point of elastic averaging).
	if r3.BatchTime >= 3*r1.BatchTime {
		t.Fatalf("3 pipelines must cost less than 3x: %v vs 3x %v", r3.BatchTime, r1.BatchTime)
	}
	// Memory scales with N.
	if r3.PerGPU[0].Memory.Weights != 3*r1.PerGPU[0].Memory.Weights {
		t.Fatal("replica weights must scale with N")
	}
}

func TestRefModelMemory(t *testing.T) {
	w := testWorkload(4, 8, 64)
	c := testCluster(4, fastLink())
	m := 4
	st := evenStages(w, 4)
	base, err := Run(Config{Workload: w, Cluster: c, Stages: st, Micro: m,
		Pipelines: 2, Schedule: sched.AFAB(4, m, 1), Batches: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(Config{Workload: w, Cluster: c, Stages: st, Micro: m,
		Pipelines: 2, Schedule: sched.AFAB(4, m, 1), Batches: 1, RefModel: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.PerGPU[0].Memory.Weights-base.PerGPU[0].Memory.Weights != st[0].ParamBytes {
		t.Fatal("reference model must add exactly one co-partitioned copy")
	}
}

func TestMoreMicroBatchesShrinkBubbles(t *testing.T) {
	// §2: more micro-batches reduce the bubble fraction under AFAB with
	// saturated kernels.
	w := testWorkload(4, 64, 64)
	c := testCluster(4, fastLink())
	r4 := run(t, w, c, sched.AFAB(4, 4, 1), 4, 1, 1)
	r16 := run(t, w, c, sched.AFAB(4, 16, 1), 16, 1, 1)
	bubbleFrac := func(r *Result) float64 {
		return r.PerGPU[0].Bubble / r.Makespan
	}
	if bubbleFrac(r16) >= bubbleFrac(r4) {
		t.Fatalf("more micros must shrink bubbles: %v vs %v", bubbleFrac(r16), bubbleFrac(r4))
	}
}

func TestDataParallelSlowOnEthernet(t *testing.T) {
	w := testWorkload(6, 12, 64)
	slow := testCluster(6, slowLink())
	dp := DataParallel(w, slow)
	pp := run(t, w, slow, sched.AFAB(6, 4, 1), 4, 1, 1)
	if dp.BatchTime <= pp.BatchTime {
		t.Fatalf("DP must lose to pipelines on slow links: %v vs %v", dp.BatchTime, pp.BatchTime)
	}
	// Every DP GPU carries the full model.
	full := w.TotalParamBytes()
	if dp.PerGPU[0].Memory.Weights != full {
		t.Fatal("DP replicates the whole model")
	}
	fast := testCluster(6, fastLink())
	dpFast := DataParallel(w, fast)
	if dpFast.BatchTime >= dp.BatchTime {
		t.Fatal("faster links must reduce DP batch time")
	}
}

func TestDeterminism(t *testing.T) {
	w := testWorkload(4, 8, 512)
	c := testCluster(4, slowLink())
	a := run(t, w, c, sched.OneFOneB(4, 8, 1), 8, 2, 1)
	b := run(t, w, c, sched.OneFOneB(4, 8, 1), 8, 2, 1)
	if a.Makespan != b.Makespan {
		t.Fatal("simulation must be deterministic")
	}
	for k := range a.PerGPU {
		if a.PerGPU[k].Busy != b.PerGPU[k].Busy || a.PerGPU[k].CommBlocked != b.PerGPU[k].CommBlocked {
			t.Fatal("per-GPU stats must be deterministic")
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	w := testWorkload(4, 8, 64)
	c := testCluster(4, fastLink())
	cases := []Config{
		{Workload: w, Cluster: c, Stages: evenStages(w, 4), Micro: 3, Pipelines: 1,
			Schedule: sched.AFAB(4, 3, 1), Batches: 1}, // 8 % 3 != 0
		{Workload: w, Cluster: c, Stages: evenStages(w, 4)[:2], Micro: 4, Pipelines: 1,
			Schedule: sched.AFAB(2, 4, 1), Batches: 1}, // stages != GPUs
		{Workload: w, Cluster: c, Stages: evenStages(w, 4), Micro: 4, Pipelines: 0,
			Schedule: sched.AFAB(4, 4, 1), Batches: 1}, // no pipelines
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestAvgUtilAndTimelineConsistency(t *testing.T) {
	w := testWorkload(4, 8, 512)
	c := testCluster(4, slowLink())
	r := run(t, w, c, sched.OneFOneB(4, 8, 1), 8, 1, 1)
	for k, g := range r.PerGPU {
		// Timeline area must equal Busy × PeakUtil.
		var area float64
		for _, iv := range g.Timeline {
			if iv.End < iv.Start {
				t.Fatalf("GPU %d: inverted interval", k)
			}
			area += iv.End - iv.Start
		}
		if math.Abs(area-g.Busy) > 1e-9 {
			t.Fatalf("GPU %d: timeline %v != busy %v", k, area, g.Busy)
		}
		if au := g.AvgUtil(r.Makespan); au > g.PeakUtil || au < 0 {
			t.Fatalf("GPU %d: avg util %v out of range", k, au)
		}
	}
	if r.AvgUtilization() <= 0 {
		t.Fatal("cluster utilization must be positive")
	}
}
