package pipesim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"avgpipe/internal/cluster"
	"avgpipe/internal/comm"
	"avgpipe/internal/device"
	"avgpipe/internal/sched"
	"avgpipe/internal/workload"
)

// randomFixture draws a small random workload/cluster/schedule setup.
func randomFixture(r *rand.Rand) (Config, int) {
	k := 2 + r.Intn(4)
	layers := k + r.Intn(4)
	batch := []int{4, 8, 12, 16}[r.Intn(4)]
	ls := make([]workload.LayerCost, layers)
	for i := range ls {
		ls[i] = workload.LayerCost{
			Name:        "l",
			FwdFLOPs:    1e8 + float64(r.Intn(10))*1e8,
			BwdFLOPs:    2e8 + float64(r.Intn(20))*1e8,
			ParamBytes:  int64(1+r.Intn(8)) << 20,
			OutActBytes: int64(16+r.Intn(256)) << 10,
			StashBytes:  int64(32+r.Intn(512)) << 10,
		}
		if ls[i].BwdFLOPs < ls[i].FwdFLOPs {
			ls[i].BwdFLOPs = ls[i].FwdFLOPs
		}
		if ls[i].StashBytes < ls[i].OutActBytes {
			ls[i].StashBytes = ls[i].OutActBytes
		}
	}
	w := &workload.Workload{Name: "prop", Layers: ls, BatchSize: batch,
		SatSamples: float64(r.Intn(8)), OptimStateFactor: float64(r.Intn(3)), MaxPipelines: 4}
	gpu := device.GPU{Name: "p", PeakFLOPs: 1e12, MemBytes: 64 << 30}
	link := comm.Link{Name: "p", Latency: 0, BytesPerSec: 125e6 * float64(1+r.Intn(8))}
	c := cluster.New(1, k, gpu, link, link)
	// Pick a micro count dividing the batch.
	divs := []int{}
	for d := 1; d <= batch; d++ {
		if batch%d == 0 {
			divs = append(divs, d)
		}
	}
	m := divs[r.Intn(len(divs))]
	stages := make([]workload.Stage, k)
	per := layers / k
	for s := 0; s < k; s++ {
		last := (s+1)*per - 1
		if s == k-1 {
			last = layers - 1
		}
		stages[s] = w.MakeStage(s*per, last)
	}
	n := 1 + r.Intn(3)
	batches := 1 + r.Intn(2)
	return Config{Workload: w, Cluster: c, Stages: stages, Micro: m,
		Pipelines: n, Batches: batches}, k
}

// Property: for every generator and random fixture, the simulation
// conserves time (busy + idle = makespan on every GPU), produces positive
// busy time, and keeps utilization within [0, 1].
func TestPropSimulationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg, k := randomFixture(r)
		gens := []func(k, m, b int) *sched.Schedule{
			sched.AFAB, sched.OneFOneB, sched.PipeDream, sched.PipeDream2BW,
		}
		cfg.Schedule = gens[r.Intn(len(gens))](k, cfg.Micro, cfg.Batches)
		res, err := Run(cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		for g, st := range res.PerGPU {
			if st.Busy <= 0 {
				t.Logf("gpu %d: no busy time", g)
				return false
			}
			if math.Abs(st.Busy+st.Bubble+st.CommBlocked-res.Makespan) > 1e-9 {
				t.Logf("gpu %d: time not conserved", g)
				return false
			}
			if st.PeakUtil <= 0 || st.PeakUtil > 1 {
				t.Logf("gpu %d: bad util %v", g, st.PeakUtil)
				return false
			}
			if st.Memory.Total() <= 0 {
				t.Logf("gpu %d: no memory", g)
				return false
			}
		}
		return res.BatchTime > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: AFAB's makespan never beats the pipeline-ideal lower bound
// (bottleneck stage work), and adding pipelines never reduces the
// per-iteration makespan.
func TestPropMakespanBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg, k := randomFixture(r)
		cfg.Pipelines = 1
		cfg.Batches = 1
		cfg.Schedule = sched.AFAB(k, cfg.Micro, 1)
		one, err := Run(cfg)
		if err != nil {
			return false
		}
		// Lower bound: the bottleneck GPU's total compute.
		var bound float64
		for _, st := range one.PerGPU {
			if st.Busy > bound {
				bound = st.Busy
			}
		}
		if one.Makespan < bound-1e-9 {
			t.Logf("makespan %v below bottleneck busy %v", one.Makespan, bound)
			return false
		}
		two := cfg
		two.Pipelines = 2
		res2, err := Run(two)
		if err != nil {
			return false
		}
		// Doubling the work cannot make the iteration much faster.
		// (Somewhat faster is legitimate: twice as many smaller units
		// interleave more finely, hiding ramp and transfer latency —
		// random fixtures reach ~6% gains, e.g. seed
		// 6143981616305166892.)
		if res2.Makespan < 0.9*one.Makespan {
			t.Logf("2 pipelines finished an iteration much faster than 1: %v vs %v", res2.Makespan, one.Makespan)
			return false
		}
		// Per data batch, 2 pipelines must not be much worse than 2x (a
		// small overshoot is possible from interleaving friction in the
		// merged per-GPU op order).
		return res2.Makespan <= 2.25*one.Makespan
	}
	// Deterministic input corpus: testing/quick's default Rand is
	// time-seeded, and this property's tolerance has a legitimate tail
	// (finer interleaving at N=2 can hide >10% of ramp/transfer latency
	// on extreme fixtures), so CI checks a fixed set of seeds.
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// Property: expanded schedules remain valid and scale op counts by N.
func TestPropExpandSchedule(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(5)
		m := 1 + r.Intn(8)
		n := 1 + r.Intn(4)
		s := sched.OneFOneB(k, m, 1)
		e := expandSchedule(s, n)
		if err := e.Validate(); err != nil {
			t.Log(err)
			return false
		}
		for g := range e.PerGPU {
			if len(e.PerGPU[g]) != n*len(s.PerGPU[g]) {
				return false
			}
		}
		// In-flight bound scales by exactly N.
		orig := s.MaxInFlight()
		exp := e.MaxInFlight()
		for g := range orig {
			if exp[g] != n*orig[g] {
				t.Logf("gpu %d inflight %d, want %d", g, exp[g], n*orig[g])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: memory accounting is monotone in pipelines and versions.
func TestPropMemoryMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg, k := randomFixture(r)
		cfg.Pipelines = 1
		cfg.Schedule = sched.OneFOneB(k, cfg.Micro, cfg.Batches)
		one, err := Run(cfg)
		if err != nil {
			return false
		}
		cfg2 := cfg
		cfg2.Pipelines = 2
		two, err := Run(cfg2)
		if err != nil {
			return false
		}
		if two.PeakMemory() <= one.PeakMemory() {
			return false
		}
		pd := cfg
		pd.Schedule = sched.PipeDream(k, cfg.Micro, cfg.Batches)
		pdr, err := Run(pd)
		if err != nil {
			return false
		}
		// Multi-version weights cannot be cheaper than single-version.
		return pdr.PerGPU[0].Memory.Weights >= one.PerGPU[0].Memory.Weights
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
