package pipesim

import (
	"fmt"
	"io"

	"avgpipe/internal/obs"
)

// TraceEvent is one Chrome-trace event. It is an alias of the obs
// package's event type: the simulator and the real runtime
// (core.Pipeline.WriteTrace) share one obs.Tracer implementation, so
// simulated and measured traces are directly diff-able.
type TraceEvent = obs.TraceEvent

// MetadataEvent names a trace track (one per GPU/stage).
func MetadataEvent(name string, tid int) TraceEvent {
	return TraceEvent{
		Name: "thread_name", Cat: "__metadata", Phase: "M",
		PID: 1, TID: tid,
		Args: map[string]any{"name": name},
	}
}

// WriteTraceEvents encodes events in the Chrome-trace JSON envelope,
// with otherData carried alongside for run-level metadata. Encoder
// failures are propagated with context, not swallowed.
func WriteTraceEvents(w io.Writer, events []TraceEvent, otherData map[string]any) error {
	t := obs.NewTracer("")
	t.Add(events...)
	for k, v := range otherData {
		t.SetMeta(k, v)
	}
	if err := t.Write(w); err != nil {
		return fmt.Errorf("pipesim: write trace events: %w", err)
	}
	return nil
}

// Tracer renders the simulation's per-GPU timelines into an obs.Tracer:
// each GPU is a track; busy intervals become spans named after the op
// they executed, annotated with the utilization level, and the gaps read
// directly as bubbles/communication stalls.
func (r *Result) Tracer() *obs.Tracer {
	t := obs.NewTracer("pipesim.Result")
	t.Process(1, "simulated pipeline")
	for g, st := range r.PerGPU {
		t.Thread(1, g+1, fmt.Sprintf("GPU %d", g+1))
		for i, iv := range st.Timeline {
			name := iv.Label
			if name == "" {
				name = fmt.Sprintf("op %d", i)
			}
			t.Span(1, g+1, name, "compute", iv.Start*1e6, (iv.End-iv.Start)*1e6,
				map[string]any{"util": iv.Util})
		}
	}
	t.SetMeta("batchTime_s", r.BatchTime)
	t.SetMeta("makespan_s", r.Makespan)
	return t
}

// WriteTrace renders the simulation as a Chrome trace (load in
// chrome://tracing or ui.perfetto.dev) through the shared obs.Tracer.
func (r *Result) WriteTrace(w io.Writer) error {
	if err := r.Tracer().Write(w); err != nil {
		return fmt.Errorf("pipesim: write trace: %w", err)
	}
	return nil
}
