package pipesim

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one Chrome-trace "complete" event (the chrome://tracing
// and Perfetto JSON format). The shape is shared by the simulator's
// Result.WriteTrace and the real runtime's core.Pipeline.WriteTrace so
// simulated and measured traces are directly diff-able.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// MetadataEvent names a trace track (one per GPU/stage).
func MetadataEvent(name string, tid int) TraceEvent {
	return TraceEvent{
		Name: "thread_name", Cat: "__metadata", Phase: "M",
		PID: 1, TID: tid,
		Args: map[string]any{"name": name},
	}
}

// WriteTraceEvents encodes events in the Chrome-trace JSON envelope,
// with otherData carried alongside for run-level metadata.
func WriteTraceEvents(w io.Writer, events []TraceEvent, otherData map[string]any) error {
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData":       otherData,
	})
}

// WriteTrace renders the simulation's per-GPU timelines as a Chrome trace
// (load in chrome://tracing or ui.perfetto.dev). Each GPU is a track;
// busy intervals become spans named after the op they executed,
// annotated with the utilization level, and the gaps read directly as
// bubbles/communication stalls.
func (r *Result) WriteTrace(w io.Writer) error {
	var events []TraceEvent
	for g, st := range r.PerGPU {
		events = append(events, MetadataEvent(fmt.Sprintf("GPU %d", g+1), g+1))
		for i, iv := range st.Timeline {
			name := iv.Label
			if name == "" {
				name = fmt.Sprintf("op %d", i)
			}
			events = append(events, TraceEvent{
				Name:  name,
				Cat:   "compute",
				Phase: "X",
				TS:    iv.Start * 1e6,
				Dur:   (iv.End - iv.Start) * 1e6,
				PID:   1,
				TID:   g + 1,
				Args:  map[string]any{"util": iv.Util},
			})
		}
	}
	return WriteTraceEvents(w, events, map[string]any{
		"batchTime_s": r.BatchTime,
		"makespan_s":  r.Makespan,
	})
}
