package pipesim

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one Chrome-trace "complete" event (the chrome://tracing
// and Perfetto JSON format).
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteTrace renders the simulation's per-GPU timelines as a Chrome trace
// (load in chrome://tracing or ui.perfetto.dev). Each GPU is a track;
// busy intervals become spans, annotated with the utilization level, and
// the gaps read directly as bubbles/communication stalls.
func (r *Result) WriteTrace(w io.Writer) error {
	var events []traceEvent
	for g, st := range r.PerGPU {
		events = append(events, traceEvent{
			Name: "thread_name", Cat: "__metadata", Phase: "M",
			PID: 1, TID: g + 1,
			Args: map[string]any{"name": fmt.Sprintf("GPU %d", g+1)},
		})
		for i, iv := range st.Timeline {
			events = append(events, traceEvent{
				Name:  fmt.Sprintf("op %d", i),
				Cat:   "compute",
				Phase: "X",
				TS:    iv.Start * 1e6,
				Dur:   (iv.End - iv.Start) * 1e6,
				PID:   1,
				TID:   g + 1,
				Args:  map[string]any{"util": iv.Util},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData": map[string]any{
			"batchTime_s": r.BatchTime,
			"makespan_s":  r.Makespan,
		},
	})
}
