// Package pipesim is a discrete-event simulator of pipeline-parallel DNN
// training over a modeled GPU cluster. Given a workload's per-stage cost
// model, a cluster topology, a schedule (internal/sched), and the AvgPipe
// parallelism degrees (M micro-batches, N parallel pipelines), it computes
// per-GPU busy/communication-blocked/bubble time, utilization timelines,
// per-batch training time, and peak memory footprints.
//
// Modeling choices (documented in DESIGN.md):
//
//   - Transfers are asynchronous: a stage's output starts moving as soon
//     as it is produced, serialized FIFO per link and direction. Compute
//     only stalls when it *waits* for an in-flight arrival — this is what
//     lets AFAB overlap communication with computation while 1F1B, whose
//     critical path crosses the links once per micro-batch in each
//     direction, stalls repeatedly (§4.1).
//   - The N parallel pipelines are simulated explicitly by expanding the
//     per-pipeline schedule: micro-batch m of pipeline p becomes global
//     unit m·N+p, with the N pipelines' units interleaved on every GPU.
//     Each kernel runs at efficiency eff(N·b) (co-running pipelines raise
//     arithmetic intensity), and each pipeline's transfers are separate
//     link messages. This captures the paper's key overlap effect: while
//     one pipeline waits for a transfer, the other pipelines' compute
//     fills the gap. Total per-GPU communication still scales with N
//     (matching (𝕋^k)* = (n*/n)·𝕋^k, Eq. 4).
package pipesim

import (
	"errors"
	"fmt"
	"math"

	"avgpipe/internal/cluster"
	"avgpipe/internal/device"
	"avgpipe/internal/obs"
	"avgpipe/internal/sched"
	"avgpipe/internal/workload"
)

// ErrDeadlock reports that a schedule's per-GPU op orders form a
// dependency cycle (e.g. an AFP advance vector where a downstream stage
// runs further ahead than its upstream can feed).
var ErrDeadlock = errors.New("schedule deadlock")

// Config describes one simulated training configuration.
type Config struct {
	Workload *workload.Workload
	Cluster  *cluster.Cluster
	// Stages maps pipeline stage index to its aggregated layer costs; one
	// stage per GPU.
	Stages []workload.Stage
	// Micro is M, the number of micro-batches each batch is sliced into.
	Micro int
	// Pipelines is N, the number of parallel pipelines (1 for non-AvgPipe
	// baselines).
	Pipelines int
	// Schedule gives the per-GPU op order; its micro indices must cover
	// Micro × Batches.
	Schedule *sched.Schedule
	// Batches is how many consecutive batches to simulate. Continuous
	// schedules need several to expose steady state.
	Batches int
	// RefModel adds the co-partitioned elastic-averaging reference model
	// to every GPU's memory footprint (AvgPipe only).
	RefModel bool
	// Recompute enables GPipe-style activation recomputation: only each
	// micro-batch's stage-boundary input is stashed, and the forward is
	// replayed before the backward (bwd cost += fwd cost). The paper's
	// experiments disable it; it is exposed here for the ablation study.
	Recompute bool
	// Obs selects the metrics registry the simulation records run and
	// deadlock counters into (nil = obs.Default()).
	Obs *obs.Registry
}

// registry resolves the configured metrics registry.
func (c *Config) registry() *obs.Registry {
	if c.Obs != nil {
		return c.Obs
	}
	return obs.Default()
}

// Interval is one span of a GPU's utilization timeline.
type Interval struct {
	Start, End float64 // seconds
	Util       float64 // fraction of peak (0 while idle)
	// Label names the op that ran ("F3", "B3"), matching the real
	// runtime's trace event names.
	Label string
}

// GPUStats aggregates one GPU's simulated behaviour over all batches.
type GPUStats struct {
	// Busy is the time spent computing.
	Busy float64
	// CommBlocked is the idle time attributable to waiting for in-flight
	// transfers (the T_com of Eq. 1).
	CommBlocked float64
	// Bubble is the remaining idle time, waiting on other GPUs' compute
	// (the T_bub of Eq. 1).
	Bubble float64
	// CommTotal is the total duration of transfers arriving at this GPU
	// (the 𝕋^k used by the predictor).
	CommTotal float64
	// PeakUtil is the utilization while computing.
	PeakUtil float64
	// Fwd and Bwd count the ops executed on this GPU, and PeakInFlight
	// is the stash high-water mark actually reached — the simulator-side
	// counterparts of the runtime's StageMetrics, asserted equal to the
	// schedule's analytic occupancy (sched.Analyze) by the
	// cross-validation tests. Under a split schedule Bwd counts the
	// grad-input (BwdIn) ops and BwdW the grad-weight ops, mirroring
	// StageMetrics.Bwd/BwdW.
	Fwd, Bwd, BwdW int
	PeakInFlight   int
	// Memory is the peak footprint breakdown.
	Memory device.MemoryBreakdown
	// Timeline is the busy-interval record (idle gaps implicit).
	Timeline []Interval
}

// AvgUtil returns the time-averaged utilization over [0, makespan].
func (g GPUStats) AvgUtil(makespan float64) float64 {
	if makespan <= 0 {
		return 0
	}
	var area float64
	for _, iv := range g.Timeline {
		area += (iv.End - iv.Start) * iv.Util
	}
	return area / makespan
}

// IdleTime returns bubble + communication-blocked time.
func (g GPUStats) IdleTime() float64 { return g.Bubble + g.CommBlocked }

// Result is the outcome of one simulation.
type Result struct {
	// Makespan is the total simulated time for all batches.
	Makespan float64
	// BatchTime is the steady-state per-batch time (Makespan / Batches).
	BatchTime float64
	// PerGPU holds one entry per pipeline stage.
	PerGPU []GPUStats
	// OOM is non-nil when some GPU's footprint exceeds its capacity; the
	// timing fields are still populated so callers can report both.
	OOM error
	// Config echoes the simulated configuration.
	Config Config
}

// PeakMemory returns the maximum per-GPU footprint in bytes.
func (r *Result) PeakMemory() int64 {
	var m int64
	for _, g := range r.PerGPU {
		if t := g.Memory.Total(); t > m {
			m = t
		}
	}
	return m
}

// AvgUtilization returns the mean over GPUs of time-averaged utilization.
func (r *Result) AvgUtilization() float64 {
	if len(r.PerGPU) == 0 {
		return 0
	}
	var s float64
	for _, g := range r.PerGPU {
		s += g.AvgUtil(r.Makespan)
	}
	return s / float64(len(r.PerGPU))
}

// Validate checks the configuration for internal consistency.
func (c *Config) Validate() error {
	k := len(c.Stages)
	if k == 0 || k != c.Cluster.Size() {
		return fmt.Errorf("pipesim: %d stages for %d GPUs", k, c.Cluster.Size())
	}
	if c.Micro <= 0 || c.Workload.BatchSize%c.Micro != 0 {
		return fmt.Errorf("pipesim: batch %d not divisible into %d micro-batches", c.Workload.BatchSize, c.Micro)
	}
	if c.Pipelines <= 0 {
		return fmt.Errorf("pipesim: need at least one pipeline")
	}
	if c.Batches <= 0 {
		return fmt.Errorf("pipesim: need at least one batch")
	}
	if len(c.Schedule.PerGPU) != k {
		return fmt.Errorf("pipesim: schedule covers %d GPUs, want %d", len(c.Schedule.PerGPU), k)
	}
	return c.Schedule.Validate()
}

// microSamples returns the per-micro-batch sample count b = B/M.
func (c *Config) microSamples() int { return c.Workload.BatchSize / c.Micro }

// expandSchedule interleaves n symmetric pipelines: every op on micro m
// becomes n consecutive ops on global units m·n+p, preserving each GPU's
// op order. With n = 1 the schedule is returned unchanged.
func expandSchedule(s *sched.Schedule, n int) *sched.Schedule {
	if n == 1 {
		return s
	}
	out := &sched.Schedule{
		Name:           s.Name,
		Continuous:     s.Continuous,
		WeightVersions: s.WeightVersions,
		PerGPU:         make([][]sched.Op, len(s.PerGPU)),
	}
	for k, ops := range s.PerGPU {
		exp := make([]sched.Op, 0, len(ops)*n)
		for _, op := range ops {
			for p := 0; p < n; p++ {
				exp = append(exp, sched.Op{Kind: op.Kind, Micro: op.Micro*n + p})
			}
		}
		out.PerGPU[k] = exp
	}
	return out
}

// Run simulates the configuration.
func Run(cfg Config) (*Result, error) {
	reg := cfg.registry()
	runs := reg.Counter("avgpipe_sim_runs_total", "Pipeline simulations executed.")
	deadlocks := reg.Counter("avgpipe_sim_deadlocks_total", "Simulations rejected for schedule deadlock.")
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The shared legality/occupancy layer: schedules that fail the
	// cross-stage dependency check are rejected up front (the event loop
	// below keeps its own deadlock detection as a backstop), and the
	// analysis drives the memory accounting.
	analysis, err := sched.Analyze(cfg.Schedule)
	if err != nil {
		deadlocks.Inc()
		return nil, fmt.Errorf("pipesim: %v: %w", err, ErrDeadlock)
	}
	runs.Inc()
	k := len(cfg.Stages)
	n := cfg.Pipelines
	b := cfg.microSamples()
	// Expand the per-pipeline schedule into the N-pipeline interleaving:
	// unit m of pipeline p is global unit m·N+p.
	sim := expandSchedule(cfg.Schedule, n)
	total := cfg.Micro * cfg.Batches * n

	// Per-unit durations (seconds). Co-running pipelines raise the
	// kernel efficiency: every unit executes at eff(N·b).
	fwdDur := make([]float64, k)
	bwdDur := make([]float64, k)
	bwdInDur := make([]float64, k)
	bwdWDur := make([]float64, k)
	util := make([]float64, k)
	for s := 0; s < k; s++ {
		gpu := cfg.Cluster.GPUs[s]
		gpu.SatSamples = cfg.Workload.SatSamples
		eff := gpu.Efficiency(float64(n * b))
		fwdDur[s] = cfg.Stages[s].FwdFLOPs * float64(b) / (gpu.PeakFLOPs * eff)
		bwdDur[s] = cfg.Stages[s].BwdFLOPs * float64(b) / (gpu.PeakFLOPs * eff)
		// A split backward's halves are modeled as an even split of the
		// combined cost (dx = dy·Wᵀ and dW = xᵀ·dy are the same GEMM
		// shape transposed), so Bi + Bw sums exactly to B and split vs
		// combined simulations stay makespan-comparable.
		bwdInDur[s] = bwdDur[s] / 2
		bwdWDur[s] = bwdDur[s] / 2
		if cfg.Recompute {
			// The backward pass replays the forward first; for a split
			// backward the replay precedes the grad-input half (it rebuilds
			// the activations both halves read).
			bwdDur[s] += fwdDur[s]
			bwdInDur[s] += fwdDur[s]
		}
		util[s] = eff
	}
	// Per-link transfer durations: stage s → s+1 carries one pipeline's
	// micro-batch activation; the backward gradient has the same size.
	xfer := make([]float64, k-1)
	for s := 0; s < k-1; s++ {
		bytes := cfg.Stages[s].OutActBytes * int64(b)
		xfer[s] = cfg.Cluster.Link(s).TransferTime(bytes).Seconds()
	}

	const unset = -1.0
	mk := func() []float64 {
		v := make([]float64, total)
		for i := range v {
			v[i] = unset
		}
		return v
	}
	// fwdArrive[s][m]: when micro m's input is available at stage s.
	// bwdArrive[s][m]: when micro m's output-gradient is available at s.
	fwdArrive := make([][]float64, k)
	bwdArrive := make([][]float64, k)
	fwdEnd := make([][]float64, k) // compute completion times
	bwdEnd := make([][]float64, k)
	// depEnd tracks the *compute* completion that produced an arrival, to
	// split waiting time into bubble (upstream still computing) and
	// comm-blocked (transfer in flight).
	fwdDepEnd := make([][]float64, k)
	bwdDepEnd := make([][]float64, k)
	for s := 0; s < k; s++ {
		fwdArrive[s], bwdArrive[s] = mk(), mk()
		fwdEnd[s], bwdEnd[s] = mk(), mk()
		fwdDepEnd[s], bwdDepEnd[s] = mk(), mk()
	}
	for m := 0; m < total; m++ {
		fwdArrive[0][m] = 0 // input data is always resident
		fwdDepEnd[0][m] = 0
	}
	linkFwdFree := make([]float64, k-1)
	linkBwdFree := make([]float64, k-1)

	gpuFree := make([]float64, k)
	idx := make([]int, k)
	inflight := make([]int, k)
	stats := make([]GPUStats, k)
	for s := range stats {
		stats[s].PeakUtil = util[s]
	}

	// ready returns when the op's dependency is satisfied (or unset) and
	// the compute-completion time behind it.
	ready := func(s int, op sched.Op) (at, depEnd float64, ok bool) {
		switch op.Kind {
		case sched.Fwd:
			at = fwdArrive[s][op.Micro]
			depEnd = fwdDepEnd[s][op.Micro]
		case sched.BwdW:
			// Grad-weight consumes only local state: the gradient received
			// (and stash read) by this GPU's own grad-input op.
			at = bwdEnd[s][op.Micro]
			depEnd = at
		default:
			if s == k-1 {
				// Loss gradient is local: ready when own forward is done.
				at = fwdEnd[s][op.Micro]
				depEnd = at
			} else {
				at = bwdArrive[s][op.Micro]
				depEnd = bwdDepEnd[s][op.Micro]
			}
		}
		return at, depEnd, at != unset
	}

	remaining := 0
	for s := 0; s < k; s++ {
		remaining += len(sim.PerGPU[s])
	}
	for remaining > 0 {
		// Pick the eligible op with the earliest feasible start time, so
		// link FIFO order matches simulated time order.
		best := -1
		bestStart, bestAt, bestDep := math.Inf(1), 0.0, 0.0
		for s := 0; s < k; s++ {
			if idx[s] >= len(sim.PerGPU[s]) {
				continue
			}
			op := sim.PerGPU[s][idx[s]]
			at, depEnd, ok := ready(s, op)
			if !ok {
				continue
			}
			start := math.Max(gpuFree[s], at)
			if start < bestStart || (start == bestStart && (best == -1 || s < best)) {
				best, bestStart, bestAt, bestDep = s, start, at, depEnd
			}
		}
		if best == -1 {
			deadlocks.Inc()
			return nil, fmt.Errorf("pipesim: schedule %s with %d ops remaining: %w", cfg.Schedule.Name, remaining, ErrDeadlock)
		}
		s := best
		op := sim.PerGPU[s][idx[s]]
		idx[s]++
		remaining--

		// Attribute the wait preceding this op.
		if wait := bestStart - gpuFree[s]; wait > 0 {
			commPart := math.Min(wait, math.Max(bestAt-bestDep, 0))
			// Only the tail of the wait can overlap the transfer.
			commPart = math.Min(commPart, math.Max(bestAt-gpuFree[s], 0))
			stats[s].CommBlocked += commPart
			stats[s].Bubble += wait - commPart
		}

		var dur float64
		switch op.Kind {
		case sched.Fwd:
			dur = fwdDur[s]
		case sched.BwdIn:
			dur = bwdInDur[s]
		case sched.BwdW:
			dur = bwdWDur[s]
		default:
			dur = bwdDur[s]
		}
		end := bestStart + dur
		gpuFree[s] = end
		stats[s].Busy += dur
		stats[s].Timeline = append(stats[s].Timeline, Interval{Start: bestStart, End: end, Util: util[s], Label: op.String()})

		switch op.Kind {
		case sched.Fwd:
			stats[s].Fwd++
			inflight[s]++
			if inflight[s] > stats[s].PeakInFlight {
				stats[s].PeakInFlight = inflight[s]
			}
			fwdEnd[s][op.Micro] = end
			if s < k-1 {
				depart := math.Max(end, linkFwdFree[s])
				arrive := depart + xfer[s]
				linkFwdFree[s] = arrive
				fwdArrive[s+1][op.Micro] = arrive
				fwdDepEnd[s+1][op.Micro] = end
				stats[s+1].CommTotal += xfer[s]
			}
		case sched.Bwd, sched.BwdIn:
			stats[s].Bwd++
			if op.Kind == sched.Bwd {
				// A combined backward retires the stash here; a split one
				// keeps it live until the grad-weight op reads it.
				inflight[s]--
			}
			bwdEnd[s][op.Micro] = end
			if s > 0 {
				depart := math.Max(end, linkBwdFree[s-1])
				arrive := depart + xfer[s-1]
				linkBwdFree[s-1] = arrive
				bwdArrive[s-1][op.Micro] = arrive
				bwdDepEnd[s-1][op.Micro] = end
				stats[s-1].CommTotal += xfer[s-1]
			}
		case sched.BwdW:
			stats[s].BwdW++
			inflight[s]--
		}
	}

	makespan := 0.0
	for s := 0; s < k; s++ {
		if gpuFree[s] > makespan {
			makespan = gpuFree[s]
		}
	}
	res := &Result{
		Makespan:  makespan,
		BatchTime: makespan / float64(cfg.Batches),
		PerGPU:    stats,
		Config:    cfg,
	}
	// Trailing idle up to the makespan counts as bubble (waiting for the
	// rest of the pipeline to drain).
	for s := 0; s < k; s++ {
		res.PerGPU[s].Bubble += makespan - gpuFree[s]
	}
	res.computeMemory(analysis)
	return res, nil
}

// computeMemory fills in per-GPU memory breakdowns and the OOM check,
// from the schedule's analytic occupancy.
func (r *Result) computeMemory(an *sched.Analysis) {
	cfg := r.Config
	n := int64(cfg.Pipelines)
	b := int64(cfg.microSamples())
	inflight := an.MaxInFlight
	// For multi-batch flushed simulations the schedule-wide in-flight
	// bound equals the single-batch bound; continuous schedules are
	// already steady-state bounded.
	var oom error
	for s := range cfg.Stages {
		st := cfg.Stages[s]
		versions := int64(an.WeightVersions[s])
		mb := device.MemoryBreakdown{}
		mb.Weights = st.ParamBytes * versions * n
		if cfg.RefModel {
			mb.Weights += st.ParamBytes
		}
		mb.OptimizerState = int64(float64(st.ParamBytes) * cfg.Workload.OptimStateFactor * float64(n))
		mb.Gradients = st.ParamBytes * n
		stashPerSample := st.StashBytes
		if cfg.Recompute {
			// Only the stage-boundary input survives until the backward;
			// everything else is rebuilt by the replayed forward.
			stashPerSample = st.OutActBytes
		}
		mb.Activations = stashPerSample * b * n * int64(inflight[s])
		// Boundary send/receive buffers for activations and gradients.
		mb.Buffers = 2 * st.OutActBytes * b * n
		r.PerGPU[s].Memory = mb
		if err := cfg.Cluster.GPUs[s].CheckFit(mb); err != nil && oom == nil {
			oom = fmt.Errorf("stage %d (%s): %w", s, cfg.Schedule.Name, err)
		}
	}
	r.OOM = oom
}

// RecordDrift cross-checks the simulation against measured runtime
// occupancy: fwd, bwd, and peak are the real runtime's per-stage forward
// op counts, backward op counts, and stash high-water marks (e.g. from
// core.StageMetrics). Every disagreement increments the
// avgpipe_sim_runtime_drift_total counter for its dimension in reg and
// counts toward the returned total — zero means the simulator and the
// runtime executed identical per-stage work, the invariant the
// cross-validation tests pin.
func (r *Result) RecordDrift(reg *obs.Registry, fwd, bwd, peak []int) int {
	if reg == nil {
		reg = obs.Default()
	}
	drift := 0
	check := func(dim string, measured []int, simulated func(GPUStats) int) {
		c := reg.Counter("avgpipe_sim_runtime_drift_total",
			"Per-stage disagreements between simulated and measured occupancy.", "dim", dim)
		for s, g := range r.PerGPU {
			if s >= len(measured) || simulated(g) != measured[s] {
				c.Inc()
				drift++
			}
		}
	}
	check("fwd", fwd, func(g GPUStats) int { return g.Fwd })
	check("bwd", bwd, func(g GPUStats) int { return g.Bwd })
	check("peak_inflight", peak, func(g GPUStats) int { return g.PeakInFlight })
	return drift
}

// MemoryOf assembles a memory breakdown from its components; shared by
// the pipeline and Chimera simulators.
func MemoryOf(paramBytes int64, optimFactor float64, activations, buffers int64) device.MemoryBreakdown {
	return device.MemoryBreakdown{
		Weights:        paramBytes,
		OptimizerState: int64(float64(paramBytes) * optimFactor),
		Gradients:      paramBytes,
		Activations:    activations,
		Buffers:        buffers,
	}
}

// DataParallel analytically models the PyTorch data-parallel baseline:
// every GPU holds a full model replica, computes forward+backward on
// BatchSize/K samples, then ring-all-reduces every gradient over the
// cluster's bottleneck link. On 1 Gbps Ethernet the all-reduce dwarfs
// compute, which is the paper's Fig. 11 observation.
func DataParallel(w *workload.Workload, c *cluster.Cluster) *Result {
	k := c.Size()
	per := w.BatchSize / k
	if per == 0 {
		per = 1
	}
	full := w.MakeStage(0, len(w.Layers)-1)
	gpu := c.GPUs[0]
	gpu.SatSamples = w.SatSamples
	fwd := gpu.ComputeTime(full.FwdFLOPs*float64(per), per, 1).Seconds()
	bwd := gpu.ComputeTime(full.BwdFLOPs*float64(per), per, 1).Seconds()
	compute := fwd + bwd
	allreduce := c.AllReduceTime(full.ParamBytes)
	// DDP-style overlap: bucketed all-reduce proceeds concurrently with
	// the backward pass that produces the gradients.
	batch := fwd + math.Max(bwd, allreduce)
	stats := make([]GPUStats, k)
	for s := range stats {
		u := gpu.Efficiency(float64(per))
		stats[s] = GPUStats{
			Busy:        compute,
			CommBlocked: allreduce,
			CommTotal:   allreduce,
			PeakUtil:    u,
			Timeline:    []Interval{{Start: 0, End: compute, Util: u}},
			Memory: device.MemoryBreakdown{
				Weights:        full.ParamBytes,
				OptimizerState: int64(float64(full.ParamBytes) * w.OptimStateFactor),
				Gradients:      full.ParamBytes,
				Activations:    full.StashBytes * int64(per),
				Buffers:        full.ParamBytes, // all-reduce staging
			},
		}
	}
	res := &Result{Makespan: batch, BatchTime: batch, PerGPU: stats,
		Config: Config{Workload: w, Cluster: c, Pipelines: 1, Micro: 1, Batches: 1}}
	var oom error
	for s := range stats {
		if err := c.GPUs[s].CheckFit(stats[s].Memory); err != nil && oom == nil {
			oom = err
		}
	}
	res.OOM = oom
	return res
}
