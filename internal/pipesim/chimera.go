package pipesim

import (
	"fmt"
	"math"

	"avgpipe/internal/sched"
)

// ChimeraConfig configures a bidirectional-pipeline simulation (Chimera,
// Li & Hoefler, SC'21) — the related-work design the paper positions
// AvgPipe against. Chimera runs two pipelines over the same GPUs in
// opposite directions: the "down" pipeline places stage s on GPU s, the
// "up" pipeline places stage s on GPU K−1−s. Each direction processes
// half the micro-batches, so the two pipelines' bubbles interleave and
// largely cancel, at the cost of every GPU holding two stage replicas.
type ChimeraConfig struct {
	// Base carries the workload, cluster, stages, Micro (total
	// micro-batches per batch; must be even), and Batches. Pipelines and
	// Schedule are ignored; Chimera's structure fixes both.
	Base Config
}

// chTask identifies one unit of Chimera work.
type chTask struct {
	up    bool // which direction's pipeline
	kind  sched.Kind
	micro int
}

// RunChimera simulates the bidirectional schedule and returns a Result
// comparable with Run's.
func RunChimera(cfg ChimeraConfig) (*Result, error) {
	base := cfg.Base
	k := len(base.Stages)
	if k != base.Cluster.Size() {
		return nil, fmt.Errorf("pipesim: chimera needs one stage per GPU")
	}
	if base.Micro%2 != 0 {
		return nil, fmt.Errorf("pipesim: chimera needs an even micro-batch count, got %d", base.Micro)
	}
	if base.Batches <= 0 || base.Workload.BatchSize%base.Micro != 0 {
		return nil, fmt.Errorf("pipesim: invalid chimera config")
	}
	b := base.Workload.BatchSize / base.Micro
	half := base.Micro / 2 * base.Batches // micros per direction

	// gpuOf maps (direction, stage) to a GPU.
	gpuOf := func(up bool, s int) int {
		if up {
			return k - 1 - s
		}
		return s
	}

	// Durations: each GPU time-shares two resident stage replicas; the
	// concurrent sample count is 2b when both directions are active, so
	// kernels run at eff(2b) as in the N=2 parallel-pipeline case.
	fwdDur := make([]float64, k)
	bwdDur := make([]float64, k)
	util := make([]float64, k)
	for s := 0; s < k; s++ {
		gpu := base.Cluster.GPUs[s]
		gpu.SatSamples = base.Workload.SatSamples
		eff := gpu.Efficiency(float64(2 * b))
		fwdDur[s] = base.Stages[s].FwdFLOPs * float64(b) / (gpu.PeakFLOPs * eff)
		bwdDur[s] = base.Stages[s].BwdFLOPs * float64(b) / (gpu.PeakFLOPs * eff)
		util[s] = eff
	}
	xfer := make([]float64, k-1)
	for s := 0; s < k-1; s++ {
		xfer[s] = base.Cluster.Link(s).TransferTime(base.Stages[s].OutActBytes * int64(b)).Seconds()
	}

	// Per-GPU op order: interleave the two directions' 1F1B sequences.
	ofob := sched.OneFOneB(k, base.Micro/2, base.Batches)
	perGPU := make([][]chTask, k)
	for g := 0; g < k; g++ {
		down := ofob.PerGPU[g]      // this GPU is stage g of the down pipeline
		upOps := ofob.PerGPU[k-1-g] // and stage k-1-g of the up pipeline
		merged := make([]chTask, 0, len(down)+len(upOps))
		for i := 0; i < len(down) || i < len(upOps); i++ {
			if i < len(down) {
				merged = append(merged, chTask{up: false, kind: down[i].Kind, micro: down[i].Micro})
			}
			if i < len(upOps) {
				merged = append(merged, chTask{up: true, kind: upOps[i].Kind, micro: upOps[i].Micro})
			}
		}
		perGPU[g] = merged
	}

	const unset = -1.0
	mk := func() [][]float64 {
		v := make([][]float64, k)
		for s := range v {
			v[s] = make([]float64, half)
			for i := range v[s] {
				v[s][i] = unset
			}
		}
		return v
	}
	// Indexed [stage][micro] per direction.
	type dirState struct {
		fwdArrive, bwdArrive [][]float64
		fwdEnd, bwdEnd       [][]float64
		fwdDep, bwdDep       [][]float64
	}
	mkDir := func() *dirState {
		d := &dirState{fwdArrive: mk(), bwdArrive: mk(), fwdEnd: mk(), bwdEnd: mk(), fwdDep: mk(), bwdDep: mk()}
		for m := 0; m < half; m++ {
			d.fwdArrive[0][m] = 0
			d.fwdDep[0][m] = 0
		}
		return d
	}
	dirs := map[bool]*dirState{false: mkDir(), true: mkDir()}

	// Physical link FIFO per direction: down-forward and up-backward both
	// travel "rightward" over link l; up-forward and down-backward travel
	// "leftward".
	linkRight := make([]float64, k-1)
	linkLeft := make([]float64, k-1)

	gpuFree := make([]float64, k)
	idx := make([]int, k)
	stats := make([]GPUStats, k)
	for s := range stats {
		stats[s].PeakUtil = util[s]
	}

	ready := func(g int, t chTask) (at, dep float64, stage int, ok bool) {
		d := dirs[t.up]
		// Translate GPU g to the task's pipeline stage.
		stage = g
		if t.up {
			stage = k - 1 - g
		}
		switch t.kind {
		case sched.Fwd:
			at, dep = d.fwdArrive[stage][t.micro], d.fwdDep[stage][t.micro]
		default:
			if stage == k-1 {
				at = d.fwdEnd[stage][t.micro]
				dep = at
			} else {
				at, dep = d.bwdArrive[stage][t.micro], d.bwdDep[stage][t.micro]
			}
		}
		return at, dep, stage, at != unset
	}

	remaining := 0
	for g := 0; g < k; g++ {
		remaining += len(perGPU[g])
	}
	for remaining > 0 {
		bestG := -1
		bestStart, bestAt, bestDep, bestStage := math.Inf(1), 0.0, 0.0, 0
		for g := 0; g < k; g++ {
			if idx[g] >= len(perGPU[g]) {
				continue
			}
			at, dep, stage, ok := ready(g, perGPU[g][idx[g]])
			if !ok {
				continue
			}
			start := math.Max(gpuFree[g], at)
			if start < bestStart || (start == bestStart && (bestG == -1 || g < bestG)) {
				bestG, bestStart, bestAt, bestDep, bestStage = g, start, at, dep, stage
			}
		}
		if bestG == -1 {
			return nil, fmt.Errorf("pipesim: chimera schedule: %w", ErrDeadlock)
		}
		g := bestG
		t := perGPU[g][idx[g]]
		idx[g]++
		remaining--

		if wait := bestStart - gpuFree[g]; wait > 0 {
			commPart := math.Min(wait, math.Max(bestAt-bestDep, 0))
			commPart = math.Min(commPart, math.Max(bestAt-gpuFree[g], 0))
			stats[g].CommBlocked += commPart
			stats[g].Bubble += wait - commPart
		}

		stage := bestStage
		var dur float64
		if t.kind == sched.Fwd {
			dur = fwdDur[stage]
		} else {
			dur = bwdDur[stage]
		}
		end := bestStart + dur
		gpuFree[g] = end
		stats[g].Busy += dur
		stats[g].Timeline = append(stats[g].Timeline, Interval{Start: bestStart, End: end, Util: util[g]})

		d := dirs[t.up]
		switch t.kind {
		case sched.Fwd:
			d.fwdEnd[stage][t.micro] = end
			if stage < k-1 {
				// Down-forward uses link[stage] rightward; up-forward uses
				// link between GPUs (k-1-stage) and (k-2-stage) leftward.
				var li int
				var pool []float64
				if t.up {
					li = k - 2 - stage
					pool = linkLeft
				} else {
					li = stage
					pool = linkRight
				}
				depart := math.Max(end, pool[li])
				arrive := depart + xfer[li]
				pool[li] = arrive
				d.fwdArrive[stage+1][t.micro] = arrive
				d.fwdDep[stage+1][t.micro] = end
				stats[gpuOf(t.up, stage+1)].CommTotal += xfer[li]
			}
		default:
			d.bwdEnd[stage][t.micro] = end
			if stage > 0 {
				var li int
				var pool []float64
				if t.up {
					li = k - 1 - stage
					pool = linkRight
				} else {
					li = stage - 1
					pool = linkLeft
				}
				depart := math.Max(end, pool[li])
				arrive := depart + xfer[li]
				pool[li] = arrive
				d.bwdArrive[stage-1][t.micro] = arrive
				d.bwdDep[stage-1][t.micro] = end
				stats[gpuOf(t.up, stage-1)].CommTotal += xfer[li]
			}
		}
	}

	makespan := 0.0
	for g := 0; g < k; g++ {
		if gpuFree[g] > makespan {
			makespan = gpuFree[g]
		}
	}
	res := &Result{Makespan: makespan, BatchTime: makespan / float64(base.Batches), PerGPU: stats, Config: base}
	for g := 0; g < k; g++ {
		res.PerGPU[g].Bubble += makespan - gpuFree[g]
	}

	// Memory: every GPU hosts two stage replicas (its down stage g and up
	// stage k-1-g) with optimizer state and gradients for both, plus both
	// directions' 1F1B stashes.
	var oom error
	for g := 0; g < k; g++ {
		down := base.Stages[g]
		up := base.Stages[k-1-g]
		params := down.ParamBytes + up.ParamBytes
		inflightDown := int64(k - g) // down pipeline: 1F1B bound K−s
		inflightUp := int64(g + 1)   // up pipeline: stage k−1−g ⇒ K−(k−1−g)
		mb := MemoryOf(params, base.Workload.OptimStateFactor,
			down.StashBytes*int64(b)*inflightDown+up.StashBytes*int64(b)*inflightUp,
			2*(down.OutActBytes+up.OutActBytes)*int64(b))
		res.PerGPU[g].Memory = mb
		if err := base.Cluster.GPUs[g].CheckFit(mb); err != nil && oom == nil {
			oom = fmt.Errorf("chimera stage pair %d: %w", g, err)
		}
	}
	res.OOM = oom
	return res, nil
}
