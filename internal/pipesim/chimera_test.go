package pipesim

import (
	"math"
	"testing"

	"avgpipe/internal/sched"
)

func chimeraFixture(actKB int64) ChimeraConfig {
	w := testWorkload(4, 8, actKB)
	// Chimera's payoff needs unsaturated kernels (the co-running
	// direction raises arithmetic intensity, like AvgPipe's N=2).
	w.SatSamples = 4
	c := testCluster(4, slowLink())
	c.SetSatSamples(4)
	return ChimeraConfig{Base: Config{
		Workload: w, Cluster: c, Stages: evenStages(w, 4),
		Micro: 4, Pipelines: 1, Batches: 2,
	}}
}

func TestChimeraRuns(t *testing.T) {
	r, err := RunChimera(chimeraFixture(64))
	if err != nil {
		t.Fatal(err)
	}
	if r.BatchTime <= 0 {
		t.Fatal("no time")
	}
	// Time conservation per GPU.
	for g, st := range r.PerGPU {
		total := st.Busy + st.Bubble + st.CommBlocked
		if math.Abs(total-r.Makespan) > 1e-9 {
			t.Fatalf("GPU %d: accounting %v != makespan %v", g, total, r.Makespan)
		}
	}
}

func TestChimeraBeats1F1BWithEnoughMicros(t *testing.T) {
	// Chimera's raison d'être: the up pipeline's work fills the down
	// pipeline's bubbles — once each direction carries at least K
	// micro-batches. Below that, the bidirectional ramp dominates and
	// plain 1F1B wins; both regimes must appear.
	compare := func(m int) (ofob, chimera float64) {
		cfg := chimeraFixture(64)
		cfg.Base.Micro = m
		ch, err := RunChimera(cfg)
		if err != nil {
			t.Fatal(err)
		}
		base := cfg.Base
		base.Schedule = sched.OneFOneB(4, m, base.Batches)
		of, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		return of.BatchTime, ch.BatchTime
	}
	if of, ch := compare(8); ch >= of {
		t.Fatalf("M=8: chimera should beat 1F1B (%v vs %v)", ch, of)
	}
	if of, ch := compare(4); ch <= of {
		t.Fatalf("M=4: shallow chimera should lose its ramp (%v vs %v)", ch, of)
	}
}

func TestChimeraMemoryTwoReplicas(t *testing.T) {
	cfg := chimeraFixture(64)
	ch, err := RunChimera(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every GPU holds two stage replicas: weights are the sum of its down
	// and up stages' params.
	for g, st := range ch.PerGPU {
		want := cfg.Base.Stages[g].ParamBytes + cfg.Base.Stages[len(cfg.Base.Stages)-1-g].ParamBytes
		if st.Memory.Weights != want {
			t.Fatalf("GPU %d weights %d, want %d", g, st.Memory.Weights, want)
		}
	}
}

func TestChimeraValidation(t *testing.T) {
	cfg := chimeraFixture(64)
	cfg.Base.Micro = 3 // odd
	cfg.Base.Workload.BatchSize = 9
	if _, err := RunChimera(cfg); err == nil {
		t.Fatal("expected error for odd micro count")
	}
	cfg = chimeraFixture(64)
	cfg.Base.Stages = cfg.Base.Stages[:2]
	if _, err := RunChimera(cfg); err == nil {
		t.Fatal("expected error for stage/GPU mismatch")
	}
}

func TestChimeraDeterministic(t *testing.T) {
	a, err := RunChimera(chimeraFixture(192))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChimera(chimeraFixture(192))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatal("nondeterministic")
	}
}

func TestRecomputeTradesTimeForMemory(t *testing.T) {
	w := testWorkload(4, 8, 256)
	c := testCluster(4, fastLink())
	base := Config{Workload: w, Cluster: c, Stages: evenStages(w, 4),
		Micro: 8, Pipelines: 1, Schedule: sched.AFAB(4, 8, 1), Batches: 1}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	re := base
	re.Recompute = true
	recomputed, err := Run(re)
	if err != nil {
		t.Fatal(err)
	}
	if recomputed.Makespan <= plain.Makespan {
		t.Fatal("recomputation must cost time")
	}
	if recomputed.PeakMemory() >= plain.PeakMemory() {
		t.Fatalf("recomputation must save memory: %d vs %d", recomputed.PeakMemory(), plain.PeakMemory())
	}
	// Activation stash must shrink to the boundary size.
	for s, g := range recomputed.PerGPU {
		want := w.MakeStage(s, s).OutActBytes // evenStages is 1 layer/stage
		_ = want
		if g.Memory.Activations >= plain.PerGPU[s].Memory.Activations {
			t.Fatalf("stage %d: recompute stash not smaller", s)
		}
	}
}
