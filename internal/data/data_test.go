package data

import (
	"testing"
)

func TestTranslationTaskShapes(t *testing.T) {
	task := NewTranslationTask(1, 10, 5, 8)
	b := task.NextBatch(4)
	if b.X.Dim(0) != 20 || b.X.Dim(1) != 1 {
		t.Fatalf("X shape %v", b.X.Shape())
	}
	if len(b.Targets) != 20 || b.Size != 4 {
		t.Fatalf("targets %d size %d", len(b.Targets), b.Size)
	}
	// Target must be the reversed input per batch element.
	for bi := 0; bi < 4; bi++ {
		for pos := 0; pos < 5; pos++ {
			in := int(b.X.At(pos*4+bi, 0))
			out := b.Targets[(5-1-pos)*4+bi]
			if in != out {
				t.Fatalf("batch %d pos %d: target not reversed input", bi, pos)
			}
		}
	}
	if e := task.EvalBatch(); e.Size != 8 {
		t.Fatal("eval batch size")
	}
}

func TestTranslationTokensInVocab(t *testing.T) {
	task := NewTranslationTask(2, 7, 6, 4)
	b := task.NextBatch(16)
	for _, v := range b.X.Data() {
		if v < 0 || int(v) >= 7 {
			t.Fatalf("token %v out of vocab", v)
		}
	}
	for _, tg := range b.Targets {
		if tg < 0 || tg >= 7 {
			t.Fatalf("target %d out of vocab", tg)
		}
	}
}

func TestPairClassificationTask(t *testing.T) {
	task := NewPairClassificationTask(3, 12, 4, 8)
	b := task.NextBatch(64)
	if b.X.Dim(0) != 8*64 {
		t.Fatalf("X rows %d, want %d", b.X.Dim(0), 8*64)
	}
	if len(b.Targets) != 64 {
		t.Fatalf("per-sequence targets, got %d", len(b.Targets))
	}
	// Label balance should be roughly even.
	ones := 0
	for _, l := range b.Targets {
		if l != 0 && l != 1 {
			t.Fatalf("label %d not binary", l)
		}
		ones += l
	}
	if ones < 16 || ones > 48 {
		t.Fatalf("label balance off: %d/64 positives", ones)
	}
	// Positive pairs must be near-copies: count matching positions.
	for bi := 0; bi < 64; bi++ {
		if b.Targets[bi] != 1 {
			continue
		}
		match := 0
		for pos := 0; pos < 4; pos++ {
			a := b.X.At(pos*64+bi, 0)
			bb := b.X.At((4+pos)*64+bi, 0)
			if a == bb {
				match++
			}
		}
		if match < 2 {
			t.Fatalf("positive pair %d shares only %d/4 tokens", bi, match)
		}
	}
}

func TestLanguageModelTaskStructure(t *testing.T) {
	task := NewLanguageModelTask(4, 16, 10, 8)
	b := task.NextBatch(8)
	if b.X.Dim(0) != 80 || len(b.Targets) != 80 {
		t.Fatal("shapes")
	}
	// Targets at pos p must equal inputs at pos p+1 (same chain sample).
	for bi := 0; bi < 8; bi++ {
		for pos := 0; pos < 9; pos++ {
			if b.Targets[pos*8+bi] != int(b.X.At((pos+1)*8+bi, 0)) {
				t.Fatalf("LM target misaligned at b=%d pos=%d", bi, pos)
			}
		}
	}
	// The chain is biased: preferred successors should dominate.
	preferred, total := 0, 0
	big := task.NextBatch(64)
	for bi := 0; bi < 64; bi++ {
		for pos := 0; pos < 10; pos++ {
			s := int(big.X.At(pos*64+bi, 0))
			nxt := big.Targets[pos*64+bi]
			total++
			if nxt == (s+1)%16 || nxt == (s*3+1)%16 || nxt == (s*7+2)%16 {
				preferred++
			}
		}
	}
	if frac := float64(preferred) / float64(total); frac < 0.5 {
		t.Fatalf("chain structure too weak to learn: preferred frac %v", frac)
	}
}

func TestClusterTask(t *testing.T) {
	task := NewClusterTask(5, 4, 3, 16)
	b := task.NextBatch(32)
	if b.X.Dim(0) != 32 || b.X.Dim(1) != 4 || len(b.Targets) != 32 {
		t.Fatal("shapes")
	}
	for _, l := range b.Targets {
		if l < 0 || l >= 3 {
			t.Fatalf("label %d", l)
		}
	}
}

func TestBatchSlicePerPosition(t *testing.T) {
	task := NewTranslationTask(6, 10, 3, 4)
	b := task.NextBatch(8)
	micros := b.Slice(4)
	if len(micros) != 4 {
		t.Fatal("micro count")
	}
	for m, mb := range micros {
		if mb.Size != 2 || mb.X.Dim(0) != 6 || len(mb.Targets) != 6 {
			t.Fatalf("micro %d shapes: size=%d rows=%d targets=%d", m, mb.Size, mb.X.Dim(0), len(mb.Targets))
		}
		// Each row of the micro-batch must match the original batch at the
		// corresponding (t, b) coordinate.
		for pos := 0; pos < 3; pos++ {
			for bi := 0; bi < 2; bi++ {
				orig := b.X.At(pos*8+m*2+bi, 0)
				got := mb.X.At(pos*2+bi, 0)
				if orig != got {
					t.Fatalf("micro %d pos %d b %d: %v != %v", m, pos, bi, got, orig)
				}
				if b.Targets[pos*8+m*2+bi] != mb.Targets[pos*2+bi] {
					t.Fatalf("micro %d target misaligned", m)
				}
			}
		}
	}
}

func TestBatchSlicePerSequence(t *testing.T) {
	task := NewPairClassificationTask(7, 10, 3, 4)
	b := task.NextBatch(6)
	micros := b.Slice(3)
	for m, mb := range micros {
		if len(mb.Targets) != 2 {
			t.Fatalf("micro %d targets %d", m, len(mb.Targets))
		}
		for bi := 0; bi < 2; bi++ {
			if mb.Targets[bi] != b.Targets[m*2+bi] {
				t.Fatal("per-sequence targets misaligned")
			}
		}
	}
}

func TestBatchSliceRejectsUneven(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClusterTask(8, 2, 2, 4).NextBatch(5).Slice(2)
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := NewLanguageModelTask(42, 8, 5, 4).NextBatch(4)
	b := NewLanguageModelTask(42, 8, 5, 4).NextBatch(4)
	for i := range a.X.Data() {
		if a.X.Data()[i] != b.X.Data()[i] {
			t.Fatal("same seed must reproduce the stream")
		}
	}
}
