// Package data provides deterministic synthetic dataset generators that
// stand in for the paper's proprietary-scale corpora (WMT16 for GNMT, QQP
// for BERT, Penn Treebank for AWD). Each task exposes the same learning
// signal the statistical-efficiency experiments need — a nontrivial target
// metric a model reaches after a measurable number of epochs — at a size
// that trains on a CPU in seconds.
package data

import (
	"fmt"

	"avgpipe/internal/tensor"
)

// Batch is one training batch. X is the model input: token IDs encoded as
// float32 in time-major layout (seqLen*batch, 1) for sequence tasks, or
// dense features (batch, dim) for vector tasks. Targets are class indices;
// their length is seqLen*batch for per-position tasks and batch for
// per-sequence tasks.
type Batch struct {
	X       *tensor.Tensor
	Targets []int
	Size    int // number of examples (sequences or vectors)
}

// Slice cuts the batch into micro-batches of equal example count. For
// time-major sequence input this slices along the batch axis of every
// timestep block, preserving the layout invariant within each micro-batch.
func (b *Batch) Slice(micro int) []*Batch {
	if micro <= 0 || b.Size%micro != 0 {
		panic(fmt.Sprintf("data: cannot slice batch of %d examples into %d micro-batches", b.Size, micro))
	}
	per := b.Size / micro
	rows := b.X.Dim(0)
	if rows%b.Size != 0 {
		panic("data: batch rows not divisible by example count")
	}
	seqLen := rows / b.Size
	cols := b.X.Dim(1)
	perTarget := len(b.Targets) / micro
	out := make([]*Batch, micro)
	for m := 0; m < micro; m++ {
		x := tensor.New(seqLen*per, cols)
		for t := 0; t < seqLen; t++ {
			srcLo := (t*b.Size + m*per) * cols
			dstLo := t * per * cols
			copy(x.Data()[dstLo:dstLo+per*cols], b.X.Data()[srcLo:srcLo+per*cols])
		}
		var targets []int
		if len(b.Targets) == b.Size { // per-sequence targets
			targets = append([]int(nil), b.Targets[m*per:(m+1)*per]...)
		} else { // per-position targets, same time-major layout
			targets = make([]int, seqLen*per)
			for t := 0; t < seqLen; t++ {
				copy(targets[t*per:(t+1)*per], b.Targets[t*b.Size+m*per:t*b.Size+(m+1)*per])
			}
		}
		out[m] = &Batch{X: x, Targets: targets, Size: per}
		_ = perTarget
	}
	return out
}

// Generator produces an endless stream of training batches and a fixed
// held-out evaluation batch.
type Generator interface {
	// NextBatch draws a fresh training batch of the given example count.
	NextBatch(batchSize int) *Batch
	// EvalBatch returns the fixed validation batch.
	EvalBatch() *Batch
	// Name identifies the task.
	Name() string
}

// TranslationTask is the GNMT stand-in: sequence transduction where the
// model must emit the input sequence reversed. Like translation it demands
// position-dependent long-range reordering, and a per-position token
// accuracy plays the role of the BLEU target.
type TranslationTask struct {
	Vocab, SeqLen int
	rng           *tensor.RNG
	eval          *Batch
}

// NewTranslationTask builds a reversal task with its own RNG stream.
func NewTranslationTask(seed int64, vocab, seqLen, evalSize int) *TranslationTask {
	t := &TranslationTask{Vocab: vocab, SeqLen: seqLen, rng: tensor.NewRNG(seed)}
	t.eval = t.NextBatch(evalSize)
	return t
}

// Name implements Generator.
func (t *TranslationTask) Name() string { return "translation" }

// NextBatch implements Generator.
func (t *TranslationTask) NextBatch(batchSize int) *Batch {
	x := tensor.New(t.SeqLen*batchSize, 1)
	targets := make([]int, t.SeqLen*batchSize)
	toks := make([]int, t.SeqLen)
	for b := 0; b < batchSize; b++ {
		for i := range toks {
			toks[i] = t.rng.Intn(t.Vocab)
		}
		for pos := 0; pos < t.SeqLen; pos++ {
			x.Set(float32(toks[pos]), pos*batchSize+b, 0)
			targets[pos*batchSize+b] = toks[t.SeqLen-1-pos]
		}
	}
	return &Batch{X: x, Targets: targets, Size: batchSize}
}

// EvalBatch implements Generator.
func (t *TranslationTask) EvalBatch() *Batch { return t.eval }

// PairClassificationTask is the BERT/QQP stand-in: given two concatenated
// token sequences, classify whether the second is a (noisy) paraphrase of
// the first. Binary accuracy plays the role of QQP top-1 accuracy.
type PairClassificationTask struct {
	Vocab   int
	HalfLen int // tokens per sentence; total sequence is 2*HalfLen
	NoiseP  float64
	rng     *tensor.RNG
	eval    *Batch
}

// NewPairClassificationTask builds the paraphrase task.
func NewPairClassificationTask(seed int64, vocab, halfLen int, evalSize int) *PairClassificationTask {
	t := &PairClassificationTask{Vocab: vocab, HalfLen: halfLen, NoiseP: 0.1, rng: tensor.NewRNG(seed)}
	t.eval = t.NextBatch(evalSize)
	return t
}

// Name implements Generator.
func (t *PairClassificationTask) Name() string { return "pairclassify" }

// SeqLen returns the total concatenated sequence length.
func (t *PairClassificationTask) SeqLen() int { return 2 * t.HalfLen }

// NextBatch implements Generator.
func (t *PairClassificationTask) NextBatch(batchSize int) *Batch {
	seqLen := t.SeqLen()
	x := tensor.New(seqLen*batchSize, 1)
	targets := make([]int, batchSize)
	a := make([]int, t.HalfLen)
	bb := make([]int, t.HalfLen)
	for b := 0; b < batchSize; b++ {
		for i := range a {
			a[i] = t.rng.Intn(t.Vocab)
		}
		label := t.rng.Intn(2)
		if label == 1 {
			copy(bb, a)
			for i := range bb {
				if t.rng.Float64() < t.NoiseP {
					bb[i] = t.rng.Intn(t.Vocab)
				}
			}
		} else {
			for i := range bb {
				bb[i] = t.rng.Intn(t.Vocab)
			}
		}
		for pos := 0; pos < t.HalfLen; pos++ {
			x.Set(float32(a[pos]), pos*batchSize+b, 0)
			x.Set(float32(bb[pos]), (t.HalfLen+pos)*batchSize+b, 0)
		}
		targets[b] = label
	}
	return &Batch{X: x, Targets: targets, Size: batchSize}
}

// EvalBatch implements Generator.
func (t *PairClassificationTask) EvalBatch() *Batch { return t.eval }

// LanguageModelTask is the AWD/PTB stand-in: next-token prediction over
// text drawn from a fixed random first-order Markov chain. The chain's
// transition entropy lower-bounds the reachable loss, so "validation loss
// below target" is a meaningful convergence criterion.
type LanguageModelTask struct {
	Vocab, SeqLen int
	trans         [][]float64 // cumulative transition rows
	rng           *tensor.RNG
	eval          *Batch
}

// NewLanguageModelTask builds the Markov LM task. Each state prefers a
// small set of successors, giving the chain learnable structure.
func NewLanguageModelTask(seed int64, vocab, seqLen, evalSize int) *LanguageModelTask {
	t := &LanguageModelTask{Vocab: vocab, SeqLen: seqLen, rng: tensor.NewRNG(seed)}
	t.trans = make([][]float64, vocab)
	for s := 0; s < vocab; s++ {
		row := make([]float64, vocab)
		var sum float64
		for j := 0; j < vocab; j++ {
			w := 0.05
			// Three preferred successors per state.
			if j == (s+1)%vocab || j == (s*3+1)%vocab || j == (s*7+2)%vocab {
				w = 1
			}
			row[j] = w
			sum += w
		}
		cum := 0.0
		for j := 0; j < vocab; j++ {
			cum += row[j] / sum
			row[j] = cum
		}
		t.trans[s] = row
	}
	t.eval = t.NextBatch(evalSize)
	return t
}

// Name implements Generator.
func (t *LanguageModelTask) Name() string { return "langmodel" }

func (t *LanguageModelTask) step(s int) int {
	u := t.rng.Float64()
	row := t.trans[s]
	for j, c := range row {
		if u <= c {
			return j
		}
	}
	return len(row) - 1
}

// NextBatch implements Generator: inputs are tokens 0..T-1 of each chain
// sample, targets are tokens 1..T.
func (t *LanguageModelTask) NextBatch(batchSize int) *Batch {
	x := tensor.New(t.SeqLen*batchSize, 1)
	targets := make([]int, t.SeqLen*batchSize)
	for b := 0; b < batchSize; b++ {
		s := t.rng.Intn(t.Vocab)
		for pos := 0; pos < t.SeqLen; pos++ {
			x.Set(float32(s), pos*batchSize+b, 0)
			s = t.step(s)
			targets[pos*batchSize+b] = s
		}
	}
	return &Batch{X: x, Targets: targets, Size: batchSize}
}

// EvalBatch implements Generator.
func (t *LanguageModelTask) EvalBatch() *Batch { return t.eval }

// ClusterTask is a dense-feature classification task (Gaussian clusters),
// used by the quickstart example and MLP integration tests.
type ClusterTask struct {
	Dim, Classes int
	centers      *tensor.Tensor
	rng          *tensor.RNG
	eval         *Batch
}

// NewClusterTask builds a well-separated Gaussian mixture. The cluster
// centers are intrinsic to the task (fixed regardless of seed) so that
// generators with different stream seeds — training streams of parallel
// pipelines, held-out evaluation streams — all describe the same
// classification problem; seed only drives the sampling.
func NewClusterTask(seed int64, dim, classes, evalSize int) *ClusterTask {
	centerRNG := tensor.NewRNG(int64(dim)*1_000_003 + int64(classes))
	t := &ClusterTask{Dim: dim, Classes: classes, rng: tensor.NewRNG(seed),
		centers: centerRNG.Normal(0, 3, classes, dim)}
	t.eval = t.NextBatch(evalSize)
	return t
}

// Name implements Generator.
func (t *ClusterTask) Name() string { return "clusters" }

// NextBatch implements Generator.
func (t *ClusterTask) NextBatch(batchSize int) *Batch {
	x := tensor.New(batchSize, t.Dim)
	targets := make([]int, batchSize)
	for b := 0; b < batchSize; b++ {
		c := t.rng.Intn(t.Classes)
		targets[b] = c
		for j := 0; j < t.Dim; j++ {
			x.Set(t.centers.At(c, j)+float32(0.5*t.rng.Float64()*2-0.5), b, j)
		}
	}
	return &Batch{X: x, Targets: targets, Size: batchSize}
}

// EvalBatch implements Generator.
func (t *ClusterTask) EvalBatch() *Batch { return t.eval }
