package data

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"avgpipe/internal/tensor"
)

// Corpus is a tokenized text stream with a fixed vocabulary, for
// language-model training on user-provided data (the bring-your-own-PTB
// path). Tokens are whitespace-separated words; words beyond VocabLimit
// by frequency map to the <unk> token.
type Corpus struct {
	// Vocab maps word → id; id 0 is <unk>.
	Vocab map[string]int
	// Words lists id → word.
	Words []string
	// IDs is the tokenized corpus.
	IDs []int
}

// UnkToken is the id of the out-of-vocabulary token.
const UnkToken = 0

// ReadCorpus tokenizes r, keeping the vocabLimit−1 most frequent words
// (plus <unk>). Ties break lexicographically so the vocabulary is
// deterministic.
func ReadCorpus(r io.Reader, vocabLimit int) (*Corpus, error) {
	if vocabLimit < 2 {
		return nil, fmt.Errorf("data: vocab limit %d too small", vocabLimit)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	var words []string
	freq := map[string]int{}
	for sc.Scan() {
		w := strings.ToLower(sc.Text())
		words = append(words, w)
		freq[w]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: reading corpus: %w", err)
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("data: empty corpus")
	}
	type wf struct {
		w string
		f int
	}
	ranked := make([]wf, 0, len(freq))
	for w, f := range freq {
		ranked = append(ranked, wf{w, f})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].f != ranked[j].f {
			return ranked[i].f > ranked[j].f
		}
		return ranked[i].w < ranked[j].w
	})
	c := &Corpus{Vocab: map[string]int{"<unk>": UnkToken}, Words: []string{"<unk>"}}
	for _, e := range ranked {
		if len(c.Words) >= vocabLimit {
			break
		}
		c.Vocab[e.w] = len(c.Words)
		c.Words = append(c.Words, e.w)
	}
	c.IDs = make([]int, len(words))
	for i, w := range words {
		if id, ok := c.Vocab[w]; ok {
			c.IDs[i] = id
		} else {
			c.IDs[i] = UnkToken
		}
	}
	return c, nil
}

// VocabSize returns the vocabulary size including <unk>.
func (c *Corpus) VocabSize() int { return len(c.Words) }

// CorpusLM is a Generator producing next-token-prediction batches from a
// Corpus, with a held-out suffix as the evaluation batch.
type CorpusLM struct {
	corpus *Corpus
	SeqLen int
	rng    *tensor.RNG
	// trainEnd bounds the sampling region; [trainEnd, len) is held out.
	trainEnd int
	eval     *Batch
}

// NewCorpusLM builds the generator, holding out the final `evalSize`
// sequences for evaluation. The corpus must be long enough for at least
// one training and one evaluation window.
func NewCorpusLM(c *Corpus, seqLen int, seed int64, evalSize int) (*CorpusLM, error) {
	need := (evalSize + 1) * (seqLen + 1)
	if len(c.IDs) < need {
		return nil, fmt.Errorf("data: corpus has %d tokens, need at least %d", len(c.IDs), need)
	}
	g := &CorpusLM{
		corpus: c, SeqLen: seqLen,
		rng:      tensor.NewRNG(seed),
		trainEnd: len(c.IDs) - evalSize*(seqLen+1),
	}
	g.eval = g.window(g.trainEnd, evalSize)
	return g, nil
}

// window cuts `count` consecutive (seqLen+1)-token windows starting at
// `start` into a time-major batch.
func (g *CorpusLM) window(start, count int) *Batch {
	x := tensor.New(g.SeqLen*count, 1)
	targets := make([]int, g.SeqLen*count)
	for b := 0; b < count; b++ {
		off := start + b*(g.SeqLen+1)
		for t := 0; t < g.SeqLen; t++ {
			x.Set(float32(g.corpus.IDs[off+t]), t*count+b, 0)
			targets[t*count+b] = g.corpus.IDs[off+t+1]
		}
	}
	return &Batch{X: x, Targets: targets, Size: count}
}

// Name implements Generator.
func (g *CorpusLM) Name() string { return "corpus-lm" }

// NextBatch implements Generator: batchSize random windows from the
// training region.
func (g *CorpusLM) NextBatch(batchSize int) *Batch {
	x := tensor.New(g.SeqLen*batchSize, 1)
	targets := make([]int, g.SeqLen*batchSize)
	span := g.trainEnd - g.SeqLen - 1
	for b := 0; b < batchSize; b++ {
		off := g.rng.Intn(span)
		for t := 0; t < g.SeqLen; t++ {
			x.Set(float32(g.corpus.IDs[off+t]), t*batchSize+b, 0)
			targets[t*batchSize+b] = g.corpus.IDs[off+t+1]
		}
	}
	return &Batch{X: x, Targets: targets, Size: batchSize}
}

// EvalBatch implements Generator.
func (g *CorpusLM) EvalBatch() *Batch { return g.eval }
