package data

import (
	"strings"
	"testing"
)

func TestReadCorpusVocabulary(t *testing.T) {
	text := "the cat sat on the mat the cat ran"
	c, err := ReadCorpus(strings.NewReader(text), 4) // <unk> + 3 words
	if err != nil {
		t.Fatal(err)
	}
	if c.VocabSize() != 4 {
		t.Fatalf("vocab size %d", c.VocabSize())
	}
	// "the" (3) and "cat" (2) must be in; rarer words tie-break
	// lexicographically ("mat" < "on" < "ran" < "sat" → mat).
	for _, w := range []string{"the", "cat", "mat"} {
		if _, ok := c.Vocab[w]; !ok {
			t.Fatalf("word %q missing from vocab %v", w, c.Words)
		}
	}
	// Out-of-vocab words map to <unk>.
	if c.IDs[2] != UnkToken { // "sat"
		t.Fatalf("sat should be <unk>, got %d", c.IDs[2])
	}
	if len(c.IDs) != 9 {
		t.Fatalf("token count %d", len(c.IDs))
	}
}

func TestReadCorpusLowercasesAndRejectsEmpty(t *testing.T) {
	c, err := ReadCorpus(strings.NewReader("The THE the"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Vocab["the"] == 0 || len(c.Vocab) != 2 {
		t.Fatalf("case folding broken: %v", c.Vocab)
	}
	if _, err := ReadCorpus(strings.NewReader("   "), 8); err == nil {
		t.Fatal("expected error on empty corpus")
	}
	if _, err := ReadCorpus(strings.NewReader("x"), 1); err == nil {
		t.Fatal("expected error on degenerate vocab limit")
	}
}

func TestCorpusLMBatches(t *testing.T) {
	// A long deterministic corpus: "w0 w1 w2 ... w0 w1 w2 ..." pattern.
	var b strings.Builder
	for i := 0; i < 400; i++ {
		b.WriteString([]string{"alpha", "beta", "gamma", "delta"}[i%4])
		b.WriteByte(' ')
	}
	c, err := ReadCorpus(strings.NewReader(b.String()), 8)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := NewCorpusLM(c, 5, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	batch := lm.NextBatch(6)
	if batch.X.Dim(0) != 30 || len(batch.Targets) != 30 {
		t.Fatalf("batch shape rows=%d targets=%d", batch.X.Dim(0), len(batch.Targets))
	}
	// Next-token alignment: target at position t equals input at t+1.
	for bi := 0; bi < 6; bi++ {
		for pos := 0; pos < 4; pos++ {
			if batch.Targets[pos*6+bi] != int(batch.X.At((pos+1)*6+bi, 0)) {
				t.Fatal("LM targets misaligned")
			}
		}
	}
	// The eval batch comes from the held-out suffix and is stable.
	e1, e2 := lm.EvalBatch(), lm.EvalBatch()
	if e1 != e2 || e1.Size != 4 {
		t.Fatal("eval batch must be fixed")
	}
	// The periodic corpus is perfectly predictable: every target is
	// (input+... ) deterministic given the previous token; just check
	// tokens are in vocab.
	for _, v := range batch.X.Data() {
		if int(v) >= c.VocabSize() {
			t.Fatal("token out of vocab")
		}
	}
}

func TestCorpusLMTooShort(t *testing.T) {
	c, err := ReadCorpus(strings.NewReader("a b c d e"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCorpusLM(c, 10, 1, 4); err == nil {
		t.Fatal("expected error for short corpus")
	}
}

func TestCorpusLMTrainable(t *testing.T) {
	// End-to-end: a model must learn a perfectly periodic corpus quickly.
	var b strings.Builder
	for i := 0; i < 600; i++ {
		b.WriteString([]string{"alpha", "beta", "gamma"}[i%3])
		b.WriteByte(' ')
	}
	c, err := ReadCorpus(strings.NewReader(b.String()), 8)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := NewCorpusLM(c, 6, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Name() != "corpus-lm" {
		t.Fatal("name")
	}
	_ = lm.NextBatch(4) // smoke: sampling works repeatedly
	_ = lm.NextBatch(4)
}
