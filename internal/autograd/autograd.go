// Package autograd implements a tape-based reverse-mode automatic
// differentiation engine over the tensor package.
//
// It serves two roles in the AvgPipe reproduction: a general-purpose
// differentiation library for users of the public API, and the oracle
// against which every manually written layer backward in internal/nn is
// verified (gradient checks in tests).
//
// Usage:
//
//	tp := autograd.NewTape()
//	x := tp.Var(someTensor)
//	w := tp.Var(weights)
//	y := tp.MatMul(x, w)
//	loss := tp.Mean(y)
//	tp.Backward(loss)
//	grad := w.Grad
package autograd

import (
	"fmt"
	"math"

	"avgpipe/internal/tensor"
)

// Value is a node in the computation graph: a tensor plus its accumulated
// gradient. Values are created through Tape methods; the zero value is not
// usable.
type Value struct {
	// T is the forward-pass tensor.
	T *tensor.Tensor
	// Grad accumulates dLoss/dT during Backward; nil until then (or for
	// constants).
	Grad *tensor.Tensor

	requiresGrad bool
	id           int
}

// node records how a value was produced, for the backward sweep.
type node struct {
	out      *Value
	inputs   []*Value
	backward func(grad *tensor.Tensor)
}

// Tape records operations in execution order so Backward can replay them
// in reverse. A Tape is not safe for concurrent use; pipelines give each
// worker its own tape.
type Tape struct {
	nodes  []node
	nextID int
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset discards all recorded operations so the tape can be reused.
func (tp *Tape) Reset() {
	tp.nodes = tp.nodes[:0]
	tp.nextID = 0
}

// Var introduces a differentiable leaf holding t.
func (tp *Tape) Var(t *tensor.Tensor) *Value {
	tp.nextID++
	return &Value{T: t, requiresGrad: true, id: tp.nextID}
}

// Const introduces a non-differentiable leaf holding t.
func (tp *Tape) Const(t *tensor.Tensor) *Value {
	tp.nextID++
	return &Value{T: t, requiresGrad: false, id: tp.nextID}
}

func (tp *Tape) record(out *Value, inputs []*Value, backward func(grad *tensor.Tensor)) *Value {
	for _, in := range inputs {
		if in.requiresGrad {
			out.requiresGrad = true
		}
	}
	if out.requiresGrad {
		tp.nodes = append(tp.nodes, node{out: out, inputs: inputs, backward: backward})
	}
	return out
}

func (tp *Tape) newValue(t *tensor.Tensor) *Value {
	tp.nextID++
	return &Value{T: t, id: tp.nextID}
}

func accumulate(v *Value, g *tensor.Tensor) {
	if !v.requiresGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = g.Clone()
		return
	}
	v.Grad.AddInPlace(g)
}

// Backward seeds the given scalar output with gradient 1 and propagates
// gradients to every differentiable leaf reachable from it.
func (tp *Tape) Backward(out *Value) {
	if out.T.Size() != 1 {
		panic(fmt.Sprintf("autograd: Backward requires a scalar output, got shape %v", out.T.Shape()))
	}
	tp.BackwardWithGrad(out, tensor.Ones(out.T.Shape()...))
}

// BackwardWithGrad propagates a caller-supplied output gradient.
func (tp *Tape) BackwardWithGrad(out *Value, grad *tensor.Tensor) {
	accumulate(out, grad)
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		n := tp.nodes[i]
		if n.out.Grad == nil {
			continue
		}
		n.backward(n.out.Grad)
	}
}

// ZeroGrads clears gradients on the given values.
func ZeroGrads(vals ...*Value) {
	for _, v := range vals {
		v.Grad = nil
	}
}

// --- arithmetic ops ---

// Add returns a + b.
func (tp *Tape) Add(a, b *Value) *Value {
	out := tp.newValue(tensor.Add(a.T, b.T))
	return tp.record(out, []*Value{a, b}, func(g *tensor.Tensor) {
		accumulate(a, g)
		accumulate(b, g)
	})
}

// Sub returns a - b.
func (tp *Tape) Sub(a, b *Value) *Value {
	out := tp.newValue(tensor.Sub(a.T, b.T))
	return tp.record(out, []*Value{a, b}, func(g *tensor.Tensor) {
		accumulate(a, g)
		accumulate(b, tensor.Neg(g))
	})
}

// Mul returns the elementwise product a*b.
func (tp *Tape) Mul(a, b *Value) *Value {
	out := tp.newValue(tensor.Mul(a.T, b.T))
	return tp.record(out, []*Value{a, b}, func(g *tensor.Tensor) {
		accumulate(a, tensor.Mul(g, b.T))
		accumulate(b, tensor.Mul(g, a.T))
	})
}

// Scale returns alpha * a.
func (tp *Tape) Scale(alpha float32, a *Value) *Value {
	out := tp.newValue(tensor.Scale(alpha, a.T))
	return tp.record(out, []*Value{a}, func(g *tensor.Tensor) {
		accumulate(a, tensor.Scale(alpha, g))
	})
}

// MatMul returns a @ b for 2-D values.
func (tp *Tape) MatMul(a, b *Value) *Value {
	out := tp.newValue(tensor.MatMul(a.T, b.T))
	return tp.record(out, []*Value{a, b}, func(g *tensor.Tensor) {
		accumulate(a, tensor.MatMulTransB(g, b.T))
		accumulate(b, tensor.MatMulTransA(a.T, g))
	})
}

// AddRowVector broadcasts bias vector b across the rows of matrix a.
func (tp *Tape) AddRowVector(a, b *Value) *Value {
	out := tp.newValue(tensor.AddRowVector(a.T, b.T))
	return tp.record(out, []*Value{a, b}, func(g *tensor.Tensor) {
		accumulate(a, g)
		accumulate(b, tensor.SumRows(g))
	})
}

// --- activations ---

// Tanh applies tanh elementwise.
func (tp *Tape) Tanh(a *Value) *Value {
	y := tensor.Tanh(a.T)
	out := tp.newValue(y)
	return tp.record(out, []*Value{a}, func(g *tensor.Tensor) {
		// d tanh = 1 - tanh².
		d := tensor.Apply(y, func(t float32) float32 { return 1 - t*t })
		accumulate(a, tensor.Mul(g, d))
	})
}

// Sigmoid applies the logistic function elementwise.
func (tp *Tape) Sigmoid(a *Value) *Value {
	y := tensor.Sigmoid(a.T)
	out := tp.newValue(y)
	return tp.record(out, []*Value{a}, func(g *tensor.Tensor) {
		d := tensor.Apply(y, func(s float32) float32 { return s * (1 - s) })
		accumulate(a, tensor.Mul(g, d))
	})
}

// ReLU applies max(x,0) elementwise.
func (tp *Tape) ReLU(a *Value) *Value {
	out := tp.newValue(tensor.ReLU(a.T))
	return tp.record(out, []*Value{a}, func(g *tensor.Tensor) {
		d := tensor.New(a.T.Shape()...)
		ad, gd, dd := a.T.Data(), g.Data(), d.Data()
		for i := range ad {
			if ad[i] > 0 {
				dd[i] = gd[i]
			}
		}
		accumulate(a, d)
	})
}

// Exp applies e^x elementwise.
func (tp *Tape) Exp(a *Value) *Value {
	y := tensor.Exp(a.T)
	out := tp.newValue(y)
	return tp.record(out, []*Value{a}, func(g *tensor.Tensor) {
		accumulate(a, tensor.Mul(g, y))
	})
}

// Log applies ln(x) elementwise.
func (tp *Tape) Log(a *Value) *Value {
	out := tp.newValue(tensor.Log(a.T))
	return tp.record(out, []*Value{a}, func(g *tensor.Tensor) {
		inv := tensor.Apply(a.T, func(x float32) float32 { return 1 / x })
		accumulate(a, tensor.Mul(g, inv))
	})
}

// --- reductions and losses ---

// Sum reduces to a scalar.
func (tp *Tape) Sum(a *Value) *Value {
	out := tp.newValue(tensor.Scalar(float32(a.T.Sum())))
	return tp.record(out, []*Value{a}, func(g *tensor.Tensor) {
		accumulate(a, tensor.Full(g.Data()[0], a.T.Shape()...))
	})
}

// Mean reduces to a scalar average.
func (tp *Tape) Mean(a *Value) *Value {
	n := float32(a.T.Size())
	out := tp.newValue(tensor.Scalar(float32(a.T.Mean())))
	return tp.record(out, []*Value{a}, func(g *tensor.Tensor) {
		accumulate(a, tensor.Full(g.Data()[0]/n, a.T.Shape()...))
	})
}

// Gather looks up rows of the (vocab, dim) table a by idx.
func (tp *Tape) Gather(a *Value, idx []int) *Value {
	out := tp.newValue(tensor.Gather(a.T, idx))
	return tp.record(out, []*Value{a}, func(g *tensor.Tensor) {
		if !a.requiresGrad {
			return
		}
		grad := tensor.New(a.T.Shape()...)
		tensor.ScatterAddRows(grad, idx, g)
		accumulate(a, grad)
	})
}

// SoftmaxCrossEntropy computes mean cross-entropy between row logits and
// integer targets, fused with softmax for stability.
func (tp *Tape) SoftmaxCrossEntropy(logits *Value, targets []int) *Value {
	ls := tensor.LogSoftmaxRows(logits.T)
	rows := logits.T.Dim(0)
	if len(targets) != rows {
		panic("autograd: SoftmaxCrossEntropy target length mismatch")
	}
	var loss float64
	for i, t := range targets {
		loss -= float64(ls.At(i, t))
	}
	loss /= float64(rows)
	out := tp.newValue(tensor.Scalar(float32(loss)))
	return tp.record(out, []*Value{logits}, func(g *tensor.Tensor) {
		// d/dlogits = (softmax - onehot)/rows, scaled by upstream grad.
		scale := g.Data()[0] / float32(rows)
		sm := tensor.SoftmaxRows(logits.T)
		grad := sm.Clone()
		cols := logits.T.Dim(1)
		for i, t := range targets {
			grad.Data()[i*cols+t] -= 1
		}
		grad.ScaleInPlace(scale)
		accumulate(logits, grad)
	})
}

// MSE computes the mean squared error between a and target (a constant).
func (tp *Tape) MSE(a *Value, target *tensor.Tensor) *Value {
	diff := tensor.Sub(a.T, target)
	var loss float64
	for _, v := range diff.Data() {
		loss += float64(v) * float64(v)
	}
	loss /= float64(diff.Size())
	out := tp.newValue(tensor.Scalar(float32(loss)))
	return tp.record(out, []*Value{a}, func(g *tensor.Tensor) {
		scale := 2 * g.Data()[0] / float32(diff.Size())
		accumulate(a, tensor.Scale(scale, diff))
	})
}

// --- numerical gradient checking ---

// NumericGrad estimates dF/dx by central differences, where f rebuilds the
// computation from scratch (so the tape sees fresh values each evaluation).
// eps around 1e-2 is appropriate for float32 forward math.
func NumericGrad(x *tensor.Tensor, eps float32, f func() float64) *tensor.Tensor {
	g := tensor.New(x.Shape()...)
	data := x.Data()
	for i := range data {
		orig := data[i]
		data[i] = orig + eps
		fp := f()
		data[i] = orig - eps
		fm := f()
		data[i] = orig
		g.Data()[i] = float32((fp - fm) / (2 * float64(eps)))
	}
	return g
}

// MaxRelError returns the maximum elementwise relative error between got
// and want, with an absolute floor to avoid division blow-ups near zero.
func MaxRelError(got, want *tensor.Tensor) float64 {
	var worst float64
	for i := range got.Data() {
		g, w := float64(got.Data()[i]), float64(want.Data()[i])
		denom := math.Max(math.Max(math.Abs(g), math.Abs(w)), 1e-2)
		if e := math.Abs(g-w) / denom; e > worst {
			worst = e
		}
	}
	return worst
}
