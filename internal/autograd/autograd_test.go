package autograd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"avgpipe/internal/tensor"
)

const gradTol = 2e-2 // float32 forward + central differences

func TestAddBackward(t *testing.T) {
	tp := NewTape()
	a := tp.Var(tensor.FromSlice([]float32{1, 2}, 2))
	b := tp.Var(tensor.FromSlice([]float32{3, 4}, 2))
	tp.Backward(tp.Sum(tp.Add(a, b)))
	for _, v := range append(a.Grad.Data(), b.Grad.Data()...) {
		if v != 1 {
			t.Fatalf("Add grad = %v, want all ones", v)
		}
	}
}

func TestMulBackward(t *testing.T) {
	tp := NewTape()
	a := tp.Var(tensor.FromSlice([]float32{2, 3}, 2))
	b := tp.Var(tensor.FromSlice([]float32{5, 7}, 2))
	tp.Backward(tp.Sum(tp.Mul(a, b)))
	if a.Grad.At(0) != 5 || a.Grad.At(1) != 7 {
		t.Fatalf("dA = %v", a.Grad)
	}
	if b.Grad.At(0) != 2 || b.Grad.At(1) != 3 {
		t.Fatalf("dB = %v", b.Grad)
	}
}

func TestSubAndScaleBackward(t *testing.T) {
	tp := NewTape()
	a := tp.Var(tensor.FromSlice([]float32{1, 1}, 2))
	b := tp.Var(tensor.FromSlice([]float32{2, 2}, 2))
	tp.Backward(tp.Sum(tp.Scale(3, tp.Sub(a, b))))
	if a.Grad.At(0) != 3 || b.Grad.At(0) != -3 {
		t.Fatalf("dA=%v dB=%v", a.Grad, b.Grad)
	}
}

func TestMatMulGradCheck(t *testing.T) {
	g := tensor.NewRNG(3)
	aT := g.Normal(0, 1, 3, 4)
	bT := g.Normal(0, 1, 4, 2)
	run := func() (*Value, *Value, *Value) {
		tp := NewTape()
		a, b := tp.Var(aT), tp.Var(bT)
		out := tp.Mean(tp.MatMul(a, b))
		tp.Backward(out)
		return a, b, out
	}
	a, b, _ := run()
	f := func() float64 {
		tp := NewTape()
		return float64(tp.Mean(tp.MatMul(tp.Var(aT), tp.Var(bT))).T.At())
	}
	na := NumericGrad(aT, 1e-2, f)
	nb := NumericGrad(bT, 1e-2, f)
	if e := MaxRelError(a.Grad, na); e > gradTol {
		t.Fatalf("dA rel error %v", e)
	}
	if e := MaxRelError(b.Grad, nb); e > gradTol {
		t.Fatalf("dB rel error %v", e)
	}
}

func TestActivationGradChecks(t *testing.T) {
	g := tensor.NewRNG(5)
	xT := g.Normal(0, 1, 4, 3)
	cases := []struct {
		name string
		op   func(tp *Tape, v *Value) *Value
	}{
		{"tanh", func(tp *Tape, v *Value) *Value { return tp.Tanh(v) }},
		{"sigmoid", func(tp *Tape, v *Value) *Value { return tp.Sigmoid(v) }},
		{"relu", func(tp *Tape, v *Value) *Value { return tp.ReLU(v) }},
		{"exp", func(tp *Tape, v *Value) *Value { return tp.Exp(v) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			xT := xT
			if c.name == "relu" {
				// Central differences are invalid at the ReLU kink; keep
				// every input at least 3·eps away from zero.
				xT = tensor.Apply(xT, func(v float32) float32 {
					if v >= 0 && v < 0.1 {
						return v + 0.1
					}
					if v < 0 && v > -0.1 {
						return v - 0.1
					}
					return v
				})
			}
			tp := NewTape()
			x := tp.Var(xT)
			tp.Backward(tp.Mean(c.op(tp, x)))
			num := NumericGrad(xT, 1e-2, func() float64 {
				tp := NewTape()
				return float64(tp.Mean(c.op(tp, tp.Var(xT))).T.At())
			})
			if e := MaxRelError(x.Grad, num); e > gradTol {
				t.Fatalf("%s grad rel error %v", c.name, e)
			}
		})
	}
}

func TestLogGradCheck(t *testing.T) {
	g := tensor.NewRNG(6)
	xT := g.Uniform(0.5, 2, 3, 3)
	tp := NewTape()
	x := tp.Var(xT)
	tp.Backward(tp.Mean(tp.Log(x)))
	num := NumericGrad(xT, 1e-3, func() float64 {
		tp := NewTape()
		return float64(tp.Mean(tp.Log(tp.Var(xT))).T.At())
	})
	if e := MaxRelError(x.Grad, num); e > gradTol {
		t.Fatalf("log grad rel error %v", e)
	}
}

func TestAddRowVectorGradCheck(t *testing.T) {
	g := tensor.NewRNG(7)
	mT := g.Normal(0, 1, 5, 3)
	bT := g.Normal(0, 1, 3)
	tp := NewTape()
	m, b := tp.Var(mT), tp.Var(bT)
	tp.Backward(tp.Mean(tp.AddRowVector(m, b)))
	numB := NumericGrad(bT, 1e-2, func() float64 {
		tp := NewTape()
		return float64(tp.Mean(tp.AddRowVector(tp.Var(mT), tp.Var(bT))).T.At())
	})
	if e := MaxRelError(b.Grad, numB); e > gradTol {
		t.Fatalf("bias grad rel error %v", e)
	}
}

func TestSoftmaxCrossEntropyGradCheck(t *testing.T) {
	g := tensor.NewRNG(8)
	lT := g.Normal(0, 1, 4, 5)
	targets := []int{1, 0, 4, 2}
	tp := NewTape()
	l := tp.Var(lT)
	loss := tp.SoftmaxCrossEntropy(l, targets)
	tp.Backward(loss)
	num := NumericGrad(lT, 1e-2, func() float64 {
		tp := NewTape()
		return float64(tp.SoftmaxCrossEntropy(tp.Var(lT), targets).T.At())
	})
	if e := MaxRelError(l.Grad, num); e > gradTol {
		t.Fatalf("xent grad rel error %v", e)
	}
}

func TestMSEGradCheck(t *testing.T) {
	g := tensor.NewRNG(9)
	xT := g.Normal(0, 1, 3, 3)
	target := g.Normal(0, 1, 3, 3)
	tp := NewTape()
	x := tp.Var(xT)
	tp.Backward(tp.MSE(x, target))
	num := NumericGrad(xT, 1e-2, func() float64 {
		tp := NewTape()
		return float64(tp.MSE(tp.Var(xT), target).T.At())
	})
	if e := MaxRelError(x.Grad, num); e > gradTol {
		t.Fatalf("mse grad rel error %v", e)
	}
}

func TestGatherGradCheck(t *testing.T) {
	g := tensor.NewRNG(10)
	table := g.Normal(0, 1, 6, 3)
	idx := []int{2, 2, 0, 5}
	tp := NewTape()
	tb := tp.Var(table)
	tp.Backward(tp.Mean(tp.Gather(tb, idx)))
	num := NumericGrad(table, 1e-2, func() float64 {
		tp := NewTape()
		return float64(tp.Mean(tp.Gather(tp.Var(table), idx)).T.At())
	})
	if e := MaxRelError(tb.Grad, num); e > gradTol {
		t.Fatalf("gather grad rel error %v", e)
	}
}

func TestConstReceivesNoGrad(t *testing.T) {
	tp := NewTape()
	a := tp.Var(tensor.Ones(2))
	c := tp.Const(tensor.Ones(2))
	tp.Backward(tp.Sum(tp.Mul(a, c)))
	if c.Grad != nil {
		t.Fatal("constants must not accumulate gradient")
	}
	if a.Grad == nil {
		t.Fatal("variable must accumulate gradient")
	}
}

func TestGradAccumulationAcrossReuse(t *testing.T) {
	// y = a + a should give dy/da = 2.
	tp := NewTape()
	a := tp.Var(tensor.Ones(3))
	tp.Backward(tp.Sum(tp.Add(a, a)))
	for _, v := range a.Grad.Data() {
		if v != 2 {
			t.Fatalf("reused input grad = %v, want 2", v)
		}
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar Backward")
		}
	}()
	tp := NewTape()
	tp.Backward(tp.Var(tensor.Ones(2)))
}

func TestTapeResetAndZeroGrads(t *testing.T) {
	tp := NewTape()
	a := tp.Var(tensor.Ones(2))
	tp.Backward(tp.Sum(a))
	if a.Grad == nil {
		t.Fatal("no grad after backward")
	}
	ZeroGrads(a)
	if a.Grad != nil {
		t.Fatal("ZeroGrads must clear")
	}
	tp.Reset()
	if len(tp.nodes) != 0 {
		t.Fatal("Reset must clear tape")
	}
}

// Property: the chain rule through composition matches finite differences
// for a random two-layer tanh network.
func TestPropTwoLayerNetGradCheck(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in, hid, out := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(3)
		g := tensor.NewRNG(seed)
		xT := g.Normal(0, 1, 2, in)
		w1T := g.Normal(0, 0.5, in, hid)
		w2T := g.Normal(0, 0.5, hid, out)
		forward := func() (*Tape, *Value, *Value, *Value) {
			tp := NewTape()
			x, w1, w2 := tp.Const(xT), tp.Var(w1T), tp.Var(w2T)
			h := tp.Tanh(tp.MatMul(x, w1))
			return tp, w1, w2, tp.Mean(tp.MatMul(h, w2))
		}
		tp, w1, w2, loss := forward()
		tp.Backward(loss)
		eval := func() float64 { _, _, _, l := forward(); return float64(l.T.At()) }
		n1 := NumericGrad(w1T, 1e-2, eval)
		n2 := NumericGrad(w2T, 1e-2, eval)
		return MaxRelError(w1.Grad, n1) < 5e-2 && MaxRelError(w2.Grad, n2) < 5e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
