package compiled

import (
	"testing"

	"avgpipe/internal/tensor"
)

func ident(in []int) []int { return in }

// buildChain lowers a synthetic three-layer stage where the middle
// layer's output is dynamic (borrowed per micro-batch by its op) and the
// others are slot-backed. Exercises the full builder path without
// depending on internal/nn.
func buildChain(t *testing.T, opts Options) *Program {
	t.Helper()
	b := NewBuilder()

	y1 := b.Slot(ident)
	x := b.Cur()
	b.EmitFwd("scale2", []Reg{x}, []Reg{y1}, func(e *Env) {
		dst, src := e.Reg(y1).Data(), e.Reg(x).Data()
		for i := range dst {
			dst[i] = 2 * src[i]
		}
	})
	b.SetCur(y1)
	b.OnBackward(func(dy Reg) Reg {
		dx := b.Slot(ident)
		b.EmitBwdIn("scale2.dx", []Reg{dy}, []Reg{dx}, func(e *Env) {
			dst, src := e.Reg(dx).Data(), e.Reg(dy).Data()
			for i := range dst {
				dst[i] = 2 * src[i]
			}
		})
		return dx
	})

	y2 := b.Dynamic(ident)
	x2 := b.Cur()
	b.EmitFwd("dynadd1", []Reg{x2}, []Reg{y2}, func(e *Env) {
		out := tensor.Borrow(e.Reg(x2).Shape()...)
		dst, src := out.Data(), e.Reg(x2).Data()
		for i := range dst {
			dst[i] = src[i] + 1
		}
		e.SetReg(y2, out)
	})
	b.SetCur(y2)
	b.OnBackward(func(dy Reg) Reg { return dy })

	y3 := b.Slot(ident)
	x3 := b.Cur()
	b.EmitFwd("neg", []Reg{x3}, []Reg{y3}, func(e *Env) {
		dst, src := e.Reg(y3).Data(), e.Reg(x3).Data()
		for i := range dst {
			dst[i] = -src[i]
		}
	})
	b.SetCur(y3)
	b.OnBackward(func(dy Reg) Reg {
		dx := b.Slot(ident)
		b.EmitBwdIn("neg.dx", []Reg{dy}, []Reg{dx}, func(e *Env) {
			dst, src := e.Reg(dx).Data(), e.Reg(dy).Data()
			for i := range dst {
				dst[i] = -src[i]
			}
		})
		return dx
	})

	p, err := b.Finish(opts)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p
}

// TestBuilderReleaseExactlyOnce runs a program containing a dynamic
// register and checks, via the arena counters, that each micro-batch's
// borrowed tensor is released exactly once — neither leaked nor
// double-freed.
func TestBuilderReleaseExactlyOnce(t *testing.T) {
	p := buildChain(t, Options{})
	in := []int{4, 3}
	if err := p.CheckPlan(in); err != nil {
		t.Fatalf("CheckPlan: %v", err)
	}
	env := p.NewEnv(in)
	x := tensor.Full(1.5, in...)
	run := func() {
		env.BindInput(x)
		env.Forward()
		env.BindGradIn(tensor.FromSlice(make([]float32, 12), in...))
		env.BackwardInput()
		env.BackwardWeights()
		env.EndMicro()
	}
	run() // warm-up
	before := tensor.ReadArenaStats()
	const micros = 4
	for i := 0; i < micros; i++ {
		run()
	}
	after := tensor.ReadArenaStats()
	borrows := after.Borrows - before.Borrows
	// EndMicro also drops the unpooled FromSlice dy (a Discard); the
	// pooled Releases counter isolates the dynamic register's lifecycle.
	releases := after.Releases - before.Releases
	if borrows != micros {
		t.Fatalf("dynamic register borrowed %d times over %d micros, want %d", borrows, micros, micros)
	}
	if releases != borrows {
		t.Fatalf("%d borrows but %d releases: dynamic register leaked or double-freed", borrows, releases)
	}
}

// TestBuilderChainValues sanity-checks the lowered chain's arithmetic:
// y = -(2x+1), dx = -2·dy.
func TestBuilderChainValues(t *testing.T) {
	p := buildChain(t, Options{})
	in := []int{2, 2}
	env := p.NewEnv(in)
	env.BindInput(tensor.Full(3, in...))
	env.Forward()
	if got := env.Output().Data()[0]; got != -7 {
		t.Fatalf("forward: got %v, want -7", got)
	}
	env.BindGradIn(tensor.Full(1, in...))
	env.BackwardInput()
	if got := env.GradOut().Data()[0]; got != -2 {
		t.Fatalf("backward: got %v, want -2", got)
	}
	env.BackwardWeights()
	env.EndMicro()
}

// TestBuilderBoundaryPromotion checks the stage-boundary rules: a
// slot-backed output shipped downstream is promoted to a per-micro
// borrow; one still read by backward keeps its slot and ships a copy.
func TestBuilderBoundaryPromotion(t *testing.T) {
	// In buildChain, y3 (the output) is not read by any backward op, so
	// EmitOut must promote it to regBorrowOut, not outCopy.
	p := buildChain(t, Options{EmitOut: true, EmitDX: true})
	if p.outCopy {
		t.Fatal("output unused by backward should be promoted, not copied")
	}
	if p.regs[p.outReg].class != regBorrowOut {
		t.Fatalf("output class = %d, want regBorrowOut", p.regs[p.outReg].class)
	}
	if p.regs[p.dOutReg].class != regBorrowOut || p.dxCopy {
		t.Fatal("emitted dx unused after BwdIn should be promoted, not copied")
	}

	// Now a stage whose slot output IS read by backward: stash-output
	// activation at the stage end. Finish must keep the slot and set
	// outCopy so the backward replay still sees valid data after the
	// downstream stage releases its copy.
	b := NewBuilder()
	y := b.Slot(ident)
	x := b.Cur()
	b.EmitFwd("sq", []Reg{x}, []Reg{y}, func(e *Env) {
		dst, src := e.Reg(y).Data(), e.Reg(x).Data()
		for i := range dst {
			dst[i] = src[i] * src[i]
		}
	})
	b.SetCur(y)
	b.OnBackward(func(dy Reg) Reg {
		dx := b.Slot(ident)
		b.EmitBwdIn("sq.dx", []Reg{dy, y}, []Reg{dx}, func(e *Env) {})
		return dx
	})
	p2, err := b.Finish(Options{EmitOut: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p2.outCopy {
		t.Fatal("output read by backward must use the copy-out path")
	}
	if p2.regs[p2.outReg].class != regSlot {
		t.Fatal("copy-out output must keep its slot")
	}
	env := p2.NewEnv([]int{2, 2})
	env.BindInput(tensor.Full(3, 2, 2))
	env.Forward()
	out := env.Output()
	if out == env.Reg(p2.outReg) {
		t.Fatal("Output() with outCopy must not alias the slot tensor")
	}
	if out.Data()[0] != 9 {
		t.Fatalf("copied output = %v, want 9", out.Data()[0])
	}
	out.Release()
}

// TestBuilderErrors covers lowering error paths.
func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Finish(Options{}); err == nil {
		t.Fatal("empty stage must not compile")
	}

	b = NewBuilder()
	y := b.Slot(ident)
	b.EmitFwd("bad", []Reg{y}, nil, func(e *Env) {}) // read before any write
	b.SetCur(y)
	if _, err := b.Finish(Options{}); err == nil {
		t.Fatal("read-before-write must not compile")
	}

	b = NewBuilder()
	b.Errorf("lowering failed: %s", "unsupported layer")
	if _, err := b.Finish(Options{}); err == nil {
		t.Fatal("Errorf must surface from Finish")
	}
}
