package compiled

// interval is a slot register's live range and buffer size, the
// planner's unit of work. def/use are positions in the linear
// fwd→bwdIn→bwdW op order; size is element count.
type interval struct {
	reg  Reg
	def  int
	use  int
	size int
}

// assignSlots maps each interval to a slot index such that two
// intervals share a slot only if their sizes are equal and their live
// ranges are disjoint (strictly: one's lastUse precedes the other's
// def — an op may not read a register whose storage it is overwriting,
// so a register expiring at position p is not reusable by one defined
// at p). Returns the slot of each interval (parallel slice) and the
// element count of each slot.
//
// Intervals must be sorted by def (Finish produces them in def order).
// The scan keeps a free list per size; expired intervals return their
// slot to the free list before the next allocation.
func assignSlots(ivs []interval) (slotOf []int, slotSizes []int) {
	slotOf = make([]int, len(ivs))
	type active struct {
		use  int
		slot int
	}
	var live []active
	free := make(map[int][]int) // size → free slot indices
	for i, iv := range ivs {
		// Expire intervals whose last use strictly precedes this def.
		keep := live[:0]
		for _, a := range live {
			if a.use < iv.def {
				sz := slotSizes[a.slot]
				free[sz] = append(free[sz], a.slot)
			} else {
				keep = append(keep, a)
			}
		}
		live = keep

		var slot int
		if fl := free[iv.size]; len(fl) > 0 {
			slot = fl[len(fl)-1]
			free[iv.size] = fl[:len(fl)-1]
		} else {
			slot = len(slotSizes)
			slotSizes = append(slotSizes, iv.size)
		}
		slotOf[i] = slot
		live = append(live, active{use: iv.use, slot: slot})
	}
	return slotOf, slotSizes
}

// slotIntervals extracts the slot-class registers of a program as
// def-ordered intervals for the given input shape.
func (p *Program) slotIntervals(in []int) []interval {
	var ivs []interval
	for r := range p.regs {
		ri := &p.regs[r]
		if ri.class != regSlot || ri.def < 0 {
			continue
		}
		dims := ri.shape(in)
		n := 1
		for _, d := range dims {
			n *= d
		}
		ivs = append(ivs, interval{reg: Reg(r), def: ri.def, use: ri.lastUse, size: n})
	}
	// Registers are created in lowering order but defined in op order;
	// insertion sort by def (lists are short, and mostly sorted already).
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].def < ivs[j-1].def; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	return ivs
}
