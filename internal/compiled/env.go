package compiled

import (
	"fmt"

	"avgpipe/internal/tensor"
)

// Env is the per-micro-batch execution state of a compiled Program.
// Each in-flight micro-batch owns one Env (the stage worker pools and
// reuses them across batches), which is what makes compiled stages
// reentrant: dropout masks, normalization statistics, and fallback
// stashes live here, never in module fields.
//
// Binding — shape inference, slot planning, and buffer allocation —
// happens once, at construction, against a concrete input shape; the
// per-micro replay then performs zero allocation decisions on slot
// registers.
type Env struct {
	prog    *Program
	inShape []int

	// regs[r] is the current tensor of register r. Slot registers keep
	// their header (a view over slot storage) across micro-batches;
	// extern and dynamic registers are reset by EndMicro.
	regs []*tensor.Tensor
	aux  []any

	// x and dy record the externally provided tensors for the
	// interpreter-matching release guards in EndMicro.
	x, dy *tensor.Tensor
}

// NewEnv binds the program for the given input shape: plans slots,
// allocates slot storage, and creates the per-register tensor headers.
func (p *Program) NewEnv(in []int) *Env {
	e := &Env{
		prog:    p,
		inShape: append([]int(nil), in...),
		regs:    make([]*tensor.Tensor, len(p.regs)),
		aux:     make([]any, len(p.aux)),
	}
	ivs := p.slotIntervals(in)
	slotOf, slotSizes := assignSlots(ivs)
	storage := make([][]float32, len(slotSizes))
	for s, n := range slotSizes {
		storage[s] = make([]float32, n)
	}
	for i, iv := range ivs {
		dims := p.regs[iv.reg].shape(in)
		e.regs[iv.reg] = tensor.FromSlice(storage[slotOf[i]][:iv.size], dims...)
	}
	for i, mk := range p.aux {
		if mk != nil {
			e.aux[i] = mk(in)
		}
	}
	return e
}

// InShape returns the input shape this Env was bound for; the stage
// worker's pool matches Envs to micro-batches by shape.
func (e *Env) InShape() []int { return e.inShape }

// Reg returns the tensor currently held by register r.
func (e *Env) Reg(r Reg) *tensor.Tensor { return e.regs[r] }

// SetReg stores a tensor into a dynamic register (fallback ops use
// this for their freshly allocated outputs).
func (e *Env) SetReg(r Reg, t *tensor.Tensor) { e.regs[r] = t }

// Aux returns auxiliary cell a.
func (e *Env) Aux(a AuxID) any { return e.aux[a] }

// SetAux stores a per-micro-batch value into auxiliary cell a.
func (e *Env) SetAux(a AuxID, v any) { e.aux[a] = v }

// BindInput binds the stage input for this micro-batch. The input is
// owned by the caller; the Env never releases it (mirroring the
// interpreter, where the stage worker releases x after backward).
func (e *Env) BindInput(x *tensor.Tensor) {
	e.x = x
	e.regs[e.prog.inReg] = x
}

func (e *Env) run(ops []Op, base int) {
	for i := range ops {
		ops[i].Fn(e)
		for _, r := range e.prog.release[base+i] {
			if t := e.regs[r]; t != nil {
				t.Release()
				e.regs[r] = nil
			}
		}
	}
}

// Forward replays the forward ops. Boundary outputs (regBorrowOut) are
// borrowed fresh from the arena first, so ownership can pass downstream.
func (e *Env) Forward() {
	p := e.prog
	if p.outReg != NoReg && p.regs[p.outReg].class == regBorrowOut {
		e.regs[p.outReg] = tensor.Borrow(p.regs[p.outReg].shape(e.inShape)...)
	}
	e.run(p.fwd, 0)
}

// Output returns the forward output tensor. When the output register is
// still read by this stage's backward ops but must be shipped to the
// next stage (outCopy), a fresh borrowed copy is returned — the
// receiver owns and releases it while the slot stays intact for the
// backward replay.
func (e *Env) Output() *tensor.Tensor {
	t := e.regs[e.prog.outReg]
	if e.prog.outCopy {
		c := tensor.Borrow(t.Shape()...)
		c.CopyFrom(t)
		return c
	}
	return t
}

// ReleaseOutput releases the forward output if this Env owns it per
// micro-batch (dynamic or borrow-out). The last stage calls this after
// the loss consumes the logits; slot-backed outputs are kept (they are
// reused storage, mirroring nothing the interpreter would free).
func (e *Env) ReleaseOutput() {
	p := e.prog
	t := e.regs[p.outReg]
	if t == nil {
		return
	}
	switch p.regs[p.outReg].class {
	case regDynamic, regBorrowOut:
		if t != e.x {
			t.Release()
		}
		e.regs[p.outReg] = nil
	}
}

// BindGradIn binds the incoming output-gradient for this micro-batch.
func (e *Env) BindGradIn(dy *tensor.Tensor) {
	e.dy = dy
	e.regs[e.prog.dInReg] = dy
}

// BackwardInput replays the grad-input ops (the 2BP half whose result
// unblocks the upstream stage). Emitted dx registers of borrow-out
// class are borrowed fresh first.
func (e *Env) BackwardInput() {
	p := e.prog
	if p.dOutReg != NoReg && p.regs[p.dOutReg].class == regBorrowOut {
		e.regs[p.dOutReg] = tensor.Borrow(p.regs[p.dOutReg].shape(e.inShape)...)
	}
	e.run(p.bwdIn, len(p.fwd))
}

// GradOut returns the input-gradient tensor (nil when the stage's first
// layer has no differentiable input, e.g. Embedding). With dxCopy set a
// fresh borrowed copy is returned, mirroring Output.
func (e *Env) GradOut() *tensor.Tensor {
	if e.prog.dOutReg == NoReg {
		return nil
	}
	t := e.regs[e.prog.dOutReg]
	if e.prog.dxCopy && t != nil {
		c := tensor.Borrow(t.Shape()...)
		c.CopyFrom(t)
		return c
	}
	return t
}

// rawGradOut returns the register's tensor without the dxCopy borrow
// (for pointer-identity release guards).
func (e *Env) rawGradOut() *tensor.Tensor {
	if e.prog.dOutReg == NoReg {
		return nil
	}
	return e.regs[e.prog.dOutReg]
}

// BackwardWeights replays the grad-weight ops (local parameter
// accumulation; no cross-stage consumers).
func (e *Env) BackwardWeights() {
	p := e.prog
	e.run(p.bwdW, len(p.fwd)+len(p.bwdIn))
}

// EndMicro finishes the micro-batch: releases the incoming gradient and
// any non-emitted input gradient with the same pointer guards the
// interpreter's stage worker uses, then resets extern and dynamic
// registers so the Env can be rebound. Slot headers persist.
func (e *Env) EndMicro() {
	p := e.prog
	dx := e.rawGradOut()
	// Mirror the interpreter's stage-0 `dx.Release()` for gradients that
	// never leave the stage (guard: a passthrough may alias dx == dy).
	if !p.emitDX && dx != nil && dx != e.dy {
		switch p.regs[p.dOutReg].class {
		case regDynamic, regBorrowOut:
			dx.Release()
		}
	}
	// Mirror the interpreter's `if x != nil && dx != x { x.Release() }`
	// ownership rule for the incoming gradient: dy was borrowed by the
	// upstream stage (or by CrossEntropy on the last stage).
	if e.dy != nil && dx != e.dy {
		e.dy.Release()
	}
	for r := range p.regs {
		switch p.regs[r].class {
		case regExtern, regDynamic, regBorrowOut:
			e.regs[r] = nil
		}
	}
	e.x, e.dy = nil, nil
}

// ResetMicro drops per-micro references without any releases — used on
// abort paths where ownership of in-flight tensors is indeterminate.
func (e *Env) ResetMicro() {
	for r := range e.prog.regs {
		switch e.prog.regs[r].class {
		case regExtern, regDynamic, regBorrowOut:
			e.regs[r] = nil
		}
	}
	e.x, e.dy = nil, nil
}

// SlotCount returns the number of distinct slot buffers the plan uses
// for the given input shape, and their total element count (test and
// DESIGN.md reporting).
func (p *Program) SlotCount(in []int) (slots, elems int) {
	_, sizes := assignSlots(p.slotIntervals(in))
	for _, n := range sizes {
		elems += n
	}
	return len(sizes), elems
}

// CheckPlan validates the plan's safety invariants for an input shape:
// no two slot registers with overlapping live ranges share storage, and
// every dynamic register is released at most once (appears in at most
// one release list) and never after a subsequent read. It is the
// property the planner tests assert on randomized graphs.
func (p *Program) CheckPlan(in []int) error {
	ivs := p.slotIntervals(in)
	slotOf, sizes := assignSlots(ivs)
	for i := range ivs {
		if ivs[i].size != sizes[slotOf[i]] {
			return fmt.Errorf("reg %d (size %d) assigned slot %d (size %d)",
				ivs[i].reg, ivs[i].size, slotOf[i], sizes[slotOf[i]])
		}
		for j := i + 1; j < len(ivs); j++ {
			if slotOf[i] != slotOf[j] {
				continue
			}
			a, b := ivs[i], ivs[j]
			if a.def <= b.use && b.def <= a.use {
				return fmt.Errorf("regs %d [%d,%d] and %d [%d,%d] share slot %d while live",
					a.reg, a.def, a.use, b.reg, b.def, b.use, slotOf[i])
			}
		}
	}
	seen := make(map[Reg]int)
	for pos, regs := range p.release {
		for _, r := range regs {
			if prev, ok := seen[r]; ok {
				return fmt.Errorf("reg %d released at both op %d and op %d", r, prev, pos)
			}
			seen[r] = pos
			if pos < p.regs[r].lastUse {
				return fmt.Errorf("reg %d released at op %d before last use %d", r, pos, p.regs[r].lastUse)
			}
		}
	}
	return nil
}
