// Package compiled holds the static per-stage op graph the pipeline
// runtime replays instead of interpreting nn.Module call trees.
//
// A stage is lowered once at pipeline build time (internal/nn's
// CompileStage walks the layers) into a Program: three flat op lists —
// forward, grad-input, grad-weight — whose kernel closures were resolved
// at lowering time against the concrete layer types, so the steady-state
// replay performs no interface dispatch and makes no allocation
// decisions. The split of backward into grad-input (produces dx, the op
// the upstream stage waits on) and grad-weight (local parameter
// accumulation) is the 2BP-style split sched.SplitBackward schedules.
//
// Buffers are virtual registers. The builder records which ops read and
// write each register; Finish computes every register's live range over
// the linear forward → grad-input → grad-weight order, and binding an
// execution environment (Program.NewEnv) assigns registers to arena
// slots: equal-sized registers with disjoint live ranges share one
// backing buffer. Slots are allocated once per Env and reused across
// micro-batches; each in-flight micro-batch owns one Env, which is what
// makes compiled stages reentrant — per-micro state (dropout masks,
// layer-norm statistics, fallback stashes) lives in the Env, never in
// the module.
//
// Register classes:
//
//   - extern: provided per micro-batch by the runtime (the stage input
//     and the incoming output-gradient).
//   - slot: planned, slot-backed, written in place by Into-kernels;
//     zero arena traffic in steady state.
//   - dynamic: produced by an op that allocates (fallback layers that
//     call the reference Forward/Backward). The planner's release
//     schedule returns each one to the arena right after its last use.
//
// Ownership at stage boundaries matches the interpreter: a tensor sent
// to another stage (forward activation, upstream gradient) is borrowed
// per micro-batch and owned by the receiver, so cross-stage buffers are
// never aliased by slot reuse.
package compiled

import "fmt"

// Phase tags which replay pass an op belongs to.
type Phase uint8

const (
	// PhaseFwd ops run during the forward replay.
	PhaseFwd Phase = iota
	// PhaseBwdIn ops compute the input gradient (the 2BP grad-input
	// half); their completion unblocks the upstream stage.
	PhaseBwdIn
	// PhaseBwdW ops accumulate parameter gradients (the grad-weight
	// half); they have no cross-stage consumers.
	PhaseBwdW
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseFwd:
		return "fwd"
	case PhaseBwdIn:
		return "bwd_in"
	default:
		return "bwd_w"
	}
}

// Reg identifies a virtual buffer of the graph.
type Reg int

// NoReg marks the absence of a register (e.g. the input gradient of an
// embedding layer, which has no differentiable input).
const NoReg Reg = -1

// Shape computes a register's concrete shape from the stage's input
// shape; lowerings compose these so binding an Env for any micro-batch
// geometry resolves every buffer size.
type Shape func(in []int) []int

// AuxID identifies a per-Env auxiliary cell for non-tensor per-micro
// state (index lists, normalization statistics, fallback stashes).
type AuxID int

// Op is one compiled node: a phase tag, a diagnostic name, and the
// kernel closure resolved at lowering time. Fn captures the concrete
// layer parameters and register indices; replay is a plain loop of
// function-pointer calls.
type Op struct {
	Phase Phase
	Name  string
	Fn    func(*Env)
}

type regClass uint8

const (
	regExtern regClass = iota
	regSlot
	regDynamic
	// regBorrowOut is a slot register promoted to per-micro arena borrow
	// because its tensor crosses the stage boundary (ownership transfers
	// to the consuming stage, so its storage cannot be a reused slot).
	regBorrowOut
)

type regInfo struct {
	class regClass
	shape Shape
	// def and lastUse are positions in the linear fwd→bwdIn→bwdW order
	// (-1 = never written/read).
	def, lastUse int
}

// Program is one stage's compiled op graph plus its buffer plan. It is
// immutable after Finish; all per-micro-batch state lives in Envs.
type Program struct {
	fwd, bwdIn, bwdW []Op
	regs             []regInfo
	aux              []func(in []int) any

	inReg, outReg, dInReg, dOutReg Reg
	emitOut, emitDX                bool
	// outCopy/dxCopy: the boundary register is still read by backward
	// ops after shipping, so the Env ships a per-micro borrowed copy and
	// keeps the slot intact.
	outCopy, dxCopy bool

	// release[p] lists the dynamic registers whose last use is linear
	// position p; the Env returns them to the arena right after op p.
	release [][]Reg
}

// Ops returns the op count of each phase (forward, grad-input,
// grad-weight) — what tests and benchmarks report.
func (p *Program) Ops() (fwd, bwdIn, bwdW int) {
	return len(p.fwd), len(p.bwdIn), len(p.bwdW)
}

// OpNames returns the names of every op in linear replay order.
func (p *Program) OpNames() []string {
	var names []string
	for _, ops := range [][]Op{p.fwd, p.bwdIn, p.bwdW} {
		for _, op := range ops {
			names = append(names, fmt.Sprintf("%s:%s", op.Phase, op.Name))
		}
	}
	return names
}

// OutOwned reports whether the forward output is a per-micro-batch
// tensor the caller owns (and may release after consuming it), as
// opposed to slot storage reused by the next micro-batch.
func (p *Program) OutOwned() bool {
	if p.outReg == NoReg {
		return false
	}
	c := p.regs[p.outReg].class
	return c == regDynamic || c == regBorrowOut
}

// linearLen returns the number of ops across all phases.
func (p *Program) linearLen() int { return len(p.fwd) + len(p.bwdIn) + len(p.bwdW) }
