package compiled

import (
	"math/rand"
	"testing"
)

// TestAssignSlotsProperty generates randomized interval sets and checks
// the planner's safety invariants: two intervals sharing a slot must
// have equal sizes and strictly disjoint live ranges (a register
// expiring at position p is not reusable at p: an op may not read
// storage it is overwriting).
func TestAssignSlotsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	sizes := []int{16, 16, 64, 256, 1024}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		ivs := make([]interval, n)
		for i := range ivs {
			def := rng.Intn(100)
			ivs[i] = interval{
				reg:  Reg(i),
				def:  def,
				use:  def + rng.Intn(30),
				size: sizes[rng.Intn(len(sizes))],
			}
		}
		// The planner requires def order.
		for i := 1; i < len(ivs); i++ {
			for j := i; j > 0 && ivs[j].def < ivs[j-1].def; j-- {
				ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
			}
		}
		slotOf, slotSizes := assignSlots(ivs)
		for i := range ivs {
			if slotSizes[slotOf[i]] != ivs[i].size {
				t.Fatalf("trial %d: interval %d size %d in slot of size %d",
					trial, i, ivs[i].size, slotSizes[slotOf[i]])
			}
			for j := i + 1; j < n; j++ {
				if slotOf[i] != slotOf[j] {
					continue
				}
				a, b := ivs[i], ivs[j]
				if a.def <= b.use && b.def <= a.use {
					t.Fatalf("trial %d: live intervals [%d,%d] and [%d,%d] share slot %d",
						trial, a.def, a.use, b.def, b.use, slotOf[i])
				}
			}
		}
	}
}

// TestAssignSlotsReuse checks that the planner actually shares storage:
// two equal-sized registers with disjoint ranges must land in one slot.
func TestAssignSlotsReuse(t *testing.T) {
	ivs := []interval{
		{reg: 0, def: 0, use: 1, size: 64},
		{reg: 1, def: 2, use: 3, size: 64},
	}
	slotOf, slotSizes := assignSlots(ivs)
	if len(slotSizes) != 1 || slotOf[0] != slotOf[1] {
		t.Fatalf("disjoint equal-size intervals should share one slot, got slots %v sizes %v", slotOf, slotSizes)
	}

	// Touching at a boundary position must NOT share.
	ivs = []interval{
		{reg: 0, def: 0, use: 2, size: 64},
		{reg: 1, def: 2, use: 3, size: 64},
	}
	slotOf, _ = assignSlots(ivs)
	if slotOf[0] == slotOf[1] {
		t.Fatal("intervals meeting at one position must not share a slot")
	}

	// Different sizes never share even when disjoint.
	ivs = []interval{
		{reg: 0, def: 0, use: 1, size: 64},
		{reg: 1, def: 5, use: 6, size: 128},
	}
	slotOf, _ = assignSlots(ivs)
	if slotOf[0] == slotOf[1] {
		t.Fatal("different-size intervals must not share a slot")
	}
}
