package compiled

import "fmt"

type opRec struct {
	op     Op
	reads  []Reg
	writes []Reg
}

// Builder accumulates a stage's op graph during lowering. Layer
// lowerings emit forward ops immediately (advancing the activation
// cursor) and register backward thunks; Finish runs the thunks in
// reverse layer order to build the grad-input/grad-weight lists, then
// computes register lifetimes and the dynamic-release schedule.
type Builder struct {
	regs []regInfo
	aux  []func(in []int) any

	fwd, bwdIn, bwdW []opRec

	inReg Reg
	cur   Reg

	bwdThunks []func(dy Reg) Reg

	err error
}

// NewBuilder returns a builder whose cursor is the stage-input
// register (an extern the runtime binds per micro-batch).
func NewBuilder() *Builder {
	b := &Builder{}
	b.inReg = b.Extern(func(in []int) []int { return in })
	b.cur = b.inReg
	return b
}

// Input returns the stage-input register.
func (b *Builder) Input() Reg { return b.inReg }

// Cur returns the activation cursor: the register holding the output of
// the last lowered layer (the next layer's input).
func (b *Builder) Cur() Reg { return b.cur }

// SetCur moves the activation cursor; a lowering calls this after
// emitting the op that writes its output register. Pure passthrough
// layers (eval-mode dropout) may alias by setting the cursor to their
// input register without emitting any op.
func (b *Builder) SetCur(r Reg) { b.cur = r }

// ShapeOf returns the shape function of a register (nil for dynamic
// registers whose shape is determined by the producing op at runtime).
func (b *Builder) ShapeOf(r Reg) Shape { return b.regs[r].shape }

func (b *Builder) newReg(class regClass, shape Shape) Reg {
	b.regs = append(b.regs, regInfo{class: class, shape: shape, def: -1, lastUse: -1})
	return Reg(len(b.regs) - 1)
}

// Extern declares a register bound per micro-batch by the runtime.
func (b *Builder) Extern(shape Shape) Reg { return b.newReg(regExtern, shape) }

// Slot declares a planned register: backed by slot storage assigned at
// bind time, shared with other slot registers whose live ranges are
// disjoint. Ops writing a slot register must fully overwrite it (or
// clear it first): slot buffers are not re-zeroed between micro-batches.
func (b *Builder) Slot(shape Shape) Reg { return b.newReg(regSlot, shape) }

// Dynamic declares a register whose tensor is allocated by the
// producing op (fallback lowerings calling the reference
// Forward/Backward). The planner releases it after its last use. shape
// may be nil when the producing module's output shape is not statically
// known — downstream lowerings then degrade to fallback themselves.
func (b *Builder) Dynamic(shape Shape) Reg { return b.newReg(regDynamic, shape) }

// Aux declares a per-Env auxiliary cell. If mk is non-nil it is called
// once at bind time with the stage-input shape to pre-build the cell
// (index slices, statistic buffers); a nil mk leaves the cell nil until
// an op sets it.
func (b *Builder) Aux(mk func(in []int) any) AuxID {
	b.aux = append(b.aux, mk)
	return AuxID(len(b.aux) - 1)
}

func (b *Builder) emit(list *[]opRec, phase Phase, name string, reads, writes []Reg, fn func(*Env)) {
	*list = append(*list, opRec{
		op:     Op{Phase: phase, Name: name, Fn: fn},
		reads:  reads,
		writes: writes,
	})
}

// EmitFwd appends a forward op. reads/writes declare the registers the
// op touches — the planner's only source of lifetime information, so a
// lowering must declare every register its closure dereferences.
func (b *Builder) EmitFwd(name string, reads, writes []Reg, fn func(*Env)) {
	b.emit(&b.fwd, PhaseFwd, name, reads, writes, fn)
}

// EmitBwdIn appends a grad-input op (runs in the BwdIn replay pass).
func (b *Builder) EmitBwdIn(name string, reads, writes []Reg, fn func(*Env)) {
	b.emit(&b.bwdIn, PhaseBwdIn, name, reads, writes, fn)
}

// EmitBwdW appends a grad-weight op (runs in the BwdW replay pass).
func (b *Builder) EmitBwdW(name string, reads, writes []Reg, fn func(*Env)) {
	b.emit(&b.bwdW, PhaseBwdW, name, reads, writes, fn)
}

// OnBackward registers a layer's backward thunk. Finish calls thunks in
// reverse registration order, passing each the register holding the
// gradient of its forward output; the thunk emits BwdIn/BwdW ops and
// returns the register holding the gradient of its forward input
// (NoReg if the layer has no differentiable input, e.g. Embedding).
func (b *Builder) OnBackward(f func(dy Reg) Reg) {
	b.bwdThunks = append(b.bwdThunks, f)
}

// Errorf records a lowering error; Finish reports the first one.
func (b *Builder) Errorf(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Options configures Finish for the stage's position in the pipeline.
type Options struct {
	// EmitOut marks the forward output as crossing the stage boundary
	// (every stage but the last): its tensor is borrowed per micro-batch
	// and ownership passes to the consuming stage.
	EmitOut bool
	// EmitDX marks the input gradient as crossing the stage boundary
	// (every stage but the first).
	EmitDX bool
}

// Finish threads the backward thunks, computes lifetimes and the
// release schedule, and seals the Program.
func (b *Builder) Finish(opts Options) (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.fwd) == 0 && b.cur == b.inReg {
		return nil, fmt.Errorf("compiled: empty stage")
	}
	outReg := b.cur
	outShape := b.regs[outReg].shape

	// The incoming gradient matches the forward output's shape (dynamic
	// outputs leave it dynamic-shaped too: bound by the runtime).
	dIn := b.Extern(outShape)
	d := dIn
	for i := len(b.bwdThunks) - 1; i >= 0; i-- {
		d = b.bwdThunks[i](d)
		if b.err != nil {
			return nil, b.err
		}
	}
	dOut := d

	p := &Program{
		regs:    b.regs,
		aux:     b.aux,
		inReg:   b.inReg,
		outReg:  outReg,
		dInReg:  dIn,
		dOutReg: dOut,
		emitOut: opts.EmitOut,
		emitDX:  opts.EmitDX,
	}

	// Lifetimes over the linear fwd → bwdIn → bwdW order. A write also
	// counts as a use: a written-but-never-read register must stay valid
	// through its producing op.
	pos := 0
	touch := func(rs []Reg, isWrite bool) error {
		for _, r := range rs {
			if r == NoReg {
				continue
			}
			if int(r) >= len(p.regs) {
				return fmt.Errorf("compiled: op %d references unknown reg %d", pos, r)
			}
			ri := &p.regs[r]
			if isWrite && ri.def == -1 {
				ri.def = pos
			}
			if !isWrite && ri.def == -1 && ri.class != regExtern {
				return fmt.Errorf("compiled: op %d reads reg %d before any write", pos, r)
			}
			if pos > ri.lastUse {
				ri.lastUse = pos
			}
		}
		return nil
	}
	var recs []opRec
	recs = append(recs, b.fwd...)
	recs = append(recs, b.bwdIn...)
	recs = append(recs, b.bwdW...)
	for _, rec := range recs {
		if err := touch(rec.reads, false); err != nil {
			return nil, err
		}
		if err := touch(rec.writes, true); err != nil {
			return nil, err
		}
		pos++
	}
	// Externs are live from their binding point: the input from op 0,
	// the incoming gradient from the first backward op.
	if p.regs[p.inReg].lastUse >= 0 {
		p.regs[p.inReg].def = 0
	}
	if p.regs[dIn].lastUse >= 0 {
		p.regs[dIn].def = len(b.fwd)
	}

	// Registers whose tensors cross the stage boundary cannot live in
	// reusable slot storage, because ownership passes to the consuming
	// stage (which releases them). Promote them to per-micro-batch
	// borrows — unless a backward op still reads the register after it
	// was shipped, in which case the register keeps its slot and the Env
	// ships a per-micro copy instead (Output/GradOut).
	if opts.EmitOut && p.regs[outReg].class == regSlot {
		if p.regs[outReg].lastUse >= len(b.fwd) {
			p.outCopy = true
		} else {
			p.regs[outReg].class = regBorrowOut
		}
	}
	if opts.EmitDX && dOut != NoReg && p.regs[dOut].class == regSlot {
		if p.regs[dOut].lastUse >= len(b.fwd)+len(b.bwdIn) {
			p.dxCopy = true
		} else {
			p.regs[dOut].class = regBorrowOut
		}
	}

	// Release schedule for dynamic registers: returned to the arena
	// right after their last use. Boundary tensors are excluded — the
	// output and emitted dx pass ownership downstream/upstream, externs
	// are released by EndMicro with interpreter-matching guards.
	p.release = make([][]Reg, pos)
	for r := range p.regs {
		ri := &p.regs[r]
		if ri.class != regDynamic || ri.lastUse < 0 {
			continue
		}
		reg := Reg(r)
		if reg == p.outReg || reg == p.dOutReg || reg == p.inReg || reg == p.dInReg {
			continue
		}
		p.release[ri.lastUse] = append(p.release[ri.lastUse], reg)
	}

	for _, rec := range recs {
		switch rec.op.Phase {
		case PhaseFwd:
			p.fwd = append(p.fwd, rec.op)
		case PhaseBwdIn:
			p.bwdIn = append(p.bwdIn, rec.op)
		default:
			p.bwdW = append(p.bwdW, rec.op)
		}
	}
	return p, nil
}
