package fault

import (
	"testing"
	"time"

	"avgpipe/internal/obs"
)

func chaosConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		MsgDelayProb:   0.1,
		MsgDelay:       2 * time.Millisecond,
		MsgDropProb:    0.05,
		StragglerProb:  0.02,
		StragglerDelay: time.Millisecond,
		CrashPipeline:  2,
		CrashRound:     10,
		RejoinAfter:    5,
	}
}

// TestSeededDeterminism is the determinism contract the Makefile faults
// tier depends on: the same seed must produce the identical fault
// schedule, and different seeds must not.
func TestSeededDeterminism(t *testing.T) {
	a, err := New(chaosConfig(7), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(chaosConfig(7), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(chaosConfig(8), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for p := 0; p < 4; p++ {
		for r := 0; r < 200; r++ {
			fa, da := a.UpdateFate(p, r)
			fb, db := b.UpdateFate(p, r)
			if fa != fb || da != db {
				t.Fatalf("same seed diverged at pipeline %d round %d: %v/%v vs %v/%v", p, r, fa, da, fb, db)
			}
			if fc, _ := c.UpdateFate(p, r); fc != fa {
				diff++
			}
			if a.CrashAt(p, r) != b.CrashAt(p, r) || a.RejoinAt(p, r) != b.RejoinAt(p, r) {
				t.Fatalf("crash schedule diverged at pipeline %d round %d", p, r)
			}
			for s := 0; s < 3; s++ {
				if a.StageDelay(p, s, r) != b.StageDelay(p, s, r) {
					t.Fatalf("straggler schedule diverged at pipeline %d stage %d op %d", p, s, r)
				}
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced the identical fault schedule")
	}
}

func TestFateRatesMatchConfig(t *testing.T) {
	in, err := New(chaosConfig(3), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var delayed, dropped int
	for i := 0; i < n; i++ {
		switch f, d := in.UpdateFate(i%8, i/8); f {
		case FateDelay:
			if d != 2*time.Millisecond {
				t.Fatalf("delay fate carries %v", d)
			}
			delayed++
		case FateDrop:
			dropped++
		}
	}
	if r := float64(delayed) / n; r < 0.07 || r > 0.13 {
		t.Fatalf("delay rate %v, want ~0.10", r)
	}
	if r := float64(dropped) / n; r < 0.03 || r > 0.07 {
		t.Fatalf("drop rate %v, want ~0.05", r)
	}
}

func TestCrashAndRejoinFireOnce(t *testing.T) {
	in, err := New(chaosConfig(1), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var crashes, rejoins int
	for p := 0; p < 4; p++ {
		for r := 0; r < 40; r++ {
			if in.CrashAt(p, r) {
				if p != 2 || r != 10 {
					t.Fatalf("crash fired at pipeline %d round %d", p, r)
				}
				crashes++
			}
			if in.RejoinAt(p, r) {
				if p != 2 || r != 15 {
					t.Fatalf("rejoin fired at pipeline %d round %d", p, r)
				}
				rejoins++
			}
		}
	}
	if crashes != 1 || rejoins != 1 {
		t.Fatalf("crashes %d rejoins %d, want 1 each", crashes, rejoins)
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if f, d := in.UpdateFate(0, 0); f != FateDeliver || d != 0 {
		t.Fatalf("nil injector fate %v/%v", f, d)
	}
	if d := in.StageDelay(0, 0, 0); d != 0 {
		t.Fatalf("nil injector stage delay %v", d)
	}
	if in.CrashAt(0, 0) || in.RejoinAt(0, 0) {
		t.Fatal("nil injector crashed a replica")
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in, err := New(Config{}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		for r := 0; r < 100; r++ {
			if f, _ := in.UpdateFate(p, r); f != FateDeliver {
				t.Fatalf("zero config faulted update %d/%d", p, r)
			}
			if in.CrashAt(p, r) {
				t.Fatalf("zero config crashed pipeline %d at round %d", p, r)
			}
			if in.StageDelay(p, 0, r) != 0 {
				t.Fatal("zero config straggled")
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MsgDelayProb: -0.1},
		{MsgDropProb: 1.5},
		{MsgDelayProb: 0.6, MsgDropProb: 0.6},
		{MsgDelayProb: 0.1}, // no delay duration
		{StragglerProb: 0.1},
		{MsgDelay: -time.Second},
		{CrashRound: -1},
		{CrashRound: 5, CrashPipeline: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d validated: %+v", i, cfg)
		}
		if _, err := New(cfg, obs.NewRegistry()); err == nil {
			t.Fatalf("New accepted bad config %d", i)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if err := chaosConfig(1).Validate(); err != nil {
		t.Fatalf("chaos config rejected: %v", err)
	}
}
