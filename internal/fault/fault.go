// Package fault is the deterministic fault-injection layer of the
// robustness harness. An Injector makes seed-driven decisions — delay or
// drop an elastic-averaging update, slow a stage's compute, crash a
// replica at a chosen round — that the runtime (core.Pipeline), the
// averager (core.Averager), and the trainer (core.Trainer) consult at
// their hook points.
//
// Every decision is a pure function of (seed, coordinates): the same
// seed produces the identical fault schedule regardless of goroutine
// interleaving, so chaos tests are reproducible and a failing seed can
// be replayed. There is no shared RNG stream to race on; decisions hash
// the coordinates with a splitmix64 chain instead.
//
// All methods are nil-receiver safe and return "no fault", so hook
// points need no call-site guards and cost one pointer test when fault
// injection is disabled.
package fault

import (
	"fmt"
	"time"

	"avgpipe/internal/obs"
)

// Fate is the injector's verdict on one elastic-averaging update.
type Fate int

const (
	// FateDeliver ships the update immediately (no fault).
	FateDeliver Fate = iota
	// FateDelay ships the update after the configured delay.
	FateDelay
	// FateDrop loses the update in flight; the averaging round must
	// survive without it (see Averager round deadlines).
	FateDrop
)

// String names the fate for logs and test failures.
func (f Fate) String() string {
	switch f {
	case FateDeliver:
		return "deliver"
	case FateDelay:
		return "delay"
	case FateDrop:
		return "drop"
	default:
		return fmt.Sprintf("fate(%d)", int(f))
	}
}

// Config declares the fault schedule. The zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic decision. Two injectors with the
	// same Seed (and config) produce identical fault schedules.
	Seed int64

	// MsgDelayProb is the fraction of averaging updates held back by
	// MsgDelay before delivery.
	MsgDelayProb float64
	// MsgDelay is how long a delayed update is held.
	MsgDelay time.Duration
	// MsgDropProb is the fraction of averaging updates lost in flight.
	MsgDropProb float64

	// StragglerProb is the per-op probability that a stage's compute is
	// slowed by StragglerDelay (a transient straggler GPU).
	StragglerProb float64
	// StragglerDelay is the injected compute slowdown.
	StragglerDelay time.Duration

	// CrashPipeline names the replica that crashes at the start of
	// CrashRound. The crash is armed only when CrashRound > 0 (replicas
	// must start live), so the zero Config injects nothing.
	CrashPipeline int
	// CrashRound is the training round at which the crash fires; 0
	// disables the crash.
	CrashRound int
	// RejoinAfter is how many rounds the crashed replica stays detached
	// before rejoining from the reference model; 0 means it never
	// returns.
	RejoinAfter int
}

// Validate reports the first malformed field, so a bad chaos setup
// fails at construction instead of silently injecting nothing (or
// everything).
func (c Config) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"MsgDelayProb", c.MsgDelayProb},
		{"MsgDropProb", c.MsgDropProb},
		{"StragglerProb", c.StragglerProb},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.MsgDelayProb+c.MsgDropProb > 1 {
		return fmt.Errorf("fault: MsgDelayProb + MsgDropProb = %v exceeds 1",
			c.MsgDelayProb+c.MsgDropProb)
	}
	if c.MsgDelay < 0 || c.StragglerDelay < 0 {
		return fmt.Errorf("fault: negative delay (msg %v, straggler %v)", c.MsgDelay, c.StragglerDelay)
	}
	if c.MsgDelayProb > 0 && c.MsgDelay == 0 {
		return fmt.Errorf("fault: MsgDelayProb %v with zero MsgDelay", c.MsgDelayProb)
	}
	if c.StragglerProb > 0 && c.StragglerDelay == 0 {
		return fmt.Errorf("fault: StragglerProb %v with zero StragglerDelay", c.StragglerProb)
	}
	if c.CrashRound < 0 || c.RejoinAfter < 0 {
		return fmt.Errorf("fault: negative crash round %d or rejoin-after %d", c.CrashRound, c.RejoinAfter)
	}
	if c.CrashRound > 0 && c.CrashPipeline < 0 {
		return fmt.Errorf("fault: crash armed at round %d with negative pipeline %d", c.CrashRound, c.CrashPipeline)
	}
	return nil
}

// crashArmed reports whether the config schedules a replica crash.
func (c Config) crashArmed() bool { return c.CrashRound > 0 }

// Injector makes the fault decisions for one run. Construct with New;
// a nil *Injector injects nothing.
type Injector struct {
	cfg Config

	delayed   *obs.Counter
	dropped   *obs.Counter
	straggled *obs.Counter
	crashes   *obs.Counter
	rejoins   *obs.Counter

	// events mirrors each injected fault as a structured health event,
	// so a telemetry collector can correlate observed symptoms (expired
	// rounds, straggler scores) with their injected causes.
	events *obs.EventLog
}

// New validates cfg and builds an injector recording fault counters
// into reg (nil = obs.Default()).
func New(cfg Config, reg *obs.Registry) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		reg = obs.Default()
	}
	return &Injector{
		cfg: cfg,
		delayed: reg.Counter("avgpipe_fault_msgs_delayed_total",
			"Averaging updates held back by the fault injector."),
		dropped: reg.Counter("avgpipe_fault_msgs_dropped_total",
			"Averaging updates lost in flight by the fault injector."),
		straggled: reg.Counter("avgpipe_fault_straggler_ops_total",
			"Stage ops slowed by injected straggler delays."),
		crashes: reg.Counter("avgpipe_fault_crashes_total",
			"Replica crashes fired by the fault injector."),
		rejoins: reg.Counter("avgpipe_fault_rejoins_total",
			"Replica rejoins fired by the fault injector."),
		events: reg.Events(),
	}, nil
}

// Config returns the fault schedule declaration.
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Decision domains keep the hash streams for different fault kinds
// independent even at equal coordinates.
const (
	domainMsg = 0x6d7367 // "msg"
	domainOp  = 0x6f70   // "op"
)

// mix is the splitmix64 finalizer: a full-avalanche 64-bit hash step.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rand01 maps (seed, domain, a, b, c) to a uniform value in [0, 1).
func (in *Injector) rand01(domain uint64, a, b, c int) float64 {
	h := mix(uint64(in.cfg.Seed) ^ domain)
	h = mix(h ^ uint64(int64(a)))
	h = mix(h ^ uint64(int64(b)))
	h = mix(h ^ uint64(int64(c)))
	return float64(h>>11) / (1 << 53)
}

// UpdateFate decides what happens to pipeline p's averaging update for
// the given round: deliver it, delay it (returning the hold time), or
// drop it.
func (in *Injector) UpdateFate(pipeline, round int) (Fate, time.Duration) {
	if in == nil {
		return FateDeliver, 0
	}
	u := in.rand01(domainMsg, pipeline, round, 0)
	switch {
	case u < in.cfg.MsgDropProb:
		in.dropped.Inc()
		in.events.Emit(obs.Event{Type: obs.EventUpdateDropped, Replica: pipeline, Round: round})
		return FateDrop, 0
	case u < in.cfg.MsgDropProb+in.cfg.MsgDelayProb:
		in.delayed.Inc()
		in.events.Emit(obs.Event{Type: obs.EventUpdateDelayed, Replica: pipeline, Round: round,
			Value: in.cfg.MsgDelay.Seconds()})
		return FateDelay, in.cfg.MsgDelay
	default:
		return FateDeliver, 0
	}
}

// StageDelay returns the injected straggler delay for op opIndex of
// stage s in pipeline p (0 = run at full speed).
func (in *Injector) StageDelay(pipeline, stage, opIndex int) time.Duration {
	if in == nil || in.cfg.StragglerProb == 0 {
		return 0
	}
	if in.rand01(domainOp, pipeline, stage, opIndex) < in.cfg.StragglerProb {
		in.straggled.Inc()
		in.events.Emit(obs.Event{Type: obs.EventStragglerInjected, Replica: pipeline,
			Round: -1, Stage: stage, Value: in.cfg.StragglerDelay.Seconds()})
		return in.cfg.StragglerDelay
	}
	return 0
}

// CrashAt reports whether pipeline p crashes at the start of the given
// round. The trainer must consult it exactly once per (pipeline, round).
func (in *Injector) CrashAt(pipeline, round int) bool {
	if in == nil || !in.cfg.crashArmed() {
		return false
	}
	if pipeline == in.cfg.CrashPipeline && round == in.cfg.CrashRound {
		in.crashes.Inc()
		return true
	}
	return false
}

// RejoinAt reports whether a crashed pipeline p rejoins at the start of
// the given round (RejoinAfter rounds after its crash).
func (in *Injector) RejoinAt(pipeline, round int) bool {
	if in == nil || !in.cfg.crashArmed() || in.cfg.RejoinAfter == 0 {
		return false
	}
	if pipeline == in.cfg.CrashPipeline && round == in.cfg.CrashRound+in.cfg.RejoinAfter {
		in.rejoins.Inc()
		return true
	}
	return false
}
