// Package heal closes the loop from health events to automatic
// recovery: a supervision loop subscribes to the registry's health
// events and the averager's live round metrics, and drives the
// recovery seams the runtime already exposes — Detach for replicas that
// stall, fall behind, or lose their mesh connection for good, and
// SetRoundDeadline retuned from observed round latency — so a faulty
// replica degrades the job instead of wedging it, without operator
// input.
package heal

import (
	"fmt"
	"sync"
	"time"

	"avgpipe/internal/obs"
)

// Averager is the recovery surface the supervisor drives. Implemented
// by *core.Averager.
type Averager interface {
	// Live reports whether replica p currently participates in rounds.
	Live(p int) bool
	// LiveReplicas counts the participating replicas.
	LiveReplicas() int
	// Detach removes replica p from elastic averaging.
	Detach(p int)
	// SetRoundDeadline bounds how long an incomplete round waits.
	SetRoundDeadline(d time.Duration)
	// RoundProgress reports the newest submitted round overall and per
	// replica (-1 before a replica's first update).
	RoundProgress() (latest int, last []int)
	// RoundLatencyQuantile reports the q-quantile of round latency in
	// seconds (0 before any round closed).
	RoundLatencyQuantile(q float64) float64
}

// Defaults for the zero-valued Config fields.
const (
	DefaultInterval          = 50 * time.Millisecond
	DefaultMissedRounds      = 3
	DefaultReconnectFailures = 5
	DefaultDeadlineMultiple  = 4.0
	DefaultHysteresis        = 0.25
)

// Supervisor action names: the "action" label of the
// avgpipe_heal_actions_total counter and the Detail of EventHealAction
// events.
const (
	ActionDetachStall  = "auto_detach_stall"
	ActionDetachBehind = "auto_detach_behind"
	ActionDetachConn   = "auto_detach_conn"
	ActionRetune       = "deadline_retune"
)

// Config tunes the supervisor. Zero values select the defaults above;
// MinDeadline/MaxDeadline of zero leave that bound off.
type Config struct {
	// Self is the local replica id, which the supervisor never
	// auto-detaches for falling behind (its own silence is visible to
	// peers, not to itself); -1 (or out of range) protects nobody.
	Self int
	// Interval paces the supervision loop.
	Interval time.Duration
	// MissedRounds is the detach threshold: a live replica whose newest
	// update is this many rounds behind the pack is considered gone.
	MissedRounds int
	// ReconnectFailures is the detach threshold for connection loss: a
	// peer whose broken connection has resisted this many consecutive
	// redial attempts is considered gone (it is re-admitted by its
	// rejoin announcement if the link heals later).
	ReconnectFailures int
	// DeadlineMultiple sets the adaptive round deadline to this multiple
	// of the observed round-latency p99.
	DeadlineMultiple float64
	// MinDeadline/MaxDeadline clamp the adaptive deadline.
	MinDeadline time.Duration
	MaxDeadline time.Duration
	// Hysteresis suppresses retunes smaller than this relative change,
	// so the deadline does not flap with every latency wiggle.
	Hysteresis float64
	// Deadline seeds the adaptive loop with the currently configured
	// round deadline (0 = none yet; the first observation sets it).
	Deadline time.Duration
	// Registry records the heal metrics (nil = obs.Default()).
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.MissedRounds <= 0 {
		c.MissedRounds = DefaultMissedRounds
	}
	if c.ReconnectFailures <= 0 {
		c.ReconnectFailures = DefaultReconnectFailures
	}
	if c.DeadlineMultiple <= 0 {
		c.DeadlineMultiple = DefaultDeadlineMultiple
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = DefaultHysteresis
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	return c
}

// Supervisor watches one process's health signals and drives recovery.
type Supervisor struct {
	cfg    Config
	avg    Averager
	events *obs.EventLog

	mu       sync.Mutex
	deadline time.Duration
	counters map[string]*obs.Counter
	started  bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	wake     chan struct{} // test hook: force one supervision pass
}

// New builds a supervisor over avg, reacting to events (typically the
// registry's event log — the supervisor adds a sink, it never drains,
// so the telemetry publisher keeps seeing every event too). Call Start
// to begin supervision.
func New(avg Averager, events *obs.EventLog, cfg Config) *Supervisor {
	cfg = cfg.withDefaults()
	return &Supervisor{
		cfg: cfg, avg: avg, events: events,
		deadline: cfg.Deadline,
		counters: make(map[string]*obs.Counter),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		wake:     make(chan struct{}, 1),
	}
}

// Start subscribes to the event stream and launches the supervision
// loop. Call at most once; Stop ends supervision.
func (s *Supervisor) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.events.AddSink(s.onEvent)
	go s.loop()
}

// Stop ends the supervision loop. The event sink stays registered (the
// event log has no removal; a stopped supervisor's sink is inert).
func (s *Supervisor) Stop() {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	if started {
		<-s.done
	}
}

// Kick forces one immediate supervision pass (tests).
func (s *Supervisor) Kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// onEvent reacts synchronously to health events. It must stay fast and
// re-entrant: Detach itself emits events, which re-enter here.
func (s *Supervisor) onEvent(e obs.Event) {
	select {
	case <-s.stop:
		return
	default:
	}
	switch e.Type {
	case obs.EventWatchdogStall:
		// A wedged pipeline: its replica cannot produce updates, so take
		// it out of the averaging set before it drags every round to the
		// deadline.
		if e.Replica >= 0 && s.avg.Live(e.Replica) {
			s.act(ActionDetachStall, e.Replica, fmt.Sprintf("watchdog stalled replica %d", e.Replica))
			s.avg.Detach(e.Replica)
		}
	case obs.EventReconnectAttempt:
		// The mesh layer keeps redialing in the background; once a peer
		// has resisted a streak of attempts, stop waiting for it. A later
		// successful reconnect re-admits it via its rejoin announcement.
		if int(e.Value) >= s.cfg.ReconnectFailures && e.Replica >= 0 && s.avg.Live(e.Replica) {
			s.act(ActionDetachConn, e.Replica,
				fmt.Sprintf("replica %d unreachable after %d reconnect attempts", e.Replica, int(e.Value)))
			s.avg.Detach(e.Replica)
		}
	case obs.EventReplicaDisconnect:
		// The redial budget was exhausted: the connection is permanently
		// dead, the peer is gone.
		if e.Replica >= 0 && s.avg.Live(e.Replica) {
			s.act(ActionDetachConn, e.Replica, fmt.Sprintf("connection to replica %d is dead", e.Replica))
			s.avg.Detach(e.Replica)
		}
	}
}

// loop runs the periodic checks: missed-round streaks and the adaptive
// round deadline.
func (s *Supervisor) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		case <-s.wake:
		}
		s.checkRounds()
		s.retuneDeadline()
	}
}

// checkRounds detaches live replicas that have fallen MissedRounds
// behind the newest submitted round — a crashed or partitioned replica
// whose connection still looks healthy.
func (s *Supervisor) checkRounds() {
	latest, last := s.avg.RoundProgress()
	if latest < 0 {
		return // no updates yet
	}
	for p, lr := range last {
		if p == s.cfg.Self || !s.avg.Live(p) {
			continue
		}
		if latest-lr >= s.cfg.MissedRounds {
			s.act(ActionDetachBehind, p,
				fmt.Sprintf("replica %d is %d rounds behind round %d", p, latest-lr, latest))
			s.avg.Detach(p)
		}
	}
}

// retuneDeadline adapts the round deadline to DeadlineMultiple × the
// observed round-latency p99, clamped to [MinDeadline, MaxDeadline],
// moving only when the change exceeds the hysteresis band.
func (s *Supervisor) retuneDeadline() {
	p99 := s.avg.RoundLatencyQuantile(0.99)
	if p99 <= 0 {
		return
	}
	want := time.Duration(s.cfg.DeadlineMultiple * p99 * float64(time.Second))
	if s.cfg.MinDeadline > 0 && want < s.cfg.MinDeadline {
		want = s.cfg.MinDeadline
	}
	if s.cfg.MaxDeadline > 0 && want > s.cfg.MaxDeadline {
		want = s.cfg.MaxDeadline
	}
	s.mu.Lock()
	cur := s.deadline
	retune := cur <= 0 || relChange(cur, want) > s.cfg.Hysteresis
	if retune {
		s.deadline = want
	}
	s.mu.Unlock()
	if !retune {
		return
	}
	s.avg.SetRoundDeadline(want)
	s.events.Emit(obs.Event{Type: obs.EventDeadlineRetuned, Replica: s.cfg.Self, Round: -1,
		Value: want.Seconds(), Detail: fmt.Sprintf("round deadline %v (p99 %.3fs)", want, p99)})
	s.count(ActionRetune)
}

// Deadline reports the supervisor's current adaptive round deadline (0
// until the first retune when none was seeded).
func (s *Supervisor) Deadline() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deadline
}

func relChange(old, new time.Duration) float64 {
	d := new - old
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(old)
}

// act records one recovery action: the heal_actions_total counter and a
// heal_action event naming it.
func (s *Supervisor) act(action string, replica int, detail string) {
	s.count(action)
	s.events.Emit(obs.Event{Type: obs.EventHealAction, Replica: replica, Round: -1, Detail: detail})
}

func (s *Supervisor) count(action string) {
	s.mu.Lock()
	c := s.counters[action]
	if c == nil {
		c = s.cfg.Registry.Counter("avgpipe_heal_actions_total",
			"Recovery actions taken by the heal supervisor.", "action", action)
		s.counters[action] = c
	}
	s.mu.Unlock()
	c.Inc()
}
