package heal

import (
	"sync"
	"testing"
	"time"

	"avgpipe/internal/core"
	"avgpipe/internal/nn"
	"avgpipe/internal/obs"
	"avgpipe/internal/tensor"
)

func smallParams() []*nn.Param {
	return []*nn.Param{nn.NewParam("w", tensor.New(4))}
}

// The supervisor races against live Submit/Detach/Rejoin traffic on a
// real averager: detaches triggered by injected health events must
// interleave safely with rounds closing, replicas rejoining, and the
// adaptive deadline moving. Run under -race (the Makefile race tier).
func TestSupervisorRacesWithAveragerTraffic(t *testing.T) {
	reg := obs.NewRegistry()
	a := core.NewAveragerObs(3, smallParams(), reg)
	defer a.Close()
	a.SetRoundDeadline(5 * time.Millisecond)

	s := New(a, reg.Events(), Config{
		Self: 0, Interval: time.Millisecond,
		MissedRounds: 50, // high: detaches in this test come from events
		MinDeadline:  time.Millisecond, MaxDeadline: 50 * time.Millisecond,
	})
	s.Start()
	defer s.Stop()

	const rounds = 200
	var wg sync.WaitGroup
	// Replicas 0 and 1 submit every round.
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ps := smallParams()
			for r := 0; r < rounds; r++ {
				ps[0].W.Data()[0] += 1
				a.Submit(p, r, ps)
			}
		}(p)
	}
	// Replica 2 flaps: the supervisor detaches it on stall events, the
	// flapper rejoins it, concurrently with the submitters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ps := smallParams()
		for i := 0; i < 50; i++ {
			reg.Events().Emit(obs.Event{Type: obs.EventWatchdogStall, Replica: 2})
			a.Rejoin(2, ps)
		}
		// Leave it detached so pending rounds can close without it.
		a.Detach(2)
	}()
	wg.Wait()
	a.Drain()
	waitFor(t, "all rounds closed", func() bool { return a.PendingRounds() == 0 })
}
