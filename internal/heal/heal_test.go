package heal

import (
	"sync"
	"testing"
	"time"

	"avgpipe/internal/obs"
)

// fakeAverager is a scriptable recovery surface.
type fakeAverager struct {
	mu       sync.Mutex
	live     []bool
	detached []int
	deadline time.Duration
	latest   int
	last     []int
	p99      float64
}

func newFake(n int) *fakeAverager {
	f := &fakeAverager{live: make([]bool, n), latest: -1, last: make([]int, n)}
	for p := range f.live {
		f.live[p] = true
		f.last[p] = -1
	}
	return f
}

func (f *fakeAverager) Live(p int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return p >= 0 && p < len(f.live) && f.live[p]
}

func (f *fakeAverager) LiveReplicas() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, l := range f.live {
		if l {
			n++
		}
	}
	return n
}

func (f *fakeAverager) Detach(p int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p >= 0 && p < len(f.live) && f.live[p] {
		f.live[p] = false
		f.detached = append(f.detached, p)
	}
}

func (f *fakeAverager) SetRoundDeadline(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.deadline = d
}

func (f *fakeAverager) RoundProgress() (int, []int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.latest, append([]int(nil), f.last...)
}

func (f *fakeAverager) RoundLatencyQuantile(q float64) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.p99
}

func (f *fakeAverager) detachedList() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.detached...)
}

func (f *fakeAverager) currentDeadline() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.deadline
}

func newSupervisor(t *testing.T, fake *fakeAverager, cfg Config) (*Supervisor, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Registry = reg
	// A long interval so test passes are driven by Kick, not the ticker.
	if cfg.Interval == 0 {
		cfg.Interval = time.Hour
	}
	s := New(fake, reg.Events(), cfg)
	s.Start()
	t.Cleanup(s.Stop)
	return s, reg
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSupervisorDetachesOnWatchdogStall(t *testing.T) {
	fake := newFake(3)
	_, reg := newSupervisor(t, fake, Config{Self: 0})
	reg.Events().Emit(obs.Event{Type: obs.EventWatchdogStall, Replica: 1})
	if got := fake.detachedList(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("detached %v, want [1]", got)
	}
	// A second stall of the now-dead replica is a no-op.
	reg.Events().Emit(obs.Event{Type: obs.EventWatchdogStall, Replica: 1})
	if got := fake.detachedList(); len(got) != 1 {
		t.Fatalf("re-detached a dead replica: %v", got)
	}
	if got := reg.Counter("avgpipe_heal_actions_total", "", "action", ActionDetachStall).Value(); got != 1 {
		t.Fatalf("heal_actions_total{action=%s} = %v, want 1", ActionDetachStall, got)
	}
	// Every action leaves a heal_action event in the log.
	found := false
	for _, e := range reg.Events().Peek() {
		if e.Type == obs.EventHealAction && e.Replica == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no heal_action event recorded for the detach")
	}
}

func TestSupervisorDetachesOnReconnectStreak(t *testing.T) {
	fake := newFake(2)
	_, reg := newSupervisor(t, fake, Config{Self: 0, ReconnectFailures: 3})
	// Below the threshold: still waiting for the link to heal.
	reg.Events().Emit(obs.Event{Type: obs.EventReconnectAttempt, Replica: 1, Value: 2})
	if got := fake.detachedList(); len(got) != 0 {
		t.Fatalf("detached %v before the failure threshold", got)
	}
	reg.Events().Emit(obs.Event{Type: obs.EventReconnectAttempt, Replica: 1, Value: 3})
	if got := fake.detachedList(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("detached %v, want [1]", got)
	}
}

func TestSupervisorDetachesExhaustedConnection(t *testing.T) {
	fake := newFake(2)
	_, reg := newSupervisor(t, fake, Config{Self: 0})
	reg.Events().Emit(obs.Event{Type: obs.EventReplicaDisconnect, Replica: 1})
	if got := fake.detachedList(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("detached %v, want [1]", got)
	}
}

func TestSupervisorDetachesReplicaFallingBehind(t *testing.T) {
	fake := newFake(3)
	s, _ := newSupervisor(t, fake, Config{Self: 0, MissedRounds: 3})
	fake.mu.Lock()
	fake.latest = 10
	fake.last = []int{10, 7, 8}
	fake.mu.Unlock()
	s.Kick()
	waitFor(t, "behind replica detached", func() bool { return len(fake.detachedList()) == 1 })
	if got := fake.detachedList(); got[0] != 1 {
		t.Fatalf("detached %v, want [1] (replica 2 is only 2 behind)", got)
	}
	// Self is never detached for falling behind, even when silent.
	fake.mu.Lock()
	fake.last[0] = 0
	fake.mu.Unlock()
	s.Kick()
	time.Sleep(20 * time.Millisecond)
	if got := fake.detachedList(); len(got) != 1 {
		t.Fatalf("detached %v — the supervisor detached its own replica", got)
	}
}

func TestSupervisorRetunesDeadlineWithHysteresis(t *testing.T) {
	fake := newFake(2)
	s, reg := newSupervisor(t, fake, Config{
		Self: 0, DeadlineMultiple: 4, Hysteresis: 0.25,
		MinDeadline: 10 * time.Millisecond, MaxDeadline: time.Second,
	})
	fake.mu.Lock()
	fake.p99 = 0.05 // p99 50ms → deadline 200ms
	fake.mu.Unlock()
	s.Kick()
	waitFor(t, "first retune", func() bool { return fake.currentDeadline() == 200*time.Millisecond })
	// A wiggle inside the hysteresis band must not retune.
	fake.mu.Lock()
	fake.p99 = 0.055 // → 220ms, a 10% change
	fake.mu.Unlock()
	s.Kick()
	time.Sleep(20 * time.Millisecond)
	if got := fake.currentDeadline(); got != 200*time.Millisecond {
		t.Fatalf("deadline %v retuned inside the hysteresis band", got)
	}
	// A real shift retunes; the clamp bounds it.
	fake.mu.Lock()
	fake.p99 = 10 // → 40s, clamped to MaxDeadline
	fake.mu.Unlock()
	s.Kick()
	waitFor(t, "clamped retune", func() bool { return fake.currentDeadline() == time.Second })
	if got := reg.Counter("avgpipe_heal_actions_total", "", "action", ActionRetune).Value(); got != 2 {
		t.Fatalf("retune count %v, want 2", got)
	}
	retuned := 0
	for _, e := range reg.Events().Peek() {
		if e.Type == obs.EventDeadlineRetuned {
			retuned++
		}
	}
	if retuned != 2 {
		t.Fatalf("deadline_retuned events %d, want 2", retuned)
	}
	if got := s.Deadline(); got != time.Second {
		t.Fatalf("Deadline() = %v, want 1s", got)
	}
}
