package heal

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"avgpipe/internal/core"
	"avgpipe/internal/fault"
	netx "avgpipe/internal/net"
	"avgpipe/internal/obs"
	"avgpipe/internal/workload"
)

// The chaos soak drives the whole self-healing stack end to end: a
// 2-process TCP job under seeded message drops and stragglers has one
// replica killed hard (mesh torn down, all process state lost) and
// restarted on the same address. The survivor must keep training alone
// (supervisor auto-detach), the mesh must re-knit itself (reconnecting
// conns + session epochs), the restarted process must rejoin without
// operator input (reference reseed over the wire), and the recovered
// job must reach >=90% of fault-free throughput.

const soakRoundDeadline = 100 * time.Millisecond

type soakNode struct {
	id      int
	reg     *obs.Registry
	tp      *netx.TCP
	mesh    *netx.Mesh
	trainer *core.Trainer
	sup     *Supervisor
}

// soakBind binds one TCP listener per replica on kernel-chosen ports.
func soakBind(t *testing.T, n int) (tps []*netx.TCP, lns []netx.Listener, addrs []string) {
	t.Helper()
	tps = make([]*netx.TCP, n)
	lns = make([]netx.Listener, n)
	addrs = make([]string, n)
	for i := 0; i < n; i++ {
		tps[i] = netx.NewTCP(obs.NewRegistry())
		ln, err := tps[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i], addrs[i] = ln, ln.Addr()
	}
	return tps, lns, addrs
}

// soakForm forms every replica's mesh concurrently on the given
// averaging topology (nil = the full mesh).
func soakForm(t *testing.T, topo netx.Topology, tps []*netx.TCP, lns []netx.Listener, addrs []string) []*netx.Mesh {
	t.Helper()
	n := len(tps)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	meshes := make([]*netx.Mesh, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		peers := make(map[int]string)
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = addrs[j]
			}
		}
		wg.Add(1)
		go func(i int, peers map[int]string) {
			defer wg.Done()
			meshes[i], errs[i] = netx.FormTopologyOn(ctx, tps[i], lns[i], topo, i, peers)
		}(i, peers)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("replica %d mesh: %v", i, err)
		}
	}
	return meshes
}

// soakUp builds one replica's runtime on a formed mesh: self-healing
// connections (when selfHeal), the trainer, and the heal supervisor.
func soakUp(t *testing.T, id int, reg *obs.Registry, tp *netx.TCP, mesh *netx.Mesh,
	addrs []string, faults fault.Config, selfHeal bool) *soakNode {
	t.Helper()
	if selfHeal {
		peers := make(map[int]string)
		for j, a := range addrs {
			if j != id {
				peers[j] = a
			}
		}
		if err := mesh.EnableSelfHeal(netx.SelfHealConfig{
			Transport: tp, Peers: peers, Events: reg.Events(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	trainer, err := core.NewTrainer(core.TrainerConfig{
		Task: workload.TranslationTask(), Pipelines: len(addrs), Micro: 2, StageCount: 2,
		Seed: 7, ClipNorm: 5, Obs: reg, Faults: faults,
		RoundDeadline: soakRoundDeadline,
		Dist:          &core.DistConfig{ReplicaID: id, Mesh: mesh},
	})
	if err != nil {
		t.Fatal(err)
	}
	node := &soakNode{id: id, reg: reg, tp: tp, mesh: mesh, trainer: trainer}
	if selfHeal {
		node.sup = New(trainer.Averager(), reg.Events(), Config{
			Self: id, Interval: 10 * time.Millisecond,
			MinDeadline: 20 * time.Millisecond, MaxDeadline: 300 * time.Millisecond,
			Deadline: soakRoundDeadline, Registry: reg,
		})
		node.sup.Start()
	}
	return node
}

func (n *soakNode) steps(ctx context.Context, count int) error {
	for i := 0; i < count; i++ {
		if _, err := n.trainer.StepContext(ctx); err != nil {
			return fmt.Errorf("replica %d round %d: %w", n.id, n.trainer.Round(), err)
		}
	}
	return nil
}

// soakBaseline measures the fault-free round rate of a fresh job.
func soakBaseline(t *testing.T, topo netx.Topology, rounds int) float64 {
	t.Helper()
	tps, lns, addrs := soakBind(t, 2)
	meshes := soakForm(t, topo, tps, lns, addrs)
	nodes := make([]*soakNode, 2)
	for p := 0; p < 2; p++ {
		nodes[p] = soakUp(t, p, obs.NewRegistry(), tps[p], meshes[p], addrs, fault.Config{}, false)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	elapsed := make([]time.Duration, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if errs[p] = nodes[p].steps(ctx, 5); errs[p] != nil { // warmup
				return
			}
			start := time.Now()
			errs[p] = nodes[p].steps(ctx, rounds)
			elapsed[p] = time.Since(start)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
	}
	for _, n := range nodes {
		n.trainer.Close()
	}
	return float64(rounds) / elapsed[0].Seconds()
}

// runChaosRecovery kills replica 1 hard mid-run, restarts it on the
// same address, rejoins it, and returns the post-recovery round rate
// measured over measured rounds (0 when measured == 0).
func runChaosRecovery(t *testing.T, topo netx.Topology, faults fault.Config, preCrash, sync, measured int) float64 {
	t.Helper()
	tps, lns, addrs := soakBind(t, 2)
	meshes := soakForm(t, topo, tps, lns, addrs)
	n0 := soakUp(t, 0, obs.NewRegistry(), tps[0], meshes[0], addrs, faults, true)
	n1 := soakUp(t, 1, obs.NewRegistry(), tps[1], meshes[1], addrs, faults, true)
	defer n0.sup.Stop()
	defer n0.trainer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// The survivor trains continuously, whatever happens to its peer.
	stop := make(chan struct{})
	survErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				survErr <- nil
				return
			default:
			}
			if _, err := n0.trainer.StepContext(ctx); err != nil {
				survErr <- err
				return
			}
		}
	}()

	// Phase 1: healthy job.
	if err := n1.steps(ctx, preCrash); err != nil {
		t.Fatal(err)
	}

	// Phase 2: replica 1 dies hard — connections reset, listener gone,
	// all in-memory state (reference copy, round counter) lost. The
	// trainer is abandoned the way a dead process's heap is.
	n1.sup.Stop()
	n1.mesh.Close()

	// The survivor's supervisor must take the dead replica out of the
	// averaging set so rounds stop waiting for it.
	waitFor(t, "survivor detached the dead replica", func() bool {
		return n0.trainer.Averager().LiveReplicas() == 1
	})

	// Phase 3: replica 1 restarts from nothing on the same address. The
	// survivor's reconnector re-dials it; its own dial is admitted by
	// the survivor's reconnect accept loop as a fresh session (epoch 0).
	tp1 := netx.NewTCP(obs.NewRegistry())
	var ln1 netx.Listener
	waitFor(t, "rebinding the crashed replica's address", func() bool {
		var err error
		ln1, err = tp1.Listen(addrs[1])
		return err == nil
	})
	fctx, fcancel := context.WithTimeout(ctx, time.Minute)
	mesh1, err := netx.FormTopologyOn(fctx, tp1, ln1, topo, 1, map[int]string{0: addrs[0]})
	fcancel()
	if err != nil {
		t.Fatalf("re-forming mesh after restart: %v", err)
	}
	n1b := soakUp(t, 1, obs.NewRegistry(), tp1, mesh1, addrs, faults, true)
	defer n1b.sup.Stop()
	defer n1b.trainer.Close()
	join, err := n1b.trainer.RejoinMesh(ctx)
	if err != nil {
		t.Fatalf("rejoin after restart: %v", err)
	}
	if join <= 0 {
		t.Fatalf("rejoined at round %d, want past the pre-crash progress", join)
	}
	waitFor(t, "survivor re-admitted the replica", func() bool {
		return n0.trainer.Averager().LiveReplicas() == 2
	})

	// Phase 4: recovered steady state, measured after a sync window.
	if err := n1b.steps(ctx, sync); err != nil {
		t.Fatal(err)
	}
	var rate float64
	if measured > 0 {
		start := time.Now()
		if err := n1b.steps(ctx, measured); err != nil {
			t.Fatal(err)
		}
		rate = float64(measured) / time.Since(start).Seconds()
	}
	close(stop)
	if err := <-survErr; err != nil {
		t.Fatalf("survivor: %v", err)
	}
	return rate
}

// TestSelfHealRejoinAfterHardRestart is the fast always-on slice of the
// chaos soak: kill, restart, automatic rejoin, and recovered progress —
// without the throughput gate.
func TestSelfHealRejoinAfterHardRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second TCP integration test")
	}
	runChaosRecovery(t, nil, fault.Config{}, 5, 5, 0)
}

// soakGate runs the full recovery gate on one averaging topology: under
// seeded drops and stragglers, a hard kill + restart must recover to
// >=90% of the job's fault-free throughput.
func soakGate(t *testing.T, topo netx.Topology) {
	t.Helper()
	base := soakBaseline(t, topo, 40)
	chaos := fault.Config{
		Seed:          13,
		MsgDropProb:   0.02,
		StragglerProb: 0.01, StragglerDelay: time.Millisecond,
	}
	rate := runChaosRecovery(t, topo, chaos, 10, 10, 40)
	t.Logf("fault-free %.1f rounds/s, recovered %.1f rounds/s (%.0f%%)", base, rate, 100*rate/base)
	if rate < 0.9*base {
		t.Fatalf("recovered throughput %.1f rounds/s is below 90%% of the fault-free %.1f rounds/s", rate, base)
	}
}

// TestChaosSoakRecovery is the full recovery gate (make faults-soak) on
// the default full mesh.
func TestChaosSoakRecovery(t *testing.T) {
	if os.Getenv("AVGPIPE_SOAK") == "" {
		t.Skip("chaos soak: set AVGPIPE_SOAK=1 (or run `make faults-soak`)")
	}
	soakGate(t, nil)
}

// TestChaosSoakRecoveryRing runs the same gate on the ring fabric: the
// restarted replica re-forms with FormTopology, so every new session —
// the survivor's re-dial and the restart's fresh dial alike — must
// re-negotiate the ring's group-hello fingerprint before re-admission.
func TestChaosSoakRecoveryRing(t *testing.T) {
	if os.Getenv("AVGPIPE_SOAK") == "" {
		t.Skip("chaos soak: set AVGPIPE_SOAK=1 (or run `make faults-soak`)")
	}
	soakGate(t, netx.Ring{})
}
