package net

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"avgpipe/internal/obs"
)

// DialFunc establishes one fresh connection for a reconnect session:
// dial the peer and run whatever handshake the session needs (the mesh
// dial re-sends the hello carrying the new epoch so the acceptor can
// re-run its geometry check). epoch is the session the connection will
// serve.
type DialFunc func(ctx context.Context, epoch uint32) (Conn, error)

// ReconnConfig tunes one self-healing connection.
type ReconnConfig struct {
	// Peer is the remote replica id, for event attribution.
	Peer int
	// MaxAttempts bounds the redials of one outage; 0 retries until the
	// Reconn is closed. When the budget is exhausted the connection goes
	// permanently dead: Sends report the frames dropped, Recv reports
	// ErrClosed.
	MaxAttempts int
	// Backoff builds the redial pacing for each outage (nil = transport
	// defaults: exponential from 1ms to 500ms with 20% jitter).
	Backoff func() *Backoff
	// Events receives conn-broken / reconnect-attempt / reconnect-success
	// health events (nil = no events).
	Events *obs.EventLog
}

// Reconn is a self-healing Conn: when the underlying connection breaks
// — a poisoned TCP stream, a peer reset, a closed pipe — it re-dials in
// the background with exponential backoff + jitter and swaps in the new
// connection under a bumped session epoch, so a transient network fault
// no longer permanently poisons the peer link.
//
// Send semantics during an outage are elastic-averaging semantics:
// frames are reported dropped (ErrDropped), never queued, because a
// stale averaging update is worthless by the time a long outage heals —
// the round deadline closes rounds over the updates that did arrive.
// The frame whose Send detected the break is likewise dropped, as are
// any frames the dead connection had buffered (in-flight frame loss is
// part of the contract; see the reconnect conformance cases). Recv
// blocks across outages and resumes on the replacement connection.
type Reconn struct {
	dial DialFunc
	cfg  ReconnConfig

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	conn   Conn
	epoch  uint32
	up     bool
	dead   bool // redial budget exhausted: permanently down
	closed bool
	wake   chan struct{} // closed-and-replaced on every state change
}

// NewReconn wraps an established connection (session epoch 0) into a
// self-healing one. Closing the Reconn closes the current connection
// and stops any in-flight reconnect.
func NewReconn(initial Conn, dial DialFunc, cfg ReconnConfig) *Reconn {
	ctx, cancel := context.WithCancel(context.Background())
	return &Reconn{
		dial: dial, cfg: cfg, ctx: ctx, cancel: cancel,
		conn: initial, up: true, wake: make(chan struct{}),
	}
}

// wakeLocked signals every state-change waiter. Caller holds r.mu.
func (r *Reconn) wakeLocked() {
	close(r.wake)
	r.wake = make(chan struct{})
}

// Epoch reports the current session epoch: 0 for the initial
// connection, bumped once per successful reconnect.
func (r *Reconn) Epoch() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Up reports whether the connection is currently healthy (not in an
// outage, not dead, not closed).
func (r *Reconn) Up() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.up && !r.closed
}

// Dead reports whether the redial budget was exhausted and the
// connection permanently abandoned.
func (r *Reconn) Dead() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dead
}

func (r *Reconn) Send(ctx context.Context, f *Frame) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if !r.up {
		// Outage (or permanently dead): the frame is lost in flight, not
		// an error to retry — the round deadline absorbs it.
		r.mu.Unlock()
		return ErrDropped
	}
	c, ep := r.conn, r.epoch
	r.mu.Unlock()
	err := c.Send(ctx, f)
	if err == nil || errors.Is(err, ErrDropped) || ctx.Err() != nil {
		return err
	}
	r.broken(ep, err)
	return ErrDropped
}

func (r *Reconn) Recv(ctx context.Context) (*Frame, error) {
	for {
		r.mu.Lock()
		if r.closed || r.dead {
			r.mu.Unlock()
			return nil, ErrClosed
		}
		if !r.up {
			wake := r.wake
			r.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-wake:
			}
			continue
		}
		c, ep := r.conn, r.epoch
		r.mu.Unlock()
		f, err := c.Recv(ctx)
		if err == nil {
			return f, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		r.broken(ep, err)
		// Loop: park until the background redial swaps in a replacement.
	}
}

// broken transitions session ep into an outage and starts the single
// background redial for it. A second detection of the same break (a
// concurrent Send and Recv both erroring) is a no-op.
func (r *Reconn) broken(ep uint32, cause error) {
	r.mu.Lock()
	if r.closed || r.dead || !r.up || r.epoch != ep {
		r.mu.Unlock()
		return
	}
	r.up = false
	c := r.conn
	r.wakeLocked()
	r.mu.Unlock()
	c.Close() // unblock anything still parked on the dead connection
	r.cfg.Events.Emit(obs.Event{Type: obs.EventConnBroken, Replica: r.cfg.Peer, Round: -1,
		Value: float64(ep), Detail: cause.Error()})
	go r.reconnectLoop(ep + 1)
}

// reconnectLoop redials until the peer answers, the budget runs out, or
// the Reconn closes, then installs the replacement connection under the
// new epoch.
func (r *Reconn) reconnectLoop(epoch uint32) {
	backoff := r.newBackoff()
	for attempt := 1; ; attempt++ {
		if r.cfg.MaxAttempts > 0 && attempt > r.cfg.MaxAttempts {
			r.mu.Lock()
			if !r.closed {
				r.dead = true
				r.wakeLocked()
			}
			r.mu.Unlock()
			r.cfg.Events.Emit(obs.Event{Type: obs.EventReplicaDisconnect, Replica: r.cfg.Peer,
				Round: -1, Value: float64(r.cfg.MaxAttempts),
				Detail: fmt.Sprintf("gave up after %d reconnect attempts", r.cfg.MaxAttempts)})
			return
		}
		if err := backoff.Sleep(r.ctx); err != nil {
			return // Reconn closed while pacing
		}
		r.cfg.Events.Emit(obs.Event{Type: obs.EventReconnectAttempt, Replica: r.cfg.Peer,
			Round: -1, Value: float64(attempt)})
		c, err := r.dial(r.ctx, epoch)
		if err != nil {
			if r.ctx.Err() != nil {
				return
			}
			continue
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			c.Close()
			return
		}
		r.conn, r.epoch, r.up = c, epoch, true
		r.wakeLocked()
		r.mu.Unlock()
		r.cfg.Events.Emit(obs.Event{Type: obs.EventReconnectSuccess, Replica: r.cfg.Peer,
			Round: -1, Value: float64(epoch),
			Detail: fmt.Sprintf("session epoch %d after %d attempts", epoch, attempt)})
		return
	}
}

func (r *Reconn) newBackoff() *Backoff {
	if r.cfg.Backoff != nil {
		return r.cfg.Backoff()
	}
	return &Backoff{}
}

// Close tears the self-healing connection down for good: the current
// connection closes, any background redial stops, and every blocked
// call unblocks.
func (r *Reconn) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	var c Conn
	if r.up { // during an outage the dead conn was already closed by broken
		c = r.conn
	}
	r.wakeLocked()
	r.mu.Unlock()
	r.cancel()
	if c != nil {
		return c.Close()
	}
	return nil
}

func (r *Reconn) LocalAddr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return ""
	}
	return r.conn.LocalAddr()
}

func (r *Reconn) RemoteAddr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return ""
	}
	return r.conn.RemoteAddr()
}
