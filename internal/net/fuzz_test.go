package net

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzDecodeFrame drives DecodeFrameBytes with arbitrary bytes. Two
// properties gate the wire codec:
//
//  1. Decode never panics — a peer (or an attacker on the training
//     network) cannot crash a replica with a malformed frame; every
//     rejection is an error.
//  2. The encoding is canonical — any bytes that decode re-encode to
//     exactly the consumed prefix, so frames can be compared,
//     deduplicated, and checksummed by their encoding.
//
// The checked-in corpus under testdata/fuzz/FuzzDecodeFrame seeds every
// frame type plus truncation and corruption shapes; `make fuzz-smoke`
// runs a 30-second fuzz pass in CI on top of the regression corpus.
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range sampleFrames() {
		buf, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)/2])    // truncated mid-frame
		f.Add(append(buf, buf...)) // two frames back to back
		f.Add(append(buf, 0xff))   // trailing garbage
		corrupt := append([]byte{}, buf...)
		corrupt[len(corrupt)-1] ^= 0x40 // flipped tensor bit
		f.Add(corrupt)
	}
	f.Add([]byte{})
	f.Add([]byte("AVPW"))
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrameBytes(b) // must not panic
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(b))
		}
		again, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if !bytes.Equal(again, b[:n]) {
			t.Fatalf("encoding not canonical:\n consumed %x\n re-encoded %x", b[:n], again)
		}
		// Blob payloads with structured inner encodings get the same
		// no-panic + canonical treatment at their own codec layer: a
		// malformed compressed-delta or group-hello blob must be an
		// error, never a panic, and whatever decodes must re-encode to
		// the identical bytes.
		if fr.Type == FrameGroupHello {
			if gh, err := ParseGroupHello(fr.Blob); err == nil {
				re, err := AppendGroupHello(nil, gh)
				if err != nil || !bytes.Equal(re, fr.Blob) {
					t.Fatalf("group hello not canonical: %x (err %v)", fr.Blob, err)
				}
			}
		} else if _, ok := UpdateCodec(fr.Type); ok {
			if pd, err := DecodePackedDeltas(fr.Blob); err == nil {
				re, err := AppendPackedDeltas(nil, pd)
				if err != nil || !bytes.Equal(re, fr.Blob) {
					t.Fatalf("packed deltas not canonical: %x (err %v)", fr.Blob, err)
				}
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the topology-frame regression seeds
// under testdata/fuzz/FuzzDecodeFrame when AVGPIPE_WRITE_CORPUS=1: the
// valid group-hello and compressed-update frames from sampleFrames plus
// targeted corruptions (malformed k, malformed scale, bad topology id)
// that must decode to errors, not panics. Checked-in output keeps the
// CI fuzz smoke regression-testing these shapes without regeneration.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("AVGPIPE_WRITE_CORPUS") == "" {
		t.Skip("set AVGPIPE_WRITE_CORPUS=1 to regenerate topology fuzz seeds")
	}
	frame := func(f *Frame) []byte {
		buf, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	blobAt := func(f *Frame, off int, to byte) []byte {
		g := *f
		g.Blob = append([]byte(nil), f.Blob...)
		g.Blob[off] = to
		return frame(&g)
	}
	gh := &Frame{Type: FrameGroupHello, Replica: 2, Blob: mustBlob(AppendGroupHello(nil,
		GroupHello{Topology: "ring", N: 4, Codecs: AllCodecsMask()}))}
	q8 := &Frame{Type: FrameUpdateQ8, Replica: 1, Round: 3, Blob: mustPacked(CodecQ8)}
	topk := &Frame{Type: FrameUpdateTopK, Replica: 3, Round: 5, Blob: mustPacked(CodecTopK)}
	seeds := map[string][]byte{
		"seed-gh-valid":     frame(gh),
		"seed-gh-bad-topo":  blobAt(gh, 1, 9),
		"seed-gh-short":     frame(&Frame{Type: FrameGroupHello, Blob: gh.Blob[:11]}),
		"seed-q8-valid":     frame(q8),
		"seed-q8-nan-scale": blobAt(q8, 14, 0x7f), // scale high byte → NaN-ish
		"seed-q16-valid":    frame(&Frame{Type: FrameUpdateQ16, Replica: 2, Round: 4, Blob: mustPacked(CodecQ16)}),
		"seed-topk-valid":   frame(topk),
		"seed-topk-bad-k":   blobAt(topk, 11, 0xee), // k low byte → k > elems
		"seed-topk-descend": blobAt(topk, 15, 4),    // first index 4, second 4: not ascending
	}
	for name, b := range seeds {
		path := filepath.Join("testdata", "fuzz", "FuzzDecodeFrame", name)
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
