package net

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame drives DecodeFrameBytes with arbitrary bytes. Two
// properties gate the wire codec:
//
//  1. Decode never panics — a peer (or an attacker on the training
//     network) cannot crash a replica with a malformed frame; every
//     rejection is an error.
//  2. The encoding is canonical — any bytes that decode re-encode to
//     exactly the consumed prefix, so frames can be compared,
//     deduplicated, and checksummed by their encoding.
//
// The checked-in corpus under testdata/fuzz/FuzzDecodeFrame seeds every
// frame type plus truncation and corruption shapes; `make fuzz-smoke`
// runs a 30-second fuzz pass in CI on top of the regression corpus.
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range sampleFrames() {
		buf, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)/2])    // truncated mid-frame
		f.Add(append(buf, buf...)) // two frames back to back
		f.Add(append(buf, 0xff))   // trailing garbage
		corrupt := append([]byte{}, buf...)
		corrupt[len(corrupt)-1] ^= 0x40 // flipped tensor bit
		f.Add(corrupt)
	}
	f.Add([]byte{})
	f.Add([]byte("AVPW"))
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrameBytes(b) // must not panic
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(b))
		}
		again, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if !bytes.Equal(again, b[:n]) {
			t.Fatalf("encoding not canonical:\n consumed %x\n re-encoded %x", b[:n], again)
		}
	})
}
