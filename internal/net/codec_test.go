package net

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"avgpipe/internal/tensor"
)

// sampleFrames covers every frame type and the payload shapes the
// protocol produces: control frames with no tensors, updates with one
// and several tensors, non-finite and denormal float bits, and a
// zero-element tensor.
func sampleFrames() []*Frame {
	return []*Frame{
		{Type: FrameHello, Replica: 3, Meta: 4},
		{Type: FrameDetach, Replica: 1, Round: 7},
		{Type: FrameRejoin, Replica: 2, Round: 9},
		{Type: FrameUpdate, Replica: 0, Round: 42, Tensors: []*tensor.Tensor{
			tensor.FromSlice([]float32{1, -2.5, 3e-40, float32(math.Inf(1))}, 2, 2),
		}},
		{Type: FrameUpdate, Replica: 5, Round: 1, Tensors: []*tensor.Tensor{
			tensor.FromSlice([]float32{0.25}, 1),
			tensor.FromSlice(nil, 0),
			tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2),
		}},
		// Blob frames (the telemetry plane): raw payloads carried
		// verbatim, including empty and binary-looking bytes.
		{Type: FrameClockPing, Replica: 1, Blob: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Type: FrameClockPong, Replica: 2, Blob: bytes.Repeat([]byte{0xff, 0x00}, 12)},
		{Type: FrameTelemetry, Replica: 0, Blob: []byte(`{"replica":0,"families":[]}`)},
		{Type: FrameEvent, Replica: 3, Round: 11, Blob: []byte(`[{"type":"straggler_detected"}]`)},
		{Type: FrameTrace, Replica: 4},
		// Snapshot frames (the serving plane): full reference weights with
		// the tensor-count cross-check in Meta.
		{Type: FrameSnapshot, Replica: 0, Round: 150, Meta: 2, Tensors: []*tensor.Tensor{
			tensor.FromSlice([]float32{0.5, -0.5, 1.25, 2}, 2, 2),
			tensor.FromSlice([]float32{-1e-8}, 1),
		}},
		{Type: FrameSnapshot, Round: 1, Meta: 0},
		// Averaging-topology frames: the group hello and the compressed
		// updates ride the generic blob payload, but their inner
		// encodings have their own codecs — seed valid bytes so the
		// fuzz corpus reaches the blob validators.
		{Type: FrameGroupHello, Replica: 2, Blob: mustBlob(AppendGroupHello(nil,
			GroupHello{Topology: "ring", N: 4, Codecs: AllCodecsMask()}))},
		{Type: FrameUpdateQ8, Replica: 1, Round: 3, Blob: mustPacked(CodecQ8)},
		{Type: FrameUpdateQ16, Replica: 2, Round: 4, Blob: mustPacked(CodecQ16)},
		{Type: FrameUpdateTopK, Replica: 3, Round: 5, Blob: mustPacked(CodecTopK)},
	}
}

func mustBlob(b []byte, err error) []byte {
	if err != nil {
		panic(err)
	}
	return b
}

// mustPacked builds a small deterministic compressed-delta blob for the
// given codec.
func mustPacked(c Codec) []byte {
	pd := &PackedDeltas{Codec: c}
	switch c {
	case CodecQ8:
		pd.Tensors = []PackedTensor{{Shape: []int{2, 2}, Scale: 0.5, Q8: []int8{-127, 0, 1, 127}}}
	case CodecQ16:
		pd.Tensors = []PackedTensor{{Shape: []int{3}, Scale: 0.25, Q16: []int16{-32767, 0, 32767}}}
	case CodecTopK:
		pd.Tensors = []PackedTensor{{Shape: []int{5}, Idx: []uint32{1, 4}, Val: []float32{2.5, -3}}}
	}
	return mustBlob(AppendPackedDeltas(nil, pd))
}

func TestCodecRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		buf, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatalf("encode %v: %v", f.Type, err)
		}
		got, n, err := DecodeFrameBytes(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", f.Type, err)
		}
		if n != len(buf) {
			t.Fatalf("decode %v consumed %d of %d bytes", f.Type, n, len(buf))
		}
		assertFramesEqual(t, f, got)
		// Canonical: re-encoding the decoded frame reproduces the bytes.
		again, err := AppendFrame(nil, got)
		if err != nil {
			t.Fatalf("re-encode %v: %v", f.Type, err)
		}
		if !bytes.Equal(buf, again) {
			t.Fatalf("re-encoding %v is not canonical:\n %x\n %x", f.Type, buf, again)
		}
	}
}

func assertFramesEqual(t *testing.T, want, got *Frame) {
	t.Helper()
	if got.Type != want.Type || got.Replica != want.Replica ||
		got.Round != want.Round || got.Meta != want.Meta {
		t.Fatalf("header mismatch: want %+v, got %+v", want, got)
	}
	if !bytes.Equal(got.Blob, want.Blob) {
		t.Fatalf("blob mismatch: want %x, got %x", want.Blob, got.Blob)
	}
	if len(got.Tensors) != len(want.Tensors) {
		t.Fatalf("tensor count: want %d, got %d", len(want.Tensors), len(got.Tensors))
	}
	for i := range want.Tensors {
		w, g := want.Tensors[i], got.Tensors[i]
		ws, gs := w.Shape(), g.Shape()
		if len(ws) != len(gs) {
			t.Fatalf("tensor %d dims: want %v, got %v", i, ws, gs)
		}
		for d := range ws {
			if ws[d] != gs[d] {
				t.Fatalf("tensor %d shape: want %v, got %v", i, ws, gs)
			}
		}
		wd, gd := w.Data(), g.Data()
		for e := range wd {
			// Bit comparison: the wire must preserve NaN payloads and
			// signed zeros, not just values.
			if math.Float32bits(wd[e]) != math.Float32bits(gd[e]) {
				t.Fatalf("tensor %d element %d: want bits %08x, got %08x",
					i, e, math.Float32bits(wd[e]), math.Float32bits(gd[e]))
			}
		}
	}
}

func TestCodecStream(t *testing.T) {
	var buf bytes.Buffer
	frames := sampleFrames()
	for _, f := range frames {
		if err := EncodeFrame(&buf, f); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range frames {
		got, err := DecodeFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		assertFramesEqual(t, want, got)
	}
	if _, err := DecodeFrame(r); err != io.EOF {
		t.Fatalf("at stream end: want io.EOF, got %v", err)
	}
}

func TestCodecTruncatedStream(t *testing.T) {
	full, err := AppendFrame(nil, sampleFrames()[3])
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, headerSize - 1, headerSize, headerSize + 3, len(full) - 1} {
		if _, err := DecodeFrame(bytes.NewReader(full[:cut])); err != io.ErrUnexpectedEOF {
			t.Errorf("stream cut at %d: want io.ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	good, err := AppendFrame(nil, sampleFrames()[3])
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(off int, b byte) []byte {
		c := append([]byte(nil), good...)
		c[off] = b
		return c
	}
	cases := []struct {
		name string
		buf  []byte
		want string
	}{
		{"short header", good[:10], "short frame header"},
		{"bad magic", corrupt(0, 'X'), "bad magic"},
		{"bad version", corrupt(4, 9), "wire version"},
		{"zero type", corrupt(5, 0), "unknown frame type"},
		{"high type", corrupt(5, 200), "unknown frame type"},
		{"reserved bits", corrupt(6, 1), "reserved"},
		{"trailing payload", append(corrupt(20, good[20]+4), 0, 0, 0, 0), "trailing"},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrameBytes(tc.buf); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

func TestEncodeRejectsUnencodable(t *testing.T) {
	if _, err := AppendFrame(nil, &Frame{Type: 0}); err == nil {
		t.Error("zero frame type encoded")
	}
	if _, err := AppendFrame(nil, &Frame{Type: frameTypeEnd}); err == nil {
		t.Error("out-of-range frame type encoded")
	}
	if _, err := AppendFrame(nil, &Frame{Type: FrameUpdate, Tensors: []*tensor.Tensor{nil}}); err == nil {
		t.Error("nil tensor encoded")
	}
	if _, err := AppendFrame(nil, &Frame{Type: FrameTelemetry, Tensors: []*tensor.Tensor{
		tensor.FromSlice([]float32{1}, 1),
	}}); err == nil {
		t.Error("blob frame with tensors encoded")
	}
	if _, err := AppendFrame(nil, &Frame{Type: FrameUpdate, Blob: []byte{1}}); err == nil {
		t.Error("tensor frame with a blob encoded")
	}
}
