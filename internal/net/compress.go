package net

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"avgpipe/internal/tensor"
)

// Delta compression for the averaging wire: update frames may carry
// their tensors int8/int16 linear-quantized or top-k sparsified instead
// of as raw f32, cutting bytes per round ~4x (q8), ~2x (q16), or by the
// sparsity factor (top-k). Each compressor keeps an error-feedback
// residual per sender: whatever one round's encoding dropped is added
// back into the next round's delta before encoding, so the emitted
// updates sum to the exact delta stream over time and convergence is
// preserved (the deep-gradient-compression/PowerSGD recipe).
//
// Compressed payloads ride in blob frames (FrameUpdateQ8/Q16/TopK), so
// the frame codec stays trivially canonical; the PackedDeltas layout
// below is itself canonical and fully validated — malformed counts,
// shapes, indices, or scales are errors, never panics (the fuzz target
// covers this layer too).

// Codec selects the update-delta wire encoding.
type Codec uint8

const (
	// CodecNone sends exact f32 deltas (FrameUpdate) — the default.
	CodecNone Codec = iota
	// CodecQ8 linearly quantizes each tensor to int8 with one f32 scale
	// per tensor (scale = maxabs/127): ~4x fewer bytes.
	CodecQ8
	// CodecQ16 linearly quantizes to int16 (scale = maxabs/32767): ~2x
	// fewer bytes at negligible precision loss.
	CodecQ16
	// CodecTopK keeps only the k largest-magnitude coefficients per
	// tensor as (index, value) pairs: bytes scale with the kept
	// fraction.
	CodecTopK
)

// codecEnd bounds the enum for validation.
const codecEnd = CodecTopK + 1

// String names the codec for flags, logs, and test failures.
func (c Codec) String() string {
	switch c {
	case CodecNone:
		return "none"
	case CodecQ8:
		return "q8"
	case CodecQ16:
		return "q16"
	case CodecTopK:
		return "topk"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// CodecByName resolves a -compress flag value.
func CodecByName(name string) (Codec, error) {
	switch name {
	case "", "none", "exact":
		return CodecNone, nil
	case "q8", "int8":
		return CodecQ8, nil
	case "q16", "int16":
		return CodecQ16, nil
	case "topk", "top-k":
		return CodecTopK, nil
	default:
		return CodecNone, fmt.Errorf("net: unknown compression codec %q (want none, q8, q16, or topk)", name)
	}
}

// UpdateFrameType returns the frame type that carries updates encoded
// with c.
func (c Codec) UpdateFrameType() FrameType {
	switch c {
	case CodecQ8:
		return FrameUpdateQ8
	case CodecQ16:
		return FrameUpdateQ16
	case CodecTopK:
		return FrameUpdateTopK
	default:
		return FrameUpdate
	}
}

// UpdateCodec reports the codec a frame type carries updates in, and
// whether t is an update frame at all (exact or compressed).
func UpdateCodec(t FrameType) (Codec, bool) {
	switch t {
	case FrameUpdate:
		return CodecNone, true
	case FrameUpdateQ8:
		return CodecQ8, true
	case FrameUpdateQ16:
		return CodecQ16, true
	case FrameUpdateTopK:
		return CodecTopK, true
	default:
		return CodecNone, false
	}
}

// CodecMask is the supported-codec bitmask advertised in the group
// hello (bit 1<<c for each compressed codec).
func CodecMask(cs ...Codec) uint32 {
	var m uint32
	for _, c := range cs {
		m |= 1 << c
	}
	return m
}

// AllCodecsMask advertises every codec this build understands.
func AllCodecsMask() uint32 { return CodecMask(CodecQ8, CodecQ16, CodecTopK) }

// PackedDeltas is the decoded form of a compressed-update blob: one
// PackedTensor per parameter tensor, all under one codec.
type PackedDeltas struct {
	Codec   Codec
	Tensors []PackedTensor
}

// PackedTensor is one tensor's compressed coefficients. Which fields
// are live depends on the codec: Scale+Q8 for CodecQ8, Scale+Q16 for
// CodecQ16, Idx+Val for CodecTopK.
type PackedTensor struct {
	Shape []int
	Scale float32
	Q8    []int8
	Q16   []int16
	Idx   []uint32 // strictly ascending element indices
	Val   []float32
}

// packedVersion versions the PackedDeltas blob layout.
const packedVersion = 1

// AppendPackedDeltas appends pd's canonical blob encoding to dst:
//
//	u8 version (1), u8 codec, u32 tensor count; per tensor u8 ndims,
//	ndims×u32 dims, then per codec — q8: f32 scale, elems×i8;
//	q16: f32 scale, elems×i16; topk: u32 k, k×u32 ascending indices,
//	k×f32 values (IEEE bits).
func AppendPackedDeltas(dst []byte, pd *PackedDeltas) ([]byte, error) {
	if pd.Codec < CodecQ8 || pd.Codec >= codecEnd {
		return dst, fmt.Errorf("net: cannot pack deltas with codec %v", pd.Codec)
	}
	dst = append(dst, packedVersion, byte(pd.Codec))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pd.Tensors)))
	for i := range pd.Tensors {
		pt := &pd.Tensors[i]
		if len(pt.Shape) > maxDims {
			return dst, fmt.Errorf("net: packed tensor %d has %d dims (max %d)", i, len(pt.Shape), maxDims)
		}
		elems := 1
		dst = append(dst, byte(len(pt.Shape)))
		for _, d := range pt.Shape {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
			elems *= d
		}
		switch pd.Codec {
		case CodecQ8:
			if len(pt.Q8) != elems {
				return dst, fmt.Errorf("net: packed tensor %d has %d q8 values for %d elements", i, len(pt.Q8), elems)
			}
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(pt.Scale))
			for _, q := range pt.Q8 {
				dst = append(dst, byte(q))
			}
		case CodecQ16:
			if len(pt.Q16) != elems {
				return dst, fmt.Errorf("net: packed tensor %d has %d q16 values for %d elements", i, len(pt.Q16), elems)
			}
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(pt.Scale))
			for _, q := range pt.Q16 {
				dst = binary.LittleEndian.AppendUint16(dst, uint16(q))
			}
		case CodecTopK:
			if len(pt.Idx) != len(pt.Val) {
				return dst, fmt.Errorf("net: packed tensor %d has %d indices for %d values", i, len(pt.Idx), len(pt.Val))
			}
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pt.Idx)))
			for _, ix := range pt.Idx {
				dst = binary.LittleEndian.AppendUint32(dst, ix)
			}
			for _, v := range pt.Val {
				dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
			}
		}
	}
	return dst, nil
}

// DecodePackedDeltas parses a compressed-update blob. It never panics:
// short buffers, unknown versions or codecs, dimension overflows,
// element-count mismatches, k exceeding the tensor size, out-of-range
// or non-ascending indices, non-finite or negative scales, and trailing
// bytes are all errors. Like the frame codec, the encoding is
// canonical: re-encoding the decoded value reproduces the bytes.
func DecodePackedDeltas(b []byte) (*PackedDeltas, error) {
	if len(b) < 6 {
		return nil, fmt.Errorf("net: packed deltas too short: %d bytes", len(b))
	}
	if b[0] != packedVersion {
		return nil, fmt.Errorf("net: unknown packed-deltas version %d", b[0])
	}
	codec := Codec(b[1])
	if codec < CodecQ8 || codec >= codecEnd {
		return nil, fmt.Errorf("net: unknown packed-deltas codec %d", b[1])
	}
	n := int(binary.LittleEndian.Uint32(b[2:6]))
	if n > maxTensors {
		return nil, fmt.Errorf("net: %d packed tensors exceeds max %d", n, maxTensors)
	}
	p := b[6:]
	pd := &PackedDeltas{Codec: codec, Tensors: make([]PackedTensor, 0, n)}
	for i := 0; i < n; i++ {
		if len(p) < 1 {
			return nil, fmt.Errorf("net: packed tensor %d: missing dim count", i)
		}
		ndims := int(p[0])
		p = p[1:]
		if ndims > maxDims {
			return nil, fmt.Errorf("net: packed tensor %d: %d dims exceeds max %d", i, ndims, maxDims)
		}
		if len(p) < 4*ndims {
			return nil, fmt.Errorf("net: packed tensor %d: truncated dims", i)
		}
		dims := make([]int, ndims)
		elems := 1
		for d := 0; d < ndims; d++ {
			dims[d] = int(binary.LittleEndian.Uint32(p[4*d : 4*d+4]))
			if dims[d] > maxFramePayload {
				return nil, fmt.Errorf("net: packed tensor %d: dim %d out of range", i, dims[d])
			}
			elems *= dims[d]
			if elems > maxFramePayload {
				return nil, fmt.Errorf("net: packed tensor %d: element count overflows frame", i)
			}
		}
		p = p[4*ndims:]
		pt := PackedTensor{Shape: dims}
		switch codec {
		case CodecQ8, CodecQ16:
			if len(p) < 4 {
				return nil, fmt.Errorf("net: packed tensor %d: missing scale", i)
			}
			pt.Scale = math.Float32frombits(binary.LittleEndian.Uint32(p[0:4]))
			p = p[4:]
			if math.IsNaN(float64(pt.Scale)) || math.IsInf(float64(pt.Scale), 0) || pt.Scale < 0 {
				return nil, fmt.Errorf("net: packed tensor %d: malformed scale %v", i, pt.Scale)
			}
			width := 1
			if codec == CodecQ16 {
				width = 2
			}
			if len(p) < width*elems {
				return nil, fmt.Errorf("net: packed tensor %d: truncated quantized data (%d of %d bytes)",
					i, len(p), width*elems)
			}
			if codec == CodecQ8 {
				pt.Q8 = make([]int8, elems)
				for e := range pt.Q8 {
					pt.Q8[e] = int8(p[e])
				}
			} else {
				pt.Q16 = make([]int16, elems)
				for e := range pt.Q16 {
					pt.Q16[e] = int16(binary.LittleEndian.Uint16(p[2*e : 2*e+2]))
				}
			}
			p = p[width*elems:]
		case CodecTopK:
			if len(p) < 4 {
				return nil, fmt.Errorf("net: packed tensor %d: missing k", i)
			}
			k := int(binary.LittleEndian.Uint32(p[0:4]))
			p = p[4:]
			if k > elems {
				return nil, fmt.Errorf("net: packed tensor %d: malformed k %d exceeds %d elements", i, k, elems)
			}
			if len(p) < 8*k {
				return nil, fmt.Errorf("net: packed tensor %d: truncated top-k data", i)
			}
			pt.Idx = make([]uint32, k)
			for e := 0; e < k; e++ {
				pt.Idx[e] = binary.LittleEndian.Uint32(p[4*e : 4*e+4])
				if int(pt.Idx[e]) >= elems {
					return nil, fmt.Errorf("net: packed tensor %d: index %d out of range [0, %d)", i, pt.Idx[e], elems)
				}
				if e > 0 && pt.Idx[e] <= pt.Idx[e-1] {
					return nil, fmt.Errorf("net: packed tensor %d: indices not strictly ascending", i)
				}
			}
			p = p[4*k:]
			pt.Val = make([]float32, k)
			for e := 0; e < k; e++ {
				pt.Val[e] = math.Float32frombits(binary.LittleEndian.Uint32(p[4*e : 4*e+4]))
			}
			p = p[4*k:]
		}
		pd.Tensors = append(pd.Tensors, pt)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("net: %d trailing packed-delta bytes", len(p))
	}
	return pd, nil
}

// Dequantize reconstructs the (lossy) delta tensors a packed update
// represents — the exact values every reference copy must apply so they
// stay bit-identical.
func (pd *PackedDeltas) Dequantize() []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(pd.Tensors))
	for i := range pd.Tensors {
		pt := &pd.Tensors[i]
		t := tensor.New(pt.Shape...)
		data := t.Data()
		switch pd.Codec {
		case CodecQ8:
			for e, q := range pt.Q8 {
				data[e] = pt.Scale * float32(q)
			}
		case CodecQ16:
			for e, q := range pt.Q16 {
				data[e] = pt.Scale * float32(q)
			}
		case CodecTopK:
			for e, ix := range pt.Idx {
				data[ix] = pt.Val[e]
			}
		}
		out[i] = t
	}
	return out
}

// UnpackUpdateFrame decodes a compressed update frame's deltas. The
// blob's embedded codec must agree with the frame type — a mismatch is
// a framing error, not a silent reinterpretation.
func UnpackUpdateFrame(f *Frame) ([]*tensor.Tensor, error) {
	c, ok := UpdateCodec(f.Type)
	if !ok || c == CodecNone {
		return nil, fmt.Errorf("net: frame type %v is not a compressed update", f.Type)
	}
	pd, err := DecodePackedDeltas(f.Blob)
	if err != nil {
		return nil, err
	}
	if pd.Codec != c {
		return nil, fmt.Errorf("net: %v frame carries a %v-packed blob", f.Type, pd.Codec)
	}
	return pd.Dequantize(), nil
}

// Compressor turns one sender's exact delta stream into compressed
// updates with error feedback: each Pack adds the residual left over
// from previous rounds to the incoming delta, encodes the sum, and
// keeps what the encoding dropped as the next round's residual. One
// Compressor per submitting pipeline — residuals are sender state.
type Compressor struct {
	codec Codec
	frac  float64
	resid []*tensor.Tensor // lazily shaped from the first Pack
}

// DefaultTopKFraction keeps 5% of coefficients when CodecTopK is
// selected without an explicit fraction — dense enough to converge on
// the seed workloads, sparse enough for ~10x fewer bytes.
const DefaultTopKFraction = 0.05

// NewCompressor builds a compressor for c. topkFrac is the kept
// fraction for CodecTopK in (0, 1] (0 = DefaultTopKFraction); other
// codecs ignore it.
func NewCompressor(c Codec, topkFrac float64) (*Compressor, error) {
	if c < CodecQ8 || c >= codecEnd {
		return nil, fmt.Errorf("net: cannot compress with codec %v", c)
	}
	if topkFrac == 0 {
		topkFrac = DefaultTopKFraction
	}
	if topkFrac < 0 || topkFrac > 1 {
		return nil, fmt.Errorf("net: top-k fraction %v outside (0, 1]", topkFrac)
	}
	return &Compressor{codec: c, frac: topkFrac}, nil
}

// Pack encodes one round's deltas (with error feedback) into a
// compressed-update blob. The deltas are not modified.
func (c *Compressor) Pack(deltas []*tensor.Tensor) ([]byte, error) {
	if c.resid == nil {
		c.resid = make([]*tensor.Tensor, len(deltas))
		for i, d := range deltas {
			c.resid[i] = tensor.New(d.Shape()...)
		}
	}
	if len(deltas) != len(c.resid) {
		return nil, fmt.Errorf("net: compressor saw %d tensors, expected %d", len(deltas), len(c.resid))
	}
	pd := &PackedDeltas{Codec: c.codec, Tensors: make([]PackedTensor, len(deltas))}
	for i, d := range deltas {
		// acc = delta + residual: what this round *should* move.
		acc := c.resid[i].Data()
		dd := d.Data()
		if len(acc) != len(dd) {
			return nil, fmt.Errorf("net: compressor tensor %d has %d elements, expected %d", i, len(dd), len(acc))
		}
		for e := range acc {
			acc[e] += dd[e]
		}
		pt := packTensor(c.codec, c.frac, d.Shape(), acc)
		// residual = acc − dequantize(packed): what the encoding dropped.
		subtractPacked(acc, c.codec, &pt)
		pd.Tensors[i] = pt
	}
	return AppendPackedDeltas(nil, pd)
}

// packTensor encodes one tensor's accumulated delta under the codec.
func packTensor(codec Codec, frac float64, shape []int, acc []float32) PackedTensor {
	pt := PackedTensor{Shape: append([]int(nil), shape...)}
	switch codec {
	case CodecQ8, CodecQ16:
		var maxAbs float32
		for _, v := range acc {
			if a := abs32(v); a > maxAbs {
				maxAbs = a
			}
		}
		levels := float32(127)
		if codec == CodecQ16 {
			levels = 32767
		}
		scale := maxAbs / levels
		pt.Scale = scale
		quant := func(v float32) int32 {
			if scale == 0 {
				return 0
			}
			q := int32(math.RoundToEven(float64(v / scale)))
			if q > int32(levels) {
				q = int32(levels)
			} else if q < -int32(levels) {
				q = -int32(levels)
			}
			return q
		}
		if codec == CodecQ8 {
			pt.Q8 = make([]int8, len(acc))
			for e, v := range acc {
				pt.Q8[e] = int8(quant(v))
			}
		} else {
			pt.Q16 = make([]int16, len(acc))
			for e, v := range acc {
				pt.Q16[e] = int16(quant(v))
			}
		}
	case CodecTopK:
		k := int(math.Round(frac * float64(len(acc))))
		if k < 1 && len(acc) > 0 {
			k = 1
		}
		if k > len(acc) {
			k = len(acc)
		}
		// Select the k largest magnitudes (ties to the lower index, so
		// the selection is deterministic), then emit in index order.
		order := make([]int, len(acc))
		for e := range order {
			order[e] = e
		}
		sort.Slice(order, func(a, b int) bool {
			ma, mb := abs32(acc[order[a]]), abs32(acc[order[b]])
			if ma != mb {
				return ma > mb
			}
			return order[a] < order[b]
		})
		kept := append([]int(nil), order[:k]...)
		sort.Ints(kept)
		pt.Idx = make([]uint32, k)
		pt.Val = make([]float32, k)
		for e, ix := range kept {
			pt.Idx[e] = uint32(ix)
			pt.Val[e] = acc[ix]
		}
	}
	return pt
}

// subtractPacked subtracts the dequantized encoding from acc in place,
// leaving the error-feedback residual.
func subtractPacked(acc []float32, codec Codec, pt *PackedTensor) {
	switch codec {
	case CodecQ8:
		for e, q := range pt.Q8 {
			acc[e] -= pt.Scale * float32(q)
		}
	case CodecQ16:
		for e, q := range pt.Q16 {
			acc[e] -= pt.Scale * float32(q)
		}
	case CodecTopK:
		for e, ix := range pt.Idx {
			acc[ix] -= pt.Val[e]
		}
	}
}

func abs32(v float32) float32 {
	return math.Float32frombits(math.Float32bits(v) &^ (1 << 31))
}

// GroupHello is the decoded FrameGroupHello payload: the sender's view
// of the fabric, cross-checked at handshake.
type GroupHello struct {
	// Topology is the wire name of the sender's topology.
	Topology string
	// Group is the sender's hierarchical group size (0 outside hier).
	Group int
	// N is the sender's job size.
	N int
	// Codecs is the sender's supported-compression bitmask (CodecMask).
	Codecs uint32
}

// topology wire ids for the group hello.
var topoIDs = map[string]byte{"mesh": 1, "ring": 2, "hier": 3}

// AppendGroupHello appends gh's 12-byte encoding to dst: u8 version,
// u8 topology id, u16 group size, u32 n, u32 codec mask (LE).
func AppendGroupHello(dst []byte, gh GroupHello) ([]byte, error) {
	id, ok := topoIDs[gh.Topology]
	if !ok {
		return dst, fmt.Errorf("net: group hello for unknown topology %q", gh.Topology)
	}
	if gh.Group < 0 || gh.Group > 0xffff {
		return dst, fmt.Errorf("net: group hello group size %d out of range", gh.Group)
	}
	dst = append(dst, packedVersion, id)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(gh.Group))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(gh.N))
	dst = binary.LittleEndian.AppendUint32(dst, gh.Codecs)
	return dst, nil
}

// ParseGroupHello decodes a FrameGroupHello blob; any malformed
// payload — wrong length, unknown version or topology id — is an
// error, never a panic.
func ParseGroupHello(b []byte) (GroupHello, error) {
	if len(b) != 12 {
		return GroupHello{}, fmt.Errorf("net: group hello is %d bytes, want 12", len(b))
	}
	if b[0] != packedVersion {
		return GroupHello{}, fmt.Errorf("net: unknown group-hello version %d", b[0])
	}
	var name string
	for topo, id := range topoIDs {
		if id == b[1] {
			name = topo
			break
		}
	}
	if name == "" {
		return GroupHello{}, fmt.Errorf("net: unknown group-hello topology id %d", b[1])
	}
	return GroupHello{
		Topology: name,
		Group:    int(binary.LittleEndian.Uint16(b[2:4])),
		N:        int(binary.LittleEndian.Uint32(b[4:8])),
		Codecs:   binary.LittleEndian.Uint32(b[8:12]),
	}, nil
}
