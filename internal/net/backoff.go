package net

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff paces retry loops: the delay grows exponentially from Base to
// Max, with a uniform jitter fraction subtracted so a cohort of
// replicas retrying the same dead peer does not re-dial in lockstep
// (the thundering-herd failure the averaging mesh is otherwise prone to
// after a partition heals). The zero value is usable and picks the
// package defaults; every retry loop in the runtime — SubmitContext's
// send retries, mesh formation dials, and the self-healing re-dial —
// shares this one policy type.
type Backoff struct {
	// Base is the first delay (default 1ms); Max caps the growth
	// (default 500ms); Factor is the per-attempt multiplier (default 2).
	Base   time.Duration
	Max    time.Duration
	Factor float64
	// Jitter is the fraction of each delay randomized away, in [0, 1]
	// (default 0.2): the actual sleep is uniform in
	// [(1-Jitter)·d, d]. 0 after explicit Set* fields means "no jitter"
	// only when some other field was set; use NoJitter for fully
	// deterministic pacing.
	Jitter float64
	// NoJitter disables jitter entirely, for tests that need exact
	// delays.
	NoJitter bool
	// Seed, when non-zero, makes the jitter sequence deterministic.
	Seed int64

	mu      sync.Mutex
	attempt int
	rng     *rand.Rand
}

// Backoff defaults, shared by every retry loop in the transport layer.
const (
	defaultBackoffBase   = time.Millisecond
	defaultBackoffMax    = 500 * time.Millisecond
	defaultBackoffFactor = 2.0
	defaultBackoffJitter = 0.2
)

func (b *Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return defaultBackoffBase
}

func (b *Backoff) max() time.Duration {
	if b.Max > 0 {
		return b.Max
	}
	return defaultBackoffMax
}

func (b *Backoff) factor() float64 {
	if b.Factor > 1 {
		return b.Factor
	}
	return defaultBackoffFactor
}

func (b *Backoff) jitter() float64 {
	if b.NoJitter {
		return 0
	}
	if b.Jitter > 0 {
		if b.Jitter > 1 {
			return 1
		}
		return b.Jitter
	}
	return defaultBackoffJitter
}

// Next returns the delay before the upcoming attempt and advances the
// schedule: Base·Factor^attempt clamped to Max, minus up to Jitter of
// itself. Safe for concurrent use (one shared schedule).
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := float64(b.base())
	f, maxd := b.factor(), float64(b.max())
	for i := 0; i < b.attempt && d < maxd; i++ {
		d *= f
	}
	if d > maxd {
		d = maxd
	}
	b.attempt++
	if j := b.jitter(); j > 0 {
		if b.rng == nil {
			seed := b.Seed
			if seed == 0 {
				seed = time.Now().UnixNano()
			}
			b.rng = rand.New(rand.NewSource(seed))
		}
		d -= d * j * b.rng.Float64()
	}
	return time.Duration(d)
}

// Attempt reports how many delays have been handed out since the last
// Reset — the retry count of the loop this backoff paces.
func (b *Backoff) Attempt() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// Reset rewinds the schedule to Base, for a retry loop that succeeded
// and later needs to back off again from scratch.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

// Sleep waits out the next delay, returning early with ctx.Err() when
// the context fires first — the context-aware retry pause every
// transport retry loop shares.
func (b *Backoff) Sleep(ctx context.Context) error {
	t := time.NewTimer(b.Next())
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
