package net

import (
	"context"
	"testing"
	"time"
)

func TestBackoffGrowsAndClamps(t *testing.T) {
	b := &Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond, Factor: 2, NoJitter: true}
	want := []time.Duration{1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Fatalf("attempt %d: want %v, got %v", i, w*time.Millisecond, got)
		}
	}
	if b.Attempt() != len(want) {
		t.Fatalf("want %d attempts recorded, got %d", len(want), b.Attempt())
	}
	b.Reset()
	if got := b.Next(); got != time.Millisecond {
		t.Fatalf("after reset: want %v, got %v", time.Millisecond, got)
	}
}

func TestBackoffJitterBoundedAndDeterministic(t *testing.T) {
	mk := func() *Backoff {
		return &Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0.5, Seed: 42}
	}
	a, b := mk(), mk()
	for i := 0; i < 10; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		full := float64(10 * time.Millisecond)
		for j := 0; j < i && full < float64(80*time.Millisecond); j++ {
			full *= 2
		}
		if full > float64(80*time.Millisecond) {
			full = float64(80 * time.Millisecond)
		}
		if float64(da) > full || float64(da) < full/2 {
			t.Fatalf("attempt %d: delay %v outside [%v/2, %v]", i, da, time.Duration(full), time.Duration(full))
		}
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	d := b.Next()
	if d <= 0 || d > defaultBackoffBase {
		t.Fatalf("zero-value first delay %v outside (0, %v]", d, defaultBackoffBase)
	}
	for i := 0; i < 20; i++ {
		if d := b.Next(); d > defaultBackoffMax {
			t.Fatalf("delay %v exceeds default max %v", d, defaultBackoffMax)
		}
	}
}

func TestBackoffSleepHonorsContext(t *testing.T) {
	b := &Backoff{Base: 10 * time.Second, NoJitter: true}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := b.Sleep(ctx); err != context.DeadlineExceeded {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("Sleep ignored its context: took %v", el)
	}
}
