package net

import (
	"context"
	"sync"
	"testing"
	"time"

	"avgpipe/internal/obs"
)

// TestClockFrameRoundTrip checks the ping/pong blob payloads survive
// encode/parse with their timestamps intact.
func TestClockFrameRoundTrip(t *testing.T) {
	ping := ClockPingFrame(3, 1111)
	t1, err := ParseClockPing(ping)
	if err != nil || t1 != 1111 {
		t.Fatalf("ping round trip: got (%d, %v)", t1, err)
	}
	pong := ClockPongFrame(4, 1111, 2222, 3333)
	p1, p2, p3, err := ParseClockPong(pong)
	if err != nil || p1 != 1111 || p2 != 2222 || p3 != 3333 {
		t.Fatalf("pong round trip: got (%d, %d, %d, %v)", p1, p2, p3, err)
	}
	if _, err := ParseClockPing(&Frame{Type: FrameClockPing, Blob: []byte{1, 2}}); err == nil {
		t.Error("short ping parsed")
	}
	if _, _, _, err := ParseClockPong(&Frame{Type: FrameClockPong}); err == nil {
		t.Error("empty pong parsed")
	}
}

// TestMeasureClockOffset runs a pinger and a responder over an
// in-process pipe: with both ends on one clock the measured offset must
// be bounded by the round-trip time.
func TestMeasureClockOffset(t *testing.T) {
	a, b := Pipe(4)
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		ping, err := b.Recv(ctx)
		if err != nil {
			done <- err
			return
		}
		done <- AnswerClockPing(ctx, b, 1, ping)
	}()
	offset, rtt, err := MeasureClockOffset(ctx, a, 0)
	if err != nil {
		t.Fatalf("measure: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("answer: %v", err)
	}
	if rtt <= 0 {
		t.Fatalf("non-positive rtt %v", rtt)
	}
	// Same process, same clock: the true offset is 0 and the estimator's
	// error bound is rtt/2.
	if offset < -rtt/2-time.Millisecond || offset > rtt/2+time.Millisecond {
		t.Fatalf("offset %v exceeds rtt/2 bound (rtt %v)", offset, rtt)
	}
}

// TestMeshSyncClocks forms a 3-replica loopback mesh and has every
// replica measure every peer concurrently — the distributed handshake
// the trainer runs right after FormMesh.
func TestMeshSyncClocks(t *testing.T) {
	const n = 3
	trs := make([]*TCP, n)
	lns := make([]Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		trs[i] = NewTCP(obs.NewRegistry())
		ln, err := trs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns[i] = ln
		addrs[i] = ln.Addr()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	meshes := make([]*Mesh, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		peers := make(map[int]string)
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = addrs[j]
			}
		}
		wg.Add(1)
		go func(i int, peers map[int]string) {
			defer wg.Done()
			meshes[i], errs[i] = FormMeshOn(ctx, trs[i], lns[i], i, peers)
		}(i, peers)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("replica %d mesh: %v", i, err)
		}
	}
	defer func() {
		for _, m := range meshes {
			m.Close()
		}
	}()

	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = meshes[i].SyncClocks(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("replica %d sync: %v", i, err)
		}
	}
	for i, m := range meshes {
		offs := m.ClockOffsets()
		if len(offs) != n-1 {
			t.Fatalf("replica %d: %d offsets, want %d", i, len(offs), n-1)
		}
		for peer, off := range offs {
			// One process, one clock: loopback offsets are sub-second by
			// an enormous margin unless the midpoint math is wrong.
			if off < -time.Second || off > time.Second {
				t.Fatalf("replica %d → %d offset %v is not plausible for one host", i, peer, off)
			}
			if _, ok := m.ClockOffset(peer); !ok {
				t.Fatalf("replica %d: no offset recorded for peer %d", i, peer)
			}
		}
	}
}
