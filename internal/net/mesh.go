package net

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Mesh is the coordinator-free full mesh of one replica in a
// multi-process elastic-averaging job: a dedicated send connection to
// every peer plus a dedicated receive connection from every peer. Each
// ordered replica pair (p → q) owns one connection — p dials, q
// accepts — so formation needs no leader and no tie-breaking: every
// process dials all of its peers and accepts one connection from each.
type Mesh struct {
	// Self is this process's replica id; N is the job's total replica
	// count (peers + self).
	Self int
	N    int

	sends map[int]Conn // outbound, keyed by peer id (dialed by us)
	recvs map[int]Conn // inbound, keyed by peer id (accepted by us)
	ln    Listener

	mu      sync.Mutex
	offsets map[int]time.Duration // peer clock − local clock, from SyncClocks

	// Self-healing state (EnableSelfHeal). epochs tracks the inbound
	// session epoch accepted from each peer; onInbound is told about
	// every replacement inbound connection so the averager can spawn a
	// fresh receive loop for it.
	epochs     map[int]uint32
	onInbound  func(id int, c Conn)
	healCancel context.CancelFunc

	closed sync.Once
}

// dialRetryBase paces redials while peer processes are still starting;
// the backoff doubles up to dialRetryMax.
const (
	dialRetryBase = 25 * time.Millisecond
	dialRetryMax  = 500 * time.Millisecond
)

// FormMesh assembles the full mesh for replica self: it listens on
// listenAddr, dials every peer in peers (id → address) with retry until
// ctx expires, exchanges hello frames, and verifies that every process
// agrees on the job size. Peer processes may start in any order.
func FormMesh(ctx context.Context, tr Transport, self int, listenAddr string, peers map[int]string) (*Mesh, error) {
	ln, err := tr.Listen(listenAddr)
	if err != nil {
		return nil, err
	}
	return FormMeshOn(ctx, tr, ln, self, peers)
}

// FormMeshOn is FormMesh over an already-bound listener, for callers
// that need the kernel-chosen address (":0" listens) before the peer
// map can be assembled. The mesh owns the listener: Mesh.Close closes
// it, and so does any formation failure.
func FormMeshOn(ctx context.Context, tr Transport, ln Listener, self int, peers map[int]string) (*Mesh, error) {
	n := len(peers) + 1
	if self < 0 || self >= n {
		ln.Close()
		return nil, fmt.Errorf("net: replica id %d outside [0, %d)", self, n)
	}
	for id := range peers {
		if id == self {
			ln.Close()
			return nil, fmt.Errorf("net: peer list contains self (replica %d)", self)
		}
		if id < 0 || id >= n {
			ln.Close()
			return nil, fmt.Errorf("net: peer id %d outside [0, %d) — ids must be contiguous", id, n)
		}
	}
	m := &Mesh{Self: self, N: n, sends: make(map[int]Conn), recvs: make(map[int]Conn), ln: ln}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	// Dial every peer, announcing ourselves with a hello.
	for id, addr := range peers {
		wg.Add(1)
		go func(id int, addr string) {
			defer wg.Done()
			c, err := dialRetry(ctx, tr, addr)
			if err != nil {
				fail(fmt.Errorf("net: dial replica %d at %s: %w", id, addr, err))
				return
			}
			hello := &Frame{Type: FrameHello, Replica: uint32(self), Meta: uint32(n)}
			if err := c.Send(ctx, hello); err != nil {
				c.Close()
				fail(fmt.Errorf("net: hello to replica %d: %w", id, err))
				return
			}
			mu.Lock()
			m.sends[id] = c
			mu.Unlock()
		}(id, addr)
	}

	// Accept one connection from every peer; its hello tells us who it
	// is and lets us cross-check the job geometry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(peers); i++ {
			c, err := ln.Accept(ctx)
			if err != nil {
				fail(fmt.Errorf("net: accept: %w", err))
				return
			}
			f, err := c.Recv(ctx)
			if err != nil || f.Type != FrameHello {
				c.Close()
				fail(fmt.Errorf("net: handshake: want hello, got (%v, %v)", f, err))
				return
			}
			id := int(f.Replica)
			if _, known := peers[id]; !known {
				c.Close()
				fail(fmt.Errorf("net: hello from unexpected replica %d", id))
				return
			}
			if int(f.Meta) != n {
				c.Close()
				fail(fmt.Errorf("net: replica %d believes the job has %d replicas, we have %d", id, f.Meta, n))
				return
			}
			mu.Lock()
			dup := m.recvs[id] != nil
			if !dup {
				m.recvs[id] = c
			}
			mu.Unlock()
			if dup {
				c.Close()
				fail(fmt.Errorf("net: duplicate connection from replica %d", id))
				return
			}
		}
	}()
	wg.Wait()
	if len(errs) > 0 {
		m.Close()
		return nil, errors.Join(errs...)
	}
	return m, nil
}

// dialRetry redials until the peer's listener is up or ctx expires,
// paced by the shared transport backoff.
func dialRetry(ctx context.Context, tr Transport, addr string) (Conn, error) {
	backoff := Backoff{Base: dialRetryBase, Max: dialRetryMax}
	for {
		c, err := tr.Dial(ctx, addr)
		if err == nil {
			return c, nil
		}
		if err := backoff.Sleep(ctx); err != nil {
			return nil, err
		}
	}
}

// SyncClocks estimates every peer's clock offset with one ping/pong
// round trip per ordered pair (round-trip midpoint, see clock.go). Each
// replica pings every peer on its outbound connection and answers
// exactly one ping per peer on its inbound connection, so the exchange
// is symmetric, deterministic in frame count, and leaves every
// connection quiescent. Call it after mesh formation and before the
// averager attaches (the averager's inbound loops also answer pings,
// so later re-syncs go through ResyncClock instead).
func (m *Mesh) SyncClocks(ctx context.Context) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	offsets := make(map[int]time.Duration, len(m.sends))
	for _, id := range m.Peers() {
		wg.Add(2)
		go func(id int) {
			defer wg.Done()
			off, _, err := MeasureClockOffset(ctx, m.sends[id], m.Self)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("net: clock sync with replica %d: %w", id, err))
				return
			}
			offsets[id] = off
		}(id)
		go func(id int) {
			defer wg.Done()
			in := m.Recv(id)
			f, err := in.Recv(ctx)
			if err == nil {
				err = AnswerClockPing(ctx, in, m.Self, f)
			}
			if err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("net: answering clock ping from replica %d: %w", id, err))
				mu.Unlock()
			}
		}(id)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	m.mu.Lock()
	m.offsets = offsets
	m.mu.Unlock()
	return nil
}

// ResyncClock re-measures one peer's offset over the outbound
// connection. The peer's inbound handler (the averager's inbound loop
// once attached) must be answering pings.
func (m *Mesh) ResyncClock(ctx context.Context, id int) (time.Duration, error) {
	c, ok := m.sends[id]
	if !ok {
		return 0, fmt.Errorf("net: no connection to replica %d", id)
	}
	off, _, err := MeasureClockOffset(ctx, c, m.Self)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	if m.offsets == nil {
		m.offsets = make(map[int]time.Duration)
	}
	m.offsets[id] = off
	m.mu.Unlock()
	return off, nil
}

// ClockOffset returns peer id's estimated clock minus the local clock,
// and whether SyncClocks has measured it.
func (m *Mesh) ClockOffset(id int) (time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	off, ok := m.offsets[id]
	return off, ok
}

// ClockOffsets returns a copy of the measured peer-clock offsets.
func (m *Mesh) ClockOffsets() map[int]time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]time.Duration, len(m.offsets))
	for id, off := range m.offsets {
		out[id] = off
	}
	return out
}

// Peers returns the peer ids in ascending order.
func (m *Mesh) Peers() []int {
	ids := make([]int, 0, len(m.sends))
	for id := range m.sends {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Recv returns the inbound connection from peer id (frames that peer
// sent us). Under self-healing this is the connection of the latest
// accepted session; the averager is told about replacements through
// SetInboundHandler instead of re-calling Recv.
func (m *Mesh) Recv(id int) Conn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recvs[id]
}

// SetInboundHandler installs fn to be called with every replacement
// inbound connection the self-healing accept loop installs (peer id +
// the fresh connection). The handler typically spawns a receive loop.
func (m *Mesh) SetInboundHandler(fn func(id int, c Conn)) {
	m.mu.Lock()
	m.onInbound = fn
	m.mu.Unlock()
}

// Send transmits f on the outbound connection to peer id.
func (m *Mesh) Send(ctx context.Context, id int, f *Frame) error {
	c, ok := m.sends[id]
	if !ok {
		return fmt.Errorf("net: no connection to replica %d", id)
	}
	return c.Send(ctx, f)
}

// Broadcast sends f to every peer in ascending id order, returning the
// joined errors (nil if every send succeeded). A peer whose connection
// reports the frame dropped — a faulty link eating the update, or a
// self-healing connection mid-outage — is not an error: elastic
// averaging tolerates lost updates, and the round deadline closes
// rounds over whatever arrived.
func (m *Mesh) Broadcast(ctx context.Context, f *Frame) error {
	var errs []error
	for _, id := range m.Peers() {
		if err := m.sends[id].Send(ctx, f); err != nil && !errors.Is(err, ErrDropped) {
			errs = append(errs, fmt.Errorf("net: broadcast to replica %d: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// Addr reports the listener's bound address (for port-0 listens).
func (m *Mesh) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr()
}

// Close tears down every connection and the listener. Idempotent.
func (m *Mesh) Close() {
	m.closed.Do(func() {
		m.mu.Lock()
		cancel := m.healCancel
		recvs := make([]Conn, 0, len(m.recvs))
		for _, c := range m.recvs {
			recvs = append(recvs, c)
		}
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		for _, c := range m.sends {
			c.Close()
		}
		for _, c := range recvs {
			c.Close()
		}
		if m.ln != nil {
			m.ln.Close()
		}
	})
}

// fanOut is the averager's composed submit path in a multi-process job:
// a Send delivers to the local loopback (this process's reference loop)
// and broadcasts to every peer, so one Submit reaches all N reference
// copies. Recv and Close operate on the local end only — the mesh's
// lifecycle belongs to its owner.
type fanOut struct {
	Conn
	mesh *Mesh
}

// FanOut returns a Conn that sends to local and to every mesh peer.
func FanOut(local Conn, m *Mesh) Conn {
	if m == nil {
		return local
	}
	return &fanOut{Conn: local, mesh: m}
}

func (f *fanOut) Send(ctx context.Context, fr *Frame) error {
	err := f.Conn.Send(ctx, fr)
	if berr := f.mesh.Broadcast(ctx, fr); berr != nil && err == nil {
		err = berr
	}
	return err
}
