package net

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Mesh is the coordinator-free averaging fabric of one replica in a
// multi-process elastic-averaging job. Under the default FullMesh
// topology it is the classic full mesh: a dedicated send connection to
// every peer plus a dedicated receive connection from every peer, each
// ordered replica pair (p → q) owning one connection — p dials, q
// accepts — so formation needs no leader and no tie-breaking. Under a
// sparse Topology (Ring, Hierarchical) the same machinery forms only
// the topology's O(N) connections, Broadcast sends to the topology's
// first hops, and Forward/Route relay frames onward so every replica
// is still reached.
type Mesh struct {
	// Self is this process's replica id; N is the job's total replica
	// count (peers + self).
	Self int
	N    int

	topo      Topology     // connection/flow shape (nil = FullMesh)
	acceptSet map[int]bool // peers allowed to hold an inbound connection

	sends map[int]Conn // outbound, keyed by peer id (dialed by us)
	recvs map[int]Conn // inbound, keyed by peer id (accepted by us)
	ln    Listener

	// codecMasks records each dialed-in peer's supported-compression
	// bitmask from its group hello (sparse topologies only).
	codecMasks map[int]uint32

	mu      sync.Mutex
	offsets map[int]time.Duration // peer clock − local clock, from SyncClocks

	// Self-healing state (EnableSelfHeal). epochs tracks the inbound
	// session epoch accepted from each peer; onInbound is told about
	// every replacement inbound connection so the averager can spawn a
	// fresh receive loop for it.
	epochs     map[int]uint32
	onInbound  func(id int, c Conn)
	healCancel context.CancelFunc

	closed sync.Once
}

// dialRetryBase paces redials while peer processes are still starting;
// the backoff doubles up to dialRetryMax.
const (
	dialRetryBase = 25 * time.Millisecond
	dialRetryMax  = 500 * time.Millisecond
)

// FormMesh assembles the full mesh for replica self: it listens on
// listenAddr, dials every peer in peers (id → address) with retry until
// ctx expires, exchanges hello frames, and verifies that every process
// agrees on the job size. Peer processes may start in any order.
func FormMesh(ctx context.Context, tr Transport, self int, listenAddr string, peers map[int]string) (*Mesh, error) {
	ln, err := tr.Listen(listenAddr)
	if err != nil {
		return nil, err
	}
	return FormMeshOn(ctx, tr, ln, self, peers)
}

// FormMeshOn is FormMesh over an already-bound listener, for callers
// that need the kernel-chosen address (":0" listens) before the peer
// map can be assembled. The mesh owns the listener: Mesh.Close closes
// it, and so does any formation failure.
func FormMeshOn(ctx context.Context, tr Transport, ln Listener, self int, peers map[int]string) (*Mesh, error) {
	return FormTopologyOn(ctx, tr, ln, FullMesh{}, self, peers)
}

// FormTopology is FormMesh under an explicit averaging topology: only
// the topology's connections are dialed and accepted, so a Ring or
// Hierarchical fabric forms with O(N) connections instead of O(N²).
// peers still lists every other replica — the topology decides which
// subset this replica actually talks to.
func FormTopology(ctx context.Context, tr Transport, topo Topology, self int, listenAddr string, peers map[int]string) (*Mesh, error) {
	ln, err := tr.Listen(listenAddr)
	if err != nil {
		return nil, err
	}
	return FormTopologyOn(ctx, tr, ln, topo, self, peers)
}

// FormTopologyOn is FormTopology over an already-bound listener. On
// non-mesh topologies every dialed connection sends a FrameGroupHello
// after the hello — the topology name, effective group size, job size,
// and supported-compression mask — and the acceptor cross-checks it, so
// two processes configured with different fabrics fail at handshake
// instead of stranding frames mid-round.
func FormTopologyOn(ctx context.Context, tr Transport, ln Listener, topo Topology, self int, peers map[int]string) (*Mesh, error) {
	n := len(peers) + 1
	if self < 0 || self >= n {
		ln.Close()
		return nil, fmt.Errorf("net: replica id %d outside [0, %d)", self, n)
	}
	for id := range peers {
		if id == self {
			ln.Close()
			return nil, fmt.Errorf("net: peer list contains self (replica %d)", self)
		}
		if id < 0 || id >= n {
			ln.Close()
			return nil, fmt.Errorf("net: peer id %d outside [0, %d) — ids must be contiguous", id, n)
		}
	}
	if topo == nil {
		topo = FullMesh{}
	}
	if err := topo.Validate(n); err != nil {
		ln.Close()
		return nil, err
	}
	accepts := AcceptsFrom(topo, self, n)
	m := &Mesh{
		Self: self, N: n, topo: topo,
		sends: make(map[int]Conn), recvs: make(map[int]Conn), ln: ln,
		acceptSet:  make(map[int]bool, len(accepts)),
		codecMasks: make(map[int]uint32),
	}
	for _, id := range accepts {
		m.acceptSet[id] = true
	}

	// Non-mesh fabrics exchange a group hello after the hello; the full
	// mesh stays byte-identical to the seed handshake.
	grouped := topo.Name() != "mesh"
	ghBlob, err := groupHelloBlob(topo, n)
	if err != nil {
		ln.Close()
		return nil, err
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	// Dial the topology's outbound peers, announcing ourselves with a
	// hello (and the topology fingerprint on sparse fabrics).
	for _, id := range topo.Dials(self, n) {
		addr, ok := peers[id]
		if !ok {
			fail(fmt.Errorf("net: topology %s requires a connection to replica %d, which has no address", topo.Name(), id))
			continue
		}
		wg.Add(1)
		go func(id int, addr string) {
			defer wg.Done()
			c, err := dialRetry(ctx, tr, addr)
			if err != nil {
				fail(fmt.Errorf("net: dial replica %d at %s: %w", id, addr, err))
				return
			}
			hello := &Frame{Type: FrameHello, Replica: uint32(self), Meta: uint32(n)}
			if err := c.Send(ctx, hello); err != nil {
				c.Close()
				fail(fmt.Errorf("net: hello to replica %d: %w", id, err))
				return
			}
			if grouped {
				gh := &Frame{Type: FrameGroupHello, Replica: uint32(self), Blob: ghBlob}
				if err := c.Send(ctx, gh); err != nil {
					c.Close()
					fail(fmt.Errorf("net: group hello to replica %d: %w", id, err))
					return
				}
			}
			mu.Lock()
			m.sends[id] = c
			mu.Unlock()
		}(id, addr)
	}

	// Accept one connection from every inbound peer; its hello tells us
	// who it is and lets us cross-check the job geometry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(accepts); i++ {
			c, err := ln.Accept(ctx)
			if err != nil {
				fail(fmt.Errorf("net: accept: %w", err))
				return
			}
			f, err := c.Recv(ctx)
			if err != nil || f.Type != FrameHello {
				c.Close()
				fail(fmt.Errorf("net: handshake: want hello, got (%v, %v)", f, err))
				return
			}
			id := int(f.Replica)
			if !m.acceptSet[id] {
				c.Close()
				fail(fmt.Errorf("net: hello from replica %d, but replica %d only accepts connections from replicas %v under topology %s",
					id, self, accepts, topo.Name()))
				return
			}
			if int(f.Meta) != n {
				c.Close()
				fail(fmt.Errorf("net: replica %d believes the job has %d replicas, replica %d has %d (peers %v)",
					id, f.Meta, self, n, sortedIDs(peers)))
				return
			}
			if grouped {
				gf, err := c.Recv(ctx)
				if err != nil || gf.Type != FrameGroupHello {
					c.Close()
					fail(fmt.Errorf("net: handshake with replica %d: want group hello, got (%v, %v)", id, gf, err))
					return
				}
				gh, err := ParseGroupHello(gf.Blob)
				if err != nil {
					c.Close()
					fail(fmt.Errorf("net: group hello from replica %d: %w", id, err))
					return
				}
				group := groupSize(topo, n)
				if gh.Topology != topo.Name() || gh.Group != group || gh.N != n {
					c.Close()
					fail(fmt.Errorf("net: replica %d runs topology %s (group %d, %d replicas), replica %d runs %s (group %d, %d replicas)",
						id, gh.Topology, gh.Group, gh.N, self, topo.Name(), group, n))
					return
				}
				mu.Lock()
				m.codecMasks[id] = gh.Codecs
				mu.Unlock()
			}
			mu.Lock()
			dup := m.recvs[id] != nil
			if !dup {
				m.recvs[id] = c
			}
			mu.Unlock()
			if dup {
				c.Close()
				fail(fmt.Errorf("net: duplicate connection from replica %d", id))
				return
			}
		}
	}()
	wg.Wait()
	if len(errs) > 0 {
		m.Close()
		return nil, errors.Join(errs...)
	}
	return m, nil
}

// groupSize resolves the negotiated group-size field of a topology's
// fingerprint (0 for ungrouped fabrics).
func groupSize(topo Topology, n int) int {
	if h, ok := topo.(Hierarchical); ok {
		return h.size(n)
	}
	return 0
}

// groupHelloBlob encodes the topology fingerprint non-mesh fabrics
// exchange after the hello — nil for the mesh, whose handshake stays
// byte-identical to the seed.
func groupHelloBlob(topo Topology, n int) ([]byte, error) {
	if topo == nil || topo.Name() == "mesh" {
		return nil, nil
	}
	return AppendGroupHello(nil, GroupHello{
		Topology: topo.Name(), Group: groupSize(topo, n), N: n, Codecs: AllCodecsMask(),
	})
}

// sortedIDs lists a peer map's replica ids in ascending order, for
// diagnosable geometry errors.
func sortedIDs(peers map[int]string) []int {
	ids := make([]int, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// dialRetry redials until the peer's listener is up or ctx expires,
// paced by the shared transport backoff.
func dialRetry(ctx context.Context, tr Transport, addr string) (Conn, error) {
	backoff := Backoff{Base: dialRetryBase, Max: dialRetryMax}
	for {
		c, err := tr.Dial(ctx, addr)
		if err == nil {
			return c, nil
		}
		if err := backoff.Sleep(ctx); err != nil {
			return nil, err
		}
	}
}

// SyncClocks estimates every connected peer's clock offset with one
// ping/pong round trip per connection (round-trip midpoint, see
// clock.go). Each replica pings every outbound peer and answers exactly
// one ping per inbound peer — under the full mesh those are the same
// set; under a sparse topology each replica measures its topology
// neighbors only. The exchange is symmetric, deterministic in frame
// count, and leaves every connection quiescent. Call it after mesh
// formation and before the averager attaches (the averager's inbound
// loops also answer pings, so later re-syncs go through ResyncClock
// instead).
func (m *Mesh) SyncClocks(ctx context.Context) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	offsets := make(map[int]time.Duration, len(m.sends))
	for _, id := range m.Peers() {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			off, _, err := MeasureClockOffset(ctx, m.sends[id], m.Self)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("net: clock sync with replica %d: %w", id, err))
				return
			}
			offsets[id] = off
		}(id)
	}
	for _, id := range m.Inbound() {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			in := m.Recv(id)
			f, err := in.Recv(ctx)
			if err == nil {
				err = AnswerClockPing(ctx, in, m.Self, f)
			}
			if err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("net: answering clock ping from replica %d: %w", id, err))
				mu.Unlock()
			}
		}(id)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	m.mu.Lock()
	m.offsets = offsets
	m.mu.Unlock()
	return nil
}

// ResyncClock re-measures one peer's offset over the outbound
// connection. The peer's inbound handler (the averager's inbound loop
// once attached) must be answering pings.
func (m *Mesh) ResyncClock(ctx context.Context, id int) (time.Duration, error) {
	c, ok := m.sends[id]
	if !ok {
		return 0, fmt.Errorf("net: no connection to replica %d", id)
	}
	off, _, err := MeasureClockOffset(ctx, c, m.Self)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	if m.offsets == nil {
		m.offsets = make(map[int]time.Duration)
	}
	m.offsets[id] = off
	m.mu.Unlock()
	return off, nil
}

// ClockOffset returns peer id's estimated clock minus the local clock,
// and whether SyncClocks has measured it.
func (m *Mesh) ClockOffset(id int) (time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	off, ok := m.offsets[id]
	return off, ok
}

// ClockOffsets returns a copy of the measured peer-clock offsets.
func (m *Mesh) ClockOffsets() map[int]time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]time.Duration, len(m.offsets))
	for id, off := range m.offsets {
		out[id] = off
	}
	return out
}

// Peers returns the outbound-connected peer ids in ascending order
// (every peer under the full mesh, the topology's dial set otherwise).
func (m *Mesh) Peers() []int {
	ids := make([]int, 0, len(m.sends))
	for id := range m.sends {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Inbound returns the peer ids this replica holds inbound connections
// from, in ascending order — the mirror of Peers under the topology.
// The averager spawns one receive loop per inbound peer.
func (m *Mesh) Inbound() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]int, 0, len(m.recvs))
	for id := range m.recvs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Topology returns the fabric shape the mesh was formed under
// (FullMesh for meshes formed by FormMesh).
func (m *Mesh) Topology() Topology {
	if m.topo == nil {
		return FullMesh{}
	}
	return m.topo
}

// SupportsCodec reports whether every connected peer advertised support
// for compression codec c. Full-mesh formation exchanges no codec
// masks (the handshake predates them and stays byte-identical), so it
// reports true — all first-party builds understand all codecs; the
// mask exists to fail fast on sparse fabrics mixing builds.
func (m *Mesh) SupportsCodec(c Codec) bool {
	if c == CodecNone {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mask := range m.codecMasks {
		if mask&CodecMask(c) == 0 {
			return false
		}
	}
	return true
}

// Recv returns the inbound connection from peer id (frames that peer
// sent us). Under self-healing this is the connection of the latest
// accepted session; the averager is told about replacements through
// SetInboundHandler instead of re-calling Recv.
func (m *Mesh) Recv(id int) Conn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recvs[id]
}

// SetInboundHandler installs fn to be called with every replacement
// inbound connection the self-healing accept loop installs (peer id +
// the fresh connection). The handler typically spawns a receive loop.
func (m *Mesh) SetInboundHandler(fn func(id int, c Conn)) {
	m.mu.Lock()
	m.onInbound = fn
	m.mu.Unlock()
}

// Send transmits f on the outbound connection to peer id.
func (m *Mesh) Send(ctx context.Context, id int, f *Frame) error {
	c, ok := m.sends[id]
	if !ok {
		return fmt.Errorf("net: no connection to replica %d", id)
	}
	return c.Send(ctx, f)
}

// Broadcast sends f to the topology's first hops in ascending id order
// — every peer under the full mesh — returning the joined errors (nil
// if every send succeeded). On sparse topologies the receivers relay
// the frame onward (Forward), so one Broadcast still reaches all N
// replicas. A peer whose connection reports the frame dropped — a
// faulty link eating the update, or a self-healing connection
// mid-outage — is not an error: elastic averaging tolerates lost
// updates, and the round deadline closes rounds over whatever arrived.
func (m *Mesh) Broadcast(ctx context.Context, f *Frame) error {
	var errs []error
	for _, id := range m.firstHops() {
		if err := m.sends[id].Send(ctx, f); err != nil && !errors.Is(err, ErrDropped) {
			errs = append(errs, fmt.Errorf("net: broadcast to replica %d: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// firstHops is the ascending id list Broadcast sends to.
func (m *Mesh) firstHops() []int {
	if m.topo == nil {
		return m.Peers()
	}
	return m.topo.FirstHops(m.Self, m.N)
}

// Forward relays a peer-originated frame onward along the topology:
// from names the peer the frame arrived from, and the topology's relay
// rule decides which neighbors (if any) must see it next so every
// broadcast reaches all N replicas exactly once. A no-op under the full
// mesh, where the origin reached everyone directly. Dropped frames are
// tolerated for the same reason Broadcast tolerates them.
func (m *Mesh) Forward(ctx context.Context, from int, f *Frame) error {
	if m.topo == nil {
		return nil
	}
	var errs []error
	for _, id := range m.topo.Relays(m.Self, m.N, int(f.Replica), from) {
		c, ok := m.sends[id]
		if !ok {
			errs = append(errs, fmt.Errorf("net: relay to replica %d: no connection", id))
			continue
		}
		if err := c.Send(ctx, f); err != nil && !errors.Is(err, ErrDropped) {
			errs = append(errs, fmt.Errorf("net: relay to replica %d: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// Route sends a frame directed at one replica, hop-by-hop along the
// topology when no direct connection exists (the receiver of each hop
// forwards by the frame's destination — see the averager's ref-state
// handling). Directly connected peers get the frame in one send.
func (m *Mesh) Route(ctx context.Context, to int, f *Frame) error {
	if to == m.Self {
		return fmt.Errorf("net: replica %d cannot route to itself", to)
	}
	if _, ok := m.sends[to]; ok {
		return m.Send(ctx, to, f)
	}
	if m.topo == nil {
		return fmt.Errorf("net: no connection to replica %d", to)
	}
	hop, err := m.topo.NextHopTo(m.Self, m.N, to)
	if err != nil {
		return err
	}
	return m.Send(ctx, hop, f)
}

// Addr reports the listener's bound address (for port-0 listens).
func (m *Mesh) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr()
}

// Close tears down every connection and the listener. Idempotent.
func (m *Mesh) Close() {
	m.closed.Do(func() {
		m.mu.Lock()
		cancel := m.healCancel
		recvs := make([]Conn, 0, len(m.recvs))
		for _, c := range m.recvs {
			recvs = append(recvs, c)
		}
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		for _, c := range m.sends {
			c.Close()
		}
		for _, c := range recvs {
			c.Close()
		}
		if m.ln != nil {
			m.ln.Close()
		}
	})
}

// fanOut is the averager's composed submit path in a multi-process job:
// a Send delivers to the local loopback (this process's reference loop)
// and broadcasts to every peer, so one Submit reaches all N reference
// copies. Recv and Close operate on the local end only — the mesh's
// lifecycle belongs to its owner.
type fanOut struct {
	Conn
	mesh *Mesh
}

// FanOut returns a Conn that sends to local and to every mesh peer.
func FanOut(local Conn, m *Mesh) Conn {
	if m == nil {
		return local
	}
	return &fanOut{Conn: local, mesh: m}
}

func (f *fanOut) Send(ctx context.Context, fr *Frame) error {
	err := f.Conn.Send(ctx, fr)
	if berr := f.mesh.Broadcast(ctx, fr); berr != nil && err == nil {
		err = berr
	}
	return err
}
