package net

import (
	"bytes"
	"context"
	"encoding/binary"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"avgpipe/internal/obs"
	"avgpipe/internal/tensor"
)

// finite32s filters quick's raw float32 slices down to finite values —
// the domain deltas live in (NaN/Inf gradients are clipped upstream).
func finite32s(vs []float32) []float32 {
	out := vs[:0]
	for _, v := range vs {
		if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) {
			out = append(out, v)
		}
	}
	return out
}

func packOnce(t *testing.T, codec Codec, frac float64, vs []float32) *PackedDeltas {
	t.Helper()
	c, err := NewCompressor(codec, frac)
	if err != nil {
		t.Fatal(err)
	}
	d := tensor.New(len(vs))
	copy(d.Data(), vs)
	blob, err := c.Pack([]*tensor.Tensor{d})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := DecodePackedDeltas(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical: re-encoding the decoded value reproduces the bytes.
	re, err := AppendPackedDeltas(nil, pd)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, blob) {
		t.Fatalf("%v encoding not canonical", codec)
	}
	return pd
}

// TestQuantRoundTripBounded checks the linear-quantization property: a
// fresh compressor's first emission reconstructs every coefficient to
// within half a quantization step (scale = maxabs/levels).
func TestQuantRoundTripBounded(t *testing.T) {
	for _, codec := range []Codec{CodecQ8, CodecQ16} {
		prop := func(raw []float32) bool {
			vs := finite32s(raw)
			if len(vs) == 0 {
				return true
			}
			pd := packOnce(t, codec, 0, vs)
			got := pd.Dequantize()[0].Data()
			step := float64(pd.Tensors[0].Scale)
			for e, v := range vs {
				// Half a step, plus ULP headroom for the float32 scale
				// division and dequantizing multiply.
				tol := step/2 + (step+math.Abs(float64(v)))*1e-5
				if math.Abs(float64(got[e])-float64(v)) > tol {
					t.Logf("%v: coeff %d: %v -> %v (step %v)", codec, e, v, got[e], step)
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", codec, err)
		}
	}
}

// TestTopKPreservesLargest checks the sparsification property: the kept
// set is exactly the k largest magnitudes — every dropped coefficient is
// no larger than the smallest kept one — and kept values ride exactly.
func TestTopKPreservesLargest(t *testing.T) {
	prop := func(raw []float32, frac float64) bool {
		vs := finite32s(raw)
		if len(vs) == 0 {
			return true
		}
		frac = math.Mod(math.Abs(frac), 1)
		if frac == 0 {
			frac = 0.25
		}
		pd := packOnce(t, CodecTopK, frac, vs)
		pt := pd.Tensors[0]
		wantK := int(math.Round(frac * float64(len(vs))))
		if wantK < 1 {
			wantK = 1
		}
		if wantK > len(vs) {
			wantK = len(vs)
		}
		if len(pt.Idx) != wantK {
			t.Logf("k=%d, want %d", len(pt.Idx), wantK)
			return false
		}
		kept := map[int]bool{}
		minKept := float32(math.Inf(1))
		for e, ix := range pt.Idx {
			if pt.Val[e] != vs[ix] {
				t.Logf("kept value %d mutated: %v != %v", ix, pt.Val[e], vs[ix])
				return false
			}
			kept[int(ix)] = true
			if a := abs32(pt.Val[e]); a < minKept {
				minKept = a
			}
		}
		for e, v := range vs {
			if !kept[e] && abs32(v) > minKept {
				t.Logf("dropped |%v| at %d exceeds smallest kept %v", v, e, minKept)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestErrorFeedbackSumsToExact checks the error-feedback invariant over
// a multi-round stream: emitted updates plus the final residual equal
// the exact delta sum — nothing the codec dropped is ever lost.
func TestErrorFeedbackSumsToExact(t *testing.T) {
	for _, codec := range []Codec{CodecQ8, CodecQ16, CodecTopK} {
		prop := func(r0, r1, r2 []float32) bool {
			rounds := [][]float32{finite32s(r0), finite32s(r1), finite32s(r2)}
			size := 0
			for _, r := range rounds {
				if len(r) > size {
					size = len(r)
				}
			}
			if size == 0 {
				return true
			}
			// Clamp magnitudes so the float32 sums cannot overflow.
			for _, r := range rounds {
				for i, v := range r {
					if a := abs32(v); a > 1e6 {
						r[i] = v / a * 1e6
					}
				}
			}
			c, err := NewCompressor(codec, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			exact := make([]float64, size)
			emitted := make([]float64, size)
			var maxAbs float64
			for _, r := range rounds {
				d := tensor.New(size)
				copy(d.Data(), r)
				for e, v := range d.Data() {
					exact[e] += float64(v)
					if a := math.Abs(float64(v)); a > maxAbs {
						maxAbs = a
					}
				}
				blob, err := c.Pack([]*tensor.Tensor{d})
				if err != nil {
					t.Fatal(err)
				}
				pd, err := DecodePackedDeltas(blob)
				if err != nil {
					t.Fatal(err)
				}
				for e, v := range pd.Dequantize()[0].Data() {
					emitted[e] += float64(v)
				}
			}
			resid := c.resid[0].Data()
			tol := maxAbs*1e-4 + 1e-6
			for e := range exact {
				if diff := math.Abs(emitted[e] + float64(resid[e]) - exact[e]); diff > tol {
					t.Logf("%v coeff %d: emitted %v + residual %v != exact %v (diff %v)",
						codec, e, emitted[e], resid[e], exact[e], diff)
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", codec, err)
		}
	}
}

// TestDecodePackedDeltasRejectsMalformed pins the decoder's validation:
// every corruption is an error, never a panic or a silent accept.
func TestDecodePackedDeltasRejectsMalformed(t *testing.T) {
	valid := func(codec Codec) []byte {
		c, err := NewCompressor(codec, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		d := tensor.New(4)
		copy(d.Data(), []float32{1, -2, 3, -4})
		blob, err := c.Pack([]*tensor.Tensor{d})
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	mutate := func(b []byte, at int, to byte) []byte {
		m := append([]byte(nil), b...)
		m[at] = to
		return m
	}
	q8 := valid(CodecQ8)
	topk := valid(CodecTopK)
	cases := map[string][]byte{
		"empty":          {},
		"short":          q8[:3],
		"bad-version":    mutate(q8, 0, 99),
		"bad-codec":      mutate(q8, 1, 77),
		"truncated-data": q8[:len(q8)-1],
		"trailing-bytes": append(append([]byte(nil), q8...), 0),
		"nan-scale": func() []byte {
			m := append([]byte(nil), q8...)
			binary.LittleEndian.PutUint32(m[11:15], math.Float32bits(float32(math.NaN())))
			return m
		}(),
		"negative-scale": func() []byte {
			m := append([]byte(nil), q8...)
			binary.LittleEndian.PutUint32(m[11:15], math.Float32bits(-1))
			return m
		}(),
		"oversized-k": func() []byte {
			m := append([]byte(nil), topk...)
			binary.LittleEndian.PutUint32(m[11:15], 1<<30)
			return m
		}(),
		"descending-index": func() []byte {
			m := append([]byte(nil), topk...)
			binary.LittleEndian.PutUint32(m[15:19], 3)
			binary.LittleEndian.PutUint32(m[19:23], 0)
			return m
		}(),
	}
	for name, blob := range cases {
		if _, err := DecodePackedDeltas(blob); err == nil {
			t.Errorf("%s: malformed blob accepted", name)
		}
	}
}

// TestGroupHelloRoundTrip covers the group-hello codec, including its
// malformed-payload rejections.
func TestGroupHelloRoundTrip(t *testing.T) {
	gh := GroupHello{Topology: "hier", Group: 3, N: 9, Codecs: AllCodecsMask()}
	b, err := AppendGroupHello(nil, gh)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseGroupHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != gh {
		t.Fatalf("round trip: %+v != %+v", got, gh)
	}
	if _, err := AppendGroupHello(nil, GroupHello{Topology: "torus"}); err == nil {
		t.Error("unknown topology encoded")
	}
	if _, err := ParseGroupHello(b[:11]); err == nil {
		t.Error("short group hello accepted")
	}
	if _, err := ParseGroupHello(append([]byte{}, 9, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := ParseGroupHello(append([]byte{}, 1, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)); err == nil {
		t.Error("bad topology id accepted")
	}
}

// TestCompressedBytesOnWire is the obs-counter gate for the bandwidth
// headline: the same delta broadcast over a live TCP link moves ≥4x
// fewer bytes top-k compressed (and ~4x under q8) than as exact f32,
// measured at the transport's byte counters.
func TestCompressedBytesOnWire(t *testing.T) {
	const elems = 1 << 14
	regs := [2]*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	trs := [2]*TCP{NewTCP(regs[0]), NewTCP(regs[1])}
	lns := [2]Listener{}
	addrs := [2]string{}
	for i := range trs {
		ln, err := trs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i], addrs[i] = ln, ln.Addr()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	meshes := [2]*Mesh{}
	errs := [2]error{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			meshes[i], errs[i] = FormMeshOn(ctx, trs[i], lns[i], i, map[int]string{1 - i: addrs[1-i]})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
	defer meshes[0].Close()
	defer meshes[1].Close()

	// Drain replica 1's inbound so TCP windows never stall the sends.
	go func() {
		c := meshes[1].Recv(0)
		for {
			if _, err := c.Recv(context.Background()); err != nil {
				return
			}
		}
	}()

	delta := tensor.New(elems)
	for i := range delta.Data() {
		delta.Data()[i] = float32(i%251) - 125
	}
	sent := func() float64 {
		return regs[0].Counter("avgpipe_net_bytes_sent_total", "", "transport", "tcp").Value()
	}
	send := func(f *Frame) float64 {
		before := sent()
		if err := meshes[0].Broadcast(ctx, f); err != nil {
			t.Fatal(err)
		}
		return sent() - before
	}

	exactBytes := send(&Frame{Type: FrameUpdate, Replica: 0, Round: 0, Tensors: []*tensor.Tensor{delta}})
	compressed := map[Codec]float64{}
	for _, codec := range []Codec{CodecQ8, CodecTopK} {
		c, err := NewCompressor(codec, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := c.Pack([]*tensor.Tensor{delta})
		if err != nil {
			t.Fatal(err)
		}
		compressed[codec] = send(&Frame{Type: codec.UpdateFrameType(), Replica: 0, Round: 0, Blob: blob})
	}
	if exactBytes <= 0 {
		t.Fatal("byte counter saw no exact update")
	}
	// Top-k at 10% kept: 8 bytes per kept pair → ~5x fewer bytes; the
	// headline ≥4x gate.
	if ratio := exactBytes / compressed[CodecTopK]; ratio < 4 {
		t.Errorf("topk moved %0.f bytes vs exact %0.f — %.2fx, want ≥4x",
			compressed[CodecTopK], exactBytes, ratio)
	}
	// q8 is 1 byte per coefficient against 4: asymptotically 4x, gated
	// with headroom for the per-tensor scale and frame header.
	if ratio := exactBytes / compressed[CodecQ8]; ratio < 3.5 {
		t.Errorf("q8 moved %0.f bytes vs exact %0.f — %.2fx, want ≥3.5x",
			compressed[CodecQ8], exactBytes, ratio)
	}
}
