package net

import (
	"context"
	"fmt"
	"time"

	"avgpipe/internal/obs"
)

// reconnectHelloTimeout bounds how long the reconnect accept loop waits
// for a freshly accepted connection to identify itself before dropping
// it (a half-open dial must not wedge admission of real peers).
const reconnectHelloTimeout = 5 * time.Second

// SelfHealConfig configures Mesh.EnableSelfHeal.
type SelfHealConfig struct {
	// Transport re-dials broken outbound connections.
	Transport Transport
	// Peers maps peer replica id → dial address, the same map the mesh
	// was formed with (every mesh peer must have an address).
	Peers map[int]string
	// MaxAttempts bounds the redials of one outage per peer; 0 retries
	// until the mesh closes.
	MaxAttempts int
	// Backoff builds the redial pacing for each outage (nil = transport
	// defaults).
	Backoff func() *Backoff
	// Events receives connection-lifecycle health events.
	Events *obs.EventLog
}

// EnableSelfHeal turns the mesh's fixed connections into self-healing
// ones. Outbound: every send connection is wrapped in a Reconn that
// re-dials with exponential backoff + jitter when the link breaks and
// re-runs the hello handshake under a bumped session epoch. Inbound:
// the formation listener keeps accepting after formation; a hello from
// a known peer with a newer session epoch (or epoch 0 — a fully
// restarted process starting a fresh session) replaces that peer's
// inbound connection and is announced through SetInboundHandler.
//
// Call it after FormMesh and SyncClocks and before the averager
// attaches: it rewrites the send table, which is only safe while the
// mesh is quiescent.
func (m *Mesh) EnableSelfHeal(cfg SelfHealConfig) error {
	if cfg.Transport == nil {
		return fmt.Errorf("net: self-heal needs a transport to re-dial with")
	}
	for _, id := range m.Peers() {
		if cfg.Peers[id] == "" {
			return fmt.Errorf("net: self-heal has no dial address for replica %d", id)
		}
	}
	// A sparse fabric re-runs its topology fingerprint on every new
	// session, exactly as formation does — a restarted peer re-forms
	// with FormTopology and expects the group hello after the hello.
	ghBlob, err := groupHelloBlob(m.topo, m.N)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	if m.healCancel != nil {
		m.mu.Unlock()
		cancel()
		return fmt.Errorf("net: self-heal already enabled")
	}
	m.healCancel = cancel
	m.epochs = make(map[int]uint32)
	m.mu.Unlock()

	for _, id := range m.Peers() {
		id, addr := id, cfg.Peers[id]
		dial := func(dctx context.Context, epoch uint32) (Conn, error) {
			c, err := cfg.Transport.Dial(dctx, addr)
			if err != nil {
				return nil, err
			}
			// Re-run the formation hello so the acceptor can re-verify
			// the job geometry; Round carries the session epoch.
			hello := &Frame{Type: FrameHello, Replica: uint32(m.Self), Meta: uint32(m.N), Round: epoch}
			if err := c.Send(dctx, hello); err != nil {
				c.Close()
				return nil, err
			}
			if ghBlob != nil {
				gh := &Frame{Type: FrameGroupHello, Replica: uint32(m.Self), Blob: ghBlob}
				if err := c.Send(dctx, gh); err != nil {
					c.Close()
					return nil, err
				}
			}
			return c, nil
		}
		m.sends[id] = NewReconn(m.sends[id], dial, ReconnConfig{
			Peer:        id,
			MaxAttempts: cfg.MaxAttempts,
			Backoff:     cfg.Backoff,
			Events:      cfg.Events,
		})
	}
	go m.acceptReconnects(ctx, cfg)
	return nil
}

// acceptReconnects keeps the formation listener alive after formation,
// admitting replacement inbound connections from peers that re-dialed.
func (m *Mesh) acceptReconnects(ctx context.Context, cfg SelfHealConfig) {
	for {
		c, err := m.ln.Accept(ctx)
		if err != nil {
			return // listener closed or self-heal cancelled
		}
		go m.admitReconnect(ctx, cfg, c)
	}
}

// admitReconnect validates one freshly accepted connection's hello and,
// if it is a legitimate new session from a known peer, swaps it in as
// that peer's inbound connection.
func (m *Mesh) admitReconnect(ctx context.Context, cfg SelfHealConfig, c Conn) {
	hctx, cancel := context.WithTimeout(ctx, reconnectHelloTimeout)
	defer cancel()
	f, err := c.Recv(hctx)
	if err != nil || f.Type != FrameHello {
		c.Close()
		return
	}
	id := int(f.Replica)
	if id == m.Self || id < 0 || id >= m.N || int(f.Meta) != m.N {
		c.Close()
		return
	}
	// Under a sparse topology only topology neighbors may hold an
	// inbound connection; a stray dial from a non-neighbor is refused.
	if m.acceptSet != nil && !m.acceptSet[id] {
		c.Close()
		return
	}
	// A sparse fabric's new session must re-prove the same topology
	// fingerprint formation checked — a restarted process configured
	// with a different fabric is refused, not averaged with.
	if m.topo != nil && m.topo.Name() != "mesh" {
		gf, err := c.Recv(hctx)
		if err != nil || gf.Type != FrameGroupHello {
			c.Close()
			return
		}
		gh, err := ParseGroupHello(gf.Blob)
		if err != nil || gh.Topology != m.topo.Name() ||
			gh.Group != groupSize(m.topo, m.N) || gh.N != m.N {
			c.Close()
			return
		}
		m.mu.Lock()
		m.codecMasks[id] = gh.Codecs
		m.mu.Unlock()
	}
	epoch := f.Round
	m.mu.Lock()
	// A session must move forward: a replayed or crossed dial from an
	// epoch we already admitted is refused. Epoch 0 is the exception —
	// it is a fully restarted process whose session numbering begins
	// again, so it resets the peer's epoch history.
	if last := m.epochs[id]; epoch != 0 && epoch <= last {
		m.mu.Unlock()
		c.Close()
		return
	}
	m.epochs[id] = epoch
	old := m.recvs[id]
	m.recvs[id] = c
	handler := m.onInbound
	m.mu.Unlock()
	if old != nil {
		old.Close() // unwedge the receive loop still parked on the dead conn
	}
	cfg.Events.Emit(obs.Event{Type: obs.EventReplicaConnect, Replica: id, Round: -1,
		Value: float64(epoch), Detail: fmt.Sprintf("inbound mesh session epoch %d", epoch)})
	if handler != nil {
		handler(id, c)
	}
}
