// Package net is the wire-transport layer of the elastic-averaging
// runtime: it moves averaging-round updates, parameter deltas, and
// detach/rejoin control frames between replica processes. A Transport
// is pluggable — the in-process implementation (InProc) carries frames
// by pointer through bounded comm.Queues for single-process runs and
// tests, and the TCP implementation (TCP) carries them across OS
// processes with the length-prefixed binary codec in codec.go. Mesh
// forms the coordinator-free full mesh a multi-process training job
// runs on.
//
// # Cancellation and close semantics (the transport contract)
//
// This section is the single normative statement of blocked-call
// semantics for every transport AND for comm.Queue, which the
// transports are built on. The conformance suite
// (conformance_test.go) enforces it against each implementation:
//
//   - A Recv blocked when its context fires returns (nil, ctx.Err())
//     WITHOUT consuming a frame: the next Recv still observes every
//     frame the peer sent, in order.
//   - A Send blocked on backpressure when its context fires returns
//     ctx.Err() without delivering the frame (TCP only: a send
//     cancelled after its frame was partially written poisons the
//     connection, and every later Send fails — a stream cut mid-frame
//     cannot be resumed).
//   - Closed-and-drained wins over cancellation: once the peer has
//     closed and all in-flight frames have been received, Recv returns
//     ErrClosed even if the caller's context has also fired.
//   - Close is graceful for frames already sent: the receiver drains
//     them before seeing ErrClosed. Send after Close (either end's)
//     returns ErrClosed, never a panic and never a silent drop.
//
// comm.Queue.RecvContext expresses the same contract in its
// (value, ok, error) form: cancellation returns (zero, false, ctx.Err()),
// and closed-and-drained returns (zero, false, nil).
package net

import (
	"context"
	"errors"
)

// ErrClosed is returned by Send and Recv once the connection (or its
// peer) has closed and, for Recv, every in-flight frame has been
// drained.
var ErrClosed = errors.New("net: connection closed")

// ErrDropped is returned by a fault-injecting connection (see Faulty)
// when the frame was deliberately lost in flight. Callers treat it as
// "sent into the void": not an error to retry, but a frame that will
// never arrive.
var ErrDropped = errors.New("net: frame dropped by fault injection")

// Conn is one bidirectional, ordered frame stream between two replicas.
// Send and Recv are safe for concurrent use (concurrent Sends are
// serialized whole-frame; frames never interleave on the wire).
type Conn interface {
	// Send delivers one frame, blocking under backpressure until the
	// peer makes room, the context fires, or the connection closes.
	Send(ctx context.Context, f *Frame) error
	// Recv returns the next frame in send order, blocking until one
	// arrives, the context fires, or the stream is closed and drained.
	Recv(ctx context.Context) (*Frame, error)
	// Close tears the connection down. Frames already sent remain
	// receivable by the peer; everything after fails with ErrClosed.
	Close() error
	// LocalAddr and RemoteAddr name the endpoints for logs and metrics.
	LocalAddr() string
	RemoteAddr() string
}

// Listener accepts inbound connections on one address.
type Listener interface {
	Accept(ctx context.Context) (Conn, error)
	// Addr is the bound address — for TCP with port 0, the actual port.
	Addr() string
	Close() error
}

// Transport creates listeners and dials peers. Implementations must be
// safe for concurrent use.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(ctx context.Context, addr string) (Conn, error)
	// Name labels the transport in metrics and test output.
	Name() string
}
