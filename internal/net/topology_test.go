package net

import (
	"fmt"
	"sort"
	"testing"
)

// topologiesUnderTest enumerates every Topology implementation with the
// parameter variants worth exercising.
func topologiesUnderTest() []Topology {
	return []Topology{
		FullMesh{},
		Ring{},
		Hierarchical{}, // group = ceil(sqrt(n))
		Hierarchical{Group: 2},
		Hierarchical{Group: 3},
	}
}

// TestTopologyExactlyOnceDelivery simulates the dissemination contract
// for every topology and job size: a frame originated by any replica —
// sent to its first hops and then relayed by every receiver — reaches
// every other replica exactly once, with no relay loop.
func TestTopologyExactlyOnceDelivery(t *testing.T) {
	for _, topo := range topologiesUnderTest() {
		for n := 1; n <= 10; n++ {
			if err := topo.Validate(n); err != nil {
				if h, ok := topo.(Hierarchical); ok && h.Group > n {
					continue // a legitimately rejected configuration
				}
				t.Fatalf("%s n=%d: %v", topo.Name(), n, err)
			}
			for origin := 0; origin < n; origin++ {
				delivered := make([]int, n)
				// hop (from, to) pairs walked breadth-first; a bound on the
				// step count catches relay loops without hanging the test.
				type hop struct{ from, to int }
				queue := []hop{}
				for _, id := range topo.FirstHops(origin, n) {
					queue = append(queue, hop{origin, id})
				}
				steps := 0
				for len(queue) > 0 {
					if steps++; steps > 10*n*n {
						t.Fatalf("%s n=%d origin %d: relay loop", topo.Name(), n, origin)
					}
					h := queue[0]
					queue = queue[1:]
					delivered[h.to]++
					for _, next := range topo.Relays(h.to, n, origin, h.from) {
						queue = append(queue, hop{h.to, next})
					}
				}
				for p := 0; p < n; p++ {
					want := 1
					if p == origin {
						want = 0
					}
					if delivered[p] != want {
						t.Errorf("%s n=%d: frame from %d delivered to %d %d times, want %d",
							topo.Name(), n, origin, p, delivered[p], want)
					}
				}
			}
		}
	}
}

// TestTopologyRelaysWithinDialSet checks that every first hop and relay
// target is a peer the sender actually dialed — the topology never asks
// the mesh for a connection it did not form.
func TestTopologyRelaysWithinDialSet(t *testing.T) {
	for _, topo := range topologiesUnderTest() {
		for n := 1; n <= 10; n++ {
			if topo.Validate(n) != nil {
				continue
			}
			for self := 0; self < n; self++ {
				dials := map[int]bool{}
				for _, id := range topo.Dials(self, n) {
					if id == self || id < 0 || id >= n {
						t.Fatalf("%s n=%d: replica %d dials invalid id %d", topo.Name(), n, self, id)
					}
					if dials[id] {
						t.Fatalf("%s n=%d: replica %d dials %d twice", topo.Name(), n, self, id)
					}
					dials[id] = true
				}
				for _, id := range topo.FirstHops(self, n) {
					if !dials[id] {
						t.Errorf("%s n=%d: first hop %d of replica %d not dialed", topo.Name(), n, id, self)
					}
				}
				for origin := 0; origin < n; origin++ {
					for from := 0; from < n; from++ {
						for _, id := range topo.Relays(self, n, origin, from) {
							if !dials[id] {
								t.Errorf("%s n=%d: relay %d (origin %d, from %d) of replica %d not dialed",
									topo.Name(), n, id, origin, from, self)
							}
						}
					}
				}
			}
		}
	}
}

// TestTopologyRouting walks NextHopTo from every replica to every other
// and checks the frame arrives within n hops, each hop over a dialed
// connection.
func TestTopologyRouting(t *testing.T) {
	for _, topo := range topologiesUnderTest() {
		for n := 2; n <= 10; n++ {
			if topo.Validate(n) != nil {
				continue
			}
			for from := 0; from < n; from++ {
				for to := 0; to < n; to++ {
					if to == from {
						continue
					}
					at := from
					for hops := 0; at != to; hops++ {
						if hops > n {
							t.Fatalf("%s n=%d: route %d→%d does not terminate", topo.Name(), n, from, to)
						}
						next, err := topo.NextHopTo(at, n, to)
						if err != nil {
							t.Fatalf("%s n=%d: route %d→%d at %d: %v", topo.Name(), n, from, to, at, err)
						}
						dialed := false
						for _, id := range topo.Dials(at, n) {
							if id == next {
								dialed = true
							}
						}
						if !dialed {
							t.Fatalf("%s n=%d: hop %d→%d not a dialed connection", topo.Name(), n, at, next)
						}
						at = next
					}
				}
			}
		}
	}
}

// TestAcceptsFromMirrorsDials checks the accept sets are the exact
// mirror image of the dial sets — the invariant formation relies on to
// size its accept loop.
func TestAcceptsFromMirrorsDials(t *testing.T) {
	for _, topo := range topologiesUnderTest() {
		for n := 1; n <= 8; n++ {
			if topo.Validate(n) != nil {
				continue
			}
			want := map[int][]int{}
			for q := 0; q < n; q++ {
				for _, d := range topo.Dials(q, n) {
					want[d] = append(want[d], q)
				}
			}
			for self := 0; self < n; self++ {
				sort.Ints(want[self])
				got := AcceptsFrom(topo, self, n)
				if fmt.Sprint(got) != fmt.Sprint(want[self]) {
					t.Errorf("%s n=%d: replica %d accepts %v, want %v", topo.Name(), n, self, got, want[self])
				}
			}
		}
	}
}

// TestTopologyByName covers flag resolution, including the unknown-name
// error path.
func TestTopologyByName(t *testing.T) {
	for name, want := range map[string]string{
		"": "mesh", "mesh": "mesh", "full": "mesh",
		"ring": "ring", "hier": "hier", "hierarchical": "hier",
	} {
		topo, err := TopologyByName(name, 0)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if topo.Name() != want {
			t.Errorf("%q resolved to %s, want %s", name, topo.Name(), want)
		}
	}
	if h, err := TopologyByName("hier", 3); err != nil || h.(Hierarchical).Group != 3 {
		t.Errorf("hier group not threaded through: %v %v", h, err)
	}
	if _, err := TopologyByName("torus", 0); err == nil {
		t.Error("unknown topology accepted")
	}
}

// TestHierarchicalValidate rejects group sizes that cannot address the
// job.
func TestHierarchicalValidate(t *testing.T) {
	if err := (Hierarchical{Group: -1}).Validate(4); err == nil {
		t.Error("negative group accepted")
	}
	if err := (Hierarchical{Group: 5}).Validate(4); err == nil {
		t.Error("oversized group accepted")
	}
	if err := (Hierarchical{Group: 4}).Validate(4); err != nil {
		t.Errorf("group == n rejected: %v", err)
	}
}
