package net

import (
	"context"
	"time"

	"avgpipe/internal/fault"
)

// faultConn injects message faults at the transport seam: every
// FrameUpdate consults the injector's deterministic schedule and is
// delivered, delayed, or dropped accordingly. Control frames (hello,
// detach, rejoin) always pass through — the fault model loses data
// messages, not membership changes.
type faultConn struct {
	Conn
	in *fault.Injector
	// onLost runs when a delayed frame is finally lost to a closed
	// connection, so the caller can undo any delivery accounting (the
	// averager's drain watermark).
	onLost func()
}

// Faulty wraps c so its Sends pass through the fault injector: a
// dropped update returns ErrDropped (the frame will never arrive), a
// delayed update returns nil immediately and is delivered after the
// hold time, with onLost called if the connection has closed by then.
// A nil injector returns c unchanged.
func Faulty(c Conn, in *fault.Injector, onLost func()) Conn {
	if in == nil {
		return c
	}
	if onLost == nil {
		onLost = func() {}
	}
	return &faultConn{Conn: c, in: in, onLost: onLost}
}

func (c *faultConn) Send(ctx context.Context, f *Frame) error {
	if f.Type != FrameUpdate {
		return c.Conn.Send(ctx, f)
	}
	switch fate, d := c.in.UpdateFate(int(f.Replica), int(f.Round)); fate {
	case fault.FateDrop:
		return ErrDropped
	case fault.FateDelay:
		time.AfterFunc(d, func() {
			if c.Conn.Send(context.Background(), f) != nil {
				c.onLost()
			}
		})
		return nil
	default:
		return c.Conn.Send(ctx, f)
	}
}
