package net

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"avgpipe/internal/obs"
)

// The reconnect conformance suite runs the Reconn contract against both
// transports: a broken connection is re-dialed in the background under
// a bumped session epoch, frames sent during the outage are dropped
// (never queued), Recv resumes on the replacement connection, and an
// exhausted redial budget leaves the connection permanently dead.

// reconnEnv is a redialable server endpoint: it keeps accepting
// connections on one address and hands each accepted conn to the test.
type reconnEnv struct {
	tr       Transport
	addr     string
	accepted chan Conn
}

func newReconnEnv(t *testing.T, transport string) *reconnEnv {
	t.Helper()
	var tr Transport
	var listenAddr string
	switch transport {
	case "inproc":
		tr, listenAddr = NewInProc(8), "srv-"+t.Name()
	case "tcp":
		tr, listenAddr = NewTCP(obs.NewRegistry()), "127.0.0.1:0"
	default:
		t.Fatalf("unknown transport %q", transport)
	}
	ln, err := tr.Listen(listenAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	env := &reconnEnv{tr: tr, addr: ln.Addr(), accepted: make(chan Conn, 8)}
	go func() {
		for {
			c, err := ln.Accept(context.Background())
			if err != nil {
				return
			}
			env.accepted <- c
		}
	}()
	return env
}

// connect establishes the initial client/server pair.
func (env *reconnEnv) connect(t *testing.T) (client, server Conn) {
	t.Helper()
	c, err := env.tr.Dial(context.Background(), env.addr)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-env.accepted:
		return c, s
	case <-time.After(5 * time.Second):
		t.Fatal("server never accepted the initial connection")
		return nil, nil
	}
}

func (env *reconnEnv) acceptNext(t *testing.T) Conn {
	t.Helper()
	select {
	case c := <-env.accepted:
		return c
	case <-time.After(5 * time.Second):
		t.Fatal("server never accepted the reconnect")
		return nil
	}
}

func fastBackoff() *Backoff {
	return &Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, NoJitter: true}
}

func reconnWaitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// driveUntilEpoch sends probe frames until the break has been detected,
// healed, and the session reaches epoch want.
func driveUntilEpoch(t *testing.T, r *Reconn, want uint32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("timed out driving reconnect to epoch %d (at %d)", want, r.Epoch())
		}
		err := r.Send(context.Background(), testFrame(i))
		if err == nil && r.Epoch() == want {
			return
		}
		if err != nil && !errors.Is(err, ErrDropped) {
			t.Fatalf("probe send: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReconnectConformance(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, transport string)
	}{
		{"DialAfterBreakBumpsEpoch", reconnAfterBreak},
		{"EpochBumpsPerOutage", reconnEpochPerOutage},
		{"OutageDropsFramesInFlight", reconnOutageDrops},
		{"RecvResumesOnReplacement", reconnRecvResumes},
		{"CloseDuringOutageUnblocks", reconnCloseDuringOutage},
		{"ExhaustedBudgetGoesDead", reconnBudgetDead},
	}
	for _, transport := range []string{"inproc", "tcp"} {
		for _, tc := range cases {
			t.Run(transport+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				tc.run(t, transport)
			})
		}
	}
}

// reconnAfterBreak: a broken (poisoned) connection heals by background
// redial; traffic resumes on the replacement under session epoch 1, and
// the lifecycle events land in the log.
func reconnAfterBreak(t *testing.T, transport string) {
	env := newReconnEnv(t, transport)
	client, server := env.connect(t)
	reg := obs.NewRegistry()
	r := NewReconn(client, func(ctx context.Context, epoch uint32) (Conn, error) {
		return env.tr.Dial(ctx, env.addr)
	}, ReconnConfig{Peer: 1, Backoff: fastBackoff, Events: reg.Events()})
	defer r.Close()

	server.Close() // poison the stream from the far side
	driveUntilEpoch(t, r, 1)
	replacement := env.acceptNext(t)
	defer replacement.Close()

	// Traffic flows on the replacement connection.
	marker := testFrame(999)
	if err := r.Send(context.Background(), marker); err != nil {
		t.Fatalf("post-reconnect send: %v", err)
	}
	for {
		f, err := replacement.Recv(context.Background())
		if err != nil {
			t.Fatalf("replacement recv: %v", err)
		}
		if f.Round == 999 {
			break
		}
	}

	broken, success := 0, 0
	for _, e := range reg.Events().Peek() {
		switch e.Type {
		case obs.EventConnBroken:
			broken++
		case obs.EventReconnectSuccess:
			success++
		}
	}
	if broken < 1 || success < 1 {
		t.Fatalf("events: %d conn_broken, %d reconnect_success; want >=1 of each", broken, success)
	}
}

// reconnEpochPerOutage: each outage bumps the session epoch once.
func reconnEpochPerOutage(t *testing.T, transport string) {
	env := newReconnEnv(t, transport)
	client, server := env.connect(t)
	r := NewReconn(client, func(ctx context.Context, epoch uint32) (Conn, error) {
		return env.tr.Dial(ctx, env.addr)
	}, ReconnConfig{Peer: 1, Backoff: fastBackoff})
	defer r.Close()

	server.Close()
	driveUntilEpoch(t, r, 1)
	s1 := env.acceptNext(t)
	s1.Close()
	driveUntilEpoch(t, r, 2)
	s2 := env.acceptNext(t)
	defer s2.Close()
	if got := r.Epoch(); got != 2 {
		t.Fatalf("epoch after two outages = %d, want 2", got)
	}
}

// reconnOutageDrops: while the connection is down, Send reports the
// frame dropped immediately — frames are never queued across an outage
// — and the first frame the replacement connection delivers is the
// first post-reconnect send.
func reconnOutageDrops(t *testing.T, transport string) {
	env := newReconnEnv(t, transport)
	client, server := env.connect(t)
	gate := make(chan struct{})
	r := NewReconn(client, func(ctx context.Context, epoch uint32) (Conn, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return env.tr.Dial(ctx, env.addr)
	}, ReconnConfig{Peer: 1, Backoff: fastBackoff})
	defer r.Close()

	server.Close()
	// Probe until the break is detected (the detecting send itself is
	// reported dropped).
	reconnWaitFor(t, "break detection", func() bool {
		return errors.Is(r.Send(context.Background(), testFrame(0)), ErrDropped)
	})
	// Down and the redial gated: every send drops, without blocking.
	for i := 0; i < 5; i++ {
		if err := r.Send(context.Background(), testFrame(i)); !errors.Is(err, ErrDropped) {
			t.Fatalf("send during outage: %v, want ErrDropped", err)
		}
	}
	close(gate)
	reconnWaitFor(t, "connection back up", r.Up)
	if err := r.Send(context.Background(), testFrame(777)); err != nil {
		t.Fatalf("post-heal send: %v", err)
	}
	replacement := env.acceptNext(t)
	defer replacement.Close()
	f, err := replacement.Recv(context.Background())
	if err != nil {
		t.Fatalf("replacement recv: %v", err)
	}
	if f.Round != 777 {
		t.Fatalf("first frame after heal has round %d, want 777 — an outage frame leaked through", f.Round)
	}
}

// reconnRecvResumes: a Recv blocked across the outage resumes on the
// replacement connection.
func reconnRecvResumes(t *testing.T, transport string) {
	env := newReconnEnv(t, transport)
	client, server := env.connect(t)
	r := NewReconn(client, func(ctx context.Context, epoch uint32) (Conn, error) {
		return env.tr.Dial(ctx, env.addr)
	}, ReconnConfig{Peer: 1, Backoff: fastBackoff})
	defer r.Close()

	type recvResult struct {
		f   *Frame
		err error
	}
	got := make(chan recvResult, 1)
	go func() {
		f, err := r.Recv(context.Background())
		got <- recvResult{f, err}
	}()
	server.Close()
	replacement := env.acceptNext(t)
	defer replacement.Close()
	if err := replacement.Send(context.Background(), testFrame(42)); err != nil {
		t.Fatalf("send on replacement: %v", err)
	}
	select {
	case res := <-got:
		if res.err != nil {
			t.Fatalf("recv across outage: %v", res.err)
		}
		if res.f.Round != 42 {
			t.Fatalf("recv across outage got round %d, want 42", res.f.Round)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not resume on the replacement connection")
	}
}

// reconnCloseDuringOutage: Close during an outage stops the redial and
// unblocks every caller with ErrClosed.
func reconnCloseDuringOutage(t *testing.T, transport string) {
	env := newReconnEnv(t, transport)
	client, server := env.connect(t)
	gate := make(chan struct{}) // never released: the outage lasts forever
	r := NewReconn(client, func(ctx context.Context, epoch uint32) (Conn, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("unreachable")
	}, ReconnConfig{Peer: 1, Backoff: fastBackoff})

	server.Close()
	reconnWaitFor(t, "break detection", func() bool {
		r.Send(context.Background(), testFrame(0))
		return !r.Up()
	})
	recvErr := make(chan error, 1)
	go func() {
		_, err := r.Recv(context.Background())
		recvErr <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the Recv park on the outage
	if err := r.Close(); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("close during outage: %v", err)
	}
	select {
	case err := <-recvErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("recv after close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked after Close")
	}
	if err := r.Send(context.Background(), testFrame(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}
}

// reconnBudgetDead: when MaxAttempts redials all fail the connection
// goes permanently dead — sends drop, receives report closed, and the
// disconnect event fires.
func reconnBudgetDead(t *testing.T, transport string) {
	env := newReconnEnv(t, transport)
	client, server := env.connect(t)
	reg := obs.NewRegistry()
	r := NewReconn(client, func(ctx context.Context, epoch uint32) (Conn, error) {
		return nil, fmt.Errorf("host unreachable")
	}, ReconnConfig{Peer: 1, MaxAttempts: 2, Backoff: fastBackoff, Events: reg.Events()})
	defer r.Close()

	server.Close()
	reconnWaitFor(t, "break detection", func() bool {
		return errors.Is(r.Send(context.Background(), testFrame(0)), ErrDropped)
	})
	reconnWaitFor(t, "redial budget exhaustion", r.Dead)
	if err := r.Send(context.Background(), testFrame(1)); !errors.Is(err, ErrDropped) {
		t.Fatalf("send on dead conn: %v, want ErrDropped", err)
	}
	if _, err := r.Recv(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv on dead conn: %v, want ErrClosed", err)
	}
	gaveUp := false
	for _, e := range reg.Events().Peek() {
		if e.Type == obs.EventReplicaDisconnect {
			gaveUp = true
		}
	}
	if !gaveUp {
		t.Fatal("no replica_disconnect event after the redial budget ran out")
	}
}
