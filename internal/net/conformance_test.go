package net

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"avgpipe/internal/obs"
	"avgpipe/internal/tensor"
)

// The conformance suite runs one table of behavioral cases against both
// Transport implementations through the same harness, so the contract
// documented in this package's doc comment is enforced in exactly one
// place. comm.Queue inherits the same guarantees by construction: both
// transports implement their blocked calls on it.

// connPair is one established connection: frames sent on a arrive at b
// and vice versa. capacity is the per-direction buffering the maker was
// asked for (frames buffered before Send pushes back).
type connPair struct {
	a, b Conn
}

type pairMaker func(t *testing.T, capacity int) connPair

func makeInProcPair(t *testing.T, capacity int) connPair {
	t.Helper()
	tr := NewInProc(capacity)
	ln, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var pair connPair
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept(context.Background())
		pair.b = c
		done <- err
	}()
	a, err := tr.Dial(context.Background(), "srv")
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	pair.a = a
	t.Cleanup(func() { pair.a.Close(); pair.b.Close() })
	return pair
}

func makeTCPPair(t *testing.T, capacity int) connPair {
	t.Helper()
	tr := NewTCP(obs.NewRegistry())
	if capacity > 0 {
		tr.InboxFrames = capacity
	}
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var pair connPair
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept(context.Background())
		pair.b = c
		done <- err
	}()
	a, err := tr.Dial(context.Background(), ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	pair.a = a
	t.Cleanup(func() { pair.a.Close(); pair.b.Close() })
	return pair
}

var transports = []struct {
	name string
	mk   pairMaker
}{
	{"inproc", makeInProcPair},
	{"tcp", makeTCPPair},
}

func testFrame(round int) *Frame {
	return &Frame{Type: FrameUpdate, Replica: 1, Round: uint32(round)}
}

func TestConformance(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, mk pairMaker)
	}{
		{"Ordering", confOrdering},
		{"CloseDrainsThenErrClosed", confCloseSemantics},
		{"SendAfterCloseErrClosed", confSendAfterClose},
		{"CancelWhileBlockedRecv", confCancelRecv},
		{"CancelBeforeRecvDoesNotConsume", confCancelDoesNotConsume},
		{"Backpressure", confBackpressure},
		{"ConcurrentSenders", confConcurrentSenders},
		{"BlobRoundTrip", confBlobRoundTrip},
	}
	for _, tr := range transports {
		for _, tc := range cases {
			t.Run(tr.name+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				tc.run(t, tr.mk)
			})
		}
	}
}

// confOrdering: frames arrive exactly once, in send order.
func confOrdering(t *testing.T, mk pairMaker) {
	pair := mk(t, 0)
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			if err := pair.a.Send(context.Background(), testFrame(i)); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		f, err := pair.b.Recv(context.Background())
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if int(f.Round) != i {
			t.Fatalf("out of order: want round %d, got %d", i, f.Round)
		}
	}
}

// confCloseSemantics: frames sent before Close are drained by the peer,
// then Recv reports ErrClosed — closed-and-drained wins over blocking.
func confCloseSemantics(t *testing.T, mk pairMaker) {
	pair := mk(t, 0)
	const n = 3
	for i := 0; i < n; i++ {
		if err := pair.a.Send(context.Background(), testFrame(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	pair.a.Close()
	for i := 0; i < n; i++ {
		f, err := pair.b.Recv(context.Background())
		if err != nil {
			t.Fatalf("recv %d after close: %v", i, err)
		}
		if int(f.Round) != i {
			t.Fatalf("drain out of order: want %d, got %d", i, f.Round)
		}
	}
	if _, err := pair.b.Recv(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("after drain: want ErrClosed, got %v", err)
	}
}

// confSendAfterClose: Send on a closed connection returns ErrClosed —
// never a panic, never a hang.
func confSendAfterClose(t *testing.T, mk pairMaker) {
	pair := mk(t, 0)
	pair.a.Close()
	// The TCP transport observes local closes immediately; give it no
	// grace — the contract is immediate ErrClosed on the closed end.
	if err := pair.a.Send(context.Background(), testFrame(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: want ErrClosed, got %v", err)
	}
}

// confCancelRecv: a Recv blocked on an empty connection returns
// ctx.Err() when the context fires.
func confCancelRecv(t *testing.T, mk pairMaker) {
	pair := mk(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := pair.b.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled recv: want DeadlineExceeded, got %v", err)
	}
}

// confCancelDoesNotConsume: a cancelled Recv consumes nothing — the
// next Recv still yields every frame in order.
func confCancelDoesNotConsume(t *testing.T, mk pairMaker) {
	pair := mk(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pair.b.Recv(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled recv: want Canceled, got %v", err)
	}
	if err := pair.a.Send(context.Background(), testFrame(7)); err != nil {
		t.Fatal(err)
	}
	f, err := pair.b.Recv(context.Background())
	if err != nil || f.Round != 7 {
		t.Fatalf("after cancelled recv: want round 7, got (%v, %v)", f, err)
	}
}

// confBackpressure: with a receiver that stops draining, Send
// eventually blocks — and a blocked Send honors its context. For the
// in-process transport the bound is the queue capacity; for TCP it is
// the inbox plus the kernel socket buffers, which large frames fill.
func confBackpressure(t *testing.T, mk pairMaker) {
	pair := mk(t, 1)
	big := &Frame{Type: FrameUpdate, Tensors: []*tensor.Tensor{tensor.New(256 << 10)}}
	blocked := false
	for i := 0; i < 256; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		err := pair.a.Send(ctx, big)
		cancel()
		if errors.Is(err, context.DeadlineExceeded) {
			blocked = true
			break
		}
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if !blocked {
		t.Fatal("sender never blocked: no backpressure")
	}
}

// confBlobRoundTrip: telemetry-plane blob frames cross the transport
// byte-identical, interleaved with tensor frames on the same connection.
func confBlobRoundTrip(t *testing.T, mk pairMaker) {
	pair := mk(t, 0)
	frames := []*Frame{
		{Type: FrameClockPing, Replica: 1, Blob: []byte{8, 7, 6, 5, 4, 3, 2, 1}},
		{Type: FrameUpdate, Replica: 1, Round: 3, Tensors: []*tensor.Tensor{
			tensor.FromSlice([]float32{1, 2}, 2),
		}},
		{Type: FrameTelemetry, Replica: 2, Blob: []byte(`{"replica":2}`)},
		{Type: FrameEvent, Replica: 2, Blob: []byte(`[]`)},
		{Type: FrameTrace, Replica: 2},
	}
	go func() {
		for i, f := range frames {
			if err := pair.a.Send(context.Background(), f); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i, want := range frames {
		got, err := pair.b.Recv(context.Background())
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got.Type != want.Type || got.Replica != want.Replica {
			t.Fatalf("frame %d: want %v/%d, got %v/%d", i, want.Type, want.Replica, got.Type, got.Replica)
		}
		if string(got.Blob) != string(want.Blob) {
			t.Fatalf("frame %d blob: want %q, got %q", i, want.Blob, got.Blob)
		}
	}
}

// confConcurrentSenders: frames from concurrent senders on one
// connection all arrive intact (no torn frames, none lost).
func confConcurrentSenders(t *testing.T, mk pairMaker) {
	pair := mk(t, 0)
	const senders, per = 8, 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f := &Frame{Type: FrameUpdate, Replica: uint32(s), Round: uint32(i)}
				if err := pair.a.Send(context.Background(), f); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}(s)
	}
	go func() { wg.Wait(); pair.a.Close() }()
	seen := map[string]bool{}
	for {
		f, err := pair.b.Recv(context.Background())
		if errors.Is(err, ErrClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("%d/%d", f.Replica, f.Round)
		if seen[key] {
			t.Fatalf("frame %s delivered twice", key)
		}
		seen[key] = true
	}
	if len(seen) != senders*per {
		t.Fatalf("got %d of %d frames", len(seen), senders*per)
	}
}
