package net_test

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"avgpipe/internal/core"
	netx "avgpipe/internal/net"
	"avgpipe/internal/nn"
	"avgpipe/internal/obs"
	"avgpipe/internal/tensor"
)

// The topology conformance suite runs one behavioral table — round
// completion, mid-round detach, rejoin re-admission, deadline expiry —
// against every Topology over both transports, each case driven by real
// Averagers so what is conformed is the full submit→disseminate→reduce
// path, not the frame plumbing alone. Every case's oracle is a
// single-process averager fed the identical sequence: whatever fabric
// carries the frames, the N reference copies must land bit-identical to
// the seed's in-memory behavior.

// topoFabric builds the n per-replica (transport, listener) pairs of one
// job and reports every listener's dialable address.
type topoFabric func(t *testing.T, n int) (trs []netx.Transport, lns []netx.Listener, addrs []string)

func inprocFabric(t *testing.T, n int) ([]netx.Transport, []netx.Listener, []string) {
	t.Helper()
	tr := netx.NewInProc(0)
	trs := make([]netx.Transport, n)
	lns := make([]netx.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := tr.Listen(fmt.Sprintf("replica-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		trs[i], lns[i], addrs[i] = tr, ln, ln.Addr()
	}
	return trs, lns, addrs
}

func tcpFabric(t *testing.T, n int) ([]netx.Transport, []netx.Listener, []string) {
	t.Helper()
	trs := make([]netx.Transport, n)
	lns := make([]netx.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tr := netx.NewTCP(obs.NewRegistry())
		ln, err := tr.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		trs[i], lns[i], addrs[i] = tr, ln, ln.Addr()
	}
	return trs, lns, addrs
}

// formFabric forms the n meshes of one job concurrently, as n OS
// processes would.
func formFabric(t *testing.T, fab topoFabric, topo netx.Topology, n int) []*netx.Mesh {
	t.Helper()
	trs, lns, addrs := fab(t, n)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	meshes := make([]*netx.Mesh, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		peers := make(map[int]string)
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = addrs[j]
			}
		}
		wg.Add(1)
		go func(i int, peers map[int]string) {
			defer wg.Done()
			meshes[i], errs[i] = netx.FormTopologyOn(ctx, trs[i], lns[i], topo, i, peers)
		}(i, peers)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, m := range meshes {
			m.Close()
		}
	})
	return meshes
}

// topoHarness is one formed job: n averagers over n meshes, each with
// its own single-tensor parameter set, plus the single-process oracle
// the distributed outcome is compared against.
type topoHarness struct {
	n      int
	avgs   []*core.Averager
	params [][]*nn.Param
	// oracle is a local n-pipeline averager fed the same sequence.
	oracle       *core.Averager
	oracleParams [][]*nn.Param
}

func newTopoHarness(t *testing.T, fab topoFabric, topo netx.Topology, n int, deadline time.Duration) *topoHarness {
	t.Helper()
	meshes := formFabric(t, fab, topo, n)
	h := &topoHarness{n: n}
	h.avgs = make([]*core.Averager, n)
	h.params = make([][]*nn.Param, n)
	h.oracleParams = make([][]*nn.Param, n)
	for p := 0; p < n; p++ {
		h.params[p] = []*nn.Param{nn.NewParam("w", tensor.Zeros(8))}
		h.oracleParams[p] = []*nn.Param{nn.NewParam("w", tensor.Zeros(8))}
		h.avgs[p] = core.NewAveragerObs(n, h.params[p], obs.NewRegistry())
		h.avgs[p].AttachMesh(meshes[p])
		if deadline > 0 {
			h.avgs[p].SetRoundDeadline(deadline)
		}
	}
	h.oracle = core.NewAveragerObs(n, h.oracleParams[0], obs.NewRegistry())
	if deadline > 0 {
		h.oracle.SetRoundDeadline(deadline)
	}
	t.Cleanup(func() {
		for _, a := range h.avgs {
			a.Close()
		}
		h.oracle.Close()
	})
	return h
}

// nudge gives pipeline p's weights a deterministic per-round change on
// both sides of the comparison.
func (h *topoHarness) nudge(p, r int) {
	d := float32(p+1) * 0.01 * float32(r+1)
	h.params[p][0].W.AxpyInPlace(d, tensor.Ones(8))
	h.oracleParams[p][0].W.AxpyInPlace(d, tensor.Ones(8))
}

// checkRefs asserts all n distributed reference copies are bit-identical
// to each other and to the oracle's.
func (h *topoHarness) checkRefs(t *testing.T, label string) {
	t.Helper()
	want := h.oracle.Reference()[0].Data()
	for p := 0; p < h.n; p++ {
		got := h.avgs[p].Reference()[0].Data()
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("%s: replica %d ref[%d] = %v, oracle %v", label, p, i, got[i], want[i])
			}
		}
	}
}

// submitAll has every live replica submit round r concurrently and wait
// for the round to close everywhere; the oracle replays the same round
// inline.
func (h *topoHarness) submitAll(t *testing.T, r int, live func(p int) bool) {
	t.Helper()
	var wg sync.WaitGroup
	for p := 0; p < h.n; p++ {
		if !live(p) {
			continue
		}
		h.nudge(p, r)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if err := h.avgs[p].SubmitContext(context.Background(), p, r, h.params[p]); err != nil {
				t.Errorf("replica %d round %d: %v", p, r, err)
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < h.n; p++ {
		if live(p) {
			h.oracle.Submit(p, r, h.oracleParams[p])
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for p := 0; p < h.n; p++ {
		if err := h.avgs[p].WaitRound(ctx, r); err != nil {
			t.Fatalf("replica %d: round %d never closed: %v", p, r, err)
		}
	}
	if err := h.oracle.WaitRound(ctx, r); err != nil {
		t.Fatalf("oracle: round %d never closed: %v", r, err)
	}
}

// conformanceTopologies is the fabric set the behavioral table runs
// against (n=4: hier resolves to groups of 2 — two leaders).
func conformanceTopologies() map[string]netx.Topology {
	return map[string]netx.Topology{
		"mesh": netx.FullMesh{},
		"ring": netx.Ring{},
		"hier": netx.Hierarchical{},
	}
}

func conformanceFabrics() map[string]topoFabric {
	return map[string]topoFabric{"inproc": inprocFabric, "tcp": tcpFabric}
}

// TestTopologyConformance is the behavioral table: every case runs
// against all three topologies over both transports.
func TestTopologyConformance(t *testing.T) {
	const n = 4
	cases := []struct {
		name string
		run  func(t *testing.T, fab topoFabric, topo netx.Topology)
	}{
		{"RoundCompletes", func(t *testing.T, fab topoFabric, topo netx.Topology) {
			// Three full rounds: every reference copy applies all N deltas
			// in pipeline order and lands bit-identical to the oracle.
			h := newTopoHarness(t, fab, topo, n, 0)
			for r := 0; r < 3; r++ {
				h.submitAll(t, r, func(int) bool { return true })
			}
			h.checkRefs(t, "round-completes")
		}},
		{"DetachMidRound", func(t *testing.T, fab topoFabric, topo netx.Topology) {
			// Replica n-1 detaches while round 0 is open: the round closes
			// over the remaining live set, renormalized to 1/(n-1), on every
			// replica — including the detached one, which still hosts its
			// reference copy.
			h := newTopoHarness(t, fab, topo, n, 0)
			var wg sync.WaitGroup
			for p := 0; p < n-1; p++ {
				h.nudge(p, 0)
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					if err := h.avgs[p].SubmitContext(context.Background(), p, 0, h.params[p]); err != nil {
						t.Errorf("replica %d: %v", p, err)
					}
				}(p)
			}
			wg.Wait()
			h.avgs[n-1].Detach(n - 1)
			for p := 0; p < n-1; p++ {
				h.oracle.Submit(p, 0, h.oracleParams[p])
			}
			h.oracle.Detach(n - 1)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			for p := 0; p < n; p++ {
				if err := h.avgs[p].WaitRound(ctx, 0); err != nil {
					t.Fatalf("replica %d: round 0 never closed after detach: %v", p, err)
				}
			}
			if err := h.oracle.WaitRound(ctx, 0); err != nil {
				t.Fatalf("oracle: %v", err)
			}
			h.checkRefs(t, "detach-mid-round")
			for p := 0; p < n; p++ {
				if h.avgs[p].Live(n - 1) {
					t.Fatalf("replica %d still counts %d live after detach", p, n-1)
				}
			}
		}},
		{"RejoinReadmits", func(t *testing.T, fab topoFabric, topo netx.Topology) {
			// A detached replica rejoins: peers re-admit it from its join
			// round on, and the next round closes over all N again.
			h := newTopoHarness(t, fab, topo, n, 0)
			h.avgs[n-1].Detach(n - 1)
			h.oracle.Detach(n - 1)
			h.submitAll(t, 0, func(p int) bool { return p < n-1 })
			h.avgs[n-1].Rejoin(n-1, h.params[n-1])
			h.oracle.Rejoin(n-1, h.oracleParams[n-1])
			// Wait until every replica has re-admitted n-1 before round 1.
			deadline := time.Now().Add(10 * time.Second)
			for p := 0; p < n; p++ {
				for !h.avgs[p].Live(n - 1) {
					if time.Now().After(deadline) {
						t.Fatalf("replica %d never re-admitted %d", p, n-1)
					}
					time.Sleep(time.Millisecond)
				}
			}
			h.submitAll(t, 1, func(int) bool { return true })
			h.checkRefs(t, "rejoin-readmits")
		}},
		{"DeadlineDiscardsStale", func(t *testing.T, fab topoFabric, topo netx.Topology) {
			// Replica n-1 stays live but silent: the round deadline closes
			// round 0 over the partial set on every replica, and the
			// straggler's late update is discarded — no reference copy
			// moves again.
			h := newTopoHarness(t, fab, topo, n, 400*time.Millisecond)
			h.submitAll(t, 0, func(p int) bool { return p < n-1 })
			h.checkRefs(t, "deadline-partial")
			// The stale update arrives after the round closed.
			h.nudge(n-1, 0)
			if err := h.avgs[n-1].SubmitContext(context.Background(), n-1, 0, h.params[n-1]); err != nil {
				t.Fatal(err)
			}
			h.oracle.Submit(n-1, 0, h.oracleParams[n-1])
			time.Sleep(200 * time.Millisecond) // let the late frame disseminate
			h.checkRefs(t, "deadline-late-discard")
		}},
	}
	for fabName, fab := range conformanceFabrics() {
		for topoName, topo := range conformanceTopologies() {
			for _, tc := range cases {
				t.Run(fmt.Sprintf("%s/%s/%s", fabName, topoName, tc.name), func(t *testing.T) {
					tc.run(t, fab, topo)
				})
			}
		}
	}
}

// TestTopologyConnectionCounts asserts the headline connection scaling
// at N=8: the ring forms exactly N directed connections, hierarchical
// stays O(N), and the mesh pays N(N-1).
func TestTopologyConnectionCounts(t *testing.T) {
	const n = 8
	counts := map[string]int{}
	for name, topo := range conformanceTopologies() {
		meshes := formFabric(t, inprocFabric, topo, n)
		total := 0
		for _, m := range meshes {
			total += len(m.Peers())
		}
		counts[name] = total
	}
	if counts["mesh"] != n*(n-1) {
		t.Errorf("mesh: %d connections, want %d", counts["mesh"], n*(n-1))
	}
	if counts["ring"] != n {
		t.Errorf("ring: %d connections, want %d", counts["ring"], n)
	}
	if counts["hier"] > 3*n {
		t.Errorf("hier: %d connections, want O(N) (≤ %d)", counts["hier"], 3*n)
	}
	if counts["ring"] >= counts["mesh"] || counts["hier"] >= counts["mesh"] {
		t.Errorf("sparse fabrics not sparser than the mesh: %v", counts)
	}
}

// TestFormationNamesMismatchedPeers pins the formation diagnostics: a
// geometry or topology mismatch must name the offending replica ids, not
// just counts.
func TestFormationNamesMismatchedPeers(t *testing.T) {
	t.Run("job-size", func(t *testing.T) {
		// Replica 0 believes n=2; replica 1 believes n=3 and dials 0.
		tr := netx.NewInProc(0)
		ln0, err := tr.Listen("size-0")
		if err != nil {
			t.Fatal(err)
		}
		ln1, err := tr.Listen("size-1")
		if err != nil {
			t.Fatal(err)
		}
		ln2, err := tr.Listen("size-2")
		if err != nil {
			t.Fatal(err)
		}
		defer ln1.Close()
		defer ln2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		go netx.FormTopologyOn(ctx, tr, ln1, netx.FullMesh{}, 1, map[int]string{0: "size-0", 2: "size-2"})
		_, err = netx.FormTopologyOn(ctx, tr, ln0, netx.FullMesh{}, 0, map[int]string{1: "size-1"})
		if err == nil {
			t.Fatal("mismatched job size accepted")
		}
		for _, want := range []string{"replica 1 believes the job has 3 replicas", "replica 0 has 2", "[1]"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error does not name the mismatch (%q missing): %v", want, err)
			}
		}
	})
	t.Run("accept-set", func(t *testing.T) {
		// Replica 0 forms a ring (accepts only its predecessor, 2);
		// replica 1 runs a full mesh and dials everyone — its hello at
		// replica 0 must be refused by name.
		tr := netx.NewInProc(0)
		lns := make([]netx.Listener, 3)
		for i := range lns {
			ln, err := tr.Listen(fmt.Sprintf("as-%d", i))
			if err != nil {
				t.Fatal(err)
			}
			lns[i] = ln
		}
		defer lns[1].Close()
		defer lns[2].Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		go netx.FormTopologyOn(ctx, tr, lns[1], netx.FullMesh{}, 1, map[int]string{0: "as-0", 2: "as-2"})
		_, err := netx.FormTopologyOn(ctx, tr, lns[0], netx.Ring{}, 0, map[int]string{1: "as-1", 2: "as-2"})
		if err == nil {
			t.Fatal("out-of-topology hello accepted")
		}
		for _, want := range []string{"hello from replica 1", "replica 0 only accepts", "[2]", "ring"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error does not name the offender (%q missing): %v", want, err)
			}
		}
	})
	t.Run("topology-fingerprint", func(t *testing.T) {
		// Both replicas of a 2-job run sparse fabrics, but different ones:
		// the group hello cross-check must name both fingerprints.
		tr := netx.NewInProc(0)
		lns := make([]netx.Listener, 2)
		for i := range lns {
			ln, err := tr.Listen(fmt.Sprintf("fp-%d", i))
			if err != nil {
				t.Fatal(err)
			}
			lns[i] = ln
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		go netx.FormTopologyOn(ctx, tr, lns[1], netx.Hierarchical{Group: 2}, 1, map[int]string{0: "fp-0"})
		_, err := netx.FormTopologyOn(ctx, tr, lns[0], netx.Ring{}, 0, map[int]string{1: "fp-1"})
		if err == nil {
			t.Fatal("mismatched topologies accepted")
		}
		for _, want := range []string{"replica 1 runs topology hier", "replica 0 runs ring"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error does not name both fingerprints (%q missing): %v", want, err)
			}
		}
	})
}
