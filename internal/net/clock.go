package net

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"
)

// Clock-offset estimation. Replicas on different hosts do not share a
// clock, so laying their Chrome traces on one timeline needs a per-pair
// offset. One FrameClockPing/FrameClockPong round trip gives the
// classic NTP midpoint estimate: the pinger records send time t1, the
// responder stamps receive time t2 and reply time t3, the pinger
// records arrival t4, and
//
//	offset = ((t2-t1) + (t3-t4)) / 2
//
// is the responder's clock minus the pinger's, exact when the path is
// symmetric and otherwise off by at most half the round-trip time.

// ClockPingFrame builds a ping carrying send timestamp t1 (unix nanos).
func ClockPingFrame(replica int, t1 int64) *Frame {
	blob := make([]byte, 8)
	binary.LittleEndian.PutUint64(blob, uint64(t1))
	return &Frame{Type: FrameClockPing, Replica: uint32(replica), Blob: blob}
}

// ParseClockPing extracts t1 from a ping frame.
func ParseClockPing(f *Frame) (t1 int64, err error) {
	if f.Type != FrameClockPing {
		return 0, fmt.Errorf("net: expected clock-ping, got %v", f.Type)
	}
	if len(f.Blob) != 8 {
		return 0, fmt.Errorf("net: clock-ping blob is %d bytes, want 8", len(f.Blob))
	}
	return int64(binary.LittleEndian.Uint64(f.Blob)), nil
}

// ClockPongFrame builds the answer to a ping: it echoes t1 and adds the
// responder's receive (t2) and reply (t3) timestamps.
func ClockPongFrame(replica int, t1, t2, t3 int64) *Frame {
	blob := make([]byte, 24)
	binary.LittleEndian.PutUint64(blob[0:8], uint64(t1))
	binary.LittleEndian.PutUint64(blob[8:16], uint64(t2))
	binary.LittleEndian.PutUint64(blob[16:24], uint64(t3))
	return &Frame{Type: FrameClockPong, Replica: uint32(replica), Blob: blob}
}

// ParseClockPong extracts t1, t2, t3 from a pong frame.
func ParseClockPong(f *Frame) (t1, t2, t3 int64, err error) {
	if f.Type != FrameClockPong {
		return 0, 0, 0, fmt.Errorf("net: expected clock-pong, got %v", f.Type)
	}
	if len(f.Blob) != 24 {
		return 0, 0, 0, fmt.Errorf("net: clock-pong blob is %d bytes, want 24", len(f.Blob))
	}
	return int64(binary.LittleEndian.Uint64(f.Blob[0:8])),
		int64(binary.LittleEndian.Uint64(f.Blob[8:16])),
		int64(binary.LittleEndian.Uint64(f.Blob[16:24])), nil
}

// AnswerClockPing replies to a received ping frame on c, stamping the
// receive and reply times on the responder's clock.
func AnswerClockPing(ctx context.Context, c Conn, replica int, ping *Frame) error {
	t2 := time.Now().UnixNano()
	t1, err := ParseClockPing(ping)
	if err != nil {
		return err
	}
	return c.Send(ctx, ClockPongFrame(replica, t1, t2, time.Now().UnixNano()))
}

// MeasureClockOffset runs one ping/pong round trip on c and returns the
// peer's clock minus the local clock, plus the observed round-trip
// time. The peer must answer the ping (AnswerClockPing) before sending
// anything else on c.
func MeasureClockOffset(ctx context.Context, c Conn, replica int) (offset, rtt time.Duration, err error) {
	t1 := time.Now().UnixNano()
	if err := c.Send(ctx, ClockPingFrame(replica, t1)); err != nil {
		return 0, 0, fmt.Errorf("net: clock ping: %w", err)
	}
	f, err := c.Recv(ctx)
	if err != nil {
		return 0, 0, fmt.Errorf("net: clock pong: %w", err)
	}
	t4 := time.Now().UnixNano()
	echo, t2, t3, err := ParseClockPong(f)
	if err != nil {
		return 0, 0, err
	}
	if echo != t1 {
		return 0, 0, fmt.Errorf("net: clock pong echoes t1=%d, sent %d", echo, t1)
	}
	offset = time.Duration(((t2 - t1) + (t3 - t4)) / 2)
	return offset, time.Duration(t4 - t1), nil
}
