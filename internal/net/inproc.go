package net

import (
	"context"
	"fmt"
	"sync"

	"avgpipe/internal/comm"
	"avgpipe/internal/obs"
)

// InProc is the in-process Transport: the elastic-averaging message
// queues (comm.Queue) refactored behind the Transport interface.
// Frames move by pointer — no serialization — so a single-process run
// pays nothing for the transport seam. Addresses are arbitrary strings
// scoped to one InProc instance.
type InProc struct {
	// Capacity bounds each direction of every connection (frames
	// buffered before Send blocks). 0 means unbounded: senders never
	// block, the historical queue behavior the averager relies on.
	Capacity int

	mu        sync.Mutex
	listeners map[string]*inprocListener
	autoAddr  int
}

// NewInProc returns an in-process transport whose connections buffer at
// most capacity frames per direction (0 = unbounded).
func NewInProc(capacity int) *InProc {
	return &InProc{Capacity: capacity, listeners: make(map[string]*inprocListener)}
}

func (t *InProc) Name() string { return "inproc" }

// Listen binds addr ("" picks a fresh unique address).
func (t *InProc) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if addr == "" {
		t.autoAddr++
		addr = fmt.Sprintf("inproc-%d", t.autoAddr)
	}
	if _, ok := t.listeners[addr]; ok {
		return nil, fmt.Errorf("net: inproc address %q already bound", addr)
	}
	ln := &inprocListener{tr: t, addr: addr, backlog: comm.NewQueue[Conn]()}
	t.listeners[addr] = ln
	return ln, nil
}

// Dial connects to a listener previously bound on addr.
func (t *InProc) Dial(ctx context.Context, addr string) (Conn, error) {
	t.mu.Lock()
	ln := t.listeners[addr]
	t.mu.Unlock()
	if ln == nil {
		return nil, fmt.Errorf("net: inproc dial %q: no listener", addr)
	}
	client, server := Pipe(t.Capacity)
	c, s := client.(*pipeConn), server.(*pipeConn)
	c.local, c.remote = "inproc-dialer", addr
	s.local, s.remote = addr, "inproc-dialer"
	if err := ln.backlog.SendContext(ctx, server); err != nil {
		if err == comm.ErrClosed {
			return nil, ErrClosed
		}
		return nil, err
	}
	return client, nil
}

type inprocListener struct {
	tr      *InProc
	addr    string
	backlog *comm.Queue[Conn]
}

func (ln *inprocListener) Accept(ctx context.Context) (Conn, error) {
	c, ok, err := ln.backlog.RecvContext(ctx)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

func (ln *inprocListener) Addr() string { return ln.addr }

func (ln *inprocListener) Close() error {
	ln.tr.mu.Lock()
	if ln.tr.listeners[ln.addr] == ln {
		delete(ln.tr.listeners, ln.addr)
	}
	ln.tr.mu.Unlock()
	ln.backlog.Close()
	return nil
}

// Pipe returns the two ends of an in-process connection with no
// listener handshake: what one end Sends the other Recvs. capacity
// bounds each direction (0 = unbounded). The averager's local loopback
// — the refactored §3.2 update queue — is one of these.
func Pipe(capacity int) (Conn, Conn) {
	ab := comm.NewBounded[*Frame](capacity)
	ba := comm.NewBounded[*Frame](capacity)
	a := &pipeConn{send: ab, recv: ba, local: "pipe-a", remote: "pipe-b"}
	b := &pipeConn{send: ba, recv: ab, local: "pipe-b", remote: "pipe-a"}
	return a, b
}

// InstrumentedPipe is Pipe with the forward direction's queue (first
// end sends, second end receives) registered in reg under the given
// name — the direction the averager's update stream flows.
func InstrumentedPipe(capacity int, reg *obs.Registry, name string) (Conn, Conn) {
	a, b := Pipe(capacity)
	a.(*pipeConn).send.Instrument(reg, name)
	return a, b
}

// pipeConn is one end of an in-process connection: a bounded send queue
// towards the peer and the peer's queue to receive from. Its blocked-
// call semantics are exactly comm.Queue's — which is the point: the
// transport contract is defined once and inherited here verbatim.
type pipeConn struct {
	send, recv    *comm.Queue[*Frame]
	local, remote string
}

func (c *pipeConn) Send(ctx context.Context, f *Frame) error {
	if err := c.send.SendContext(ctx, f); err != nil {
		if err == comm.ErrClosed {
			return ErrClosed
		}
		return err
	}
	return nil
}

func (c *pipeConn) Recv(ctx context.Context) (*Frame, error) {
	f, ok, err := c.recv.RecvContext(ctx)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrClosed
	}
	return f, nil
}

// Close closes both directions: the peer drains frames already sent and
// then sees ErrClosed; local Sends and the peer's Sends fail with
// ErrClosed immediately.
func (c *pipeConn) Close() error {
	c.send.Close()
	c.recv.Close()
	return nil
}

func (c *pipeConn) LocalAddr() string  { return c.local }
func (c *pipeConn) RemoteAddr() string { return c.remote }
