package net

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	gonet "net"
	"sync"
	"sync/atomic"
	"time"

	"avgpipe/internal/comm"
	"avgpipe/internal/obs"
)

// TCP is the wire Transport: length-prefixed binary frames (codec.go)
// over TCP. Backpressure is physical — a receiver that stops draining
// its inbox stops reading the socket, the kernel windows fill, and the
// sender's Send blocks — so a slow replica throttles its peers instead
// of buffering unboundedly.
type TCP struct {
	// InboxFrames bounds the decoded frames buffered per connection
	// before the reader stops pulling from the socket (default 64).
	InboxFrames int

	// Observability: wire volume, frame counts, dial latency, and the
	// per-transport high-water encode-buffer size (allocation pressure
	// of the codec).
	bytesSent  *obs.Counter
	bytesRecv  *obs.Counter
	framesSent *obs.Counter
	framesRecv *obs.Counter
	dialSec    *obs.Histogram
	encBufHigh *obs.Gauge

	mu         sync.Mutex
	encBufPeak int
}

const defaultInboxFrames = 64

// NewTCP returns a TCP transport recording metrics into reg (nil =
// obs.Default()).
func NewTCP(reg *obs.Registry) *TCP {
	if reg == nil {
		reg = obs.Default()
	}
	return &TCP{
		InboxFrames: defaultInboxFrames,
		bytesSent: reg.Counter("avgpipe_net_bytes_sent_total",
			"Wire bytes written by the transport.", "transport", "tcp"),
		bytesRecv: reg.Counter("avgpipe_net_bytes_recv_total",
			"Wire bytes read by the transport.", "transport", "tcp"),
		framesSent: reg.Counter("avgpipe_net_frames_sent_total",
			"Frames written by the transport.", "transport", "tcp"),
		framesRecv: reg.Counter("avgpipe_net_frames_recv_total",
			"Frames read by the transport.", "transport", "tcp"),
		dialSec: reg.Histogram("avgpipe_net_dial_seconds",
			"Latency of successful peer dials.", nil, "transport", "tcp"),
		encBufHigh: reg.Gauge("avgpipe_net_codec_buffer_bytes",
			"High-water per-connection encode buffer capacity.", "transport", "tcp"),
	}
}

func (t *TCP) Name() string { return "tcp" }

// Listen binds a TCP address; ":0" or "127.0.0.1:0" picks a free port,
// reported by the listener's Addr.
func (t *TCP) Listen(addr string) (Listener, error) {
	ln, err := gonet.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{tr: t, ln: ln}, nil
}

// Dial connects to addr, honoring ctx for the connection attempt.
func (t *TCP) Dial(ctx context.Context, addr string) (Conn, error) {
	start := time.Now()
	var d gonet.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	t.dialSec.Observe(time.Since(start).Seconds())
	return t.newConn(c), nil
}

type tcpListener struct {
	tr *TCP
	ln gonet.Listener
}

func (l *tcpListener) Accept(ctx context.Context) (Conn, error) {
	// Abort a blocked accept by closing the listener when ctx fires;
	// callers that hit this path are tearing the process down anyway.
	stop := context.AfterFunc(ctx, func() { l.ln.Close() })
	defer stop()
	c, err := l.ln.Accept()
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, gonet.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return l.tr.newConn(c), nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }
func (l *tcpListener) Close() error { return l.ln.Close() }

// tcpConn frames one TCP socket. A dedicated reader goroutine decodes
// frames into a bounded comm.Queue inbox, so Recv inherits the queue's
// blocked-call semantics — the same contract, one implementation — and
// a cancelled Recv can never leave the byte stream torn mid-frame.
type tcpConn struct {
	tr *TCP
	c  gonet.Conn

	inbox *comm.Queue[*Frame]

	wmu    sync.Mutex
	encBuf []byte
	// broken marks a connection whose outbound stream may have been cut
	// inside a frame (a Send cancelled mid-write); no further frame can
	// be framed correctly, so every later Send fails. closed is set by
	// Close without taking wmu, so closing never waits behind a Send
	// blocked on backpressure — it unblocks it instead.
	broken atomic.Bool
	closed atomic.Bool
}

func (t *TCP) newConn(c gonet.Conn) *tcpConn {
	capn := t.InboxFrames
	if capn <= 0 {
		capn = defaultInboxFrames
	}
	tc := &tcpConn{tr: t, c: c, inbox: comm.NewBounded[*Frame](capn)}
	go tc.readLoop()
	return tc
}

// readLoop decodes the socket into the inbox until the stream ends.
// When the inbox is full it parks in SendContext, the socket stops
// being read, and TCP flow control pushes the backpressure to the peer.
func (tc *tcpConn) readLoop() {
	defer tc.inbox.Close()
	br := bufio.NewReaderSize(&countingReader{r: tc.c, n: tc.tr.bytesRecv}, 64<<10)
	for {
		f, err := DecodeFrame(br)
		if err != nil {
			return // EOF, peer reset, or a framing error: stream over
		}
		tc.tr.framesRecv.Inc()
		if tc.inbox.Send(f) != nil {
			return // local side closed while we were decoding
		}
	}
}

type countingReader struct {
	r io.Reader
	n *obs.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(float64(n))
	return n, err
}

func (tc *tcpConn) Send(ctx context.Context, f *Frame) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tc.wmu.Lock()
	defer tc.wmu.Unlock()
	if tc.closed.Load() || tc.broken.Load() {
		return ErrClosed
	}
	buf, err := AppendFrame(tc.encBuf[:0], f)
	if err != nil {
		return err
	}
	tc.encBuf = buf
	if c := cap(buf); c > tc.tr.bufPeak() {
		tc.tr.setBufPeak(c)
	}
	// Clear any deadline a previously-cancelled Send's AfterFunc may
	// have set after that call returned, then arm this call's abort: a
	// context firing mid-write breaks the blocked syscall via the write
	// deadline. A frame cut partway through tears the stream, so the
	// connection is marked broken.
	tc.c.SetWriteDeadline(time.Time{})
	stop := context.AfterFunc(ctx, func() { tc.c.SetWriteDeadline(time.Unix(1, 0)) })
	n, werr := tc.c.Write(buf)
	stop()
	tc.tr.bytesSent.Add(float64(n))
	if werr != nil {
		if n > 0 && n < len(buf) {
			tc.broken.Store(true)
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if tc.closed.Load() || errors.Is(werr, gonet.ErrClosed) {
			return ErrClosed
		}
		return werr
	}
	tc.tr.framesSent.Inc()
	return nil
}

func (tc *tcpConn) Recv(ctx context.Context) (*Frame, error) {
	f, ok, err := tc.inbox.RecvContext(ctx)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrClosed
	}
	return f, nil
}

// Close tears down the socket and the inbox. Closing the inbox (not
// just the socket) matters when the reader goroutine is parked on a
// full inbox: it is not reading the socket, so only the queue close can
// unblock it.
func (tc *tcpConn) Close() error {
	tc.closed.Store(true)
	err := tc.c.Close()
	tc.inbox.Close()
	return err
}

func (tc *tcpConn) LocalAddr() string  { return tc.c.LocalAddr().String() }
func (tc *tcpConn) RemoteAddr() string { return tc.c.RemoteAddr().String() }

func (t *TCP) bufPeak() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.encBufPeak
}

func (t *TCP) setBufPeak(c int) {
	t.mu.Lock()
	if c > t.encBufPeak {
		t.encBufPeak = c
		t.encBufHigh.Set(float64(c))
	}
	t.mu.Unlock()
}

// String renders the transport for logs.
func (t *TCP) String() string { return fmt.Sprintf("tcp(inbox=%d)", t.InboxFrames) }
