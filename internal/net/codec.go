package net

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"avgpipe/internal/tensor"
)

// FrameType discriminates the messages of the elastic-averaging wire
// protocol.
type FrameType uint8

const (
	// FrameHello opens a mesh connection: Replica names the sender and
	// Meta carries the total replica count, so a mis-assembled job
	// fails at handshake instead of mid-round.
	FrameHello FrameType = iota + 1
	// FrameUpdate carries one replica's parameter deltas for one
	// averaging round (§3.2 step ❸) in Tensors.
	FrameUpdate
	// FrameDetach announces that Replica left the averaging set at
	// Round (crash or clean shutdown); peers renormalize without it.
	FrameDetach
	// FrameRejoin announces that Replica re-entered the averaging set
	// at Round after reseeding itself from its reference copy.
	FrameRejoin
	// FrameClockPing opens one round-trip clock measurement: the blob
	// carries the sender's send timestamp t1 (8 bytes, unix nanos LE).
	FrameClockPing
	// FrameClockPong answers a ping: the blob echoes t1 and adds the
	// responder's receive/reply timestamps t2, t3 (24 bytes total), from
	// which the pinger computes the round-trip-midpoint clock offset.
	FrameClockPong
	// FrameTelemetry carries one replica's periodic metric snapshot
	// (JSON, see obs/collect) to a telemetry collector.
	FrameTelemetry
	// FrameEvent carries a batch of structured health events (JSON
	// array of obs.Event) to a telemetry collector.
	FrameEvent
	// FrameTrace carries a batch of Chrome-trace events (JSON array of
	// obs.TraceEvent) to a telemetry collector for cross-replica merge.
	FrameTrace
	// FrameRefRequest asks a peer for its current reference-model state
	// so a restarted replica can rejoin round-aligned: Replica names the
	// requester. Answered with a FrameRefState on the reverse direction
	// of the pair.
	FrameRefRequest
	// FrameRefState answers a ref request: Tensors carry the responder's
	// reference weights and Round the next averaging round the responder
	// expects to close, which becomes the rejoiner's resume round.
	FrameRefState
	// FrameSnapshot publishes the reference model to an inference tier
	// (internal/serve): Tensors carry the full reference weights, Round
	// the training round they were averaged at, and Meta the tensor
	// count the sender believes the model has — a cheap geometry
	// cross-check before the receiver walks the payload.
	FrameSnapshot
	// FrameGroupHello follows the hello on non-mesh topologies: its blob
	// carries the sender's topology fingerprint and supported-codec mask
	// (see GroupHello), so a topology or compression mis-configuration
	// fails at handshake instead of stranding frames mid-round.
	FrameGroupHello
	// FrameUpdateQ8 is FrameUpdate with the deltas int8-linear-quantized
	// (see compress.go): the blob is a PackedDeltas encoding, Replica
	// still names the originating pipeline and Round the averaging
	// round, so compressed and exact updates mix within one round.
	FrameUpdateQ8
	// FrameUpdateQ16 is FrameUpdate with int16-linear-quantized deltas.
	FrameUpdateQ16
	// FrameUpdateTopK is FrameUpdate carrying only the k
	// largest-magnitude delta coefficients per tensor (index/value
	// pairs), the sender accumulating the dropped remainder as
	// error-feedback residual.
	FrameUpdateTopK
	frameTypeEnd
)

// blobPayload reports whether t's payload is an opaque byte blob rather
// than the tensor block. Blob frames skip the tensor framing entirely:
// the payload IS the blob, so the encoding stays trivially canonical.
func (t FrameType) blobPayload() bool {
	return (t >= FrameClockPing && t <= FrameTrace) ||
		(t >= FrameGroupHello && t <= FrameUpdateTopK)
}

// String names the frame type for logs and test failures.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameUpdate:
		return "update"
	case FrameDetach:
		return "detach"
	case FrameRejoin:
		return "rejoin"
	case FrameClockPing:
		return "clock-ping"
	case FrameClockPong:
		return "clock-pong"
	case FrameTelemetry:
		return "telemetry"
	case FrameEvent:
		return "event"
	case FrameTrace:
		return "trace"
	case FrameRefRequest:
		return "ref-request"
	case FrameRefState:
		return "ref-state"
	case FrameSnapshot:
		return "snapshot"
	case FrameGroupHello:
		return "group-hello"
	case FrameUpdateQ8:
		return "update-q8"
	case FrameUpdateQ16:
		return "update-q16"
	case FrameUpdateTopK:
		return "update-topk"
	default:
		return fmt.Sprintf("frametype(%d)", uint8(t))
	}
}

// Frame is one wire message. Replica and Round locate it in the
// elastic-averaging protocol; Meta is per-type scalar payload (the
// replica count for FrameHello, 0 otherwise); Tensors is the parameter
// payload (deltas for FrameUpdate, empty for control frames). Blob is
// the opaque payload of the telemetry frame types (clock ping/pong,
// telemetry, event, trace) and must be nil on tensor frames, just as
// Tensors must be empty on blob frames.
type Frame struct {
	Type    FrameType
	Replica uint32
	Round   uint32
	Meta    uint32
	Tensors []*tensor.Tensor
	Blob    []byte
}

// Wire format (all integers little-endian):
//
//	offset size field
//	0      4    magic "AVPW"
//	4      1    version (1)
//	5      1    frame type
//	6      2    reserved, must be zero
//	8      4    replica
//	12     4    round
//	16     4    meta
//	20     4    payload length P
//	24     P    payload — tensor frames (types 1..4, 10..12): u32 tensor
//	            count, then per tensor u8 ndims, ndims×u32 dims,
//	            prod(dims)×f32 data (IEEE bits); blob frames (types
//	            5..9, 13..16): P raw bytes, verbatim (compressed-update
//	            blobs carry their own canonical PackedDeltas layout,
//	            validated one layer up — see compress.go)
//
// The encoding is canonical: for every byte string that decodes, re-
// encoding the decoded frame reproduces the bytes exactly (the fuzz
// target enforces this), so frames can be compared and deduplicated by
// their encoding.
const (
	headerSize   = 24
	codecVersion = 1

	// Decode limits: a hostile or corrupt length field must not drive
	// allocation. maxFramePayload bounds one frame (64 MiB covers the
	// largest workload's full parameter set with wide margin);
	// maxTensors and maxDims bound the per-frame structure.
	maxFramePayload = 64 << 20
	maxTensors      = 1 << 16
	maxDims         = 8
)

var magic = [4]byte{'A', 'V', 'P', 'W'}

// encodedSize returns the full wire size of f, or an error if f is not
// encodable (unknown type, oversized structure).
func encodedSize(f *Frame) (int, error) {
	if f.Type < FrameHello || f.Type >= frameTypeEnd {
		return 0, fmt.Errorf("net: cannot encode frame type %d", f.Type)
	}
	if f.Type.blobPayload() {
		if len(f.Tensors) > 0 {
			return 0, fmt.Errorf("net: %v frame cannot carry tensors", f.Type)
		}
		if len(f.Blob) > maxFramePayload {
			return 0, fmt.Errorf("net: frame payload %d bytes exceeds max %d", len(f.Blob), maxFramePayload)
		}
		return headerSize + len(f.Blob), nil
	}
	if f.Blob != nil {
		return 0, fmt.Errorf("net: %v frame cannot carry a blob", f.Type)
	}
	if len(f.Tensors) > maxTensors {
		return 0, fmt.Errorf("net: frame has %d tensors (max %d)", len(f.Tensors), maxTensors)
	}
	n := headerSize + 4
	for i, t := range f.Tensors {
		if t == nil {
			return 0, fmt.Errorf("net: tensor %d is nil", i)
		}
		if t.Dims() > maxDims {
			return 0, fmt.Errorf("net: tensor %d has %d dims (max %d)", i, t.Dims(), maxDims)
		}
		n += 1 + 4*t.Dims() + 4*t.Size()
	}
	if n-headerSize > maxFramePayload {
		return 0, fmt.Errorf("net: frame payload %d bytes exceeds max %d", n-headerSize, maxFramePayload)
	}
	return n, nil
}

// FrameWireSize reports the canonical encoded size of f in bytes — the
// cost one delivery of f puts on the wire. The averager's bytes-on-wire
// metric uses it, so compression savings are visible even when the
// transport underneath is an in-process pipe.
func FrameWireSize(f *Frame) (int, error) { return encodedSize(f) }

// AppendFrame appends f's canonical encoding to dst and returns the
// extended slice.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	size, err := encodedSize(f)
	if err != nil {
		return dst, err
	}
	base := len(dst)
	if cap(dst)-base < size {
		grown := make([]byte, base, base+size)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, magic[:]...)
	dst = append(dst, codecVersion, byte(f.Type), 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, f.Replica)
	dst = binary.LittleEndian.AppendUint32(dst, f.Round)
	dst = binary.LittleEndian.AppendUint32(dst, f.Meta)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(size-headerSize))
	if f.Type.blobPayload() {
		return append(dst, f.Blob...), nil
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Tensors)))
	for _, t := range f.Tensors {
		dst = append(dst, byte(t.Dims()))
		for _, d := range t.Shape() {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
		}
		for _, v := range t.Data() {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
	}
	return dst, nil
}

// EncodeFrame writes f's canonical encoding to w.
func EncodeFrame(w io.Writer, f *Frame) error {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// DecodeFrameBytes decodes one frame from the front of b, returning the
// frame and the number of bytes consumed. It never panics: any
// malformed input — bad magic, unknown version or type, non-zero
// reserved bits, a length field disagreeing with the structure it
// frames, dimension/data mismatches — is an error.
func DecodeFrameBytes(b []byte) (*Frame, int, error) {
	if len(b) < headerSize {
		return nil, 0, fmt.Errorf("net: short frame header: %d bytes", len(b))
	}
	if [4]byte(b[0:4]) != magic {
		return nil, 0, fmt.Errorf("net: bad magic %q", b[0:4])
	}
	if b[4] != codecVersion {
		return nil, 0, fmt.Errorf("net: unknown wire version %d", b[4])
	}
	typ := FrameType(b[5])
	if typ < FrameHello || typ >= frameTypeEnd {
		return nil, 0, fmt.Errorf("net: unknown frame type %d", b[5])
	}
	if b[6] != 0 || b[7] != 0 {
		return nil, 0, fmt.Errorf("net: non-zero reserved bytes %x", b[6:8])
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[20:24]))
	if payloadLen > maxFramePayload {
		return nil, 0, fmt.Errorf("net: payload length %d exceeds max %d", payloadLen, maxFramePayload)
	}
	if len(b) < headerSize+payloadLen {
		return nil, 0, fmt.Errorf("net: truncated frame: have %d of %d payload bytes",
			len(b)-headerSize, payloadLen)
	}
	f := &Frame{
		Type:    typ,
		Replica: binary.LittleEndian.Uint32(b[8:12]),
		Round:   binary.LittleEndian.Uint32(b[12:16]),
		Meta:    binary.LittleEndian.Uint32(b[16:20]),
	}
	if err := decodePayload(f, b[headerSize:headerSize+payloadLen]); err != nil {
		return nil, 0, err
	}
	return f, headerSize + payloadLen, nil
}

// decodePayload parses the payload into f. Blob frames copy the bytes
// verbatim; tensor frames parse the tensor block, which must be
// consumed exactly — trailing bytes inside the declared length are an
// error, which is what makes the encoding canonical.
func decodePayload(f *Frame, p []byte) error {
	if f.Type.blobPayload() {
		if len(p) > 0 {
			f.Blob = append([]byte(nil), p...)
		}
		return nil
	}
	if len(p) < 4 {
		return fmt.Errorf("net: payload too short for tensor count: %d bytes", len(p))
	}
	n := int(binary.LittleEndian.Uint32(p[0:4]))
	if n > maxTensors {
		return fmt.Errorf("net: %d tensors exceeds max %d", n, maxTensors)
	}
	p = p[4:]
	if n > 0 {
		f.Tensors = make([]*tensor.Tensor, 0, n)
	}
	for i := 0; i < n; i++ {
		if len(p) < 1 {
			return fmt.Errorf("net: tensor %d: missing dim count", i)
		}
		ndims := int(p[0])
		p = p[1:]
		if ndims > maxDims {
			return fmt.Errorf("net: tensor %d: %d dims exceeds max %d", i, ndims, maxDims)
		}
		if len(p) < 4*ndims {
			return fmt.Errorf("net: tensor %d: truncated dims", i)
		}
		dims := make([]int, ndims)
		elems := 1
		for d := 0; d < ndims; d++ {
			dims[d] = int(binary.LittleEndian.Uint32(p[4*d : 4*d+4]))
			// Payload length already bounds total data; this guard only
			// prevents the product from overflowing before that check.
			if dims[d] > maxFramePayload {
				return fmt.Errorf("net: tensor %d: dim %d out of range", i, dims[d])
			}
			elems *= dims[d]
			if elems > maxFramePayload {
				return fmt.Errorf("net: tensor %d: element count overflows frame", i)
			}
		}
		p = p[4*ndims:]
		if len(p) < 4*elems {
			return fmt.Errorf("net: tensor %d: truncated data (%d of %d bytes)", i, len(p), 4*elems)
		}
		data := make([]float32, elems)
		for e := range data {
			data[e] = math.Float32frombits(binary.LittleEndian.Uint32(p[4*e : 4*e+4]))
		}
		p = p[4*elems:]
		f.Tensors = append(f.Tensors, tensor.FromSlice(data, dims...))
	}
	if len(p) != 0 {
		return fmt.Errorf("net: %d trailing payload bytes", len(p))
	}
	return nil
}

// DecodeFrame reads exactly one frame from r. io.EOF at a frame
// boundary is returned as io.EOF; a stream that ends inside a frame is
// io.ErrUnexpectedEOF.
func DecodeFrame(r io.Reader) (*Frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	payloadLen := int(binary.LittleEndian.Uint32(hdr[20:24]))
	if payloadLen > maxFramePayload {
		return nil, fmt.Errorf("net: payload length %d exceeds max %d", payloadLen, maxFramePayload)
	}
	buf := make([]byte, headerSize+payloadLen)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[headerSize:]); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	f, _, err := DecodeFrameBytes(buf)
	return f, err
}
