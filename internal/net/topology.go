package net

import (
	"fmt"
	"sort"

	"avgpipe/internal/cluster"
)

// Topology shapes an averaging fabric behind the Transport seam: which
// replica pairs hold connections, where a replica's own frames go
// first, and how intermediate replicas relay them so every broadcast
// still reaches all N reference copies.
//
// The contract every implementation (and the conformance suite) holds:
//
//   - Connections: replica p dials exactly Dials(p, n); the accept side
//     is its mirror image, so the directed connection graph is a pure
//     function of (topology, n) and formation stays leaderless.
//   - Dissemination: a frame originated by replica o is sent to
//     FirstHops(o, n); every receiver forwards it to Relays(self, n, o,
//     from). Together these must deliver the frame to every replica
//     except o exactly once — no duplicates (the averager's per-round
//     accumulators would tolerate them, but the wire should not pay for
//     them) and no loops.
//   - Routing: a frame directed at one replica travels hop-by-hop along
//     NextHopTo until it arrives; every hop must be in the sender's
//     dial set.
//
// Deltas keep their origin identity end to end (Frame.Replica), so the
// averager's deterministic pipeline-order reduction — and with it
// detach/rejoin renormalization and bitwise reproducibility — is
// untouched by the choice of topology; only the frame flow changes.
type Topology interface {
	// Name is the topology's wire name ("mesh", "ring", "hier"), carried
	// in the group hello so mis-configured jobs fail at handshake.
	Name() string
	// Validate rejects topology parameters that cannot address an
	// n-replica job.
	Validate(n int) error
	// Dials returns the peer ids replica self opens outbound
	// connections to, in ascending order.
	Dials(self, n int) []int
	// FirstHops returns the peers replica self sends its own originated
	// frames to (a subset of Dials).
	FirstHops(self, n int) []int
	// Relays returns the peers self forwards a frame to, given the
	// frame's origin replica and the peer it arrived from (a subset of
	// Dials; empty for frames self must not relay).
	Relays(self, n, origin, from int) []int
	// NextHopTo returns the peer a frame directed at replica to should
	// be sent through (to itself when directly connected).
	NextHopTo(self, n, to int) (int, error)
}

// AcceptsFrom returns the peer ids replica self accepts inbound
// connections from under t: the mirror image of the dial sets. The
// formation handshake sizes its accept loop with this.
func AcceptsFrom(t Topology, self, n int) []int {
	var ids []int
	for q := 0; q < n; q++ {
		if q == self {
			continue
		}
		for _, d := range t.Dials(q, n) {
			if d == self {
				ids = append(ids, q)
				break
			}
		}
	}
	return ids
}

// TopologyByName resolves a -topology flag value. group is the
// hierarchical group size (0 = ceil(sqrt(n)) at formation).
func TopologyByName(name string, group int) (Topology, error) {
	switch name {
	case "", "mesh", "full":
		return FullMesh{}, nil
	case "ring":
		return Ring{}, nil
	case "hier", "hierarchical":
		return Hierarchical{Group: group}, nil
	default:
		return nil, fmt.Errorf("net: unknown topology %q (want mesh, ring, or hier)", name)
	}
}

// FullMesh is the reference topology: every ordered replica pair owns a
// connection and every broadcast is sent directly to all peers, with no
// relaying. O(N²) connections, one hop everywhere — the seed behavior,
// extracted.
type FullMesh struct{}

func (FullMesh) Name() string         { return "mesh" }
func (FullMesh) Validate(n int) error { return nil }
func (FullMesh) Dials(self, n int) []int {
	ids := make([]int, 0, n-1)
	for q := 0; q < n; q++ {
		if q != self {
			ids = append(ids, q)
		}
	}
	return ids
}
func (m FullMesh) FirstHops(self, n int) []int          { return m.Dials(self, n) }
func (FullMesh) Relays(self, n, origin, from int) []int { return nil }
func (FullMesh) NextHopTo(self, n, to int) (int, error) { return to, nil }

// Ring connects replica r to its successor (r+1) mod n only: O(N)
// connections. A frame travels around the ring — the origin sends to
// its successor, every replica relays its predecessor's frames onward,
// and the frame stops at the replica before its origin. Per round each
// link carries the N−1 foreign updates, so bandwidth per link is flat
// in N while the connection count drops from O(N²) to N.
type Ring struct{}

func (Ring) Name() string { return "ring" }

func (Ring) Validate(n int) error {
	if n < 1 {
		return fmt.Errorf("net: ring needs at least 1 replica, got %d", n)
	}
	return nil
}

func (Ring) Dials(self, n int) []int {
	if n < 2 {
		return nil
	}
	return []int{(self + 1) % n}
}

func (r Ring) FirstHops(self, n int) []int { return r.Dials(self, n) }

func (Ring) Relays(self, n, origin, from int) []int {
	if n < 2 || origin == self {
		return nil
	}
	// Frames only ever arrive from the predecessor; relay onward unless
	// the successor is where the frame began.
	if from != (self+n-1)%n {
		return nil
	}
	next := (self + 1) % n
	if next == origin {
		return nil
	}
	return []int{next}
}

func (Ring) NextHopTo(self, n, to int) (int, error) {
	if n < 2 || to == self {
		return 0, fmt.Errorf("net: ring has no route from %d to %d", self, to)
	}
	return (self + 1) % n, nil
}

// Hierarchical is two-level averaging: contiguous groups of Group
// replicas, the lowest id of each group the leader (cluster.LeaderOf).
// Members connect only to their leader; leaders connect to their
// members and to every other leader. A member's update flows up to its
// leader, across the leader clique, and back down to every other
// member — two hops up, one across, one down — giving O(N + (N/g)²)
// connections, which is O(N) at the default g = ceil(sqrt N).
type Hierarchical struct {
	// Group is the group size (member count per leader, leader
	// included); 0 selects cluster.DefaultGroupSize(n).
	Group int
}

func (Hierarchical) Name() string { return "hier" }

func (h Hierarchical) Validate(n int) error {
	if h.Group < 0 {
		return fmt.Errorf("net: hierarchical group size %d is negative", h.Group)
	}
	if h.Group > 0 && h.Group > n {
		return fmt.Errorf("net: hierarchical group size %d exceeds job size %d", h.Group, n)
	}
	return nil
}

// size resolves the effective group size for an n-replica job.
func (h Hierarchical) size(n int) int {
	if h.Group > 0 {
		return h.Group
	}
	return cluster.DefaultGroupSize(n)
}

func (h Hierarchical) Dials(self, n int) []int {
	g := h.size(n)
	if !cluster.IsLeader(self, g) {
		return []int{cluster.LeaderOf(self, g)}
	}
	ids := cluster.Members(self, n, g)
	for _, l := range cluster.Leaders(n, g) {
		if l != self {
			ids = append(ids, l)
		}
	}
	sort.Ints(ids)
	return ids
}

func (h Hierarchical) FirstHops(self, n int) []int { return h.Dials(self, n) }

func (h Hierarchical) Relays(self, n, origin, from int) []int {
	g := h.size(n)
	if origin == self || !cluster.IsLeader(self, g) {
		return nil // members never relay
	}
	if cluster.LeaderOf(origin, g) == self {
		// One of our members originated this frame (it arrives directly
		// from them): fan it across to the other leaders and down to the
		// rest of our group.
		if from != origin {
			return nil
		}
		ids := make([]int, 0, g)
		for _, m := range cluster.Members(self, n, g) {
			if m != origin {
				ids = append(ids, m)
			}
		}
		for _, l := range cluster.Leaders(n, g) {
			if l != self {
				ids = append(ids, l)
			}
		}
		sort.Ints(ids)
		return ids
	}
	// A foreign group's frame, delivered by that group's leader: fan it
	// down to our members only.
	if from != cluster.LeaderOf(origin, g) {
		return nil
	}
	return cluster.Members(self, n, g)
}

func (h Hierarchical) NextHopTo(self, n, to int) (int, error) {
	if to == self {
		return 0, fmt.Errorf("net: no route from %d to itself", self)
	}
	g := h.size(n)
	if !cluster.IsLeader(self, g) {
		return cluster.LeaderOf(self, g), nil
	}
	if cluster.LeaderOf(to, g) == self || cluster.IsLeader(to, g) {
		return to, nil // own member or a fellow leader: direct
	}
	return cluster.LeaderOf(to, g), nil
}
