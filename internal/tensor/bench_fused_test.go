package tensor_test

import (
	"testing"

	"avgpipe/internal/tensor"
)

// Fused-op benchmarks live in their own file because the fused API does
// not exist in pre-overhaul trees (the before-numbers worktree deletes
// this file; see README "Benchmarking & re-baselining").

func BenchmarkKernelMatMulBiasAct(b *testing.B) {
	rng := tensor.NewRNG(5)
	a := rng.Uniform(-1, 1, 32, 512)
	w := rng.Uniform(-1, 1, 512, 512)
	bias := rng.Uniform(-1, 1, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := tensor.MatMulBiasAct(a, w, bias, tensor.ActTanh)
		out.Release()
	}
}
