package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// smallTensor draws a random tensor with bounded shape and values so that
// float32 round-off stays well inside the comparison tolerances.
func smallTensor(r *rand.Rand, rows, cols int) *Tensor {
	t := New(rows, cols)
	for i := range t.data {
		t.data[i] = float32(r.NormFloat64())
	}
	return t
}

func tensorsClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.data {
		if math.Abs(float64(a.data[i]-b.data[i])) > tol {
			return false
		}
	}
	return true
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 50,
		Values:   nil,
	}
}

// Property: addition is commutative and associative (within float tolerance).
func TestPropAddCommutativeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		a, b, c := smallTensor(r, rows, cols), smallTensor(r, rows, cols), smallTensor(r, rows, cols)
		if !tensorsClose(Add(a, b), Add(b, a), 1e-6) {
			return false
		}
		return tensorsClose(Add(Add(a, b), c), Add(a, Add(b, c)), 1e-5)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: a - a = 0 and a + (-a) = 0.
func TestPropAdditiveInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := smallTensor(r, 1+r.Intn(8), 1+r.Intn(8))
		zero := New(a.shape...)
		return tensorsClose(Sub(a, a), zero, 0) && tensorsClose(Add(a, Neg(a)), zero, 0)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: scaling distributes over addition: s*(a+b) = s*a + s*b.
func TestPropScaleDistributes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		a, b := smallTensor(r, rows, cols), smallTensor(r, rows, cols)
		s := float32(r.NormFloat64())
		return tensorsClose(Scale(s, Add(a, b)), Add(Scale(s, a), Scale(s, b)), 1e-4)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: MatMul distributes over addition: A(B+C) = AB + AC.
func TestPropMatMulDistributes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := smallTensor(r, m, k)
		b := smallTensor(r, k, n)
		c := smallTensor(r, k, n)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return tensorsClose(left, right, 1e-4)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestPropTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := smallTensor(r, m, k)
		b := smallTensor(r, k, n)
		left := Transpose2D(MatMul(a, b))
		right := MatMul(Transpose2D(b), Transpose2D(a))
		return tensorsClose(left, right, 1e-4)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: double transpose is the identity.
func TestPropTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := smallTensor(r, 1+r.Intn(8), 1+r.Intn(8))
		return tensorsClose(Transpose2D(Transpose2D(a)), a, 0)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: softmax rows are positive and sum to one, and argmax is
// preserved from the logits.
func TestPropSoftmaxSimplex(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(6), 2+r.Intn(6)
		x := smallTensor(r, rows, cols)
		s := SoftmaxRows(x)
		am, as := ArgMaxRows(x), ArgMaxRows(s)
		for i := 0; i < rows; i++ {
			var sum float64
			for j := 0; j < cols; j++ {
				v := float64(s.At(i, j))
				if v <= 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-5 {
				return false
			}
			if am[i] != as[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: Gather then ScatterAdd of a one-hot-selected gradient
// accumulates exactly the selection counts.
func TestPropGatherScatterAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vocab, d, n := 2+r.Intn(8), 1+r.Intn(5), 1+r.Intn(10)
		table := smallTensor(r, vocab, d)
		idx := make([]int, n)
		counts := make([]int, vocab)
		for i := range idx {
			idx[i] = r.Intn(vocab)
			counts[idx[i]]++
		}
		// <Gather(T, idx), G> must equal <T, ScatterAdd(idx, G)> — the
		// adjoint property that makes embedding backward correct.
		g := smallTensor(r, n, d)
		lhs := Dot(Gather(table, idx), g)
		adj := New(vocab, d)
		ScatterAddRows(adj, idx, g)
		rhs := Dot(table, adj)
		return math.Abs(lhs-rhs) <= 1e-3*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: SumRows(x) equals MatVec(xᵀ, ones).
func TestPropSumRowsMatchesMatVec(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		x := smallTensor(r, rows, cols)
		viaMatVec := MatVec(Transpose2D(x), Ones(rows))
		return tensorsClose(SumRows(x), viaMatVec, 1e-4)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: Axpy matches its definitional expansion.
func TestPropAxpyDefinition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		a, b := smallTensor(r, rows, cols), smallTensor(r, rows, cols)
		alpha := float32(r.NormFloat64())
		want := Add(a, Scale(alpha, b))
		got := a.Clone().AxpyInPlace(alpha, b)
		return tensorsClose(got, want, 1e-5)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
