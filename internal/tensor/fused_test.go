package tensor_test

import (
	"testing"

	"avgpipe/internal/autograd"
	"avgpipe/internal/tensor"
)

// splitCols copies column range [lo,hi) of a 2-D tensor (test helper
// mirroring the composed LSTM implementation the fused kernels replaced).
func splitCols(t *tensor.Tensor, lo, hi int) *tensor.Tensor {
	rows, cols := t.Dim(0), t.Dim(1)
	w := hi - lo
	out := tensor.New(rows, w)
	for r := 0; r < rows; r++ {
		copy(out.Data()[r*w:(r+1)*w], t.Data()[r*cols+lo:r*cols+hi])
	}
	return out
}

func applyActComposed(t *tensor.Tensor, act tensor.Act) *tensor.Tensor {
	switch act {
	case tensor.ActReLU:
		return tensor.ReLU(t)
	case tensor.ActTanh:
		return tensor.Tanh(t)
	case tensor.ActSigmoid:
		return tensor.Sigmoid(t)
	default:
		return t
	}
}

// TestMatMulBiasActMatchesComposed: the fused forward must be
// bit-identical to act(AddRowVector(MatMul(a,b), bias)) for every
// activation, including shapes off the unroll boundary.
func TestMatMulBiasActMatchesComposed(t *testing.T) {
	rng := tensor.NewRNG(7)
	for _, sh := range []struct{ m, k, n int }{{4, 8, 8}, {3, 65, 17}, {1, 1, 1}, {9, 64, 30}} {
		a := rng.Uniform(-1, 1, sh.m, sh.k)
		b := rng.Uniform(-1, 1, sh.k, sh.n)
		bias := rng.Uniform(-1, 1, sh.n)
		for _, act := range []tensor.Act{tensor.ActIdentity, tensor.ActReLU, tensor.ActTanh, tensor.ActSigmoid} {
			got := tensor.MatMulBiasAct(a, b, bias, act)
			want := applyActComposed(tensor.AddRowVector(tensor.MatMul(a, b), bias), act)
			bitEqual(t, "MatMulBiasAct", got, want)
		}
		// nil bias skips the broadcast entirely.
		bitEqual(t, "MatMulBiasAct(nil bias)",
			tensor.MatMulBiasAct(a, b, nil, tensor.ActIdentity), tensor.MatMul(a, b))
	}
}

// TestAccumulateKernelsMatchComposed: the fused accumulates must be
// bit-identical to the add-a-fresh-product composition even when dst is
// non-zero (the micro-batch ≥ 2 case that forbids accumulating in place).
func TestAccumulateKernelsMatchComposed(t *testing.T) {
	rng := tensor.NewRNG(8)
	x := rng.Uniform(-1, 1, 6, 10)
	dy := rng.Uniform(-1, 1, 6, 15)

	dstA := rng.Uniform(-1, 1, 10, 15)
	wantA := dstA.Clone()
	tensor.MatMulTransAAcc(dstA, x, dy)
	wantA.AddInPlace(tensor.MatMulTransA(x, dy))
	bitEqual(t, "MatMulTransAAcc", dstA, wantA)

	dstB := rng.Uniform(-1, 1, 15)
	wantB := dstB.Clone()
	tensor.SumRowsAcc(dstB, dy)
	wantB.AddInPlace(tensor.SumRows(dy))
	bitEqual(t, "SumRowsAcc", dstB, wantB)

	w := rng.Uniform(-1, 1, 10, 15)
	into := tensor.New(6, 10)
	tensor.MatMulTransBInto(into, dy, w)
	bitEqual(t, "MatMulTransBInto", into, tensor.MatMulTransB(dy, w))
}

// composedLSTMCell replicates the pre-fusion op chain exactly (the old
// LSTM.Forward step body) for bitwise comparison.
func composedLSTMCell(xt, h, c, wx, wh, bias *tensor.Tensor) (i, f, g, o, cNew, tc, hNew *tensor.Tensor) {
	hd := h.Dim(1)
	z := tensor.AddRowVector(tensor.Add(tensor.MatMul(xt, wx), tensor.MatMul(h, wh)), bias)
	i = tensor.Sigmoid(splitCols(z, 0, hd))
	f = tensor.Sigmoid(splitCols(z, hd, 2*hd))
	g = tensor.Tanh(splitCols(z, 2*hd, 3*hd))
	o = tensor.Sigmoid(splitCols(z, 3*hd, 4*hd))
	cNew = tensor.Add(tensor.Mul(f, c), tensor.Mul(i, g))
	tc = tensor.Tanh(cNew)
	hNew = tensor.Mul(o, tc)
	return
}

func TestLSTMCellForwardMatchesComposed(t *testing.T) {
	rng := tensor.NewRNG(9)
	batch, in, hd := 5, 7, 11
	xt := rng.Uniform(-1, 1, batch, in)
	h := rng.Uniform(-1, 1, batch, hd)
	c := rng.Uniform(-1, 1, batch, hd)
	wx := rng.Uniform(-1, 1, in, 4*hd)
	wh := rng.Uniform(-1, 1, hd, 4*hd)
	bias := rng.Uniform(-1, 1, 4*hd)

	gates := tensor.LSTMCellForward(xt, h, c, wx, wh, bias)
	i, f, g, o, cNew, tc, hNew := composedLSTMCell(xt, h, c, wx, wh, bias)
	bitEqual(t, "LSTM i", gates.I, i)
	bitEqual(t, "LSTM f", gates.F, f)
	bitEqual(t, "LSTM g", gates.G, g)
	bitEqual(t, "LSTM o", gates.O, o)
	bitEqual(t, "LSTM c", gates.C, cNew)
	bitEqual(t, "LSTM tanhC", gates.TanhC, tc)
	bitEqual(t, "LSTM h", gates.H, hNew)
	gates.Release()
}

func TestLSTMCellBackwardMatchesComposed(t *testing.T) {
	rng := tensor.NewRNG(10)
	batch, in, hd := 4, 6, 9
	xt := rng.Uniform(-1, 1, batch, in)
	h := rng.Uniform(-1, 1, batch, hd)
	cPrev := rng.Uniform(-1, 1, batch, hd)
	wx := rng.Uniform(-1, 1, in, 4*hd)
	wh := rng.Uniform(-1, 1, hd, 4*hd)
	bias := rng.Uniform(-1, 1, 4*hd)
	dyt := rng.Uniform(-1, 1, batch, hd)
	dhNext := rng.Uniform(-1, 1, batch, hd)
	dcNext := rng.Uniform(-1, 1, batch, hd)

	gates := tensor.LSTMCellForward(xt, h, cPrev, wx, wh, bias)
	dz, dcPrev := tensor.LSTMCellBackward(dyt, dhNext, dcNext, cPrev, gates)

	// The pre-fusion backward chain, op for op.
	one := func(t *tensor.Tensor) *tensor.Tensor {
		return tensor.Apply(t, func(v float32) float32 { return 1 - v*v })
	}
	sigD := func(t *tensor.Tensor) *tensor.Tensor {
		return tensor.Apply(t, func(v float32) float32 { return v * (1 - v) })
	}
	dh := tensor.Add(dyt, dhNext)
	do := tensor.Mul(dh, gates.TanhC)
	dc := tensor.Add(dcNext, tensor.Mul(tensor.Mul(dh, gates.O), one(gates.TanhC)))
	di := tensor.Mul(dc, gates.G)
	dg := tensor.Mul(dc, gates.I)
	df := tensor.Mul(dc, cPrev)
	wantDcPrev := tensor.Mul(dc, gates.F)

	bitEqual(t, "dz[i]", splitCols(dz, 0, hd), tensor.Mul(di, sigD(gates.I)))
	bitEqual(t, "dz[f]", splitCols(dz, hd, 2*hd), tensor.Mul(df, sigD(gates.F)))
	bitEqual(t, "dz[g]", splitCols(dz, 2*hd, 3*hd), tensor.Mul(dg, one(gates.G)))
	bitEqual(t, "dz[o]", splitCols(dz, 3*hd, 4*hd), tensor.Mul(do, sigD(gates.O)))
	bitEqual(t, "dcPrev", dcPrev, wantDcPrev)
}

// TestMatMulBiasActCrossCheckAutograd verifies the fused forward/backward
// pair against the autograd tape: gradients computed with the fused
// accumulate kernels must match the tape's reverse-mode gradients.
func TestMatMulBiasActCrossCheckAutograd(t *testing.T) {
	rng := tensor.NewRNG(11)
	m, k, n := 5, 9, 7
	a := rng.Uniform(-1, 1, m, k)
	w := rng.Uniform(-1, 1, k, n)
	bias := rng.Uniform(-1, 1, n)

	tp := autograd.NewTape()
	av, wv, bv := tp.Var(a), tp.Var(w), tp.Var(bias)
	out := tp.Tanh(tp.AddRowVector(tp.MatMul(av, wv), bv))
	tp.Backward(tp.Sum(out))

	// Fused forward, then the fused-kernel backward: dLoss/dout = 1,
	// through tanh, then MatMulTransB / MatMulTransAAcc / SumRowsAcc.
	y := tensor.MatMulBiasAct(a, w, bias, tensor.ActTanh)
	bitEqual(t, "fused forward vs tape forward", y, out.T)
	dact := tensor.Apply(y, func(v float32) float32 { return 1 - v*v })
	da := tensor.MatMulTransB(dact, w)
	dw := tensor.New(k, n)
	tensor.MatMulTransAAcc(dw, a, dact)
	db := tensor.New(n)
	tensor.SumRowsAcc(db, dact)

	for _, c := range []struct {
		name      string
		got, want *tensor.Tensor
	}{
		{"dA", da, av.Grad}, {"dW", dw, wv.Grad}, {"dBias", db, bv.Grad},
	} {
		if e := autograd.MaxRelError(c.got, c.want); e > 1e-4 {
			t.Errorf("%s: max rel error %g vs tape", c.name, e)
		}
	}

	// And both against finite differences.
	loss := func() float64 {
		return tensor.MatMulBiasAct(a, w, bias, tensor.ActTanh).Sum()
	}
	if e := autograd.MaxRelError(da, autograd.NumericGrad(a, 1e-2, loss)); e > 5e-2 {
		t.Errorf("dA vs numeric: max rel error %g", e)
	}
}

// TestLSTMCellBackwardCrossCheckAutograd composes the LSTM cell on the
// tape from per-gate pre-activation leaves and checks the fused backward
// kernel's dz blocks and dcPrev against reverse-mode gradients.
func TestLSTMCellBackwardCrossCheckAutograd(t *testing.T) {
	rng := tensor.NewRNG(12)
	batch, in, hd := 3, 4, 6
	xt := rng.Uniform(-1, 1, batch, in)
	h := rng.Uniform(-1, 1, batch, hd)
	cPrev := rng.Uniform(-1, 1, batch, hd)
	wx := rng.Uniform(-1, 1, in, 4*hd)
	wh := rng.Uniform(-1, 1, hd, 4*hd)
	bias := rng.Uniform(-1, 1, 4*hd)
	dyt := rng.Uniform(-1, 1, batch, hd)
	dhNext := rng.Uniform(-1, 1, batch, hd)
	dcNext := rng.Uniform(-1, 1, batch, hd)

	gates := tensor.LSTMCellForward(xt, h, cPrev, wx, wh, bias)
	dz, dcPrev := tensor.LSTMCellBackward(dyt, dhNext, dcNext, cPrev, gates)

	// Tape version: leaves are the four pre-activation blocks and cPrev.
	z := tensor.AddRowVector(tensor.Add(tensor.MatMul(xt, wx), tensor.MatMul(h, wh)), bias)
	tp := autograd.NewTape()
	zi := tp.Var(splitCols(z, 0, hd))
	zf := tp.Var(splitCols(z, hd, 2*hd))
	zg := tp.Var(splitCols(z, 2*hd, 3*hd))
	zo := tp.Var(splitCols(z, 3*hd, 4*hd))
	cp := tp.Var(cPrev)
	i, f := tp.Sigmoid(zi), tp.Sigmoid(zf)
	g, o := tp.Tanh(zg), tp.Sigmoid(zo)
	cNew := tp.Add(tp.Mul(f, cp), tp.Mul(i, g))
	hNew := tp.Mul(o, tp.Tanh(cNew))
	// Upstream gradients enter as constants: dh on h', dcNext on c'.
	total := tp.Add(
		tp.Mul(hNew, tp.Const(tensor.Add(dyt, dhNext))),
		tp.Mul(cNew, tp.Const(dcNext)))
	tp.Backward(tp.Sum(total))

	for _, c := range []struct {
		name      string
		got, want *tensor.Tensor
	}{
		{"dz[i]", splitCols(dz, 0, hd), zi.Grad},
		{"dz[f]", splitCols(dz, hd, 2*hd), zf.Grad},
		{"dz[g]", splitCols(dz, 2*hd, 3*hd), zg.Grad},
		{"dz[o]", splitCols(dz, 3*hd, 4*hd), zo.Grad},
		{"dcPrev", dcPrev, cp.Grad},
	} {
		if e := autograd.MaxRelError(c.got, c.want); e > 1e-4 {
			t.Errorf("%s: max rel error %g vs tape", c.name, e)
		}
	}
}
