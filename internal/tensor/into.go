package tensor

import "fmt"

// Zero-allocation kernel variants for the compiled execution path
// (internal/compiled): each writes into caller-provided storage —
// planned arena slots bound once per pipeline stage — instead of
// borrowing from the arena per call. Every variant evaluates the exact
// same float expressions, in the same order, as the allocating kernel
// it mirrors, so replaying a compiled stage is bit-identical to the
// interpreter (compiled_equiv tests in internal/core enforce this
// end-to-end).

// ApplyInto sets dst[i] = f(t[i]), fully overwriting dst.
func ApplyInto(dst, t *Tensor, f func(float32) float32) {
	checkSameShape("ApplyInto", dst, t)
	ParallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.data[i] = f(t.data[i])
		}
	})
}

// MulInto sets dst = a * b elementwise, fully overwriting dst.
func MulInto(dst, a, b *Tensor) {
	checkSameShape("MulInto", a, b)
	checkSameShape("MulInto", dst, a)
	ParallelFor(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.data[i] = a.data[i] * b.data[i]
		}
	})
}

// GatherInto copies table rows selected by idx into dst (len(idx), d),
// fully overwriting dst. Mirrors Gather.
func GatherInto(dst, table *Tensor, idx []int) {
	if len(table.shape) != 2 {
		panic("tensor: GatherInto requires a 2-D table")
	}
	d := table.shape[1]
	if len(dst.shape) != 2 || dst.shape[0] != len(idx) || dst.shape[1] != d {
		panic(fmt.Sprintf("tensor: GatherInto dst %v for %d rows of width %d", dst.shape, len(idx), d))
	}
	ParallelForCost(len(idx), d, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := idx[i]
			if row < 0 || row >= table.shape[0] {
				panic(fmt.Sprintf("tensor: GatherInto index %d out of range [0,%d)", row, table.shape[0]))
			}
			copy(dst.data[i*d:(i+1)*d], table.data[row*d:(row+1)*d])
		}
	})
}

// MatMulTransAAccWith is MatMulTransAAcc with caller-provided scratch
// of dst's shape: the product still forms in zeroed scratch and is
// added in one pass, so rounding is bit-identical to MatMulTransAAcc —
// only the per-call arena borrow is gone.
func MatMulTransAAccWith(dst, a, b, scratch *Tensor) {
	checkTransA(a, b)
	if len(dst.shape) != 2 || dst.shape[0] != a.shape[1] || dst.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransAAccWith dst %v for %vᵀ x %v", dst.shape, a.shape, b.shape))
	}
	if !scratch.SameShape(dst) {
		panic(fmt.Sprintf("tensor: MatMulTransAAccWith scratch %v, want %v", scratch.shape, dst.shape))
	}
	scratch.Zero()
	matMulTransAAccInto(scratch, a, b)
	dst.AddInPlace(scratch)
}

// SumRowsAccWith is SumRowsAcc with caller-provided scratch of dst's
// shape; same rounding, no arena borrow.
func SumRowsAccWith(dst, t, scratch *Tensor) {
	if len(t.shape) != 2 {
		panic("tensor: SumRowsAccWith requires a 2-D tensor")
	}
	if len(dst.shape) != 1 || dst.shape[0] != t.shape[1] {
		panic(fmt.Sprintf("tensor: SumRowsAccWith dst %v for %v", dst.shape, t.shape))
	}
	if !scratch.SameShape(dst) {
		panic(fmt.Sprintf("tensor: SumRowsAccWith scratch %v, want %v", scratch.shape, dst.shape))
	}
	scratch.Zero()
	sumRowsAccInto(scratch, t)
	dst.AddInPlace(scratch)
}

// BernoulliInto fills t with a {0,1} mask where each element is 1 with
// probability p, consuming the generator in the exact element order of
// Bernoulli. Zeros are written explicitly: the destination is reused
// slot storage, not a fresh zeroed tensor.
func (g *RNG) BernoulliInto(t *Tensor, p float64) {
	for i := range t.data {
		if g.r.Float64() < p {
			t.data[i] = 1
		} else {
			t.data[i] = 0
		}
	}
}
