package tensor

import (
	"fmt"
	"math"
)

// checkSameShape panics unless a and b have identical shapes.
func checkSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	checkSameShape("Add", a, b)
	out := borrowRaw(a.shape...)
	ParallelFor(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] + b.data[i]
		}
	})
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSameShape("Sub", a, b)
	out := borrowRaw(a.shape...)
	ParallelFor(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] - b.data[i]
		}
	})
	return out
}

// Mul returns the elementwise (Hadamard) product a * b.
func Mul(a, b *Tensor) *Tensor {
	checkSameShape("Mul", a, b)
	out := borrowRaw(a.shape...)
	ParallelFor(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] * b.data[i]
		}
	})
	return out
}

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor {
	checkSameShape("Div", a, b)
	out := borrowRaw(a.shape...)
	ParallelFor(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] / b.data[i]
		}
	})
	return out
}

// AddInPlace sets a += b elementwise and returns a.
func (t *Tensor) AddInPlace(b *Tensor) *Tensor {
	checkSameShape("AddInPlace", t, b)
	ParallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.data[i] += b.data[i]
		}
	})
	return t
}

// SubInPlace sets a -= b elementwise and returns a.
func (t *Tensor) SubInPlace(b *Tensor) *Tensor {
	checkSameShape("SubInPlace", t, b)
	ParallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.data[i] -= b.data[i]
		}
	})
	return t
}

// MulInPlace sets a *= b elementwise and returns a.
func (t *Tensor) MulInPlace(b *Tensor) *Tensor {
	checkSameShape("MulInPlace", t, b)
	ParallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.data[i] *= b.data[i]
		}
	})
	return t
}

// AxpyInPlace sets t += alpha * b elementwise and returns t. This is the
// core update primitive for optimizers and elastic averaging.
func (t *Tensor) AxpyInPlace(alpha float32, b *Tensor) *Tensor {
	checkSameShape("AxpyInPlace", t, b)
	ParallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.data[i] += alpha * b.data[i]
		}
	})
	return t
}

// ScaleInPlace multiplies every element by alpha and returns t.
func (t *Tensor) ScaleInPlace(alpha float32) *Tensor {
	ParallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.data[i] *= alpha
		}
	})
	return t
}

// Scale returns alpha * t as a new tensor.
func Scale(alpha float32, t *Tensor) *Tensor {
	out := borrowRaw(t.shape...)
	ParallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = alpha * t.data[i]
		}
	})
	return out
}

// AddScalar returns t + c elementwise.
func AddScalar(t *Tensor, c float32) *Tensor {
	out := borrowRaw(t.shape...)
	ParallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = t.data[i] + c
		}
	})
	return out
}

// Neg returns -t.
func Neg(t *Tensor) *Tensor { return Scale(-1, t) }

// Apply returns f mapped over every element of t.
func Apply(t *Tensor, f func(float32) float32) *Tensor {
	out := borrowRaw(t.shape...)
	ParallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = f(t.data[i])
		}
	})
	return out
}

// Tanh returns tanh applied elementwise.
func Tanh(t *Tensor) *Tensor {
	return Apply(t, func(x float32) float32 { return float32(math.Tanh(float64(x))) })
}

// Sigmoid returns the logistic function applied elementwise.
func Sigmoid(t *Tensor) *Tensor {
	return Apply(t, func(x float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(x))))
	})
}

// ReLU returns max(x, 0) elementwise.
func ReLU(t *Tensor) *Tensor {
	return Apply(t, func(x float32) float32 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// Exp returns e^x elementwise.
func Exp(t *Tensor) *Tensor {
	return Apply(t, func(x float32) float32 { return float32(math.Exp(float64(x))) })
}

// Log returns ln(x) elementwise.
func Log(t *Tensor) *Tensor {
	return Apply(t, func(x float32) float32 { return float32(math.Log(float64(x))) })
}

// Sqrt returns the elementwise square root.
func Sqrt(t *Tensor) *Tensor {
	return Apply(t, func(x float32) float32 { return float32(math.Sqrt(float64(x))) })
}

// AddRowVector returns m with v added to every row. m is (rows, cols),
// v is (cols). This is the bias-broadcast primitive.
func AddRowVector(m, v *Tensor) *Tensor {
	if len(m.shape) != 2 || len(v.shape) != 1 || m.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: AddRowVector shapes %v, %v", m.shape, v.shape))
	}
	rows, cols := m.shape[0], m.shape[1]
	out := borrowRaw(rows, cols)
	ParallelFor(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			mr := m.data[r*cols : (r+1)*cols]
			or := out.data[r*cols : (r+1)*cols]
			for c := 0; c < cols; c++ {
				or[c] = mr[c] + v.data[c]
			}
		}
	})
	return out
}

// MulRowVector returns m with each row multiplied elementwise by v.
func MulRowVector(m, v *Tensor) *Tensor {
	if len(m.shape) != 2 || len(v.shape) != 1 || m.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: MulRowVector shapes %v, %v", m.shape, v.shape))
	}
	rows, cols := m.shape[0], m.shape[1]
	out := borrowRaw(rows, cols)
	ParallelFor(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			mr := m.data[r*cols : (r+1)*cols]
			or := out.data[r*cols : (r+1)*cols]
			for c := 0; c < cols; c++ {
				or[c] = mr[c] * v.data[c]
			}
		}
	})
	return out
}
