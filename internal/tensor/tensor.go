// Package tensor implements a dense float32 tensor library with
// goroutine-parallel kernels. It is the computational substrate for the
// AvgPipe reproduction: all neural-network math (matrix products, gate
// activations, normalizations) runs on these tensors.
//
// Tensors are always contiguous in row-major order. Shapes are immutable
// after construction; Reshape returns a view sharing the same backing
// storage. The zero value of Tensor is not usable; construct with New,
// Zeros, FromSlice, or the random initializers.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, contiguous, row-major float32 tensor.
type Tensor struct {
	data  []float32
	shape []int
	// bucket is 1+arena bucket index when the backing storage came from
	// the buffer arena, 0 for plain allocations and views (see arena.go).
	bucket uint8
	// free marks an arena tensor that has been Released; guards against
	// double release.
	free bool
}

// New returns a zero-filled tensor with the given shape. A tensor with no
// dimensions is a scalar holding one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Formatted in a helper: fmt.Sprintf(..., shape) here would make
			// escape analysis leak the variadic slice, heap-allocating it at
			// every call site even on the non-panic path.
			panicNegativeDim(d)
		}
		n *= d
	}
	sh := make([]int, len(shape))
	copy(sh, shape)
	return &Tensor{data: make([]float32, n), shape: sh}
}

func panicNegativeDim(d int) {
	panic(fmt.Sprintf("tensor: negative dimension %d in shape", d))
}

// Zeros is an alias for New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones returns a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly prod(shape) elements.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{data: data, shape: append([]int(nil), shape...)}
}

// Scalar returns a 0-dimensional tensor holding v.
func Scalar(v float32) *Tensor { return FromSlice([]float32{v}) }

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy of t. The copy is drawn from the buffer
// arena, so short-lived clones (activation stashes, per-step snapshots)
// can be Released when they retire.
func (t *Tensor) Clone() *Tensor {
	c := borrowRaw(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must match in size.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Reshape returns a view of t with a new shape of the same total size.
// One dimension may be -1 to be inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer, n := -1, 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape allows at most one -1 dimension")
			}
			infer = i
		} else {
			n *= d
		}
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / n
		n *= shape[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v", t.shape, len(t.data), shape))
	}
	return &Tensor{data: t.data, shape: shape}
}

// Zero sets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Row returns a view of row i of a 2-D tensor (shares storage).
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Row requires a 2-D tensor")
	}
	cols := t.shape[1]
	return &Tensor{data: t.data[i*cols : (i+1)*cols], shape: []int{cols}}
}

// SliceRows returns a view of rows [lo, hi) of the leading dimension.
// The view shares storage with t.
func (t *Tensor) SliceRows(lo, hi int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: SliceRows requires at least one dimension")
	}
	if lo < 0 || hi > t.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for leading dim %d", lo, hi, t.shape[0]))
	}
	inner := 1
	for _, d := range t.shape[1:] {
		inner *= d
	}
	shape := append([]int{hi - lo}, t.shape[1:]...)
	return &Tensor{data: t.data[lo*inner : hi*inner], shape: shape}
}

// ConcatRows concatenates tensors along the leading dimension. All inputs
// must agree on the trailing dimensions.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatRows requires at least one tensor")
	}
	rows := 0
	for _, t := range ts {
		rows += t.shape[0]
	}
	shape := append([]int{rows}, ts[0].shape[1:]...)
	out := New(shape...)
	off := 0
	for _, t := range ts {
		for i, d := range t.shape[1:] {
			if d != ts[0].shape[1+i] {
				panic("tensor: ConcatRows trailing dimension mismatch")
			}
		}
		copy(out.data[off:], t.data)
		off += len(t.data)
	}
	return out
}

// String renders small tensors fully and large tensors by shape summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		var b strings.Builder
		fmt.Fprintf(&b, "Tensor%v%v", t.shape, t.data)
		return b.String()
	}
	return fmt.Sprintf("Tensor%v[%d elements]", t.shape, len(t.data))
}

// HasNaN reports whether any element is NaN or Inf.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
	}
	return false
}
