package tensor_test

import (
	"testing"

	"avgpipe/internal/tensor"
)

// naiveMatMul is the reference implementation: single accumulator per
// output element, ascending p — the exact order the optimized kernels
// promise to preserve, so comparisons are bitwise.
func naiveMatMul(a, b *tensor.Tensor) *tensor.Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := tensor.New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func bitEqual(t *testing.T, name string, got, want *tensor.Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", name, got.Shape(), want.Shape())
	}
	for i := range want.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("%s: element %d = %v, want %v (must be bit-identical)",
				name, i, got.Data()[i], want.Data()[i])
		}
	}
}

// TestMatMulEdgeShapes exercises dimensions around the kernels' blocking
// and unrolling boundaries: 1×1, sizes straddling matmulBlock (64), odd
// sizes like 63×65, primes, and the 8-wide unroll remainder.
func TestMatMulEdgeShapes(t *testing.T) {
	rng := tensor.NewRNG(42)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{1, 64, 1},
		{63, 65, 63},
		{65, 63, 65},
		{7, 13, 17}, // primes
		{3, 129, 5}, // k just past two blocks
		{2, 64, 9},  // n not a multiple of the 8-wide unroll
		{5, 1, 8},
		{8, 200, 8},
	}
	for _, sh := range shapes {
		a := rng.Uniform(-2, 2, sh.m, sh.k)
		b := rng.Uniform(-2, 2, sh.k, sh.n)
		// Sprinkle zeros to exercise the av==0 skip.
		a.Data()[0] = 0
		if len(a.Data()) > 3 {
			a.Data()[3] = 0
		}
		bitEqual(t, "MatMul", tensor.MatMul(a, b), naiveMatMul(a, b))

		at := tensor.Transpose2D(a)
		bitEqual(t, "MatMulTransA", tensor.MatMulTransA(at, b), naiveMatMul(a, b))

		bt := tensor.Transpose2D(b)
		got := tensor.MatMulTransB(a, bt)
		want := naiveMatMul(a, b)
		if !got.SameShape(want) {
			t.Fatalf("MatMulTransB shape %v, want %v", got.Shape(), want.Shape())
		}
		for i := range want.Data() {
			d := got.Data()[i] - want.Data()[i]
			if d < -1e-4 || d > 1e-4 {
				t.Fatalf("MatMulTransB element %d = %v, want %v", i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

// TestMatMulZeroDims: zero-row and zero-column operands must produce
// empty (but correctly shaped) outputs without panicking.
func TestMatMulZeroDims(t *testing.T) {
	a := tensor.New(0, 5)
	b := tensor.New(5, 3)
	if out := tensor.MatMul(a, b); out.Dim(0) != 0 || out.Dim(1) != 3 {
		t.Fatalf("MatMul zero-row shape %v", out.Shape())
	}
	c := tensor.New(4, 0)
	d := tensor.New(0, 2)
	if out := tensor.MatMul(c, d); out.Dim(0) != 4 || out.Dim(1) != 2 {
		t.Fatalf("MatMul zero-k shape %v", out.Shape())
	}
	for _, v := range tensor.MatMul(c, d).Data() {
		if v != 0 {
			t.Fatal("zero-k product must be all zeros")
		}
	}
	if out := tensor.MatMulTransA(tensor.New(0, 4), tensor.New(0, 3)); out.Dim(0) != 4 || out.Dim(1) != 3 {
		t.Fatalf("MatMulTransA zero-k shape %v", out.Shape())
	}
	if out := tensor.MatMulTransB(tensor.New(3, 0), tensor.New(2, 0)); out.Dim(0) != 3 || out.Dim(1) != 2 {
		t.Fatalf("MatMulTransB zero-k shape %v", out.Shape())
	}
	if out := tensor.SumRows(tensor.New(0, 7)); out.Dim(0) != 7 {
		t.Fatalf("SumRows zero-row shape %v", out.Shape())
	}
}
