package tensor

import "fmt"

// matmulBlock is the cache-blocking factor for the inner kernels. 64
// float32s per row segment keeps three blocks comfortably inside L1.
const matmulBlock = 64

// Determinism contract for every matmul variant: output element (i,j) is
// the sum over p, in ascending p order, into a single accumulator. The
// optimizations below — unrolling across j (independent output elements),
// cache blocking over p (which only groups the same ascending-p visits),
// and row-parallelism — never reorder the per-element accumulation, so
// results are bit-identical to the naive triple loop.

// axpyAdd computes o[j] += av * b[j] for all j, unrolled 8-wide. Each
// element still receives exactly one fused add in index order, so this is
// bit-identical to the plain loop; the full slice expressions let the
// compiler drop bounds checks inside the unrolled body.
func axpyAdd(av float32, b, o []float32) {
	n := len(o)
	b = b[:n]
	j := 0
	for ; j+8 <= n; j += 8 {
		bo := b[j : j+8 : j+8]
		oo := o[j : j+8 : j+8]
		oo[0] += av * bo[0]
		oo[1] += av * bo[1]
		oo[2] += av * bo[2]
		oo[3] += av * bo[3]
		oo[4] += av * bo[4]
		oo[5] += av * bo[5]
		oo[6] += av * bo[6]
		oo[7] += av * bo[7]
	}
	for ; j < n; j++ {
		o[j] += av * b[j]
	}
}

// axpy4Add fuses four consecutive k-steps into one pass over the output
// row: o[j] = (((o[j] + a0*b0[j]) + a1*b1[j]) + a2*b2[j]) + a3*b3[j].
// That is the exact operation sequence of four successive axpyAdd calls —
// one accumulator per element, ascending k — so it is bit-identical while
// reading and writing the output row a quarter as often.
func axpy4Add(a0, a1, a2, a3 float32, b0, b1, b2, b3, o []float32) {
	n := len(o)
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	for j := 0; j < n; j++ {
		s := o[j] + a0*b0[j]
		s += a1 * b1[j]
		s += a2 * b2[j]
		s += a3 * b3[j]
		o[j] = s
	}
}

// dotSeq computes the in-order dot product of a and b with a single
// accumulator, unrolled 4-wide purely to amortize loop overhead: the adds
// into sum stay in ascending index order, so rounding matches the plain
// loop exactly.
func dotSeq(a, b []float32) float32 {
	n := len(a)
	b = b[:n]
	var sum float32
	p := 0
	for ; p+4 <= n; p += 4 {
		ao := a[p : p+4 : p+4]
		bo := b[p : p+4 : p+4]
		sum += ao[0] * bo[0]
		sum += ao[1] * bo[1]
		sum += ao[2] * bo[2]
		sum += ao[3] * bo[3]
	}
	for ; p < n; p++ {
		sum += a[p] * b[p]
	}
	return sum
}

// dot4Seq computes four in-order dot products of a against b0..b3 in one
// pass, loading each a element once. Every accumulator is still a single
// float32 summed in ascending index order, so each result is bit-identical
// to a separate dotSeq call.
func dot4Seq(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	n := len(a)
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	for p := 0; p < n; p++ {
		av := a[p]
		s0 += av * b0[p]
		s1 += av * b1[p]
		s2 += av * b2[p]
		s3 += av * b3[p]
	}
	return
}

// axpy4Add2 is axpy4Add over two independent output rows at once, sharing
// the four b-row loads between them. Each output element's accumulation
// chain is the same as in axpy4Add, so it remains bit-identical; the
// pairing only halves the number of passes over the B panel.
func axpy4Add2(x0, x1, x2, x3, y0, y1, y2, y3 float32, b0, b1, b2, b3, ox, oy []float32) {
	n := len(ox)
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	oy = oy[:n]
	for j := 0; j < n; j++ {
		bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
		s := ox[j] + x0*bv0
		s += x1 * bv1
		s += x2 * bv2
		s += x3 * bv3
		ox[j] = s
		t := oy[j] + y0*bv0
		t += y1 * bv1
		t += y2 * bv2
		t += y3 * bv3
		oy[j] = t
	}
}

// axpyRange runs the axpy accumulation for k-steps [p0,p1), taking the
// fused 4-step path whenever the next four coefficients are all non-zero
// and falling back to single steps (with the av==0 skip) otherwise, which
// preserves the skip's semantics exactly.
func axpyRange(arow []float32, bdata []float32, n int, p0, p1 int, orow []float32) {
	p := p0
	for ; p+4 <= p1; p += 4 {
		a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
		if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
			axpy4Add(a0, a1, a2, a3,
				bdata[p*n:(p+1)*n], bdata[(p+1)*n:(p+2)*n],
				bdata[(p+2)*n:(p+3)*n], bdata[(p+3)*n:(p+4)*n], orow)
			continue
		}
		for q := p; q < p+4; q++ {
			if av := arow[q]; av != 0 {
				axpyAdd(av, bdata[q*n:(q+1)*n], orow)
			}
		}
	}
	for ; p < p1; p++ {
		if av := arow[p]; av != 0 {
			axpyAdd(av, bdata[p*n:(p+1)*n], orow)
		}
	}
}

// axpyRange2 is axpyRange over two output rows, pairing them through
// axpy4Add2 when all eight coefficients are non-zero and degrading to the
// single-row path (which keeps the av==0 skip exact) otherwise.
func axpyRange2(ar0, ar1 []float32, bdata []float32, n, p0, p1 int, o0, o1 []float32) {
	p := p0
	for ; p+4 <= p1; p += 4 {
		x0, x1, x2, x3 := ar0[p], ar0[p+1], ar0[p+2], ar0[p+3]
		y0, y1, y2, y3 := ar1[p], ar1[p+1], ar1[p+2], ar1[p+3]
		if x0 != 0 && x1 != 0 && x2 != 0 && x3 != 0 &&
			y0 != 0 && y1 != 0 && y2 != 0 && y3 != 0 {
			axpy4Add2(x0, x1, x2, x3, y0, y1, y2, y3,
				bdata[p*n:(p+1)*n], bdata[(p+1)*n:(p+2)*n],
				bdata[(p+2)*n:(p+3)*n], bdata[(p+3)*n:(p+4)*n], o0, o1)
			continue
		}
		for q := p; q < p+4; q++ {
			if av := ar0[q]; av != 0 {
				axpyAdd(av, bdata[q*n:(q+1)*n], o0)
			}
		}
		for q := p; q < p+4; q++ {
			if av := ar1[q]; av != 0 {
				axpyAdd(av, bdata[q*n:(q+1)*n], o1)
			}
		}
	}
	for ; p < p1; p++ {
		if av := ar0[p]; av != 0 {
			axpyAdd(av, bdata[p*n:(p+1)*n], o0)
		}
		if av := ar1[p]; av != 0 {
			axpyAdd(av, bdata[p*n:(p+1)*n], o1)
		}
	}
}

// MatMul returns a @ b for 2-D tensors: (m,k) x (k,n) -> (m,n).
// Rows of the output are computed in parallel; the inner loops are blocked
// over k so each B panel is reused while hot in cache. The result is drawn
// from the buffer arena; Release it when its lifetime is known.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 || a.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shapes %v x %v", a.shape, b.shape))
	}
	out := Borrow(a.shape[0], b.shape[1])
	matMulAccInto(out, a, b)
	return out
}

// matMulAccInto accumulates a @ b into out (out += a@b elementwise). out
// must be zeroed for a plain product.
func matMulAccInto(out, a, b *Tensor) {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	ParallelForCost(m, k*n, func(lo, hi int) {
		// Rows are paired so each B panel pass feeds two output rows; a
		// leftover odd row takes the single-row path. Pairing never changes
		// any element's accumulation order, only B-row reuse.
		i := lo
		for ; i+2 <= hi; i += 2 {
			ar0 := a.data[i*k : (i+1)*k]
			ar1 := a.data[(i+1)*k : (i+2)*k]
			o0 := out.data[i*n : (i+1)*n]
			o1 := out.data[(i+1)*n : (i+2)*n]
			for p0 := 0; p0 < k; p0 += matmulBlock {
				p1 := p0 + matmulBlock
				if p1 > k {
					p1 = k
				}
				axpyRange2(ar0, ar1, b.data, n, p0, p1, o0, o1)
			}
		}
		for ; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			for p0 := 0; p0 < k; p0 += matmulBlock {
				p1 := p0 + matmulBlock
				if p1 > k {
					p1 = k
				}
				axpyRange(arow, b.data, n, p0, p1, orow)
			}
		}
	})
}

// MatMulTransB returns a @ bᵀ: (m,k) x (n,k) -> (m,n). Used by backward
// passes to avoid materializing transposes. The result is arena-backed.
func MatMulTransB(a, b *Tensor) *Tensor {
	checkTransB(a, b)
	out := borrowRaw(a.shape[0], b.shape[0])
	matMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto computes dst = a @ bᵀ, fully overwriting dst — the
// no-allocation variant for writing straight into a pre-sliced output
// (e.g. one time step's rows of a sequence gradient). dst must be (m,n)
// for a (m,k) and b (n,k).
func MatMulTransBInto(dst, a, b *Tensor) {
	checkTransB(a, b)
	if len(dst.shape) != 2 || dst.shape[0] != a.shape[0] || dst.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMulTransBInto dst %v for %v x %vᵀ", dst.shape, a.shape, b.shape))
	}
	matMulTransBInto(dst, a, b)
}

func checkTransB(a, b *Tensor) {
	if len(a.shape) != 2 || len(b.shape) != 2 || a.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransB shapes %v x %vᵀ", a.shape, b.shape))
	}
}

func matMulTransBInto(out, a, b *Tensor) {
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	ParallelForCost(m, k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				orow[j], orow[j+1], orow[j+2], orow[j+3] = dot4Seq(arow,
					b.data[j*k:(j+1)*k], b.data[(j+1)*k:(j+2)*k],
					b.data[(j+2)*k:(j+3)*k], b.data[(j+3)*k:(j+4)*k])
			}
			for ; j < n; j++ {
				orow[j] = dotSeq(arow, b.data[j*k:(j+1)*k])
			}
		}
	})
}

// MatMulTransA returns aᵀ @ b: (k,m) x (k,n) -> (m,n). Used to accumulate
// weight gradients (xᵀ @ dy) without materializing transposes. The result
// is arena-backed.
func MatMulTransA(a, b *Tensor) *Tensor {
	checkTransA(a, b)
	out := Borrow(a.shape[1], b.shape[1])
	matMulTransAAccInto(out, a, b)
	return out
}

// MatMulTransAAcc sets dst += aᵀ @ b without allocating the product — the
// fused weight-gradient accumulate. To keep results bit-identical to
// dst.AddInPlace(MatMulTransA(a, b)), the product is formed in zeroed
// arena scratch first (accumulating directly into a non-zero dst would
// change each element's rounding sequence) and added in one pass.
func MatMulTransAAcc(dst, a, b *Tensor) {
	checkTransA(a, b)
	if len(dst.shape) != 2 || dst.shape[0] != a.shape[1] || dst.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransAAcc dst %v for %vᵀ x %v", dst.shape, a.shape, b.shape))
	}
	scratch := Borrow(dst.shape[0], dst.shape[1])
	matMulTransAAccInto(scratch, a, b)
	dst.AddInPlace(scratch)
	scratch.Release()
}

func checkTransA(a, b *Tensor) {
	if len(a.shape) != 2 || len(b.shape) != 2 || a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMulTransA shapes %vᵀ x %v", a.shape, b.shape))
	}
}

// matMulTransAAccInto accumulates aᵀ @ b into out; out must be zeroed for
// a plain product.
func matMulTransAAccInto(out, a, b *Tensor) {
	k, m, n := a.shape[0], a.shape[1], b.shape[1]
	ParallelForCost(m, k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.data[i*n : (i+1)*n]
			p := 0
			for ; p+4 <= k; p += 4 {
				a0, a1 := a.data[p*m+i], a.data[(p+1)*m+i]
				a2, a3 := a.data[(p+2)*m+i], a.data[(p+3)*m+i]
				if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
					axpy4Add(a0, a1, a2, a3,
						b.data[p*n:(p+1)*n], b.data[(p+1)*n:(p+2)*n],
						b.data[(p+2)*n:(p+3)*n], b.data[(p+3)*n:(p+4)*n], orow)
					continue
				}
				for q := p; q < p+4; q++ {
					if av := a.data[q*m+i]; av != 0 {
						axpyAdd(av, b.data[q*n:(q+1)*n], orow)
					}
				}
			}
			for ; p < k; p++ {
				if av := a.data[p*m+i]; av != 0 {
					axpyAdd(av, b.data[p*n:(p+1)*n], orow)
				}
			}
		}
	})
}

// Transpose2D returns the transpose of a 2-D tensor (arena-backed).
func Transpose2D(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Transpose2D requires a 2-D tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := borrowRaw(c, r)
	ParallelForCost(r, c, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < c; j++ {
				out.data[j*r+i] = t.data[i*c+j]
			}
		}
	})
	return out
}

// MatVec returns m @ v: (r,c) x (c) -> (r).
func MatVec(m, v *Tensor) *Tensor {
	if len(m.shape) != 2 || len(v.shape) != 1 || m.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec shapes %v x %v", m.shape, v.shape))
	}
	r, c := m.shape[0], m.shape[1]
	out := borrowRaw(r)
	ParallelForCost(r, c, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = dotSeq(m.data[i*c:(i+1)*c], v.data)
		}
	})
	return out
}

// Outer returns the outer product of vectors a (m) and b (n) as (m,n).
func Outer(a, b *Tensor) *Tensor {
	if len(a.shape) != 1 || len(b.shape) != 1 {
		panic("tensor: Outer requires 1-D tensors")
	}
	m, n := a.shape[0], b.shape[0]
	out := borrowRaw(m, n)
	ParallelForCost(m, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			av := a.data[i]
			row := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				row[j] = av * b.data[j]
			}
		}
	})
	return out
}
