package tensor

import "fmt"

// matmulBlock is the cache-blocking factor for the inner kernels. 64
// float32s per row segment keeps three blocks comfortably inside L1.
const matmulBlock = 64

// MatMul returns a @ b for 2-D tensors: (m,k) x (k,n) -> (m,n).
// Rows of the output are computed in parallel; the inner loops are blocked
// over k so each B panel is reused while hot in cache.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 || a.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shapes %v x %v", a.shape, b.shape))
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	out := New(m, n)
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			for p0 := 0; p0 < k; p0 += matmulBlock {
				p1 := p0 + matmulBlock
				if p1 > k {
					p1 = k
				}
				for p := p0; p < p1; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					brow := b.data[p*n : (p+1)*n]
					for j := 0; j < n; j++ {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	})
	return out
}

// MatMulTransB returns a @ bᵀ: (m,k) x (n,k) -> (m,n). Used by backward
// passes to avoid materializing transposes.
func MatMulTransB(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 || a.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransB shapes %v x %vᵀ", a.shape, b.shape))
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	out := New(m, n)
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.data[j*k : (j+1)*k]
				var sum float32
				for p := 0; p < k; p++ {
					sum += arow[p] * brow[p]
				}
				orow[j] = sum
			}
		}
	})
	return out
}

// MatMulTransA returns aᵀ @ b: (k,m) x (k,n) -> (m,n). Used to accumulate
// weight gradients (xᵀ @ dy) without materializing transposes.
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 || a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMulTransA shapes %vᵀ x %v", a.shape, b.shape))
	}
	k, m, n := a.shape[0], a.shape[1], b.shape[1]
	out := New(m, n)
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.data[p*m+i]
				if av == 0 {
					continue
				}
				brow := b.data[p*n : (p+1)*n]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	})
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Transpose2D requires a 2-D tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := New(c, r)
	ParallelFor(r, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < c; j++ {
				out.data[j*r+i] = t.data[i*c+j]
			}
		}
	})
	return out
}

// MatVec returns m @ v: (r,c) x (c) -> (r).
func MatVec(m, v *Tensor) *Tensor {
	if len(m.shape) != 2 || len(v.shape) != 1 || m.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec shapes %v x %v", m.shape, v.shape))
	}
	r, c := m.shape[0], m.shape[1]
	out := New(r)
	ParallelFor(r, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.data[i*c : (i+1)*c]
			var sum float32
			for j := 0; j < c; j++ {
				sum += row[j] * v.data[j]
			}
			out.data[i] = sum
		}
	})
	return out
}

// Outer returns the outer product of vectors a (m) and b (n) as (m,n).
func Outer(a, b *Tensor) *Tensor {
	if len(a.shape) != 1 || len(b.shape) != 1 {
		panic("tensor: Outer requires 1-D tensors")
	}
	m, n := a.shape[0], b.shape[0]
	out := New(m, n)
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			av := a.data[i]
			row := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				row[j] = av * b.data[j]
			}
		}
	})
	return out
}
