package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the minimum element count before a kernel fans out
// across goroutines; below it the scheduling overhead dominates.
const parallelThreshold = 1 << 14

// maxWorkers caps kernel parallelism at the machine's core count.
var maxWorkers = runtime.GOMAXPROCS(0)

// ParallelFor splits [0, n) into contiguous chunks and runs body on each
// chunk concurrently. body receives the half-open range [lo, hi). It is the
// single parallelism primitive for every tensor kernel, keeping work
// distribution and thresholds in one place.
func ParallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if n < parallelThreshold || workers <= 1 {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
