package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Kernels fan work out to a persistent pool of worker goroutines instead
// of spawning goroutines per call: a ParallelFor builds one task whose
// chunked index ranges are claimed with an atomic counter, invites idle
// workers with non-blocking sends, and then drains chunks itself. The
// submitter always makes progress on its own task, so nested ParallelFor
// (attention runs matmuls inside a ParallelFor over the batch) cannot
// deadlock, and a saturated pool degrades to the caller running serially
// rather than queueing behind other tasks.

// parallelThreshold is the minimum amount of work (iterations × the
// caller's per-iteration cost estimate) before a kernel fans out; below
// it, scheduling overhead dominates and the body runs serially on the
// caller's goroutine.
const parallelThreshold = 1 << 14

// chunksPerWorker oversubscribes chunks relative to workers so a worker
// that finishes early claims remaining ranges instead of idling —
// work-stealing-ish balance without per-worker deques.
const chunksPerWorker = 4

// maxWorkers is the pool size, fixed at first use to GOMAXPROCS.
var maxWorkers = runtime.GOMAXPROCS(0)

// poolTask is one ParallelFor invocation. Workers (and the submitter)
// atomically claim chunk indices until the range is exhausted. Tasks are
// freshly allocated per invocation: a lagging worker may still hold a
// pointer to a finished task, so recycling them through a pool would race.
type poolTask struct {
	body  func(lo, hi int)
	n     int
	chunk int
	next  atomic.Int64
	wg    sync.WaitGroup
}

// run claims and executes chunks until none remain. Stale tasks (already
// fully claimed by the time a worker dequeues them) fall through
// immediately.
func (t *poolTask) run() {
	for {
		c := t.next.Add(1) - 1
		lo := int(c) * t.chunk
		if lo >= t.n {
			return
		}
		hi := lo + t.chunk
		if hi > t.n {
			hi = t.n
		}
		t.body(lo, hi)
		t.wg.Done()
	}
}

var (
	poolOnce sync.Once
	poolCh   chan *poolTask
	// poolBusy counts pool goroutines currently executing a task; the obs
	// bridge mirrors it into the workers-busy gauge.
	poolBusy atomic.Int64
)

// startPool lazily launches the worker goroutines. maxWorkers-1 of them:
// the submitting goroutine always acts as the final worker on its own
// task.
func startPool() {
	poolCh = make(chan *poolTask, 4*maxWorkers)
	for i := 0; i < maxWorkers-1; i++ {
		go func() {
			for t := range poolCh {
				poolBusy.Add(1)
				publishPoolGauges()
				t.run()
				poolBusy.Add(-1)
				publishPoolGauges()
			}
		}()
	}
}

// PoolWorkersBusy reports how many pool goroutines are currently running
// kernel chunks (excluding submitters working on their own tasks).
func PoolWorkersBusy() int { return int(poolBusy.Load()) }

// ParallelFor splits [0, n) into chunks executed by the worker pool, with
// each iteration costing roughly one unit of work. The ranges partition
// [0, n) exactly; bodies on different ranges run concurrently, so they
// must only write disjoint output. Falls back to a single serial call for
// small n.
func ParallelFor(n int, body func(lo, hi int)) {
	ParallelForCost(n, 1, body)
}

// ParallelForCost is ParallelFor with an explicit per-iteration cost
// estimate, for kernels whose iterations are expensive (a matmul row
// costs k·n flops, a layernorm row costs the feature dimension). The
// serial-versus-parallel decision uses n×costPerIter, so heavy loops with
// few iterations still fan out. Chunking is by iteration count only —
// per-element results are identical to the serial path regardless of
// cost, worker count, or chunk boundaries.
func ParallelForCost(n, costPerIter int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if costPerIter < 1 {
		costPerIter = 1
	}
	if maxWorkers <= 1 || n == 1 || n*costPerIter < parallelThreshold {
		body(0, n)
		return
	}
	poolOnce.Do(startPool)
	chunks := maxWorkers * chunksPerWorker
	if chunks > n {
		chunks = n
	}
	chunk := (n + chunks - 1) / chunks
	nchunks := (n + chunk - 1) / chunk
	t := &poolTask{body: body, n: n, chunk: chunk}
	t.wg.Add(nchunks)
	// Invite up to nchunks-1 helpers; non-blocking sends mean a busy pool
	// simply leaves more chunks for the submitter.
	helpers := nchunks - 1
	if helpers > maxWorkers-1 {
		helpers = maxWorkers - 1
	}
	for i := 0; i < helpers; i++ {
		select {
		case poolCh <- t:
		default:
			i = helpers
		}
	}
	t.run()
	t.wg.Wait()
}
