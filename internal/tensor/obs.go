package tensor

import (
	"sync/atomic"

	"avgpipe/internal/obs"
)

// The obs bridge mirrors arena and worker-pool state into metric gauges.
// Unbound (the default), publishing is a single atomic load of a nil
// pointer; once BindObs is called — the runtime does it in
// Pipeline.SetObs — the /metrics endpoint shows whether buffer reuse is
// actually happening.

type obsHandles struct {
	pooledBytes *obs.Gauge
	hitRate     *obs.Gauge
	workersBusy *obs.Gauge
}

var obsBridge atomic.Pointer[obsHandles]

// BindObs registers the tensor arena and worker-pool gauges in reg and
// keeps them updated from the kernel hot path. Passing nil binds the
// process-wide obs.Default() registry. Safe to call more than once; the
// latest registry wins.
func BindObs(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	h := &obsHandles{
		pooledBytes: reg.Gauge("avgpipe_tensor_arena_pooled_bytes",
			"Bytes of tensor storage currently parked in the buffer arena."),
		hitRate: reg.Gauge("avgpipe_tensor_arena_hit_rate",
			"Fraction of arena borrows served from pooled storage."),
		workersBusy: reg.Gauge("avgpipe_tensor_pool_workers_busy",
			"Kernel worker-pool goroutines currently executing chunks."),
	}
	obsBridge.Store(h)
	publishArenaGauges()
	publishPoolGauges()
}

func publishArenaGauges() {
	h := obsBridge.Load()
	if h == nil {
		return
	}
	h.pooledBytes.Set(float64(arenaStats.pooledBytes.Load()))
	if b := arenaStats.borrows.Load(); b > 0 {
		h.hitRate.Set(float64(arenaStats.hits.Load()) / float64(b))
	}
}

func publishPoolGauges() {
	h := obsBridge.Load()
	if h == nil {
		return
	}
	h.workersBusy.Set(float64(poolBusy.Load()))
}
