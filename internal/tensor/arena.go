package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// The arena is a size-bucketed sync.Pool-backed allocator for tensor
// storage. Kernels draw their outputs and scratch from it, so a pipeline
// that releases tensors when their micro-batch retires (the runtime's
// gradient chain, the LSTM activation stash, fused-kernel scratch) reuses
// the same buffers across micro-batches instead of churning the GC.
//
// Ownership rules (see DESIGN.md "Kernel execution"):
//
//   - Borrow hands out a tensor; whoever holds it last calls Release.
//   - Release on a tensor that did not come from the arena (New,
//     FromSlice, views from Reshape/Row/SliceRows) is a safe no-op, so
//     callers may release unconditionally.
//   - Releasing the same tensor twice panics: the second release would
//     hand one buffer to two live borrowers and silently alias them.
//   - A tensor that is never released is simply collected by the GC; the
//     arena is an optimization, not a lifetime obligation.
const (
	// minBucketBits is the smallest bucket (64 elements = 256 B); tinier
	// tensors round up to it.
	minBucketBits = 6
	// maxBucketBits is the largest bucket (16Mi elements = 64 MiB);
	// bigger borrows fall back to plain allocation and Release becomes a
	// no-op for them.
	maxBucketBits = 24
)

// arena[b] pools *Tensor whose backing storage has capacity 1<<b.
var arena [maxBucketBits + 1]sync.Pool

// arenaStats tracks arena traffic with always-on atomics; BindObs mirrors
// them into obs gauges.
var arenaStats struct {
	borrows     atomic.Int64
	hits        atomic.Int64
	releases    atomic.Int64
	discards    atomic.Int64
	pooledBytes atomic.Int64
}

// ArenaStats is a point-in-time snapshot of arena traffic.
type ArenaStats struct {
	// Borrows counts Borrow calls that were arena-eligible; Hits counts
	// how many of those were served from pooled storage.
	Borrows, Hits int64
	// Releases counts buffers returned to the arena; Discards counts
	// Release calls that were no-ops (unpooled or oversize tensors).
	Releases, Discards int64
	// PooledBytes is the storage currently parked in the arena.
	PooledBytes int64
}

// HitRate returns the fraction of borrows served from pooled storage.
func (s ArenaStats) HitRate() float64 {
	if s.Borrows == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Borrows)
}

// ReadArenaStats snapshots the arena counters (for tests and telemetry).
func ReadArenaStats() ArenaStats {
	return ArenaStats{
		Borrows:     arenaStats.borrows.Load(),
		Hits:        arenaStats.hits.Load(),
		Releases:    arenaStats.releases.Load(),
		Discards:    arenaStats.discards.Load(),
		PooledBytes: arenaStats.pooledBytes.Load(),
	}
}

// bucketFor returns the bucket index whose capacity fits n elements, or
// -1 when n is outside the pooled range.
func bucketFor(n int) int {
	if n <= 0 {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < minBucketBits {
		b = minBucketBits
	}
	if b > maxBucketBits {
		return -1
	}
	return b
}

// Borrow returns a zero-filled tensor of the given shape from the arena.
// It is the pooled analogue of New; pair it with Release when the tensor's
// lifetime is known.
func Borrow(shape ...int) *Tensor {
	t := borrowRaw(shape...)
	clear(t.data)
	return t
}

// borrowRaw returns an arena tensor with UNINITIALIZED contents: every
// element must be written before it is read. Kernels that fully overwrite
// their output use it to skip the clear pass.
func borrowRaw(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension in Borrow shape")
		}
		n *= d
	}
	bk := bucketFor(n)
	if bk < 0 {
		// Outside the pooled range (empty or enormous): plain allocation,
		// Release will be a no-op.
		return New(shape...)
	}
	arenaStats.borrows.Add(1)
	if v := arena[bk].Get(); v != nil {
		t := v.(*Tensor)
		arenaStats.hits.Add(1)
		arenaStats.pooledBytes.Add(-(4 << bk))
		t.data = t.data[:n]
		// Reuse the pooled shape slice via explicit copy: append(.., shape...)
		// here makes escape analysis leak the caller's variadic slice, costing
		// one heap allocation per Borrow even on a pool hit.
		if cap(t.shape) >= len(shape) {
			t.shape = t.shape[:len(shape)]
		} else {
			t.shape = make([]int, len(shape))
		}
		copy(t.shape, shape)
		t.free = false
		publishArenaGauges()
		return t
	}
	publishArenaGauges()
	sh := make([]int, len(shape))
	copy(sh, shape)
	return &Tensor{
		data:   make([]float32, n, 1<<bk),
		shape:  sh,
		bucket: uint8(bk + 1),
	}
}

// Release returns the tensor's storage to the arena. Only tensors handed
// out by Borrow (equivalently: by the kernels) are pooled; releasing any
// other tensor — New, FromSlice, or a view — is a no-op, so callers may
// release unconditionally. Releasing the same tensor twice panics, and the
// caller must not touch the tensor (or views of it) afterwards.
func (t *Tensor) Release() {
	if t == nil || t.bucket == 0 {
		arenaStats.discards.Add(1)
		return
	}
	if t.free {
		panic("tensor: Release of an already released tensor (double release would alias two live borrows)")
	}
	t.free = true
	bk := int(t.bucket) - 1
	t.data = t.data[:cap(t.data)]
	arena[bk].Put(t)
	arenaStats.releases.Add(1)
	arenaStats.pooledBytes.Add(4 << bk)
	publishArenaGauges()
}

// Pooled reports whether the tensor's storage came from the arena (and so
// whether Release will actually recycle it).
func (t *Tensor) Pooled() bool { return t != nil && t.bucket != 0 }
