package tensor

import "testing"

func TestBorrowZeroed(t *testing.T) {
	// Dirty a buffer, release it, and re-borrow the same bucket: Borrow
	// must hand back zeroed storage even on a pool hit.
	a := Borrow(8, 8)
	a.Fill(3)
	a.Release()
	b := Borrow(8, 8)
	defer b.Release()
	for i, v := range b.Data() {
		if v != 0 {
			t.Fatalf("Borrow after release: element %d = %v, want 0", i, v)
		}
	}
}

func TestBorrowReleaseNoAliasing(t *testing.T) {
	// A released buffer may be recycled, but never while its borrower is
	// live: borrow A, release A, borrow B (may reuse A's storage), then
	// borrow C — C must not alias B.
	a := Borrow(16, 16)
	a.Release()
	bt := Borrow(16, 16)
	ct := Borrow(16, 16)
	defer bt.Release()
	defer ct.Release()
	if &bt.Data()[0] == &ct.Data()[0] {
		t.Fatal("two live borrows share storage")
	}
	bt.Fill(1)
	ct.Fill(2)
	if bt.Data()[0] != 1 || ct.Data()[0] != 2 {
		t.Fatalf("live borrows clobbered each other: %v %v", bt.Data()[0], ct.Data()[0])
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	a := Borrow(32)
	a.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	a.Release()
}

func TestReleaseUnpooledIsNoOp(t *testing.T) {
	// New tensors, views, and FromSlice wrappers are not arena-backed;
	// releasing them must be safe and must not poison the pool.
	New(4, 4).Release()
	FromSlice([]float32{1, 2, 3, 4}, 2, 2).Release()
	m := Borrow(4, 4)
	m.Row(1).Release()
	m.SliceRows(0, 2).Release()
	m.Reshape(16).Release()
	// The base tensor is still releasable exactly once.
	m.Release()
}

func TestBorrowShapesAndBuckets(t *testing.T) {
	cases := [][]int{{1}, {1, 1}, {63, 65}, {7, 11, 13}, {64}, {65}}
	for _, shape := range cases {
		b := Borrow(shape...)
		if !b.Pooled() {
			t.Errorf("Borrow%v not pooled", shape)
		}
		n := 1
		for _, d := range shape {
			n *= d
		}
		if b.Size() != n {
			t.Errorf("Borrow%v size %d, want %d", shape, b.Size(), n)
		}
		b.Release()
	}
	// Zero-size and oversize tensors fall back to plain allocation.
	if Borrow(0, 5).Pooled() {
		t.Error("zero-size borrow should not be pooled")
	}
	if bucketFor(1<<maxBucketBits+1) != -1 {
		t.Error("oversize count should be outside the pooled range")
	}
}

func TestArenaStatsAndReuse(t *testing.T) {
	before := ReadArenaStats()
	// Under the race detector sync.Pool randomly discards a fraction of
	// Puts, so a single release/re-borrow pair is not guaranteed to hit;
	// a batch of pairs makes a zero-hit run vanishingly unlikely.
	for i := 0; i < 16; i++ {
		a := Borrow(128, 128)
		a.Release()
		b := Borrow(128, 128) // same bucket: should be a hit
		b.Release()
	}
	after := ReadArenaStats()
	if after.Borrows-before.Borrows != 32 {
		t.Fatalf("borrows delta %d, want 32", after.Borrows-before.Borrows)
	}
	if after.Hits <= before.Hits {
		t.Fatal("re-borrows of released buckets never counted as a hit")
	}
	if after.PooledBytes <= 0 {
		t.Fatalf("pooled bytes %d after a release, want > 0", after.PooledBytes)
	}
	if hr := after.HitRate(); hr <= 0 || hr > 1 {
		t.Fatalf("hit rate %v out of range", hr)
	}
}

func TestCloneIsPooledAndIndependent(t *testing.T) {
	src := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	c := src.Clone()
	if !c.Pooled() {
		t.Error("Clone should draw from the arena")
	}
	c.Data()[0] = 99
	if src.Data()[0] != 1 {
		t.Error("Clone shares storage with source")
	}
	c.Release()
}
