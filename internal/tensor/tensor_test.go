package tensor

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	if x.Dims() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad dims %v", x.Shape())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestScalarAndFull(t *testing.T) {
	s := Scalar(3.5)
	if s.Size() != 1 || s.Data()[0] != 3.5 {
		t.Fatalf("Scalar broken: %v", s)
	}
	f := Full(2, 3, 3)
	if f.Sum() != 18 {
		t.Fatalf("Full sum = %v, want 18", f.Sum())
	}
}

func TestAtSetOffsets(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.At(1, 2) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	if x.Data()[5] != 7 {
		t.Fatal("row-major offset wrong")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeViewSharesStorage(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape must share storage")
	}
	z := x.Reshape(-1, 2)
	if z.Dim(0) != 3 {
		t.Fatalf("inferred dim = %d, want 3", z.Dim(0))
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestSliceRowsAndRow(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	s := x.SliceRows(1, 3)
	if s.Dim(0) != 2 || s.At(0, 0) != 3 {
		t.Fatalf("SliceRows wrong: %v", s)
	}
	s.Set(-1, 0, 0)
	if x.At(1, 0) != -1 {
		t.Fatal("SliceRows must be a view")
	}
	r := x.Row(2)
	if r.Dim(0) != 2 || r.At(1) != 6 {
		t.Fatalf("Row wrong: %v", r)
	}
}

func TestConcatRows(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 1, 2)
	b := FromSlice([]float32{3, 4, 5, 6}, 2, 2)
	c := ConcatRows(a, b)
	if c.Dim(0) != 3 || c.At(2, 1) != 6 {
		t.Fatalf("ConcatRows wrong: %v", c)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{4, 3, 2, 1}, 2, 2)
	if got := Add(a, b).Sum(); got != 20 {
		t.Fatalf("Add sum = %v", got)
	}
	if got := Sub(a, b).At(0, 0); got != -3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Sum(); got != 4+6+6+4 {
		t.Fatalf("Mul sum = %v", got)
	}
	if got := Div(a, b).At(1, 1); got != 4 {
		t.Fatalf("Div = %v", got)
	}
	if got := Neg(a).Sum(); got != -10 {
		t.Fatalf("Neg sum = %v", got)
	}
	if got := AddScalar(a, 1).Sum(); got != 14 {
		t.Fatalf("AddScalar sum = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	a.AddInPlace(b)
	if a.At(1) != 22 {
		t.Fatal("AddInPlace")
	}
	a.SubInPlace(b)
	if a.At(1) != 2 {
		t.Fatal("SubInPlace")
	}
	a.MulInPlace(b)
	if a.At(0) != 10 {
		t.Fatal("MulInPlace")
	}
	a.ScaleInPlace(0.5)
	if a.At(0) != 5 {
		t.Fatal("ScaleInPlace")
	}
	a.AxpyInPlace(2, b)
	if a.At(0) != 25 {
		t.Fatal("AxpyInPlace")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(2), New(3))
}

func TestActivations(t *testing.T) {
	x := FromSlice([]float32{-1, 0, 1}, 3)
	r := ReLU(x)
	if r.At(0) != 0 || r.At(2) != 1 {
		t.Fatalf("ReLU: %v", r)
	}
	s := Sigmoid(Scalar(0))
	if !almostEq(float64(s.At()), 0.5, 1e-6) {
		t.Fatalf("Sigmoid(0) = %v", s.At())
	}
	th := Tanh(Scalar(0.5))
	if !almostEq(float64(th.At()), math.Tanh(0.5), 1e-6) {
		t.Fatalf("Tanh = %v", th.At())
	}
	if !almostEq(float64(Exp(Scalar(1)).At()), math.E, 1e-5) {
		t.Fatal("Exp")
	}
	if !almostEq(float64(Log(Scalar(math.E)).At()), 1, 1e-5) {
		t.Fatal("Log")
	}
	if !almostEq(float64(Sqrt(Scalar(9)).At()), 3, 1e-6) {
		t.Fatal("Sqrt")
	}
}

func TestRowVectorBroadcast(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float32{10, 20}, 2)
	a := AddRowVector(m, v)
	if a.At(0, 0) != 11 || a.At(1, 1) != 24 {
		t.Fatalf("AddRowVector: %v", a)
	}
	mm := MulRowVector(m, v)
	if mm.At(0, 1) != 40 || mm.At(1, 0) != 30 {
		t.Fatalf("MulRowVector: %v", mm)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	g := NewRNG(1)
	a := g.Normal(0, 1, 5, 7)
	b := g.Normal(0, 1, 7, 4)
	ref := MatMul(a, b)
	viaTB := MatMulTransB(a, Transpose2D(b))
	viaTA := MatMulTransA(Transpose2D(a), b)
	for i := range ref.Data() {
		if !almostEq(float64(ref.Data()[i]), float64(viaTB.Data()[i]), 1e-4) {
			t.Fatalf("MatMulTransB mismatch at %d", i)
		}
		if !almostEq(float64(ref.Data()[i]), float64(viaTA.Data()[i]), 1e-4) {
			t.Fatalf("MatMulTransA mismatch at %d", i)
		}
	}
}

func TestMatVecAndOuter(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float32{1, 1}, 2)
	mv := MatVec(m, v)
	if mv.At(0) != 3 || mv.At(1) != 7 {
		t.Fatalf("MatVec: %v", mv)
	}
	o := Outer(FromSlice([]float32{1, 2}, 2), FromSlice([]float32{3, 4}, 2))
	if o.At(1, 1) != 8 {
		t.Fatalf("Outer: %v", o)
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose2D(a)
	if at.Dim(0) != 3 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose2D: %v", at)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{-1, 4, 2, -3}, 2, 2)
	if x.Sum() != 2 {
		t.Fatal("Sum")
	}
	if x.Mean() != 0.5 {
		t.Fatal("Mean")
	}
	if x.Max() != 4 || x.Min() != -3 {
		t.Fatal("Max/Min")
	}
	if !almostEq(x.L2Norm(), math.Sqrt(1+16+4+9), 1e-6) {
		t.Fatal("L2Norm")
	}
	if Dot(x, x) != 30 {
		t.Fatal("Dot")
	}
	sr := SumRows(x)
	if sr.At(0) != 1 || sr.At(1) != 1 {
		t.Fatalf("SumRows: %v", sr)
	}
	sc := SumCols(x)
	if sc.At(0) != 3 || sc.At(1) != -1 {
		t.Fatalf("SumCols: %v", sc)
	}
	am := ArgMaxRows(x)
	if am[0] != 1 || am[1] != 0 {
		t.Fatalf("ArgMaxRows: %v", am)
	}
}

func TestSoftmaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 1000, 1001, 1002}, 2, 3)
	s := SoftmaxRows(x)
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			sum += float64(s.At(i, j))
		}
		if !almostEq(sum, 1, 1e-5) {
			t.Fatalf("softmax row %d sums to %v", i, sum)
		}
	}
	// Shift invariance: both rows are the same logits up to a constant.
	for j := 0; j < 3; j++ {
		if !almostEq(float64(s.At(0, j)), float64(s.At(1, j)), 1e-5) {
			t.Fatal("softmax must be shift invariant")
		}
	}
	ls := LogSoftmaxRows(x)
	for j := 0; j < 3; j++ {
		if !almostEq(float64(ls.At(0, j)), math.Log(float64(s.At(0, j))), 1e-5) {
			t.Fatal("logsoftmax must equal log(softmax)")
		}
	}
}

func TestGatherScatter(t *testing.T) {
	table := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	out := Gather(table, []int{2, 0, 2})
	if out.At(0, 0) != 5 || out.At(1, 1) != 2 || out.At(2, 1) != 6 {
		t.Fatalf("Gather: %v", out)
	}
	grad := New(3, 2)
	ScatterAddRows(grad, []int{2, 0, 2}, Ones(3, 2))
	if grad.At(2, 0) != 2 || grad.At(0, 0) != 1 || grad.At(1, 0) != 0 {
		t.Fatalf("ScatterAddRows must accumulate repeats: %v", grad)
	}
}

func TestHasNaN(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	if x.HasNaN() {
		t.Fatal("clean tensor flagged")
	}
	x.Set(float32(math.NaN()), 0)
	if !x.HasNaN() {
		t.Fatal("NaN not detected")
	}
	y := FromSlice([]float32{float32(math.Inf(1))}, 1)
	if !y.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestRNGInitializers(t *testing.T) {
	g := NewRNG(42)
	u := g.Uniform(-2, 2, 1000)
	if u.Min() < -2 || u.Max() >= 2 {
		t.Fatal("Uniform out of range")
	}
	n := g.Normal(5, 0.1, 10000)
	if !almostEq(n.Mean(), 5, 0.05) {
		t.Fatalf("Normal mean = %v", n.Mean())
	}
	x := g.Xavier(100, 100)
	limit := math.Sqrt(6.0 / 200.0)
	if float64(x.Max()) > limit || float64(x.Min()) < -limit {
		t.Fatal("Xavier out of bounds")
	}
	h := g.He(100, 100)
	if math.Abs(h.Mean()) > 0.02 {
		t.Fatalf("He mean = %v", h.Mean())
	}
	m := g.Bernoulli(0.5, 10000)
	frac := m.Sum() / 10000
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("Bernoulli fraction = %v", frac)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7).Normal(0, 1, 50)
	b := NewRNG(7).Normal(0, 1, 50)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestParallelForCoversRange(t *testing.T) {
	n := 100000
	marks := make([]int32, n)
	ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			marks[i]++
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times", i, m)
		}
	}
	// Degenerate cases must not hang or panic.
	ParallelFor(0, func(lo, hi int) { t.Fatal("body must not run for n=0") })
	ParallelFor(1, func(lo, hi int) {
		if lo != 0 || hi != 1 {
			t.Fatal("bad single range")
		}
	})
}

func BenchmarkMatMul256(b *testing.B) {
	g := NewRNG(1)
	x := g.Normal(0, 1, 256, 256)
	y := g.Normal(0, 1, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}
