package tensor

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 1 << 14, 1<<14 + 1, 100000} {
		var mu sync.Mutex
		seen := make([]int, n)
		ParallelFor(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("n=%d: bad range [%d,%d)", n, lo, hi)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestParallelForCostFansOutSmallN(t *testing.T) {
	// 64 iterations is far below the element threshold, but with a heavy
	// per-iteration cost the loop must still be eligible for fan-out: the
	// observable contract is that the whole range is covered.
	var sum atomic.Int64
	ParallelForCost(64, 1<<12, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	if got := sum.Load(); got != 64*63/2 {
		t.Fatalf("sum %d, want %d", got, 64*63/2)
	}
}

func TestParallelForNested(t *testing.T) {
	// Attention runs kernels inside a ParallelFor over the batch; the
	// submitter-participates design must not deadlock or drop ranges.
	n := 1 << 15
	out := make([]int32, n)
	ParallelFor(8, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			ParallelFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&out[i], 1)
				}
			})
		}
	})
	for i, c := range out {
		if c != 8 {
			t.Fatalf("index %d visited %d times, want 8", i, c)
		}
	}
}

func TestParallelForConcurrentSubmitters(t *testing.T) {
	// Many goroutines submitting tasks at once (the pipeline's stage
	// workers) must each see their own full range. Run under -race in the
	// Makefile race tier.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 1 << 15
			local := make([]int32, n)
			ParallelFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					local[i]++
				}
			})
			for i, c := range local {
				if c != 1 {
					t.Errorf("index %d visited %d times", i, c)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPoolWorkersBusyNonNegative(t *testing.T) {
	ParallelFor(1<<15, func(lo, hi int) {})
	if PoolWorkersBusy() < 0 {
		t.Fatalf("busy workers %d < 0", PoolWorkersBusy())
	}
}
