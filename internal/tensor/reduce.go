package tensor

import (
	"fmt"
	"math"
)

// Sum returns the sum of all elements, accumulated in float64 for
// stability on large tensors.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. Panics on an empty tensor.
func (t *Tensor) Max() float32 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. Panics on an empty tensor.
func (t *Tensor) Min() float32 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two tensors of equal size.
func Dot(a, b *Tensor) float64 {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %v vs %v", a.shape, b.shape))
	}
	var s float64
	for i := range a.data {
		s += float64(a.data[i]) * float64(b.data[i])
	}
	return s
}

// SumRows returns the column-wise sum of a 2-D tensor: (r,c) -> (c).
// This is the bias-gradient reduction. Rows are accumulated in ascending
// order (sequentially) so the reduction is deterministic.
func SumRows(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: SumRows requires a 2-D tensor")
	}
	out := Borrow(t.shape[1])
	sumRowsAccInto(out, t)
	return out
}

// SumRowsAcc sets dst += column-wise sum of t without allocating the
// intermediate — the fused bias-gradient accumulate. The column sums are
// formed in zeroed arena scratch first so each element's rounding
// sequence matches dst.AddInPlace(SumRows(t)) exactly.
func SumRowsAcc(dst, t *Tensor) {
	if len(t.shape) != 2 {
		panic("tensor: SumRowsAcc requires a 2-D tensor")
	}
	if len(dst.shape) != 1 || dst.shape[0] != t.shape[1] {
		panic(fmt.Sprintf("tensor: SumRowsAcc dst %v for %v", dst.shape, t.shape))
	}
	scratch := Borrow(t.shape[1])
	sumRowsAccInto(scratch, t)
	dst.AddInPlace(scratch)
	scratch.Release()
}

func sumRowsAccInto(out, t *Tensor) {
	r, c := t.shape[0], t.shape[1]
	for i := 0; i < r; i++ {
		axpyAdd(1, t.data[i*c:(i+1)*c], out.data)
	}
}

// SumCols returns the row-wise sum of a 2-D tensor: (r,c) -> (r).
func SumCols(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: SumCols requires a 2-D tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := borrowRaw(r)
	ParallelForCost(r, c, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := t.data[i*c : (i+1)*c]
			var s float32
			for j := 0; j < c; j++ {
				s += row[j]
			}
			out.data[i] = s
		}
	})
	return out
}

// ArgMaxRows returns, for each row of a 2-D tensor, the index of its
// maximum element.
func ArgMaxRows(t *Tensor) []int {
	if len(t.shape) != 2 {
		panic("tensor: ArgMaxRows requires a 2-D tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := make([]int, r)
	ParallelForCost(r, c, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := t.data[i*c : (i+1)*c]
			best, bestV := 0, row[0]
			for j := 1; j < c; j++ {
				if row[j] > bestV {
					best, bestV = j, row[j]
				}
			}
			out[i] = best
		}
	})
	return out
}

// SoftmaxRows returns the row-wise softmax of a 2-D tensor, computed with
// the max-subtraction trick for numerical stability.
func SoftmaxRows(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: SoftmaxRows requires a 2-D tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := borrowRaw(r, c)
	ParallelForCost(r, c, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := t.data[i*c : (i+1)*c]
			orow := out.data[i*c : (i+1)*c]
			m := row[0]
			for _, v := range row[1:] {
				if v > m {
					m = v
				}
			}
			var sum float64
			for j, v := range row {
				e := math.Exp(float64(v - m))
				orow[j] = float32(e)
				sum += e
			}
			inv := float32(1 / sum)
			for j := range orow {
				orow[j] *= inv
			}
		}
	})
	return out
}

// LogSoftmaxRows returns the row-wise log-softmax of a 2-D tensor.
func LogSoftmaxRows(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: LogSoftmaxRows requires a 2-D tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := borrowRaw(r, c)
	ParallelForCost(r, c, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := t.data[i*c : (i+1)*c]
			orow := out.data[i*c : (i+1)*c]
			m := row[0]
			for _, v := range row[1:] {
				if v > m {
					m = v
				}
			}
			var sum float64
			for _, v := range row {
				sum += math.Exp(float64(v - m))
			}
			lse := float32(math.Log(sum)) + m
			for j, v := range row {
				orow[j] = v - lse
			}
		}
	})
	return out
}

// Gather selects rows of table (v, d) by the given indices, producing
// (len(idx), d). This is the embedding-lookup primitive.
func Gather(table *Tensor, idx []int) *Tensor {
	if len(table.shape) != 2 {
		panic("tensor: Gather requires a 2-D table")
	}
	d := table.shape[1]
	out := borrowRaw(len(idx), d)
	ParallelForCost(len(idx), d, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := idx[i]
			if row < 0 || row >= table.shape[0] {
				panic(fmt.Sprintf("tensor: Gather index %d out of range [0,%d)", row, table.shape[0]))
			}
			copy(out.data[i*d:(i+1)*d], table.data[row*d:(row+1)*d])
		}
	})
	return out
}

// ScatterAddRows adds each row of src (n, d) into dst (v, d) at the row
// given by idx[i]. Rows may repeat; accumulation is sequential to stay
// deterministic. This is the embedding-gradient primitive.
func ScatterAddRows(dst *Tensor, idx []int, src *Tensor) {
	if len(dst.shape) != 2 || len(src.shape) != 2 || dst.shape[1] != src.shape[1] {
		panic(fmt.Sprintf("tensor: ScatterAddRows shapes %v, %v", dst.shape, src.shape))
	}
	if len(idx) != src.shape[0] {
		panic("tensor: ScatterAddRows index length mismatch")
	}
	d := dst.shape[1]
	for i, row := range idx {
		drow := dst.data[row*d : (row+1)*d]
		srow := src.data[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			drow[j] += srow[j]
		}
	}
}
