package tensor_test

import (
	"testing"

	"avgpipe/internal/tensor"
)

// Kernel benchmarks feed the bench-gate (make bench-gate): any >15% ns/op
// or allocs/op regression against BENCH_kernels.json fails CI. The matmul
// shapes come from the three workload cost models (transformer translation
// FFN, AWD-LSTM embedding projection, backward weight/input gradients).

func benchMatMul(b *testing.B, m, k, n int) {
	rng := tensor.NewRNG(1)
	a := rng.Uniform(-1, 1, m, k)
	w := rng.Uniform(-1, 1, k, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := tensor.MatMul(a, w)
		out.Release()
	}
}

func BenchmarkKernelMatMulLarge(b *testing.B)  { benchMatMul(b, 32, 1024, 4096) }
func BenchmarkKernelMatMulAWDEmb(b *testing.B) { benchMatMul(b, 32, 400, 1150) }

func BenchmarkKernelMatMulTransA(b *testing.B) {
	rng := tensor.NewRNG(2)
	x := rng.Uniform(-1, 1, 32, 512)
	dy := rng.Uniform(-1, 1, 32, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := tensor.MatMulTransA(x, dy)
		out.Release()
	}
}

func BenchmarkKernelMatMulTransB(b *testing.B) {
	rng := tensor.NewRNG(3)
	dy := rng.Uniform(-1, 1, 32, 512)
	w := rng.Uniform(-1, 1, 512, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := tensor.MatMulTransB(dy, w)
		out.Release()
	}
}

func BenchmarkKernelSoftmax(b *testing.B) {
	rng := tensor.NewRNG(4)
	x := rng.Uniform(-4, 4, 256, 4600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := tensor.SoftmaxRows(x)
		out.Release()
	}
}
