package tensor

import (
	"fmt"
	"math"
)

// Fused kernels collapse the dominant op chains of the training hot path
// into single passes over memory:
//
//   - MatMulBiasAct: matmul + bias broadcast + activation (the Linear
//     forward) — one output write instead of three tensors.
//   - MatMulTransAAcc / SumRowsAcc (matmul.go, reduce.go): the Linear
//     backward weight/bias accumulates without intermediate products.
//   - LSTMCellForward / LSTMCellBackward: the four-gate LSTM cell in one
//     pass over the gate matrix instead of a dozen elementwise kernels.
//
// Every fused kernel evaluates the exact same float expressions, in the
// same order, as the composed ops it replaces — the autograd cross-check
// and fused-equality tests in fused_test.go enforce this — so fusing
// never changes training losses.

// Act selects the activation applied by fused kernels. The formulas are
// the same float64-math ones used by Tanh/Sigmoid/ReLU in ops.go, so a
// fused kernel is bit-identical to the composed equivalent.
type Act uint8

const (
	// ActIdentity applies no activation.
	ActIdentity Act = iota
	// ActReLU applies max(x, 0).
	ActReLU
	// ActTanh applies tanh via float64 math.Tanh.
	ActTanh
	// ActSigmoid applies the logistic function via float64 math.Exp.
	ActSigmoid
)

func sigmoid32(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

func tanh32(x float32) float32 {
	return float32(math.Tanh(float64(x)))
}

// MatMulBiasAct returns act(a @ b + bias) in one pass: (m,k) x (k,n) with
// bias (n) broadcast to every row; bias may be nil to skip the add. This
// is the fused Linear/projection forward. Bit-identical to
// Tanh(AddRowVector(MatMul(a, b), bias)) and friends.
func MatMulBiasAct(a, b, bias *Tensor, act Act) *Tensor {
	checkMatMulBiasAct(a, b, bias)
	out := Borrow(a.shape[0], b.shape[1])
	matMulBiasActInto(out, a, b, bias, act)
	return out
}

// MatMulBiasActInto computes dst = act(a @ b + bias), fully overwriting
// dst — the zero-allocation variant the compiled execution path writes
// into pre-planned slot storage. dst is cleared first so the in-place
// accumulation is bit-identical to MatMulBiasAct's zeroed arena borrow.
func MatMulBiasActInto(dst, a, b, bias *Tensor, act Act) {
	checkMatMulBiasAct(a, b, bias)
	if len(dst.shape) != 2 || dst.shape[0] != a.shape[0] || dst.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulBiasActInto dst %v for %v x %v", dst.shape, a.shape, b.shape))
	}
	dst.Zero()
	matMulBiasActInto(dst, a, b, bias, act)
}

func checkMatMulBiasAct(a, b, bias *Tensor) {
	if len(a.shape) != 2 || len(b.shape) != 2 || a.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMulBiasAct shapes %v x %v", a.shape, b.shape))
	}
	if bias != nil && (len(bias.shape) != 1 || bias.shape[0] != b.shape[1]) {
		panic(fmt.Sprintf("tensor: MatMulBiasAct bias %v for output width %d", bias.shape, b.shape[1]))
	}
}

// matMulBiasActInto accumulates into out, which must be zeroed.
func matMulBiasActInto(out, a, b, bias *Tensor, act Act) {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	ParallelForCost(m, k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			for p0 := 0; p0 < k; p0 += matmulBlock {
				p1 := p0 + matmulBlock
				if p1 > k {
					p1 = k
				}
				for p := p0; p < p1; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					axpyAdd(av, b.data[p*n:(p+1)*n], orow)
				}
			}
			if bias != nil {
				bv := bias.data
				for j := 0; j < n; j++ {
					orow[j] += bv[j]
				}
			}
			switch act {
			case ActIdentity:
			case ActReLU:
				for j := 0; j < n; j++ {
					if orow[j] < 0 {
						orow[j] = 0
					}
				}
			case ActTanh:
				for j := 0; j < n; j++ {
					orow[j] = tanh32(orow[j])
				}
			case ActSigmoid:
				for j := 0; j < n; j++ {
					orow[j] = sigmoid32(orow[j])
				}
			}
		}
	})
}

// LSTMGates is the per-step activation bundle produced by LSTMCellForward.
// All tensors are (batch, hidden), arena-backed, and owned by the caller
// (the LSTM layer stashes them for backward and releases them there).
type LSTMGates struct {
	I, F, G, O *Tensor // gate activations
	C          *Tensor // new cell state
	TanhC      *Tensor // tanh of the new cell state
	H          *Tensor // new hidden state
}

// Release returns every gate buffer to the arena.
func (g *LSTMGates) Release() {
	g.I.Release()
	g.F.Release()
	g.G.Release()
	g.O.Release()
	g.C.Release()
	g.TanhC.Release()
	g.H.Release()
}

// LSTMCellForward runs one LSTM time step in a single fused pass:
//
//	z = xt@wx + h@wh + bias            (packed gates [input|forget|cell|output])
//	i,f,o = sigmoid(z…), g = tanh(z…)
//	c' = f*c + i*g;  h' = o * tanh(c')
//
// xt is (batch,in), h and c are (batch,hidden), wx (in,4h), wh (hidden,4h),
// bias (4h). The gate pre-activations are computed with the standard
// matmul kernels (same accumulation order as the composed version:
// (xt@wx + h@wh) + bias elementwise), then one pass produces all gate
// activations and states — bit-identical to the chain of
// MatMul/Add/AddRowVector/splitCols/Sigmoid/Tanh/Mul ops it replaces.
func LSTMCellForward(xt, h, c, wx, wh, bias *Tensor) LSTMGates {
	batch, hidden := h.shape[0], h.shape[1]
	if len(xt.shape) != 2 || xt.shape[0] != batch ||
		len(c.shape) != 2 || c.shape[0] != batch || c.shape[1] != hidden ||
		wx.shape[1] != 4*hidden || wh.shape[0] != hidden || wh.shape[1] != 4*hidden ||
		len(bias.shape) != 1 || bias.shape[0] != 4*hidden {
		panic(fmt.Sprintf("tensor: LSTMCellForward shapes xt=%v h=%v c=%v wx=%v wh=%v bias=%v",
			xt.shape, h.shape, c.shape, wx.shape, wh.shape, bias.shape))
	}
	zx := MatMul(xt, wx)
	zh := MatMul(h, wh)
	g := LSTMGates{
		I: borrowRaw(batch, hidden), F: borrowRaw(batch, hidden),
		G: borrowRaw(batch, hidden), O: borrowRaw(batch, hidden),
		C: borrowRaw(batch, hidden), TanhC: borrowRaw(batch, hidden),
		H: borrowRaw(batch, hidden),
	}
	ParallelForCost(batch, 4*hidden, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			zxr := zx.data[r*4*hidden : (r+1)*4*hidden]
			zhr := zh.data[r*4*hidden : (r+1)*4*hidden]
			cr := c.data[r*hidden : (r+1)*hidden]
			base := r * hidden
			for j := 0; j < hidden; j++ {
				// Same order as the composed path: (zx+zh) elementwise,
				// then the broadcast bias add.
				iv := sigmoid32((zxr[j] + zhr[j]) + bias.data[j])
				fv := sigmoid32((zxr[hidden+j] + zhr[hidden+j]) + bias.data[hidden+j])
				gv := tanh32((zxr[2*hidden+j] + zhr[2*hidden+j]) + bias.data[2*hidden+j])
				ov := sigmoid32((zxr[3*hidden+j] + zhr[3*hidden+j]) + bias.data[3*hidden+j])
				cv := fv*cr[j] + iv*gv
				tc := tanh32(cv)
				g.I.data[base+j] = iv
				g.F.data[base+j] = fv
				g.G.data[base+j] = gv
				g.O.data[base+j] = ov
				g.C.data[base+j] = cv
				g.TanhC.data[base+j] = tc
				g.H.data[base+j] = ov * tc
			}
		}
	})
	zx.Release()
	zh.Release()
	return g
}

// LSTMCellBackward computes, in one fused pass, the packed-gate
// pre-activation gradient dz (batch, 4*hidden) and the cell-state
// gradient dcPrev (batch, hidden) flowing to the previous time step:
//
//	dh = dyt + dhNext
//	do = dh * tanhC;      dc = dcNext + (dh*o) * (1 - tanhC²)
//	di = dc*g; df = dc*cPrev; dg = dc*i; dcPrev = dc*f
//	dz = [di*i*(1-i) | df*f*(1-f) | dg*(1-g²) | do*o*(1-o)]
//
// Each expression is evaluated in exactly the order shown, matching the
// chain of elementwise ops in the composed backward, so gradients are
// bit-identical. The caller finishes the step with matmuls over dz
// (weight-gradient accumulates, dx, dhPrev). Both outputs are
// arena-backed and owned by the caller.
func LSTMCellBackward(dyt, dhNext, dcNext, cPrev *Tensor, g LSTMGates) (dz, dcPrev *Tensor) {
	batch, hidden := g.I.shape[0], g.I.shape[1]
	for _, t := range []*Tensor{dyt, dhNext, dcNext, cPrev} {
		if len(t.shape) != 2 || t.shape[0] != batch || t.shape[1] != hidden {
			panic(fmt.Sprintf("tensor: LSTMCellBackward carry shape %v, want [%d %d]", t.shape, batch, hidden))
		}
	}
	dz = borrowRaw(batch, 4*hidden)
	dcPrev = borrowRaw(batch, hidden)
	ParallelForCost(batch, 4*hidden, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			base := r * hidden
			dzr := dz.data[r*4*hidden : (r+1)*4*hidden]
			for j := 0; j < hidden; j++ {
				iv := g.I.data[base+j]
				fv := g.F.data[base+j]
				gv := g.G.data[base+j]
				ov := g.O.data[base+j]
				tc := g.TanhC.data[base+j]
				dh := dyt.data[base+j] + dhNext.data[base+j]
				do := dh * tc
				dc := dcNext.data[base+j] + (dh*ov)*(1-tc*tc)
				dzr[j] = (dc * gv) * (iv * (1 - iv))
				dzr[hidden+j] = (dc * cPrev.data[base+j]) * (fv * (1 - fv))
				dzr[2*hidden+j] = (dc * iv) * (1 - gv*gv)
				dzr[3*hidden+j] = do * (ov * (1 - ov))
				dcPrev.data[base+j] = dc * fv
			}
		}
	})
	return dz, dcPrev
}
