package tensor

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source for tensor initialization. All
// experiments seed their own RNG so runs are exactly reproducible.
type RNG struct{ r *rand.Rand }

// NewRNG returns a seeded generator.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Uniform returns a tensor with elements drawn from U[lo, hi).
func (g *RNG) Uniform(lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*g.r.Float32()
	}
	return t
}

// Normal returns a tensor with elements drawn from N(mean, std²).
func (g *RNG) Normal(mean, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + std*float32(g.r.NormFloat64())
	}
	return t
}

// Xavier returns a tensor initialized with Glorot-uniform scaling for a
// layer with the given fan-in and fan-out (the first two dimensions).
func (g *RNG) Xavier(shape ...int) *Tensor {
	fanIn, fanOut := fans(shape)
	limit := float32(math.Sqrt(6 / float64(fanIn+fanOut)))
	return g.Uniform(-limit, limit, shape...)
}

// He returns a tensor initialized with Kaiming-normal scaling, suited to
// ReLU layers.
func (g *RNG) He(shape ...int) *Tensor {
	fanIn, _ := fans(shape)
	std := float32(math.Sqrt(2 / float64(fanIn)))
	return g.Normal(0, std, shape...)
}

func fans(shape []int) (fanIn, fanOut int) {
	switch len(shape) {
	case 0:
		return 1, 1
	case 1:
		return shape[0], shape[0]
	default:
		return shape[0], shape[1]
	}
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Bernoulli returns a {0,1} mask tensor where each element is 1 with
// probability p. Used by dropout.
func (g *RNG) Bernoulli(p float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		if g.r.Float64() < p {
			t.data[i] = 1
		}
	}
	return t
}
