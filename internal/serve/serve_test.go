package serve

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"avgpipe/internal/core"
	"avgpipe/internal/net"
	"avgpipe/internal/nn"
	"avgpipe/internal/tensor"
	"avgpipe/internal/workload"
)

// snapFrame packs a model's parameters into a snapshot frame, the way
// SnapshotPublisher does.
func snapFrame(ps []*nn.Param, round int) *net.Frame {
	f := &net.Frame{Type: net.FrameSnapshot, Round: uint32(round), Meta: uint32(len(ps))}
	for _, p := range ps {
		f.Tensors = append(f.Tensors, p.W.Clone())
	}
	return f
}

// evalForward runs the interpreter's eval-mode forward over a batch —
// the reference the served outputs must match bit-exactly.
func evalForward(m *nn.Sequential, x *tensor.Tensor) *tensor.Tensor {
	return m.Forward(nn.NewContext(), x, false)
}

// singleX builds the (seqLen, 1) time-major input of one sequence.
func singleX(tokens []int) *tensor.Tensor {
	x := tensor.New(len(tokens), 1)
	for p, tok := range tokens {
		x.Set(float32(tok), p, 0)
	}
	return x
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Task == nil {
		cfg.Task = workload.TranslationTask()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// testTokens builds 32 deterministic distinct in-vocab sequences.
func testTokens(t *testing.T, s *Server, seed int64) [][]int {
	t.Helper()
	seqs := make([][]int, 32)
	for i := range seqs {
		toks := make([]int, s.SeqLen())
		for p := range toks {
			toks[p] = int(seed+int64(31*i+7*p)) % s.Vocab()
		}
		seqs[i] = toks
	}
	return seqs
}

func bitEqualSlices(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// flatLogits concatenates a result's logit rows for whole-response
// comparison.
func flatLogits(r *Result) []float32 {
	var out []float32
	for _, row := range r.Logits {
		out = append(out, row...)
	}
	return out
}

// refLogits extracts example 0's logits from a single-example
// interpreter forward, row per position.
func refLogits(y *tensor.Tensor) []float32 {
	return append([]float32(nil), y.Data()...)
}

// TestPredictMatchesInterpreterEval is the core correctness property:
// whatever batch a request lands in, its answer is bit-identical to the
// interpreter's eval-mode forward of that sequence alone. This is batch
// invariance (every kernel is row-independent) plus compiled/interpreter
// equivalence, asserted end to end through the batcher.
func TestPredictMatchesInterpreterEval(t *testing.T) {
	task := workload.TranslationTask()
	s := newTestServer(t, Config{Task: task, MaxBatch: 4, MaxLinger: 5 * time.Millisecond, Workers: 2})
	model := task.NewModel(7)
	if err := s.InstallSnapshot(snapFrame(model.Params(), 3)); err != nil {
		t.Fatal(err)
	}
	seqs := testTokens(t, s, 11)
	want := make([][]float32, len(seqs))
	for i, toks := range seqs {
		want[i] = refLogits(evalForward(model, singleX(toks)))
	}
	var wg sync.WaitGroup
	errs := make([]error, len(seqs))
	got := make([]*Result, len(seqs))
	for i := range seqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = s.Predict(context.Background(), seqs[i])
		}(i)
	}
	wg.Wait()
	occupied := false
	for i := range seqs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if got[i].Round != 3 {
			t.Fatalf("request %d: round %d, want 3", i, got[i].Round)
		}
		if got[i].BatchSize > 1 {
			occupied = true
		}
		if !bitEqualSlices(flatLogits(got[i]), want[i]) {
			t.Fatalf("request %d (batch size %d): logits differ from single-sequence interpreter eval",
				i, got[i].BatchSize)
		}
		if len(got[i].Predictions) != s.SeqLen() {
			t.Fatalf("request %d: %d predictions, want %d", i, len(got[i].Predictions), s.SeqLen())
		}
	}
	if !occupied {
		t.Log("note: no request shared a batch (timing); invariance still checked")
	}
	if c := s.Registry().Counter("avgpipe_serve_requests_total", "").Value(); int(c) != len(seqs) {
		t.Fatalf("requests_total = %v, want %d", c, len(seqs))
	}
	if n := s.latency.Count(); int(n) != len(seqs) {
		t.Fatalf("latency observations = %d, want %d", n, len(seqs))
	}
}

// TestPerSequenceTask covers the MeanPoolTime output layout: one
// prediction row per request.
func TestPerSequenceTask(t *testing.T) {
	task := workload.ClassificationTask()
	s := newTestServer(t, Config{Task: task, MaxBatch: 4, Workers: 1})
	model := task.NewModel(5)
	if err := s.InstallSnapshot(snapFrame(model.Params(), 1)); err != nil {
		t.Fatal(err)
	}
	toks := testTokens(t, s, 3)[0]
	res, err := s.Predict(context.Background(), toks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != 1 || len(res.Logits) != 1 || len(res.Logits[0]) != 2 {
		t.Fatalf("want 1 prediction row of 2 classes, got %d rows", len(res.Predictions))
	}
	if !bitEqualSlices(res.Logits[0], refLogits(evalForward(model, singleX(toks)))) {
		t.Fatal("classification logits differ from interpreter eval")
	}
}

// TestPredictValidation pins the rejection paths: wrong length,
// out-of-vocab token, and no installed model.
func TestPredictValidation(t *testing.T) {
	s := newTestServer(t, Config{Task: workload.TranslationTask()})
	ctx := context.Background()
	if _, err := s.Predict(ctx, make([]int, s.SeqLen()+1)); err == nil {
		t.Fatal("accepted wrong-length request")
	}
	bad := make([]int, s.SeqLen())
	bad[0] = s.Vocab()
	if _, err := s.Predict(ctx, bad); err == nil {
		t.Fatal("accepted out-of-vocab token")
	}
	if _, err := s.Predict(ctx, make([]int, s.SeqLen())); err != ErrNoModel {
		t.Fatalf("before install: want ErrNoModel, got %v", err)
	}
	if ready, _ := s.Health().Ready(); ready {
		t.Fatal("ready before any model installed")
	}
	model := workload.TranslationTask().NewModel(1)
	if err := s.InstallSnapshot(snapFrame(model.Params(), 1)); err != nil {
		t.Fatal(err)
	}
	if ready, _ := s.Health().Ready(); !ready {
		t.Fatal("not ready after install")
	}
	if _, err := s.Predict(ctx, make([]int, s.SeqLen())); err != nil {
		t.Fatalf("valid request after install: %v", err)
	}
}

// TestInstallSnapshotRejectsMalformed pins snapshot validation: wrong
// frame type, Meta/tensor-count mismatch, and wrong tensor shapes must
// all fail without installing, and a stale round must be a no-op.
func TestInstallSnapshotRejectsMalformed(t *testing.T) {
	task := workload.TranslationTask()
	s := newTestServer(t, Config{Task: task})
	model := task.NewModel(2)
	good := snapFrame(model.Params(), 10)
	if err := s.InstallSnapshot(good); err != nil {
		t.Fatal(err)
	}
	if s.Round() != 10 {
		t.Fatalf("round %d, want 10", s.Round())
	}
	wrongType := snapFrame(model.Params(), 11)
	wrongType.Type = net.FrameUpdate
	if err := s.InstallSnapshot(wrongType); err == nil {
		t.Fatal("accepted non-snapshot frame")
	}
	wrongMeta := snapFrame(model.Params(), 11)
	wrongMeta.Meta++
	if err := s.InstallSnapshot(wrongMeta); err == nil {
		t.Fatal("accepted Meta/tensor-count mismatch")
	}
	wrongShape := snapFrame(model.Params(), 11)
	wrongShape.Tensors[0] = tensor.New(1, 1)
	if err := s.InstallSnapshot(wrongShape); err == nil {
		t.Fatal("accepted wrong tensor shape")
	}
	stale := snapFrame(model.Params(), 10)
	if err := s.InstallSnapshot(stale); err != nil {
		t.Fatalf("stale snapshot should be a silent no-op, got %v", err)
	}
	if s.Round() != 10 {
		t.Fatalf("round moved to %d on rejected installs", s.Round())
	}
}

// TestCloseDrains is the zero-lost-requests half of the acceptance
// criterion: every request accepted before Close is answered, and
// requests arriving after Close fail fast with ErrClosed.
func TestCloseDrains(t *testing.T) {
	task := workload.TranslationTask()
	s, err := New(Config{Task: task, MaxBatch: 4, MaxLinger: time.Millisecond, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	model := task.NewModel(3)
	if err := s.InstallSnapshot(snapFrame(model.Params(), 1)); err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	results := make([]error, n)
	toks := make([]int, s.SeqLen())
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = s.Predict(context.Background(), toks)
		}(i)
	}
	// Let some requests get accepted, then close under load.
	time.Sleep(2 * time.Millisecond)
	s.Close()
	wg.Wait()
	for i, err := range results {
		if err != nil && err != ErrClosed {
			t.Fatalf("request %d: lost with %v (want answered or ErrClosed)", i, err)
		}
	}
	if _, err := s.Predict(context.Background(), toks); err != ErrClosed {
		t.Fatalf("after Close: want ErrClosed, got %v", err)
	}
	s.Close() // idempotent
}

// TestWatchCheckpoints drives the pull path end to end: a trainer
// checkpoints, the watcher installs it, and the served outputs match
// the trainer's own reference model bit-exactly; a later checkpoint at
// a higher round is picked up automatically.
func TestWatchCheckpoints(t *testing.T) {
	task := workload.TranslationTask()
	dir := t.TempDir()
	tr, err := core.NewTrainer(core.TrainerConfig{
		Task: task, Pipelines: 2, Micro: 2, StageCount: 2, Seed: 5, ClipNorm: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for r := 0; r < 2; r++ {
		tr.Step()
	}
	if err := tr.SaveCheckpoint(dir); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{Task: task, MaxBatch: 2, Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		s.WatchCheckpoints(ctx, dir, 5*time.Millisecond)
	}()
	waitRound := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for s.Round() != want {
			if time.Now().After(deadline) {
				t.Fatalf("round %d never installed (at %d)", want, s.Round())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitRound(2)

	// Served output == the checkpointed reference model, bit-exact.
	ref := task.NewModel(1)
	if _, err := core.LoadReference(dir, ref.Params()); err != nil {
		t.Fatal(err)
	}
	toks := testTokens(t, s, 9)[0]
	res, err := s.Predict(context.Background(), toks)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqualSlices(flatLogits(res), refLogits(evalForward(ref, singleX(toks)))) {
		t.Fatal("served logits differ from checkpointed reference model")
	}

	// A newer checkpoint in the same directory hot-swaps in.
	tr.Step()
	if err := tr.SaveCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	waitRound(3)
	cancel()
	<-watchDone
}

// TestSnapshotPush drives the push path over the in-process transport:
// train publishes its reference snapshot, the server installs it, and
// serving matches the trainer's reference bit-exactly.
func TestSnapshotPush(t *testing.T) {
	task := workload.TranslationTask()
	tr, err := core.NewTrainer(core.TrainerConfig{
		Task: task, Pipelines: 2, Micro: 2, StageCount: 2, Seed: 5, ClipNorm: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Step()

	tp := net.NewInProc(4)
	l, err := tp.Listen("serve")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s := newTestServer(t, Config{Task: task, Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.ServeSnapshots(ctx, l)

	pub := NewSnapshotPublisher(tp, "serve")
	defer pub.Close()
	ref := tr.ReferenceSnapshot()
	if err := pub.Publish(ctx, tr.Round(), ref); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Round() != tr.Round() {
		if time.Now().After(deadline) {
			t.Fatalf("pushed round %d never installed", tr.Round())
		}
		time.Sleep(time.Millisecond)
	}
	refModel := task.NewModel(1)
	for i, p := range refModel.Params() {
		p.W.CopyFrom(ref[i].W)
	}
	toks := testTokens(t, s, 17)[0]
	res, err := s.Predict(context.Background(), toks)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqualSlices(flatLogits(res), refLogits(evalForward(refModel, singleX(toks)))) {
		t.Fatal("served logits differ from pushed reference snapshot")
	}
}

// TestDispatcherLinger pins the latency half of the batching knob: a
// lone request must not wait for a full batch — it flushes at the
// linger deadline.
func TestDispatcherLinger(t *testing.T) {
	task := workload.TranslationTask()
	s := newTestServer(t, Config{Task: task, MaxBatch: 64, MaxLinger: 5 * time.Millisecond, Workers: 1})
	model := task.NewModel(3)
	if err := s.InstallSnapshot(snapFrame(model.Params(), 1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := s.Predict(context.Background(), make([]int, s.SeqLen()))
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSize != 1 {
		t.Fatalf("lone request got batch size %d", res.BatchSize)
	}
	if wait := time.Since(start); wait > 2*time.Second {
		t.Fatalf("lone request waited %v — linger flush broken", wait)
	}
}
