package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"avgpipe/internal/workload"
)

// TestHTTPEndToEnd covers the whole HTTP surface: readiness flips on
// first install, /v1/predict round-trips JSON and matches the direct
// Predict path, /v1/info describes the task, and the serve metrics
// appear in /metrics exposition.
func TestHTTPEndToEnd(t *testing.T) {
	task := workload.TranslationTask()
	s := newTestServer(t, Config{Task: task, MaxBatch: 4, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "no model") {
		t.Fatalf("/readyz before install = %d %q, want 503 with reason", code, body)
	}

	toks := testTokens(t, s, 4)[0]
	body, _ := json.Marshal(PredictRequest{Tokens: toks})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict before install = %d, want 503", resp.StatusCode)
	}

	model := task.NewModel(6)
	if err := s.InstallSnapshot(snapFrame(model.Params(), 7)); err != nil {
		t.Fatal(err)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after install = %d", code)
	}

	resp, err = http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d", resp.StatusCode)
	}
	if pr.Round != 7 || len(pr.Predictions) != s.SeqLen() {
		t.Fatalf("predict response %+v: want round 7, %d predictions", pr, s.SeqLen())
	}
	direct, err := s.Predict(t.Context(), toks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Predictions {
		if direct.Predictions[i] != pr.Predictions[i] {
			t.Fatalf("HTTP predictions diverge from direct Predict at %d", i)
		}
	}

	// Malformed requests: bad JSON, wrong token count, wrong method.
	resp, _ = http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader("{"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", resp.StatusCode)
	}
	short, _ := json.Marshal(PredictRequest{Tokens: toks[:1]})
	resp, _ = http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(short))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short request = %d", resp.StatusCode)
	}
	// GET /v1/predict misses the POST pattern and falls through to the
	// obs catch-all; it must not answer 200.
	if code, _ := get("/v1/predict"); code == http.StatusOK {
		t.Fatal("GET predict answered 200")
	}

	if code, body := get("/v1/info"); code != http.StatusOK ||
		!strings.Contains(body, `"task":"translation"`) || !strings.Contains(body, `"round":7`) {
		t.Fatalf("/v1/info = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "avgpipe_serve_latency_seconds") ||
		!strings.Contains(body, "avgpipe_serve_batch_occupancy") ||
		!strings.Contains(body, "avgpipe_serve_model_round 7") {
		t.Fatalf("/metrics missing serve families:\n%.600s", body)
	}
}
