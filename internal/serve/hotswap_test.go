package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avgpipe/internal/workload"
)

// TestHotSwapNoTornReads is the acceptance test for swap correctness:
// under sustained concurrent load, model versions are swapped
// repeatedly, and every single response must (a) arrive — zero lost
// requests — and (b) be answered entirely by ONE version: its logits
// bit-match the full output of exactly the version its Round field
// names. A torn read (front of the response from version A, tail from
// version B) would match neither.
func TestHotSwapNoTornReads(t *testing.T) {
	task := workload.TranslationTask()
	s := newTestServer(t, Config{Task: task, MaxBatch: 4, MaxLinger: 500 * time.Microsecond, Workers: 2})

	// Distinct versions with distinct weights; round = model seed + 1 so
	// round uniquely names the weights.
	const versions = 4
	seqs := testTokens(t, s, 2)[:4]
	// want[v][q] is version v's full interpreter-eval logits for seqs[q].
	want := make([][][]float32, versions)
	for v := 0; v < versions; v++ {
		m := task.NewModel(int64(100 + v))
		want[v] = make([][]float32, len(seqs))
		for q, toks := range seqs {
			want[v][q] = refLogits(evalForward(m, singleX(toks)))
		}
		if v == 0 {
			if err := s.InstallSnapshot(snapFrame(m.Params(), 1)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var (
		stop     atomic.Bool
		answered atomic.Int64
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}

	var wg sync.WaitGroup
	const clients = 8
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				q := (c + i) % len(seqs)
				res, err := s.Predict(context.Background(), seqs[q])
				if err != nil {
					fail(fmt.Errorf("client %d: %v", c, err))
					return
				}
				answered.Add(1)
				if res.Round < 1 || res.Round > 40 {
					fail(fmt.Errorf("client %d: impossible round %d", c, res.Round))
					return
				}
				// Round r serves the model seeded 100+(r-1)%versions (see
				// the swap loop below).
				v := (res.Round - 1) % versions
				got := flatLogits(res)
				if !bitEqualSlices(got, want[v][q]) {
					// Diagnose: does it match ANY whole version? If yes the
					// Round label lied; if no, the response is torn.
					torn := true
					for o := 0; o < versions; o++ {
						if bitEqualSlices(got, want[o][q]) {
							fail(fmt.Errorf("client %d: response labeled round %d but carries version %d's output", c, res.Round, o))
							torn = false
							break
						}
					}
					if torn {
						fail(fmt.Errorf("client %d: TORN response — matches no single model version", c))
					}
					return
				}
			}
		}(c)
	}

	// Swap continuously while the clients hammer: cycle upward through
	// rounds (installs require monotone rounds).
	swaps := 0
	for round := 2; round <= 40 && !stop.Load(); round++ {
		m := task.NewModel(int64(100 + (round-1)%versions))
		if err := s.InstallSnapshot(snapFrame(m.Params(), round)); err != nil {
			fail(err)
			break
		}
		swaps++
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if answered.Load() == 0 || swaps < 10 {
		t.Fatalf("weak test: %d answers across %d swaps", answered.Load(), swaps)
	}
	t.Logf("%d requests answered across %d hot-swaps, zero lost, zero torn", answered.Load(), swaps)
}

// TestHotSwapRoundsMonotone pins that a batch in flight during an
// install keeps its version: rounds observed by one serial client never
// go backwards across swaps.
func TestHotSwapRoundsMonotone(t *testing.T) {
	task := workload.TranslationTask()
	s := newTestServer(t, Config{Task: task, MaxBatch: 2, MaxLinger: 500 * time.Microsecond, Workers: 1})
	m := task.NewModel(1)
	if err := s.InstallSnapshot(snapFrame(m.Params(), 1)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 2; round <= 20; round++ {
			s.InstallSnapshot(snapFrame(m.Params(), round))
			time.Sleep(200 * time.Microsecond)
		}
	}()
	last := 0
	toks := make([]int, s.SeqLen())
	for {
		select {
		case <-done:
			if last < 2 {
				t.Skip("swaps finished before any served round advanced")
			}
			return
		default:
		}
		res, err := s.Predict(context.Background(), toks)
		if err != nil {
			t.Fatal(err)
		}
		if res.Round < last {
			t.Fatalf("served round went backwards: %d after %d", res.Round, last)
		}
		last = res.Round
	}
}
