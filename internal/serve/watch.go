package serve

import (
	"context"
	"fmt"
	"time"

	"avgpipe/internal/core"
	"avgpipe/internal/net"
	"avgpipe/internal/nn"
)

// InstallCheckpoint loads the reference model from a completed
// checkpoint directory and hot-swaps it in.
func (s *Server) InstallCheckpoint(dir string) error {
	master := s.cfg.Task.NewModel(1)
	info, err := core.LoadReference(dir, master.Params())
	if err != nil {
		return err
	}
	return s.installParams(master.Params(), info.Round, "checkpoint")
}

// WatchCheckpoints polls dir every interval and hot-swaps whenever the
// commit marker's round changes. A directory that is not (yet) a
// complete checkpoint is simply not ready — SaveCheckpoint writes
// meta.json last, so a crash or an in-progress save never yields a
// marker. A training job re-checkpointing into the same directory can
// still overwrite reference.bin under the reader; the marker is
// re-read after the load and the install is skipped unless the round
// held still across it (the next tick retries). Returns when ctx fires.
func (s *Server) WatchCheckpoints(ctx context.Context, dir string, interval time.Duration) error {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		s.tryCheckpoint(dir)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func (s *Server) tryCheckpoint(dir string) {
	before, err := core.ReadCheckpointInfo(dir)
	if err != nil {
		return // not a complete checkpoint yet
	}
	if v := s.cur.Load(); v != nil && v.round >= before.Round {
		return // already serving this round or newer (e.g. via push)
	}
	master := s.cfg.Task.NewModel(1)
	if _, err := core.LoadReference(dir, master.Params()); err != nil {
		return
	}
	after, err := core.ReadCheckpointInfo(dir)
	if err != nil || after.Round != before.Round {
		return // overwritten mid-read; the next tick sees the new marker
	}
	s.installParams(master.Params(), before.Round, "checkpoint")
}

// InstallSnapshot validates a FrameSnapshot — type, the Meta
// tensor-count cross-check, and per-tensor shapes against a freshly
// built model — and hot-swaps its weights in. Stale pushes (a round not
// newer than the serving version) are ignored so a checkpoint watcher
// and a push stream can race without regressing the model.
func (s *Server) InstallSnapshot(f *net.Frame) error {
	if f.Type != net.FrameSnapshot {
		return fmt.Errorf("serve: frame type %v is not a snapshot", f.Type)
	}
	if int(f.Meta) != len(f.Tensors) {
		return fmt.Errorf("serve: snapshot claims %d tensors, carries %d", f.Meta, len(f.Tensors))
	}
	if v := s.cur.Load(); v != nil && int(f.Round) <= v.round {
		return nil
	}
	master := s.cfg.Task.NewModel(1)
	ps := master.Params()
	if len(f.Tensors) != len(ps) {
		return fmt.Errorf("serve: snapshot has %d tensors, model wants %d", len(f.Tensors), len(ps))
	}
	for i, p := range ps {
		if !sameShape(p.W.Shape(), f.Tensors[i].Shape()) {
			return fmt.Errorf("serve: tensor %d (%s): snapshot shape %v, model shape %v",
				i, p.Name, f.Tensors[i].Shape(), p.W.Shape())
		}
		p.W.CopyFrom(f.Tensors[i])
	}
	return s.installParams(ps, int(f.Round), "snapshot")
}

// ServeSnapshots accepts push connections on l and installs every valid
// snapshot frame received. Malformed frames fail only their connection;
// the accept loop runs until ctx fires or the listener closes.
func (s *Server) ServeSnapshots(ctx context.Context, l net.Listener) error {
	for {
		conn, err := l.Accept(ctx)
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			for {
				f, err := conn.Recv(ctx)
				if err != nil {
					return
				}
				if err := s.InstallSnapshot(f); err != nil {
					return
				}
			}
		}()
	}
}

// SnapshotPublisher is the training-side half of the push path: it
// ships reference-model snapshots to a serving tier over any transport.
// The connection is dialed lazily and re-dialed once per Publish after
// a send failure, so a serving tier that restarts mid-run only costs
// the snapshots sent while it was down.
type SnapshotPublisher struct {
	tr   net.Transport
	addr string
	conn net.Conn
}

// NewSnapshotPublisher targets addr on tr; no connection is made yet.
func NewSnapshotPublisher(tr net.Transport, addr string) *SnapshotPublisher {
	return &SnapshotPublisher{tr: tr, addr: addr}
}

// Publish sends one snapshot of ps at the given round. The tensors are
// deep-copied before any network wait, so the caller may resume
// training (mutating ps) as soon as Publish returns — and must not
// mutate ps during the call.
func (p *SnapshotPublisher) Publish(ctx context.Context, round int, ps []*nn.Param) error {
	f := &net.Frame{Type: net.FrameSnapshot, Round: uint32(round), Meta: uint32(len(ps))}
	for _, param := range ps {
		f.Tensors = append(f.Tensors, param.W.Clone())
	}
	if p.conn == nil {
		conn, err := p.tr.Dial(ctx, p.addr)
		if err != nil {
			return fmt.Errorf("serve: publish dial %s: %w", p.addr, err)
		}
		p.conn = conn
	}
	if err := p.conn.Send(ctx, f); err != nil {
		// One redial: the peer may have restarted since the last round.
		p.conn.Close()
		p.conn = nil
		conn, derr := p.tr.Dial(ctx, p.addr)
		if derr != nil {
			return fmt.Errorf("serve: publish redial %s: %w", p.addr, derr)
		}
		p.conn = conn
		if err := p.conn.Send(ctx, f); err != nil {
			return fmt.Errorf("serve: publish send: %w", err)
		}
	}
	return nil
}

// Close tears down the publisher's connection, if any.
func (p *SnapshotPublisher) Close() {
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}
