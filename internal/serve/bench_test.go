package serve

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"avgpipe/internal/obs"
	"avgpipe/internal/workload"
)

// The Serve* benchmarks back `make bench-serve-gate` (baseline:
// BENCH_serve.json). Three angles on the serving hot path:
//
//   - ServeBatchForward8 drives runBatch directly with a full batch —
//     deterministic work, no scheduler in the loop. This is the number
//     that moves when the compiled forward path or the per-request
//     copy-out regresses.
//   - ServeSaturatedPredict is the closed-loop saturation number:
//     parallel clients fire back-to-back through the real dispatcher,
//     so 1/ns_per_op is the sustained throughput the gate records.
//   - ServeOfferedLoadP99 paces requests at a fixed offered load and
//     reports the p99 latency as its ns/op — the tail-latency contract
//     at a load the server can comfortably sustain.

// benchServer builds a ready-to-serve instance with an installed model
// and all batch sizes pre-bound, so first-use Env construction does not
// leak into the measured region.
func benchServer(b *testing.B, maxBatch, workers int) *Server {
	b.Helper()
	task := workload.TranslationTask()
	s, err := New(Config{
		Task:      task,
		MaxBatch:  maxBatch,
		MaxLinger: time.Millisecond,
		Workers:   workers,
		Obs:       obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	if err := s.InstallSnapshot(snapFrame(task.NewModel(11).Params(), 1)); err != nil {
		b.Fatal(err)
	}
	// Warm every (worker, batch-size) Env: repeated concurrent bursts of
	// each size make it overwhelmingly likely both workers have bound
	// every plan before the timer starts.
	ctx := context.Background()
	toks := benchTokens(s)
	for rep := 0; rep < 4*workers; rep++ {
		for size := 1; size <= maxBatch; size++ {
			var wg sync.WaitGroup
			for i := 0; i < size; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := s.Predict(ctx, toks); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		}
	}
	return s
}

func benchTokens(s *Server) []int {
	toks := make([]int, s.SeqLen())
	for i := range toks {
		toks[i] = (31*i + 7) % s.Vocab()
	}
	return toks
}

// BenchmarkServeBatchForward8 measures one full dynamic batch through
// the worker path — bind, time-major fill, compiled forward, logits
// copy-out, reply — with no dispatcher or client goroutines in the
// loop. ns/op is per batch of 8, not per request.
func BenchmarkServeBatchForward8(b *testing.B) {
	const n = 8
	s := benchServer(b, n, 1)
	toks := benchTokens(s)
	batch := make([]*request, n)
	for i := range batch {
		batch[i] = &request{
			tokens: toks,
			resp:   make(chan *Result, 1),
			errc:   make(chan error, 1),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range batch {
			r.start = time.Now()
		}
		s.runBatch(0, batch)
		for _, r := range batch {
			select {
			case <-r.resp:
			case err := <-r.errc:
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkServeSaturatedPredict is the closed-loop saturation
// benchmark: parallel clients issue back-to-back Predict calls through
// the real dispatcher and batcher. ns/op is wall time per completed
// request, so sustained throughput = 1e9 / ns_per_op req/s — the
// "sustained throughput" number BENCH_serve.json commits to.
func BenchmarkServeSaturatedPredict(b *testing.B) {
	s := benchServer(b, 8, 2)
	toks := benchTokens(s)
	ctx := context.Background()
	b.SetParallelism(4)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.Predict(ctx, toks); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkServeOfferedLoadP99 drives a fixed offered load (open loop:
// admission is paced by the clock, not by completions) and reports the
// p99 request latency as the benchmark's ns/op via ReportMetric. The
// rate is chosen well under saturation so the number is the batching +
// forward tail, not a queueing blow-up; the gate's elevated
// time_regression_limit absorbs tail noise.
func BenchmarkServeOfferedLoadP99(b *testing.B) {
	const rate = 1500 // req/s offered
	s := benchServer(b, 8, 2)
	toks := benchTokens(s)
	ctx := context.Background()
	interval := time.Second / rate

	lats := make([]time.Duration, b.N)
	sem := make(chan struct{}, 64)
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	next := time.Now()
	for i := 0; i < b.N; i++ {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(interval)
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			if _, err := s.Predict(ctx, toks); err != nil {
				b.Error(err)
				return
			}
			lats[i] = time.Since(start)
		}(i)
	}
	wg.Wait()
	b.StopTimer()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[int(0.99*float64(len(lats)-1))]
	b.ReportMetric(float64(p99.Nanoseconds()), "ns/op")
}
