package serve

import (
	"encoding/json"
	"net/http"

	"avgpipe/internal/obs"
)

// PredictRequest is the POST /v1/predict body.
type PredictRequest struct {
	// Tokens is the input sequence: exactly SeqLen ids in [0, Vocab).
	Tokens []int `json:"tokens"`
}

// PredictResponse is the reply. Predictions has one entry per output
// row (seqLen for per-position tasks, 1 for per-sequence tasks); Logits
// carries the raw scores behind them.
type PredictResponse struct {
	Predictions []int       `json:"predictions"`
	Logits      [][]float32 `json:"logits,omitempty"`
	Round       int         `json:"round"`
	BatchSize   int         `json:"batch_size"`
}

// Handler serves the inference API plus the full observability surface:
//
//	POST /v1/predict   batched inference on the averaged model
//	GET  /v1/info      task name, seq_len, vocab, serving round
//	/metrics /healthz /readyz /debug...   via obs.Handler
//
// /readyz reports 503 until the first model version is installed.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		var req PredictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		res, err := s.Predict(r.Context(), req.Tokens)
		if err != nil {
			code := http.StatusBadRequest
			switch err {
			case ErrNoModel, ErrClosed:
				code = http.StatusServiceUnavailable
			case r.Context().Err():
				code = http.StatusRequestTimeout
			}
			http.Error(w, err.Error(), code)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(PredictResponse{
			Predictions: res.Predictions,
			Logits:      res.Logits,
			Round:       res.Round,
			BatchSize:   res.BatchSize,
		})
	})
	mux.HandleFunc("GET /v1/info", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"task":    s.cfg.Task.Name,
			"seq_len": s.seqLen,
			"vocab":   s.vocab,
			"round":   s.Round(),
		})
	})
	mux.Handle("/", obs.Handler(s.cfg.Obs, obs.WithHealth(s.health)))
	return mux
}
