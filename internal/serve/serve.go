// Package serve is the inference tier: it puts the elastic averager's
// reference model — the statistically meaningful copy the paper
// evaluates — in front of traffic. A Server owns a dynamic batcher
// (requests queue into a batch that flushes on a size cap or a
// max-linger deadline) feeding worker goroutines that replay the
// compiled eval-mode op graph (nn.CompileStageInference), and supports
// zero-downtime hot-swap of model snapshots from two sources: polling a
// checkpoint directory's commit marker (WatchCheckpoints) and receiving
// FrameSnapshot pushes over the internal/net codec from a live training
// job (ServeSnapshots / SnapshotPublisher).
//
// Swap correctness contract: a model version is immutable once
// installed, a worker loads the current version exactly once per batch,
// and every request in that batch is answered from that one version —
// a swap never tears a response across versions. Close drains: every
// request accepted before Close is answered.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"avgpipe/internal/compiled"
	"avgpipe/internal/nn"
	"avgpipe/internal/obs"
	"avgpipe/internal/tensor"
	"avgpipe/internal/workload"
)

// ErrNoModel is returned by Predict before the first model version has
// been installed (the /readyz probe answers 503 for the same reason).
var ErrNoModel = errors.New("serve: no model installed")

// ErrClosed is returned by Predict after Close has begun.
var ErrClosed = errors.New("serve: server closed")

// Config describes a Server. Zero values select the documented
// defaults; Task is required.
type Config struct {
	// Task names the workload being served: its NewModel builds the
	// architecture checkpoints and snapshots are loaded into, and its
	// PerPosition flag fixes the output layout.
	Task *workload.Task
	// MaxBatch is the batch-size flush threshold (default 8).
	MaxBatch int
	// MaxLinger is how long the first queued request may wait for
	// companions before the batch flushes anyway (default 2ms). Smaller
	// favors latency, larger favors occupancy/throughput — this is the
	// one knob.
	MaxLinger time.Duration
	// Workers is the number of executor goroutines, each with its own
	// model replica and compiled Env pool (default 2).
	Workers int
	// QueueDepth bounds the accepted-but-unbatched request queue;
	// Predict blocks (context-cancellably) when it is full
	// (default 4*MaxBatch).
	QueueDepth int
	// Obs receives the serving metrics (a private registry is created
	// when nil).
	Obs *obs.Registry
}

// Result is one answered request.
type Result struct {
	// Predictions is the argmax class per output row of this example:
	// seqLen entries for per-position tasks, one for per-sequence tasks.
	Predictions []int
	// Logits are the raw per-row scores behind Predictions.
	Logits [][]float32
	// Round is the training round of the model version that answered.
	Round int
	// BatchSize is the occupancy of the dynamic batch that carried this
	// request.
	BatchSize int
}

type request struct {
	tokens []int
	start  time.Time
	resp   chan *Result // cap 1: the worker never blocks replying
	errc   chan error   // cap 1
}

// workerModel is one worker's private copy of a model version: its own
// parameter tensors, its own compiled program, and a pool of Envs keyed
// by batch size. Nothing here is shared across workers, so forward
// replay needs no locks.
type workerModel struct {
	model *nn.Sequential
	prog  *compiled.Program
	envs  map[int]*compiled.Env
	xbuf  map[int]*tensor.Tensor
}

// modelVersion is an immutable installed snapshot. Workers load the
// pointer once per batch; installs publish a fully built replacement
// with a single atomic store.
type modelVersion struct {
	round     int
	source    string // "checkpoint" | "snapshot"
	perWorker []*workerModel
}

// Server is the batched inference server. Create with New, install a
// model (InstallCheckpoint / InstallSnapshot / a watcher), then call
// Predict from any number of goroutines.
type Server struct {
	cfg    Config
	seqLen int
	vocab  int // -1 when the model has no leading Embedding (no range check)

	cur     atomic.Pointer[modelVersion]
	swapMu  sync.Mutex // serializes installs (watch + push may race)
	reqCh   chan *request
	batchCh chan []*request
	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup

	health *obs.Health

	requests  *obs.Counter
	rejected  *obs.Counter
	swaps     map[string]*obs.Counter
	roundG    *obs.Gauge
	inflight  *obs.Gauge
	latency   *obs.Histogram
	occupancy *obs.Histogram
}

// New builds a Server and starts its batcher and workers. No model is
// installed yet: Predict fails with ErrNoModel and /readyz reports 503
// until the first install.
func New(cfg Config) (*Server, error) {
	if cfg.Task == nil {
		return nil, errors.New("serve: Config.Task is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.MaxLinger <= 0 {
		cfg.MaxLinger = 2 * time.Millisecond
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxBatch
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	// The request geometry comes from the task's own data: the eval
	// batch fixes seqLen, the model's leading Embedding fixes the vocab.
	eval := cfg.Task.NewGen(1).EvalBatch()
	seqLen := eval.X.Dim(0) / eval.Size
	vocab := -1
	probe := cfg.Task.NewModel(1)
	if emb, ok := firstEmbedding(probe); ok {
		vocab = emb.Vocab
	}
	s := &Server{
		cfg:     cfg,
		seqLen:  seqLen,
		vocab:   vocab,
		reqCh:   make(chan *request, cfg.QueueDepth),
		batchCh: make(chan []*request, cfg.Workers),
		health:  obs.NewHealth(),

		requests: cfg.Obs.Counter("avgpipe_serve_requests_total",
			"requests answered (including errors)"),
		rejected: cfg.Obs.Counter("avgpipe_serve_rejected_total",
			"requests rejected before batching (validation, no model, closed)"),
		swaps: map[string]*obs.Counter{
			"checkpoint": cfg.Obs.Counter("avgpipe_serve_swaps_total",
				"model hot-swaps installed", "source", "checkpoint"),
			"snapshot": cfg.Obs.Counter("avgpipe_serve_swaps_total",
				"model hot-swaps installed", "source", "snapshot"),
		},
		roundG: cfg.Obs.Gauge("avgpipe_serve_model_round",
			"training round of the serving model version"),
		inflight: cfg.Obs.Gauge("avgpipe_serve_inflight",
			"requests accepted and not yet answered"),
		latency: cfg.Obs.Histogram("avgpipe_serve_latency_seconds",
			"per-request latency, enqueue to reply", obs.DefSecondsBuckets()),
		occupancy: cfg.Obs.Histogram("avgpipe_serve_batch_occupancy",
			"examples per executed batch", obs.LinearBuckets(1, 1, cfg.MaxBatch)),
	}
	s.health.SetNotReady("no model installed")
	s.wg.Add(1 + cfg.Workers)
	go s.dispatch()
	for w := 0; w < cfg.Workers; w++ {
		go s.worker(w)
	}
	return s, nil
}

func firstEmbedding(m *nn.Sequential) (*nn.Embedding, bool) {
	for _, l := range m.Layers {
		switch v := l.(type) {
		case *nn.Embedding:
			return v, true
		case *nn.Sequential:
			if e, ok := firstEmbedding(v); ok {
				return e, true
			}
		}
	}
	return nil, false
}

// SeqLen returns the per-request token count the task expects.
func (s *Server) SeqLen() int { return s.seqLen }

// Vocab returns the input vocabulary size, or -1 when unknown.
func (s *Server) Vocab() int { return s.vocab }

// Health exposes the readiness state for probe wiring.
func (s *Server) Health() *obs.Health { return s.health }

// Registry exposes the metrics registry the server reports into.
func (s *Server) Registry() *obs.Registry { return s.cfg.Obs }

// Round returns the installed model version's training round, or -1
// before the first install.
func (s *Server) Round() int {
	if v := s.cur.Load(); v != nil {
		return v.round
	}
	return -1
}

// installParams builds an immutable model version from master weights —
// one private replica per worker, each compiled for eval-mode replay —
// and publishes it with one atomic store. Requests in flight keep the
// version their batch loaded; new batches see the new one.
func (s *Server) installParams(master []*nn.Param, round int, source string) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	per := make([]*workerModel, s.cfg.Workers)
	for w := range per {
		m := s.cfg.Task.NewModel(1) // init seed irrelevant: weights overwritten
		ps := m.Params()
		if len(ps) != len(master) {
			return fmt.Errorf("serve: snapshot has %d tensors, model wants %d", len(master), len(ps))
		}
		for i, p := range ps {
			if !sameShape(p.W.Shape(), master[i].W.Shape()) {
				return fmt.Errorf("serve: tensor %d (%s): snapshot shape %v, model shape %v",
					i, p.Name, master[i].W.Shape(), p.W.Shape())
			}
			p.W.CopyFrom(master[i].W)
		}
		prog, err := nn.CompileStageInference(m, compiled.Options{})
		if err != nil {
			return fmt.Errorf("serve: compile: %w", err)
		}
		per[w] = &workerModel{model: m, prog: prog,
			envs: make(map[int]*compiled.Env), xbuf: make(map[int]*tensor.Tensor)}
	}
	s.cur.Store(&modelVersion{round: round, source: source, perWorker: per})
	s.swaps[source].Inc()
	s.roundG.Set(float64(round))
	s.health.SetReady()
	return nil
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Predict answers one request: tokens must be exactly SeqLen ids in
// [0, Vocab). It blocks until the dynamic batcher flushes the batch the
// request landed in (at most MaxLinger plus execution), the context
// fires, or the server reports an error.
func (s *Server) Predict(ctx context.Context, tokens []int) (*Result, error) {
	if len(tokens) != s.seqLen {
		s.rejected.Inc()
		return nil, fmt.Errorf("serve: want %d tokens, got %d", s.seqLen, len(tokens))
	}
	if s.vocab > 0 {
		for _, tok := range tokens {
			if tok < 0 || tok >= s.vocab {
				s.rejected.Inc()
				return nil, fmt.Errorf("serve: token %d out of vocab [0,%d)", tok, s.vocab)
			}
		}
	}
	if s.cur.Load() == nil {
		s.rejected.Inc()
		return nil, ErrNoModel
	}
	r := &request{
		tokens: tokens,
		start:  time.Now(),
		resp:   make(chan *Result, 1),
		errc:   make(chan error, 1),
	}
	// The RLock spans the send so Close cannot close reqCh midway; the
	// dispatcher keeps draining until the channel closes, so a sender
	// blocked on backpressure always makes progress and releases it.
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		s.rejected.Inc()
		return nil, ErrClosed
	}
	select {
	case s.reqCh <- r:
		s.closeMu.RUnlock()
		s.inflight.Add(1)
	case <-ctx.Done():
		s.closeMu.RUnlock()
		s.rejected.Inc()
		return nil, ctx.Err()
	}
	// Accepted: the reply always arrives (Close drains), so a caller
	// abandoning via ctx only abandons the wait, never the work.
	select {
	case res := <-r.resp:
		return res, nil
	case err := <-r.errc:
		return nil, err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// dispatch is the dynamic batcher: it accumulates requests and flushes
// when the batch hits MaxBatch or the oldest queued request has
// lingered MaxLinger.
func (s *Server) dispatch() {
	defer s.wg.Done()
	defer close(s.batchCh)
	var (
		pending []*request
		timer   = time.NewTimer(time.Hour)
		timerC  <-chan time.Time
	)
	if !timer.Stop() {
		<-timer.C
	}
	flush := func() {
		if timerC != nil {
			if !timer.Stop() {
				<-timer.C
			}
			timerC = nil
		}
		if len(pending) > 0 {
			s.batchCh <- pending
			pending = nil
		}
	}
	for {
		select {
		case r, ok := <-s.reqCh:
			if !ok {
				flush() // Close: hand the tail to the workers
				return
			}
			pending = append(pending, r)
			if len(pending) == 1 {
				timer.Reset(s.cfg.MaxLinger)
				timerC = timer.C
			}
			if len(pending) >= s.cfg.MaxBatch {
				flush()
			}
		case <-timerC:
			timerC = nil
			if len(pending) > 0 {
				s.batchCh <- pending
				pending = nil
			}
		}
	}
}

func (s *Server) worker(id int) {
	defer s.wg.Done()
	for batch := range s.batchCh {
		s.runBatch(id, batch)
	}
}

// runBatch executes one dynamic batch. The version pointer is loaded
// exactly once; every request in the batch is answered from it — the
// no-torn-reads half of the hot-swap contract.
func (s *Server) runBatch(id int, batch []*request) {
	defer func() {
		for _, r := range batch {
			s.latency.Observe(time.Since(r.start).Seconds())
			s.inflight.Add(-1)
			s.requests.Inc()
		}
	}()
	v := s.cur.Load()
	if v == nil {
		for _, r := range batch {
			r.errc <- ErrNoModel
		}
		return
	}
	wm := v.perWorker[id]
	n := len(batch)
	env, x, err := wm.bind(n, s.seqLen)
	if err != nil {
		for _, r := range batch {
			r.errc <- err
		}
		return
	}
	// Time-major input, the data package's layout: token for (position
	// p, example b) lands in row p*n+b.
	xd := x.Data()
	for b, r := range batch {
		for p, tok := range r.tokens {
			xd[p*n+b] = float32(tok)
		}
	}
	env.BindInput(x)
	env.Forward()
	out := env.Output()
	rows, cols := out.Dim(0), out.Dim(1)
	rowsPer := rows / n
	od := out.Data()
	for b, r := range batch {
		res := &Result{
			Predictions: make([]int, rowsPer),
			Logits:      make([][]float32, rowsPer),
			Round:       v.round,
			BatchSize:   n,
		}
		for j := 0; j < rowsPer; j++ {
			row := od[(j*n+b)*cols : (j*n+b+1)*cols]
			res.Logits[j] = append([]float32(nil), row...)
			res.Predictions[j] = argmax(row)
		}
		r.resp <- res
	}
	env.ReleaseOutput()
	env.EndMicro()
	s.occupancy.Observe(float64(n))
}

// bind returns the worker's Env and input buffer for a batch size,
// building them on first use. Both live in the version's workerModel,
// so a hot swap naturally retires them with the old weights.
func (wm *workerModel) bind(n, seqLen int) (*compiled.Env, *tensor.Tensor, error) {
	env, ok := wm.envs[n]
	if !ok {
		shape := []int{seqLen * n, 1}
		if err := wm.prog.CheckPlan(shape); err != nil {
			return nil, nil, fmt.Errorf("serve: plan batch %d: %w", n, err)
		}
		env = wm.prog.NewEnv(shape)
		wm.envs[n] = env
		wm.xbuf[n] = tensor.New(shape...)
	}
	return env, wm.xbuf[n], nil
}

func argmax(row []float32) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}

// Close stops accepting requests, waits for every accepted request to
// be answered (the batcher flushes its tail, the workers drain the
// batch queue), and releases the goroutines. Idempotent.
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	close(s.reqCh)
	s.closeMu.Unlock()
	s.wg.Wait()
	s.health.SetNotReady("closed")
}
