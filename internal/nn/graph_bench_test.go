package nn

import (
	"testing"

	"avgpipe/internal/compiled"
	"avgpipe/internal/tensor"
)

// Steady-state micro-batch benchmarks for the compiled op-graph path
// (BENCH_graph.json, gated by `make bench-graph-gate`). Each iteration
// replays one full micro-batch — forward, 2BP grad-input, grad-weight,
// EndMicro — against a pre-built Program and a reused Env, exactly the
// loop the compiled stage worker runs after its pool warms up. The
// allocs/op column is the contract: the replay makes zero allocation
// decisions on slot registers, so allocations must not grow when the
// compiler or planner changes.

// benchStage is a middle-of-pipeline MLP stage: a fusable Linear+ReLU
// pair, a LayerNorm, and a boundary Linear whose output ships downstream.
func benchStage(rng *tensor.RNG) *Sequential {
	return NewSequential(
		NewLinear(rng, 64, 64),
		&ReLU{},
		NewLayerNorm(64),
		NewLinear(rng, 64, 64),
	)
}

// replayMicro drives one compiled micro-batch with the ownership moves
// of a real middle stage: the downstream stage owns the shipped output,
// the upstream stage owns the shipped input-gradient, and EndMicro
// retires the incoming gradient.
func replayMicro(env *compiled.Env, x *tensor.Tensor) {
	env.BindInput(x)
	env.Forward()
	out := env.Output()
	dy := tensor.Borrow(out.Shape()...) // downstream ships dL/dout back
	env.BindGradIn(dy)
	env.BackwardInput()
	dx := env.GradOut()
	env.BackwardWeights()
	env.EndMicro() // releases dy
	out.Release()  // downstream done with the activation
	if dx != nil {
		dx.Release() // upstream done with the gradient
	}
}

func BenchmarkGraphMLPMicro(b *testing.B) {
	rng := tensor.NewRNG(21)
	stage := benchStage(rng)
	prog, err := CompileStage(stage, compiled.Options{EmitOut: true, EmitDX: true})
	if err != nil {
		b.Fatal(err)
	}
	x := rng.Uniform(-1, 1, 32, 64)
	env := prog.NewEnv(x.Shape())
	replayMicro(env, x) // warm the arena free lists
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayMicro(env, x)
	}
}

// BenchmarkGraphDropoutMicro exercises the per-micro aux path: Dropout
// and Sigmoid stash masks and activations in the Env, not the module,
// so the replay stays allocation-free even though the stage is
// stateful per micro-batch.
func BenchmarkGraphDropoutMicro(b *testing.B) {
	rng := tensor.NewRNG(22)
	stage := NewSequential(
		NewLinear(rng, 64, 64),
		NewDropout(rng, 0.1),
		NewLinear(rng, 64, 64),
		&Sigmoid{},
	)
	prog, err := CompileStage(stage, compiled.Options{EmitOut: true, EmitDX: true})
	if err != nil {
		b.Fatal(err)
	}
	x := rng.Uniform(-1, 1, 32, 64)
	env := prog.NewEnv(x.Shape())
	replayMicro(env, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayMicro(env, x)
	}
}

// BenchmarkGraphMLPMicroInterp is the interpreter running the identical
// stage and ownership moves — the dispatch/allocation gap between this
// and BenchmarkGraphMLPMicro is what the compiled path buys.
func BenchmarkGraphMLPMicroInterp(b *testing.B) {
	rng := tensor.NewRNG(21)
	stage := benchStage(rng)
	x := rng.Uniform(-1, 1, 32, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := NewContext()
		out := stage.Forward(ctx, x, true)
		dy := tensor.Borrow(out.Shape()...)
		dx := stage.Backward(ctx, dy)
		if dx != dy {
			dy.Release()
		}
		out.Release()
		if dx != nil {
			dx.Release()
		}
	}
}
