package nn

import (
	"math"
	"testing"

	"avgpipe/internal/compiled"
	"avgpipe/internal/tensor"
)

// runCompiled executes one full micro-batch through a compiled Env:
// forward, grad-input, grad-weight. Returns the forward output and
// input gradient (copies, so the caller can compare after EndMicro).
func runCompiled(t *testing.T, prog *compiled.Program, env *compiled.Env, x, dy *tensor.Tensor) (y, dx *tensor.Tensor) {
	t.Helper()
	env.BindInput(x)
	env.Forward()
	y = env.Output().Clone()
	env.BindGradIn(dy)
	env.BackwardInput()
	if g := env.GradOut(); g != nil {
		dx = g.Clone()
	}
	env.BackwardWeights()
	env.EndMicro()
	return y, dx
}

func bitEqual(a, b *tensor.Tensor) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ad, bd := a.Data(), b.Data()
	if len(ad) != len(bd) {
		return false
	}
	for i := range ad {
		if math.Float32bits(ad[i]) != math.Float32bits(bd[i]) {
			return false
		}
	}
	return true
}

// buildPair constructs two identical models from the same seed: one to
// interpret, one to compile.
func buildPair(mk func(g *tensor.RNG) *Sequential) (ref, cmp *Sequential) {
	return mk(tensor.NewRNG(7)), mk(tensor.NewRNG(7))
}

func checkEquivalence(t *testing.T, name string, mk func(g *tensor.RNG) *Sequential, x *tensor.Tensor, micros int) {
	t.Helper()
	ref, cmp := buildPair(mk)
	prog, err := CompileStage(cmp, compiled.Options{})
	if err != nil {
		t.Fatalf("%s: CompileStage: %v", name, err)
	}
	if err := prog.CheckPlan(x.Shape()); err != nil {
		t.Fatalf("%s: CheckPlan: %v", name, err)
	}
	env := prog.NewEnv(x.Shape())
	for m := 0; m < micros; m++ {
		// Interpreter reference.
		ctx := NewContext()
		refY := ref.Forward(ctx, x, true)
		dy := tensor.Full(0.01, refY.Shape()...)
		refDX := ref.Backward(ctx, dy)

		cmpY, cmpDX := runCompiled(t, prog, env, x, tensor.Full(0.01, refY.Shape()...))
		if !bitEqual(refY, cmpY) {
			t.Fatalf("%s micro %d: forward output differs", name, m)
		}
		if (refDX == nil) != (cmpDX == nil) || (refDX != nil && !bitEqual(refDX, cmpDX)) {
			t.Fatalf("%s micro %d: input gradient differs", name, m)
		}
		rp, cp := ref.Params(), cmp.Params()
		for i := range rp {
			if !bitEqual(rp[i].G, cp[i].G) {
				t.Fatalf("%s micro %d: grad of %s differs", name, m, rp[i].Name)
			}
		}
	}
}

func TestCompileLinearTanhMLPBitExact(t *testing.T) {
	mk := func(g *tensor.RNG) *Sequential {
		return NewSequential(
			NewLinear(g, 6, 8),
			&Tanh{},
			NewLinear(g, 8, 5),
			&ReLU{},
			NewLinear(g, 5, 3),
		)
	}
	x := tensor.NewRNG(11).Normal(0, 1, 4, 6)
	checkEquivalence(t, "mlp", mk, x, 3)
}

func TestCompileStandaloneActivationsBitExact(t *testing.T) {
	mk := func(g *tensor.RNG) *Sequential {
		return NewSequential(
			&Tanh{},
			&Sigmoid{},
			&GELU{},
			&ReLU{},
		)
	}
	x := tensor.NewRNG(3).Normal(0, 2, 5, 7)
	checkEquivalence(t, "acts", mk, x, 2)
}

func TestCompileEmbeddingLayerNormBitExact(t *testing.T) {
	mk := func(g *tensor.RNG) *Sequential {
		return NewSequential(
			NewEmbedding(g, 12, 16),
			NewLayerNorm(16),
			NewLinear(g, 16, 4),
		)
	}
	x := tensor.New(6, 1)
	for i := 0; i < 6; i++ {
		x.Set(float32(i*2%12), i, 0)
	}
	checkEquivalence(t, "embed-ln", mk, x, 2)
}

func TestCompileMeanPoolBitExact(t *testing.T) {
	mk := func(g *tensor.RNG) *Sequential {
		return NewSequential(
			NewLinear(g, 4, 6),
			&MeanPoolTime{SeqLen: 3},
			NewLinear(g, 6, 2),
		)
	}
	x := tensor.NewRNG(5).Normal(0, 1, 3*4, 4) // seqLen 3, batch 4
	checkEquivalence(t, "meanpool", mk, x, 2)
}

func TestCompileDropoutBitExact(t *testing.T) {
	// Dropout draws from the module's RNG: both models start from the
	// same seed and both paths must consume the stream identically.
	mk := func(g *tensor.RNG) *Sequential {
		return NewSequential(
			NewLinear(g, 6, 8),
			NewDropout(tensor.NewRNG(99), 0.3),
			NewLinear(g, 8, 3),
		)
	}
	x := tensor.NewRNG(13).Normal(0, 1, 4, 6)
	checkEquivalence(t, "dropout", mk, x, 3)
}

func TestCompileFallbackLSTMBitExact(t *testing.T) {
	const seqLen, batch, dim = 3, 2, 5
	mk := func(g *tensor.RNG) *Sequential {
		return NewSequential(
			NewLSTM(g, dim, dim, seqLen),
			NewLinear(g, dim, 4),
		)
	}
	x := tensor.NewRNG(17).Normal(0, 1, seqLen*batch, dim)
	checkEquivalence(t, "lstm", mk, x, 2)
}

// TestCompileInferenceBitExact pins the serving-path contract: a
// program from CompileStageInference replays the interpreter's
// *eval-mode* forward (train=false) bit-exactly — dropout is an
// identity and draws no RNG, and fallback modules (here an LSTM with
// recurrent DropConnect) run with train=false. Repeated forwards of the
// same input must also be identical to each other: inference is
// stateless.
func TestCompileInferenceBitExact(t *testing.T) {
	const seqLen, batch, dim = 3, 2, 5
	mk := func(g *tensor.RNG) *Sequential {
		l := NewLSTM(g, dim, dim, seqLen)
		l.RecurrentDropP = 0.4
		return NewSequential(
			NewLinear(g, 4, dim),
			NewDropout(tensor.NewRNG(99), 0.5),
			l,
			NewLinear(g, dim, 3),
		)
	}
	ref, cmp := buildPair(mk)
	prog, err := CompileStageInference(cmp, compiled.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(21).Normal(0, 1, seqLen*batch, 4)
	if err := prog.CheckPlan(x.Shape()); err != nil {
		t.Fatal(err)
	}
	refY := ref.Forward(NewContext(), x, false)
	env := prog.NewEnv(x.Shape())
	var first *tensor.Tensor
	for m := 0; m < 3; m++ {
		env.BindInput(x)
		env.Forward()
		y := env.Output().Clone()
		env.EndMicro()
		if !bitEqual(refY, y) {
			t.Fatalf("micro %d: inference output differs from interpreter eval forward", m)
		}
		if first == nil {
			first = y
		} else if !bitEqual(first, y) {
			t.Fatalf("micro %d: repeated inference forward not deterministic", m)
		}
	}
	// Sanity: the training compile of the same model is NOT the eval
	// forward (dropout actually drops), so the two modes are really
	// distinct programs.
	_, cmp2 := buildPair(mk)
	trainProg, err := CompileStage(cmp2, compiled.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tenv := trainProg.NewEnv(x.Shape())
	tenv.BindInput(x)
	tenv.Forward()
	ty := tenv.Output().Clone()
	tenv.EndMicro()
	if bitEqual(refY, ty) {
		t.Fatal("train-mode compile reproduced the eval forward — dropout not applied?")
	}
}

// TestCompiledReentrancy runs two in-flight micro-batches interleaved
// (F0, F1, Bi1, Bw1, Bi0, Bw0) through stochastic and stash-heavy
// layers and checks each against a sequential interpreter reference —
// the regression test for stash-in-module state: per-micro state must
// live in the Env, so overlapping micro-batches cannot corrupt each
// other.
func TestCompiledReentrancy(t *testing.T) {
	mk := func(g *tensor.RNG) *Sequential {
		return NewSequential(
			NewLinear(g, 6, 8),
			&Sigmoid{},
			NewDropout(tensor.NewRNG(42), 0.25),
			NewLayerNorm(8),
			NewLinear(g, 8, 3),
		)
	}
	ref, cmp := buildPair(mk)
	prog, err := CompileStage(cmp, compiled.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x0 := tensor.NewRNG(1).Normal(0, 1, 4, 6)
	x1 := tensor.NewRNG(2).Normal(0, 1, 4, 6)

	// Interpreter reference: contexts interleave the same way so the
	// dropout RNG stream is consumed in the same order (forward order
	// F0, F1 in both paths).
	ctx0, ctx1 := NewContext(), NewContext()
	refY0 := ref.Forward(ctx0, x0, true)
	refY1 := ref.Forward(ctx1, x1, true)
	refDX1 := ref.Backward(ctx1, tensor.Full(0.01, refY1.Shape()...))
	refDX0 := ref.Backward(ctx0, tensor.Full(0.02, refY0.Shape()...))

	env0 := prog.NewEnv(x0.Shape())
	env1 := prog.NewEnv(x1.Shape())
	env0.BindInput(x0)
	env0.Forward()
	y0 := env0.Output().Clone()
	env1.BindInput(x1)
	env1.Forward()
	y1 := env1.Output().Clone()

	env1.BindGradIn(tensor.Full(0.01, y1.Shape()...))
	env1.BackwardInput()
	dx1 := env1.GradOut().Clone()
	env1.BackwardWeights()
	env1.EndMicro()

	env0.BindGradIn(tensor.Full(0.02, y0.Shape()...))
	env0.BackwardInput()
	dx0 := env0.GradOut().Clone()
	env0.BackwardWeights()
	env0.EndMicro()

	if !bitEqual(refY0, y0) || !bitEqual(refY1, y1) {
		t.Fatal("in-flight forward outputs corrupted across micro-batches")
	}
	if !bitEqual(refDX1, dx1) || !bitEqual(refDX0, dx0) {
		t.Fatal("in-flight input gradients corrupted across micro-batches")
	}
	rp, cp := ref.Params(), cmp.Params()
	for i := range rp {
		if !bitEqual(rp[i].G, cp[i].G) {
			t.Fatalf("grad of %s differs under interleaved micro-batches", rp[i].Name)
		}
	}
}

// TestCompiledSteadyStateZeroArena verifies the tentpole's allocation
// contract directly: after warm-up, replaying a fully lowered stage
// performs zero arena borrows and zero arena releases per micro-batch.
func TestCompiledSteadyStateZeroArena(t *testing.T) {
	g := tensor.NewRNG(23)
	stage := NewSequential(
		NewLinear(g, 16, 16),
		&Tanh{},
		NewLayerNorm(16),
		NewLinear(g, 16, 8),
	)
	prog, err := CompileStage(stage, compiled.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(29).Normal(0, 1, 8, 16)
	env := prog.NewEnv(x.Shape())
	dyShape := []int{8, 8}
	run := func() {
		env.BindInput(x)
		env.Forward()
		env.BindGradIn(tensor.FromSlice(make([]float32, 8*8), dyShape...))
		env.BackwardInput()
		env.BackwardWeights()
		env.EndMicro()
	}
	run() // warm-up
	before := tensor.ReadArenaStats()
	for i := 0; i < 5; i++ {
		run()
	}
	after := tensor.ReadArenaStats()
	if got := after.Borrows - before.Borrows; got != 0 {
		t.Fatalf("steady-state compiled replay made %d arena borrows, want 0", got)
	}
	if got := after.Releases - before.Releases; got != 0 {
		t.Fatalf("steady-state compiled replay made %d arena releases, want 0", got)
	}
}
