package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"avgpipe/internal/tensor"
)

// checkpointMagic guards against loading unrelated files.
const checkpointMagic = uint32(0x41564750) // "AVGP"

// SaveParams writes the parameters (names, shapes, weights) to w in a
// stable little-endian binary format. Gradients and optimizer state are
// not saved; checkpoints capture the model, not the training run.
func SaveParams(w io.Writer, ps []*Param) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, checkpointMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(ps))); err != nil {
		return err
	}
	for _, p := range ps {
		name := []byte(p.Name)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		shape := p.W.Shape()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		for _, v := range p.W.Data() {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadParams reads a checkpoint written by SaveParams into ps. The
// parameter count, order, names, and shapes must match the checkpoint
// exactly; mismatches return an error without partially applying.
func LoadParams(r io.Reader, ps []*Param) error {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("nn: reading checkpoint header: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: not an avgpipe checkpoint (magic %#x)", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	if int(count) != len(ps) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", count, len(ps))
	}
	// Stage into fresh tensors first so a truncated file cannot leave the
	// model half-loaded.
	staged := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: checkpoint param %d is %q, model has %q", i, name, p.Name)
		}
		var dims uint32
		if err := binary.Read(br, binary.LittleEndian, &dims); err != nil {
			return err
		}
		shape := make([]int, dims)
		for j := range shape {
			var d uint32
			if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
				return err
			}
			shape[j] = int(d)
		}
		want := p.W.Shape()
		if len(shape) != len(want) {
			return fmt.Errorf("nn: param %q shape rank mismatch", p.Name)
		}
		for j := range shape {
			if shape[j] != want[j] {
				return fmt.Errorf("nn: param %q shape %v, model has %v", p.Name, shape, want)
			}
		}
		t := tensor.New(shape...)
		for j := range t.Data() {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return fmt.Errorf("nn: param %q data truncated: %w", p.Name, err)
			}
			t.Data()[j] = math.Float32frombits(bits)
		}
		staged[i] = t
	}
	for i, p := range ps {
		p.W.CopyFrom(staged[i])
	}
	return nil
}
