package nn

import (
	"math"

	"avgpipe/internal/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct{}

// Forward applies max(x, 0) and stashes the input sign pattern via x itself.
func (r *ReLU) Forward(ctx *Context, x *tensor.Tensor, train bool) *tensor.Tensor {
	ctx.Push(x)
	return tensor.ReLU(x)
}

// Backward gates dy by the stashed input's positivity.
func (r *ReLU) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	x := ctx.Pop().(*tensor.Tensor)
	out := tensor.Borrow(dy.Shape()...)
	xd, dd, od := x.Data(), dy.Data(), out.Data()
	for i := range xd {
		if xd[i] > 0 {
			od[i] = dd[i]
		}
	}
	return out
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct{}

// Forward applies tanh and stashes the output (its derivative is 1-y²).
func (a *Tanh) Forward(ctx *Context, x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.Tanh(x)
	ctx.Push(y)
	return y
}

// Backward multiplies dy by 1 - y².
func (a *Tanh) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	y := ctx.Pop().(*tensor.Tensor)
	d := tensor.Apply(y, func(v float32) float32 { return 1 - v*v })
	return tensor.Mul(dy, d)
}

// Params returns nil; Tanh has no parameters.
func (a *Tanh) Params() []*Param { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct{}

// Forward applies the logistic function and stashes the output.
func (a *Sigmoid) Forward(ctx *Context, x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.Sigmoid(x)
	ctx.Push(y)
	return y
}

// Backward multiplies dy by y(1-y).
func (a *Sigmoid) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	y := ctx.Pop().(*tensor.Tensor)
	d := tensor.Apply(y, func(v float32) float32 { return v * (1 - v) })
	return tensor.Mul(dy, d)
}

// Params returns nil; Sigmoid has no parameters.
func (a *Sigmoid) Params() []*Param { return nil }

// GELU is the Gaussian error linear unit (tanh approximation), the
// activation used in BERT's feed-forward blocks.
type GELU struct{}

const geluC = 0.7978845608028654 // sqrt(2/pi)

func geluForward(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluC*(x+0.044715*x*x*x)))
}

func geluDeriv(x float64) float64 {
	inner := geluC * (x + 0.044715*x*x*x)
	t := math.Tanh(inner)
	dinner := geluC * (1 + 3*0.044715*x*x)
	return 0.5*(1+t) + 0.5*x*(1-t*t)*dinner
}

// Forward applies GELU and stashes the input.
func (a *GELU) Forward(ctx *Context, x *tensor.Tensor, train bool) *tensor.Tensor {
	ctx.Push(x)
	return tensor.Apply(x, func(v float32) float32 { return float32(geluForward(float64(v))) })
}

// Backward multiplies dy by the analytic GELU derivative at the stashed x.
func (a *GELU) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	x := ctx.Pop().(*tensor.Tensor)
	d := tensor.Apply(x, func(v float32) float32 { return float32(geluDeriv(float64(v))) })
	return tensor.Mul(dy, d)
}

// Params returns nil; GELU has no parameters.
func (a *GELU) Params() []*Param { return nil }

// Dropout zeroes each activation independently with probability P during
// training, scaling survivors by 1/(1-P) (inverted dropout). In eval mode
// it is the identity.
type Dropout struct {
	P   float64
	rng *tensor.RNG
}

// NewDropout constructs a dropout layer with its own deterministic RNG.
func NewDropout(rng *tensor.RNG, p float64) *Dropout { return &Dropout{P: p, rng: rng} }

// Forward samples a keep mask (stashed for backward) in training mode.
func (d *Dropout) Forward(ctx *Context, x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P <= 0 {
		ctx.Push((*tensor.Tensor)(nil))
		return x
	}
	keep := d.rng.Bernoulli(1-d.P, x.Shape()...)
	keep.ScaleInPlace(float32(1 / (1 - d.P)))
	ctx.Push(keep)
	return tensor.Mul(x, keep)
}

// Backward applies the stashed mask to dy (identity in eval mode).
func (d *Dropout) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	keep := ctx.Pop().(*tensor.Tensor)
	if keep == nil {
		return dy
	}
	return tensor.Mul(dy, keep)
}

// Params returns nil; Dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
